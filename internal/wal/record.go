// Package wal implements a physical-redo write-ahead log over
// internal/pagefile. A wal.File interposes between the tree and its page
// file: writes land in a volatile page overlay and are framed into an
// append-only log; SealTx makes a group of writes durable with one log
// fsync (the commit point); Sync checkpoints — flushes the overlay into the
// inner file, fsyncs it, and truncates the log; Open replays the committed
// log tail after a crash, discarding torn frames and uncommitted records.
//
// The framing reuses the ChecksumFile idiom: every record is length-prefixed
// and guarded by a CRC32-C over its payload, so a torn log tail is detected
// by the first frame that fails to parse, never by replaying garbage.
package wal

import (
	"encoding/binary"
	"hash/crc32"

	"hybridtree/internal/pagefile"
)

// Record kinds. A write carries a page image; a commit seals every write
// framed since the previous commit into one atomic transaction; a
// checkpoint asserts that everything before it is durable in the inner file
// and replay may start after it.
const (
	kindWrite      = 1
	kindCommit     = 2
	kindCheckpoint = 3
)

// frameHeader is the per-record overhead: u32 payload length + u32 CRC32-C
// of the payload, both little-endian.
const frameHeader = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// sealFrame fills in the length and CRC of the frame that starts at off in
// dst, whose payload occupies dst[off+frameHeader:].
func sealFrame(dst []byte, off int) {
	payload := dst[off+frameHeader:]
	binary.LittleEndian.PutUint32(dst[off:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[off+4:], crc32.Checksum(payload, castagnoli))
}

// appendWrite appends a framed write record carrying the page image as
// given (the overlay re-pads to full pages, so short meta writes stay
// short on the log too).
func appendWrite(dst []byte, id pagefile.PageID, data []byte) []byte {
	off := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = append(dst, kindWrite)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(id))
	dst = append(dst, data...)
	sealFrame(dst, off)
	return dst
}

func appendSeqRecord(dst []byte, kind byte, seq uint64) []byte {
	off := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	sealFrame(dst, off)
	return dst
}

// appendCommit appends a framed commit record sealing transaction seq.
func appendCommit(dst []byte, seq uint64) []byte {
	return appendSeqRecord(dst, kindCommit, seq)
}

// appendCheckpoint appends a framed checkpoint record.
func appendCheckpoint(dst []byte, seq uint64) []byte {
	return appendSeqRecord(dst, kindCheckpoint, seq)
}

// record is one parsed log record. data aliases the scanned buffer and is
// only valid until the buffer is mutated.
type record struct {
	kind   byte
	pageID pagefile.PageID
	seq    uint64
	data   []byte
}

// parseFrame decodes the frame at the start of b. maxPayload bounds the
// declared payload length so a corrupted length field cannot demand an
// absurd allocation or swallow the rest of the log. It returns the record,
// the total frame size, and whether the frame was valid; any failure —
// truncation, a bad CRC, an unknown kind, a mis-sized payload — means the
// log is torn here and scanning must stop.
func parseFrame(b []byte, maxPayload int) (record, int, bool) {
	if len(b) < frameHeader {
		return record{}, 0, false
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n < 1 || n > maxPayload || len(b) < frameHeader+n {
		return record{}, 0, false
	}
	payload := b[frameHeader : frameHeader+n]
	if binary.LittleEndian.Uint32(b[4:]) != crc32.Checksum(payload, castagnoli) {
		return record{}, 0, false
	}
	rec := record{kind: payload[0]}
	switch rec.kind {
	case kindWrite:
		if n < 5 {
			return record{}, 0, false
		}
		rec.pageID = pagefile.PageID(binary.LittleEndian.Uint32(payload[1:]))
		rec.data = payload[5:]
	case kindCommit, kindCheckpoint:
		if n != 9 {
			return record{}, 0, false
		}
		rec.seq = binary.LittleEndian.Uint64(payload[1:])
	default:
		return record{}, 0, false
	}
	return rec, frameHeader + n, true
}
