package concurrent

import (
	"sync"

	"hybridtree/internal/core"
	"hybridtree/internal/geom"
	"hybridtree/internal/obs"
)

// groupOp is one writer's queued mutation and its reply channel.
type groupOp struct {
	delete bool
	p      geom.Point
	rid    core.RecordID
	done   chan groupResult
}

type groupResult struct {
	found bool // Delete only
	err   error
}

// GroupCommitter amortizes the write-ahead log's fsync across concurrent
// writers. Callers' Insert/Delete calls queue behind the MVCC commit
// point; a single worker drains the queue and applies each batch inside
// one core.RunTx — one transaction, one commit record, one fsync — then
// fans the acknowledgement back out. Every acknowledged operation carries
// the same durability guarantee as a direct call: the shared fsync covers
// the whole batch, and a batch that fails durability rolls back and is
// retried operation by operation so each caller gets its own verdict.
//
// Without a transactional file underneath this still batches the writer
// lock like InsertBatch, it just cannot amortize what doesn't exist.
type GroupCommitter struct {
	t        *Tree
	ch       chan *groupOp
	maxBatch int
	wg       sync.WaitGroup

	// mu guards closed and serializes every channel send against Close, so
	// a submit arriving while Close runs resolves to ErrClosed instead of a
	// send-on-closed-channel panic. A send that blocks on a full queue holds
	// mu, which only delays Close — the worker drains the queue regardless.
	mu     sync.Mutex
	closed bool

	batchSizes *obs.Histogram
	batches    *obs.Counter
}

// NewGroupCommitter starts the commit worker. maxBatch bounds how many
// queued operations one transaction may absorb (≤ 0 means 64).
func NewGroupCommitter(t *Tree, maxBatch int) *GroupCommitter {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	r := obs.Default()
	g := &GroupCommitter{
		t:          t,
		ch:         make(chan *groupOp, 4*maxBatch),
		maxBatch:   maxBatch,
		batchSizes: r.Histogram("wal_group_commit_batch_size"),
		batches:    r.Counter("wal_group_commit_batches_total"),
	}
	g.wg.Add(1)
	go g.run()
	return g
}

// Insert queues the insert and blocks until its group commits (or fails).
// After Close it returns ErrClosed.
func (g *GroupCommitter) Insert(p geom.Point, rid core.RecordID) error {
	op := &groupOp{p: p, rid: rid, done: make(chan groupResult, 1)}
	if err := g.submit(op); err != nil {
		return err
	}
	return (<-op.done).err
}

// Delete queues the delete and blocks until its group commits (or fails).
// After Close it returns ErrClosed.
func (g *GroupCommitter) Delete(p geom.Point, rid core.RecordID) (bool, error) {
	op := &groupOp{delete: true, p: p, rid: rid, done: make(chan groupResult, 1)}
	if err := g.submit(op); err != nil {
		return false, err
	}
	res := <-op.done
	return res.found, res.err
}

func (g *GroupCommitter) submit(op *groupOp) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return ErrClosed
	}
	g.ch <- op
	return nil
}

// Close stops admission (subsequent Insert/Delete calls return ErrClosed),
// lets the worker drain and commit every queued operation — each waiting
// caller still receives its verdict — and waits for the worker to exit.
func (g *GroupCommitter) Close() {
	g.mu.Lock()
	if !g.closed {
		g.closed = true
		close(g.ch) // safe: submits hold g.mu, so no send can race the close
	}
	g.mu.Unlock()
	g.wg.Wait()
}

func (g *GroupCommitter) run() {
	defer g.wg.Done()
	for op := range g.ch {
		batch := []*groupOp{op}
		for len(batch) < g.maxBatch {
			select {
			case next, ok := <-g.ch:
				if !ok {
					g.commit(batch)
					return
				}
				batch = append(batch, next)
			default:
				goto full
			}
		}
	full:
		g.commit(batch)
	}
}

// commit applies one batch as a single transaction; on failure it retries
// each operation alone so acknowledgements stay per-operation exact.
func (g *GroupCommitter) commit(batch []*groupOp) {
	g.batches.Inc()
	g.batchSizes.Observe(int64(len(batch)))
	results := make([]groupResult, len(batch))
	g.t.mu.Lock()
	err := g.t.tree.RunTx(func() error {
		for i, op := range batch {
			if op.delete {
				found, err := g.t.tree.Delete(op.p, op.rid)
				if err != nil {
					return err
				}
				results[i] = groupResult{found: found}
			} else if err := g.t.tree.Insert(op.p, op.rid); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil && len(batch) > 1 {
		// The whole batch rolled back; one bad operation must not fail its
		// neighbors. Re-run individually — each as its own transaction.
		for i, op := range batch {
			if op.delete {
				found, derr := g.t.tree.Delete(op.p, op.rid)
				results[i] = groupResult{found: found, err: derr}
			} else {
				results[i] = groupResult{err: g.t.tree.Insert(op.p, op.rid)}
			}
		}
		err = nil
	}
	g.t.mu.Unlock()
	for i, op := range batch {
		if err != nil {
			results[i] = groupResult{err: err}
		}
		op.done <- results[i]
	}
}
