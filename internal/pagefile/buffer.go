package pagefile

import (
	"container/list"
	"fmt"
	"sync"

	"hybridtree/internal/obs"
)

// Buffered wraps a File with an LRU page buffer. Hits are served from memory
// without touching the inner file's counters; its own Stats therefore count
// buffer *misses*, which is what a warm-cache experiment wants to report.
// The paper's headline numbers are cold (every logical access counted); the
// harness uses the unbuffered file for those and Buffered for the
// warm-buffer sensitivity runs.
//
// Unlike the raw files, even a logically read-only access reorders the LRU
// list, so Buffered carries its own mutex and is safe for concurrent use in
// all operations (reads included) regardless of the contract above it.
type Buffered struct {
	mu       sync.Mutex
	inner    File
	capacity int
	lru      *list.List // front = most recent; values are *bufPage
	byID     map[PageID]*list.Element
	stats    Stats
	// Shared obs counters: the buffer's hit ratio and eviction pressure,
	// aggregated across all Buffered instances in the process.
	obsHits, obsMisses, obsEvicts *obs.Counter
}

type bufPage struct {
	id    PageID
	data  []byte
	dirty bool
}

// NewBuffered wraps inner with an LRU buffer holding capacity pages.
func NewBuffered(inner File, capacity int) *Buffered {
	if capacity < 1 {
		capacity = 1
	}
	r := obs.Default()
	return &Buffered{
		inner:     inner,
		capacity:  capacity,
		lru:       list.New(),
		byID:      make(map[PageID]*list.Element),
		obsHits:   r.Counter("pagefile_buffer_hits_total"),
		obsMisses: r.Counter("pagefile_buffer_misses_total"),
		obsEvicts: r.Counter("pagefile_buffer_evictions_total"),
	}
}

// PageSize implements File.
func (b *Buffered) PageSize() int { return b.inner.PageSize() }

// Stats implements File; counters reflect buffer misses, not logical
// accesses.
func (b *Buffered) Stats() *Stats { return &b.stats }

// NumPages implements File.
func (b *Buffered) NumPages() int { return b.inner.NumPages() }

func (b *Buffered) get(id PageID, seq bool) (*bufPage, error) {
	if el, ok := b.byID[id]; ok {
		b.obsHits.Inc()
		b.lru.MoveToFront(el)
		return el.Value.(*bufPage), nil
	}
	b.obsMisses.Inc()
	p := &bufPage{id: id, data: make([]byte, b.inner.PageSize())}
	var err error
	if seq {
		b.stats.AddSeqReads(1)
		err = b.inner.ReadPageSeq(id, p.data)
	} else {
		b.stats.AddRandomReads(1)
		err = b.inner.ReadPage(id, p.data)
	}
	if err != nil {
		return nil, err
	}
	b.insert(p)
	return p, nil
}

func (b *Buffered) insert(p *bufPage) {
	b.byID[p.id] = b.lru.PushFront(p)
	for b.lru.Len() > b.capacity {
		el := b.lru.Back()
		victim := el.Value.(*bufPage)
		b.lru.Remove(el)
		delete(b.byID, victim.id)
		b.obsEvicts.Inc()
		if victim.dirty {
			// Eviction write-back failure is unrecoverable at this layer;
			// surface it on the next operation via a poisoned buffer would
			// add state for no benefit — panic instead of silently losing
			// a page.
			if err := b.flushPage(victim); err != nil {
				panic(fmt.Sprintf("pagefile: evict write-back: %v", err))
			}
		}
	}
}

func (b *Buffered) flushPage(p *bufPage) error {
	b.stats.AddWrites(1)
	if err := b.inner.WritePage(p.id, p.data); err != nil {
		return err
	}
	p.dirty = false
	return nil
}

// ReadPage implements File.
func (b *Buffered) ReadPage(id PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, err := b.get(id, false)
	if err != nil {
		return err
	}
	copy(buf, p.data)
	return nil
}

// ReadPageSeq implements File.
func (b *Buffered) ReadPageSeq(id PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, err := b.get(id, true)
	if err != nil {
		return err
	}
	copy(buf, p.data)
	return nil
}

// WritePage implements File; the write is buffered and flushed on eviction,
// Flush, or Close.
func (b *Buffered) WritePage(id PageID, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(data) > b.inner.PageSize() {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(data), b.inner.PageSize())
	}
	if el, ok := b.byID[id]; ok {
		p := el.Value.(*bufPage)
		n := copy(p.data, data)
		for i := n; i < len(p.data); i++ {
			p.data[i] = 0
		}
		p.dirty = true
		b.lru.MoveToFront(el)
		return nil
	}
	p := &bufPage{id: id, data: make([]byte, b.inner.PageSize()), dirty: true}
	copy(p.data, data)
	b.insert(p)
	return nil
}

// Allocate implements File.
func (b *Buffered) Allocate() (PageID, error) { return b.inner.Allocate() }

// Free implements File; it drops any buffered copy first.
func (b *Buffered) Free(id PageID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.byID[id]; ok {
		b.lru.Remove(el)
		delete(b.byID, id)
	}
	return b.inner.Free(id)
}

// Flush writes every dirty buffered page back to the inner file.
func (b *Buffered) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushLocked()
}

func (b *Buffered) flushLocked() error {
	for el := b.lru.Front(); el != nil; el = el.Next() {
		p := el.Value.(*bufPage)
		if p.dirty {
			if err := b.flushPage(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close implements File: flush then close the inner file.
func (b *Buffered) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.flushLocked(); err != nil {
		return err
	}
	return b.inner.Close()
}
