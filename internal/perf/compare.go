package perf

import (
	"fmt"
	"io"
)

// Finding levels, from worst to mildest.
const (
	LevelGate = "gate" // fails the build
	LevelWarn = "warn" // printed, does not fail
	LevelInfo = "info"
)

// Finding is one comparator verdict about one benchmark metric.
type Finding struct {
	Level  string `json:"level"`
	Bench  string `json:"bench"`
	Metric string `json:"metric"`
	Msg    string `json:"msg"`
}

// Report is the comparator's output: every finding, gates first is NOT
// guaranteed — use Gates()/Failed() for the pass/fail decision.
type Report struct {
	Findings []Finding `json:"findings"`
}

// Gates returns the gate-level findings.
func (r *Report) Gates() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Level == LevelGate {
			out = append(out, f)
		}
	}
	return out
}

// Failed reports whether any gate-level finding is present.
func (r *Report) Failed() bool { return len(r.Gates()) > 0 }

// Write renders the report, one finding per line.
func (r *Report) Write(w io.Writer) {
	for _, f := range r.Findings {
		fmt.Fprintf(w, "[%s] %s %s: %s\n", f.Level, f.Bench, f.Metric, f.Msg)
	}
}

func (r *Report) add(level, bench, metric, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{Level: level, Bench: bench, Metric: metric, Msg: fmt.Sprintf(format, args...)})
}

// Rule is one comparator check. ctx carries the cross-rule noise model
// (machine fingerprint match, repeat counts).
type Rule interface {
	Apply(ctx *ruleCtx, rep *Report)
}

type ruleCtx struct {
	baseline, current *Snapshot
	sameMachine       bool
}

// DeltaRule compares one metric of one benchmark against the committed
// baseline by relative delta of medians.
//
// The noise model:
//   - a regression past MaxRegress gates; past WarnRegress it warns;
//   - with fewer than MinRepeats repeats in either snapshot, a would-be
//     gate downgrades to a warning (a single noisy run must not fail CI);
//   - when MachineBound is set and the two snapshots' env fingerprints name
//     different hardware, a would-be gate also downgrades (wall-clock
//     readings do not transfer across machines; allocation counts do, so
//     alloc rules leave MachineBound unset);
//   - a benchmark present in the baseline but missing from the current run
//     warns (coverage loss), and the reverse is an info finding (new
//     benchmark, nothing to compare yet).
type DeltaRule struct {
	Bench          string
	Metric         string
	MaxRegress     float64 // gate threshold, relative (0.25 = 25% worse)
	WarnRegress    float64 // warn threshold, relative
	MinRepeats     int
	MachineBound   bool
	HigherIsBetter bool // e.g. read_qps: a regression is a *drop*
}

func (d DeltaRule) Apply(ctx *ruleCtx, rep *Report) {
	old, oldOK := ctx.baseline.Metric(d.Bench, d.Metric)
	cur, curOK := ctx.current.Metric(d.Bench, d.Metric)
	switch {
	case !oldOK && !curOK:
		return
	case !curOK:
		rep.add(LevelWarn, d.Bench, d.Metric, "present in baseline but missing from current run")
		return
	case !oldOK:
		rep.add(LevelInfo, d.Bench, d.Metric, "new benchmark, no baseline to compare")
		return
	}
	if old.Median == 0 {
		rep.add(LevelInfo, d.Bench, d.Metric, "baseline median is 0; delta undefined")
		return
	}
	regress := (cur.Median - old.Median) / old.Median
	if d.HigherIsBetter {
		regress = -regress
	}
	if regress <= d.WarnRegress {
		return
	}
	level := LevelWarn
	why := ""
	if regress > d.MaxRegress {
		level = LevelGate
		if ob, cb := ctx.baseline.Lookup(d.Bench), ctx.current.Lookup(d.Bench); ob.Repeats < d.MinRepeats || cb.Repeats < d.MinRepeats {
			level = LevelWarn
			why = fmt.Sprintf(" (downgraded: %d/%d repeats < %d wanted)", ob.Repeats, cb.Repeats, d.MinRepeats)
		} else if d.MachineBound && !ctx.sameMachine {
			level = LevelWarn
			why = " (downgraded: different machine fingerprint)"
		}
	}
	rep.add(level, d.Bench, d.Metric, "regressed %.1f%% vs baseline (%.4g -> %.4g, gate at %.0f%%)%s",
		regress*100, old.Median, cur.Median, d.MaxRegress*100, why)
}

// RatioRule compares two metrics measured in the *same* run — immune to
// machine and baseline drift, so it always gates. It is how the bespoke
// same-run gates fold in: slab leaf scan vs legacy layout, tracer-installed
// vs tracer-off query cost, mixed-workload read throughput vs read-only.
// Either benchmark missing from the current snapshot is itself a gate: the
// rule exists precisely because the pair must be measured together.
type RatioRule struct {
	Name      string // label for findings
	NumBench  string
	NumMetric string
	DenBench  string
	DenMetric string
	MaxRatio  float64 // gate when num/den > MaxRatio (0 = unused)
	MinRatio  float64 // gate when num/den < MinRatio (0 = unused)
}

func (rr RatioRule) Apply(ctx *ruleCtx, rep *Report) {
	num, numOK := ctx.current.Metric(rr.NumBench, rr.NumMetric)
	den, denOK := ctx.current.Metric(rr.DenBench, rr.DenMetric)
	if !numOK || !denOK {
		rep.add(LevelGate, rr.Name, rr.NumMetric, "required benchmark pair incomplete (num %q: %v, den %q: %v)",
			rr.NumBench, numOK, rr.DenBench, denOK)
		return
	}
	if den.Median == 0 {
		rep.add(LevelGate, rr.Name, rr.NumMetric, "denominator %q is 0; ratio undefined", rr.DenBench)
		return
	}
	ratio := num.Median / den.Median
	if rr.MaxRatio > 0 && ratio > rr.MaxRatio {
		rep.add(LevelGate, rr.Name, rr.NumMetric, "ratio %.3f exceeds max %.3f (%s=%.4g / %s=%.4g)",
			ratio, rr.MaxRatio, rr.NumBench, num.Median, rr.DenBench, den.Median)
		return
	}
	if rr.MinRatio > 0 && ratio < rr.MinRatio {
		rep.add(LevelGate, rr.Name, rr.NumMetric, "ratio %.3f below min %.3f (%s=%.4g / %s=%.4g)",
			ratio, rr.MinRatio, rr.NumBench, num.Median, rr.DenBench, den.Median)
		return
	}
	rep.add(LevelInfo, rr.Name, rr.NumMetric, "ratio %.3f within [%.3f, %.3f]", ratio, rr.MinRatio, rr.MaxRatio)
}

// AllocRule gates on allocation count, which is deterministic and
// machine-independent: any increase over the baseline gates regardless of
// fingerprint or repeats, and an absolute ceiling (MaxAllocs, -1 to disable)
// holds even with no baseline entry — the zero-alloc query-path contract.
type AllocRule struct {
	Bench     string
	MaxAllocs float64 // absolute ceiling; -1 disables
}

func (a AllocRule) Apply(ctx *ruleCtx, rep *Report) {
	cur, curOK := ctx.current.Metric(a.Bench, "allocs/op")
	if !curOK {
		rep.add(LevelGate, a.Bench, "allocs/op", "benchmark missing or not reporting allocations")
		return
	}
	if a.MaxAllocs >= 0 && cur.Median > a.MaxAllocs {
		rep.add(LevelGate, a.Bench, "allocs/op", "%.0f allocs/op exceeds ceiling %.0f", cur.Median, a.MaxAllocs)
		return
	}
	if old, ok := ctx.baseline.Metric(a.Bench, "allocs/op"); ok && cur.Median > old.Median {
		rep.add(LevelGate, a.Bench, "allocs/op", "allocations grew %.0f -> %.0f vs baseline", old.Median, cur.Median)
		return
	}
	rep.add(LevelInfo, a.Bench, "allocs/op", "%.0f allocs/op", cur.Median)
}

// Compare runs every rule over the (baseline, current) snapshot pair. A nil
// baseline compares against an empty snapshot: delta rules become info
// findings, ratio and absolute alloc rules still gate — so the same call
// works for both "first run ever" and "regression check".
func Compare(baseline, current *Snapshot, rules []Rule) *Report {
	if baseline == nil {
		baseline = &Snapshot{SchemaVersion: SchemaVersion}
	}
	ctx := &ruleCtx{
		baseline:    baseline,
		current:     current,
		sameMachine: baseline.Env.SameMachine(current.Env),
	}
	rep := &Report{}
	if !ctx.sameMachine && len(baseline.Benchmarks) > 0 {
		rep.add(LevelInfo, "env", "", "machine fingerprint differs from baseline; wall-clock gates downgraded to warnings")
	}
	for _, r := range rules {
		r.Apply(ctx, rep)
	}
	return rep
}
