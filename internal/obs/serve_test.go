package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`index_node_reads_total{method="hybrid"}`).Add(42)
	reg.Histogram(`core_query_ns{op="box"}`).Observe(1000)
	ring := NewRing(8)
	for _, op := range []string{"box", "knn", "knn"} {
		tr := ring.StartTrace(op)
		tr.Visit(-1, 1, true, true)
		tr.FinishSince(tr.Start)
	}
	srv := httptest.NewServer(NewMux(reg, ring))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if out := get("/metrics"); !strings.Contains(out, `index_node_reads_total{method="hybrid"} 42`) {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/metrics.json")), &doc); err != nil {
		t.Errorf("/metrics.json invalid: %v", err)
	}
	var traces []*Trace
	if err := json.Unmarshal([]byte(get("/debug/queries")), &traces); err != nil {
		t.Fatalf("/debug/queries invalid: %v", err)
	}
	if len(traces) != 3 || len(traces[0].Spans) != 1 {
		t.Fatalf("/debug/queries returned %d traces: %+v", len(traces), traces)
	}
	if err := json.Unmarshal([]byte(get("/debug/queries?op=knn&n=1")), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].Op != "knn" {
		t.Fatalf("filtered /debug/queries = %+v", traces)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "memstats") {
		t.Errorf("/debug/vars missing expvar output")
	}
}

func TestServe(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// /debug/queries with a nil ring returns an empty JSON list.
	resp, err = http.Get("http://" + addr.String() + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(b)) != "[]" {
		t.Fatalf("/debug/queries with nil ring = %q", b)
	}
}
