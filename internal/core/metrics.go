package core

import (
	"sync"
	"sync/atomic"
	"time"

	"hybridtree/internal/obs"
)

// Query-operation indices for the per-op metric arrays.
const (
	opBox = iota
	opRange
	opKNN
	numOps
)

var opNames = [numOps]string{"box", "range", "knn"}

// treeMetrics is the hybrid tree's bundle of pre-resolved instruments. One
// process-wide bundle is shared by every Tree (the metric names are fixed),
// so resolving it costs one sync.Once and the hot path only pays atomic
// adds. Per-query traversal counts are accumulated as plain ints in the
// query context (tally) and flushed here once per query, keeping atomic
// operations out of the innermost kd-walk loops.
type treeMetrics struct {
	queries    [numOps]*obs.Counter
	latency    [numOps]*obs.Histogram
	outcomes   *obs.Outcomes
	queryErrs  *obs.Counter
	results    *obs.Counter
	kdPrunes   *obs.Counter
	elsHits    *obs.Counter
	elsPrunes  *obs.Counter
	distPrunes *obs.Counter
	descents   *obs.Counter
	heapPushes *obs.Counter
	scanned    *obs.Counter

	inserts     *obs.Counter
	deletes     *obs.Counter
	insertNs    *obs.Histogram
	deleteNs    *obs.Histogram
	splitsData  *obs.Counter
	splitsIndex *obs.Counter
	reinserts   *obs.Counter
	rollbacks   *obs.Counter
	leakedPages *obs.Gauge

	// MVCC snapshot-read instruments: the published commit epoch, the
	// number of superseded node versions awaiting epoch reclamation, the
	// number of currently pinned readers, and how long readers hold their
	// pins (long pins delay reclamation).
	mvccEpoch   *obs.Gauge
	mvccRetired *obs.Gauge
	mvccPins    *obs.Gauge
	mvccPinNs   *obs.Histogram

	// unifiedPrunes mirrors the sum of kd/ELS/dist prunes into the
	// cross-method index_prunes_total{method="hybrid"} counter so the
	// per-method comparison table sees the hybrid too.
	unifiedPrunes *obs.Counter
}

var (
	hybridMetricsOnce sync.Once
	hybridMetricsVal  *treeMetrics
)

// hybridMetrics resolves the shared instrument bundle from the default
// registry.
func hybridMetrics() *treeMetrics {
	hybridMetricsOnce.Do(func() {
		r := obs.Default()
		m := &treeMetrics{
			outcomes:    obs.NewOutcomes(r, "core_query_outcomes_total"),
			queryErrs:   r.Counter("core_query_errors_total"),
			results:     r.Counter("core_results_total"),
			kdPrunes:    r.Counter("core_kd_prunes_total"),
			elsHits:     r.Counter("core_els_decode_hits_total"),
			elsPrunes:   r.Counter("core_els_prunes_total"),
			distPrunes:  r.Counter("core_dist_prunes_total"),
			descents:    r.Counter("core_descents_total"),
			heapPushes:  r.Counter("core_heap_pushes_total"),
			scanned:     r.Counter("core_leaf_entries_scanned_total"),
			inserts:     r.Counter("core_inserts_total"),
			deletes:     r.Counter("core_deletes_total"),
			insertNs:    r.Histogram(`core_mutation_ns{op="insert"}`),
			deleteNs:    r.Histogram(`core_mutation_ns{op="delete"}`),
			splitsData:  r.Counter(`core_splits_total{kind="data"}`),
			splitsIndex: r.Counter(`core_splits_total{kind="index"}`),
			reinserts:   r.Counter("core_reinserts_total"),
			rollbacks:   r.Counter("core_rollbacks_total"),
			leakedPages: r.Gauge("core_leaked_pages"),
			mvccEpoch:   r.Gauge("core_mvcc_epoch"),
			mvccRetired: r.Gauge("core_mvcc_retired_versions"),
			mvccPins:    r.Gauge("core_mvcc_active_pins"),
			mvccPinNs:   r.Histogram("core_mvcc_pin_ns"),

			unifiedPrunes: obs.PruneCounter(r, "hybrid"),
		}
		for op := 0; op < numOps; op++ {
			m.queries[op] = r.Counter(`core_queries_total{op="` + opNames[op] + `"}`)
			m.latency[op] = r.Histogram(`core_query_ns{op="` + opNames[op] + `"}`)
		}
		hybridMetricsVal = m
	})
	return hybridMetricsVal
}

// defaultTracer is the tracer new trees adopt, set by binaries (the -obs
// flag) before building their trees; SetTracer overrides it per tree.
var defaultTracer atomic.Value // of tracerBox

type tracerBox struct{ tr obs.Tracer }

// SetDefaultTracer installs the tracer that trees created from now on
// start with. Pass nil to disable tracing for new trees.
func SetDefaultTracer(tr obs.Tracer) { defaultTracer.Store(tracerBox{tr: tr}) }

func loadDefaultTracer() obs.Tracer {
	if v := defaultTracer.Load(); v != nil {
		return v.(tracerBox).tr
	}
	return nil
}

// SetTracer sets this tree's query/mutation tracer (nil disables tracing).
// Set it before the tree is shared between goroutines: searches read the
// tracer without synchronization.
func (t *Tree) SetTracer(tr obs.Tracer) { t.tracer = tr }

// SetMetricsEnabled attaches or detaches the tree's obs instruments
// (attached by default). Like SetTracer, flip it only while the tree is
// otherwise idle.
func (t *Tree) SetMetricsEnabled(on bool) {
	if on {
		t.metrics = hybridMetrics()
		t.store.setObs(storeObsFor("hybrid"))
	} else {
		t.metrics = nil
		t.store.setObs(nil)
	}
}

// tally accumulates one query's traversal counts as plain ints; it is
// flushed to the shared atomic counters once, at query end.
type tally struct {
	kdPrunes   int
	elsHits    int
	elsPrunes  int
	distPrunes int
	descents   int
	heapPushes int
	scanned    int
}

// beginQuery starts instrumentation for one search: it clears the tally,
// asks the tracer for a trace (nil when tracing is off or declined) and
// stamps the start time. A zero start time means neither metrics nor
// tracing are active and finishQuery will return immediately.
func (t *Tree) beginQuery(qc *queryCtx, op int) (tr *obs.Trace, start time.Time) {
	qc.tally = tally{}
	if t.tracer != nil {
		tr = t.tracer.StartTrace(opNames[op])
	}
	qc.tr = tr
	if qc.queueWait != 0 {
		tr.AddQueueWait(int64(qc.queueWait))
		qc.queueWait = 0
	}
	if t.metrics != nil || tr != nil {
		start = time.Now()
	}
	return tr, start
}

// finishQuery flushes the query's tally into the shared counters, observes
// its latency and finishes its trace. results is the number of entries this
// query contributed; err is its outcome.
func (t *Tree) finishQuery(qc *queryCtx, op int, start time.Time, results int, err error) {
	if start.IsZero() {
		return
	}
	if m := t.metrics; m != nil {
		m.queries[op].Inc()
		m.latency[op].Observe(int64(time.Since(start)))
		m.outcomes.Record(classifyOutcome(err))
		ta := &qc.tally
		if ta.kdPrunes > 0 {
			m.kdPrunes.Add(uint64(ta.kdPrunes))
		}
		if ta.elsHits > 0 {
			m.elsHits.Add(uint64(ta.elsHits))
		}
		if ta.elsPrunes > 0 {
			m.elsPrunes.Add(uint64(ta.elsPrunes))
		}
		if ta.distPrunes > 0 {
			m.distPrunes.Add(uint64(ta.distPrunes))
		}
		if p := ta.kdPrunes + ta.elsPrunes + ta.distPrunes; p > 0 {
			m.unifiedPrunes.Add(uint64(p))
		}
		if ta.descents > 0 {
			m.descents.Add(uint64(ta.descents))
		}
		if ta.heapPushes > 0 {
			m.heapPushes.Add(uint64(ta.heapPushes))
		}
		if ta.scanned > 0 {
			m.scanned.Add(uint64(ta.scanned))
		}
		if results > 0 {
			m.results.Add(uint64(results))
		}
		if err != nil {
			m.queryErrs.Inc()
		}
	}
	if tr := qc.tr; tr != nil {
		tr.SetResults(results)
		tr.SetError(err)
		tr.FinishSince(start)
		qc.tr = nil
	}
}

// Mutation-operation indices.
const (
	mutInsert = iota
	mutDelete
)

// beginTreeMutation starts instrumentation for a top-level mutation.
// Nested mutations (Delete's orphan reinsertions calling Insert) pass a
// nested scope and get no separate trace or latency sample; their node
// effects still land in the outer mutation's counters.
func (t *Tree) beginTreeMutation(m mutationScope, op int) (tr *obs.Trace, start time.Time) {
	if m.nested {
		return nil, time.Time{}
	}
	if t.tracer != nil {
		if op == mutInsert {
			tr = t.tracer.StartTrace("insert")
		} else {
			tr = t.tracer.StartTrace("delete")
		}
	}
	t.mutTrace = tr
	if t.metrics != nil || tr != nil {
		start = time.Now()
	}
	return tr, start
}

// finishTreeMutation records a top-level mutation's outcome. A zero start
// means the call closes a nested (or uninstrumented) scope: return without
// touching t.mutTrace, which still belongs to the outer mutation.
func (t *Tree) finishTreeMutation(op int, tr *obs.Trace, start time.Time, err error) {
	if start.IsZero() {
		return
	}
	t.mutTrace = nil
	if m := t.metrics; m != nil {
		if op == mutInsert {
			m.inserts.Inc()
			m.insertNs.Observe(int64(time.Since(start)))
		} else {
			m.deletes.Inc()
			m.deleteNs.Observe(int64(time.Since(start)))
		}
		if err != nil {
			m.rollbacks.Inc()
		}
	}
	if tr != nil {
		if err != nil {
			tr.MarkRolledBack()
		}
		tr.SetError(err)
		tr.FinishSince(start)
	}
}

// countSplit records one node split in both the shared counters and the
// current mutation's trace.
func (t *Tree) countSplit(leaf bool) {
	if m := t.metrics; m != nil {
		if leaf {
			m.splitsData.Inc()
		} else {
			m.splitsIndex.Inc()
		}
	}
	t.mutTrace.CountSplit()
}
