package concurrent

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/obs"
)

// ctxPool recycles query contexts across batches: each batch worker checks
// one context out for the lifetime of its whole query slice, so every query
// after the worker's first runs on warm scratch state (rect arena, kd-walk
// stacks, frontier heap) without touching the allocator or the pool.
var ctxPool sync.Pool

func getCtx() *core.QueryContext {
	if v := ctxPool.Get(); v != nil {
		return v.(*core.QueryContext)
	}
	return core.NewQueryContext()
}

func putCtx(c *core.QueryContext) { ctxPool.Put(c) }

// batchMetrics are the executor's shared registered instruments. Workers
// observe into unregistered per-worker histograms (atomic adds, but with no
// cross-core contention) and fold them into these with one Merge at worker
// exit, so the hot loop never touches a shared cache line.
type batchMetrics struct {
	batches *obs.Counter
	queries *obs.Counter
	panics  *obs.Counter   // queries that panicked and were isolated
	queryNS *obs.Histogram // per-query latency inside the worker
	waitNS  *obs.Histogram // queue wait: batch submission -> worker dequeues the item
}

var (
	batchMetricsOnce sync.Once
	batchMetricsVal  *batchMetrics
)

func batchObs() *batchMetrics {
	batchMetricsOnce.Do(func() {
		r := obs.Default()
		batchMetricsVal = &batchMetrics{
			batches: r.Counter("concurrent_batches_total"),
			queries: r.Counter("concurrent_batch_queries_total"),
			panics:  r.Counter("concurrent_query_panics_total"),
			queryNS: r.Histogram("concurrent_batch_query_ns"),
			waitNS:  r.Histogram("concurrent_batch_queue_wait_ns"),
		}
	})
	return batchMetricsVal
}

// runIsolated executes one batch item, converting a panic into a per-query
// error. The search path unwinds cleanly under panic: the query context's
// deferred release (which also unpins the item's snapshot) runs, so the
// context survives for the next item.
func runIsolated(c *core.QueryContext, i int, do func(c *core.QueryContext, i int) error) (err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("concurrent: query %d panicked: %v", i, r)
			panicked = true
		}
	}()
	return do(c, i), false
}

// runBatch fans n work items across a bounded pool of min(GOMAXPROCS, n)
// workers pulling indices from a shared atomic counter. Each worker owns one
// pooled query context for its entire slice, and each item pins its own
// MVCC snapshot independently, so writers commit between queries of a long
// batch instead of starving behind it. The first error stops the
// remaining workers (in-flight items finish); results already produced stay
// in place and the error is returned. A panicking item is isolated: it
// resolves to an error for its own slot, the rest of the batch keeps
// running, and the first panic's error is reported if nothing else failed.
func (t *Tree) runBatch(n int, do func(c *core.QueryContext, i int) error) error {
	m := batchObs()
	m.batches.Inc()
	m.queries.Add(uint64(n))
	submitted := time.Now()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		c := getCtx()
		defer putCtx(c)
		var query, wait obs.Histogram
		defer func() {
			m.queryNS.Merge(&query)
			m.waitNS.Merge(&wait)
		}()
		var panicErr error
		for i := 0; i < n; i++ {
			begin := time.Now()
			wait.Observe(int64(begin.Sub(submitted)))
			c.SetQueueWait(begin.Sub(submitted))
			err, panicked := runIsolated(c, i, do)
			query.ObserveSince(begin)
			if err != nil {
				if !panicked {
					return err
				}
				m.panics.Inc()
				if panicErr == nil {
					panicErr = err
				}
			}
		}
		return panicErr
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := getCtx()
			defer putCtx(c)
			// Per-worker scratch histograms, folded into the registry once.
			var query, wait obs.Histogram
			defer func() {
				m.queryNS.Merge(&query)
				m.waitNS.Merge(&wait)
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				begin := time.Now()
				wait.Observe(int64(begin.Sub(submitted)))
				c.SetQueueWait(begin.Sub(submitted))
				err, panicked := runIsolated(c, i, do)
				query.ObserveSince(begin)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					if panicked {
						m.panics.Inc()
						continue // isolated: the rest of the batch proceeds
					}
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// SearchKNNBatch answers one k-NN query per element of qs, fanning the
// batch across a bounded worker pool. out[i] corresponds to qs[i]. On
// error, the slice holds whatever queries completed before the failure;
// unfinished slots are nil.
func (t *Tree) SearchKNNBatch(qs []geom.Point, k int, m dist.Metric) ([][]core.Neighbor, error) {
	out := make([][]core.Neighbor, len(qs))
	err := t.runBatch(len(qs), func(c *core.QueryContext, i int) error {
		ns, err := t.tree.SearchKNNCtx(c, qs[i], k, m, nil)
		if err != nil {
			return err
		}
		cloneNeighbors(ns)
		out[i] = ns
		return nil
	})
	return out, err
}

// SearchBoxBatch answers one box query per element of qs in parallel;
// out[i] corresponds to qs[i].
func (t *Tree) SearchBoxBatch(qs []geom.Rect) ([][]core.Entry, error) {
	out := make([][]core.Entry, len(qs))
	err := t.runBatch(len(qs), func(c *core.QueryContext, i int) error {
		es, err := t.tree.SearchBoxCtx(c, qs[i], nil)
		if err != nil {
			return err
		}
		cloneEntries(es)
		out[i] = es
		return nil
	})
	return out, err
}

// RangeQuery pairs a center with a radius for SearchRangeBatch.
type RangeQuery struct {
	Center geom.Point
	Radius float64
}

// SearchRangeBatch answers one distance-range query per element of qs in
// parallel; out[i] corresponds to qs[i].
func (t *Tree) SearchRangeBatch(qs []RangeQuery, m dist.Metric) ([][]core.Neighbor, error) {
	out := make([][]core.Neighbor, len(qs))
	err := t.runBatch(len(qs), func(c *core.QueryContext, i int) error {
		ns, err := t.tree.SearchRangeCtx(c, qs[i].Center, qs[i].Radius, m, nil)
		if err != nil {
			return err
		}
		cloneNeighbors(ns)
		out[i] = ns
		return nil
	})
	return out, err
}
