package kdbtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

func build(t testing.TB, n, dim, pageSize int, seed int64) (*Tree, []geom.Point) {
	t.Helper()
	file := pagefile.NewMemFile(pageSize)
	tree, err := New(file, Config{Dim: dim, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
		if err := tree.Insert(p, uint64(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return tree, pts
}

func queryRect(rng *rand.Rand, dim int, side float32) geom.Rect {
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for d := 0; d < dim; d++ {
		c := rng.Float32()
		lo[d], hi[d] = c-side/2, c+side/2
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

func TestValidation(t *testing.T) {
	file := pagefile.NewMemFile(4096)
	if _, err := New(file, Config{Dim: 0}); err == nil {
		t.Fatal("dim 0 accepted")
	}
	tree, err := New(file, Config{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(geom.Point{0.5}, 1); err == nil {
		t.Fatal("wrong dim accepted")
	}
	if err := tree.Insert(geom.Point{0.5, 0.5, 2}, 1); err == nil {
		t.Fatal("out-of-space accepted")
	}
}

func TestBoxMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		n, dim, page int
		side         float32
	}{
		{3000, 2, 512, 0.2},
		{3000, 4, 512, 0.4},
		{2000, 8, 1024, 0.7},
	} {
		t.Run(fmt.Sprintf("n%d_d%d", tc.n, tc.dim), func(t *testing.T) {
			tree, pts := build(t, tc.n, tc.dim, tc.page, 42)
			rng := rand.New(rand.NewSource(7))
			for q := 0; q < 20; q++ {
				rect := queryRect(rng, tc.dim, tc.side)
				got, err := tree.SearchBox(rect)
				if err != nil {
					t.Fatal(err)
				}
				gotSet := make(map[uint64]bool)
				for _, e := range got {
					gotSet[e.RID] = true
				}
				want := 0
				for i, p := range pts {
					if rect.Contains(p) {
						want++
						if !gotSet[uint64(i)] {
							t.Fatalf("query %d: missing %d", q, i)
						}
					}
				}
				if len(gotSet) != want {
					t.Fatalf("query %d: got %d, want %d", q, len(gotSet), want)
				}
			}
		})
	}
}

func TestRangeAndKNN(t *testing.T) {
	tree, pts := build(t, 2000, 4, 512, 13)
	rng := rand.New(rand.NewSource(17))
	m := dist.L2()
	for q := 0; q < 10; q++ {
		center := pts[rng.Intn(len(pts))]
		r := 0.1 + rng.Float64()*0.2
		got, err := tree.SearchRange(center, r, m)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for _, p := range pts {
			if m.Distance(center, p) <= r {
				count++
			}
		}
		if len(got) != count {
			t.Fatalf("range %d: got %d, want %d", q, len(got), count)
		}
	}
	query := geom.Point{0.5, 0.5, 0.5, 0.5}
	got, err := tree.SearchKNN(query, 15, m)
	if err != nil {
		t.Fatal(err)
	}
	dists := make([]float64, len(pts))
	for i, p := range pts {
		dists[i] = m.Distance(query, p)
	}
	sort.Float64s(dists)
	for i, nb := range got {
		if diff := nb.Dist - dists[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("knn %d: %g vs %g", i, nb.Dist, dists[i])
		}
	}
}

// The regions of every index node must be mutually disjoint (interiors) and
// cover the node's own region — the clean-split invariant the K-D-B-tree
// insists on and pays cascades for.
func TestDisjointCover(t *testing.T) {
	tree, _ := build(t, 4000, 3, 512, 19)
	var walk func(id pagefile.PageID, region geom.Rect)
	walk = func(id pagefile.PageID, region geom.Rect) {
		n, err := tree.store.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if n.leaf {
			for _, p := range n.pts {
				if !region.Contains(p) {
					t.Fatalf("point %v escapes region %v", p, region)
				}
			}
			return
		}
		var vol float64
		for i := range n.rects {
			if !region.ContainsRect(n.rects[i]) {
				t.Fatalf("child region %v escapes %v", n.rects[i], region)
			}
			vol += n.rects[i].Area()
			for j := i + 1; j < len(n.rects); j++ {
				inter := n.rects[i].Intersect(n.rects[j])
				if !inter.IsEmpty() && inter.Area() > 1e-12 {
					t.Fatalf("regions %v and %v overlap", n.rects[i], n.rects[j])
				}
			}
		}
		if diff := vol - region.Area(); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("children cover %g of region %g", vol, region.Area())
		}
		for i := range n.rects {
			walk(n.children[i], n.rects[i])
		}
	}
	walk(tree.root, tree.rootRe)
}

// Cascading splits must actually occur and produce underfull nodes — the
// behavior Table 1 summarizes as "no utilization guarantee" and the reason
// Greene observed poor kDB performance even at 4 dimensions.
func TestCascadesAndUtilization(t *testing.T) {
	tree, _ := build(t, 8000, 4, 512, 23)
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 8000 {
		t.Fatalf("entries = %d", st.Entries)
	}
	if st.Cascades == 0 {
		t.Fatal("no cascading splits observed; K-D-B-tree should cascade")
	}
	minGuarantee := 0.3 // what hybrid/hB guarantee; KDB must be able to violate it
	if st.MinLeafFill >= minGuarantee {
		t.Logf("note: no underfull leaf this run (min fill %.2f)", st.MinLeafFill)
	}
	t.Logf("kdb stats: %+v", st)
}

func TestDecodeRejectsCorruption(t *testing.T) {
	file := pagefile.NewMemFile(512)
	tree, err := New(file, Config{Dim: 2, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tree.Insert(geom.Point{float32(i) / 200, float32(i%7) / 7}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the root page and force a decode.
	buf := make([]byte, 512)
	if err := file.ReadPage(tree.root, buf); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte){
		"magic": func(b []byte) { b[0] = 'Q' },
		"type":  func(b []byte) { b[1] = 7 },
		"dim":   func(b []byte) { b[2] = 63 },
		"count": func(b []byte) { b[4] = 0xff; b[5] = 0xff },
	}
	for name, corrupt := range cases {
		page := make([]byte, 512)
		copy(page, buf)
		corrupt(page)
		if err := file.WritePage(tree.root, page); err != nil {
			t.Fatal(err)
		}
		tree.store.DropCache()
		if _, err := tree.SearchBox(geom.UnitCube(2)); err == nil {
			t.Errorf("%s corruption not detected", name)
		}
	}
	// Restore and verify recovery.
	if err := file.WritePage(tree.root, buf); err != nil {
		t.Fatal(err)
	}
	tree.store.DropCache()
	if _, err := tree.SearchBox(geom.UnitCube(2)); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	file := pagefile.NewMemFile(512)
	tree, err := New(file, Config{Dim: 3, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tree.SearchBox(geom.UnitCube(3))
	if err != nil || len(res) != 0 {
		t.Fatalf("empty box = %d, %v", len(res), err)
	}
	nn, err := tree.SearchKNN(geom.Point{0.5, 0.5, 0.5}, 4, dist.L2())
	if err != nil || len(nn) != 0 {
		t.Fatalf("empty knn = %d, %v", len(nn), err)
	}
	rr, err := tree.SearchRange(geom.Point{0.5, 0.5, 0.5}, 0.2, dist.L1())
	if err != nil || len(rr) != 0 {
		t.Fatalf("empty range = %d, %v", len(rr), err)
	}
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 0 || st.LeafNodes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeepCascades(t *testing.T) {
	// Small pages at 6-d: region splits with forced cascades at depth.
	tree, pts := build(t, 6000, 6, 512, 77)
	if tree.Height() < 3 {
		t.Fatalf("height = %d, want >= 3", tree.Height())
	}
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cascades == 0 {
		t.Fatal("no cascades in a deep kdb tree")
	}
	rng := rand.New(rand.NewSource(79))
	for q := 0; q < 10; q++ {
		rect := queryRect(rng, 6, 0.5)
		got, err := tree.SearchBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, p := range pts {
			if rect.Contains(p) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("deep query %d: got %d want %d", q, len(got), want)
		}
	}
}
