package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// NewMux builds the introspection handler tree:
//
//	/metrics        Prometheus text exposition of reg
//	/metrics.json   the same registry as JSON
//	/debug/queries  recent finished traces from ring, newest first
//	                (?n=LIMIT, ?op=FILTER)
//	/debug/vars     expvar
//	/debug/pprof/   the standard pprof handlers
//
// ring may be nil, in which case /debug/queries reports an empty list.
func NewMux(reg *Registry, ring *Ring) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		var traces []*Trace
		if ring != nil {
			traces = ring.Snapshot()
		}
		if op := r.URL.Query().Get("op"); op != "" {
			kept := traces[:0]
			for _, t := range traces {
				if t.Op == op {
					kept = append(kept, t)
				}
			}
			traces = kept
		}
		if ns := r.URL.Query().Get("n"); ns != "" {
			if n, err := strconv.Atoi(ns); err == nil && n >= 0 && n < len(traces) {
				traces = traces[:n]
			}
		}
		if traces == nil {
			traces = []*Trace{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(traces)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the introspection endpoint on addr (e.g. "localhost:6060";
// port 0 picks a free port) and serves it on a background goroutine. The
// returned listener address reports the bound port; Close the server to
// stop it.
func Serve(addr string, reg *Registry, ring *Ring) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: NewMux(reg, ring)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
