package pagefile

import (
	"encoding/binary"
	"sync"
	"testing"
)

// TestMemFileConcurrentReads validates the File contract's reader side:
// any number of concurrent ReadPage/ReadPageSeq calls, with exact atomic
// accounting. Run with -race.
func TestMemFileConcurrentReads(t *testing.T) {
	f := NewMemFile(64)
	const pages = 32
	ids := make([]PageID, pages)
	buf := make([]byte, 64)
	for i := range ids {
		id, err := f.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(buf, uint64(i))
		if err := f.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	f.Stats().Reset()

	const goroutines = 8
	const rounds = 100
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := make([]byte, 64)
			for r := 0; r < rounds; r++ {
				for i, id := range ids {
					var err error
					if (r+g)%2 == 0 {
						err = f.ReadPage(id, local)
					} else {
						err = f.ReadPageSeq(id, local)
					}
					if err != nil {
						errs <- err
						return
					}
					if got := binary.LittleEndian.Uint64(local); got != uint64(i) {
						t.Errorf("page %d read back %d", id, got)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := f.Stats().Reads(); got != uint64(goroutines*rounds*pages) {
		t.Fatalf("reads = %d, want %d", got, goroutines*rounds*pages)
	}
}

// TestBufferedConcurrentReads hammers a small Buffered pool (forcing
// constant eviction and LRU reordering) from many goroutines. The LRU is
// mutated on every read, so this is the regression test for Buffered's
// internal locking.
func TestBufferedConcurrentReads(t *testing.T) {
	inner := NewMemFile(64)
	b := NewBuffered(inner, 4) // much smaller than the working set
	const pages = 32
	ids := make([]PageID, pages)
	buf := make([]byte, 64)
	for i := range ids {
		id, err := b.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(buf, uint64(i))
		if err := b.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := make([]byte, 64)
			for r := 0; r < 50; r++ {
				for i, id := range ids {
					if err := b.ReadPage(id, local); err != nil {
						errs <- err
						return
					}
					if got := binary.LittleEndian.Uint64(local); got != uint64(i) {
						t.Errorf("page %d read back %d", id, got)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}
