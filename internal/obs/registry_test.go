package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentAccess hammers get-or-create and increments from
// many goroutines (run under -race in CI): same-name lookups must converge
// on one instrument and no increment may be lost.
func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("shared_total").Inc()
				r.Counter("per_worker_total{w=\"" + string(rune('a'+w%4)) + "\"}").Inc()
				r.Gauge("g").Set(int64(i))
				r.Histogram("h_ns").Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*per {
		t.Fatalf("shared counter = %d, want %d", got, workers*per)
	}
	var labeled uint64
	for _, l := range []string{"a", "b", "c", "d"} {
		labeled += r.Counter("per_worker_total{w=\"" + l + "\"}").Value()
	}
	if labeled != workers*per {
		t.Fatalf("labeled counters total %d, want %d", labeled, workers*per)
	}
	if got := r.Histogram("h_ns").Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as a gauge after a counter did not panic")
		}
	}()
	r.Gauge("x")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`reads_total{method="hybrid"}`).Add(7)
	r.Counter(`reads_total{method="sr"}`).Add(3)
	r.Gauge("leaked_pages").Set(2)
	h := r.Histogram(`query_ns{op="knn"}`)
	h.Observe(100)
	h.Observe(5)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE reads_total counter",
		`reads_total{method="hybrid"} 7`,
		`reads_total{method="sr"} 3`,
		"# TYPE leaked_pages gauge",
		"leaked_pages 2",
		"# TYPE query_ns histogram",
		`query_ns_bucket{op="knn",le="7"} 1`,
		`query_ns_bucket{op="knn",le="127"} 2`,
		`query_ns_bucket{op="knn",le="+Inf"} 2`,
		`query_ns_sum{op="knn"} 105`,
		`query_ns_count{op="knn"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE reads_total counter") != 1 {
		t.Errorf("TYPE line for reads_total not deduplicated:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(4)
	r.Histogram("h").Observe(9)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]uint64            `json:"counters"`
		Gauges     map[string]int64             `json:"gauges"`
		Histograms map[string]HistogramSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Counters["c"] != 4 {
		t.Fatalf("counters = %v", doc.Counters)
	}
	hs := doc.Histograms["h"]
	if hs.Count != 1 || hs.Sum != 9 || len(hs.Buckets) != 1 || hs.Buckets[0].Le != 15 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
}
