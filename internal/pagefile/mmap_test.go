package pagefile

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

// writeTestFile builds an on-disk page file with n deterministic pages and
// returns its path.
func writeTestFile(t *testing.T, pageSize, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.pag")
	df, err := CreateDiskFile(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id, err := df.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		page := make([]byte, pageSize)
		for j := range page {
			page[j] = byte(i*31 + j)
		}
		if err := df.WritePage(id, page); err != nil {
			t.Fatal(err)
		}
	}
	if err := df.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMmapRoundTrip writes pages through a DiskFile, reopens the file with
// MmapFile, and checks every page reads back byte-identical through both the
// random and sequential read paths, with the access counters tracking each.
func TestMmapRoundTrip(t *testing.T) {
	const pageSize, n = 512, 9
	path := writeTestFile(t, pageSize, n)

	mf, err := OpenMmapFile(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	t.Logf("mapped=%v", mf.Mapped())

	if mf.PageSize() != pageSize {
		t.Fatalf("PageSize = %d, want %d", mf.PageSize(), pageSize)
	}
	if mf.NumPages() != n {
		t.Fatalf("NumPages = %d, want %d", mf.NumPages(), n)
	}

	want := make([]byte, pageSize)
	got := make([]byte, pageSize)
	for i := 0; i < n; i++ {
		for j := range want {
			want[j] = byte(i*31 + j)
		}
		if err := mf.ReadPage(PageID(i), got); err != nil {
			t.Fatalf("ReadPage %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d: random read mismatch", i)
		}
		if err := mf.ReadPageSeq(PageID(i), got); err != nil {
			t.Fatalf("ReadPageSeq %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d: sequential read mismatch", i)
		}
	}
	st := mf.Stats().Snapshot()
	if st.RandomReads != n || st.SeqReads != n {
		t.Fatalf("stats = %d random / %d seq, want %d / %d", st.RandomReads, st.SeqReads, n, n)
	}
}

// TestMmapMatchesDiskFile reads the same file through DiskFile and MmapFile
// and demands identical bytes page for page — the property the read-only
// serving path relies on.
func TestMmapMatchesDiskFile(t *testing.T) {
	const pageSize, n = 256, 17
	path := writeTestFile(t, pageSize, n)

	df, err := OpenDiskFile(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	mf, err := OpenMmapFile(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()

	a := make([]byte, pageSize)
	b := make([]byte, pageSize)
	for i := 0; i < n; i++ {
		if err := df.ReadPage(PageID(i), a); err != nil {
			t.Fatal(err)
		}
		if err := mf.ReadPage(PageID(i), b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("page %d: DiskFile and MmapFile disagree", i)
		}
	}
}

// TestMmapReadOnly verifies every mutating call fails with ErrReadOnly and
// leaves the file readable.
func TestMmapReadOnly(t *testing.T) {
	const pageSize = 128
	path := writeTestFile(t, pageSize, 2)
	mf, err := OpenMmapFile(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()

	if err := mf.WritePage(0, make([]byte, pageSize)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("WritePage err = %v, want ErrReadOnly", err)
	}
	if _, err := mf.Allocate(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Allocate err = %v, want ErrReadOnly", err)
	}
	if err := mf.Free(0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Free err = %v, want ErrReadOnly", err)
	}
	buf := make([]byte, pageSize)
	if err := mf.ReadPage(1, buf); err != nil {
		t.Fatalf("read after rejected writes: %v", err)
	}
}

// TestMmapBoundsAndClose covers out-of-range reads, the empty file, and
// reads after Close.
func TestMmapBoundsAndClose(t *testing.T) {
	const pageSize = 128
	path := writeTestFile(t, pageSize, 3)
	mf, err := OpenMmapFile(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, pageSize)
	if err := mf.ReadPage(3, buf); !errors.Is(err, ErrPageBounds) {
		t.Fatalf("out-of-range read err = %v, want ErrPageBounds", err)
	}
	if err := mf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := mf.ReadPage(0, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close err = %v, want ErrClosed", err)
	}

	empty := writeTestFile(t, pageSize, 0)
	me, err := OpenMmapFile(empty, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if me.NumPages() != 0 {
		t.Fatalf("empty file NumPages = %d", me.NumPages())
	}
	if err := me.Close(); err != nil {
		t.Fatal(err)
	}
}
