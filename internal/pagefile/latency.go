package pagefile

import "time"

// Latency wraps a File and adds a fixed delay to every page read,
// simulating a storage device with non-zero access time. It exists for the
// parallel-throughput experiments: on an in-memory file a query is pure
// CPU and read parallelism only pays with multiple cores, but with
// per-read latency — the regime the paper's disk-access cost model
// describes — concurrent readers overlap their waits, so the read-parallel
// path beats a single-mutex path even on one core. The wrapper adds no
// state of its own, so it is exactly as concurrency-safe as the inner
// file.
type Latency struct {
	File
	// ReadDelay is slept on every ReadPage/ReadPageSeq call.
	ReadDelay time.Duration
}

// WithLatency wraps inner, adding delay to every page read.
func WithLatency(inner File, delay time.Duration) *Latency {
	return &Latency{File: inner, ReadDelay: delay}
}

// ReadPage implements File with simulated access latency.
func (l *Latency) ReadPage(id PageID, buf []byte) error {
	time.Sleep(l.ReadDelay)
	return l.File.ReadPage(id, buf)
}

// ReadPageSeq implements File with simulated access latency.
func (l *Latency) ReadPageSeq(id PageID, buf []byte) error {
	time.Sleep(l.ReadDelay)
	return l.File.ReadPageSeq(id, buf)
}
