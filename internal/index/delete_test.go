package index_test

import (
	"errors"
	"math/rand"
	"testing"

	"hybridtree/internal/geom"
	"hybridtree/internal/index"
)

// TestDeleteAllMethods drives Delete through every adapter: insert a point
// set, delete a random half (interleaved with misses), and check the
// survivors against the sequential-scan oracle after every batch. The
// hB-tree is exempt: it must return ErrUnsupported and change nothing.
func TestDeleteAllMethods(t *testing.T) {
	const dim = 4
	const n = 800
	rng := rand.New(rand.NewSource(41))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
	}
	idxs := buildAll(t, dim, 512, pts)
	oracle := idxs[len(idxs)-1] // the scan
	all := geom.Rect{Lo: make(geom.Point, dim), Hi: make(geom.Point, dim)}
	for d := 0; d < dim; d++ {
		all.Hi[d] = 1
	}

	// Victim order is shared across methods so every structure sees the
	// identical workload.
	victims := rng.Perm(n)[: n/2]
	for _, idx := range idxs {
		if idx.Name() == "hb" {
			before, err := idx.SearchBox(all)
			if err != nil {
				t.Fatal(err)
			}
			found, err := idx.Delete(pts[0], 0)
			if !errors.Is(err, index.ErrUnsupported) || found {
				t.Fatalf("hb delete: found=%v err=%v, want ErrUnsupported", found, err)
			}
			after, err := idx.SearchBox(all)
			if err != nil {
				t.Fatal(err)
			}
			if len(after) != len(before) {
				t.Fatalf("hb delete changed contents: %d -> %d", len(before), len(after))
			}
			continue
		}
		t.Run(idx.Name(), func(t *testing.T) {
			for i, v := range victims {
				found, err := idx.Delete(pts[v], uint64(v))
				if err != nil {
					t.Fatalf("delete %d: %v", v, err)
				}
				if !found {
					t.Fatalf("delete %d: not found", v)
				}
				// Misses: a deleted record, and a rid/point mismatch.
				if found, err := idx.Delete(pts[v], uint64(v)); err != nil || found {
					t.Fatalf("re-delete %d: found=%v err=%v", v, found, err)
				}
				if found, err := idx.Delete(pts[v], uint64(n+1)); err != nil || found {
					t.Fatalf("mismatched delete: found=%v err=%v", found, err)
				}
				if i%100 == 99 {
					checkSurvivors(t, idx, pts, victims[:i+1], all)
				}
			}
			checkSurvivors(t, idx, pts, victims, all)
		})
	}
	// The oracle itself, having been mutated last in idxs order, must agree
	// with a brute-force survivor set too (it participated in the loop above
	// as the final element of idxs).
	_ = oracle
}

func checkSurvivors(t *testing.T, idx index.Index, pts []geom.Point, deleted []int, all geom.Rect) {
	t.Helper()
	dead := make(map[uint64]bool, len(deleted))
	for _, v := range deleted {
		dead[uint64(v)] = true
	}
	got, err := idx.SearchBox(all)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(pts) - len(deleted); len(got) != want {
		t.Fatalf("%s: %d survivors, want %d", idx.Name(), len(got), want)
	}
	seen := make(map[uint64]bool, len(got))
	for _, e := range got {
		if dead[e.RID] {
			t.Fatalf("%s: deleted rid %d still present", idx.Name(), e.RID)
		}
		if seen[e.RID] {
			t.Fatalf("%s: rid %d duplicated", idx.Name(), e.RID)
		}
		seen[e.RID] = true
		if !pts[e.RID].Equal(e.Point) {
			t.Fatalf("%s: rid %d has wrong point", idx.Name(), e.RID)
		}
	}
}

// TestDeleteThenQueryAgree re-runs the cross-method agreement check on
// trees that have absorbed deletions, so post-delete geometry (drained
// SR-tree spheres, stale X-tree MBRs, underfull K-D-B pages) is what the
// queries actually exercise.
func TestDeleteThenQueryAgree(t *testing.T) {
	const dim = 5
	const n = 2000
	rng := rand.New(rand.NewSource(43))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
	}
	idxs := buildAll(t, dim, 512, pts)
	victims := rng.Perm(n)[: 2*n/3]
	for _, idx := range idxs {
		if idx.Name() == "hb" {
			continue
		}
		for _, v := range victims {
			found, err := idx.Delete(pts[v], uint64(v))
			if err != nil || !found {
				t.Fatalf("%s delete %d: found=%v err=%v", idx.Name(), v, found, err)
			}
		}
	}
	oracle := idxs[len(idxs)-1]
	for q := 0; q < 10; q++ {
		lo := make(geom.Point, dim)
		hi := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			c := rng.Float32()
			lo[d], hi[d] = c-0.3, c+0.3
		}
		rect := geom.Rect{Lo: lo, Hi: hi}
		want, err := oracle.SearchBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		wantIDs := rids(want)
		for _, idx := range idxs[:len(idxs)-1] {
			if idx.Name() == "hb" {
				continue // did not absorb the deletes
			}
			got, err := idx.SearchBox(rect)
			if err != nil {
				t.Fatalf("%s box: %v", idx.Name(), err)
			}
			if !equalIDs(rids(got), wantIDs) {
				t.Fatalf("%s box query %d after deletes: %d results, oracle has %d",
					idx.Name(), q, len(got), len(want))
			}
		}
	}
}
