// Package concurrent provides a goroutine-safe wrapper around the hybrid
// tree with a lock-free read path. The core tree publishes MVCC snapshots:
// every committed mutation installs a new immutable tree version with one
// atomic pointer swap, and each search pins the current epoch on entry and
// traverses that version without acquiring any lock. Tree therefore only
// synchronizes writers against each other — a single mutex serializes
// Insert / Delete / Update / Close — while any number of SearchBox /
// SearchRange / SearchKNN / CountBox calls run concurrently with each other
// and with the writer, never blocking behind it. The paper's I/O accounting
// is unaffected — every logical node access is still charged exactly one
// counter increment, and increments commute — so a query batch reports
// byte-identical Stats whether it ran serially or fanned out (see
// TestBatchStatsParity).
//
// For query-heavy workloads, the batch executor (SearchKNNBatch,
// SearchBoxBatch, SearchRangeBatch) fans a query slice across a bounded
// pool of GOMAXPROCS workers.
package concurrent

import (
	"context"
	"fmt"
	"sync"

	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// Tree is a goroutine-safe hybrid tree: mutations serialize on a writer
// mutex, searches run lock-free against MVCC snapshots.
type Tree struct {
	mu   sync.Mutex // writers only; the read path never touches it
	tree *core.Tree
}

// New creates a goroutine-safe hybrid tree on file.
func New(file pagefile.File, cfg core.Config) (*Tree, error) {
	t, err := core.New(file, cfg)
	if err != nil {
		return nil, err
	}
	return &Tree{tree: t}, nil
}

// Open wraps core.Open.
func Open(file pagefile.File, cfg core.Config) (*Tree, error) {
	t, err := core.Open(file, cfg)
	if err != nil {
		return nil, err
	}
	return &Tree{tree: t}, nil
}

// Wrap guards an existing tree. The caller must not use the inner tree
// directly afterwards.
func Wrap(t *core.Tree) *Tree { return &Tree{tree: t} }

// Insert is a goroutine-safe core.Tree.Insert.
func (t *Tree) Insert(p geom.Point, rid core.RecordID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tree.Insert(p, rid)
}

// InsertBatch inserts many entries under one writer-lock acquisition.
// Searches still observe each insert as its own committed snapshot.
func (t *Tree) InsertBatch(pts []geom.Point, rids []core.RecordID) error {
	if len(pts) != len(rids) {
		return fmt.Errorf("concurrent: %d points but %d record ids", len(pts), len(rids))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, p := range pts {
		if err := t.tree.Insert(p, rids[i]); err != nil {
			return err
		}
	}
	return nil
}

// Delete is a goroutine-safe core.Tree.Delete.
func (t *Tree) Delete(p geom.Point, rid core.RecordID) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tree.Delete(p, rid)
}

// Update atomically replaces the vector of a record from the writer's point
// of view: the delete and insert happen under one writer-lock acquisition.
// A concurrent snapshot search may observe the intermediate version in
// which the record is deleted but not yet re-inserted (each step commits
// its own snapshot); it never observes a torn or duplicated record. If the
// re-insert fails (e.g. the new vector lies outside the data space), the
// old vector is restored before returning, so the record is never silently
// lost; should even the restore fail, the error says so explicitly.
func (t *Tree) Update(old, new geom.Point, rid core.RecordID) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	found, err := t.tree.Delete(old, rid)
	if err != nil || !found {
		return found, err
	}
	if err := t.tree.Insert(new, rid); err != nil {
		if rerr := t.tree.Insert(old, rid); rerr != nil {
			return true, fmt.Errorf("concurrent: update of record %d lost the record: insert of new vector failed (%v); restore of old vector also failed: %w", rid, err, rerr)
		}
		return true, fmt.Errorf("concurrent: update of record %d rolled back, old vector kept: %w", rid, err)
	}
	return true, nil
}

// SearchBox is a goroutine-safe core.Tree.SearchBox; it runs lock-free
// against the snapshot current at entry, concurrently with other searches
// and with writers. Returned points are cloned so they remain valid after
// later commits retire the snapshot.
func (t *Tree) SearchBox(q geom.Rect) ([]core.Entry, error) {
	es, err := t.tree.SearchBox(q)
	cloneEntries(es)
	return es, err
}

// SearchRange is a goroutine-safe core.Tree.SearchRange; it runs lock-free
// against the snapshot current at entry.
func (t *Tree) SearchRange(q geom.Point, radius float64, m dist.Metric) ([]core.Neighbor, error) {
	ns, err := t.tree.SearchRange(q, radius, m)
	cloneNeighbors(ns)
	return ns, err
}

// SearchKNN is a goroutine-safe core.Tree.SearchKNN; it runs lock-free
// against the snapshot current at entry.
func (t *Tree) SearchKNN(q geom.Point, k int, m dist.Metric) ([]core.Neighbor, error) {
	ns, err := t.tree.SearchKNN(q, k, m)
	cloneNeighbors(ns)
	return ns, err
}

// SearchKNNContext is a goroutine-safe core.Tree.SearchKNNContext: the
// search checks ctx and the budget once per node visit, degrading to
// best-found-so-far on budget exhaustion (see core.Budget).
func (t *Tree) SearchKNNContext(ctx context.Context, q geom.Point, k int, m dist.Metric, b core.Budget) ([]core.Neighbor, error) {
	c := getCtx()
	defer putCtx(c)
	ns, err := t.tree.SearchKNNContext(ctx, c, q, k, m, b, nil)
	cloneNeighbors(ns)
	return ns, err
}

// SearchBoxContext is a goroutine-safe core.Tree.SearchBoxContext.
func (t *Tree) SearchBoxContext(ctx context.Context, q geom.Rect, b core.Budget) ([]core.Entry, error) {
	c := getCtx()
	defer putCtx(c)
	es, err := t.tree.SearchBoxContext(ctx, c, q, b, nil)
	cloneEntries(es)
	return es, err
}

// SearchRangeContext is a goroutine-safe core.Tree.SearchRangeContext.
func (t *Tree) SearchRangeContext(ctx context.Context, q geom.Point, radius float64, m dist.Metric, b core.Budget) ([]core.Neighbor, error) {
	c := getCtx()
	defer putCtx(c)
	ns, err := t.tree.SearchRangeContext(ctx, c, q, radius, m, b, nil)
	cloneNeighbors(ns)
	return ns, err
}

// CountBox is a goroutine-safe core.Tree.CountBox; it runs lock-free
// against the snapshot current at entry.
func (t *Tree) CountBox(q geom.Rect) (int, error) {
	return t.tree.CountBox(q)
}

// File exposes the underlying page file (for access accounting). The
// returned Stats counters are atomic; snapshot them with Stats.Snapshot
// while queries may be in flight.
func (t *Tree) File() pagefile.File { return t.tree.File() }

// Size returns the number of records in the current published snapshot.
func (t *Tree) Size() int {
	_, size, _ := t.tree.SnapshotInfo()
	return size
}

// SnapshotInfo returns the published snapshot's commit epoch, record count
// and height — one consistent atomic read, safe concurrently with writers.
func (t *Tree) SnapshotInfo() (epoch uint64, size, height int) {
	return t.tree.SnapshotInfo()
}

// Stats computes structural statistics from a pinned snapshot: it runs
// concurrently with searches and writers, never blocking either, and sees
// one consistent committed version.
func (t *Tree) Stats() (core.TreeStats, error) {
	return t.tree.StatsSnapshot()
}

// DropCaches discards the decoded-node caches so subsequent reads go back
// to the page file (cold-query measurements). It takes the writer lock:
// cache eviction shares the version table with committing writers. Pinned
// in-flight searches are unaffected — multi-version chains they may need
// survive the drop, and evicted pages are re-read on demand.
func (t *Tree) DropCaches() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tree.DropCaches()
}

// CheckInvariants runs the structural audit against a pinned snapshot. It
// needs no lock: the audited version is immutable, and the walk charges no
// access counters that a concurrent reader could observe.
func (t *Tree) CheckInvariants() error {
	return t.tree.CheckInvariantsSnapshot()
}

// Flush checkpoints the tree under the writer lock: leaked pages are
// reclaimed, dirty state reaches the page file, and — when a write-ahead
// log sits underneath — the overlay is flushed and the log truncated. It is
// the final step of a graceful drain, after admission has stopped and every
// in-flight writer has drained.
func (t *Tree) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tree.Flush()
}

// LeakedPages reports pages whose release failed (see core.Tree.LeakedPages)
// under the writer lock, so a drain report reads a quiesced value.
func (t *Tree) LeakedPages() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tree.LeakedPages()
}

// Close flushes metadata.
func (t *Tree) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tree.Close()
}

func cloneEntries(es []core.Entry) {
	for i := range es {
		es[i].Point = es[i].Point.Clone()
	}
}

func cloneNeighbors(ns []core.Neighbor) {
	for i := range ns {
		ns[i].Point = ns[i].Point.Clone()
	}
}
