package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// buildRandom creates a tree over n random points with the given config
// tweaks, returning the tree and the reference data.
func buildRandom(t testing.TB, n, dim, pageSize int, cfg Config, seed int64) (*Tree, []geom.Point) {
	t.Helper()
	cfg.Dim = dim
	cfg.PageSize = pageSize
	file := pagefile.NewMemFile(pageSize)
	tree, err := New(file, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
		if err := tree.Insert(p, RecordID(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return tree, pts
}

// clusteredPoints produces points drawn from a few Gaussian-ish clusters —
// closer to real feature data than uniform noise.
func clusteredPoints(n, dim int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	nClusters := 5
	centers := make([]geom.Point, nClusters)
	for c := range centers {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = 0.2 + 0.6*rng.Float32()
		}
		centers[c] = p
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[rng.Intn(nClusters)]
		p := make(geom.Point, dim)
		for d := range p {
			v := c[d] + float32(rng.NormFloat64()*0.05)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			p[d] = v
		}
		pts[i] = p
	}
	return pts
}

func bruteBox(pts []geom.Point, q geom.Rect) map[RecordID]bool {
	out := make(map[RecordID]bool)
	for i, p := range pts {
		if q.Contains(p) {
			out[RecordID(i)] = true
		}
	}
	return out
}

func bruteRange(pts []geom.Point, q geom.Point, r float64, m dist.Metric) map[RecordID]bool {
	out := make(map[RecordID]bool)
	for i, p := range pts {
		if m.Distance(q, p) <= r {
			out[RecordID(i)] = true
		}
	}
	return out
}

func entriesToSet(es []Entry) map[RecordID]bool {
	out := make(map[RecordID]bool)
	for _, e := range es {
		out[e.RID] = true
	}
	return out
}

func neighborsToSet(ns []Neighbor) map[RecordID]bool {
	out := make(map[RecordID]bool)
	for _, n := range ns {
		out[n.RID] = true
	}
	return out
}

func sameSet(t *testing.T, got, want map[RecordID]bool, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", what, len(got), len(want))
	}
	for rid := range want {
		if !got[rid] {
			t.Fatalf("%s: missing rid %d", what, rid)
		}
	}
}

func randQueryRect(rng *rand.Rand, dim int, side float32) geom.Rect {
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for d := 0; d < dim; d++ {
		c := rng.Float32()
		lo[d] = c - side/2
		hi[d] = c + side/2
		if lo[d] > hi[d] {
			lo[d], hi[d] = hi[d], lo[d]
		}
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

func TestEmptyTree(t *testing.T) {
	file := pagefile.NewMemFile(512)
	tree, err := New(file, Config{Dim: 4, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 0 || tree.Height() != 1 {
		t.Fatalf("size=%d height=%d", tree.Size(), tree.Height())
	}
	res, err := tree.SearchBox(geom.UnitCube(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty tree returned %d entries", len(res))
	}
	nn, err := tree.SearchKNN(geom.Point{0.5, 0.5, 0.5, 0.5}, 3, dist.L2())
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 0 {
		t.Fatal("empty tree returned neighbors")
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertValidation(t *testing.T) {
	file := pagefile.NewMemFile(512)
	tree, err := New(file, Config{Dim: 2, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(geom.Point{0.5}, 1); err == nil {
		t.Fatal("wrong dimensionality accepted")
	}
	if err := tree.Insert(geom.Point{0.5, 1.5}, 1); err == nil {
		t.Fatal("out-of-space vector accepted")
	}
	if err := tree.Insert(geom.Point{0.5, 0.5}, 1); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	file := pagefile.NewMemFile(4096)
	cases := []Config{
		{Dim: 0},
		{Dim: 2, PageSize: 16},
		{Dim: 2, PageSize: 4096, MinFillData: 0.9},
		{Dim: 2, PageSize: 4096, MinFillIndex: 0.9},
		{Dim: 2, PageSize: 4096, ELSBits: 32},
		{Dim: 2, PageSize: 4096, QuerySide: -1},
		{Dim: 1000, PageSize: 512}, // cannot hold two entries
	}
	for i, cfg := range cases {
		if _, err := New(file, cfg); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
	if _, err := New(pagefile.NewMemFile(1024), Config{Dim: 2, PageSize: 4096}); err == nil {
		t.Error("page-size mismatch with file accepted")
	}
}

func TestBoxSearchMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		n, dim, page int
		side         float32
	}{
		{n: 3000, dim: 2, page: 512, side: 0.2},
		{n: 3000, dim: 8, page: 512, side: 0.7},
		{n: 2000, dim: 16, page: 1024, side: 0.9},
		{n: 1000, dim: 64, page: 4096, side: 1.2},
	} {
		t.Run(fmt.Sprintf("n%d_d%d", tc.n, tc.dim), func(t *testing.T) {
			tree, pts := buildRandom(t, tc.n, tc.dim, tc.page, Config{}, 42)
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
			rng := rand.New(rand.NewSource(7))
			for q := 0; q < 25; q++ {
				rect := randQueryRect(rng, tc.dim, tc.side)
				got, err := tree.SearchBox(rect)
				if err != nil {
					t.Fatal(err)
				}
				sameSet(t, entriesToSet(got), bruteBox(pts, rect), fmt.Sprintf("box query %d", q))
			}
		})
	}
}

func TestBoxSearchClusteredData(t *testing.T) {
	pts := clusteredPoints(4000, 12, 3)
	file := pagefile.NewMemFile(1024)
	tree, err := New(file, Config{Dim: 12, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := tree.Insert(p, RecordID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for q := 0; q < 25; q++ {
		rect := randQueryRect(rng, 12, 0.6)
		got, err := tree.SearchBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, entriesToSet(got), bruteBox(pts, rect), fmt.Sprintf("clustered box %d", q))
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	tree, pts := buildRandom(t, 2500, 8, 512, Config{}, 11)
	rng := rand.New(rand.NewSource(13))
	for _, m := range []dist.Metric{dist.L1(), dist.L2(), dist.Linf()} {
		for q := 0; q < 15; q++ {
			center := pts[rng.Intn(len(pts))]
			r := 0.1 + rng.Float64()*0.5
			got, err := tree.SearchRange(center, r, m)
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, neighborsToSet(got), bruteRange(pts, center, r, m),
				fmt.Sprintf("%s range %d", m.Name(), q))
			for _, nb := range got {
				if nb.Dist > r {
					t.Fatalf("result outside radius: %g > %g", nb.Dist, r)
				}
			}
		}
	}
}

func TestRangeSearchWeightedMetric(t *testing.T) {
	// Arbitrary distance function supplied at query time — the headline
	// flexibility claim of Section 3.5.
	tree, pts := buildRandom(t, 1500, 6, 512, Config{}, 17)
	weights := []float64{3, 0.5, 1, 0, 2, 1}
	m, err := dist.NewWeightedLp(2, weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	for q := 0; q < 10; q++ {
		center := pts[rng.Intn(len(pts))]
		r := 0.2 + rng.Float64()*0.4
		got, err := tree.SearchRange(center, r, m)
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, neighborsToSet(got), bruteRange(pts, center, r, m), "weighted range")
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	tree, pts := buildRandom(t, 2500, 8, 512, Config{}, 23)
	rng := rand.New(rand.NewSource(29))
	for _, m := range []dist.Metric{dist.L1(), dist.L2()} {
		for q := 0; q < 15; q++ {
			query := make(geom.Point, 8)
			for d := range query {
				query[d] = rng.Float32()
			}
			k := 1 + rng.Intn(20)
			got, err := tree.SearchKNN(query, k, m)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != k {
				t.Fatalf("got %d neighbors, want %d", len(got), k)
			}
			// Distances must be sorted and match the brute-force k-th.
			dists := make([]float64, len(pts))
			for i, p := range pts {
				dists[i] = m.Distance(query, p)
			}
			sort.Float64s(dists)
			for i, nb := range got {
				if i > 0 && nb.Dist < got[i-1].Dist {
					t.Fatal("neighbors not sorted by distance")
				}
				if !almostEq(nb.Dist, dists[i]) {
					t.Fatalf("%s neighbor %d dist %g, brute force %g", m.Name(), i, nb.Dist, dists[i])
				}
			}
		}
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestKNNMoreThanSize(t *testing.T) {
	tree, pts := buildRandom(t, 50, 4, 512, Config{}, 31)
	got, err := tree.SearchKNN(pts[0], 100, dist.L2())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("k > size returned %d, want %d", len(got), len(pts))
	}
}

func TestPointSearch(t *testing.T) {
	tree, pts := buildRandom(t, 1000, 4, 512, Config{}, 37)
	for i := 0; i < 50; i++ {
		rids, err := tree.SearchPoint(pts[i])
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range rids {
			if r == RecordID(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("point %d not found by exact search", i)
		}
	}
	missing := geom.Point{0.12345, 0.9999, 0.5, 0.0001}
	rids, err := tree.SearchPoint(missing)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 0 {
		t.Fatalf("absent point returned %v", rids)
	}
}

func TestSearchValidation(t *testing.T) {
	tree, _ := buildRandom(t, 100, 4, 512, Config{}, 41)
	if _, err := tree.SearchBox(geom.UnitCube(3)); err == nil {
		t.Fatal("wrong-dim box accepted")
	}
	if _, err := tree.SearchRange(geom.Point{0.5}, 0.1, dist.L2()); err == nil {
		t.Fatal("wrong-dim range accepted")
	}
	if _, err := tree.SearchRange(make(geom.Point, 4), -1, dist.L2()); err == nil {
		t.Fatal("negative radius accepted")
	}
	if _, err := tree.SearchKNN(geom.Point{0.5}, 1, dist.L2()); err == nil {
		t.Fatal("wrong-dim knn accepted")
	}
	if _, err := tree.SearchKNN(make(geom.Point, 4), 0, dist.L2()); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestDuplicatePoints(t *testing.T) {
	// Many copies of few distinct vectors force splits through duplicate
	// coordinates — the degenerate case the two-split-position
	// representation must absorb.
	file := pagefile.NewMemFile(512)
	tree, err := New(file, Config{Dim: 4, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	base := []geom.Point{
		{0.1, 0.2, 0.3, 0.4},
		{0.5, 0.5, 0.5, 0.5},
		{0.9, 0.1, 0.9, 0.1},
	}
	var pts []geom.Point
	for i := 0; i < 900; i++ {
		p := base[i%len(base)]
		pts = append(pts, p)
		if err := tree.Insert(p, RecordID(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rids, err := tree.SearchPoint(base[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 300 {
		t.Fatalf("found %d duplicates, want 300", len(rids))
	}
}

func TestVAMPolicyCorrectness(t *testing.T) {
	tree, pts := buildRandom(t, 2000, 8, 512, Config{Policy: VAMPolicy{}}, 43)
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(47))
	for q := 0; q < 15; q++ {
		rect := randQueryRect(rng, 8, 0.7)
		got, err := tree.SearchBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, entriesToSet(got), bruteBox(pts, rect), "VAM box")
	}
}

func TestELSDisabledCorrectness(t *testing.T) {
	// Live-space encoding is purely a pruning optimization: results must be
	// byte-identical with it off, coarse, and fine.
	resOff := searchSignature(t, Config{ELSDisabled: true})
	resCoarse := searchSignature(t, Config{ELSBits: 1})
	resFine := searchSignature(t, Config{ELSBits: 12})
	if resOff != resCoarse || resOff != resFine {
		t.Fatal("ELS configuration changed search results")
	}
}

// searchSignature builds a deterministic tree and fingerprints query
// results.
func searchSignature(t *testing.T, cfg Config) string {
	tree, _ := buildRandom(t, 1500, 8, 512, cfg, 53)
	rng := rand.New(rand.NewSource(59))
	sig := ""
	for q := 0; q < 10; q++ {
		rect := randQueryRect(rng, 8, 0.6)
		got, err := tree.SearchBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		set := entriesToSet(got)
		rids := make([]int, 0, len(set))
		for r := range set {
			rids = append(rids, int(r))
		}
		sort.Ints(rids)
		sig += fmt.Sprint(rids)
	}
	return sig
}

func TestELSReducesAccesses(t *testing.T) {
	// Clustered data leaves dead space; live-space encoding must prune
	// accesses without changing results (the Figure 5(c) effect).
	pts := clusteredPoints(4000, 16, 61)
	run := func(bits int) (uint64, int) {
		file := pagefile.NewMemFile(1024)
		// ELSBits 0 means default(4); to disable we compare 1 vs 8 bits is
		// not enough — build a disabled table via negative? Use bits as
		// given; caller passes 1 and 8.
		tree, err := New(file, Config{Dim: 16, PageSize: 1024, ELSBits: bits})
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pts {
			if err := tree.Insert(p, RecordID(i)); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(67))
		file.Stats().Reset()
		total := 0
		for q := 0; q < 40; q++ {
			rect := randQueryRect(rng, 16, 0.4)
			got, err := tree.SearchBox(rect)
			if err != nil {
				t.Fatal(err)
			}
			total += len(got)
		}
		return file.Stats().Reads(), total
	}
	loBitsReads, loCount := run(1)
	hiBitsReads, hiCount := run(8)
	if loCount != hiCount {
		t.Fatalf("result counts differ: %d vs %d", loCount, hiCount)
	}
	if hiBitsReads > loBitsReads {
		t.Fatalf("8-bit ELS (%d reads) worse than 1-bit (%d reads)", hiBitsReads, loBitsReads)
	}
}

func TestFaultInjection(t *testing.T) {
	// Storage failures must surface as errors, not panics or silent
	// corruption.
	inner := pagefile.NewMemFile(512)
	file := pagefile.NewFaultFile(inner, 1<<30)
	tree, err := New(file, Config{Dim: 4, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	insert := func() error {
		p := geom.Point{rng.Float32(), rng.Float32(), rng.Float32(), rng.Float32()}
		return tree.Insert(p, RecordID(rng.Int63()))
	}
	for i := 0; i < 500; i++ {
		if err := insert(); err != nil {
			t.Fatal(err)
		}
	}
	// Burn the fuse and verify errors propagate. The decoded cache can
	// absorb reads, so force decode paths too.
	tree.DropCaches()
	file.SetRemaining(0)
	if err := insert(); !errors.Is(err, pagefile.ErrInjected) {
		t.Fatalf("insert error = %v, want ErrInjected", err)
	}
	if _, err := tree.SearchBox(geom.UnitCube(4)); !errors.Is(err, pagefile.ErrInjected) {
		t.Fatalf("search error = %v, want ErrInjected", err)
	}
	if _, err := tree.SearchKNN(make(geom.Point, 4), 3, dist.L2()); !errors.Is(err, pagefile.ErrInjected) {
		t.Fatalf("knn error = %v, want ErrInjected", err)
	}
	if _, err := tree.SearchRange(make(geom.Point, 4), 0.5, dist.L2()); !errors.Is(err, pagefile.ErrInjected) {
		t.Fatalf("range error = %v, want ErrInjected", err)
	}
}

// TestRootELSStaysFreshAfterRebuild: RebuildELS (the recovery path) stores
// an ELS entry for every node including the root — which a fresh tree never
// has, so the insert descent historically only enlarged child entries. The
// root's entry then went stale as later inserts landed outside it, breaking
// the containment invariant and (for any reader of that entry) allowing
// live points to be pruned away. Inserts must keep a present root entry
// fresh.
func TestRootELSStaysFreshAfterRebuild(t *testing.T) {
	const dim, pageSize = 2, 512
	cfg := Config{Dim: dim, PageSize: pageSize}
	file := pagefile.NewMemFile(pageSize)
	tree, err := New(file, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed points clustered in the lower-left quadrant so the rebuilt root
	// entry is a strict subset of the space.
	rng := rand.New(rand.NewSource(11))
	n := 0
	for ; n < 300; n++ {
		p := geom.Point{rng.Float32() * 0.4, rng.Float32() * 0.4}
		if err := tree.Insert(p, RecordID(n+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.RebuildELS(); err != nil {
		t.Fatal(err)
	}
	// Now insert points far outside the rebuilt live space.
	for i := 0; i < 100; i++ {
		p := geom.Point{0.6 + rng.Float32()*0.4, 0.6 + rng.Float32()*0.4}
		n++
		if err := tree.Insert(p, RecordID(n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("root ELS entry went stale: %v", err)
	}
	got, err := tree.SearchBox(geom.Rect{Lo: geom.Point{0.6, 0.6}, Hi: geom.Point{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("found %d of 100 points inserted after the rebuild", len(got))
	}
}
