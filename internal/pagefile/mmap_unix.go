//go:build unix

package pagefile

import (
	"os"
	"syscall"
)

// mmapReadOnly maps size bytes of f read-only and shared, so the kernel's
// page cache backs the data directly and multiple processes mapping the same
// index share physical memory.
func mmapReadOnly(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmap releases a mapping created by mmapReadOnly.
func munmap(data []byte) error {
	return syscall.Munmap(data)
}
