// Package index defines the common interface the benchmark harness drives
// every access method through: the hybrid tree, the SR-tree and hB-tree
// competitors, the KDB-tree strawman, and sequential scan. Keeping the
// harness against one interface is what makes the paper's "normalize
// everything against linear scan" methodology (Section 4) mechanical.
package index

import (
	"context"
	"errors"

	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// Entry is one stored (vector, record id) pair.
type Entry struct {
	Point geom.Point
	RID   uint64
}

// Neighbor is an Entry annotated with its distance to a query.
type Neighbor struct {
	Entry
	Dist float64
}

// ErrUnsupported is returned by access methods that do not implement a
// query type — notably the hB-tree for distance-based queries, which the
// paper excludes from Figure 7(c,d) for exactly this reason (footnote 2).
var ErrUnsupported = errors.New("index: query type unsupported by this access method")

// Lifecycle is the optional request-lifecycle extension of Index: queries
// that honor a context (cancellation, deadline) and a per-query resource
// budget. Budget exhaustion degrades — the partial result is returned
// alongside a *core.ErrBudgetExceeded — while context abandonment discards
// partials and returns ctx.Err(). The harness type-asserts for this
// interface and falls back to the plain methods when a method lacks it.
type Lifecycle interface {
	Index
	SearchBoxContext(ctx context.Context, q geom.Rect, b core.Budget) ([]Entry, error)
	SearchRangeContext(ctx context.Context, q geom.Point, radius float64, m dist.Metric, b core.Budget) ([]Neighbor, error)
	SearchKNNContext(ctx context.Context, q geom.Point, k int, m dist.Metric, b core.Budget) ([]Neighbor, error)
}

// Index is a paginated multidimensional access method.
type Index interface {
	// Name identifies the method in reports ("hybrid", "sr", "hb", ...).
	Name() string
	// Insert adds one (vector, record id) pair.
	Insert(p geom.Point, rid uint64) error
	// Delete removes one entry matching (p, rid) exactly, reporting whether
	// it was found, or returns ErrUnsupported.
	Delete(p geom.Point, rid uint64) (bool, error)
	// SearchBox returns all entries inside q, boundaries inclusive.
	SearchBox(q geom.Rect) ([]Entry, error)
	// SearchRange returns all entries within radius of q under m, or
	// ErrUnsupported.
	SearchRange(q geom.Point, radius float64, m dist.Metric) ([]Neighbor, error)
	// SearchKNN returns the k nearest entries to q under m, closest first,
	// or ErrUnsupported.
	SearchKNN(q geom.Point, k int, m dist.Metric) ([]Neighbor, error)
	// File exposes the underlying page file for access accounting.
	File() pagefile.File
}
