package bench

import (
	"fmt"

	"hybridtree/internal/core"
	"hybridtree/internal/index"
	"hybridtree/internal/obs"
)

// TableObs is not a table from the paper: it reads back the unified obs
// counters (index_node_reads_total, index_cache_hits_total / _misses_total,
// index_prunes_total) for every access method over one calibrated FOURIER
// box workload. Because every method reports through the same resolver
// (obs.IndexCounters), the per-query node-visit and prune columns are
// directly comparable — the table is the cross-method view the paper's
// figures aggregate away.
func TableObs(o Options) (*Table, error) {
	o = o.withDefaults()
	n := o.FourierN
	if n > 30000 {
		n = 30000 // the counters need a real tree, not the paper's scale
	}
	const dim = 16
	data, queries, _, err := fourierWorkload(o, n, dim)
	if err != nil {
		return nil, err
	}
	o.logf("tableobs: building all structures at dim=%d n=%d\n", dim, n)

	hybrid, err := BuildHybrid(data, o.PageSize, core.Config{})
	if err != nil {
		return nil, err
	}
	sr, err := BuildSR(data, o.PageSize)
	if err != nil {
		return nil, err
	}
	hb, err := BuildHB(data, o.PageSize)
	if err != nil {
		return nil, err
	}
	kdb, err := BuildKDB(data, o.PageSize)
	if err != nil {
		return nil, err
	}
	x, err := BuildX(data, o.PageSize)
	if err != nil {
		return nil, err
	}
	scan, err := BuildScan(data, o.PageSize)
	if err != nil {
		return nil, err
	}

	builds := []struct {
		label string
		idx   index.Index
	}{
		{"Hybrid tree", hybrid},
		{"SR-tree", sr},
		{"hB-tree", hb},
		{"KDB-tree", kdb},
		{"X-tree", x},
		{"Seq scan", scan},
	}

	t := &Table{
		Title:   fmt.Sprintf("Per-method obs counters (FOURIER %dK %d-d, %d box queries)", n/1000, dim, len(queries)),
		Columns: []string{"Method", "node reads/query", "cache hit%", "prunes/query", "results/query"},
	}
	for _, b := range builds {
		reads, hits, misses := obs.IndexCounters(obs.Default(), b.idx.Name())
		prunes := obs.PruneCounter(obs.Default(), b.idx.Name())
		r0, h0, m0, p0 := reads.Value(), hits.Value(), misses.Value(), prunes.Value()
		results := 0
		for _, q := range queries {
			es, err := b.idx.SearchBox(q)
			if err != nil {
				return nil, fmt.Errorf("tableobs: %s box query: %w", b.idx.Name(), err)
			}
			results += len(es)
		}
		dr := reads.Value() - r0
		dh := hits.Value() - h0
		dm := misses.Value() - m0
		dp := prunes.Value() - p0
		nq := float64(len(queries))
		hitPct := "-"
		if dh+dm > 0 {
			hitPct = fmt.Sprintf("%.1f%%", 100*float64(dh)/float64(dh+dm))
		}
		t.Rows = append(t.Rows, []string{
			b.label,
			fmt.Sprintf("%.1f", float64(dr)/nq),
			hitPct,
			fmt.Sprintf("%.1f", float64(dp)/nq),
			fmt.Sprintf("%.1f", float64(results)/nq),
		})
	}
	return t, nil
}
