package concurrent

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

func randPoint(rng *rand.Rand, dim int) geom.Point {
	p := make(geom.Point, dim)
	for d := range p {
		p[d] = rng.Float32()
	}
	return p
}

func buildTree(t *testing.T, dim, n int, pageSize int) (*Tree, []geom.Point) {
	t.Helper()
	file := pagefile.NewMemFile(pageSize)
	tree, err := New(file, core.Config{Dim: dim, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	pts := make([]geom.Point, n)
	rids := make([]core.RecordID, n)
	for i := range pts {
		pts[i] = randPoint(rng, dim)
		rids[i] = core.RecordID(i)
	}
	if err := tree.InsertBatch(pts, rids); err != nil {
		t.Fatal(err)
	}
	return tree, pts
}

// TestConcurrentStress mixes parallel readers, writers, updaters and
// periodic full-structure audits on one tree. It is only meaningful under
// `go test -race`, where it validates the reader/writer locking end to end:
// searches share the lock, mutations and CheckInvariants exclude everyone.
func TestConcurrentStress(t *testing.T) {
	const (
		dim        = 6
		seedN      = 3000
		inserters  = 3
		deleters   = 2
		updaters   = 2
		searchers  = 6
		opsPerGoro = 150
	)
	tree, seed := buildTree(t, dim, seedN, 512)

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	for g := 0; g < inserters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < opsPerGoro; i++ {
				if err := tree.Insert(randPoint(rng, dim), core.RecordID(100000+g*10000+i)); err != nil {
					fail(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < deleters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPerGoro; i++ {
				idx := g*opsPerGoro + i
				if _, err := tree.Delete(seed[idx], core.RecordID(idx)); err != nil {
					fail(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < updaters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + g)))
			for i := 0; i < opsPerGoro; i++ {
				// Update records the deleters never touch.
				idx := seedN - 1 - g*opsPerGoro - i
				newP := randPoint(rng, dim)
				found, err := tree.Update(seed[idx], newP, core.RecordID(idx))
				if err != nil {
					fail(err)
					return
				}
				if found {
					seed[idx] = newP
				}
			}
		}(g)
	}
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(3000 + g)))
			for i := 0; i < opsPerGoro; i++ {
				c := randPoint(rng, dim)
				if _, err := tree.SearchKNN(c, 4, dist.L2()); err != nil {
					fail(err)
					return
				}
				lo, hi := make(geom.Point, dim), make(geom.Point, dim)
				for d := 0; d < dim; d++ {
					lo[d], hi[d] = c[d]*0.5, c[d]*0.5+0.25
				}
				if _, err := tree.SearchBox(geom.Rect{Lo: lo, Hi: hi}); err != nil {
					fail(err)
					return
				}
				if i%25 == 0 {
					if err := tree.CheckInvariants(); err != nil {
						fail(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	want := seedN + inserters*opsPerGoro - deleters*opsPerGoro
	if got := tree.Size(); got != want {
		t.Fatalf("size = %d, want %d", got, want)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateRollback verifies the fix for the lost-record bug: when the
// re-insert of an update fails, the old vector must be restored and the
// error surfaced.
func TestUpdateRollback(t *testing.T) {
	file := pagefile.NewMemFile(512)
	tree, err := New(file, core.Config{Dim: 2, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	oldP := geom.Point{0.3, 0.3}
	if err := tree.Insert(oldP, 7); err != nil {
		t.Fatal(err)
	}
	// The new vector lies outside the unit-cube data space, so the insert
	// half of the update must fail after the delete half succeeded.
	badP := geom.Point{1.5, 1.5}
	found, err := tree.Update(oldP, badP, 7)
	if !found {
		t.Fatal("update did not find the record")
	}
	if err == nil {
		t.Fatal("update with out-of-space vector reported success")
	}
	// The record must still be present at its old location.
	n, cerr := tree.CountBox(geom.Rect{Lo: oldP, Hi: oldP})
	if cerr != nil || n != 1 {
		t.Fatalf("old location count after rollback = %d, %v", n, cerr)
	}
	if got := tree.Size(); got != 1 {
		t.Fatalf("size after rollback = %d, want 1", got)
	}
}

// TestBatchMatchesSequential checks that the batch executors return, slot
// for slot, exactly what one-at-a-time calls return.
func TestBatchMatchesSequential(t *testing.T) {
	const dim = 5
	tree, _ := buildTree(t, dim, 2500, 1024)
	rng := rand.New(rand.NewSource(9))

	knnQs := make([]geom.Point, 40)
	boxQs := make([]geom.Rect, 40)
	rangeQs := make([]RangeQuery, 40)
	for i := range knnQs {
		c := randPoint(rng, dim)
		knnQs[i] = c
		lo, hi := make(geom.Point, dim), make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			lo[d], hi[d] = c[d]*0.5, c[d]*0.5+0.3
		}
		boxQs[i] = geom.Rect{Lo: lo, Hi: hi}
		rangeQs[i] = RangeQuery{Center: c, Radius: 0.25}
	}

	gotKNN, err := tree.SearchKNNBatch(knnQs, 5, dist.L2())
	if err != nil {
		t.Fatal(err)
	}
	gotBox, err := tree.SearchBoxBatch(boxQs)
	if err != nil {
		t.Fatal(err)
	}
	gotRange, err := tree.SearchRangeBatch(rangeQs, dist.L1())
	if err != nil {
		t.Fatal(err)
	}
	for i := range knnQs {
		wantK, err := tree.SearchKNN(knnQs[i], 5, dist.L2())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotKNN[i], wantK) {
			t.Fatalf("knn batch result %d differs from sequential", i)
		}
		wantB, err := tree.SearchBox(boxQs[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(wantB) != len(gotBox[i]) {
			t.Fatalf("box batch result %d: %d entries, sequential %d", i, len(gotBox[i]), len(wantB))
		}
		wantR, err := tree.SearchRange(rangeQs[i].Center, rangeQs[i].Radius, dist.L1())
		if err != nil {
			t.Fatal(err)
		}
		if len(wantR) != len(gotRange[i]) {
			t.Fatalf("range batch result %d: %d entries, sequential %d", i, len(gotRange[i]), len(wantR))
		}
	}
}

// TestBatchStatsParity pins the accounting guarantee the paper's
// evaluation depends on: a query batch charges byte-identical Stats
// whether it runs sequentially or fanned across the worker pool. Every
// logical node access is one atomic increment either way, and increments
// commute.
func TestBatchStatsParity(t *testing.T) {
	const dim = 6
	tree, _ := buildTree(t, dim, 4000, 1024)
	rng := rand.New(rand.NewSource(11))
	qs := make([]geom.Point, 64)
	for i := range qs {
		qs[i] = randPoint(rng, dim)
	}
	stats := tree.tree.File().Stats()

	stats.Reset()
	for _, q := range qs {
		if _, err := tree.SearchKNN(q, 5, dist.L2()); err != nil {
			t.Fatal(err)
		}
	}
	sequential := stats.Snapshot()

	stats.Reset()
	if _, err := tree.SearchKNNBatch(qs, 5, dist.L2()); err != nil {
		t.Fatal(err)
	}
	parallel := stats.Snapshot()

	if sequential != parallel {
		t.Fatalf("stats diverge: sequential %+v, parallel %+v", sequential, parallel)
	}
	if sequential.RandomReads == 0 {
		t.Fatal("query batch charged no reads; accounting is broken")
	}
}

// TestBatchError checks that a failing query aborts the batch and surfaces
// the error.
func TestBatchError(t *testing.T) {
	tree, _ := buildTree(t, 4, 100, 512)
	qs := []geom.Point{
		{0.1, 0.1, 0.1, 0.1},
		{0.2, 0.2}, // wrong dimensionality
		{0.3, 0.3, 0.3, 0.3},
	}
	if _, err := tree.SearchKNNBatch(qs, 3, dist.L2()); err == nil {
		t.Fatal("batch with bad query reported success")
	}
}

// TestBatchContextPoolStress drives several whole batches concurrently —
// each batch checks worker contexts out of the shared pool — while writers
// mutate the tree between queries. Run under -race this proves a pooled
// query context is never live in two batch workers at once (the context's
// busy flag would also panic), and that every batch still returns exactly
// what a serial query returns at some consistent point in time.
func TestBatchContextPoolStress(t *testing.T) {
	const (
		dim     = 6
		seedN   = 2000
		batches = 6
		queries = 80
	)
	tree, pts := buildTree(t, dim, seedN, 512)
	rng := rand.New(rand.NewSource(7))

	qs := make([]geom.Point, queries)
	for i := range qs {
		qs[i] = pts[rng.Intn(len(pts))].Clone()
	}
	want, err := tree.SearchKNNBatch(qs, 5, dist.L2())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, batches+1)
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := tree.SearchKNNBatch(qs, 5, dist.L2())
			if err != nil {
				errs <- err
				return
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("batch result %d differs across concurrent batches", i)
					return
				}
			}
		}()
	}
	// One writer forcing lock handoffs between batch items. Each update
	// rewrites a record with its own vector, so the tree's contents — and
	// therefore every batch's expected results — never change.
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(8))
		for i := 0; i < 50; i++ {
			j := wrng.Intn(len(pts))
			if _, err := tree.Update(pts[j], pts[j], core.RecordID(j)); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
