package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/wal"
)

func seededPoints(seed int64, n, dim int) ([]geom.Point, []RecordID) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	rids := make([]RecordID, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = float32(rng.Float64())
		}
		pts[i] = p
		rids[i] = RecordID(i + 1)
	}
	return pts, rids
}

func allEntries(t *testing.T, tree *Tree) []Entry {
	t.Helper()
	got, err := tree.SearchBox(tree.Config().Space)
	if err != nil {
		t.Fatalf("SearchBox: %v", err)
	}
	return got
}

// TestFlushMakesDurable is the regression for the silent-durability gap:
// Flush used to rewrite pages without ever syncing, so "the on-disk image
// matches memory" was only true until the next power cut. Now a clean
// Flush must survive a crash of everything volatile.
func TestFlushMakesDurable(t *testing.T) {
	const dim, pageSize, n = 3, 512, 300
	file := pagefile.NewCrashFile(pageSize)
	tree, err := New(file, Config{Dim: dim, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	pts, rids := seededPoints(41, n, dim)
	for i := range pts {
		if err := tree.Insert(pts[i], rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if file.VolatilePages() != 0 {
		t.Fatalf("%d pages still volatile after Flush — Flush did not sync", file.VolatilePages())
	}

	file.Crash(42)
	reopened, err := Open(file, Config{Dim: dim, PageSize: pageSize})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	if got := len(allEntries(t, reopened)); got != n {
		t.Fatalf("recovered %d records, want %d", got, n)
	}
	if err := reopened.CheckInvariants(); err != nil {
		t.Fatalf("invariants after crash: %v", err)
	}
}

// TestFlushReportsSyncFailure: a failed fsync must fail the Flush — the
// caller was promised durability and didn't get it.
func TestFlushReportsSyncFailure(t *testing.T) {
	const dim, pageSize = 2, 512
	inner := pagefile.NewCrashFile(pageSize)
	chaos := pagefile.NewChaosFile(inner, pagefile.ChaosProfile{SyncErr: 1}, 7)
	chaos.SetEnabled(false)
	tree, err := New(chaos, Config{Dim: dim, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(geom.Point{0.5, 0.5}, 1); err != nil {
		t.Fatal(err)
	}
	chaos.SetEnabled(true)
	if err := tree.Flush(); !errors.Is(err, pagefile.ErrInjected) {
		t.Fatalf("Flush with failing fsync: err = %v, want ErrInjected", err)
	}
	if c := chaos.Counts(); c.SyncErrs == 0 {
		t.Fatalf("sync fault was not injected: %+v", c)
	}
	chaos.SetEnabled(false)
	if err := tree.Flush(); err != nil {
		t.Fatalf("clean Flush after fault: %v", err)
	}
}

// TestLostSyncStaysVolatile documents the lying-fsync mode: Sync reports
// success but the device never persisted. Flush cannot detect it (neither
// can a real database), which is why the WAL's log-before-ack protocol —
// not Flush — is the durability story under this fault.
func TestLostSyncStaysVolatile(t *testing.T) {
	const dim, pageSize = 2, 512
	inner := pagefile.NewCrashFile(pageSize)
	chaos := pagefile.NewChaosFile(inner, pagefile.ChaosProfile{SyncLost: 1}, 7)
	tree, err := New(chaos, Config{Dim: dim, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(geom.Point{0.25, 0.75}, 1); err != nil {
		t.Fatal(err)
	}
	if err := tree.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if c := chaos.Counts(); c.SyncLost == 0 {
		t.Fatalf("lost-sync fault was not injected: %+v", c)
	}
	if inner.VolatilePages() == 0 {
		t.Fatalf("pages became durable despite the lost sync")
	}
}

// newWALTree builds the durable stack the simulator crashes: a tree over
// wal.File(ChecksumFile(CrashFile)) plus a MemLog.
func newWALTree(t *testing.T, dim, pageSize int) (*Tree, *wal.File, *pagefile.CrashFile, *wal.MemLog) {
	t.Helper()
	inner := pagefile.NewCrashFile(pageSize)
	sum := pagefile.NewChecksumFile(inner)
	log := wal.NewMemLog()
	wf, _, err := wal.Open(sum, log, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(wf, Config{Dim: dim, PageSize: sum.PageSize()})
	if err != nil {
		t.Fatal(err)
	}
	return tree, wf, inner, log
}

// TestCheckpointWithPinnedReaders: log truncation must not disturb a
// pinned MVCC snapshot — checkpoints move bytes between files, versions
// live in memory and answer to the epoch, not the log.
func TestCheckpointWithPinnedReaders(t *testing.T) {
	const dim, pageSize, n = 3, 512, 250
	tree, wf, _, log := newWALTree(t, dim, pageSize)
	pts, rids := seededPoints(43, n, dim)
	for i := 0; i < n/2; i++ {
		if err := tree.Insert(pts[i], rids[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Pin the half-built snapshot, then keep writing and checkpoint while
	// it stays pinned.
	release := tree.Pin()
	before := allEntries(t, tree)
	if log.Size() == 0 {
		t.Fatalf("no log activity before checkpoint")
	}
	for i := n / 2; i < n; i++ {
		if err := tree.Insert(pts[i], rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Flush(); err != nil { // checkpoint: flush overlay, truncate log
		t.Fatalf("Flush: %v", err)
	}
	if log.Size() != 0 {
		t.Fatalf("log size %d after checkpoint, want 0", log.Size())
	}
	if wf.OverlayPages() != 0 {
		t.Fatalf("overlay not drained by checkpoint")
	}
	if err := tree.CheckInvariantsSnapshot(); err != nil {
		t.Fatalf("snapshot invariants during pin: %v", err)
	}
	after := allEntries(t, tree)
	if len(after) != n {
		t.Fatalf("reader sees %d records after checkpoint, want %d", len(after), n)
	}
	_ = before
	release()
	tree.Reclaim()
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants after unpin: %v", err)
	}
}

// TestWALTreeCrashRecovery drives the full stack once end to end: build,
// crash without any checkpoint, reopen, and compare contents exactly.
func TestWALTreeCrashRecovery(t *testing.T) {
	const dim, pageSize, n = 3, 512, 120
	tree, _, inner, log := newWALTree(t, dim, pageSize)
	pts, rids := seededPoints(44, n, dim)
	for i := range pts {
		if err := tree.Insert(pts[i], rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	want := allEntries(t, tree)

	inner.Crash(45)
	log.Crash(46)
	sum := pagefile.NewChecksumFile(inner)
	wf2, rec, err := wal.Open(sum, log, wal.Options{})
	if err != nil {
		t.Fatalf("wal.Open after crash: %v", err)
	}
	if rec.Txs == 0 {
		t.Fatalf("nothing replayed: %+v", rec)
	}
	reopened, err := Open(wf2, Config{Dim: dim, PageSize: sum.PageSize()})
	if err != nil {
		t.Fatalf("core.Open after crash: %v", err)
	}
	got := allEntries(t, reopened)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered contents differ: %d vs %d records", len(got), len(want))
	}
	if err := reopened.CheckInvariants(); err != nil {
		t.Fatalf("invariants after recovery: %v", err)
	}
	if err := reopened.Flush(); err != nil {
		t.Fatalf("recovery Flush: %v", err)
	}
	if reopened.LeakedPages() != 0 {
		t.Fatalf("LeakedPages = %d after recovery Flush", reopened.LeakedPages())
	}
}

// TestRunTxBatchesAtomically: several mutations inside one RunTx either
// all commit (one durable transaction) or all roll back.
func TestRunTxBatchesAtomically(t *testing.T) {
	const dim, pageSize = 2, 512
	tree, wf, inner, log := newWALTree(t, dim, pageSize)
	pts, rids := seededPoints(47, 40, dim)

	fsyncsBefore := inner.Stats().Snapshot()
	_ = fsyncsBefore
	seqBefore := wf.Seq()
	err := tree.RunTx(func() error {
		for i := 0; i < 20; i++ {
			if err := tree.Insert(pts[i], rids[i]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("RunTx: %v", err)
	}
	if wf.Seq() != seqBefore+1 {
		t.Fatalf("batch used %d transactions, want 1", wf.Seq()-seqBefore)
	}
	if got := len(allEntries(t, tree)); got != 20 {
		t.Fatalf("size %d after batch, want 20", got)
	}

	// A failing batch rolls everything back together.
	errBoom := errors.New("boom")
	err = tree.RunTx(func() error {
		for i := 20; i < 30; i++ {
			if err := tree.Insert(pts[i], rids[i]); err != nil {
				return err
			}
		}
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("RunTx error = %v, want boom", err)
	}
	if got := len(allEntries(t, tree)); got != 20 {
		t.Fatalf("size %d after aborted batch, want 20", got)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants after aborted batch: %v", err)
	}

	// The rolled-back state is also the recovered state.
	inner.Crash(48)
	log.Crash(49)
	sum := pagefile.NewChecksumFile(inner)
	wf2, _, err := wal.Open(sum, log, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(wf2, Config{Dim: dim, PageSize: sum.PageSize()})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(allEntries(t, reopened)); got != 20 {
		t.Fatalf("recovered size %d, want 20", got)
	}
}
