// Package nodestore provides a generic decoded-node cache over a page file,
// shared by the baseline access methods (SR-tree, hB-tree, KDB-tree). Like
// the hybrid tree's store, it charges one logical random read per Get even
// on a cache hit: the experiments count cold disk accesses, and caching is
// only a construction-speed convenience that must not distort measurements.
//
// Get is safe for concurrent callers (the cache is sharded and scratch
// buffers are pooled); Put, Alloc and Free mutate the index and need the
// exclusive locking a concurrency layer provides for writers.
package nodestore

import (
	"sync"
	"sync/atomic"

	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
)

// Codec serializes nodes of type N to and from page bytes.
type Codec[N any] interface {
	Encode(n N, buf []byte) (int, error)
	Decode(id pagefile.PageID, buf []byte) (N, error)
}

// shards is the number of independently-locked cache segments.
const shards = 16

type shard[N any] struct {
	mu sync.RWMutex
	m  map[pagefile.PageID]N
}

// Store is a write-through decoded-node cache.
type Store[N any] struct {
	file   pagefile.File
	codec  Codec[N]
	shards [shards]shard[N]
	bufs   sync.Pool // *[]byte scratch pages
	// obs holds the shared node-read/cache-hit counters for the owning
	// access method (nil = no obs accounting); see SetObsMethod.
	obs atomic.Pointer[obsCounters]
}

// obsCounters bundles the unified per-method counters every access method
// reports reads through (obs.IndexCounters — the same code path the hybrid
// tree's own store uses, so cross-method numbers stay comparable).
type obsCounters struct {
	reads, hits, misses *obs.Counter
}

// SetObsMethod attaches the store to the unified per-method obs counters
// under the given method label (the index's Name()).
func (s *Store[N]) SetObsMethod(method string) {
	reads, hits, misses := obs.IndexCounters(obs.Default(), method)
	s.obs.Store(&obsCounters{reads: reads, hits: hits, misses: misses})
}

// PauseObs detaches the obs counters and returns the previous attachment
// for ResumeObs, so structural audit walks don't inflate read accounting
// (mirroring the pagefile.Stats save/restore those walks already do).
func (s *Store[N]) PauseObs() any {
	o := s.obs.Load()
	s.obs.Store(nil)
	return o
}

// ResumeObs restores an attachment returned by PauseObs.
func (s *Store[N]) ResumeObs(o any) {
	if o == nil {
		s.obs.Store(nil)
		return
	}
	s.obs.Store(o.(*obsCounters))
}

// New creates a store over file using codec.
func New[N any](file pagefile.File, codec Codec[N]) *Store[N] {
	s := &Store[N]{file: file, codec: codec}
	for i := range s.shards {
		s.shards[i].m = make(map[pagefile.PageID]N)
	}
	pageSize := file.PageSize()
	s.bufs.New = func() any {
		b := make([]byte, pageSize)
		return &b
	}
	return s
}

func (s *Store[N]) shard(id pagefile.PageID) *shard[N] {
	return &s.shards[uint(id)%shards]
}

// Get returns the decoded node, counting one logical random read. Safe for
// concurrent callers.
func (s *Store[N]) Get(id pagefile.PageID) (N, error) {
	sh := s.shard(id)
	sh.mu.RLock()
	n, ok := sh.m[id]
	sh.mu.RUnlock()
	if ok {
		s.file.Stats().AddRandomReads(1)
		if o := s.obs.Load(); o != nil {
			o.reads.Inc()
			o.hits.Inc()
		}
		return n, nil
	}
	var zero N
	bufp := s.bufs.Get().(*[]byte)
	if err := s.file.ReadPage(id, *bufp); err != nil {
		s.bufs.Put(bufp)
		return zero, err
	}
	n, err := s.codec.Decode(id, *bufp)
	s.bufs.Put(bufp)
	if err != nil {
		return zero, err
	}
	if o := s.obs.Load(); o != nil {
		o.reads.Inc()
		o.misses.Inc()
	}
	sh.mu.Lock()
	if cached, ok := sh.m[id]; ok {
		n = cached // first decode wins; writers see one canonical instance
	} else {
		sh.m[id] = n
	}
	sh.mu.Unlock()
	return n, nil
}

// Alloc reserves a fresh page id.
func (s *Store[N]) Alloc() (pagefile.PageID, error) {
	return s.file.Allocate()
}

// Put writes the node through to its page and caches it.
func (s *Store[N]) Put(id pagefile.PageID, n N) error {
	bufp := s.bufs.Get().(*[]byte)
	size, err := s.codec.Encode(n, *bufp)
	if err == nil {
		err = s.file.WritePage(id, (*bufp)[:size])
	}
	s.bufs.Put(bufp)
	if err != nil {
		return err
	}
	sh := s.shard(id)
	sh.mu.Lock()
	sh.m[id] = n
	sh.mu.Unlock()
	return nil
}

// Free releases the node's page.
func (s *Store[N]) Free(id pagefile.PageID) error {
	sh := s.shard(id)
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
	return s.file.Free(id)
}

// DropCache empties the decoded cache, forcing decodes on subsequent Gets.
func (s *Store[N]) DropCache() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m = make(map[pagefile.PageID]N)
		sh.mu.Unlock()
	}
}
