package sim

import (
	"testing"

	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
)

// crashProfile is the storm's fault diet: every failure mode the WAL claims
// to survive, including failed (but never lying) fsyncs.
var crashProfile = pagefile.ChaosProfile{
	ReadErr: 0.01, ReadCorrupt: 0.005, WriteErr: 0.02,
	WriteTorn: 0.01, WriteShort: 0.005, AllocErr: 0.01, FreeErr: 0.01,
	SyncErr: 0.05,
}

// TestCrashRecoveryStorm is the acceptance gate for the durability work: a
// ≥1000-kill pinned-seed loop in which, after every kill, reopen + WAL
// replay must yield a tree whose five search methods answer byte-for-byte
// identically to a sequential-scan oracle that replayed only the
// acknowledged operations, with no pages leaked by the recovery flush.
func TestCrashRecoveryStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("crash storm is the long differential loop")
	}
	reg := obs.Default()
	recoveries0 := reg.Counter("wal_recoveries_total").Value()
	replayed0 := reg.Counter("wal_recover_records_replayed_total").Value()
	latency0 := reg.Histogram("wal_recovery_ns").Count()

	cfg := CrashConfig{
		Trace:         TraceConfig{Seed: 8001, Dim: 4},
		Kills:         1000,
		MeanSegment:   8,
		CheckpointOps: 40,
		Faults:        crashProfile,
	}
	rep, err := RunCrash(cfg)
	if err != nil {
		t.Fatalf("crash storm diverged: %v", err)
	}
	if rep.Kills < 1000 {
		t.Fatalf("only %d kills executed, want >= 1000", rep.Kills)
	}
	if rep.Acked == 0 || rep.TxsReplayed == 0 {
		t.Fatalf("storm exercised nothing: %+v", rep)
	}
	if rep.RecordsDiscarded == 0 && rep.TornBytes == 0 {
		t.Logf("note: no torn/uncommitted tails seen (unusual but legal): %+v", rep)
	}
	t.Logf("storm: %d kills, %d/%d ops acked, %d txs replayed (%d records, %d discarded, %d torn bytes), %d/%d checkpoints failed, %d/%d queries tolerated, final size %d",
		rep.Kills, rep.Acked, rep.Ops, rep.TxsReplayed, rep.RecordsReplayed,
		rep.RecordsDiscarded, rep.TornBytes, rep.CheckpointFailures, rep.Checkpoints,
		rep.Tolerated, rep.Queries, rep.FinalSize)

	// Satellite: the recovery observability must have recorded the storm.
	if got := reg.Counter("wal_recoveries_total").Value() - recoveries0; got < 1000 {
		t.Errorf("wal_recoveries_total advanced by %d, want >= 1000", got)
	}
	if got := reg.Counter("wal_recover_records_replayed_total").Value() - replayed0; got == 0 {
		t.Errorf("wal_recover_records_replayed_total did not advance")
	}
	if got := reg.Histogram("wal_recovery_ns").Count() - latency0; got < 1000 {
		t.Errorf("wal_recovery_ns observed %d recoveries, want >= 1000", got)
	}
}

// TestCrashStormDeterministic: two runs of the same config must agree
// bit-for-bit — the precondition for CI pinning a seed and an expected
// digest.
func TestCrashStormDeterministic(t *testing.T) {
	cfg := CrashConfig{
		Trace:         TraceConfig{Seed: 8002, Dim: 3},
		Kills:         60,
		MeanSegment:   6,
		CheckpointOps: 25,
		Faults:        crashProfile,
	}
	a, err := RunCrash(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := RunCrash(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("digests differ: %#x vs %#x", a.Digest, b.Digest)
	}
	if a.Acked != b.Acked || a.TxsReplayed != b.TxsReplayed || a.FinalSize != b.FinalSize {
		t.Fatalf("reports differ: %+v vs %+v", a, b)
	}
}

// TestCrashFaultFree: with no injected faults every mutation must be acked
// and recovery still has real work to do (the kill itself loses state).
func TestCrashFaultFree(t *testing.T) {
	rep, err := RunCrash(CrashConfig{
		Trace:       TraceConfig{Seed: 8003, Dim: 2},
		Kills:       50,
		MeanSegment: 5,
		// FailSyncProb stays at the default: even fault-free runs exercise
		// the seal-rewind path, and those commits are legitimately rejected.
		Faults: pagefile.ChaosProfile{},
	})
	if err != nil {
		t.Fatalf("fault-free storm diverged: %v", err)
	}
	if rep.Tolerated != 0 {
		t.Fatalf("%d queries tolerated storage errors with no chaos configured", rep.Tolerated)
	}
	if rep.TxsReplayed == 0 {
		t.Fatalf("no transactions replayed: %+v", rep)
	}
}

// TestCrashRejectsLyingFsync: a profile whose device lies about fsync is a
// configuration error, not a survivable workload.
func TestCrashRejectsLyingFsync(t *testing.T) {
	_, err := RunCrash(CrashConfig{
		Trace:  TraceConfig{Seed: 1, Dim: 2},
		Kills:  1,
		Faults: pagefile.ChaosProfile{SyncLost: 0.1},
	})
	if err == nil {
		t.Fatal("RunCrash accepted a SyncLost profile")
	}
}
