package bench

import (
	"fmt"
	"strings"
	"testing"
)

// small returns an Options scale that keeps harness tests fast while still
// building multi-level trees.
func small() Options {
	return Options{FourierN: 12000, ColHistN: 9000, Queries: 15, PageSize: 4096, Seed: 1}
}

func TestFig5abShape(t *testing.T) {
	figA, figB, err := Fig5ab(small())
	if err != nil {
		t.Fatal(err)
	}
	eda := figA.Get("EDA-optimal")
	vam := figA.Get("VAM")
	if eda == nil || vam == nil {
		t.Fatal("missing series")
	}
	if len(eda.Y) != len(ColHistDims) {
		t.Fatalf("series length %d", len(eda.Y))
	}
	// Paper shape: EDA consistently at or below VAM. Allow a small noise
	// band at the lowest dimensionality where both are cheap.
	for i := range eda.Y {
		if eda.Y[i] > vam.Y[i]*1.15 {
			t.Errorf("dim %g: EDA %.1f worse than VAM %.1f", figA.X[i], eda.Y[i], vam.Y[i])
		}
	}
	if figB.Get("EDA-optimal") == nil {
		t.Fatal("missing CPU series")
	}
	var sb strings.Builder
	figA.Print(&sb)
	figB.Print(&sb)
	t.Log(sb.String())
}

func TestFig5cShape(t *testing.T) {
	fig, err := Fig5c(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != len(ColHistDims) {
		t.Fatalf("got %d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		// Paper shape: no-ELS (bits=0) is the worst; 4 bits captures most
		// of the gain; adding more bits never hurts much.
		noELS := s.Y[0]
		fourBits := yAt(fig, s.Label, 4)
		sixteen := yAt(fig, s.Label, 16)
		if fourBits > noELS {
			t.Errorf("%s: 4-bit ELS (%.1f) worse than no ELS (%.1f)", s.Label, fourBits, noELS)
		}
		if sixteen > fourBits*1.05+1 {
			t.Errorf("%s: 16-bit (%.1f) worse than 4-bit (%.1f)", s.Label, sixteen, fourBits)
		}
		// The drop must be material (dead space exists on clustered data).
		if noELS > 0 && (noELS-fourBits)/noELS < 0.02 {
			t.Logf("note %s: ELS gain only %.1f%%", s.Label, 100*(noELS-fourBits)/noELS)
		}
	}
	var sb strings.Builder
	fig.Print(&sb)
	t.Log(sb.String())
}

func yAt(fig *Figure, label string, x float64) float64 {
	s := fig.Get(label)
	for i, xv := range fig.X {
		if xv == x {
			return s.Y[i]
		}
	}
	return -1
}

func TestFig6ColHistShape(t *testing.T) {
	figIO, figCPU, err := Fig6(small(), "COLHIST")
	if err != nil {
		t.Fatal(err)
	}
	hybrid := figIO.Get("Hybrid Tree")
	hb := figIO.Get("hB-tree")
	sr := figIO.Get("SR-tree")
	for i := range figIO.X {
		// Headline result: the hybrid tree beats both competitors on I/O
		// at every dimensionality. At this test's reduced scale the
		// SR-tree is still shallow, so allow a 10% noise band against it;
		// the default-scale runs in EXPERIMENTS.md show the strict win.
		if hybrid.Y[i] >= hb.Y[i] {
			t.Errorf("dim %g: hybrid IO %.4f not better than hB %.4f", figIO.X[i], hybrid.Y[i], hb.Y[i])
		}
		if hybrid.Y[i] >= sr.Y[i]*1.10 {
			t.Errorf("dim %g: hybrid IO %.4f not within 10%% of SR %.4f", figIO.X[i], hybrid.Y[i], sr.Y[i])
		}
	}
	// The hB-vs-SR ordering and the scan-line crossing are scale- and
	// data-dependent (see EXPERIMENTS.md); at this test's reduced scale we
	// report them without failing.
	last := len(figIO.X) - 1
	if hb.Y[last] >= sr.Y[last] {
		t.Logf("note: hB %.4f vs SR %.4f at 64-d (paper order needs its real data; FOURIER reproduces it)", hb.Y[last], sr.Y[last])
	}
	for i := range figIO.X {
		if hybrid.Y[i] >= 0.1 {
			t.Logf("note: hybrid IO %.4f above the 0.1 scan line at dim %g (crosses below at larger N)", hybrid.Y[i], figIO.X[i])
		}
	}
	var sb strings.Builder
	figIO.Print(&sb)
	figCPU.Print(&sb)
	t.Log(sb.String())
}

func TestFig6FourierShape(t *testing.T) {
	figIO, _, err := Fig6(small(), "FOURIER")
	if err != nil {
		t.Fatal(err)
	}
	hybrid := figIO.Get("Hybrid Tree")
	sr := figIO.Get("SR-tree")
	hb := figIO.Get("hB-tree")
	for i := range figIO.X {
		// On FOURIER the paper's full ordering reproduces: hybrid < hB < SR.
		if hybrid.Y[i] >= sr.Y[i] {
			t.Errorf("dim %g: hybrid %.4f not better than SR %.4f", figIO.X[i], hybrid.Y[i], sr.Y[i])
		}
		if hybrid.Y[i] >= hb.Y[i] {
			t.Errorf("dim %g: hybrid %.4f not better than hB %.4f", figIO.X[i], hybrid.Y[i], hb.Y[i])
		}
		if hb.Y[i] >= sr.Y[i] {
			t.Errorf("dim %g: hB %.4f not better than SR %.4f", figIO.X[i], hb.Y[i], sr.Y[i])
		}
	}
	var sb strings.Builder
	figIO.Print(&sb)
	t.Log(sb.String())
}

func TestFig7abShape(t *testing.T) {
	figIO, _, err := Fig7ab(small())
	if err != nil {
		t.Fatal(err)
	}
	hybrid := figIO.Get("Hybrid Tree")
	sr := figIO.Get("SR-tree")
	if len(hybrid.Y) != 6 {
		t.Fatalf("expected 6 sizes, got %d", len(hybrid.Y))
	}
	for i := range figIO.X {
		if hybrid.Y[i] >= sr.Y[i] {
			t.Errorf("n=%gK: hybrid %.4f not better than SR %.4f", figIO.X[i], hybrid.Y[i], sr.Y[i])
		}
	}
	// Paper: hybrid's normalized cost does not blow up with N (sublinear
	// absolute growth). Require the largest size to be within 2x of the
	// smallest normalized cost.
	first, last := hybrid.Y[0], hybrid.Y[len(hybrid.Y)-1]
	if last > first*2 {
		t.Errorf("hybrid normalized IO grew from %.4f to %.4f with N", first, last)
	}
	var sb strings.Builder
	figIO.Print(&sb)
	t.Log(sb.String())
}

func TestFig7cdShape(t *testing.T) {
	figIO, figCPU, err := Fig7cd(small())
	if err != nil {
		t.Fatal(err)
	}
	hybrid := figIO.Get("Hybrid Tree")
	sr := figIO.Get("SR-tree")
	if figIO.Get("linear scan") == nil || figCPU.Get("linear scan") == nil {
		t.Fatal("missing scan reference")
	}
	for i := range figIO.X {
		// Same 10% small-scale noise band as the Figure 6 check.
		if hybrid.Y[i] >= sr.Y[i]*1.10 {
			t.Errorf("dim %g: hybrid L1 %.4f not within 10%% of SR %.4f", figIO.X[i], hybrid.Y[i], sr.Y[i])
		}
	}
	var sb strings.Builder
	figIO.Print(&sb)
	t.Log(sb.String())
}

func TestTable1(t *testing.T) {
	o := small()
	tab, err := Table1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	var sb strings.Builder
	tab.Print(&sb)
	out := sb.String()
	t.Log(out)
	// The hybrid row must show identical fanout at 16-d and 64-d is not
	// required (utilization varies), but the *capacity* independence is
	// checked in core tests; here require the audit found redundancy in hB
	// and cascades in KDB.
	if !strings.Contains(out, "cascades") {
		t.Error("KDB cascade audit missing")
	}
	if !strings.Contains(out, "ref ratio") {
		t.Error("hB redundancy audit missing")
	}
}

func TestTable2(t *testing.T) {
	tab, err := Table2(small())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tab.Print(&sb)
	t.Log(sb.String())
	if len(tab.Rows) != 5 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
}

func TestAblations(t *testing.T) {
	o := small()
	fig, err := AblationSplitPosition(o)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	fig.Print(&sb)

	fig2, err := AblationQuerySide(o)
	if err != nil {
		t.Fatal(err)
	}
	fig2.Print(&sb)

	tab, err := AblationELSMemory(o)
	if err != nil {
		t.Fatal(err)
	}
	tab.Print(&sb)
	t.Log(sb.String())
	// The paper's <1% ELS overhead claim is stated for 8K pages and 4-bit
	// precision; verify it under exactly those parameters.
	checked := false
	for _, row := range tab.Rows {
		if row[1] != "8192" || row[2] != "4" {
			continue
		}
		checked = true
		var v float64
		if _, err := fmt.Sscanf(row[5], "%f%%", &v); err != nil {
			t.Fatalf("unparseable overhead %q", row[5])
		}
		if v >= 1.0 {
			t.Errorf("ELS overhead %s at dim %s exceeds 1%% (8K pages, 4 bits)", row[5], row[0])
		}
	}
	if !checked {
		t.Fatal("no 8K/4-bit rows in the ELS memory table")
	}
}
