package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// contents dumps the tree's full (rid, point) multiset via a whole-space
// box search, canonically ordered.
func contents(t *testing.T, tree *Tree) []Entry {
	t.Helper()
	es, err := tree.SearchBox(tree.Config().Space)
	if err != nil {
		t.Fatalf("full-space search: %v", err)
	}
	sort.Slice(es, func(a, b int) bool { return es[a].RID < es[b].RID })
	return es
}

func sameContents(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].RID != b[i].RID || !a[i].Point.Equal(b[i].Point) {
			return false
		}
	}
	return true
}

// TestInsertFaultAtomicity sweeps a fault fuse across every I/O position of
// an Insert: for each k, the k-th page operation fails, and the tree must
// be invariant-clean and content-identical to its pre-insert state. Healing
// the file and retrying must then succeed exactly once.
func TestInsertFaultAtomicity(t *testing.T) {
	const dim = 4
	rng := rand.New(rand.NewSource(71))
	randPoint := func() geom.Point {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		return p
	}
	for k := 0; k < 40; k++ {
		k := k
		t.Run(fmt.Sprint(k), func(t *testing.T) {
			fault := pagefile.NewFaultFile(pagefile.NewMemFile(256), 1<<30)
			tree, err := New(fault, Config{Dim: dim, PageSize: 256})
			if err != nil {
				t.Fatal(err)
			}
			// Enough data that inserts regularly split nodes.
			prng := rand.New(rand.NewSource(73))
			for i := 0; i < 300; i++ {
				p := make(geom.Point, dim)
				for d := range p {
					p[d] = prng.Float32()
				}
				if err := tree.Insert(p, RecordID(i)); err != nil {
					t.Fatal(err)
				}
			}
			before := contents(t, tree)
			p := randPoint()
			fault.SetRemaining(k)
			err = tree.Insert(p, RecordID(10_000+k))
			fault.SetRemaining(1 << 30)
			if err == nil {
				// The insert finished within budget; nothing to roll back.
				if tree.Size() != len(before)+1 {
					t.Fatalf("size = %d after clean insert of %d", tree.Size(), len(before))
				}
				return
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("invariants broken after failed insert: %v", err)
			}
			if got := contents(t, tree); !sameContents(got, before) {
				t.Fatalf("contents changed by failed insert: %d entries vs %d", len(got), len(before))
			}
			if tree.Size() != len(before) {
				t.Fatalf("size = %d, want %d after rollback", tree.Size(), len(before))
			}
			// Retry on the healed file: exactly one copy lands.
			if err := tree.Insert(p, RecordID(10_000+k)); err != nil {
				t.Fatalf("retry after heal: %v", err)
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			after := contents(t, tree)
			if len(after) != len(before)+1 {
				t.Fatalf("retry landed %d entries, want 1", len(after)-len(before))
			}
		})
	}
}

// TestDeleteFaultAtomicity is the eliminate-and-reinsert fault sweep
// (Section 3.5): deletes are aimed at a tree whose leaves sit near minimum
// fill, so most trigger node elimination and orphan reinsertion. A fault
// anywhere in that sequence — including partway through reinserting
// orphans — must leave every record present exactly once.
func TestDeleteFaultAtomicity(t *testing.T) {
	const dim = 4
	const n = 400
	for k := 0; k < 60; k++ {
		k := k
		t.Run(fmt.Sprint(k), func(t *testing.T) {
			fault := pagefile.NewFaultFile(pagefile.NewMemFile(256), 1<<30)
			tree, err := New(fault, Config{Dim: dim, PageSize: 256})
			if err != nil {
				t.Fatal(err)
			}
			prng := rand.New(rand.NewSource(79))
			pts := make([]geom.Point, n)
			for i := range pts {
				p := make(geom.Point, dim)
				for d := range p {
					p[d] = prng.Float32()
				}
				pts[i] = p
				if err := tree.Insert(p, RecordID(i)); err != nil {
					t.Fatal(err)
				}
			}
			// Drain leaves toward underflow so the swept delete reliably
			// exercises eliminate-and-reinsert.
			live := make(map[RecordID]geom.Point, n)
			for i, p := range pts {
				live[RecordID(i)] = p
			}
			for i := 0; i < n/2; i++ {
				found, err := tree.Delete(pts[i], RecordID(i))
				if err != nil || !found {
					t.Fatalf("drain delete %d: found=%v err=%v", i, found, err)
				}
				delete(live, RecordID(i))
			}
			before := contents(t, tree)
			if len(before) != len(live) {
				t.Fatalf("drained tree has %d entries, want %d", len(before), len(live))
			}
			victim := RecordID(n/2 + k%(n/2-1))
			fault.SetRemaining(k)
			found, err := tree.Delete(live[victim], victim)
			fault.SetRemaining(1 << 30)
			if err == nil {
				if !found {
					t.Fatalf("victim %d not found", victim)
				}
			} else {
				if err := tree.CheckInvariants(); err != nil {
					t.Fatalf("invariants broken after failed delete: %v", err)
				}
				if got := contents(t, tree); !sameContents(got, before) {
					t.Fatalf("contents changed by failed delete: %d entries vs %d", len(got), len(before))
				}
				// Retry on the healed file.
				found, err = tree.Delete(live[victim], victim)
				if err != nil || !found {
					t.Fatalf("retry delete: found=%v err=%v", found, err)
				}
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// The victim is gone exactly once; every other record survives
			// exactly once — nothing lost or duplicated by reinsertion.
			delete(live, victim)
			after := contents(t, tree)
			if len(after) != len(live) {
				t.Fatalf("%d entries after delete, want %d", len(after), len(live))
			}
			for _, e := range after {
				p, ok := live[e.RID]
				if !ok || !p.Equal(e.Point) {
					t.Fatalf("unexpected entry %d after delete", e.RID)
				}
				delete(live, e.RID)
			}
		})
	}
}

// TestChaosOpsAgainstModel runs a long random insert/delete/search workload
// through a chaotic file and cross-checks the tree against a plain map
// model: an operation either succeeds on both or fails on the tree and is
// skipped on the model.
func TestChaosOpsAgainstModel(t *testing.T) {
	const dim = 3
	profile := pagefile.ChaosProfile{ReadErr: 0.01, WriteErr: 0.02, WriteTorn: 0.005, AllocErr: 0.01, FreeErr: 0.01}
	chaos := pagefile.NewChaosFile(pagefile.NewMemFile(256), profile, 91)
	chaos.SetEnabled(false)
	tree, err := New(chaos, Config{Dim: dim, PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	chaos.SetEnabled(true)
	type rec struct {
		p   geom.Point
		rid RecordID
	}
	var model []rec
	rng := rand.New(rand.NewSource(93))
	nextRID := RecordID(0)
	failures := 0
	for op := 0; op < 4000; op++ {
		switch r := rng.Float64(); {
		case r < 0.55 || len(model) == 0:
			p := make(geom.Point, dim)
			for d := range p {
				p[d] = rng.Float32()
			}
			rid := nextRID
			nextRID++
			if err := tree.Insert(p, rid); err != nil {
				failures++
			} else {
				model = append(model, rec{p, rid})
			}
		case r < 0.8:
			i := rng.Intn(len(model))
			found, err := tree.Delete(model[i].p, model[i].rid)
			if err != nil {
				failures++
				break
			}
			if !found {
				t.Fatalf("op %d: record %d missing", op, model[i].rid)
			}
			model[i] = model[len(model)-1]
			model = model[:len(model)-1]
		default:
			rect := randQueryRect(rng, dim, 0.4)
			got, err := tree.SearchBox(rect)
			if err != nil {
				failures++
				break
			}
			want := 0
			for _, m := range model {
				if rect.Contains(m.p) {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("op %d: box returned %d, model has %d", op, len(got), want)
			}
		}
		if op%500 == 0 {
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if failures == 0 {
		t.Fatal("chaos injected no failures; test is vacuous")
	}
	chaos.SetEnabled(false)
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tree.Size() != len(model) {
		t.Fatalf("size = %d, model has %d", tree.Size(), len(model))
	}
	t.Logf("survived %d injected failures, %d live records, %d leaked pages",
		failures, len(model), tree.LeakedPages())
}

// TestFlushRepairsDiskAfterFaults verifies the recovery recipe: after a
// fault storm mangles on-disk pages, a clean Flush + DropCaches leaves a
// readable, correct tree (the cache was authoritative all along).
func TestFlushRepairsDiskAfterFaults(t *testing.T) {
	const dim = 3
	profile := pagefile.ChaosProfile{WriteErr: 0.08, WriteTorn: 0.04, WriteShort: 0.04}
	chaos := pagefile.NewChaosFile(pagefile.NewMemFile(256), profile, 97)
	chaos.SetEnabled(false)
	tree, err := New(chaos, Config{Dim: dim, PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	chaos.SetEnabled(true)
	rng := rand.New(rand.NewSource(101))
	var kept []geom.Point
	for i := 0; len(kept) < 600; i++ {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		if err := tree.Insert(p, RecordID(len(kept))); err == nil {
			kept = append(kept, p)
		}
	}
	if chaos.Counts().Total() == 0 {
		t.Fatal("no faults injected; test is vacuous")
	}
	before := contents(t, tree)
	// Heal the storage, repair the disk image, then force cold reads.
	chaos.SetEnabled(false)
	if err := tree.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	tree.DropCaches()
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("cold invariants: %v", err)
	}
	after := contents(t, tree)
	if !sameContents(after, before) {
		t.Fatalf("cold read returned %d entries, want %d", len(after), len(before))
	}
}
