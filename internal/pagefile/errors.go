package pagefile

import (
	"errors"
	"fmt"
)

// Error taxonomy for the request-lifecycle layer (see retry.go): every
// storage error is either transient — retrying the same operation may
// succeed because the cause was momentary — or permanent. Corruption sits
// between the two: at-rest damage (a torn page on the platter) rereads
// identically, while in-flight damage (a bus flip) heals on reread, so
// corruption gets its own sentinel and RetryPolicy.RetryCorrupt decides
// whether to spend attempts on it.
var (
	// ErrTransient marks errors a retry may clear. Fault-injecting wrappers
	// (FaultFile, ChaosFile) wrap their injected errors with it, so callers
	// classify with errors.Is instead of comparing error strings.
	ErrTransient = errors.New("pagefile: transient storage fault")

	// ErrCorrupt marks errors caused by damaged page bytes. ErrChecksum
	// wraps it.
	ErrCorrupt = errors.New("pagefile: corrupt page data")
)

// ErrInjected is the error produced by fault-injecting wrappers (FaultFile,
// ChaosFile) when they decide an operation fails. It wraps ErrTransient:
// injected faults model momentary device failures, the retryable kind.
var ErrInjected = fmt.Errorf("pagefile: injected fault (%w)", ErrTransient)

// IsTransient reports whether err may clear if the operation is retried.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IsCorrupt reports whether err was caused by damaged page bytes.
func IsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }
