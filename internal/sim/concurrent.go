package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"hybridtree/internal/concurrent"
	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// ConcurrentConfig drives the reader-during-writer-burst differential
// oracle: a single writer inserts records 0,1,2,... in order while readers
// continuously search with no locks, and every result is checked against
// what some committed snapshot must contain. The workload itself is
// deterministic (points and query centers derive from Seed); only the
// interleaving — which snapshot each search lands on — varies between runs,
// and the oracle is exactly the property that must hold for every possible
// interleaving.
type ConcurrentConfig struct {
	Seed     int64
	Dim      int // default 4
	Inserts  int // records the writer inserts (default 1000)
	Readers  int // concurrent reader goroutines (default 4)
	PageSize int // default 512
	KNNK     int // k for the k-NN bracket checks (default 5)
}

func (c ConcurrentConfig) withDefaults() ConcurrentConfig {
	if c.Dim <= 0 {
		c.Dim = 4
	}
	if c.Inserts <= 0 {
		c.Inserts = 1000
	}
	if c.Readers <= 0 {
		c.Readers = 4
	}
	if c.PageSize <= 0 {
		c.PageSize = 512
	}
	if c.KNNK <= 0 {
		c.KNNK = 5
	}
	return c
}

// ConcurrentResult summarizes one oracle run.
type ConcurrentResult struct {
	Snapshots   int // box-search snapshots verified across all readers
	KNNChecked  int // k-NN results bracket-checked
	MinPrefix   int // smallest snapshot any reader observed
	MaxPrefix   int // largest snapshot any reader observed
	FinalSize   int
	FinalEpochs uint64 // published commit epoch at the end
}

// concurrentPoint is record i's deterministic vector under seed.
func concurrentPoint(seed int64, i, dim int) geom.Point {
	rng := rand.New(rand.NewSource(seed ^ int64(0x9E3779B9*uint32(i+1))))
	p := make(geom.Point, dim)
	for d := range p {
		p[d] = rng.Float32()
	}
	return p
}

// RunConcurrent executes the concurrent differential oracle and returns its
// summary, or the first oracle violation as an error.
//
// Oracles, per reader iteration:
//
//  1. Prefix: a full-space box search must return exactly {0..k-1} for some
//     k — the records of one committed snapshot. A gap or duplicate means
//     the search mixed two versions of a node.
//  2. Monotonicity: successive searches by one reader pin successive (or
//     identical) versions, so k never decreases within a reader.
//  3. k-NN bracket: a k-NN result that pins some snapshot at least as new
//     as the preceding box search must be at least as good, neighbor for
//     neighbor, as the true k-NN over {0..k-1}, and no better than the true
//     k-NN over all records — both computed from the deterministic points.
func RunConcurrent(cfg ConcurrentConfig) (ConcurrentResult, error) {
	cfg = cfg.withDefaults()
	file := pagefile.NewMemFile(cfg.PageSize)
	tree, err := concurrent.New(file, core.Config{Dim: cfg.Dim, PageSize: cfg.PageSize})
	if err != nil {
		return ConcurrentResult{}, err
	}

	pts := make([]geom.Point, cfg.Inserts)
	for i := range pts {
		pts[i] = concurrentPoint(cfg.Seed, i, cfg.Dim)
	}
	space := geom.Rect{Lo: make(geom.Point, cfg.Dim), Hi: make(geom.Point, cfg.Dim)}
	for d := 0; d < cfg.Dim; d++ {
		space.Lo[d], space.Hi[d] = 0, 1
	}

	// kthBest returns the sorted distances of the true k nearest neighbors
	// of q among the first n deterministic points.
	metric := dist.L2()
	kthBest := func(q geom.Point, n, k int) []float64 {
		ds := make([]float64, n)
		for i := 0; i < n; i++ {
			ds[i] = metric.Distance(q, pts[i])
		}
		sort.Float64s(ds)
		if k > n {
			k = n
		}
		return ds[:k]
	}

	var (
		done    atomic.Bool
		wg      sync.WaitGroup
		mu      sync.Mutex
		res     ConcurrentResult
		firstVi error
	)
	res.MinPrefix = cfg.Inserts + 1
	violate := func(err error) {
		mu.Lock()
		if firstVi == nil {
			firstVi = err
		}
		mu.Unlock()
		done.Store(true)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < cfg.Inserts && !done.Load(); i++ {
			if err := tree.Insert(pts[i], core.RecordID(i)); err != nil {
				violate(fmt.Errorf("sim: concurrent writer insert %d: %w", i, err))
				return
			}
		}
	}()

	for r := 0; r < cfg.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(1000+r)))
			last := -1
			snapshots, knns := 0, 0
			minP, maxP := cfg.Inserts+1, 0
			for !done.Load() {
				es, err := tree.SearchBox(space)
				if err != nil {
					violate(fmt.Errorf("sim: concurrent reader %d box: %w", r, err))
					return
				}
				k := len(es)
				seen := make([]bool, cfg.Inserts)
				for _, e := range es {
					if int(e.RID) >= cfg.Inserts || seen[e.RID] {
						violate(fmt.Errorf("sim: reader %d: unexpected or duplicate rid %d in %d-record snapshot", r, e.RID, k))
						return
					}
					seen[e.RID] = true
				}
				for i := 0; i < k; i++ {
					if !seen[i] {
						violate(fmt.Errorf("sim: reader %d: snapshot of %d records is missing rid %d (mixed versions)", r, k, i))
						return
					}
				}
				if k < last {
					violate(fmt.Errorf("sim: reader %d: snapshot went backwards, %d after %d", r, k, last))
					return
				}
				last = k
				snapshots++
				if k < minP {
					minP = k
				}
				if k > maxP {
					maxP = k
				}

				if k >= cfg.KNNK {
					q := make(geom.Point, cfg.Dim)
					for d := range q {
						q[d] = rng.Float32()
					}
					ns, err := tree.SearchKNN(q, cfg.KNNK, metric)
					if err != nil {
						violate(fmt.Errorf("sim: concurrent reader %d knn: %w", r, err))
						return
					}
					upper := kthBest(q, k, cfg.KNNK)           // true k-NN over the older snapshot
					lower := kthBest(q, cfg.Inserts, cfg.KNNK) // true k-NN over everything
					const eps = 1e-6
					for i, n := range ns {
						if n.Dist > upper[i]+eps || n.Dist < lower[i]-eps {
							violate(fmt.Errorf("sim: reader %d: knn neighbor %d dist %g outside snapshot bracket [%g, %g]",
								r, i, n.Dist, lower[i], upper[i]))
							return
						}
					}
					knns++
				}
			}
			mu.Lock()
			res.Snapshots += snapshots
			res.KNNChecked += knns
			if minP < res.MinPrefix {
				res.MinPrefix = minP
			}
			if maxP > res.MaxPrefix {
				res.MaxPrefix = maxP
			}
			mu.Unlock()
		}(r)
	}

	wg.Wait()
	if firstVi != nil {
		return ConcurrentResult{}, firstVi
	}
	if err := tree.CheckInvariants(); err != nil {
		return ConcurrentResult{}, fmt.Errorf("sim: post-run audit: %w", err)
	}
	if got := tree.Size(); got != cfg.Inserts {
		return ConcurrentResult{}, fmt.Errorf("sim: final size %d, want %d", got, cfg.Inserts)
	}
	res.FinalSize = cfg.Inserts
	epoch, _, _ := tree.SnapshotInfo()
	res.FinalEpochs = epoch
	return res, nil
}
