package core

import (
	"testing"

	"hybridtree/internal/pagefile"
)

// FuzzDecodeNode throws arbitrary bytes at the page decoder: it must either
// return a structured error or a decodable node — never panic, never loop.
// Run `go test -fuzz FuzzDecodeNode ./internal/core` to explore beyond the
// seed corpus.
func FuzzDecodeNode(f *testing.F) {
	// Seed with a few valid pages of both kinds, plus garbage.
	mkData := func(dim, count int) []byte {
		n := &node{id: 1, leaf: true, kdRoot: kdNone}
		for i := 0; i < count; i++ {
			p := make([]float32, dim)
			for d := range p {
				p[d] = float32(i) / 10
			}
			n.pts = append(n.pts, p)
			n.rids = append(n.rids, RecordID(i))
		}
		buf := make([]byte, 4096)
		size, err := n.encode(buf, dim)
		if err != nil {
			f.Fatal(err)
		}
		return buf[:size]
	}
	mkIndex := func(dim int) []byte {
		n := &node{id: 2, kd: []kdNode{
			{Dim: 0, Lsp: 0.5, Rsp: 0.4, Left: 1, Right: 2},
			{Left: kdNone, Right: kdNone, Child: 7},
			{Left: kdNone, Right: kdNone, Child: 9},
		}, kdRoot: 0}
		buf := make([]byte, 4096)
		size, err := n.encode(buf, dim)
		if err != nil {
			f.Fatal(err)
		}
		return buf[:size]
	}
	f.Add(mkData(4, 3), 4)
	f.Add(mkData(16, 0), 16)
	f.Add(mkIndex(4), 4)
	f.Add([]byte{}, 4)
	f.Add([]byte{'H', 0, 4, 0, 255, 255}, 4)
	f.Add([]byte{'H', 1, 4, 0, 3, 0, 0, 0, 0}, 4)
	f.Add([]byte{'X', 9, 1, 2, 3}, 2)

	f.Fuzz(func(t *testing.T, data []byte, dim int) {
		if dim < 1 || dim > 64 {
			return
		}
		n, err := decodeNode(pagefile.PageID(1), data, dim)
		if err != nil {
			return
		}
		// Anything that decoded must re-encode within a bounded buffer and
		// decode again to the same structural size.
		buf := make([]byte, 1<<20)
		size, err := n.encode(buf, dim)
		if err != nil {
			return // oversized kd arenas may legitimately refuse
		}
		if _, err := decodeNode(pagefile.PageID(1), buf[:size], dim); err != nil {
			t.Fatalf("re-decode of re-encoded node failed: %v", err)
		}
	})
}
