package core

import (
	"math/rand"
	"sync"
	"testing"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// raceTree builds a tree of n random dim-d points for the concurrency
// regression tests.
func raceTree(t *testing.T, file pagefile.File, dim, n int) *Tree {
	t.Helper()
	tree, err := New(file, Config{Dim: dim, PageSize: file.PageSize()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		if err := tree.Insert(p, RecordID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tree
}

// hammerReads runs mixed read-only operations from many goroutines against
// one tree. Any unsynchronized shared state on the read path — the old
// shared scratch buffer, unsharded cache map, or non-atomic Stats counters
// — shows up here under -race.
func hammerReads(t *testing.T, tree *Tree, dim int) {
	t.Helper()
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 60; i++ {
				center := make(geom.Point, dim)
				for d := range center {
					center[d] = rng.Float32()
				}
				if _, err := tree.SearchKNN(center, 3, dist.L2()); err != nil {
					errs <- err
					return
				}
				if _, err := tree.SearchRange(center, 0.2, dist.L1()); err != nil {
					errs <- err
					return
				}
				lo, hi := make(geom.Point, dim), make(geom.Point, dim)
				for d := 0; d < dim; d++ {
					lo[d], hi[d] = center[d]*0.5, center[d]*0.5+0.3
				}
				q := geom.Rect{Lo: lo, Hi: hi}
				if _, err := tree.SearchBox(q); err != nil {
					errs <- err
					return
				}
				if _, err := tree.CountBox(q); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentReadsRace is the -race regression for the latent scratch
// buffer / cache map data race: read-only searches from many goroutines
// against one freshly built tree.
func TestConcurrentReadsRace(t *testing.T) {
	const dim = 8
	file := pagefile.NewMemFile(1024)
	tree := raceTree(t, file, dim, 3000)
	hammerReads(t, tree, dim)
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentReadsAfterReopenRace exercises the reopen path, where the
// ELS table is restored in encoded form and decoded rectangles are
// memoized lazily during the first searches — a map write on a logically
// read-only path that must be synchronized.
func TestConcurrentReadsAfterReopenRace(t *testing.T) {
	const dim = 8
	file := pagefile.NewMemFile(1024)
	tree := raceTree(t, file, dim, 3000)
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(file, Config{Dim: dim, PageSize: file.PageSize()})
	if err != nil {
		t.Fatal(err)
	}
	reopened.DropCaches() // force the concurrent decode path in store.get too
	hammerReads(t, reopened, dim)
}

// TestConcurrentReadsBufferedRace runs the same hammer over a Buffered
// page file, whose LRU list reorders on every read and carries its own
// lock.
func TestConcurrentReadsBufferedRace(t *testing.T) {
	const dim = 8
	inner := pagefile.NewMemFile(1024)
	file := pagefile.NewBuffered(inner, 16)
	tree := raceTree(t, file, dim, 2000)
	tree.DropCaches()
	hammerReads(t, tree, dim)
}
