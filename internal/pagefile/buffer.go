package pagefile

import (
	"container/list"
	"fmt"
	"strconv"
	"sync"

	"hybridtree/internal/obs"
)

// Buffered wraps a File with an LRU page buffer. Hits are served from memory
// without touching the inner file's counters; its own Stats therefore count
// buffer *misses*, which is what a warm-cache experiment wants to report.
// The paper's headline numbers are cold (every logical access counted); the
// harness uses the unbuffered file for those and Buffered for the
// warm-buffer sensitivity runs.
//
// Unlike the raw files, even a logically read-only access reorders the LRU
// list, so Buffered carries its own locking and is safe for concurrent use
// in all operations (reads included) regardless of the contract above it.
// Large buffers (capacity >= shardThreshold) hash page ids across
// independently-locked LRU shards so concurrent snapshot readers don't
// serialize on one list mutex; small buffers keep a single shard, i.e. the
// exact global LRU eviction order.
type Buffered struct {
	inner    File
	capacity int
	shards   []*bufShard
	stats    Stats
	// Shared obs counters: the buffer's hit ratio and eviction pressure,
	// aggregated across all Buffered instances in the process.
	obsHits, obsMisses, obsEvicts *obs.Counter
}

// bufShard is one independently-locked LRU segment.
type bufShard struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recent; values are *bufPage
	byID     map[PageID]*list.Element
	// Per-shard counters (merged into the same registry as the aggregates,
	// labeled by shard index) expose skew: one hot shard with a high miss
	// rate means the hash is not spreading the working set.
	hits, misses, evicts *obs.Counter
}

type bufPage struct {
	id    PageID
	data  []byte
	dirty bool
}

// bufferShards is the shard count for large buffers; shardThreshold is the
// smallest capacity that shards (below it, eviction-order-sensitive callers
// — and tests — get the exact single-list LRU).
const (
	bufferShards   = 8
	shardThreshold = 64
)

// NewBuffered wraps inner with an LRU buffer holding capacity pages.
func NewBuffered(inner File, capacity int) *Buffered {
	if capacity < 1 {
		capacity = 1
	}
	r := obs.Default()
	b := &Buffered{
		inner:     inner,
		capacity:  capacity,
		obsHits:   r.Counter("pagefile_buffer_hits_total"),
		obsMisses: r.Counter("pagefile_buffer_misses_total"),
		obsEvicts: r.Counter("pagefile_buffer_evictions_total"),
	}
	n := 1
	if capacity >= shardThreshold {
		n = bufferShards
	}
	b.shards = make([]*bufShard, n)
	per := capacity / n
	extra := capacity % n
	for i := range b.shards {
		c := per
		if i < extra {
			c++
		}
		label := strconv.Itoa(i)
		b.shards[i] = &bufShard{
			capacity: c,
			lru:      list.New(),
			byID:     make(map[PageID]*list.Element),
			hits:     r.Counter(`pagefile_buffer_hits_total{shard="` + label + `"}`),
			misses:   r.Counter(`pagefile_buffer_misses_total{shard="` + label + `"}`),
			evicts:   r.Counter(`pagefile_buffer_evictions_total{shard="` + label + `"}`),
		}
	}
	return b
}

func (b *Buffered) shard(id PageID) *bufShard {
	return b.shards[uint(id)%uint(len(b.shards))]
}

// PageSize implements File.
func (b *Buffered) PageSize() int { return b.inner.PageSize() }

// Stats implements File; counters reflect buffer misses, not logical
// accesses.
func (b *Buffered) Stats() *Stats { return &b.stats }

// NumPages implements File.
func (b *Buffered) NumPages() int { return b.inner.NumPages() }

// get returns the buffered page, reading it from the inner file on a miss.
// Caller holds sh.mu.
func (b *Buffered) get(sh *bufShard, id PageID, seq bool) (*bufPage, error) {
	if el, ok := sh.byID[id]; ok {
		b.obsHits.Inc()
		sh.hits.Inc()
		sh.lru.MoveToFront(el)
		return el.Value.(*bufPage), nil
	}
	b.obsMisses.Inc()
	sh.misses.Inc()
	p := &bufPage{id: id, data: make([]byte, b.inner.PageSize())}
	var err error
	if seq {
		b.stats.AddSeqReads(1)
		err = b.inner.ReadPageSeq(id, p.data)
	} else {
		b.stats.AddRandomReads(1)
		err = b.inner.ReadPage(id, p.data)
	}
	if err != nil {
		return nil, err
	}
	b.insert(sh, p)
	return p, nil
}

// insert adds p to the shard, evicting from its LRU tail while over
// capacity. Caller holds sh.mu.
func (b *Buffered) insert(sh *bufShard, p *bufPage) {
	sh.byID[p.id] = sh.lru.PushFront(p)
	for sh.lru.Len() > sh.capacity {
		el := sh.lru.Back()
		victim := el.Value.(*bufPage)
		sh.lru.Remove(el)
		delete(sh.byID, victim.id)
		b.obsEvicts.Inc()
		sh.evicts.Inc()
		if victim.dirty {
			// Eviction write-back failure is unrecoverable at this layer;
			// surface it on the next operation via a poisoned buffer would
			// add state for no benefit — panic instead of silently losing
			// a page.
			if err := b.flushPage(victim); err != nil {
				panic(fmt.Sprintf("pagefile: evict write-back: %v", err))
			}
		}
	}
}

func (b *Buffered) flushPage(p *bufPage) error {
	b.stats.AddWrites(1)
	if err := b.inner.WritePage(p.id, p.data); err != nil {
		return err
	}
	p.dirty = false
	return nil
}

// ReadPage implements File.
func (b *Buffered) ReadPage(id PageID, buf []byte) error {
	sh := b.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, err := b.get(sh, id, false)
	if err != nil {
		return err
	}
	copy(buf, p.data)
	return nil
}

// ReadPageSeq implements File.
func (b *Buffered) ReadPageSeq(id PageID, buf []byte) error {
	sh := b.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, err := b.get(sh, id, true)
	if err != nil {
		return err
	}
	copy(buf, p.data)
	return nil
}

// WritePage implements File; the write is buffered and flushed on eviction,
// Flush, or Close.
func (b *Buffered) WritePage(id PageID, data []byte) error {
	if len(data) > b.inner.PageSize() {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(data), b.inner.PageSize())
	}
	sh := b.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.byID[id]; ok {
		p := el.Value.(*bufPage)
		n := copy(p.data, data)
		for i := n; i < len(p.data); i++ {
			p.data[i] = 0
		}
		p.dirty = true
		sh.lru.MoveToFront(el)
		return nil
	}
	p := &bufPage{id: id, data: make([]byte, b.inner.PageSize()), dirty: true}
	copy(p.data, data)
	b.insert(sh, p)
	return nil
}

// Allocate implements File.
func (b *Buffered) Allocate() (PageID, error) { return b.inner.Allocate() }

// Free implements File; it drops any buffered copy first.
func (b *Buffered) Free(id PageID) error {
	sh := b.shard(id)
	sh.mu.Lock()
	if el, ok := sh.byID[id]; ok {
		sh.lru.Remove(el)
		delete(sh.byID, id)
	}
	sh.mu.Unlock()
	return b.inner.Free(id)
}

// Flush writes every dirty buffered page back to the inner file.
func (b *Buffered) Flush() error {
	for _, sh := range b.shards {
		sh.mu.Lock()
		err := b.flushShard(sh)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func (b *Buffered) flushShard(sh *bufShard) error {
	for el := sh.lru.Front(); el != nil; el = el.Next() {
		p := el.Value.(*bufPage)
		if p.dirty {
			if err := b.flushPage(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sync implements File: flush every dirty buffered page, then sync the
// inner file, so the durability point covers writes still sitting in the
// buffer.
func (b *Buffered) Sync() error {
	if err := b.Flush(); err != nil {
		return err
	}
	return b.inner.Sync()
}

// Close implements File: flush then close the inner file.
func (b *Buffered) Close() error {
	if err := b.Flush(); err != nil {
		return err
	}
	return b.inner.Close()
}
