package core

import (
	"fmt"
	"math/rand"
	"testing"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

func bulkRandom(t testing.TB, n, dim, pageSize int, seed int64) (*Tree, []geom.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	rids := make([]RecordID, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
		rids[i] = RecordID(i)
	}
	file := pagefile.NewMemFile(pageSize)
	tree, err := BulkLoad(file, Config{Dim: dim, PageSize: pageSize}, pts, rids)
	if err != nil {
		t.Fatal(err)
	}
	return tree, pts
}

func TestBulkLoadCorrectness(t *testing.T) {
	for _, tc := range []struct{ n, dim, page int }{
		{0, 4, 512},
		{5, 4, 512},
		{3000, 4, 512},
		{3000, 8, 512},
		{1500, 16, 1024},
		{800, 64, 4096},
	} {
		t.Run(fmt.Sprintf("n%d_d%d", tc.n, tc.dim), func(t *testing.T) {
			tree, pts := bulkRandom(t, tc.n, tc.dim, tc.page, 31)
			if tree.Size() != tc.n {
				t.Fatalf("size = %d, want %d", tree.Size(), tc.n)
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(37))
			for q := 0; q < 15; q++ {
				rect := randQueryRect(rng, tc.dim, 0.6)
				got, err := tree.SearchBox(rect)
				if err != nil {
					t.Fatal(err)
				}
				sameSet(t, entriesToSet(got), bruteBox(pts, rect), "bulk box")
			}
		})
	}
}

func TestBulkLoadUtilization(t *testing.T) {
	tree, _ := bulkRandom(t, 8000, 8, 512, 41)
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Bulk loading should fill data pages near the bulkFill target, well
	// above what incremental splits leave behind.
	if st.AvgDataFill < 0.75 {
		t.Fatalf("bulk avg fill %.2f, want >= 0.75", st.AvgDataFill)
	}
	t.Logf("bulk: height=%d dataNodes=%d fill=%.2f fanout=%.1f overlapVol=%.4f",
		st.Height, st.DataNodes, st.AvgDataFill, st.AvgFanout, st.OverlapVolume)
}

func TestBulkLoadThenMutate(t *testing.T) {
	tree, pts := bulkRandom(t, 2000, 6, 512, 43)
	rng := rand.New(rand.NewSource(47))
	// Insert more.
	extra := make([]geom.Point, 500)
	for i := range extra {
		p := make(geom.Point, 6)
		for d := range p {
			p[d] = rng.Float32()
		}
		extra[i] = p
		if err := tree.Insert(p, RecordID(10000+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete some originals.
	for i := 0; i < 300; i++ {
		found, err := tree.Delete(pts[i], RecordID(i))
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("bulk-loaded entry %d missing", i)
		}
	}
	if tree.Size() != 2000+500-300 {
		t.Fatalf("size = %d", tree.Size())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Search matches brute force over the surviving set.
	for q := 0; q < 10; q++ {
		rect := randQueryRect(rng, 6, 0.5)
		got, err := tree.SearchBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[RecordID]bool)
		for i, p := range pts {
			if i >= 300 && rect.Contains(p) {
				want[RecordID(i)] = true
			}
		}
		for i, p := range extra {
			if rect.Contains(p) {
				want[RecordID(10000+i)] = true
			}
		}
		sameSet(t, entriesToSet(got), want, "post-mutation box")
	}
}

func TestBulkLoadPersistence(t *testing.T) {
	file := pagefile.NewMemFile(512)
	rng := rand.New(rand.NewSource(53))
	pts := make([]geom.Point, 1000)
	rids := make([]RecordID, 1000)
	for i := range pts {
		p := geom.Point{rng.Float32(), rng.Float32(), rng.Float32(), rng.Float32()}
		pts[i], rids[i] = p, RecordID(i)
	}
	tree, err := BulkLoad(file, Config{Dim: 4, PageSize: 512}, pts, rids)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(file, Config{Dim: 4, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Size() != 1000 {
		t.Fatalf("reopened size = %d", reopened.Size())
	}
	if err := reopened.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadValidation(t *testing.T) {
	file := pagefile.NewMemFile(512)
	if _, err := BulkLoad(file, Config{Dim: 2, PageSize: 512},
		[]geom.Point{{0.5, 0.5}}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := BulkLoad(file, Config{Dim: 2, PageSize: 512},
		[]geom.Point{{0.5, 1.5}}, []RecordID{1}); err == nil {
		t.Fatal("out-of-space point accepted")
	}
	if _, err := BulkLoad(file, Config{Dim: 2, PageSize: 512},
		[]geom.Point{{0.5}}, []RecordID{1}); err == nil {
		t.Fatal("wrong-dim point accepted")
	}
}

func TestApproxKNN(t *testing.T) {
	tree, pts := buildRandom(t, 4000, 8, 512, Config{}, 59)
	rng := rand.New(rand.NewSource(61))
	m := dist.L2()
	for q := 0; q < 10; q++ {
		query := make(geom.Point, 8)
		for d := range query {
			query[d] = rng.Float32()
		}
		exact, err := tree.SearchKNN(query, 10, m)
		if err != nil {
			t.Fatal(err)
		}
		// epsilon 0 must equal exact search.
		zero, err := tree.SearchKNNApprox(query, 10, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range exact {
			if diff := zero[i].Dist - exact[i].Dist; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("eps=0 diverges at %d: %g vs %g", i, zero[i].Dist, exact[i].Dist)
			}
		}
		// epsilon > 0: every reported distance within (1+eps) of the true
		// same-rank distance.
		const eps = 0.5
		approx, err := tree.SearchKNNApprox(query, 10, m, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(approx) != len(exact) {
			t.Fatalf("approx returned %d results", len(approx))
		}
		for i := range approx {
			if approx[i].Dist > exact[i].Dist*(1+eps)+1e-9 {
				t.Fatalf("rank %d: approx %g exceeds (1+eps)*exact %g", i, approx[i].Dist, exact[i].Dist)
			}
		}
	}
	_ = pts
}

func TestApproxKNNSavesWork(t *testing.T) {
	tree, _ := buildRandom(t, 6000, 16, 1024, Config{}, 67)
	rng := rand.New(rand.NewSource(71))
	query := make(geom.Point, 16)
	for d := range query {
		query[d] = rng.Float32()
	}
	stats := tree.File().Stats()
	stats.Reset()
	if _, err := tree.SearchKNN(query, 10, dist.L2()); err != nil {
		t.Fatal(err)
	}
	exactReads := stats.Reads()
	stats.Reset()
	if _, err := tree.SearchKNNApprox(query, 10, dist.L2(), 1.0); err != nil {
		t.Fatal(err)
	}
	approxReads := stats.Reads()
	if approxReads > exactReads {
		t.Fatalf("approx (%d reads) costlier than exact (%d)", approxReads, exactReads)
	}
	t.Logf("exact=%d approx(eps=1)=%d reads", exactReads, approxReads)
}

func TestApproxKNNValidation(t *testing.T) {
	tree, _ := buildRandom(t, 100, 4, 512, Config{}, 73)
	if _, err := tree.SearchKNNApprox(geom.Point{0.5}, 1, dist.L2(), 0.1); err == nil {
		t.Fatal("wrong dim accepted")
	}
	if _, err := tree.SearchKNNApprox(make(geom.Point, 4), 0, dist.L2(), 0.1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := tree.SearchKNNApprox(make(geom.Point, 4), 1, dist.L2(), -1); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}
