package core

import (
	"fmt"
	"strings"

	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// Explanation describes how a box query traversed the tree: per level, how
// many nodes were read and how candidate children were disposed of — pruned
// by the kd-defined bounding region, pruned by the encoded live space
// (the second step of the paper's two-step overlap check), or descended
// into. It makes the ELS and split-quality effects measured in Figures 5
// and 6 inspectable for a single query.
type Explanation struct {
	// Levels[0] is the root level; the last entry is the data level.
	Levels []LevelStats
	// Results is the number of matching entries.
	Results int
}

// LevelStats aggregates one tree level of an explained query.
type LevelStats struct {
	NodesRead  int // nodes of this level read
	KDPruned   int // subtrees cut by the kd bounding-region check
	ELSPruned  int // children cut by the live-space check after kd passed
	Descended  int // children visited at the next level
	EntriesHit int // data level only: entries matching the query
}

// String renders the explanation as a small table.
func (e *Explanation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "level  nodes  kd-pruned  els-pruned  descended  hits\n")
	for i, l := range e.Levels {
		fmt.Fprintf(&sb, "%5d %6d %10d %11d %10d %5d\n",
			i, l.NodesRead, l.KDPruned, l.ELSPruned, l.Descended, l.EntriesHit)
	}
	fmt.Fprintf(&sb, "results: %d\n", e.Results)
	return sb.String()
}

// ExplainBox runs a box query and returns both its results and the
// traversal explanation.
func (t *Tree) ExplainBox(q geom.Rect) ([]Entry, *Explanation, error) {
	if q.Dim() != t.cfg.Dim {
		return nil, nil, fmt.Errorf("core: query has dim %d, tree expects %d", q.Dim(), t.cfg.Dim)
	}
	ex := &Explanation{Levels: make([]LevelStats, t.height)}
	var out []Entry
	err := t.explainAt(t.root, t.cfg.Space, q, 0, ex, &out)
	ex.Results = len(out)
	return out, ex, err
}

func (t *Tree) explainAt(id pagefile.PageID, br geom.Rect, q geom.Rect, level int, ex *Explanation, out *[]Entry) error {
	n, err := t.store.get(id)
	if err != nil {
		return err
	}
	if level >= len(ex.Levels) {
		// Defensive: stale height after concurrent-looking misuse; grow.
		ex.Levels = append(ex.Levels, LevelStats{})
	}
	ls := &ex.Levels[level]
	ls.NodesRead++
	if n.leaf {
		for i, p := range n.pts {
			if q.Contains(p) {
				ls.EntriesHit++
				*out = append(*out, Entry{Point: p, RID: n.rids[i]})
			}
		}
		return nil
	}
	if n.kdRoot == kdNone {
		return nil
	}
	type visit struct {
		child pagefile.PageID
		br    geom.Rect
	}
	var visits []visit
	brWalk := br.Clone()
	var walk func(idx int32)
	walk = func(idx int32) {
		k := &n.kd[idx]
		if k.isLeaf() {
			live, ok := t.els.Get(uint32(k.Child), t.cfg.Space)
			if ok && !live.Intersects(q) {
				ls.ELSPruned++
				return
			}
			ls.Descended++
			visits = append(visits, visit{child: k.Child, br: brWalk.Clone()})
			return
		}
		d := int(k.Dim)
		oldHi := brWalk.Hi[d]
		if k.Lsp < oldHi {
			brWalk.Hi[d] = k.Lsp
		}
		if q.Lo[d] <= brWalk.Hi[d] && brWalk.Hi[d] >= brWalk.Lo[d] {
			walk(k.Left)
		} else {
			ls.KDPruned++
		}
		brWalk.Hi[d] = oldHi
		oldLo := brWalk.Lo[d]
		if k.Rsp > oldLo {
			brWalk.Lo[d] = k.Rsp
		}
		if q.Hi[d] >= brWalk.Lo[d] && brWalk.Hi[d] >= brWalk.Lo[d] {
			walk(k.Right)
		} else {
			ls.KDPruned++
		}
		brWalk.Lo[d] = oldLo
	}
	walk(n.kdRoot)
	for _, v := range visits {
		if err := t.explainAt(v.child, v.br, q, level+1, ex, out); err != nil {
			return err
		}
	}
	return nil
}
