package dist

import (
	"math/rand"
	"testing"

	"hybridtree/internal/geom"
)

func benchVecs(dim int) (geom.Point, geom.Point, geom.Rect) {
	rng := rand.New(rand.NewSource(1))
	a := make(geom.Point, dim)
	q := make(geom.Point, dim)
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for d := 0; d < dim; d++ {
		a[d], q[d] = rng.Float32(), rng.Float32()
		x, y := rng.Float32(), rng.Float32()
		if x > y {
			x, y = y, x
		}
		lo[d], hi[d] = x, y
	}
	return a, q, geom.Rect{Lo: lo, Hi: hi}
}

func BenchmarkL1Distance64d(b *testing.B) {
	a, q, _ := benchVecs(64)
	m := L1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(a, q)
	}
}

func BenchmarkL2Distance64d(b *testing.B) {
	a, q, _ := benchVecs(64)
	m := L2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(a, q)
	}
}

func BenchmarkL1MinDistRect64d(b *testing.B) {
	_, q, r := benchVecs(64)
	m := L1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MinDistRect(q, r)
	}
}

func BenchmarkWeightedLp64d(b *testing.B) {
	a, q, _ := benchVecs(64)
	w := make([]float64, 64)
	for i := range w {
		w[i] = 1 + float64(i%3)
	}
	m, err := NewWeightedLp(2, w)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(a, q)
	}
}
