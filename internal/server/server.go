// Package server is the hybrid tree's network front door: a stdlib-only
// net/http server that exposes the in-process request-lifecycle machinery —
// index.Lifecycle-shaped budgeted searches, concurrent.Executor admission
// control, the six-way outcome taxonomy, the obs mux — over a socket.
//
// It is engineered for failure first. Overload resolves at the edges in a
// fixed ladder (see DESIGN.md §13): the listener caps concurrent
// connections, every request body is size-capped, admission control sheds
// with 503 + Retry-After before latency can grow without bound, per-request
// deadlines propagate from the X-Deadline-Ms header down to the per-node
// visit check, page budgets from X-Budget-Pages degrade answers honestly
// (206 + an explicit partial marker) instead of silently truncating them,
// and every handler is panic-isolated so one poisoned request cannot take
// the process down. Each request resolves to exactly one outcome counter,
// so the server's tallies sum to the requests it received — the invariant
// the load-storm harness asserts.
//
// Shutdown is a graceful drain: readiness flips first (load balancers stop
// routing), the listener closes, in-flight requests finish within a bound,
// the executor and group committer drain, and only then does the caller
// checkpoint the tree and close the WAL.
package server

import (
	"context"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"hybridtree/internal/concurrent"
	"hybridtree/internal/obs"
)

// Config parameterizes a Server. The zero value serves read-only queries
// with sane failure-first defaults.
type Config struct {
	// Dim is the index dimensionality; request vectors must match (400
	// otherwise). Required.
	Dim int

	// EnableWrites mounts /v1/insert and /v1/delete, routed through a
	// GroupCommitter so concurrent writers share commit fsyncs.
	EnableWrites bool

	// MaxBodyBytes caps every request body (default 1 MiB; oversized
	// bodies get 413). The cap bounds per-request memory before any
	// decoding happens.
	MaxBodyBytes int64
	// MaxConns caps concurrently accepted connections (0 = unlimited).
	// Excess connections wait in the kernel accept queue instead of each
	// holding a goroutine and a file descriptor.
	MaxConns int

	// Workers and QueueDepth size the query executor (see
	// concurrent.ExecutorConfig). A full queue sheds with 503.
	Workers    int
	QueueDepth int
	// WriteSlots caps concurrently admitted write requests (default 64);
	// excess writes shed with 503 rather than queueing unboundedly behind
	// the group committer.
	WriteSlots int
	// GroupMaxBatch bounds group-commit batch size (default 64).
	GroupMaxBatch int

	// MaxDeadline caps the client-supplied X-Deadline-Ms (0 = no cap), so
	// a client cannot pin a worker for minutes; DefaultDeadline applies
	// when the header is absent (0 = none).
	MaxDeadline     time.Duration
	DefaultDeadline time.Duration
	// MaxBudgetPages caps the client-supplied X-Budget-Pages (0 = no cap);
	// DefaultBudgetPages applies when the header is absent (0 = unlimited).
	MaxBudgetPages     int
	DefaultBudgetPages int

	// HTTP server timeouts: slow-loris defense (ReadHeaderTimeout), stuck
	// reader/writer bounds, and keep-alive reaping. Defaults: 5s header,
	// 30s read/write, 60s idle.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration

	// Registry receives the server's metrics (default obs.Default()). The
	// storm harness passes a fresh registry so outcome tallies are exact.
	Registry *obs.Registry
	// Ring and Slow, when set, are mounted at /debug/queries and
	// /debug/slow through the obs mux.
	Ring *obs.Ring
	Slow *obs.SlowRecorder
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.WriteSlots <= 0 {
		cfg.WriteSlots = 64
	}
	if cfg.GroupMaxBatch <= 0 {
		cfg.GroupMaxBatch = 64
	}
	if cfg.ReadHeaderTimeout <= 0 {
		cfg.ReadHeaderTimeout = 5 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 30 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	return cfg
}

// serverMetrics is one Server's obs bundle. requests and outcomes are
// recorded exactly once per /v1 request, in the endpoint wrapper, so
// sum(outcomes) == requests holds at every instant the handler is not
// between the two increments.
type serverMetrics struct {
	requests  *obs.Counter
	outcomes  *obs.Outcomes
	panics    *obs.Counter
	inflight  *obs.Gauge
	latency   *obs.Histogram
	connsHeld *obs.Gauge
}

func newServerMetrics(r *obs.Registry) *serverMetrics {
	return &serverMetrics{
		requests:  r.Counter("server_requests_total"),
		outcomes:  obs.NewOutcomes(r, "server_request_outcomes_total"),
		panics:    r.Counter("server_panics_total"),
		inflight:  r.Gauge("server_inflight_requests"),
		latency:   r.Histogram("server_request_ns"),
		connsHeld: r.Gauge("server_open_conns"),
	}
}

// Server is the front door over one concurrent.Tree.
type Server struct {
	tree  *concurrent.Tree
	exec  *concurrent.Executor
	group *concurrent.GroupCommitter // nil unless EnableWrites

	cfg      Config
	writeSem chan struct{}
	m        *serverMetrics

	httpSrv  *http.Server
	ln       net.Listener
	draining atomic.Bool
	served   atomic.Bool
}

// New builds a Server over tree. It starts the executor (and, with writes
// enabled, the group committer) immediately; the HTTP listener starts with
// Serve or ListenAndServe.
func New(tree *concurrent.Tree, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		tree:     tree,
		exec:     concurrent.NewExecutor(tree, concurrent.ExecutorConfig{Workers: cfg.Workers, QueueDepth: cfg.QueueDepth}),
		cfg:      cfg,
		writeSem: make(chan struct{}, cfg.WriteSlots),
		m:        newServerMetrics(cfg.Registry),
	}
	if cfg.EnableWrites {
		s.group = concurrent.NewGroupCommitter(tree, cfg.GroupMaxBatch)
	}
	s.httpSrv = &http.Server{
		Handler:           s.routes(),
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
		ReadTimeout:       cfg.ReadTimeout,
		WriteTimeout:      cfg.WriteTimeout,
		IdleTimeout:       cfg.IdleTimeout,
	}
	return s
}

// Handler returns the server's full handler tree (tests drive it through
// httptest without a real listener).
func (s *Server) Handler() http.Handler { return s.httpSrv.Handler }

// Serve accepts connections on ln (wrapped with the connection cap) until
// Shutdown. It returns http.ErrServerClosed after a graceful shutdown,
// matching net/http.
func (s *Server) Serve(ln net.Listener) error {
	if s.cfg.MaxConns > 0 {
		ln = limitListener(ln, s.cfg.MaxConns, s.m.connsHeld)
	}
	s.ln = ln
	s.served.Store(true)
	return s.httpSrv.Serve(ln)
}

// ListenAndServe binds addr (port 0 picks a free port; read it back with
// Addr) and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr reports the bound listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Draining reports whether a drain has begun (readiness has flipped).
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server gracefully, in dependency order:
//
//  1. readiness flips — /readyz answers 503 so load balancers stop routing,
//     and new /v1 requests shed with 503 even on surviving keep-alives;
//  2. the listener closes and in-flight requests run to completion, bounded
//     by ctx — on expiry remaining connections are force-closed;
//  3. the executor closes (queued queries drain or shed on their expired
//     deadlines) and the group committer closes (queued writes commit and
//     acknowledge — no verdict is ever dropped).
//
// The tree itself is deliberately not touched: the owner runs the final
// Flush checkpoint and closes the WAL after Shutdown returns, when no
// request can possibly be in flight. Shutdown is idempotent; the first
// error (a missed drain bound) is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil
	}
	var err error
	if s.served.Load() {
		err = s.httpSrv.Shutdown(ctx)
		if err != nil {
			_ = s.httpSrv.Close()
		}
	}
	s.exec.Close()
	if s.group != nil {
		s.group.Close()
	}
	return err
}
