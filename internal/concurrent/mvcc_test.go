package concurrent

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hybridtree/internal/core"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// mvccPoint returns the deterministic vector of record i.
func mvccPoint(i, dim int) geom.Point {
	rng := rand.New(rand.NewSource(int64(7919 + i)))
	p := make(geom.Point, dim)
	for d := range p {
		p[d] = rng.Float32()
	}
	return p
}

// TestSnapshotImmutabilityUnderWrites is the MVCC correctness stress: one
// writer inserts records 0,1,2,... in order while readers continuously run
// full-space box searches with no locks. Every result set must be exactly
// the records of one committed snapshot — the contiguous prefix {0..k-1} for
// some k — never a mix of two versions (a gap would mean the reader saw a
// later insert but missed an earlier one, i.e. it observed a node both
// before and after a commit). Per reader, k must also be monotone: each
// search pins the then-current version, and versions publish in insert
// order. Run with -race.
func TestSnapshotImmutabilityUnderWrites(t *testing.T) {
	const (
		dim     = 4
		inserts = 800
		readers = 4
	)
	file := pagefile.NewMemFile(512)
	tree, err := New(file, core.Config{Dim: dim, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}

	space := geom.Rect{Lo: make(geom.Point, dim), Hi: make(geom.Point, dim)}
	for d := 0; d < dim; d++ {
		space.Lo[d], space.Hi[d] = 0, 1
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < inserts; i++ {
			if err := tree.Insert(mvccPoint(i, dim), core.RecordID(i)); err != nil {
				errs <- err
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for !done.Load() {
				es, err := tree.SearchBox(space)
				if err != nil {
					errs <- err
					return
				}
				seen := make([]bool, inserts)
				for _, e := range es {
					if int(e.RID) >= inserts || seen[e.RID] {
						t.Errorf("result has unexpected or duplicate rid %d", e.RID)
						return
					}
					seen[e.RID] = true
				}
				k := len(es)
				for i := 0; i < k; i++ {
					if !seen[i] {
						t.Errorf("snapshot of %d records is missing rid %d: reader mixed two versions", k, i)
						return
					}
				}
				if k < last {
					t.Errorf("snapshot went backwards: %d records after %d", k, last)
					return
				}
				last = k
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := tree.Size(); got != inserts {
		t.Fatalf("size = %d, want %d", got, inserts)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEpochReclamationDrains verifies retired node versions are reclaimed
// exactly when their epochs drain: a pinned reader holds every version
// retired after its pin alive; releasing the pin lets the next reclamation
// pass drop all of them.
func TestEpochReclamationDrains(t *testing.T) {
	const dim = 4
	file := pagefile.NewMemFile(512)
	tree, err := core.New(file, core.Config{Dim: dim, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}

	unpin := tree.Pin()
	for i := 0; i < 300; i++ {
		if err := tree.Insert(mvccPoint(i, dim), core.RecordID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := tree.RetiredVersions(); got == 0 {
		t.Fatal("no retired versions while a reader pin holds the initial epoch")
	}
	if got := tree.Reclaim(); got == 0 {
		t.Fatal("pinned epoch reclaimed: the pinned reader's versions were freed")
	}

	unpin()
	if got := tree.Reclaim(); got != 0 {
		t.Fatalf("%d retired versions survive with no pins left", got)
	}
	if err := tree.CheckInvariantsSnapshot(); err != nil {
		t.Fatal(err)
	}
}
