package bench

import (
	"os"
	"runtime"
	"testing"
)

// TestMixedWorkloadRunners smoke-tests the 90/10 runner on both wrappers
// and pins the basic accounting: every scheduled operation executes and
// both trees end at the same size.
func TestMixedWorkloadRunners(t *testing.T) {
	f, err := NewMixedFixture(3000, 8, 180, 2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := RunMixedWorkload(f.MVCC, f.Queries, f.Inserts, f.RIDBase, 4)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RunMixedWorkload(f.RWLocked, f.Queries, f.Inserts, f.RIDBase, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Reads != len(f.Queries) || rm.Writes != len(f.Inserts) {
		t.Fatalf("mvcc counts %d/%d, want %d/%d", rm.Reads, rm.Writes, len(f.Queries), len(f.Inserts))
	}
	if rm.ReadQPS <= 0 || rr.ReadQPS <= 0 {
		t.Fatalf("non-positive read QPS: mvcc %v rwlock %v", rm.ReadQPS, rr.ReadQPS)
	}
	wantSize := 3000 + len(f.Inserts)
	if got := f.MVCC.Size(); got != wantSize {
		t.Fatalf("mvcc size = %d, want %d", got, wantSize)
	}
	if got := f.RWLocked.tree.Size(); got != wantSize {
		t.Fatalf("rwlock size = %d, want %d", got, wantSize)
	}
	if err := f.MVCC.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMixedWorkloadGate is the CI regression gate for the MVCC read path:
// reads running concurrently with the 10% write mix must keep a substantial
// fraction of read-only throughput. Timing-sensitive, so it only runs when
// MIXED_GATE=1 (CI sets it on a pinned seed); the threshold is lenient for
// small shared runners.
func TestMixedWorkloadGate(t *testing.T) {
	if os.Getenv("MIXED_GATE") != "1" {
		t.Skip("set MIXED_GATE=1 to run the mixed-workload throughput gate")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	f, err := NewMixedFixture(20000, 8, 1800, 2048, 42)
	if err != nil {
		t.Fatal(err)
	}

	// Read-only baseline on the same tree and query set.
	baseline, err := RunBoxThroughput(f.MVCC, f.Queries, workers)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := RunMixedWorkload(f.MVCC, f.Queries, f.Inserts, f.RIDBase, workers)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("read-only: %.0f qps; mixed 90/10: %s", baseline.QPS, mixed)

	const gate = 0.2 // lenient: 2-core CI runners timeshare readers with the writer
	if mixed.ReadQPS < gate*baseline.QPS {
		t.Fatalf("reads under writes fell to %.0f qps, < %.0f%% of read-only %.0f qps",
			mixed.ReadQPS, gate*100, baseline.QPS)
	}
}

// BenchmarkMixedReadOnly measures pure read throughput on the same fixture
// and query set as BenchmarkMixed90R10W, with no concurrent writer. Its
// read_qps is the denominator of the mixed-read-retention ratio gate in
// internal/perf: mixed-MVCC read_qps must stay above 20% of this.
func BenchmarkMixedReadOnly(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f, err := NewMixedFixture(20000, 8, 1800, 2048, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := RunBoxThroughput(f.MVCC, f.Queries, workers)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.QPS, "read_qps")
	}
}

// BenchmarkMixed90R10W measures the 90/10 mixed workload on the MVCC
// snapshot wrapper vs the RWMutex baseline. Read p50/p99 under write load
// is the number the MVCC tentpole targets; see EXPERIMENTS.md.
func BenchmarkMixed90R10W(b *testing.B) {
	// Lock queueing is a concurrency effect, not a parallelism effect: even
	// on one core, a reader goroutine arriving while a writer holds an
	// RWMutex stalls until the writer finishes. Keep at least 4 workers so
	// the baseline's blocking is visible on small runners.
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	for _, tc := range []struct {
		name string
		pick func(f *MixedFixture) MixedTree
	}{
		{"mvcc", func(f *MixedFixture) MixedTree { return f.MVCC }},
		{"rwlock", func(f *MixedFixture) MixedTree { return f.RWLocked }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				f, err := NewMixedFixture(20000, 8, 1800, 2048, 42)
				if err != nil {
					b.Fatal(err)
				}
				tr := tc.pick(f)
				b.StartTimer()
				res, err := RunMixedWorkload(tr, f.Queries, f.Inserts, f.RIDBase, workers)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ReadQPS, "read_qps")
				b.ReportMetric(float64(res.ReadP50.Nanoseconds()), "read_p50_ns")
				b.ReportMetric(float64(res.ReadP99.Nanoseconds()), "read_p99_ns")
			}
		})
	}
}
