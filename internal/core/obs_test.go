package core

import (
	"math/rand"
	"os"
	"testing"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
)

// TestTracedQueryParity asserts that tracing is purely observational: the
// same queries, traced and untraced, return identical results and charge
// identical pagefile access counts.
func TestTracedQueryParity(t *testing.T) {
	tree, pts, stats := parityTree(t, 5000, 12, 61)
	rng := rand.New(rand.NewSource(62))

	boxes := make([]geom.Rect, 16)
	queries := make([]geom.Point, 16)
	for i := range boxes {
		boxes[i] = randQueryRect(rng, 12, 0.4)
		queries[i] = pts[rng.Intn(len(pts))]
	}

	type outcome struct {
		box   []Entry
		knn   []Neighbor
		rng   []Neighbor
		reads uint64
	}
	run := func() []outcome {
		outs := make([]outcome, len(boxes))
		for i := range boxes {
			before := stats.Snapshot().RandomReads
			var err error
			if outs[i].box, err = tree.SearchBox(boxes[i]); err != nil {
				t.Fatal(err)
			}
			if outs[i].knn, err = tree.SearchKNN(queries[i], 7, dist.L2()); err != nil {
				t.Fatal(err)
			}
			if outs[i].rng, err = tree.SearchRange(queries[i], 0.6, dist.L2()); err != nil {
				t.Fatal(err)
			}
			outs[i].reads = stats.Snapshot().RandomReads - before
		}
		return outs
	}

	want := run()
	ring := obs.NewRing(64)
	tree.SetTracer(ring)
	defer tree.SetTracer(nil)
	got := run()

	for i := range want {
		if !entriesEqual(got[i].box, want[i].box) {
			t.Errorf("query %d: traced box results differ from untraced", i)
		}
		if !neighborsEqual(got[i].knn, want[i].knn) {
			t.Errorf("query %d: traced knn results differ from untraced", i)
		}
		if !neighborsEqual(got[i].rng, want[i].rng) {
			t.Errorf("query %d: traced range results differ from untraced", i)
		}
		if got[i].reads != want[i].reads {
			t.Errorf("query %d: traced charged %d reads, untraced %d", i, got[i].reads, want[i].reads)
		}
	}
	if ring.Total() != uint64(3*len(boxes)) {
		t.Errorf("ring collected %d traces, want %d", ring.Total(), 3*len(boxes))
	}
}

// TestKNNTraceSpansEveryVisitedNode asserts the span tree is complete: a
// traced k-NN query has exactly one span per logical node read (so every
// visited node is named), a root span at level 0, and parent links that
// resolve within the tree.
func TestKNNTraceSpansEveryVisitedNode(t *testing.T) {
	tree, pts, stats := parityTree(t, 5000, 12, 63)
	ring := obs.NewRing(8)
	tree.SetTracer(ring)
	defer tree.SetTracer(nil)

	before := stats.Snapshot().RandomReads
	res, err := tree.SearchKNN(pts[123], 9, dist.L2())
	if err != nil {
		t.Fatal(err)
	}
	reads := stats.Snapshot().RandomReads - before

	traces := ring.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("ring holds %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Op != "knn" {
		t.Errorf("trace op = %q, want knn", tr.Op)
	}
	if tr.Results != len(res) {
		t.Errorf("trace results = %d, want %d", tr.Results, len(res))
	}
	if uint64(len(tr.Spans)) != reads {
		t.Errorf("trace has %d spans but the query charged %d node reads", len(tr.Spans), reads)
	}
	if len(tr.Spans) == 0 || tr.Spans[0].Parent != -1 || tr.Spans[0].Level != 0 {
		t.Fatalf("first span is not a root: %+v", tr.Spans[0])
	}
	hits := 0
	for i, s := range tr.Spans {
		if s.Parent >= int32(i) {
			t.Errorf("span %d: parent %d not an earlier span", i, s.Parent)
		}
		if i > 0 && s.Parent >= 0 && s.Level != tr.Spans[s.Parent].Level+1 {
			t.Errorf("span %d: level %d inconsistent with parent level %d", i, s.Level, tr.Spans[s.Parent].Level)
		}
		if s.Leaf {
			hits += int(s.Hits)
		}
	}
	// k-NN hits are offers accepted into the k-best collector; later
	// candidates can displace earlier ones, so hits bound results from above.
	if hits < len(res) {
		t.Errorf("leaf spans record %d hits, query returned %d", hits, len(res))
	}
	// The human renderer names every visited node.
	if s := tr.String(); len(s) == 0 {
		t.Error("trace renders empty")
	}
}

// TestExplainTraceAgreement asserts the Explanation's per-level table is an
// exact aggregation of the span tree it now carries.
func TestExplainTraceAgreement(t *testing.T) {
	tree, _, _ := parityTree(t, 4000, 8, 65)
	rng := rand.New(rand.NewSource(66))
	for i := 0; i < 8; i++ {
		res, ex, err := tree.ExplainBox(randQueryRect(rng, 8, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		if ex.Trace == nil {
			t.Fatal("explanation carries no trace")
		}
		nodes, hits := 0, 0
		for _, l := range ex.Levels {
			nodes += l.NodesRead
			hits += l.EntriesHit
		}
		if nodes != len(ex.Trace.Spans) {
			t.Errorf("levels count %d nodes, trace has %d spans", nodes, len(ex.Trace.Spans))
		}
		if hits != len(res) || ex.Results != len(res) {
			t.Errorf("levels count %d hits, results %d, got %d entries", hits, ex.Results, len(res))
		}
	}
}

// TestMutationTraces asserts inserts and deletes produce traces, that splits
// and orphan reinsertions are attributed to the top-level mutation, and that
// the nested Insert a reinsertion performs does not emit its own trace.
func TestMutationTraces(t *testing.T) {
	const dim = 6
	file := pagefile.NewMemFile(pagefile.DefaultPageSize)
	tree, err := New(file, Config{Dim: dim})
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(4096)
	tree.SetTracer(ring)
	defer tree.SetTracer(nil)

	rng := rand.New(rand.NewSource(67))
	pts := make([]geom.Point, 600)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
		if err := tree.Insert(p, RecordID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := ring.Total(); got != uint64(len(pts)) {
		t.Fatalf("inserts produced %d traces, want %d (one per top-level mutation)", got, len(pts))
	}
	splits := 0
	for _, tr := range ring.Snapshot() {
		if tr.Op != "insert" {
			t.Fatalf("unexpected trace op %q during build", tr.Op)
		}
		splits += int(tr.Splits)
	}
	if splits == 0 {
		t.Error("600 inserts recorded no splits in their traces")
	}

	deletes := 0
	reinserts := 0
	for i := range pts {
		found, err := tree.Delete(pts[i], RecordID(i))
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("point %d not found for delete", i)
		}
		deletes++
		last := ring.Snapshot()[0]
		if last.Op != "delete" {
			t.Fatalf("latest trace op %q after delete, want delete (nested reinsertion leaked a trace?)", last.Op)
		}
		reinserts += int(last.Reinserts)
	}
	if got := ring.Total(); got != uint64(len(pts)+deletes) {
		t.Errorf("total traces %d, want %d", got, len(pts)+deletes)
	}
	if reinserts == 0 {
		t.Error("deleting every record recorded no orphan reinsertions")
	}
	if tree.Size() != 0 {
		t.Errorf("tree size %d after deleting everything", tree.Size())
	}
}

// TestTracerOverheadGate measures the no-op tracer against no tracer at all
// on the k-NN hot path. Both run the identical code path (StartTrace returns
// nil either way), so the gate asserts equal allocations and a tight ns/op
// ratio. Timing comparisons are noisy in shared CI runners, so the gate is
// opt-in: set OBS_OVERHEAD_GATE=1 (the CI benchmark-smoke step does).
func TestTracerOverheadGate(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD_GATE") == "" {
		t.Skip("set OBS_OVERHEAD_GATE=1 to run the tracer overhead gate")
	}
	tree, pts, _ := parityTree(t, 8000, 16, 71)
	c := NewQueryContext()
	l2 := dist.L2()
	var nbrs []Neighbor

	bench := func() testing.BenchmarkResult {
		// Warm pass so the measured passes never grow buffers.
		var err error
		if nbrs, err = tree.SearchKNNCtx(c, pts[0], 10, l2, nbrs[:0]); err != nil {
			t.Fatal(err)
		}
		var best testing.BenchmarkResult
		for trial := 0; trial < 5; trial++ {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var err error
					nbrs, err = tree.SearchKNNCtx(c, pts[i%len(pts)], 10, l2, nbrs[:0])
					if err != nil {
						b.Fatal(err)
					}
				}
			})
			if trial == 0 || r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		return best
	}

	tree.SetTracer(nil)
	base := bench()
	tree.SetTracer(obs.Nop())
	defer tree.SetTracer(nil)
	nop := bench()

	if base.AllocsPerOp() != 0 || nop.AllocsPerOp() != 0 {
		t.Errorf("allocs/op: baseline %d, nop tracer %d, want 0 and 0", base.AllocsPerOp(), nop.AllocsPerOp())
	}
	ratio := float64(nop.NsPerOp()) / float64(base.NsPerOp())
	t.Logf("baseline %d ns/op, nop tracer %d ns/op, ratio %.4f", base.NsPerOp(), nop.NsPerOp(), ratio)
	if ratio > 1.02 {
		t.Errorf("no-op tracer adds %.2f%% ns/op, budget is 2%%", (ratio-1)*100)
	}
}
