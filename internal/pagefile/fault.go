package pagefile

import (
	"math"
	"sync/atomic"
)

// FaultFile wraps a File and fails operations once a countdown of successful
// operations is exhausted. It exists for failure-injection tests: index
// structures must surface storage errors to their callers, never swallow
// them or corrupt in-memory state.
//
// The countdown is atomic, so concurrent searches racing over the fuse see a
// consistent budget: exactly Remaining operations succeed, no matter how
// they interleave. An optional heal-after-N mode (SetHealAfter) lets the
// file recover after a burst of failures, so tests can drive an index into
// an error state and then verify the subsequent recovery path.
type FaultFile struct {
	File
	remaining atomic.Int64
	// healAfter counts injected failures still to serve before the file
	// heals permanently; 0 means never heal (the classic burnt fuse).
	healAfter atomic.Int64
}

// NewFaultFile wraps inner; the first n operations succeed, the rest fail.
func NewFaultFile(inner File, n int) *FaultFile {
	f := &FaultFile{File: inner}
	f.remaining.Store(int64(n))
	return f
}

// Remaining returns the number of operations still allowed to succeed.
func (f *FaultFile) Remaining() int {
	r := f.remaining.Load()
	if r < 0 {
		return 0
	}
	return int(r)
}

// SetRemaining rearms (or burns, with n == 0) the fuse.
func (f *FaultFile) SetRemaining(n int) { f.remaining.Store(int64(n)) }

// SetHealAfter arms heal-after-N mode: once the success budget is spent, the
// next n operations fail with ErrInjected and every operation after that
// succeeds again. n == 0 restores the default fail-forever behavior.
func (f *FaultFile) SetHealAfter(n int) { f.healAfter.Store(int64(n)) }

func (f *FaultFile) spend() error {
	for {
		r := f.remaining.Load()
		if r <= 0 {
			break
		}
		if f.remaining.CompareAndSwap(r, r-1) {
			return nil
		}
	}
	// Budget exhausted: serve a failure, healing once the armed burst is
	// used up.
	for {
		h := f.healAfter.Load()
		if h <= 0 {
			return ErrInjected // heal mode off (or raced to exhaustion)
		}
		if f.healAfter.CompareAndSwap(h, h-1) {
			if h == 1 {
				f.remaining.Store(math.MaxInt64) // healed for good
			}
			return ErrInjected
		}
	}
}

// ReadPage implements File with fault injection.
func (f *FaultFile) ReadPage(id PageID, buf []byte) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.File.ReadPage(id, buf)
}

// ReadPageSeq implements File with fault injection.
func (f *FaultFile) ReadPageSeq(id PageID, buf []byte) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.File.ReadPageSeq(id, buf)
}

// WritePage implements File with fault injection.
func (f *FaultFile) WritePage(id PageID, data []byte) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.File.WritePage(id, data)
}

// Allocate implements File with fault injection.
func (f *FaultFile) Allocate() (PageID, error) {
	if err := f.spend(); err != nil {
		return InvalidPage, err
	}
	return f.File.Allocate()
}

// Free implements File with fault injection.
func (f *FaultFile) Free(id PageID) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.File.Free(id)
}

// Sync implements File with fault injection: a failed sync is the classic
// way durability claims go wrong, so the fuse covers it too.
func (f *FaultFile) Sync() error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.File.Sync()
}
