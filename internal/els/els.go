// Package els implements the hybrid tree's Encoded Live Space (ELS)
// optimization (Section 3.4, Figure 4 of the paper). SP-based structures
// index dead space — regions of their partitions that contain no data — and
// pay unnecessary disk accesses for it. Storing exact live-space bounding
// rectangles would make node size dimension-dependent (turning the structure
// back into a DP technique), so the live rectangle is instead *encoded*
// relative to the kd-tree-defined region on a 2^bits grid per dimension,
// costing 2·dim·bits bits per node. The encoding is conservative: the
// decoded rectangle always contains the true live rectangle, so pruning with
// it is safe.
package els

import (
	"fmt"
	"math"
	"sync"

	"hybridtree/internal/geom"
)

// Encoded is a bit-packed live-space rectangle: for each dimension, a
// lo-cell index (rounded down) and a hi-cell index (rounded up), each using
// the table's configured number of bits.
type Encoded []byte

// Table holds the encoded live rectangles of a tree's nodes, keyed by an
// opaque node identifier (page id). The paper stores this side information
// in memory — for an 8K page, 4-bit precision and 64 dimensions it is under
// 1% of the database size — and so do we. MemoryBytes reports the honest
// footprint so the harness can verify that claim.
//
// The table is safe for concurrent use. Get matters here: although
// logically read-only, it memoizes decoded rectangles, so without the lock
// two parallel searches right after a snapshot restore would race on the
// memo map.
type Table struct {
	bits int
	mu   sync.RWMutex
	enc  map[uint32]Encoded
	// dec memoizes decoded rectangles so the two-step overlap check of
	// Section 3.4 costs a rectangle intersection rather than a bit-unpack
	// per child per query. The encoded form remains canonical and is what
	// MemoryBytes accounts for.
	dec map[uint32]geom.Rect
}

// NewTable creates an ELS table with the given precision in bits per
// boundary (0 disables encoding: Decode returns the outer rectangle
// unchanged). The paper sweeps 0–16 bits in Figure 5(c); 4 is its sweet
// spot.
func NewTable(bits int) *Table {
	if bits < 0 || bits > 16 {
		panic(fmt.Sprintf("els: bits per boundary must be in [0,16], got %d", bits))
	}
	return &Table{bits: bits, enc: make(map[uint32]Encoded), dec: make(map[uint32]geom.Rect)}
}

// Bits returns the configured precision.
func (t *Table) Bits() int { return t.bits }

// Enabled reports whether encoding is active (bits > 0).
func (t *Table) Enabled() bool { return t.bits > 0 }

// MemoryBytes returns the total size of all stored encodings.
func (t *Table) MemoryBytes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, e := range t.enc {
		n += len(e)
	}
	return n
}

// setLocked stores the encoding and its decoded memo; t.mu must be held
// exclusively.
func (t *Table) setLocked(id uint32, outer, live geom.Rect) {
	e := Encode(outer, live, t.bits)
	t.enc[id] = e
	t.dec[id] = Decode(outer, e, t.bits)
}

// Set encodes live relative to outer and stores it for id. live must be
// contained in outer (up to float rounding; coordinates are clamped).
func (t *Table) Set(id uint32, outer, live geom.Rect) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	t.setLocked(id, outer, live)
	t.mu.Unlock()
}

// Get returns the decoded live rectangle for id, or outer itself when no
// encoding is stored (or encoding is disabled). The second return reports
// whether an encoding was present. The returned rectangle is shared with
// the table's memo — callers must not mutate it.
func (t *Table) Get(id uint32, outer geom.Rect) (geom.Rect, bool) {
	if !t.Enabled() {
		return outer, false
	}
	t.mu.RLock()
	if r, ok := t.dec[id]; ok {
		t.mu.RUnlock()
		return r, true
	}
	e, ok := t.enc[id]
	t.mu.RUnlock()
	if !ok {
		return outer, false
	}
	// Decode outside the lock, then memoize; a racing decoder produces the
	// identical rectangle, so first-in wins.
	r := Decode(outer, e, t.bits)
	t.mu.Lock()
	if cached, ok := t.dec[id]; ok {
		r = cached
	} else {
		t.dec[id] = r
	}
	t.mu.Unlock()
	return r, true
}

// EnlargeToInclude grows id's stored live rectangle to include p (used on
// insertion). If nothing is stored yet, the live rectangle becomes the
// degenerate rectangle at p.
func (t *Table) EnlargeToInclude(id uint32, outer geom.Rect, p geom.Point) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	live, ok := t.dec[id]
	if !ok {
		if e, found := t.enc[id]; found {
			live = Decode(outer, e, t.bits)
			t.dec[id] = live
			ok = true
		}
	}
	if !ok {
		live = geom.Rect{Lo: p.Clone(), Hi: p.Clone()}
	}
	if live.Contains(p) {
		return // common case: no re-encode needed
	}
	live = live.Clone()
	live.Enlarge(p)
	t.setLocked(id, outer, live)
}

// Encoded returns the raw stored encoding for id, if any. The returned
// slice is shared with the table — callers must not mutate it. Rollback
// machinery uses this to capture exact pre-images; Set always installs a
// freshly allocated encoding, so a captured slice stays intact.
func (t *Table) Encoded(id uint32) (Encoded, bool) {
	t.mu.RLock()
	e, ok := t.enc[id]
	t.mu.RUnlock()
	return e, ok
}

// Delete removes id's encoding (when its node is freed).
func (t *Table) Delete(id uint32) {
	t.mu.Lock()
	delete(t.enc, id)
	delete(t.dec, id)
	t.mu.Unlock()
}

// Len returns the number of stored encodings.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.enc)
}

// Snapshot returns every stored (id, encoding) pair, for persistence. The
// encodings are shared, not copied.
func (t *Table) Snapshot() (ids []uint32, encs []Encoded) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ids = make([]uint32, 0, len(t.enc))
	encs = make([]Encoded, 0, len(t.enc))
	for id, e := range t.enc {
		ids = append(ids, id)
		encs = append(encs, e)
	}
	return ids, encs
}

// Restore installs an encoding captured by Snapshot or Encoded. Any stale
// decoded memo for id is dropped; the memo repopulates lazily on the first
// Get.
func (t *Table) Restore(id uint32, enc Encoded) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	t.enc[id] = enc
	delete(t.dec, id)
	t.mu.Unlock()
}

// Encode quantizes live relative to outer using the given bits per boundary.
// Lo boundaries round down and hi boundaries round up, so the decoded
// rectangle always contains live.
func Encode(outer, live geom.Rect, bits int) Encoded {
	dim := outer.Dim()
	cells := float64(int(1) << bits)
	w := newBitWriter(2 * dim * bits)
	for d := 0; d < dim; d++ {
		ext := outer.Extent(d)
		var loCell, hiCell uint32
		if ext <= 0 {
			// Degenerate outer extent: the whole cell range is one point.
			loCell, hiCell = 0, uint32(cells)-1
		} else {
			loFrac := (float64(live.Lo[d]) - float64(outer.Lo[d])) / ext
			hiFrac := (float64(live.Hi[d]) - float64(outer.Lo[d])) / ext
			loCell = clampCell(math.Floor(loFrac*cells), cells)
			hiCell = clampCell(math.Ceil(hiFrac*cells)-1, cells)
			if hiCell < loCell {
				hiCell = loCell
			}
		}
		w.write(loCell, bits)
		w.write(hiCell, bits)
	}
	return w.bytes()
}

// Decode expands an encoding back to a rectangle in outer's coordinates.
func Decode(outer geom.Rect, e Encoded, bits int) geom.Rect {
	dim := outer.Dim()
	cells := float64(int(1) << bits)
	r := newBitReader(e)
	out := geom.Rect{Lo: make(geom.Point, dim), Hi: make(geom.Point, dim)}
	for d := 0; d < dim; d++ {
		loCell := r.read(bits)
		hiCell := r.read(bits)
		ext := outer.Extent(d)
		out.Lo[d] = outer.Lo[d] + float32(float64(loCell)/cells*ext)
		out.Hi[d] = outer.Lo[d] + float32(float64(hiCell+1)/cells*ext)
		if out.Hi[d] > outer.Hi[d] {
			out.Hi[d] = outer.Hi[d]
		}
		if out.Lo[d] < outer.Lo[d] {
			out.Lo[d] = outer.Lo[d]
		}
	}
	return out
}

func clampCell(v, cells float64) uint32 {
	if v < 0 {
		return 0
	}
	if v > cells-1 {
		return uint32(cells) - 1
	}
	return uint32(v)
}

// bitWriter packs fixed-width unsigned values MSB-first.
type bitWriter struct {
	buf []byte
	n   int // bits written
}

func newBitWriter(totalBits int) *bitWriter {
	return &bitWriter{buf: make([]byte, (totalBits+7)/8)}
}

func (w *bitWriter) write(v uint32, bits int) {
	for i := bits - 1; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			w.buf[w.n/8] |= 1 << uint(7-w.n%8)
		}
		w.n++
	}
}

func (w *bitWriter) bytes() []byte { return w.buf }

type bitReader struct {
	buf []byte
	n   int
}

func newBitReader(buf []byte) *bitReader { return &bitReader{buf: buf} }

func (r *bitReader) read(bits int) uint32 {
	var v uint32
	for i := 0; i < bits; i++ {
		v <<= 1
		if r.buf[r.n/8]&(1<<uint(7-r.n%8)) != 0 {
			v |= 1
		}
		r.n++
	}
	return v
}
