package srtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/index"
	"hybridtree/internal/pagefile"
)

func build(t testing.TB, n, dim, pageSize int, seed int64) (*Tree, []geom.Point) {
	t.Helper()
	file := pagefile.NewMemFile(pageSize)
	tree, err := New(file, Config{Dim: dim, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
		if err := tree.Insert(p, uint64(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return tree, pts
}

func queryRect(rng *rand.Rand, dim int, side float32) geom.Rect {
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for d := 0; d < dim; d++ {
		c := rng.Float32()
		lo[d], hi[d] = c-side/2, c+side/2
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

func toSet(es []index.Entry) map[uint64]bool {
	m := make(map[uint64]bool)
	for _, e := range es {
		m[e.RID] = true
	}
	return m
}

func TestValidation(t *testing.T) {
	file := pagefile.NewMemFile(4096)
	if _, err := New(file, Config{Dim: 0}); err == nil {
		t.Fatal("dim 0 accepted")
	}
	if _, err := New(file, Config{Dim: 4, PageSize: 512}); err == nil {
		t.Fatal("page size mismatch accepted")
	}
	if _, err := New(file, Config{Dim: 4, MinFill: 0.9}); err == nil {
		t.Fatal("bad MinFill accepted")
	}
	if _, err := New(pagefile.NewMemFile(128), Config{Dim: 64, PageSize: 128}); err == nil {
		t.Fatal("impossible geometry accepted")
	}
	tree, err := New(file, Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(geom.Point{0.1}, 1); err == nil {
		t.Fatal("wrong dim accepted")
	}
	if _, err := tree.SearchBox(geom.UnitCube(2)); err == nil {
		t.Fatal("wrong dim query accepted")
	}
	if _, err := tree.SearchRange(geom.Point{0, 0, 0, 0}, -1, dist.L2()); err == nil {
		t.Fatal("negative radius accepted")
	}
	if _, err := tree.SearchKNN(geom.Point{0, 0, 0, 0}, 0, dist.L2()); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestBoxMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		n, dim, page int
		side         float32
	}{
		{2500, 4, 512, 0.3},
		{2000, 8, 1024, 0.7},
		{800, 32, 4096, 1.1},
	} {
		t.Run(fmt.Sprintf("n%d_d%d", tc.n, tc.dim), func(t *testing.T) {
			tree, pts := build(t, tc.n, tc.dim, tc.page, 7)
			rng := rand.New(rand.NewSource(11))
			for q := 0; q < 20; q++ {
				rect := queryRect(rng, tc.dim, tc.side)
				got, err := tree.SearchBox(rect)
				if err != nil {
					t.Fatal(err)
				}
				want := make(map[uint64]bool)
				for i, p := range pts {
					if rect.Contains(p) {
						want[uint64(i)] = true
					}
				}
				gotSet := toSet(got)
				if len(gotSet) != len(want) {
					t.Fatalf("query %d: got %d, want %d", q, len(gotSet), len(want))
				}
				for r := range want {
					if !gotSet[r] {
						t.Fatalf("query %d: missing %d", q, r)
					}
				}
			}
		})
	}
}

func TestRangeAndKNN(t *testing.T) {
	tree, pts := build(t, 2000, 8, 1024, 13)
	rng := rand.New(rand.NewSource(17))
	for _, m := range []dist.Metric{dist.L1(), dist.L2(), dist.Linf()} {
		for q := 0; q < 10; q++ {
			center := pts[rng.Intn(len(pts))]
			r := 0.2 + rng.Float64()*0.4
			got, err := tree.SearchRange(center, r, m)
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			for _, p := range pts {
				if m.Distance(center, p) <= r {
					count++
				}
			}
			if len(got) != count {
				t.Fatalf("%s range: got %d, want %d", m.Name(), len(got), count)
			}
		}
		// kNN distances must match brute force exactly.
		query := make(geom.Point, 8)
		for d := range query {
			query[d] = rng.Float32()
		}
		k := 10
		got, err := tree.SearchKNN(query, k, m)
		if err != nil {
			t.Fatal(err)
		}
		dists := make([]float64, len(pts))
		for i, p := range pts {
			dists[i] = m.Distance(query, p)
		}
		sort.Float64s(dists)
		for i, nb := range got {
			if diff := nb.Dist - dists[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s knn %d: %g vs %g", m.Name(), i, nb.Dist, dists[i])
			}
		}
	}
}

func TestFanoutShrinksWithDimensionality(t *testing.T) {
	// The paper's structural argument (Table 1): DP entries cost Θ(k)
	// bytes, so fanout decays ~linearly. This is what the hybrid tree's
	// kd-tree representation avoids.
	cfg8 := Config{Dim: 8, PageSize: 4096}
	cfg64 := Config{Dim: 64, PageSize: 4096}
	if cfg64.nodeCap() >= cfg8.nodeCap() {
		t.Fatalf("fanout did not shrink: %d (8-d) vs %d (64-d)", cfg8.nodeCap(), cfg64.nodeCap())
	}
	if cfg64.nodeCap() > 8 {
		t.Fatalf("64-d fanout %d suspiciously high for rect+sphere entries", cfg64.nodeCap())
	}
}

func TestStatsAndStructure(t *testing.T) {
	tree, _ := build(t, 3000, 8, 1024, 19)
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 3000 {
		t.Fatalf("entries = %d", st.Entries)
	}
	if st.Height != tree.Height() || st.Height < 2 {
		t.Fatalf("height = %d", st.Height)
	}
	if st.LeafNodes == 0 || st.IndexNodes == 0 {
		t.Fatal("degenerate structure")
	}
	if tree.Size() != 3000 {
		t.Fatalf("size = %d", tree.Size())
	}
}

// Every subtree's points must lie inside its routing entry's rect and
// sphere — the geometric invariant pruning relies on.
func TestRegionInvariants(t *testing.T) {
	tree, _ := build(t, 2000, 6, 512, 23)
	var check func(id pagefile.PageID) []geom.Point
	check = func(id pagefile.PageID) []geom.Point {
		n, err := tree.store.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if n.leaf {
			return n.pts
		}
		var all []geom.Point
		for i := range n.ents {
			e := &n.ents[i]
			below := check(e.child)
			for _, p := range below {
				if !e.rect.Contains(p) {
					t.Fatalf("point %v escapes rect %v", p, e.rect)
				}
				if dist.L2().Distance(e.centroid, p) > e.radius+1e-5 {
					t.Fatalf("point %v escapes sphere c=%v r=%g", p, e.centroid, e.radius)
				}
			}
			if int(e.count) != len(below) {
				t.Fatalf("entry count %d != subtree size %d", e.count, len(below))
			}
			all = append(all, below...)
		}
		return all
	}
	check(tree.root)
}

func TestCodecRoundTrip(t *testing.T) {
	tree, _ := build(t, 1200, 5, 512, 29)
	// Force full decode of every node and re-verify a query.
	rng := rand.New(rand.NewSource(31))
	rect := queryRect(rng, 5, 0.4)
	before, err := tree.SearchBox(rect)
	if err != nil {
		t.Fatal(err)
	}
	tree.store.DropCache()
	after, err := tree.SearchBox(rect)
	if err != nil {
		t.Fatal(err)
	}
	b, a := toSet(before), toSet(after)
	if len(b) != len(a) {
		t.Fatalf("decode changed results: %d vs %d", len(b), len(a))
	}
	for r := range b {
		if !a[r] {
			t.Fatalf("decode lost %d", r)
		}
	}
}
