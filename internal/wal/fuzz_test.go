package wal

import (
	"bytes"
	"errors"
	"testing"

	"hybridtree/internal/pagefile"
)

// FuzzWALReplay damages a known-valid log — byte flips, truncations,
// arbitrary garbage appended — and checks the recovery contract: Open never
// panics, and whatever state it reconstructs is exactly the state after
// some prefix of the committed transactions, never a torn transaction and
// never the trailing uncommitted one.
//
// The log it builds has n transactions; transaction i (1-based) writes the
// value i to BOTH page 0 and page 1, so atomicity is visible as the two
// pages always agreeing. A final uncommitted write group stores n+1; seeing
// n+1 after recovery means an uncommitted record was resurrected.
func FuzzWALReplay(f *testing.F) {
	f.Add(uint8(3), uint32(10), byte(0xA5), uint32(0))
	f.Add(uint8(1), uint32(0), byte(0x01), uint32(5))
	f.Add(uint8(7), uint32(1000), byte(0xFF), uint32(1000))
	f.Add(uint8(0), uint32(4), byte(0x80), uint32(1))
	f.Fuzz(func(t *testing.T, nTxs uint8, mutOff uint32, xor byte, truncAt uint32) {
		n := int(nTxs%8) + 1
		var raw []byte
		for i := 1; i <= n; i++ {
			raw = appendWrite(raw, 0, page(byte(i)))
			raw = appendWrite(raw, 1, page(byte(i)))
			raw = appendCommit(raw, uint64(i))
		}
		// Trailing uncommitted group: must never be visible.
		raw = appendWrite(raw, 0, page(byte(n+1)))
		raw = appendWrite(raw, 1, page(byte(n+1)))

		// Damage: one byte flip and/or a truncation, positions from the
		// fuzzer. xor == 0 degrades to no flip; truncAt lands anywhere.
		if len(raw) > 0 {
			raw[int(mutOff)%len(raw)] ^= xor
		}
		cut := int(truncAt) % (len(raw) + 1)
		raw = raw[:len(raw)-cut]

		log := NewMemLog()
		if err := log.Append(raw); err != nil {
			t.Fatal(err)
		}
		if err := log.Sync(); err != nil {
			t.Fatal(err)
		}
		inner := pagefile.NewCrashFile(testPageSize)
		fl, rec, err := Open(inner, log, Options{})
		if err != nil {
			// Recovery may only fail for environmental reasons, never
			// because of log damage — damaged frames are data, handled by
			// truncation.
			t.Fatalf("Open failed on damaged log: %v (recovery %+v)", err, rec)
		}
		read := func(id pagefile.PageID) byte {
			buf := make([]byte, testPageSize)
			if err := fl.ReadPage(id, buf); err != nil {
				if errors.Is(err, pagefile.ErrPageBounds) {
					return 0 // page never replayed: the K=0 prefix
				}
				t.Fatalf("ReadPage %d: %v", id, err)
			}
			if !bytes.Equal(buf, page(buf[0])) {
				t.Fatalf("page %d is not a uniform replayed image", id)
			}
			return buf[0]
		}
		v0, v1 := read(0), read(1)
		if v0 != v1 {
			t.Fatalf("transaction torn by replay: page0=%d page1=%d", v0, v1)
		}
		if int(v0) > n {
			t.Fatalf("uncommitted record resurrected: value %d > last committed %d", v0, n)
		}
		if rec.TruncatedTo != log.Size() {
			t.Fatalf("log not truncated to the valid prefix: %d vs %d", rec.TruncatedTo, log.Size())
		}
	})
}
