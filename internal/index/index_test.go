package index_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/hbtree"
	"hybridtree/internal/index"
	"hybridtree/internal/kdbtree"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/seqscan"
	"hybridtree/internal/srtree"
	"hybridtree/internal/xtree"
)

// buildAll constructs every access method over the same data through the
// common interface. The sequential scan serves as the oracle.
func buildAll(t *testing.T, dim, pageSize int, pts []geom.Point) []index.Index {
	t.Helper()
	var idxs []index.Index

	hfile := pagefile.NewMemFile(pageSize)
	htree, err := core.New(hfile, core.Config{Dim: dim, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	idxs = append(idxs, &index.Hybrid{Tree: htree})

	sfile := pagefile.NewMemFile(pageSize)
	sr, err := srtree.New(sfile, srtree.Config{Dim: dim, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	idxs = append(idxs, sr)

	bfile := pagefile.NewMemFile(pageSize)
	hb, err := hbtree.New(bfile, hbtree.Config{Dim: dim, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	idxs = append(idxs, hb)

	kfile := pagefile.NewMemFile(pageSize)
	kdb, err := kdbtree.New(kfile, kdbtree.Config{Dim: dim, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	idxs = append(idxs, kdb)

	xfile := pagefile.NewMemFile(pageSize)
	xt, err := xtree.New(xfile, xtree.Config{Dim: dim, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	idxs = append(idxs, xt)

	scfile := pagefile.NewMemFile(pageSize)
	scan, err := seqscan.New(scfile, dim)
	if err != nil {
		t.Fatal(err)
	}
	idxs = append(idxs, scan)

	for _, idx := range idxs {
		for i, p := range pts {
			if err := idx.Insert(p, uint64(i)); err != nil {
				t.Fatalf("%s insert %d: %v", idx.Name(), i, err)
			}
		}
	}
	return idxs
}

func rids(es []index.Entry) []uint64 {
	out := make([]uint64, len(es))
	for i, e := range es {
		out[i] = e.RID
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAllMethodsAgree is the cross-structure oracle test: every access
// method must return exactly the same result set as the sequential scan
// for box queries, and (where supported) for range and k-NN queries.
func TestAllMethodsAgree(t *testing.T) {
	const dim = 6
	const n = 4000
	rng := rand.New(rand.NewSource(99))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
	}
	idxs := buildAll(t, dim, 512, pts)
	oracle := idxs[len(idxs)-1] // the scan

	for q := 0; q < 15; q++ {
		lo := make(geom.Point, dim)
		hi := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			c := rng.Float32()
			lo[d], hi[d] = c-0.25, c+0.25
		}
		rect := geom.Rect{Lo: lo, Hi: hi}
		want, err := oracle.SearchBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		wantIDs := rids(want)
		for _, idx := range idxs[:len(idxs)-1] {
			got, err := idx.SearchBox(rect)
			if err != nil {
				t.Fatalf("%s box: %v", idx.Name(), err)
			}
			if !equalIDs(rids(got), wantIDs) {
				t.Fatalf("%s box query %d: %d results, oracle has %d",
					idx.Name(), q, len(got), len(want))
			}
		}

		center := pts[rng.Intn(n)]
		radius := 0.2 + rng.Float64()*0.3
		m := dist.L1()
		wantR, err := oracle.SearchRange(center, radius, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range idxs[:len(idxs)-1] {
			gotR, err := idx.SearchRange(center, radius, m)
			if errors.Is(err, index.ErrUnsupported) {
				continue // the hB-tree, per the paper
			}
			if err != nil {
				t.Fatalf("%s range: %v", idx.Name(), err)
			}
			if len(gotR) != len(wantR) {
				t.Fatalf("%s range query %d: %d results, oracle has %d",
					idx.Name(), q, len(gotR), len(wantR))
			}
		}
	}

	// k-NN: identical distance sequences across supporting methods.
	query := pts[17]
	wantN, err := oracle.SearchKNN(query, 25, dist.L2())
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range idxs[:len(idxs)-1] {
		gotN, err := idx.SearchKNN(query, 25, dist.L2())
		if errors.Is(err, index.ErrUnsupported) {
			continue
		}
		if err != nil {
			t.Fatalf("%s knn: %v", idx.Name(), err)
		}
		if len(gotN) != len(wantN) {
			t.Fatalf("%s knn: %d results, want %d", idx.Name(), len(gotN), len(wantN))
		}
		for i := range gotN {
			diff := gotN[i].Dist - wantN[i].Dist
			if diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s knn %d: dist %g, oracle %g", idx.Name(), i, gotN[i].Dist, wantN[i].Dist)
			}
		}
	}
}

func TestNames(t *testing.T) {
	pts := []geom.Point{{0.5, 0.5}}
	idxs := buildAll(t, 2, 512, pts)
	want := map[string]bool{"hybrid": true, "sr": true, "hb": true, "kdb": true, "x": true, "scan": true}
	for _, idx := range idxs {
		if !want[idx.Name()] {
			t.Errorf("unexpected name %q", idx.Name())
		}
		delete(want, idx.Name())
		if idx.File() == nil {
			t.Errorf("%s: nil file", idx.Name())
		}
	}
	if len(want) != 0 {
		t.Errorf("missing methods: %v", want)
	}
}

func TestHybridNameOverride(t *testing.T) {
	file := pagefile.NewMemFile(512)
	tree, err := core.New(file, core.Config{Dim: 2, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	h := &index.Hybrid{Tree: tree, NameOverride: "hybrid-vam"}
	if h.Name() != "hybrid-vam" {
		t.Fatalf("name = %q", h.Name())
	}
}

// Every method must surface injected storage errors through the interface.
func TestAllMethodsSurfaceErrors(t *testing.T) {
	const dim = 4
	pts := make([]geom.Point, 400)
	rng := rand.New(rand.NewSource(3))
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
	}
	mk := []func(f pagefile.File) (index.Index, error){
		func(f pagefile.File) (index.Index, error) {
			tr, err := core.New(f, core.Config{Dim: dim, PageSize: 512})
			if err != nil {
				return nil, err
			}
			return &index.Hybrid{Tree: tr}, nil
		},
		func(f pagefile.File) (index.Index, error) {
			return srtree.New(f, srtree.Config{Dim: dim, PageSize: 512})
		},
		func(f pagefile.File) (index.Index, error) {
			return hbtree.New(f, hbtree.Config{Dim: dim, PageSize: 512})
		},
		func(f pagefile.File) (index.Index, error) {
			return kdbtree.New(f, kdbtree.Config{Dim: dim, PageSize: 512})
		},
		func(f pagefile.File) (index.Index, error) {
			return xtree.New(f, xtree.Config{Dim: dim, PageSize: 512})
		},
		func(f pagefile.File) (index.Index, error) {
			return seqscan.New(f, dim)
		},
	}
	for i, make := range mk {
		t.Run(fmt.Sprint(i), func(t *testing.T) {
			fault := pagefile.NewFaultFile(pagefile.NewMemFile(512), 1<<30)
			idx, err := make(fault)
			if err != nil {
				t.Fatal(err)
			}
			for j, p := range pts {
				if err := idx.Insert(p, uint64(j)); err != nil {
					t.Fatal(err)
				}
			}
			fault.SetRemaining(0)
			if err := idx.Insert(pts[0], 999999); !errors.Is(err, pagefile.ErrInjected) {
				t.Fatalf("%s: insert error = %v", idx.Name(), err)
			}
		})
	}
}
