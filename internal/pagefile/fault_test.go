package pagefile

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// The fuse budget must hold exactly under concurrent spending: with N
// goroutines hammering reads, precisely Remaining operations succeed.
func TestFaultFileConcurrentBudget(t *testing.T) {
	inner := NewMemFile(64)
	id, err := inner.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	const budget = 1000
	f := NewFaultFile(inner, budget)
	var ok, failed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < 300; i++ {
				switch err := f.ReadPage(id, buf); {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrInjected):
					failed.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ok.Load() != budget {
		t.Fatalf("successes = %d, want exactly %d", ok.Load(), budget)
	}
	if failed.Load() != 8*300-budget {
		t.Fatalf("failures = %d, want %d", failed.Load(), 8*300-budget)
	}
	if f.Remaining() != 0 {
		t.Fatalf("Remaining() = %d, want 0", f.Remaining())
	}
}

// Heal-after-N: the budget is spent, the next N operations fail, and then
// the file recovers permanently — the shape recovery-path tests need.
func TestFaultFileHealAfter(t *testing.T) {
	inner := NewMemFile(64)
	id, err := inner.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	f := NewFaultFile(inner, 2)
	f.SetHealAfter(3)
	for i := 0; i < 2; i++ {
		if err := f.ReadPage(id, buf); err != nil {
			t.Fatalf("op %d during budget: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := f.ReadPage(id, buf); !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d during failure burst: err = %v, want ErrInjected", i, err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := f.ReadPage(id, buf); err != nil {
			t.Fatalf("op %d after heal: %v", i, err)
		}
	}
}

// SetRemaining rearms the fuse at any time.
func TestFaultFileRearm(t *testing.T) {
	inner := NewMemFile(64)
	id, err := inner.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	f := NewFaultFile(inner, 1<<30)
	f.SetRemaining(0)
	if err := f.WritePage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	f.SetRemaining(1)
	if err := f.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := f.WritePage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected after budget respent", err)
	}
}
