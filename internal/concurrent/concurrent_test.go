package concurrent

import (
	"math/rand"
	"sync"
	"testing"

	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

func TestConcurrentMixedWorkload(t *testing.T) {
	const dim = 6
	file := pagefile.NewMemFile(512)
	tree, err := New(file, core.Config{Dim: dim, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}

	// Seed some data.
	seed := make([]geom.Point, 2000)
	rng := rand.New(rand.NewSource(1))
	for i := range seed {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		seed[i] = p
	}
	var rids []core.RecordID
	for i := range seed {
		rids = append(rids, core.RecordID(i))
	}
	if err := tree.InsertBatch(seed, rids); err != nil {
		t.Fatal(err)
	}

	// Hammer the tree from many goroutines: inserters, deleters, searchers.
	// Run with -race to validate the locking.
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			grng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 300; i++ {
				p := make(geom.Point, dim)
				for d := range p {
					p[d] = grng.Float32()
				}
				if err := tree.Insert(p, core.RecordID(10000+g*1000+i)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < 600; i += 2 {
				if _, err := tree.Delete(seed[i], core.RecordID(i)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			grng := rand.New(rand.NewSource(int64(200 + g)))
			for i := 0; i < 100; i++ {
				center := make(geom.Point, dim)
				for d := range center {
					center[d] = grng.Float32()
				}
				if _, err := tree.SearchKNN(center, 5, dist.L2()); err != nil {
					errs <- err
					return
				}
				lo := make(geom.Point, dim)
				hi := make(geom.Point, dim)
				for d := 0; d < dim; d++ {
					lo[d], hi[d] = center[d]/2, center[d]/2+0.3
				}
				if _, err := tree.SearchBox(geom.Rect{Lo: lo, Hi: hi}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// 2000 seeded + 1200 inserted - 600 deleted.
	if got := tree.Size(); got != 2600 {
		t.Fatalf("size = %d, want 2600", got)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdate(t *testing.T) {
	file := pagefile.NewMemFile(512)
	tree, err := New(file, core.Config{Dim: 2, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	oldP := geom.Point{0.1, 0.1}
	newP := geom.Point{0.9, 0.9}
	if err := tree.Insert(oldP, 7); err != nil {
		t.Fatal(err)
	}
	found, err := tree.Update(oldP, newP, 7)
	if err != nil || !found {
		t.Fatalf("update = %v, %v", found, err)
	}
	// Old location empty, new location holds the record.
	n, err := tree.CountBox(geom.Rect{Lo: oldP, Hi: oldP})
	if err != nil || n != 0 {
		t.Fatalf("old location count = %d, %v", n, err)
	}
	n, err = tree.CountBox(geom.Rect{Lo: newP, Hi: newP})
	if err != nil || n != 1 {
		t.Fatalf("new location count = %d, %v", n, err)
	}
	// Updating a missing record reports not found.
	found, err = tree.Update(oldP, newP, 99)
	if err != nil || found {
		t.Fatalf("phantom update = %v, %v", found, err)
	}
}

func TestInsertBatchValidation(t *testing.T) {
	file := pagefile.NewMemFile(512)
	tree, err := New(file, core.Config{Dim: 2, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.InsertBatch([]geom.Point{{0.5, 0.5}}, nil); err == nil {
		t.Fatal("mismatched batch accepted")
	}
}

func TestWrapAndOpen(t *testing.T) {
	file := pagefile.NewMemFile(512)
	inner, err := core.New(file, core.Config{Dim: 2, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := Wrap(inner)
	if err := wrapped.Insert(geom.Point{0.5, 0.5}, 1); err != nil {
		t.Fatal(err)
	}
	if err := wrapped.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(file, core.Config{Dim: 2, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Size() != 1 {
		t.Fatalf("size = %d", reopened.Size())
	}
}
