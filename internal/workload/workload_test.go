package workload

import (
	"testing"

	"hybridtree/internal/dataset"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
)

func selectivityOf(data []geom.Point, queries []geom.Rect) float64 {
	total := 0
	for _, q := range queries {
		for _, p := range data {
			if q.Contains(p) {
				total++
			}
		}
	}
	return float64(total) / float64(len(queries)) / float64(len(data))
}

func TestBoxQueriesHitTarget(t *testing.T) {
	data := dataset.ColHist(8000, 16, 21)
	target := ColHistSelectivity
	queries, side, err := BoxQueries(data, 40, target, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 40 {
		t.Fatalf("got %d queries", len(queries))
	}
	if side <= 0 || side > 1.5 {
		t.Fatalf("implausible side %g", side)
	}
	got := selectivityOf(data, queries)
	if got < target/4 || got > target*4 {
		t.Fatalf("selectivity %g, want within 4x of %g", got, target)
	}
}

func TestBoxQueriesFourier(t *testing.T) {
	data := dataset.Fourier(8000, 8, 23)
	target := FourierSelectivity
	queries, _, err := BoxQueries(data, 40, target, 7)
	if err != nil {
		t.Fatal(err)
	}
	got := selectivityOf(data, queries)
	// 0.07% of 8000 is ~6 matches/query; sampling noise is large, allow a
	// generous band but require the right order of magnitude.
	if got < target/6 || got > target*6 {
		t.Fatalf("selectivity %g, want near %g", got, target)
	}
}

func TestRangeQueriesHitTarget(t *testing.T) {
	data := dataset.ColHist(6000, 32, 29)
	target := ColHistSelectivity
	m := dist.L1()
	queries, radius, err := RangeQueries(data, 40, target, m, 11)
	if err != nil {
		t.Fatal(err)
	}
	if radius <= 0 {
		t.Fatalf("radius = %g", radius)
	}
	total := 0
	for _, q := range queries {
		for _, p := range data {
			if m.Distance(q.Center, p) <= q.Radius {
				total++
			}
		}
	}
	got := float64(total) / float64(len(queries)) / float64(len(data))
	if got < target/4 || got > target*4 {
		t.Fatalf("selectivity %g, want within 4x of %g", got, target)
	}
}

func TestValidation(t *testing.T) {
	data := dataset.ColHist(100, 16, 1)
	if _, _, err := BoxQueries(nil, 5, 0.01, 1); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, _, err := BoxQueries(data, 0, 0.01, 1); err == nil {
		t.Fatal("count 0 accepted")
	}
	if _, _, err := BoxQueries(data, 5, 0, 1); err == nil {
		t.Fatal("target 0 accepted")
	}
	if _, _, err := RangeQueries(data, 5, 1.5, dist.L1(), 1); err == nil {
		t.Fatal("target >= 1 accepted")
	}
}

func TestQueriesInsideSpace(t *testing.T) {
	data := dataset.ColHist(2000, 16, 31)
	queries, _, err := BoxQueries(data, 30, 0.01, 13)
	if err != nil {
		t.Fatal(err)
	}
	cube := geom.UnitCube(16)
	for _, q := range queries {
		if !cube.ContainsRect(q) {
			t.Fatalf("query %v escapes the unit cube", q)
		}
	}
}

func TestDeterministic(t *testing.T) {
	data := dataset.ColHist(2000, 16, 33)
	q1, s1, _ := BoxQueries(data, 10, 0.01, 99)
	q2, s2, _ := BoxQueries(data, 10, 0.01, 99)
	if s1 != s2 {
		t.Fatal("sides differ for same seed")
	}
	for i := range q1 {
		if !q1[i].Equal(q2[i]) {
			t.Fatal("queries differ for same seed")
		}
	}
}
