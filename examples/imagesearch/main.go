// Imagesearch: content-based image retrieval over color histograms — the
// workload the hybrid tree was built for (it powered feature indexing in
// the MARS image retrieval system). The example indexes 64-d color
// histograms of a synthetic photo collection on disk, then answers
// "find images that look like this one" queries under the L1 metric the
// MARS work recommends for histograms, reporting the page I/O saved
// against a linear scan.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hybridtree/internal/core"
	"hybridtree/internal/dataset"
	"hybridtree/internal/dist"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/seqscan"
)

func main() {
	const (
		dim     = 64 // 8x8 hue/saturation histogram
		nImages = 30000
	)
	dir, err := os.MkdirTemp("", "imagesearch")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Printf("extracting %d-bin color histograms from %d images...\n", dim, nImages)
	histograms := dataset.ColHist(nImages, dim, 7)

	// Index on disk, as a real deployment would.
	file, err := pagefile.CreateDiskFile(filepath.Join(dir, "colhist.ht"), pagefile.DefaultPageSize)
	if err != nil {
		log.Fatal(err)
	}
	defer file.Close()
	tree, err := core.New(file, core.Config{Dim: dim})
	if err != nil {
		log.Fatal(err)
	}
	for i, h := range histograms {
		if err := tree.Insert(h, core.RecordID(i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("index built: %d pages, height %d, ELS side table %d bytes\n",
		file.NumPages(), tree.Height(), tree.ELSMemoryBytes())

	// The comparison baseline: scanning every histogram.
	scanFile := pagefile.NewMemFile(pagefile.DefaultPageSize)
	scan, err := seqscan.New(scanFile, dim)
	if err != nil {
		log.Fatal(err)
	}
	for i, h := range histograms {
		if err := scan.Insert(h, uint64(i)); err != nil {
			log.Fatal(err)
		}
	}

	// "More like this": the user clicked image 4242.
	query := histograms[4242]
	stats := file.Stats()
	stats.Reset()
	similar, err := tree.SearchKNN(query, 10, dist.L1())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nimages most similar to #4242 (L1 on color histograms):\n")
	for i, nb := range similar {
		fmt.Printf("  %2d. image %-6d distance %.4f\n", i+1, nb.RID, nb.Dist)
	}
	reads := stats.Reads()
	fmt.Printf("\nindex cost: %d random page reads; a linear scan reads %d pages\n",
		reads, scan.NumPages())
	fmt.Printf("normalized I/O cost: %.4f (linear scan = 0.1 by the paper's convention)\n",
		float64(reads)/float64(scan.NumPages()))

	// Same index, different metric: a chi-squared-ish weighted comparison
	// that discounts the histogram's dominant bins.
	weights := make([]float64, dim)
	for d := range weights {
		weights[d] = 1.0 / (0.05 + float64(query[d]))
	}
	wm, err := dist.NewWeightedLp(1, weights)
	if err != nil {
		log.Fatal(err)
	}
	stats.Reset()
	reweighted, err := tree.SearchKNN(query, 5, wm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame index, user-supplied weighted metric (%d page reads):\n", stats.Reads())
	for i, nb := range reweighted {
		fmt.Printf("  %2d. image %-6d distance %.4f\n", i+1, nb.RID, nb.Dist)
	}
}
