package core_test

import (
	"fmt"
	"log"

	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// A tiny 2-d dataset used by the examples: four corners and a center.
func exampleTree() *core.Tree {
	file := pagefile.NewMemFile(pagefile.DefaultPageSize)
	tree, err := core.New(file, core.Config{Dim: 2})
	if err != nil {
		log.Fatal(err)
	}
	pts := []geom.Point{
		{0.1, 0.1}, {0.9, 0.1}, {0.1, 0.9}, {0.9, 0.9}, {0.5, 0.5},
	}
	for i, p := range pts {
		if err := tree.Insert(p, core.RecordID(i)); err != nil {
			log.Fatal(err)
		}
	}
	return tree
}

func ExampleTree_SearchBox() {
	tree := exampleTree()
	// Everything in the lower-left quadrant.
	hits, err := tree.SearchBox(geom.NewRect(geom.Point{0, 0}, geom.Point{0.5, 0.5}))
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range hits {
		fmt.Printf("rid=%d at %v\n", e.RID, e.Point)
	}
	// Output:
	// rid=0 at (0.1,0.1)
	// rid=4 at (0.5,0.5)
}

func ExampleTree_SearchKNN() {
	tree := exampleTree()
	// The metric is chosen per query — L1 here, L2 or a weighted metric on
	// the next call, same index.
	nearest, err := tree.SearchKNN(geom.Point{0.2, 0.2}, 2, dist.L1())
	if err != nil {
		log.Fatal(err)
	}
	for _, nb := range nearest {
		fmt.Printf("rid=%d dist=%.1f\n", nb.RID, nb.Dist)
	}
	// Output:
	// rid=0 dist=0.2
	// rid=4 dist=0.6
}

func ExampleTree_SearchRange() {
	tree := exampleTree()
	within, err := tree.SearchRange(geom.Point{0.5, 0.5}, 0.6, dist.L2())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(within), "points within 0.6 of the center")
	// Output:
	// 5 points within 0.6 of the center
}

func ExampleTree_Delete() {
	tree := exampleTree()
	found, err := tree.Delete(geom.Point{0.5, 0.5}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deleted:", found, "size:", tree.Size())
	// Output:
	// deleted: true size: 4
}

func ExampleBulkLoad() {
	pts := []geom.Point{{0.2, 0.3}, {0.7, 0.1}, {0.4, 0.8}}
	rids := []core.RecordID{10, 20, 30}
	file := pagefile.NewMemFile(pagefile.DefaultPageSize)
	tree, err := core.BulkLoad(file, core.Config{Dim: 2}, pts, rids)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("entries:", tree.Size(), "height:", tree.Height())
	// Output:
	// entries: 3 height: 1
}

func ExampleTree_CountBox() {
	tree := exampleTree()
	n, err := tree.CountBox(geom.NewRect(geom.Point{0, 0}, geom.Point{1, 0.5}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(n, "points in the lower half")
	// Output:
	// 3 points in the lower half
}
