package bench

import (
	"fmt"
	"io"
	"strings"
)

// Series is one labeled line of a figure: y values over the shared x axis.
type Series struct {
	Label string
	Y     []float64
}

// Figure is a reproduced paper figure: named series over a common x axis,
// printable as an aligned text table (one row per x value).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Print writes the figure as an aligned table.
func (f *Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "\n%s\n", f.Title)
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", len(f.Title)))
	fmt.Fprintf(w, "y-axis: %s\n", f.YLabel)
	widths := make([]int, len(f.Series))
	for i, s := range f.Series {
		widths[i] = len(s.Label) + 2
		if widths[i] < 16 {
			widths[i] = 16
		}
	}
	fmt.Fprintf(w, "%14s", f.XLabel)
	for i, s := range f.Series {
		fmt.Fprintf(w, "%*s", widths[i], s.Label)
	}
	fmt.Fprintln(w)
	for i, x := range f.X {
		fmt.Fprintf(w, "%14g", x)
		for si, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(w, "%*.6g", widths[si], s.Y[i])
			} else {
				fmt.Fprintf(w, "%*s", widths[si], "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// Get returns the series with the given label, or nil.
func (f *Figure) Get(label string) *Series {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i]
		}
	}
	return nil
}

// Table is a reproduced paper table: free-form rows under named columns.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Print writes the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "\n%s\n", t.Title)
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", len(t.Title)))
	for i, c := range t.Columns {
		fmt.Fprintf(w, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w)
	for _, row := range t.Rows {
		for i, cell := range row {
			fmt.Fprintf(w, "%-*s  ", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
}
