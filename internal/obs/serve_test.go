package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`index_node_reads_total{method="hybrid"}`).Add(42)
	reg.Histogram(`core_query_ns{op="box"}`).Observe(1000)
	ring := NewRing(8)
	for _, op := range []string{"box", "knn", "knn"} {
		tr := ring.StartTrace(op)
		tr.Visit(-1, 1, true, true)
		tr.FinishSince(tr.Start)
	}
	slow := NewSlowRecorder(4, 0)
	str := slow.StartTrace("box")
	str.AddPageRead(100)
	str.FinishSince(str.Start)
	srv := httptest.NewServer(NewMux(reg, ring, slow))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if out := get("/metrics"); !strings.Contains(out, `index_node_reads_total{method="hybrid"} 42`) {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/metrics.json")), &doc); err != nil {
		t.Errorf("/metrics.json invalid: %v", err)
	}
	var traces []*Trace
	if err := json.Unmarshal([]byte(get("/debug/queries")), &traces); err != nil {
		t.Fatalf("/debug/queries invalid: %v", err)
	}
	if len(traces) != 3 || len(traces[0].Spans) != 1 {
		t.Fatalf("/debug/queries returned %d traces: %+v", len(traces), traces)
	}
	if err := json.Unmarshal([]byte(get("/debug/queries?op=knn&n=1")), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].Op != "knn" {
		t.Fatalf("filtered /debug/queries = %+v", traces)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "memstats") {
		t.Errorf("/debug/vars missing expvar output")
	}
	if out := get("/healthz"); strings.TrimSpace(out) != "ok" {
		t.Errorf("/healthz = %q", out)
	}
	if err := json.Unmarshal([]byte(get("/debug/slow")), &traces); err != nil {
		t.Fatalf("/debug/slow invalid: %v", err)
	}
	if len(traces) != 1 || traces[0].Stages == nil || traces[0].Stages.PageReads != 1 {
		t.Fatalf("/debug/slow = %+v", traces)
	}
}

func TestServe(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", NewRegistry(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// /debug/queries with a nil ring returns an empty JSON list.
	resp, err = http.Get("http://" + addr.String() + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(b)) != "[]" {
		t.Fatalf("/debug/queries with nil ring = %q", b)
	}
}

func TestShutdownGraceful(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", NewRegistry(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := Shutdown(srv, 2*time.Second); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr.String() + "/healthz"); err == nil {
		t.Fatal("server still accepting after Shutdown")
	}
	// Repeated and nil shutdowns are harmless.
	if err := Shutdown(srv, time.Second); err != nil && err != http.ErrServerClosed {
		t.Fatalf("second shutdown: %v", err)
	}
	if err := Shutdown(nil, time.Second); err != nil {
		t.Fatalf("nil shutdown: %v", err)
	}
}

func TestDumpText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("wal_fsyncs_total").Add(3)
	reg.Counter("pagefile_syncs_total").Add(5)
	reg.Counter("core_inserts_total").Add(9)
	reg.Gauge("wal_something").Set(-2)
	reg.Histogram("wal_fsync_ns").Observe(1000)

	var sb strings.Builder
	reg.DumpText(&sb, "wal_", "pagefile_")
	out := sb.String()
	for _, want := range []string{"wal_fsyncs_total 3", "pagefile_syncs_total 5", "wal_something -2", "wal_fsync_ns count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "core_inserts_total") {
		t.Errorf("dump leaked unmatched prefix:\n%s", out)
	}

	// No prefixes = everything.
	sb.Reset()
	reg.DumpText(&sb)
	if !strings.Contains(sb.String(), "core_inserts_total 9") {
		t.Errorf("unfiltered dump missing counter:\n%s", sb.String())
	}
}
