package pagefile

import (
	"math/rand"
	"sync"
)

// ChaosProfile gives per-operation-kind fault probabilities for a ChaosFile.
// All rates are independent probabilities in [0, 1]; for writes the three
// modes are mutually exclusive and tested in order (error, torn, short).
type ChaosProfile struct {
	// ReadErr is the probability a read fails outright with ErrInjected.
	ReadErr float64
	// ReadCorrupt is the probability a read succeeds but returns a buffer
	// with one byte flipped — silent corruption a ChecksumFile layered above
	// turns into a detected ErrChecksum.
	ReadCorrupt float64
	// WriteErr is the probability a write fails with nothing persisted.
	WriteErr float64
	// WriteTorn is the probability a write persists only a prefix of the
	// page and then fails with ErrInjected (a torn page).
	WriteTorn float64
	// WriteShort is the probability a write persists only a prefix but
	// reports success — the silent variant of a torn page.
	WriteShort float64
	// AllocErr and FreeErr fail Allocate and Free with ErrInjected.
	AllocErr float64
	FreeErr  float64
	// SyncErr is the probability a Sync fails with ErrInjected and does
	// nothing: previously acknowledged writes stay volatile. The caller
	// knows durability was not reached and can retry or abort.
	SyncErr float64
	// SyncLost is the probability a Sync reports success without reaching
	// the inner file — the lying-fsync failure mode. A crash after a lost
	// sync loses writes the caller believes durable, which is exactly what
	// the WAL's log-before-ack discipline has to survive.
	SyncLost float64
}

// Zero reports whether the profile injects nothing.
func (p ChaosProfile) Zero() bool {
	return p.ReadErr == 0 && p.ReadCorrupt == 0 && p.WriteErr == 0 &&
		p.WriteTorn == 0 && p.WriteShort == 0 && p.AllocErr == 0 && p.FreeErr == 0 &&
		p.SyncErr == 0 && p.SyncLost == 0
}

// ChaosCounts tallies the faults a ChaosFile actually injected.
type ChaosCounts struct {
	ReadErrs     uint64
	ReadCorrupts uint64
	WriteErrs    uint64
	WriteTorn    uint64
	WriteShort   uint64
	AllocErrs    uint64
	FreeErrs     uint64
	SyncErrs     uint64
	SyncLost     uint64
}

// Total returns the number of injected faults of all kinds.
func (c ChaosCounts) Total() uint64 {
	return c.ReadErrs + c.ReadCorrupts + c.WriteErrs + c.WriteTorn +
		c.WriteShort + c.AllocErrs + c.FreeErrs + c.SyncErrs + c.SyncLost
}

// ChaosFile wraps a File and injects faults probabilistically from a seeded
// random source, so a whole workload's fault schedule is reproducible from
// (seed, operation sequence) alone. Unlike FaultFile's one-shot fuse, a
// ChaosFile also models the failure modes that don't announce themselves:
// torn writes, short writes reported as successes, and bit corruption on
// read. Layer a ChecksumFile above it to turn the silent modes into
// detected errors.
//
// The file is safe for concurrent use; the rng is mutex-guarded, so fault
// decisions are serialized in call order (deterministic for single-threaded
// drivers such as the workload simulator).
type ChaosFile struct {
	File
	mu      sync.Mutex
	rng     *rand.Rand
	profile ChaosProfile
	enabled bool
	counts  ChaosCounts
}

// NewChaosFile wraps inner with the given fault profile and seed. The file
// starts enabled.
func NewChaosFile(inner File, profile ChaosProfile, seed int64) *ChaosFile {
	return &ChaosFile{File: inner, rng: rand.New(rand.NewSource(seed)), profile: profile, enabled: true}
}

// SetEnabled toggles fault injection without disturbing the rng stream's
// determinism for operations issued while enabled.
func (f *ChaosFile) SetEnabled(on bool) {
	f.mu.Lock()
	f.enabled = on
	f.mu.Unlock()
}

// Counts returns the faults injected so far.
func (f *ChaosFile) Counts() ChaosCounts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

type chaosAction int

const (
	actNone chaosAction = iota
	actErr
	actCorrupt // reads only
	actTorn    // writes only
	actShort   // writes only
)

// decideRead draws one fault decision for a read. corruptAt is the byte
// offset to flip when the action is actCorrupt.
func (f *ChaosFile) decideRead(bufLen int) (chaosAction, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.enabled {
		return actNone, 0
	}
	r := f.rng.Float64()
	switch {
	case r < f.profile.ReadErr:
		f.counts.ReadErrs++
		return actErr, 0
	case r < f.profile.ReadErr+f.profile.ReadCorrupt:
		f.counts.ReadCorrupts++
		return actCorrupt, f.rng.Intn(bufLen)
	}
	return actNone, 0
}

// decideWrite draws one fault decision for a write. prefix is the number of
// bytes to persist for torn/short writes.
func (f *ChaosFile) decideWrite(dataLen int) (chaosAction, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.enabled {
		return actNone, 0
	}
	r := f.rng.Float64()
	p := f.profile
	switch {
	case r < p.WriteErr:
		f.counts.WriteErrs++
		return actErr, 0
	case r < p.WriteErr+p.WriteTorn:
		f.counts.WriteTorn++
		return actTorn, f.rng.Intn(dataLen + 1)
	case r < p.WriteErr+p.WriteTorn+p.WriteShort:
		f.counts.WriteShort++
		return actShort, f.rng.Intn(dataLen + 1)
	}
	return actNone, 0
}

func (f *ChaosFile) decideSimple(rate float64, count *uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.enabled || f.rng.Float64() >= rate {
		return false
	}
	*count++
	return true
}

// ReadPage implements File with probabilistic fault injection.
func (f *ChaosFile) ReadPage(id PageID, buf []byte) error {
	act, pos := f.decideRead(len(buf))
	if act == actErr {
		return ErrInjected
	}
	if err := f.File.ReadPage(id, buf); err != nil {
		return err
	}
	if act == actCorrupt {
		buf[pos] ^= 0xA5
	}
	return nil
}

// ReadPageSeq implements File with probabilistic fault injection.
func (f *ChaosFile) ReadPageSeq(id PageID, buf []byte) error {
	act, pos := f.decideRead(len(buf))
	if act == actErr {
		return ErrInjected
	}
	if err := f.File.ReadPageSeq(id, buf); err != nil {
		return err
	}
	if act == actCorrupt {
		buf[pos] ^= 0xA5
	}
	return nil
}

// WritePage implements File with probabilistic fault injection. Torn and
// short writes persist data[:prefix]; the underlying page file zero-fills
// the remainder, which is exactly what makes the damage detectable by a
// checksum layer sitting above this one.
func (f *ChaosFile) WritePage(id PageID, data []byte) error {
	act, prefix := f.decideWrite(len(data))
	switch act {
	case actErr:
		return ErrInjected
	case actTorn:
		_ = f.File.WritePage(id, data[:prefix]) // damage lands regardless
		return ErrInjected
	case actShort:
		return f.File.WritePage(id, data[:prefix])
	}
	return f.File.WritePage(id, data)
}

// Allocate implements File with probabilistic fault injection.
func (f *ChaosFile) Allocate() (PageID, error) {
	if f.decideSimple(f.profile.AllocErr, &f.counts.AllocErrs) {
		return InvalidPage, ErrInjected
	}
	return f.File.Allocate()
}

// Free implements File with probabilistic fault injection.
func (f *ChaosFile) Free(id PageID) error {
	if f.decideSimple(f.profile.FreeErr, &f.counts.FreeErrs) {
		return ErrInjected
	}
	return f.File.Free(id)
}

// decideSync draws one fault decision for a Sync. The two modes are
// mutually exclusive and tested in order (error, lost). When both rates are
// zero no random number is drawn, so profiles written before sync faults
// existed keep their exact fault schedules.
func (f *ChaosFile) decideSync() chaosAction {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.profile
	if !f.enabled || (p.SyncErr == 0 && p.SyncLost == 0) {
		return actNone
	}
	r := f.rng.Float64()
	switch {
	case r < p.SyncErr:
		f.counts.SyncErrs++
		return actErr
	case r < p.SyncErr+p.SyncLost:
		f.counts.SyncLost++
		return actShort
	}
	return actNone
}

// Sync implements File with probabilistic fault injection: it can fail
// outright (nothing durable, error reported) or lie — report success while
// leaving the inner file untouched.
func (f *ChaosFile) Sync() error {
	switch f.decideSync() {
	case actErr:
		return ErrInjected
	case actShort: // lost: acknowledged but never reached the device
		return nil
	}
	return f.File.Sync()
}
