package core

import (
	"math/rand"
	"sync"
	"testing"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/obs"
)

// TestSearchZeroAlloc asserts the headline property of the query context:
// once a context and result buffer are warm (arena, stacks, and frontier at
// their high-water marks) repeated searches over cached nodes allocate
// nothing at all.
func TestSearchZeroAlloc(t *testing.T) {
	tree, pts, _ := parityTree(t, 8000, 16, 51)
	rng := rand.New(rand.NewSource(52))
	boxes := make([]geom.Rect, 8)
	for i := range boxes {
		boxes[i] = randQueryRect(rng, 16, 0.4)
	}
	queries := make([]geom.Point, 8)
	for i := range queries {
		queries[i] = pts[rng.Intn(len(pts))]
	}

	c := NewQueryContext()
	var ents []Entry
	var nbrs []Neighbor
	// Box the metrics once: converting LpMetric{P: 1} to the interface
	// inside the measured closure would itself allocate.
	l2, l1 := dist.L2(), dist.L1()
	run := func(name string, fn func() error) {
		t.Helper()
		// Warm pass: grow every reusable buffer to its steady-state size.
		if err := fn(); err != nil {
			t.Fatal(err)
		}
		if got := testing.AllocsPerRun(20, func() {
			if err := fn(); err != nil {
				t.Fatal(err)
			}
		}); got != 0 {
			t.Errorf("%s: %v allocs/op on warm context, want 0", name, got)
		}
	}

	i := 0
	run("SearchBoxCtx", func() error {
		var err error
		ents, err = tree.SearchBoxCtx(c, boxes[i%len(boxes)], ents[:0])
		i++
		return err
	})
	i = 0
	run("SearchKNNCtx/L2", func() error {
		var err error
		nbrs, err = tree.SearchKNNCtx(c, queries[i%len(queries)], 10, l2, nbrs[:0])
		i++
		return err
	})
	i = 0
	run("SearchKNNCtx/L1", func() error {
		var err error
		nbrs, err = tree.SearchKNNCtx(c, queries[i%len(queries)], 10, l1, nbrs[:0])
		i++
		return err
	})
	i = 0
	run("SearchRangeCtx/L2", func() error {
		var err error
		nbrs, err = tree.SearchRangeCtx(c, queries[i%len(queries)], 0.5, l2, nbrs[:0])
		i++
		return err
	})

	// The no-op tracer must keep the hot path allocation-free: StartTrace
	// returns nil and every per-event trace call is an inlined nil check.
	tree.SetTracer(obs.Nop())
	defer tree.SetTracer(nil)
	i = 0
	run("SearchBoxCtx/NopTracer", func() error {
		var err error
		ents, err = tree.SearchBoxCtx(c, boxes[i%len(boxes)], ents[:0])
		i++
		return err
	})
	i = 0
	run("SearchKNNCtx/L2/NopTracer", func() error {
		var err error
		nbrs, err = tree.SearchKNNCtx(c, queries[i%len(queries)], 10, l2, nbrs[:0])
		i++
		return err
	})
	i = 0
	run("SearchRangeCtx/L2/NopTracer", func() error {
		var err error
		nbrs, err = tree.SearchRangeCtx(c, queries[i%len(queries)], 0.5, l2, nbrs[:0])
		i++
		return err
	})
}

// TestQueryContextBusyPanics pins the misuse guard: one context may not
// serve two searches at once.
func TestQueryContextBusyPanics(t *testing.T) {
	c := NewQueryContext()
	c.qc.acquire(4)
	defer func() {
		if recover() == nil {
			t.Error("acquiring a busy QueryContext did not panic")
		}
	}()
	c.qc.acquire(4)
}

// TestConcurrentPooledSearches hammers the tree's internal context pool
// from many goroutines (run under -race in CI): pooled contexts must never
// be shared between in-flight searches, and every goroutine must see
// results identical to a single-threaded run.
func TestConcurrentPooledSearches(t *testing.T) {
	tree, pts, _ := parityTree(t, 4000, 8, 54)
	rng := rand.New(rand.NewSource(55))
	const workers = 8
	const perWorker = 40

	queries := make([]geom.Point, workers*perWorker)
	boxes := make([]geom.Rect, workers*perWorker)
	for i := range queries {
		queries[i] = pts[rng.Intn(len(pts))]
		boxes[i] = randQueryRect(rng, 8, 0.5)
	}
	wantK := make([][]Neighbor, len(queries))
	wantB := make([][]Entry, len(queries))
	for i := range queries {
		var err error
		if wantK[i], err = tree.SearchKNN(queries[i], 5, dist.L2()); err != nil {
			t.Fatal(err)
		}
		if wantB[i], err = tree.SearchBox(boxes[i]); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				i := w*perWorker + j
				gotK, err := tree.SearchKNN(queries[i], 5, dist.L2())
				if err != nil {
					errs <- err
					return
				}
				gotB, err := tree.SearchBox(boxes[i])
				if err != nil {
					errs <- err
					return
				}
				if !neighborsEqual(gotK, wantK[i]) || !entriesEqual(gotB, wantB[i]) {
					t.Errorf("worker %d query %d: concurrent result differs from serial", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func neighborsEqual(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].RID != b[i].RID || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

func entriesEqual(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].RID != b[i].RID {
			return false
		}
	}
	return true
}
