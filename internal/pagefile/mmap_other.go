//go:build !unix

package pagefile

import (
	"errors"
	"os"
)

// errMmapUnsupported makes OpenMmapFile fall back to ReadAt on platforms
// without a usable mmap; the file still works, Mapped() reports false.
var errMmapUnsupported = errors.New("pagefile: mmap not supported on this platform")

func mmapReadOnly(f *os.File, size int) ([]byte, error) {
	return nil, errMmapUnsupported
}

func munmap(data []byte) error { return nil }
