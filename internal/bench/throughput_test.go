package bench

import (
	"testing"

	"hybridtree/internal/dist"
)

// TestThroughputRunners smoke-tests the runners and pins the accounting
// guarantee: the serial single-mutex path and the read-parallel path over
// an identically built tree charge byte-identical logical read counts for
// the same query set — concurrency changes wall-clock, never the paper's
// I/O metric.
func TestThroughputRunners(t *testing.T) {
	f, err := NewThroughputFixture(4000, 8, 64, 2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	serialStats := f.Serial.tree.File().Stats()
	parallelStats := f.Parallel.File().Stats()
	serialStats.Reset()
	parallelStats.Reset()

	rs, err := RunKNNThroughput(f.Serial, f.Queries, 5, dist.L2(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := RunKNNThroughput(f.Parallel, f.Queries, 5, dist.L2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Queries != len(f.Queries) || rp.Queries != len(f.Queries) {
		t.Fatalf("query counts %d / %d, want %d", rs.Queries, rp.Queries, len(f.Queries))
	}
	if rs.QPS <= 0 || rp.QPS <= 0 {
		t.Fatalf("non-positive QPS: serial %v parallel %v", rs.QPS, rp.QPS)
	}
	if got, want := parallelStats.Reads(), serialStats.Reads(); got != want {
		t.Fatalf("parallel path charged %d reads, serial path %d", got, want)
	}

	if _, err := RunBoxThroughput(f.Serial, f.Boxes, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := RunBoxThroughput(f.Parallel, f.Boxes, 4); err != nil {
		t.Fatal(err)
	}
}
