package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime self-telemetry: a lightweight poller sampling the Go runtime's
// own metrics (runtime/metrics) into the registry, so /metrics exposes
// process health — GC pauses, heap size, goroutine count, scheduler
// latency — alongside the index counters. The runtime keeps these as
// cumulative values/histograms; the sampler publishes instantaneous values
// as gauges and folds histogram *deltas* between polls into obs.Histograms,
// so quantiles computed from the registry reflect the process lifetime.

// Names of the runtime/metrics samples the poller reads, paired with the
// registry names they publish under.
const (
	rmHeapObjects = "/memory/classes/heap/objects:bytes"
	rmHeapFree    = "/memory/classes/heap/free:bytes"
	rmTotalMem    = "/memory/classes/total:bytes"
	rmGCCycles    = "/gc/cycles/total:gc-cycles"
	rmGCPauses    = "/gc/pauses:seconds"
	rmSchedLat    = "/sched/latencies:seconds"
)

// RuntimeSampler polls runtime/metrics into a Registry. One sampler per
// process is the intended shape (StartRuntimeSampler); Sample may also be
// called manually for deterministic tests or one-shot scrapes.
type RuntimeSampler struct {
	goroutines *Gauge
	gomaxprocs *Gauge
	heapBytes  *Gauge
	heapFree   *Gauge
	totalBytes *Gauge
	gcCycles   *Gauge
	gcPauseNs  *Histogram
	schedLatNs *Histogram

	mu      sync.Mutex
	samples []metrics.Sample
	prev    map[string][]uint64 // previous cumulative histogram counts

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	started  bool
}

// NewRuntimeSampler resolves the runtime gauges and histograms in r and
// returns an unstarted sampler.
func NewRuntimeSampler(r *Registry) *RuntimeSampler {
	s := &RuntimeSampler{
		goroutines: r.Gauge("go_goroutines"),
		gomaxprocs: r.Gauge("go_gomaxprocs"),
		heapBytes:  r.Gauge("go_heap_objects_bytes"),
		heapFree:   r.Gauge("go_heap_free_bytes"),
		totalBytes: r.Gauge("go_memory_total_bytes"),
		gcCycles:   r.Gauge("go_gc_cycles_total"),
		gcPauseNs:  r.Histogram("go_gc_pause_ns"),
		schedLatNs: r.Histogram("go_sched_latency_ns"),
		prev:       make(map[string][]uint64),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	for _, name := range []string{rmHeapObjects, rmHeapFree, rmTotalMem, rmGCCycles, rmGCPauses, rmSchedLat} {
		s.samples = append(s.samples, metrics.Sample{Name: name})
	}
	return s
}

// StartRuntimeSampler starts a background poller updating r every interval
// (minimum 100ms; a zero interval defaults to 5s). Stop the returned
// sampler to shut the goroutine down.
func StartRuntimeSampler(r *Registry, interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	s := NewRuntimeSampler(r)
	s.started = true
	s.Sample()
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.Sample()
			}
		}
	}()
	return s
}

// Stop shuts the background poller down and waits for it to exit. Safe to
// call more than once, and a no-op for a sampler that was never started.
func (s *RuntimeSampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.started {
		<-s.done
	}
}

// Sample reads the runtime metrics once and publishes them. It is safe for
// concurrent use (a mutex serializes the shared sample buffer).
func (s *RuntimeSampler) Sample() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.goroutines.Set(int64(runtime.NumGoroutine()))
	s.gomaxprocs.Set(int64(runtime.GOMAXPROCS(0)))
	metrics.Read(s.samples)
	for i := range s.samples {
		sm := &s.samples[i]
		switch sm.Name {
		case rmHeapObjects:
			setUint(s.heapBytes, sm.Value)
		case rmHeapFree:
			setUint(s.heapFree, sm.Value)
		case rmTotalMem:
			setUint(s.totalBytes, sm.Value)
		case rmGCCycles:
			setUint(s.gcCycles, sm.Value)
		case rmGCPauses:
			s.foldHistogram(sm, s.gcPauseNs)
		case rmSchedLat:
			s.foldHistogram(sm, s.schedLatNs)
		}
	}
}

// setUint publishes a KindUint64 sample into a gauge, skipping samples the
// running runtime does not support (KindBad).
func setUint(g *Gauge, v metrics.Value) {
	if v.Kind() == metrics.KindUint64 {
		g.Set(int64(v.Uint64()))
	}
}

// foldHistogram observes the delta between this poll's cumulative
// runtime/metrics histogram and the previous poll's into dst, converting
// seconds to nanoseconds at each bucket's midpoint. The first poll folds
// the whole process lifetime in, which is exactly what a fresh registry
// should show.
func (s *RuntimeSampler) foldHistogram(sm *metrics.Sample, dst *Histogram) {
	if sm.Value.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := sm.Value.Float64Histogram()
	if h == nil || len(h.Counts) == 0 || len(h.Buckets) != len(h.Counts)+1 {
		return
	}
	prev := s.prev[sm.Name]
	if len(prev) != len(h.Counts) {
		prev = make([]uint64, len(h.Counts))
	}
	for i, c := range h.Counts {
		d := c - prev[i] // cumulative counts never decrease per bucket
		prev[i] = c
		if d == 0 {
			continue
		}
		dst.ObserveN(bucketMidNs(h.Buckets[i], h.Buckets[i+1]), d)
	}
	s.prev[sm.Name] = prev
}

// bucketMidNs converts a [lo, hi) seconds bucket to a representative
// nanosecond value: the midpoint, falling back to the finite edge when the
// other is infinite.
func bucketMidNs(lo, hi float64) int64 {
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return int64(hi * 1e9)
	case math.IsInf(hi, 1):
		return int64(lo * 1e9)
	default:
		return int64((lo + hi) / 2 * 1e9)
	}
}
