package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

func TestSearchBoxFuncStreams(t *testing.T) {
	tree, pts := buildRandom(t, 2000, 6, 512, Config{}, 301)
	rng := rand.New(rand.NewSource(303))
	for q := 0; q < 10; q++ {
		rect := randQueryRect(rng, 6, 0.5)
		var got []RecordID
		err := tree.SearchBoxFunc(rect, func(e Entry) bool {
			got = append(got, e.RID)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteBox(pts, rect)
		if len(got) != len(want) {
			t.Fatalf("streamed %d, want %d", len(got), len(want))
		}
		for _, r := range got {
			if !want[r] {
				t.Fatalf("unexpected rid %d", r)
			}
		}
	}
}

func TestSearchBoxFuncEarlyStop(t *testing.T) {
	tree, _ := buildRandom(t, 2000, 4, 512, Config{}, 307)
	calls := 0
	err := tree.SearchBoxFunc(geom.UnitCube(4), func(Entry) bool {
		calls++
		return calls < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Fatalf("visitor called %d times, want 5", calls)
	}
}

func TestSearchBoxFuncValidation(t *testing.T) {
	tree, _ := buildRandom(t, 100, 4, 512, Config{}, 309)
	if err := tree.SearchBoxFunc(geom.UnitCube(3), func(Entry) bool { return true }); err == nil {
		t.Fatal("wrong-dim query accepted")
	}
}

func TestCountBoxAndContainsAny(t *testing.T) {
	tree, pts := buildRandom(t, 2000, 4, 512, Config{}, 311)
	rng := rand.New(rand.NewSource(313))
	for q := 0; q < 10; q++ {
		rect := randQueryRect(rng, 4, 0.3)
		count, err := tree.CountBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		want := len(bruteBox(pts, rect))
		if count != want {
			t.Fatalf("count = %d, want %d", count, want)
		}
		any, err := tree.ContainsAny(rect)
		if err != nil {
			t.Fatal(err)
		}
		if any != (want > 0) {
			t.Fatalf("ContainsAny = %v with %d matches", any, want)
		}
	}
	// An empty corner of space.
	tiny := geom.NewRect(
		geom.Point{0.99999, 0.99999, 0.99999, 0.99999},
		geom.Point{0.99999, 0.99999, 0.99999, 0.99999})
	any, err := tree.ContainsAny(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if any {
		t.Fatal("empty region reported non-empty")
	}
}

func TestContainsAnyStopsEarly(t *testing.T) {
	// ContainsAny over the whole space must touch far fewer pages than a
	// full enumeration.
	tree, _ := buildRandom(t, 5000, 8, 512, Config{}, 317)
	stats := tree.File().Stats()
	stats.Reset()
	if _, err := tree.SearchBox(geom.UnitCube(8)); err != nil {
		t.Fatal(err)
	}
	full := stats.Reads()
	stats.Reset()
	any, err := tree.ContainsAny(geom.UnitCube(8))
	if err != nil || !any {
		t.Fatalf("ContainsAny = %v, %v", any, err)
	}
	early := stats.Reads()
	if early*10 > full {
		t.Fatalf("early stop read %d pages vs %d for full scan", early, full)
	}
}

func TestCountRange(t *testing.T) {
	tree, pts := buildRandom(t, 1500, 6, 512, Config{}, 331)
	m := dist.L1()
	count, err := tree.CountRange(pts[3], 0.7, m)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range pts {
		if m.Distance(pts[3], p) <= 0.7 {
			want++
		}
	}
	if count != want {
		t.Fatalf("count = %d, want %d", count, want)
	}
}

func TestVisitSurfacesErrors(t *testing.T) {
	inner := pagefile.NewMemFile(512)
	fault := pagefile.NewFaultFile(inner, 1<<30)
	tree, err := New(fault, Config{Dim: 4, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(337))
	for i := 0; i < 500; i++ {
		p := geom.Point{rng.Float32(), rng.Float32(), rng.Float32(), rng.Float32()}
		if err := tree.Insert(p, RecordID(i)); err != nil {
			t.Fatal(err)
		}
	}
	tree.DropCaches()
	fault.SetRemaining(0)
	err = tree.SearchBoxFunc(geom.UnitCube(4), func(Entry) bool { return true })
	if !errors.Is(err, pagefile.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestExplainBox(t *testing.T) {
	tree, pts := buildRandom(t, 3000, 8, 512, Config{}, 501)
	rng := rand.New(rand.NewSource(503))
	for q := 0; q < 8; q++ {
		rect := randQueryRect(rng, 8, 0.5)
		res, ex, err := tree.ExplainBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		// Results agree with the plain search.
		plain, err := tree.SearchBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(plain) || ex.Results != len(plain) {
			t.Fatalf("explain returned %d (ex %d), search %d", len(res), ex.Results, len(plain))
		}
		want := bruteBox(pts, rect)
		if len(res) != len(want) {
			t.Fatalf("explain results %d, brute force %d", len(res), len(want))
		}
		// Accounting consistency: levels match height; the root level reads
		// one node; each level's descents equal the next level's reads; the
		// data level's hits equal the result count.
		if len(ex.Levels) != tree.Height() {
			t.Fatalf("levels = %d, height = %d", len(ex.Levels), tree.Height())
		}
		if ex.Levels[0].NodesRead != 1 {
			t.Fatalf("root reads = %d", ex.Levels[0].NodesRead)
		}
		for l := 0; l+1 < len(ex.Levels); l++ {
			if ex.Levels[l].Descended != ex.Levels[l+1].NodesRead {
				t.Fatalf("level %d descended %d but level %d read %d",
					l, ex.Levels[l].Descended, l+1, ex.Levels[l+1].NodesRead)
			}
		}
		last := ex.Levels[len(ex.Levels)-1]
		if last.EntriesHit != len(res) {
			t.Fatalf("data-level hits %d, results %d", last.EntriesHit, len(res))
		}
		// The rendering includes every level and the result count.
		s := ex.String()
		if !strings.Contains(s, "results:") {
			t.Fatalf("rendering missing results: %q", s)
		}
	}
}

func TestExplainBoxShowsELSPruning(t *testing.T) {
	// Clustered data has dead space; at least some queries must show ELS
	// prunes (the second step of the two-step check doing real work).
	pts := clusteredPoints(4000, 8, 507)
	file := pagefile.NewMemFile(512)
	tree, err := New(file, Config{Dim: 8, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := tree.Insert(p, RecordID(i)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(509))
	totalELS := 0
	for q := 0; q < 20; q++ {
		rect := randQueryRect(rng, 8, 0.4)
		_, ex, err := tree.ExplainBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range ex.Levels {
			totalELS += l.ELSPruned
		}
	}
	if totalELS == 0 {
		t.Fatal("ELS never pruned on clustered data")
	}
	if _, _, err := tree.ExplainBox(geom.UnitCube(3)); err == nil {
		t.Fatal("wrong-dim explain accepted")
	}
}
