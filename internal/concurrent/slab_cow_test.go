package concurrent

import (
	"sync"
	"sync/atomic"
	"testing"

	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// TestSlabCopyOnWriteUnderReaders stresses the copy-on-write contract of
// the flat-slab leaf layout: search results are *views into a leaf's value
// slab*, so a writer that mutated a published slab in place (instead of
// cloning it) would tear points out from under concurrent readers. One
// writer churns inserts and deletes — deletes hit the swap-remove compaction
// path, inserts the append path, and both go through node.clone — while
// readers continuously search and verify that every returned point is
// bitwise-equal to the deterministic vector of its record id. A COW
// violation shows up either as a torn point here or as a data race on the
// slab under -race.
func TestSlabCopyOnWriteUnderReaders(t *testing.T) {
	const (
		dim     = 6
		seedN   = 600
		churn   = 500
		readers = 4
	)
	file := pagefile.NewMemFile(512)
	tree, err := New(file, core.Config{Dim: dim, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < seedN; i++ {
		if err := tree.Insert(mvccPoint(i, dim), core.RecordID(i)); err != nil {
			t.Fatal(err)
		}
	}

	space := geom.Rect{Lo: make(geom.Point, dim), Hi: make(geom.Point, dim)}
	for d := 0; d < dim; d++ {
		space.Hi[d] = 1
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	// Writer: delete the oldest live record and insert a fresh one, so
	// every round compacts one slab (swap-remove) and extends another
	// (append), with occasional node splits and eliminate-and-reinsert
	// underflows along the way.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < churn; i++ {
			old := core.RecordID(i)
			if _, err := tree.Delete(mvccPoint(i, dim), old); err != nil {
				errs <- err
				return
			}
			fresh := seedN + i
			if err := tree.Insert(mvccPoint(fresh, dim), core.RecordID(fresh)); err != nil {
				errs <- err
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !done.Load() {
				es, err := tree.SearchBox(space)
				if err != nil {
					errs <- err
					return
				}
				for _, e := range es {
					if !e.Point.Equal(mvccPoint(int(e.RID), dim)) {
						t.Errorf("reader %d: rid %d returned torn point %v", r, e.RID, e.Point)
						return
					}
				}
				center := mvccPoint(r*31, dim)
				ns, err := tree.SearchKNN(center, 5, dist.L2())
				if err != nil {
					errs <- err
					return
				}
				for _, nb := range ns {
					if !nb.Point.Equal(mvccPoint(int(nb.RID), dim)) {
						t.Errorf("reader %d: knn rid %d returned torn point %v", r, nb.RID, nb.Point)
						return
					}
				}
			}
		}(r)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tree.Size(); got != seedN {
		t.Fatalf("size after churn = %d, want %d", got, seedN)
	}
}
