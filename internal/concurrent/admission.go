package concurrent

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/obs"
)

// Admission-control sentinels.
var (
	// ErrShed is returned when the executor rejects a request without
	// running it: the queue was full at submission, or the request's
	// deadline expired while it waited in the queue. A shed request did no
	// tree work at all.
	ErrShed = errors.New("concurrent: request shed by admission control")

	// ErrClosed is returned for requests submitted after Close.
	ErrClosed = errors.New("concurrent: executor closed")
)

// ExecutorConfig sizes an Executor.
type ExecutorConfig struct {
	// Workers is the number of query workers (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (default 2×Workers). A full
	// queue sheds new requests with ErrShed instead of queueing them behind
	// work that would blow their deadlines anyway.
	QueueDepth int
}

func (cfg ExecutorConfig) withDefaults() ExecutorConfig {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	return cfg
}

type execTask struct {
	ctx  context.Context
	run  func(c *core.QueryContext) error
	done chan error // buffered: the worker never blocks on delivery
}

// execMetrics is the executor's shared obs bundle.
type execMetrics struct {
	outcomes *obs.Outcomes
	panics   *obs.Counter
	depth    *obs.Gauge // live queued-but-not-started requests
}

var (
	execMetricsOnce sync.Once
	execMetricsVal  *execMetrics
)

func execObs() *execMetrics {
	execMetricsOnce.Do(func() {
		r := obs.Default()
		execMetricsVal = &execMetrics{
			outcomes: obs.NewOutcomes(r, "concurrent_request_outcomes_total"),
			panics:   r.Counter("concurrent_executor_panics_total"),
			depth:    r.Gauge("concurrent_executor_queue_depth"),
		}
	})
	return execMetricsVal
}

// Executor is the tree's admission-control front door: a bounded queue
// feeding a fixed worker pool. Overload resolves at the edge — a full queue
// sheds new requests immediately (ErrShed) rather than letting latency grow
// without bound — and a request whose deadline expired while queued is shed
// before it wastes a worker. Each worker owns one pooled QueryContext, every
// request is panic-isolated, and every request resolves to exactly one
// outcome counter in concurrent_request_outcomes_total. Close drains: queued
// requests still run (or shed on their expired deadlines), then the workers
// exit.
type Executor struct {
	tree  *Tree
	tasks chan *execTask
	m     *execMetrics

	mu     sync.Mutex // guards closed and the submit-vs-close race
	closed bool
	wg     sync.WaitGroup
}

// NewExecutor starts the worker pool over t.
func NewExecutor(t *Tree, cfg ExecutorConfig) *Executor {
	cfg = cfg.withDefaults()
	e := &Executor{
		tree:  t,
		tasks: make(chan *execTask, cfg.QueueDepth),
		m:     execObs(),
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Do submits fn and blocks until it resolves. fn runs on a worker goroutine
// with a pooled QueryContext, lock-free against the MVCC snapshot its
// search pins (it never blocks behind a writer). The error is fn's
// own, ErrShed (queue full or deadline expired while queued), ErrClosed, or
// a panic converted to an error.
func (e *Executor) Do(ctx context.Context, fn func(c *core.QueryContext) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	t := &execTask{ctx: ctx, run: fn, done: make(chan error, 1)}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.m.outcomes.Record(obs.OutcomeShed)
		return ErrClosed
	}
	select {
	case e.tasks <- t:
		e.mu.Unlock()
		e.m.depth.Add(1)
	default:
		e.mu.Unlock()
		e.m.outcomes.Record(obs.OutcomeShed)
		return fmt.Errorf("%w: queue full", ErrShed)
	}
	return <-t.done
}

// SearchKNN runs a budgeted k-NN through the executor. Degraded results
// (budget exhausted) are returned alongside their *core.ErrBudgetExceeded.
func (e *Executor) SearchKNN(ctx context.Context, q geom.Point, k int, m dist.Metric, b core.Budget) ([]core.Neighbor, error) {
	var out []core.Neighbor
	err := e.Do(ctx, func(c *core.QueryContext) error {
		ns, err := e.tree.tree.SearchKNNContext(ctx, c, q, k, m, b, nil)
		cloneNeighbors(ns)
		out = ns
		return err
	})
	return out, err
}

// SearchRange runs a budgeted range query through the executor.
func (e *Executor) SearchRange(ctx context.Context, q geom.Point, radius float64, m dist.Metric, b core.Budget) ([]core.Neighbor, error) {
	var out []core.Neighbor
	err := e.Do(ctx, func(c *core.QueryContext) error {
		ns, err := e.tree.tree.SearchRangeContext(ctx, c, q, radius, m, b, nil)
		cloneNeighbors(ns)
		out = ns
		return err
	})
	return out, err
}

// SearchBox runs a budgeted box query through the executor.
func (e *Executor) SearchBox(ctx context.Context, q geom.Rect, b core.Budget) ([]core.Entry, error) {
	var out []core.Entry
	err := e.Do(ctx, func(c *core.QueryContext) error {
		es, err := e.tree.tree.SearchBoxContext(ctx, c, q, b, nil)
		cloneEntries(es)
		out = es
		return err
	})
	return out, err
}

// Close stops admission (subsequent Do calls return ErrClosed), lets the
// workers drain every queued request, and waits for them to exit.
func (e *Executor) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.tasks) // safe: submits hold e.mu, so no send can race the close
	e.mu.Unlock()
	e.wg.Wait()
}

func (e *Executor) worker() {
	defer e.wg.Done()
	c := getCtx()
	defer putCtx(c)
	for t := range e.tasks {
		e.m.depth.Add(-1)
		// Deadline-aware shedding: a request that expired while queued
		// never ran, so it sheds instead of charging the tree.
		select {
		case <-t.ctx.Done():
			e.m.outcomes.Record(obs.OutcomeShed)
			t.done <- fmt.Errorf("%w: %v while queued", ErrShed, t.ctx.Err())
			continue
		default:
		}
		err := e.runTask(c, t)
		e.m.outcomes.Record(core.ClassifyOutcome(err))
		t.done <- err
	}
}

// runTask executes one admitted request with panic isolation: a panic in
// the search (or in caller-supplied code) becomes that request's error and
// the worker lives on. The query context (and its snapshot pin) unwinds
// cleanly via the deferred release in the layers below.
func (e *Executor) runTask(c *core.QueryContext, t *execTask) (err error) {
	defer func() {
		if r := recover(); r != nil {
			e.m.panics.Inc()
			err = fmt.Errorf("concurrent: request panicked: %v", r)
		}
	}()
	return t.run(c)
}
