package hbtree

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/index"
	"hybridtree/internal/pagefile"
)

func build(t testing.TB, n, dim, pageSize int, seed int64) (*Tree, []geom.Point) {
	t.Helper()
	file := pagefile.NewMemFile(pageSize)
	tree, err := New(file, Config{Dim: dim, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
		if err := tree.Insert(p, uint64(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return tree, pts
}

func clustered(n, dim int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, 4)
	for c := range centers {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = 0.2 + 0.6*rng.Float32()
		}
		centers[c] = p
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[rng.Intn(len(centers))]
		p := make(geom.Point, dim)
		for d := range p {
			v := c[d] + float32(rng.NormFloat64()*0.07)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			p[d] = v
		}
		pts[i] = p
	}
	return pts
}

func queryRect(rng *rand.Rand, dim int, side float32) geom.Rect {
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for d := 0; d < dim; d++ {
		c := rng.Float32()
		lo[d], hi[d] = c-side/2, c+side/2
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

func checkBox(t *testing.T, tree *Tree, pts []geom.Point, rect geom.Rect, what string) {
	t.Helper()
	got, err := tree.SearchBox(rect)
	if err != nil {
		t.Fatal(err)
	}
	gotSet := make(map[uint64]bool)
	for _, e := range got {
		if gotSet[e.RID] {
			t.Fatalf("%s: duplicate result %d", what, e.RID)
		}
		gotSet[e.RID] = true
	}
	want := make(map[uint64]bool)
	for i, p := range pts {
		if rect.Contains(p) {
			want[uint64(i)] = true
		}
	}
	if len(gotSet) != len(want) {
		t.Fatalf("%s: got %d results, want %d", what, len(gotSet), len(want))
	}
	for r := range want {
		if !gotSet[r] {
			t.Fatalf("%s: missing %d", what, r)
		}
	}
}

func TestValidation(t *testing.T) {
	file := pagefile.NewMemFile(4096)
	if _, err := New(file, Config{Dim: 0}); err == nil {
		t.Fatal("dim 0 accepted")
	}
	if _, err := New(pagefile.NewMemFile(128), Config{Dim: 64, PageSize: 128}); err == nil {
		t.Fatal("impossible geometry accepted")
	}
	tree, err := New(file, Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(geom.Point{0.1}, 1); err == nil {
		t.Fatal("wrong dim accepted")
	}
	if err := tree.Insert(geom.Point{0.1, 0.2, 0.3, 1.5}, 1); err == nil {
		t.Fatal("out-of-space vector accepted")
	}
	if _, err := tree.SearchBox(geom.UnitCube(3)); err == nil {
		t.Fatal("wrong dim query accepted")
	}
}

func TestDistanceQueriesUnsupported(t *testing.T) {
	// Footnote 2 of the paper: the hB-tree does not support distance-based
	// search; Figure 7(c,d) excludes it for this reason.
	tree, _ := build(t, 100, 4, 512, 3)
	if _, err := tree.SearchRange(geom.Point{0, 0, 0, 0}, 0.5, dist.L1()); !errors.Is(err, index.ErrUnsupported) {
		t.Fatalf("SearchRange err = %v, want ErrUnsupported", err)
	}
	if _, err := tree.SearchKNN(geom.Point{0, 0, 0, 0}, 5, dist.L1()); !errors.Is(err, index.ErrUnsupported) {
		t.Fatalf("SearchKNN err = %v, want ErrUnsupported", err)
	}
}

func TestBoxMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		n, dim, page int
		side         float32
	}{
		{3000, 2, 512, 0.2},
		{3000, 8, 512, 0.7},
		{2000, 16, 1024, 0.9},
		{800, 64, 4096, 1.3},
	} {
		t.Run(fmt.Sprintf("n%d_d%d", tc.n, tc.dim), func(t *testing.T) {
			tree, pts := build(t, tc.n, tc.dim, tc.page, 42)
			rng := rand.New(rand.NewSource(7))
			for q := 0; q < 20; q++ {
				checkBox(t, tree, pts, queryRect(rng, tc.dim, tc.side), fmt.Sprintf("query %d", q))
			}
		})
	}
}

func TestBoxClusteredData(t *testing.T) {
	pts := clustered(4000, 12, 5)
	file := pagefile.NewMemFile(1024)
	tree, err := New(file, Config{Dim: 12, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := tree.Insert(p, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(9))
	for q := 0; q < 20; q++ {
		checkBox(t, tree, pts, queryRect(rng, 12, 0.6), fmt.Sprintf("clustered %d", q))
	}
}

func TestPointLookups(t *testing.T) {
	tree, pts := build(t, 2500, 6, 512, 11)
	for i := 0; i < 200; i++ {
		rect := geom.Rect{Lo: pts[i], Hi: pts[i]}
		got, err := tree.SearchBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, e := range got {
			if e.RID == uint64(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("point %d not found", i)
		}
	}
}

func TestRedundancyExists(t *testing.T) {
	// Path posting must produce redundant child references (Table 1's
	// "storage redundancy: yes" row for the hB-tree): with enough data the
	// ratio of references to distinct children exceeds 1.
	tree, _ := build(t, 20000, 8, 512, 13)
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 20000 {
		t.Fatalf("entries = %d", st.Entries)
	}
	if st.Redundancy <= 1.0 {
		t.Fatalf("redundancy = %g, expected > 1 from path posting", st.Redundancy)
	}
	if st.IndexNodes == 0 || st.DataNodes == 0 {
		t.Fatal("degenerate structure")
	}
	t.Logf("hB stats: %+v", st)
}

func TestCodecRoundTrip(t *testing.T) {
	tree, pts := build(t, 3000, 6, 512, 17)
	rng := rand.New(rand.NewSource(19))
	rect := queryRect(rng, 6, 0.5)
	checkBox(t, tree, pts, rect, "pre-decode")
	tree.store.DropCache()
	checkBox(t, tree, pts, rect, "post-decode")
}

func TestDeepTree(t *testing.T) {
	// Small pages force several levels of posting and extraction.
	tree, pts := build(t, 6000, 4, 256, 23)
	if tree.Height() < 3 {
		t.Fatalf("height = %d, wanted a deep tree", tree.Height())
	}
	rng := rand.New(rand.NewSource(29))
	for q := 0; q < 25; q++ {
		checkBox(t, tree, pts, queryRect(rng, 4, 0.3), fmt.Sprintf("deep %d", q))
	}
}

// Heavy split pressure on small pages exhausts forward lists and forces
// tombstone migrations (attachForward's escape hatch); correctness must
// survive it. This is the regression test for the forward-list page
// exhaustion failure.
func TestTombstoneMigration(t *testing.T) {
	const dim = 8
	file := pagefile.NewMemFile(512)
	tree, err := New(file, Config{Dim: dim, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(91))
	var pts []geom.Point
	// A dense stream into a small corner region: the same few nodes split
	// over and over, accumulating forwards.
	for i := 0; i < 8000; i++ {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32() * 0.15
		}
		pts = append(pts, p)
		if err := tree.Insert(p, uint64(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for q := 0; q < 15; q++ {
		checkBox(t, tree, pts, queryRect(rng, dim, 0.08), fmt.Sprintf("tombstone %d", q))
	}
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 8000 {
		t.Fatalf("entries = %d", st.Entries)
	}
}
