package dist_test

import (
	"fmt"
	"log"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
)

func ExampleNewWeightedLp() {
	// Relevance feedback produced per-dimension weights: the second
	// dimension matters three times as much as the first.
	m, err := dist.NewWeightedLp(1, []float64{1, 3})
	if err != nil {
		log.Fatal(err)
	}
	a := geom.Point{0.0, 0.0}
	b := geom.Point{0.2, 0.1}
	fmt.Printf("%s distance = %.1f\n", m.Name(), m.Distance(a, b))
	// Output:
	// wL1 distance = 0.5
}

func ExampleMetric() {
	// Every metric provides MINDIST to a rectangle — the lower bound
	// pruning relies on.
	r := geom.NewRect(geom.Point{0.4, 0.4}, geom.Point{0.6, 0.6})
	q := geom.Point{0.1, 0.5}
	fmt.Printf("L1 mindist  = %.1f\n", dist.L1().MinDistRect(q, r))
	fmt.Printf("L2 mindist  = %.1f\n", dist.L2().MinDistRect(q, r))
	// Output:
	// L1 mindist  = 0.3
	// L2 mindist  = 0.3
}
