package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMinOrdering(t *testing.T) {
	var q Min[string]
	q.Push("c", 3)
	q.Push("a", 1)
	q.Push("b", 2)
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
	if q.PeekPriority() != 1 {
		t.Fatalf("peek = %g", q.PeekPriority())
	}
	for _, want := range []string{"a", "b", "c"} {
		v, _ := q.Pop()
		if v != want {
			t.Fatalf("pop = %q, want %q", v, want)
		}
	}
	if q.Len() != 0 {
		t.Fatal("queue should be empty")
	}
}

// Property: popping everything yields priorities in ascending order,
// matching a plain sort.
func TestMinSortsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		var q Min[int]
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			p := rng.Float64()
			want[i] = p
			q.Push(i, p)
		}
		sort.Float64s(want)
		for i := 0; i < n; i++ {
			_, p := q.Pop()
			if p != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMinInterleaved(t *testing.T) {
	var q Min[int]
	q.Push(1, 5)
	q.Push(2, 1)
	if v, p := q.Pop(); v != 2 || p != 1 {
		t.Fatalf("pop = %d,%g", v, p)
	}
	q.Push(3, 0.5)
	q.Push(4, 10)
	if v, _ := q.Pop(); v != 3 {
		t.Fatalf("pop = %d, want 3", v)
	}
	if v, _ := q.Pop(); v != 1 {
		t.Fatalf("pop = %d, want 1", v)
	}
	if v, _ := q.Pop(); v != 4 {
		t.Fatalf("pop = %d, want 4", v)
	}
}

func TestKBestKeepsSmallest(t *testing.T) {
	q := NewKBest[int](3)
	for i, p := range []float64{9, 2, 7, 1, 8, 3} {
		q.Offer(i, p)
	}
	if !q.Full() {
		t.Fatal("should be full")
	}
	vals, pris := q.Sorted()
	if len(vals) != 3 {
		t.Fatalf("len = %d", len(vals))
	}
	wantP := []float64{1, 2, 3}
	wantV := []int{3, 1, 5}
	for i := range wantP {
		if pris[i] != wantP[i] || vals[i] != wantV[i] {
			t.Fatalf("sorted[%d] = (%d,%g), want (%d,%g)", i, vals[i], pris[i], wantV[i], wantP[i])
		}
	}
}

func TestKBestBound(t *testing.T) {
	q := NewKBest[int](2)
	if q.Offer(1, 5) != true || q.Offer(2, 3) != true {
		t.Fatal("offers below capacity must be kept")
	}
	if q.Bound() != 5 {
		t.Fatalf("bound = %g, want 5", q.Bound())
	}
	if q.Offer(3, 6) {
		t.Fatal("worse-than-bound offer must be rejected")
	}
	if !q.Offer(4, 1) {
		t.Fatal("better offer must be kept")
	}
	if q.Bound() != 3 {
		t.Fatalf("bound = %g, want 3", q.Bound())
	}
}

func TestKBestPanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewKBest(0) should panic")
		}
	}()
	NewKBest[int](0)
}

// Property: KBest(k) over a random stream returns exactly the k smallest
// priorities in ascending order.
func TestKBestProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		k := 1 + rng.Intn(20)
		q := NewKBest[int](k)
		all := make([]float64, n)
		for i := 0; i < n; i++ {
			all[i] = rng.Float64()
			q.Offer(i, all[i])
		}
		sort.Float64s(all)
		want := all
		if n > k {
			want = all[:k]
		}
		_, pris := q.Sorted()
		if len(pris) != len(want) {
			return false
		}
		for i := range want {
			if pris[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
