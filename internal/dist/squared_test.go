package dist

import (
	"math"
	"math/rand"
	"testing"

	"hybridtree/internal/geom"
)

func randPointRect(rng *rand.Rand, dim int) (geom.Point, geom.Point, geom.Rect) {
	a := make(geom.Point, dim)
	b := make(geom.Point, dim)
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for d := 0; d < dim; d++ {
		a[d] = rng.Float32()*20 - 10
		b[d] = rng.Float32()*20 - 10
		x := rng.Float32()*20 - 10
		y := rng.Float32()*20 - 10
		if x > y {
			x, y = y, x
		}
		lo[d], hi[d] = x, y
	}
	return a, b, geom.Rect{Lo: lo, Hi: hi}
}

// TestLp2MatchesL2 pins the LpMetric{P: 2} fast path bit-for-bit against
// L2: the specialization must be a pure speed change, invisible to every
// comparison a search makes.
func TestLp2MatchesL2(t *testing.T) {
	lp := LpMetric{P: 2}
	l2 := L2()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		dim := 1 + rng.Intn(80)
		a, b, r := randPointRect(rng, dim)
		if got, want := lp.Distance(a, b), l2.Distance(a, b); got != want {
			t.Fatalf("trial %d (dim %d): Lp2 Distance = %v, L2 = %v", trial, dim, got, want)
		}
		if got, want := lp.MinDistRect(a, r), l2.MinDistRect(a, r); got != want {
			t.Fatalf("trial %d (dim %d): Lp2 MinDistRect = %v, L2 = %v", trial, dim, got, want)
		}
	}
}

// TestSquaredMetricContract checks every SquaredOK implementation against
// the interface's documented invariants: sqrt of the squared forms equals
// the plain forms bit-for-bit, and the bounded form is exact whenever its
// result is within the bound.
func TestSquaredMetricContract(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const dim = 24
	weights := make([]float64, dim)
	for i := range weights {
		weights[i] = rng.Float64() * 3
	}
	wlp, err := NewWeightedLp(2, weights)
	if err != nil {
		t.Fatal(err)
	}
	metrics := []Metric{L2(), LpMetric{P: 2}, wlp}
	for _, m := range metrics {
		sqm, ok := AsSquared(m)
		if !ok {
			t.Fatalf("%s: expected squared support", m.Name())
		}
		for trial := 0; trial < 300; trial++ {
			a, b, r := randPointRect(rng, dim)
			d := m.Distance(a, b)
			d2 := sqm.DistanceSq(a, b)
			if math.Sqrt(d2) != d {
				t.Fatalf("%s trial %d: Sqrt(DistanceSq) = %v, Distance = %v", m.Name(), trial, math.Sqrt(d2), d)
			}
			md := m.MinDistRect(a, r)
			md2 := sqm.MinDistRectSq(a, r)
			if math.Sqrt(md2) != md {
				t.Fatalf("%s trial %d: Sqrt(MinDistRectSq) = %v, MinDistRect = %v", m.Name(), trial, math.Sqrt(md2), md)
			}
			// Bound above the true value: result must be exact.
			if got := sqm.DistanceSqBounded(a, b, d2); got != d2 {
				t.Fatalf("%s trial %d: DistanceSqBounded(bound=d2) = %v, want %v", m.Name(), trial, got, d2)
			}
			if got := sqm.DistanceSqBounded(a, b, math.Inf(1)); got != d2 {
				t.Fatalf("%s trial %d: DistanceSqBounded(+Inf) = %v, want %v", m.Name(), trial, got, d2)
			}
			// Bound below: the partial sum may stop early but must exceed it.
			if d2 > 0 {
				if got := sqm.DistanceSqBounded(a, b, d2/2); got <= d2/2 {
					t.Fatalf("%s trial %d: abandoned scan returned %v <= bound %v", m.Name(), trial, got, d2/2)
				}
			}
		}
	}
}

// TestAsSquaredRejectsNonEuclidean makes sure the fast path never
// activates for metrics where squared comparison is invalid.
func TestAsSquaredRejectsNonEuclidean(t *testing.T) {
	w3 := make([]float64, 4)
	for i := range w3 {
		w3[i] = 1
	}
	wlp3, err := NewWeightedLp(3, w3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Metric{L1(), Linf(), LpMetric{P: 3}, LpMetric{P: 1}, wlp3} {
		if _, ok := AsSquared(m); ok {
			t.Fatalf("%s: squared fast path must not activate", m.Name())
		}
	}
}
