package nodestore

import (
	"sync"
	"testing"

	"hybridtree/internal/pagefile"
)

// TestConcurrentGet hammers Get from many goroutines over a shared store,
// both warm (cache hits charging atomic counters) and cold (concurrent
// decode of the same pages racing to populate a shard). Run with -race.
func TestConcurrentGet(t *testing.T) {
	file := pagefile.NewMemFile(64)
	s := New[int](file, intCodec{})
	const pages = 64
	ids := make([]pagefile.PageID, pages)
	for i := range ids {
		id, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put(id, i); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	s.DropCache() // start cold so concurrent misses race on shard insert
	file.Stats().Reset()

	const goroutines = 8
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, id := range ids {
					v, err := s.Get(id)
					if err != nil {
						errs <- err
						return
					}
					if v != i {
						errs <- errValue{id: id, got: v, want: i}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every Get charged exactly one logical read, hit or miss.
	want := uint64(goroutines * rounds * pages)
	if got := file.Stats().Reads(); got != want {
		t.Fatalf("reads = %d, want %d", got, want)
	}
}

type errValue struct {
	id        pagefile.PageID
	got, want int
}

func (e errValue) Error() string {
	return "wrong value from concurrent Get"
}
