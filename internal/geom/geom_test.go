package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnitCube(t *testing.T) {
	r := UnitCube(4)
	if r.Dim() != 4 {
		t.Fatalf("dim = %d, want 4", r.Dim())
	}
	if got := r.Area(); got != 1 {
		t.Fatalf("area = %g, want 1", got)
	}
	if !r.Contains(Point{0, 0.5, 1, 0.25}) {
		t.Fatal("unit cube should contain interior point")
	}
	if r.Contains(Point{0, 0.5, 1.1, 0.25}) {
		t.Fatal("unit cube should not contain exterior point")
	}
}

func TestNewRectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRect with inverted corners should panic")
		}
	}()
	NewRect(Point{1, 0}, Point{0, 1})
}

func TestNewRectDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRect with mismatched dims should panic")
		}
	}()
	NewRect(Point{0}, Point{1, 1})
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect(3)
	if !e.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	if e.Area() != 0 {
		t.Fatalf("empty area = %g, want 0", e.Area())
	}
	// Empty acts as identity for Union.
	r := NewRect(Point{0.2, 0.3, 0.4}, Point{0.5, 0.6, 0.7})
	if got := e.Union(r); !got.Equal(r) {
		t.Fatalf("empty ∪ r = %v, want %v", got, r)
	}
	e2 := e.Clone()
	e2.EnlargeRect(r)
	if !e2.Equal(r) {
		t.Fatalf("enlarge(empty, r) = %v, want %v", e2, r)
	}
	e3 := e.Clone()
	e3.Enlarge(Point{0.1, 0.1, 0.1})
	want := NewRect(Point{0.1, 0.1, 0.1}, Point{0.1, 0.1, 0.1})
	if !e3.Equal(want) {
		t.Fatalf("enlarge(empty, p) = %v, want %v", e3, want)
	}
}

func TestIntersection(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{2, 2})
	b := NewRect(Point{1, 1}, Point{3, 3})
	c := NewRect(Point{5, 5}, Point{6, 6})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("a and b should intersect")
	}
	if a.Intersects(c) {
		t.Fatal("a and c should not intersect")
	}
	got := a.Intersect(b)
	want := NewRect(Point{1, 1}, Point{2, 2})
	if !got.Equal(want) {
		t.Fatalf("a ∩ b = %v, want %v", got, want)
	}
	if !a.Intersect(c).IsEmpty() {
		t.Fatal("disjoint intersection should be empty")
	}
	// Boundary touch counts as intersection (inclusive semantics).
	d := NewRect(Point{2, 0}, Point{4, 2})
	if !a.Intersects(d) {
		t.Fatal("touching rectangles should intersect")
	}
}

func TestContainsRect(t *testing.T) {
	outer := NewRect(Point{0, 0}, Point{10, 10})
	inner := NewRect(Point{2, 2}, Point{3, 3})
	if !outer.ContainsRect(inner) {
		t.Fatal("outer should contain inner")
	}
	if inner.ContainsRect(outer) {
		t.Fatal("inner should not contain outer")
	}
	if !outer.ContainsRect(outer) {
		t.Fatal("rect should contain itself")
	}
}

func TestExtentAndMaxExtentDim(t *testing.T) {
	r := NewRect(Point{0, 0, 0}, Point{1, 3, 2})
	if got := r.Extent(1); got != 3 {
		t.Fatalf("extent(1) = %g, want 3", got)
	}
	if got := r.MaxExtentDim(); got != 1 {
		t.Fatalf("MaxExtentDim = %d, want 1", got)
	}
	// Ties resolve to lowest dimension.
	sq := NewRect(Point{0, 0}, Point{2, 2})
	if got := sq.MaxExtentDim(); got != 0 {
		t.Fatalf("tie MaxExtentDim = %d, want 0", got)
	}
}

func TestEnlargementArea(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{1, 1})
	if got := r.EnlargementArea(Point{0.5, 0.5}); got != 0 {
		t.Fatalf("interior enlargement = %g, want 0", got)
	}
	got := r.EnlargementArea(Point{2, 1})
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("enlargement = %g, want 1", got)
	}
}

func TestMinkowskiVolume(t *testing.T) {
	r := NewRect(Point{0.2, 0.2}, Point{0.4, 0.5})
	// (0.2+0.1)*(0.3+0.1)
	got := r.MinkowskiVolume(0.1)
	want := 0.3 * 0.4
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("minkowski = %g, want %g", got, want)
	}
}

func TestMarginCenter(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{2, 4})
	if got := r.Margin(); got != 6 {
		t.Fatalf("margin = %g, want 6", got)
	}
	if c := r.Center(); !c.Equal(Point{1, 2}) {
		t.Fatalf("center = %v, want (1,2)", c)
	}
}

func TestBoundingRectAndCentroid(t *testing.T) {
	pts := []Point{{1, 5}, {3, 2}, {2, 4}}
	br := BoundingRect(pts)
	if !br.Equal(NewRect(Point{1, 2}, Point{3, 5})) {
		t.Fatalf("bounding rect = %v", br)
	}
	c := Centroid(pts)
	if !c.Equal(Point{2, 11.0 / 3}) {
		t.Fatalf("centroid = %v", c)
	}
	for _, p := range pts {
		if !br.Contains(p) {
			t.Fatalf("bounding rect misses %v", p)
		}
	}
}

func TestBoundingRectEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BoundingRect(nil) should panic")
		}
	}()
	BoundingRect(nil)
}

func randRect(rng *rand.Rand, dim int) Rect {
	lo := make(Point, dim)
	hi := make(Point, dim)
	for d := 0; d < dim; d++ {
		a, b := rng.Float32(), rng.Float32()
		if a > b {
			a, b = b, a
		}
		lo[d], hi[d] = a, b
	}
	return Rect{Lo: lo, Hi: hi}
}

// Property: the union of two rectangles contains both, and the intersection
// (when non-empty) is contained in both.
func TestUnionIntersectProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(16)
		a, b := randRect(r, dim), randRect(r, dim)
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			return false
		}
		i := a.Intersect(b)
		if !i.IsEmpty() {
			if !a.ContainsRect(i) || !b.ContainsRect(i) {
				return false
			}
		}
		// Intersects must agree with non-empty intersection.
		return a.Intersects(b) == !i.IsEmpty()
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Minkowski volume is monotone in the query side and bounded below
// by the area.
func TestMinkowskiMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(8)
		rect := randRect(r, dim)
		s1, s2 := r.Float64()*0.5, r.Float64()*0.5
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		v1, v2 := rect.MinkowskiVolume(s1), rect.MinkowskiVolume(s2)
		return v1 <= v2+1e-12 && rect.Area() <= v1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Enlarge(p) always yields a rect containing p and the original.
func TestEnlargeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(16)
		rect := randRect(r, dim)
		orig := rect.Clone()
		p := make(Point, dim)
		for d := range p {
			p[d] = r.Float32()*4 - 2
		}
		rect.Enlarge(p)
		return rect.Contains(p) && rect.ContainsRect(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
