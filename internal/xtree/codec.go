package xtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// Page layout (little endian): magic 'X', node type (0 leaf / 1 directory),
// dim uint16, count uint16 (entries in this page), next uint32 (the
// continuation page of a supernode chain, or none). A supernode is simply a
// node whose entries spill across a chain of pages; loading it reads — and
// is charged for — every page of the chain.
const noNext = uint32(0xFFFFFFFF)

// put writes the node across its page chain.
func (t *Tree) put(n *node) error {
	perPage := t.cfg.nodeCap()
	if n.leaf {
		perPage = t.cfg.leafCap()
	}
	count := len(n.ents)
	if n.leaf {
		count = len(n.pts)
	}
	pages := append([]pagefile.PageID{n.id}, n.chain...)
	need := (count + perPage - 1) / perPage
	if need == 0 {
		need = 1
	}
	if need > len(pages) {
		return fmt.Errorf("xtree: node %d needs %d pages, has %d", n.id, need, len(pages))
	}

	start := 0
	for pi, page := range pages {
		end := start + perPage
		if end > count {
			end = count
		}
		buf := t.buf
		for i := range buf {
			buf[i] = 0
		}
		buf[0] = 'X'
		if n.leaf {
			buf[1] = 0
		} else {
			buf[1] = 1
		}
		binary.LittleEndian.PutUint16(buf[2:], uint16(t.cfg.Dim))
		binary.LittleEndian.PutUint16(buf[4:], uint16(end-start))
		next := noNext
		if pi+1 < len(pages) {
			next = uint32(pages[pi+1])
		}
		binary.LittleEndian.PutUint32(buf[6:], next)
		off := headerSize
		if n.leaf {
			for i := start; i < end; i++ {
				binary.LittleEndian.PutUint64(buf[off:], n.rids[i])
				off += 8
				for _, v := range n.pts[i] {
					binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
					off += 4
				}
			}
		} else {
			for i := start; i < end; i++ {
				binary.LittleEndian.PutUint32(buf[off:], uint32(n.ents[i].child))
				off += 4
				for _, v := range n.ents[i].rect.Lo {
					binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
					off += 4
				}
				for _, v := range n.ents[i].rect.Hi {
					binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
					off += 4
				}
			}
		}
		if err := t.file.WritePage(page, buf[:off]); err != nil {
			return err
		}
		start = end
	}
	t.cache[n.id] = n
	return nil
}

// load reads a node and its whole supernode chain, one counted page read
// per page.
func (t *Tree) load(id pagefile.PageID) (*node, error) {
	n := &node{id: id}
	page := id
	first := true
	for {
		if err := t.file.ReadPage(page, t.buf); err != nil {
			return nil, err
		}
		buf := t.buf
		if buf[0] != 'X' {
			return nil, fmt.Errorf("xtree: corrupt page %d", page)
		}
		leaf := buf[1] == 0
		if first {
			n.leaf = leaf
		} else if leaf != n.leaf {
			return nil, fmt.Errorf("xtree: page %d chain kind mismatch", page)
		}
		if got := int(binary.LittleEndian.Uint16(buf[2:])); got != t.cfg.Dim {
			return nil, fmt.Errorf("xtree: page %d dim %d, want %d", page, got, t.cfg.Dim)
		}
		count := int(binary.LittleEndian.Uint16(buf[4:]))
		next := binary.LittleEndian.Uint32(buf[6:])
		off := headerSize
		if n.leaf {
			if off+count*(8+4*t.cfg.Dim) > len(buf) {
				return nil, fmt.Errorf("xtree: page %d entry count exceeds page", page)
			}
			for i := 0; i < count; i++ {
				n.rids = append(n.rids, binary.LittleEndian.Uint64(buf[off:]))
				off += 8
				p := make(geom.Point, t.cfg.Dim)
				for d := range p {
					p[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
					off += 4
				}
				n.pts = append(n.pts, p)
			}
		} else {
			if off+count*(4+8*t.cfg.Dim) > len(buf) {
				return nil, fmt.Errorf("xtree: page %d entry count exceeds page", page)
			}
			for i := 0; i < count; i++ {
				var e entry
				e.child = pagefile.PageID(binary.LittleEndian.Uint32(buf[off:]))
				off += 4
				e.rect = geom.Rect{Lo: make(geom.Point, t.cfg.Dim), Hi: make(geom.Point, t.cfg.Dim)}
				for d := range e.rect.Lo {
					e.rect.Lo[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
					off += 4
				}
				for d := range e.rect.Hi {
					e.rect.Hi[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
					off += 4
				}
				n.ents = append(n.ents, e)
			}
		}
		if !first {
			n.chain = append(n.chain, page)
		}
		first = false
		if next == noNext {
			return n, nil
		}
		if len(n.chain) > 1024 {
			return nil, fmt.Errorf("xtree: page %d chain too long (corrupt link?)", id)
		}
		page = pagefile.PageID(next)
	}
}
