// Package hbtree implements a holey-brick (hB-) tree in the style of Lomet
// and Salzberg (TODS 1990) — the space-partitioning competitor in the
// paper's evaluation. Like the hybrid tree, nodes organize their children
// with an intra-node kd-tree; unlike the hybrid tree, splits must be clean,
// so an overflowing node is split by *extracting a kd-subtree* holding
// between 1/3 and 2/3 of its content. The extracted region is described by
// the full kd path from the node's root to the subtree, and that path is
// what gets posted to the parent: every internal record of the path points
// back at the remaining node on its off-path side, so the remaining node is
// referenced once per path step — the storage redundancy of Table 1. The
// region left behind is the node's region minus the extracted box: a holey
// brick.
//
// Path posting plus extraction means a node can end up referenced by
// multiple kd-leaves and even multiple parents. This implementation keeps
// that (it is the defining hB-tree property) and restores strict
// correctness with split forwarding: every node records, for each split it
// ever underwent, a rectangle covering everything that physically departed
// (the split halfspace for data splits, the posted path's box for subtree
// extractions) and the sibling that took it. A query or insert
// arriving at a node through a stale reference
// first consults the forward list (in split order) and follows it when its
// target region has moved on — the B-link-tree technique transplanted to
// multidimensional space. Parent postings then become routing
// optimizations that are never required for reachability.
//
// Per footnote 2 of the hybrid tree paper, the hB-tree does not support
// distance-based queries; SearchRange and SearchKNN return
// index.ErrUnsupported, and the paper's Figure 7(c,d) excludes the hB-tree
// for the same reason.
package hbtree

import (
	"fmt"
	"sort"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/index"
	"hybridtree/internal/nodestore"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
)

// Config controls tree geometry.
type Config struct {
	Dim      int
	PageSize int
	// Space is the indexed region; defaults to the unit cube. Inserted
	// vectors must lie inside it.
	Space geom.Rect
}

const kdNone int32 = -1

// kdNode is one record of the intra-node kd-tree: a clean single-position
// split (left: x_dim < val; right: x_dim >= val) or a leaf referencing a
// child page.
type kdNode struct {
	Dim         uint16
	Val         float32
	Left, Right int32
	Child       pagefile.PageID
}

func (k *kdNode) isLeaf() bool { return k.Left == kdNone && k.Right == kdNone }

// forward records one split this node underwent: rect covers everything
// that physically departed, sibling is the node that took it. Forwards are
// kept in split order; the first containing rect wins during routing.
type forward struct {
	rect    geom.Rect
	sibling pagefile.PageID
}

type node struct {
	id   pagefile.PageID
	leaf bool
	pts  []geom.Point
	rids []uint64
	kd   []kdNode
	root int32
	fwd  []forward
}

// Tree is an hB-tree over a page file.
type Tree struct {
	cfg    Config
	file   pagefile.File
	store  *nodestore.Store[*node]
	root   pagefile.PageID
	height int
	size   int
	prunes *obs.Counter // index_prunes_total{method="hb"}
}

// New creates an empty hB-tree on file.
func New(file pagefile.File, cfg Config) (*Tree, error) {
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("hbtree: dim must be >= 1, got %d", cfg.Dim)
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = file.PageSize()
	}
	if cfg.PageSize != file.PageSize() {
		return nil, fmt.Errorf("hbtree: page size %d != file page size %d", cfg.PageSize, file.PageSize())
	}
	if cfg.Space.Dim() == 0 {
		cfg.Space = geom.UnitCube(cfg.Dim)
	}
	if dataCapacity(&cfg) < 4 {
		return nil, fmt.Errorf("hbtree: page size %d too small for %d dimensions", cfg.PageSize, cfg.Dim)
	}
	t := &Tree{cfg: cfg, file: file, prunes: obs.PruneCounter(obs.Default(), "hb")}
	t.store = nodestore.New[*node](file, codec{dim: cfg.Dim, space: cfg.Space})
	t.store.SetObsMethod("hb")
	id, err := t.store.Alloc()
	if err != nil {
		return nil, err
	}
	root := &node{id: id, leaf: true, root: kdNone}
	if err := t.store.Put(id, root); err != nil {
		return nil, err
	}
	t.root = id
	t.height = 1
	return t, nil
}

// Name implements index.Index.
func (t *Tree) Name() string { return "hb" }

// File implements index.Index.
func (t *Tree) File() pagefile.File { return t.file }

// Size returns the number of stored entries.
func (t *Tree) Size() int { return t.size }

// Height returns the height of the primary path (1 = root is a data node).
func (t *Tree) Height() int { return t.height }

// posting describes a completed split to the parent: the path constraints
// of the departed region and the two pages. Applying it is an optimization;
// the remaining node's forward entry already guarantees reachability.
type posting struct {
	steps     []postStep
	remaining pagefile.PageID
	extracted pagefile.PageID
}

// postStep is one kd constraint on the path to the extracted region;
// towardRight tells which side of the split the extracted region lies on.
type postStep struct {
	dim         uint16
	val         float32
	towardRight bool
}

// Insert implements index.Index.
func (t *Tree) Insert(p geom.Point, rid uint64) error {
	if len(p) != t.cfg.Dim {
		return fmt.Errorf("hbtree: vector has dim %d, want %d", len(p), t.cfg.Dim)
	}
	if !t.cfg.Space.Contains(p) {
		return fmt.Errorf("hbtree: vector %v outside the indexed space", p)
	}
	post, err := t.insertAt(t.root, p.Clone(), rid)
	if err != nil {
		return err
	}
	if post != nil {
		if err := t.growRoot(post); err != nil {
			return err
		}
	}
	t.size++
	return nil
}

// growRoot materializes a root posting as a new root node whose kd-tree is
// the posted path.
func (t *Tree) growRoot(post *posting) error {
	id, err := t.store.Alloc()
	if err != nil {
		return err
	}
	root := &node{id: id, root: kdNone}
	root.root = buildChain(root, post)
	if err := t.store.Put(id, root); err != nil {
		return err
	}
	t.root = id
	t.height++
	return nil
}

// buildChain appends the posted path to n's arena: each step becomes an
// internal record whose off-path side references the remaining node (the
// redundant references of hB path posting) and whose final on-path end
// references the extracted node. Returns the chain's root arena index.
func buildChain(n *node, post *posting) int32 {
	leafFor := func(child pagefile.PageID) int32 {
		idx := int32(len(n.kd))
		n.kd = append(n.kd, kdNode{Left: kdNone, Right: kdNone, Child: child})
		return idx
	}
	// Build from the deepest step upward.
	cur := leafFor(post.extracted)
	for i := len(post.steps) - 1; i >= 0; i-- {
		s := post.steps[i]
		rec := kdNode{Dim: s.dim, Val: s.val}
		if s.towardRight {
			rec.Left = leafFor(post.remaining)
			rec.Right = cur
		} else {
			rec.Left = cur
			rec.Right = leafFor(post.remaining)
		}
		n.kd = append(n.kd, rec)
		cur = int32(len(n.kd)) - 1
	}
	return cur
}

// insertAt inserts below node id. Routing does not depend on knowing the
// node's exact region: forward rectangles cover everything that ever
// physically departed the node, and kd navigation is purely coordinate
// driven.
func (t *Tree) insertAt(id pagefile.PageID, p geom.Point, rid uint64) (*posting, error) {
	n, err := t.store.Get(id)
	if err != nil {
		return nil, err
	}
	// Forward check, in split order: if p falls in a departed region,
	// follow it. Postings from forwarded subtrees are deliberately dropped
	// — the sibling's own forward entry keeps everything reachable.
	for _, f := range n.fwd {
		if f.rect.Contains(p) {
			_, err := t.insertAt(f.sibling, p, rid)
			return nil, err
		}
	}
	if n.leaf {
		n.pts = append(n.pts, p)
		n.rids = append(n.rids, rid)
		if n.serializedSize(t.cfg.Dim, t.cfg.Space) > t.cfg.PageSize {
			return t.splitData(n)
		}
		return nil, t.store.Put(id, n)
	}

	// Navigate the intra-node kd-tree; remember the leaf for posting.
	idx := n.root
	for !n.kd[idx].isLeaf() {
		k := &n.kd[idx]
		if p[k.Dim] < k.Val {
			idx = k.Left
		} else {
			idx = k.Right
		}
	}
	leafIdx := idx
	post, err := t.insertAt(n.kd[leafIdx].Child, p, rid)
	if err != nil {
		return nil, err
	}
	if post == nil {
		return nil, nil
	}
	// Apply the posting at the leaf we descended through; other stale
	// references to the child stay valid via its forward entry.
	chain := buildChain(n, post)
	n.kd[leafIdx] = n.kd[chain]
	if int32(len(n.kd))-1 == chain {
		n.kd = n.kd[:len(n.kd)-1] // chain root copied into place; drop the duplicate
	}
	if n.serializedSize(t.cfg.Dim, t.cfg.Space) > t.cfg.PageSize {
		return t.splitIndex(n)
	}
	return nil, t.store.Put(id, n)
}

// splitData performs the hB data-node split: a clean cut at the median of
// the widest dimension (the kd-tree a fresh data node would build reaches a
// 1/2 fraction after the first median split, so the extracted path has
// length one).
func (t *Tree) splitData(n *node) (*posting, error) {
	br := geom.BoundingRect(n.pts)
	dim := br.MaxExtentDim()
	coords := make([]float64, len(n.pts))
	for i, p := range n.pts {
		coords[i] = float64(p[dim])
	}
	sort.Float64s(coords)
	val := float32(coords[len(coords)/2])
	if val == float32(coords[0]) {
		// Duplicate mass at the median: move to the next distinct value so
		// the lower side is non-empty (clean splits cannot overlap).
		for _, c := range coords {
			if float32(c) > val {
				val = float32(c)
				break
			}
		}
		if val == float32(coords[0]) {
			return nil, fmt.Errorf("hbtree: node %d holds only duplicates of one vector; clean splits cannot divide it", n.id)
		}
	}

	sid, err := t.store.Alloc()
	if err != nil {
		return nil, err
	}
	sib := &node{id: sid, leaf: true, root: kdNone}
	var keepPts []geom.Point
	var keepRids []uint64
	for i, p := range n.pts {
		if p[dim] < val {
			keepPts = append(keepPts, p)
			keepRids = append(keepRids, n.rids[i])
		} else {
			sib.pts = append(sib.pts, p)
			sib.rids = append(sib.rids, n.rids[i])
		}
	}
	n.pts, n.rids = keepPts, keepRids

	// The forward rectangle must cover everything that physically departed.
	// The moved points' bounding box is the tightest such cover, but
	// constraining every dimension costs ~10·dim bytes per forward and
	// starves high-dimensional pages; constraining only the most selective
	// few dimensions keeps the page cost bounded while still pruning
	// almost all spurious forward-follows.
	newFwd := forward{rect: t.sparseCover(geom.BoundingRect(sib.pts), dim), sibling: sid}
	remaining, err := t.attachForward(n, newFwd)
	if err != nil {
		return nil, err
	}
	if err := t.store.Put(sid, sib); err != nil {
		return nil, err
	}
	return &posting{
		steps:     []postStep{{dim: uint16(dim), val: val, towardRight: true}},
		remaining: remaining,
		extracted: sid,
	}, nil
}

// attachForward adds f to n's forward list, migrating n's content to a
// fresh page when the forward list would no longer fit beside it: the old
// page is frozen as a pure forwarding tombstone (old forwards plus a
// catch-all to the fresh page) so stale references stay valid while the
// live content escapes the accumulation. Returns the page that now holds
// the content.
func (t *Tree) attachForward(n *node, f forward) (pagefile.PageID, error) {
	n.fwd = append(n.fwd, f)
	if n.serializedSize(t.cfg.Dim, t.cfg.Space) <= t.cfg.PageSize-tombstoneSlack {
		if err := t.store.Put(n.id, n); err != nil {
			return pagefile.InvalidPage, err
		}
		return n.id, nil
	}
	n.fwd = n.fwd[:len(n.fwd)-1]
	aid, err := t.store.Alloc()
	if err != nil {
		return pagefile.InvalidPage, err
	}
	alive := &node{id: aid, leaf: n.leaf, pts: n.pts, rids: n.rids,
		kd: n.kd, root: n.root, fwd: []forward{f}}
	n.pts, n.rids, n.kd, n.root = nil, nil, nil, kdNone
	n.leaf = true // a frozen tombstone behaves like an empty data node
	n.fwd = append(n.fwd, forward{rect: t.cfg.Space.Clone(), sibling: aid})
	if err := t.store.Put(n.id, n); err != nil {
		return pagefile.InvalidPage, err
	}
	if err := t.store.Put(aid, alive); err != nil {
		return pagefile.InvalidPage, err
	}
	return aid, nil
}

// tombstoneSlack keeps a little headroom so the catch-all forward of a
// future tombstone conversion always fits.
const tombstoneSlack = 16

// maxForwardDims bounds how many dimensions a forward rectangle may
// constrain, capping its on-page cost at 6 + 10*maxForwardDims bytes.
const maxForwardDims = 8

// sparseCover relaxes cover back to the data space on all but
// maxForwardDims dimensions — always the split dimension mustDim (the most
// discriminative constraint: the departed mass lies beyond the median
// there), plus the dimensions where cover is tightest relative to the
// space. The result is a superset of cover with bounded encoding cost.
func (t *Tree) sparseCover(cover geom.Rect, mustDim int) geom.Rect {
	dim := t.cfg.Dim
	if dim <= maxForwardDims {
		return cover
	}
	type rel struct {
		d    int
		frac float64
	}
	rels := make([]rel, 0, dim)
	for d := 0; d < dim; d++ {
		if d == mustDim {
			continue
		}
		spaceExt := t.cfg.Space.Extent(d)
		frac := 1.0
		if spaceExt > 0 {
			frac = cover.Extent(d) / spaceExt
		}
		rels = append(rels, rel{d: d, frac: frac})
	}
	sort.Slice(rels, func(a, b int) bool { return rels[a].frac < rels[b].frac })
	out := t.cfg.Space.Clone()
	out.Lo[mustDim] = cover.Lo[mustDim]
	out.Hi[mustDim] = cover.Hi[mustDim]
	for _, r := range rels[:maxForwardDims-1] {
		out.Lo[r.d] = cover.Lo[r.d]
		out.Hi[r.d] = cover.Hi[r.d]
	}
	return out
}

// splitIndex splits an overflowing index node by extracting the kd-subtree
// found by descending from the root toward the larger side until the
// subtree holds at most 2/3 of the node's kd records (and hence, by the
// hB-tree argument, at least roughly 1/3). The departed region is the box
// described by the descent path — what remains is a holey brick.
func (t *Tree) splitIndex(n *node) (*posting, error) {
	sizes := make(map[int32]int)
	var measure func(idx int32) int
	measure = func(idx int32) int {
		k := &n.kd[idx]
		s := 1
		if !k.isLeaf() {
			s += measure(k.Left) + measure(k.Right)
		}
		sizes[idx] = s
		return s
	}
	total := measure(n.root)
	if n.kd[n.root].isLeaf() {
		return nil, fmt.Errorf("hbtree: index node %d overflowed with a single child", n.id)
	}

	var steps []postStep
	moved := t.cfg.Space.Clone()
	cur := n.root
	var parent int32 = kdNone
	for {
		k := &n.kd[cur]
		left, right := k.Left, k.Right
		next := left
		towardRight := false
		if sizes[right] > sizes[left] {
			next = right
			towardRight = true
		}
		steps = append(steps, postStep{dim: k.Dim, val: k.Val, towardRight: towardRight})
		if towardRight {
			if k.Val > moved.Lo[k.Dim] {
				moved.Lo[k.Dim] = k.Val
			}
		} else {
			if k.Val < moved.Hi[k.Dim] {
				moved.Hi[k.Dim] = k.Val
			}
		}
		parent = cur
		cur = next
		if 3*sizes[cur] <= 2*total {
			break
		}
		if n.kd[cur].isLeaf() {
			break // cannot descend further; extract the leaf
		}
	}

	// Extract subtree cur into the sibling node.
	sid, err := t.store.Alloc()
	if err != nil {
		return nil, err
	}
	sib := &node{id: sid, root: kdNone}
	var copyInto func(idx int32) int32
	copyInto = func(idx int32) int32 {
		k := n.kd[idx]
		at := int32(len(sib.kd))
		sib.kd = append(sib.kd, kdNode{Dim: k.Dim, Val: k.Val, Left: kdNone, Right: kdNone, Child: k.Child})
		if !k.isLeaf() {
			l := copyInto(k.Left)
			r := copyInto(k.Right)
			sib.kd[at].Left, sib.kd[at].Right = l, r
		}
		return at
	}
	sib.root = copyInto(cur)

	// Splice the subtree out of n: the extraction parent collapses to its
	// other child.
	pk := &n.kd[parent]
	sibling := pk.Left
	if sibling == cur {
		sibling = pk.Right
	}
	if parent == n.root {
		n.root = sibling
	} else {
		// Find the grandparent and relink. The arena is small; a linear
		// scan is fine here (splits are rare relative to inserts).
		for i := range n.kd {
			if n.kd[i].isLeaf() {
				continue
			}
			if n.kd[i].Left == parent {
				n.kd[i].Left = sibling
			}
			if n.kd[i].Right == parent {
				n.kd[i].Right = sibling
			}
		}
	}

	n.compact()
	remaining, err := t.attachForward(n, forward{rect: moved, sibling: sid})
	if err != nil {
		return nil, err
	}
	if err := t.store.Put(sid, sib); err != nil {
		return nil, err
	}
	return &posting{steps: steps, remaining: remaining, extracted: sid}, nil
}

// compact rebuilds the arena with only records reachable from the root.
func (n *node) compact() {
	if n.root == kdNone {
		n.kd = nil
		return
	}
	var fresh []kdNode
	var walk func(idx int32) int32
	walk = func(idx int32) int32 {
		k := n.kd[idx]
		at := int32(len(fresh))
		fresh = append(fresh, kdNode{Dim: k.Dim, Val: k.Val, Left: kdNone, Right: kdNone, Child: k.Child})
		if !k.isLeaf() {
			l := walk(k.Left)
			r := walk(k.Right)
			fresh[at].Left, fresh[at].Right = l, r
		}
		return at
	}
	n.root = walk(n.root)
	n.kd = fresh
}

// SearchBox implements index.Index. Path posting and extraction can
// reference one page from several routes, each covering a different region,
// so the walk tracks the routing region of every arrival: a page's I/O is
// charged once per query (it is pinned after the first load) and its
// entries are emitted once, but forward entries are re-checked per arrival
// clipped to that arrival's region — the clipping is what keeps stale
// references from fanning out into irrelevant siblings.
func (t *Tree) SearchBox(q geom.Rect) ([]index.Entry, error) {
	if q.Dim() != t.cfg.Dim {
		return nil, fmt.Errorf("hbtree: query has dim %d, want %d", q.Dim(), t.cfg.Dim)
	}
	var out []index.Entry
	pruned := 0
	pinned := make(map[pagefile.PageID]*node)
	emitted := make(map[pagefile.PageID]bool)
	// done records the routing regions already processed per page; a new
	// arrival contained in a processed region can contribute nothing new.
	done := make(map[pagefile.PageID][]geom.Rect)

	// visit borrows region for the duration of the call (the caller does
	// not mutate it until visit returns), cloning only what outlives it.
	var visit func(id pagefile.PageID, region geom.Rect) error
	visit = func(id pagefile.PageID, region geom.Rect) error {
		for _, prev := range done[id] {
			if prev.ContainsRect(region) {
				return nil
			}
		}
		done[id] = append(done[id], region.Clone())
		n, ok := pinned[id]
		if !ok {
			var err error
			n, err = t.store.Get(id)
			if err != nil {
				return err
			}
			pinned[id] = n
		}
		// Forward entries: follow when the departed region can hold results
		// reachable through this route.
		for _, f := range n.fwd {
			if !region.Intersects(f.rect) || !f.rect.Intersects(q) {
				continue
			}
			clipped := region.Intersect(f.rect)
			if clipped.Intersects(q) {
				if err := visit(f.sibling, clipped); err != nil {
					return err
				}
			}
		}
		if n.leaf {
			if !emitted[id] {
				emitted[id] = true
				for i, p := range n.pts {
					if q.Contains(p) {
						out = append(out, index.Entry{Point: p, RID: n.rids[i]})
					}
				}
			}
			return nil
		}
		// Walk the kd-tree, narrowing the routing region and pruning
		// subtrees outside q.
		brWalk := region.Clone()
		var walk func(idx int32) error
		walk = func(idx int32) error {
			k := &n.kd[idx]
			if k.isLeaf() {
				return visit(k.Child, brWalk)
			}
			d := int(k.Dim)
			oldHi := brWalk.Hi[d]
			if k.Val < oldHi {
				brWalk.Hi[d] = k.Val
			}
			if q.Lo[d] <= brWalk.Hi[d] && brWalk.Hi[d] >= brWalk.Lo[d] {
				if err := walk(k.Left); err != nil {
					return err
				}
			} else {
				pruned++
			}
			brWalk.Hi[d] = oldHi
			oldLo := brWalk.Lo[d]
			if k.Val > oldLo {
				brWalk.Lo[d] = k.Val
			}
			if q.Hi[d] >= brWalk.Lo[d] && brWalk.Hi[d] >= brWalk.Lo[d] {
				if err := walk(k.Right); err != nil {
					return err
				}
			} else {
				pruned++
			}
			brWalk.Lo[d] = oldLo
			return nil
		}
		if n.root != kdNone {
			return walk(n.root)
		}
		return nil
	}
	err := visit(t.root, t.cfg.Space)
	t.prunes.Add(uint64(pruned))
	return out, err
}

// Delete implements index.Index; unsupported. Deletion in an hB-tree
// requires merging holey-brick fragments across sibling kd-subtrees, which
// the paper's evaluation (insert-then-query workloads) never exercises.
func (t *Tree) Delete(geom.Point, uint64) (bool, error) {
	return false, fmt.Errorf("hbtree: delete: %w", index.ErrUnsupported)
}

// SearchRange implements index.Index; unsupported, as in the paper.
func (t *Tree) SearchRange(geom.Point, float64, dist.Metric) ([]index.Neighbor, error) {
	return nil, fmt.Errorf("hbtree: range: %w", index.ErrUnsupported)
}

// SearchKNN implements index.Index; unsupported, as in the paper.
func (t *Tree) SearchKNN(geom.Point, int, dist.Metric) ([]index.Neighbor, error) {
	return nil, fmt.Errorf("hbtree: knn: %w", index.ErrUnsupported)
}

// Stats summarizes structure, including the redundancy ratio of Table 1:
// total child references per distinct child (path posting makes it > 1).
type Stats struct {
	Height        int
	DataNodes     int
	IndexNodes    int
	Entries       int
	ChildRefs     int
	DistinctKids  int
	Redundancy    float64 // ChildRefs / DistinctKids
	ForwardChains int     // total forward entries
}

// Stats walks every reachable node without perturbing access counters.
func (t *Tree) Stats() (Stats, error) {
	savedObs := t.store.PauseObs()
	defer t.store.ResumeObs(savedObs)
	saved := *t.file.Stats()
	defer func() { *t.file.Stats() = saved }()
	st := Stats{Height: t.height}
	visited := make(map[pagefile.PageID]bool)
	var visit func(id pagefile.PageID) error
	visit = func(id pagefile.PageID) error {
		if visited[id] {
			return nil
		}
		visited[id] = true
		n, err := t.store.Get(id)
		if err != nil {
			return err
		}
		st.ForwardChains += len(n.fwd)
		for _, f := range n.fwd {
			if err := visit(f.sibling); err != nil {
				return err
			}
		}
		if n.leaf {
			st.DataNodes++
			st.Entries += len(n.pts)
			return nil
		}
		st.IndexNodes++
		kids := make(map[pagefile.PageID]bool)
		for i := range n.kd {
			if n.kd[i].isLeaf() {
				st.ChildRefs++
				kids[n.kd[i].Child] = true
			}
		}
		st.DistinctKids += len(kids)
		for c := range kids {
			if err := visit(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(t.root); err != nil {
		return Stats{}, err
	}
	if st.DistinctKids > 0 {
		st.Redundancy = float64(st.ChildRefs) / float64(st.DistinctKids)
	}
	return st, nil
}
