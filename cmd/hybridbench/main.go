// Command hybridbench regenerates the tables and figures of "The Hybrid
// Tree: An Index Structure for High Dimensional Feature Spaces" (ICDE
// 1999). Each experiment builds the hybrid tree and its competitors over
// synthetic FOURIER/COLHIST datasets, runs the paper's constant-selectivity
// query workloads, and prints the figure as an aligned series table.
//
// Usage:
//
//	hybridbench -fig 6cd              # one figure at the default scale
//	hybridbench -all -paper           # everything at the paper's full scale
//	hybridbench -table 1 -colhist 20000
//
// It is also the benchmark trajectory pipeline's CLI: feed it `go test
// -bench` output and it emits a schema-versioned JSON snapshot and compares
// it against a committed baseline, failing on gated regressions:
//
//	go test -bench . -count 5 ./internal/... | hybridbench -bench-input - \
//	    -json BENCH.json -baseline results/BENCH_baseline.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hybridtree/internal/bench"
	"hybridtree/internal/core"
	"hybridtree/internal/obs"
	"hybridtree/internal/perf"
	"hybridtree/internal/wal"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure to reproduce: 5ab, 5c, 6ab, 6cd, 7ab, 7cd")
		table    = flag.Int("table", 0, "table to reproduce: 1 or 2 (3: per-method obs counters, not from the paper)")
		ablation = flag.String("ablation", "", "ablation to run: pos, queryside, bulk, dp, elsmem, mmap")
		all      = flag.Bool("all", false, "run every figure, table and ablation")
		paper    = flag.Bool("paper", false, "use the paper's full scale (FOURIER 400K, COLHIST 70K, 100 queries)")
		fourierN = flag.Int("fourier", 0, "FOURIER dataset size (overrides scale preset)")
		colhistN = flag.Int("colhist", 0, "COLHIST dataset size (overrides scale preset)")
		queries  = flag.Int("queries", 0, "queries per measurement point")
		pageSize = flag.Int("page", 0, "page size in bytes (default 4096, as in the paper)")
		seed     = flag.Int64("seed", 0, "random seed (default 1)")
		quiet    = flag.Bool("quiet", false, "suppress progress lines")
		version  = flag.Bool("version", false, "print the build version and exit")

		benchIn  = flag.String("bench-input", "", "parse `go test -bench` output from this file (- for stdin), run the perf pipeline, and exit")
		jsonOut  = flag.String("json", "", "with -bench-input: write the benchmark snapshot to this path")
		basePath = flag.String("baseline", "", "with -bench-input: compare against this baseline snapshot; exit 1 on gated regressions")
		minBench = flag.Int("min-bench", 0, "with -bench-input: require at least this many benchmarks in the snapshot")

		obsAddr    = flag.String("obs", "", "serve the introspection endpoint on this address (e.g. localhost:6060) for the duration of the run")
		obsHold    = flag.Duration("obs-hold", 0, "keep the process (and the -obs endpoint) alive this long after the run finishes; -1s means forever")
		slowK      = flag.Int("slow-k", 16, "with -obs: retain this many slowest query traces in the flight recorder")
		slowThresh = flag.Duration("slow-threshold", 0, "with -obs: admit only traces at least this slow (0 = consider every trace)")
	)
	flag.Parse()

	if *version {
		commit, goVersion := obs.BuildVersion()
		fmt.Printf("hybridbench %s (%s)\n", commit, goVersion)
		return
	}
	if *benchIn != "" {
		if err := runPerfPipeline(*benchIn, *jsonOut, *basePath, *minBench); err != nil {
			fmt.Fprintf(os.Stderr, "hybridbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *obsAddr != "" {
		ring := obs.NewRing(256)
		slow := obs.NewSlowRecorder(*slowK, *slowThresh)
		core.SetDefaultTracer(obs.Tee(ring, slow))
		obs.RegisterBuildInfo(obs.Default())
		wal.RegisterMetrics()
		sampler := obs.StartRuntimeSampler(obs.Default(), 0)
		srv, addr, err := obs.Serve(*obsAddr, obs.Default(), ring, slow)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybridbench: obs endpoint: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			sampler.Stop()
			obs.Shutdown(srv, 5*time.Second)
		}()
		fmt.Fprintf(os.Stderr, "hybridbench: metrics at http://%s/metrics, slow queries at http://%s/debug/slow\n", addr, addr)
		defer func() {
			sampler.Sample()
			dumpObs(os.Stderr, "hybridbench", slow)
			if *obsHold != 0 {
				if *obsHold < 0 {
					fmt.Fprintf(os.Stderr, "hybridbench: holding obs endpoint open; ^C to exit\n")
					select {}
				}
				fmt.Fprintf(os.Stderr, "hybridbench: holding obs endpoint open for %v\n", *obsHold)
				time.Sleep(*obsHold)
			}
		}()
	}

	opts := bench.Defaults()
	if *paper {
		opts = bench.Paper()
	}
	if *fourierN > 0 {
		opts.FourierN = *fourierN
	}
	if *colhistN > 0 {
		opts.ColHistN = *colhistN
	}
	if *queries > 0 {
		opts.Queries = *queries
	}
	if *pageSize > 0 {
		opts.PageSize = *pageSize
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if !*quiet {
		opts.Out = os.Stderr
	}

	if !*all && *fig == "" && *table == 0 && *ablation == "" {
		flag.Usage()
		os.Exit(2)
	}

	run := func(name string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybridbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	if *all || *fig == "5ab" {
		a, b, err := bench.Fig5ab(opts)
		run("fig5ab", err)
		a.Print(os.Stdout)
		b.Print(os.Stdout)
	}
	if *all || *fig == "5c" {
		f, err := bench.Fig5c(opts)
		run("fig5c", err)
		f.Print(os.Stdout)
	}
	if *all || *fig == "6ab" {
		io, cpu, err := bench.Fig6(opts, "FOURIER")
		run("fig6ab", err)
		io.Print(os.Stdout)
		cpu.Print(os.Stdout)
	}
	if *all || *fig == "6cd" {
		io, cpu, err := bench.Fig6(opts, "COLHIST")
		run("fig6cd", err)
		io.Print(os.Stdout)
		cpu.Print(os.Stdout)
	}
	if *all || *fig == "7ab" {
		io, cpu, err := bench.Fig7ab(opts)
		run("fig7ab", err)
		io.Print(os.Stdout)
		cpu.Print(os.Stdout)
	}
	if *all || *fig == "7cd" {
		io, cpu, err := bench.Fig7cd(opts)
		run("fig7cd", err)
		io.Print(os.Stdout)
		cpu.Print(os.Stdout)
	}
	if *all || *table == 1 {
		t, err := bench.Table1(opts)
		run("table1", err)
		t.Print(os.Stdout)
	}
	if *all || *table == 2 {
		t, err := bench.Table2(opts)
		run("table2", err)
		t.Print(os.Stdout)
	}
	if *all || *table == 3 {
		t, err := bench.TableObs(opts)
		run("table3", err)
		t.Print(os.Stdout)
	}
	if *all || *ablation == "pos" {
		f, err := bench.AblationSplitPosition(opts)
		run("ablation pos", err)
		f.Print(os.Stdout)
	}
	if *all || *ablation == "queryside" {
		f, err := bench.AblationQuerySide(opts)
		run("ablation queryside", err)
		f.Print(os.Stdout)
	}
	if *all || *ablation == "bulk" {
		t, err := bench.AblationBulkLoad(opts)
		run("ablation bulk", err)
		t.Print(os.Stdout)
	}
	if *all || *ablation == "dp" {
		t, err := bench.AblationDPFamily(opts)
		run("ablation dp", err)
		t.Print(os.Stdout)
	}
	if *all || *ablation == "elsmem" {
		t, err := bench.AblationELSMemory(opts)
		run("ablation elsmem", err)
		t.Print(os.Stdout)
	}
	if *all || *ablation == "mmap" {
		t, err := bench.AblationMmap(opts)
		run("ablation mmap", err)
		t.Print(os.Stdout)
	}
}

// runPerfPipeline turns `go test -bench` output into a snapshot artifact and
// (optionally) a pass/fail verdict against the committed baseline. With no
// -baseline the same-run rules (leaf-scan layout ratio, tracer overhead,
// mixed-workload retention, zero-alloc ceilings) still gate, so a first run
// on a fresh branch is already meaningful.
func runPerfPipeline(input, jsonOut, basePath string, minBench int) error {
	var r io.Reader = os.Stdin
	if input != "-" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	benches, err := perf.ParseGoBench(r)
	if err != nil {
		return err
	}
	snap := perf.NewSnapshot(benches)
	if err := snap.Validate(minBench); err != nil {
		return err
	}
	if jsonOut != "" {
		if err := snap.WriteFile(jsonOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hybridbench: wrote %d benchmark(s) to %s\n", len(snap.Benchmarks), jsonOut)
	}
	var base *perf.Snapshot
	if basePath != "" {
		if base, err = perf.ReadFile(basePath); err != nil {
			return err
		}
	}
	rep := perf.Compare(base, snap, perf.DefaultRules())
	rep.Write(os.Stdout)
	if rep.Failed() {
		return fmt.Errorf("performance gate: %d gated finding(s)", len(rep.Gates()))
	}
	fmt.Fprintf(os.Stderr, "hybridbench: performance gates passed (%d findings, 0 gates)\n", len(rep.Findings))
	return nil
}

// dumpObs prints the end-of-run observability summary: WAL and pagefile
// durability counters, runtime self-telemetry, and the flight recorder's
// slowest traces with per-stage attribution.
func dumpObs(w io.Writer, prog string, slow *obs.SlowRecorder) {
	fmt.Fprintf(w, "\n%s: --- metrics (wal_*, pagefile_*, go_*) ---\n", prog)
	obs.Default().DumpText(w, "wal_", "pagefile_", "go_")
	snap := slow.Snapshot()
	fmt.Fprintf(w, "%s: --- flight recorder: %d slowest of %d observed queries ---\n", prog, len(snap), slow.Observed())
	for _, tr := range snap {
		fmt.Fprintln(w, tr.String())
	}
}
