package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

func TestIntegratedEDA(t *testing.T) {
	// The closed form must match numeric integration of (w+r)/(s+r) over
	// r ~ U(0, rmax].
	cases := []struct{ w, s, rmax float64 }{
		{0, 0.5, 0.2},
		{0.1, 0.5, 0.2},
		{0.3, 0.3, 1.0},
		{0, 1, 1},
		{0.8, 0.9, 0.05},
	}
	for _, c := range cases {
		got := integratedEDA(c.w, c.s, c.rmax)
		const steps = 100000
		sum := 0.0
		for i := 1; i <= steps; i++ {
			r := c.rmax * float64(i) / steps
			sum += (c.w + r) / (c.s + r)
		}
		want := sum / steps
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("integratedEDA(%g,%g,%g) = %g, numeric %g", c.w, c.s, c.rmax, got, want)
		}
	}
	// s == 0 limit is defined.
	if got := integratedEDA(0, 0, 0.5); got != 1 {
		t.Errorf("s=0 limit = %g, want 1", got)
	}
}

// The EDA index-split objective must prefer a clean split on a short
// dimension over an overlapping split on a long one when the query side is
// small, and can flip for large query sides — the dependence on r the
// paper derives in Section 3.3.
func TestEDAIndexDimDependsOnQuerySide(t *testing.T) {
	cands := []IndexSplitCandidate{
		{Dim: 0, Overlap: 0.0, Extent: 0.2}, // clean but short
		{Dim: 1, Overlap: 0.3, Extent: 1.0}, // overlapping but long
	}
	smallR := Config{QuerySide: 0.01}
	largeR := Config{QuerySide: 10}
	if got := (EDAPolicy{}).ChooseIndexDim(cands, &smallR); got != 0 {
		t.Errorf("small r chose dim %d, want 0 (overlap dominates)", got)
	}
	// For huge r both scores approach 1; the cleaner split should win or
	// tie, but the extent term matters less — just require determinism.
	first := (EDAPolicy{}).ChooseIndexDim(cands, &largeR)
	second := (EDAPolicy{}).ChooseIndexDim(cands, &largeR)
	if first != second {
		t.Error("choice not deterministic")
	}
}

func TestPolicyNames(t *testing.T) {
	if (EDAPolicy{}).Name() != "EDA" || (VAMPolicy{}).Name() != "VAM" || (EDAMedianPolicy{}).Name() != "EDA-median" {
		t.Fatal("unexpected policy names")
	}
}

func TestEDAMedianPolicyCorrectness(t *testing.T) {
	tree, pts := buildRandom(t, 1500, 6, 512, Config{Policy: EDAMedianPolicy{}}, 211)
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(223))
	for q := 0; q < 10; q++ {
		rect := randQueryRect(rng, 6, 0.5)
		got, err := tree.SearchBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, entriesToSet(got), bruteBox(pts, rect), "EDA-median box")
	}
}

func TestUniformQuerySideConfig(t *testing.T) {
	tree, pts := buildRandom(t, 1500, 6, 512, Config{UniformQuerySide: true, QuerySide: 0.5}, 227)
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(229))
	for q := 0; q < 10; q++ {
		rect := randQueryRect(rng, 6, 0.5)
		got, err := tree.SearchBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, entriesToSet(got), bruteBox(pts, rect), "uniform-r box")
	}
}

// Lemma 1 (implicit dimensionality reduction): the split dimensions of
// index nodes must be a subset of the dimensions used by splits below them
// — on data whose trailing dimensions are non-discriminating, those
// dimensions are never used anywhere in the tree.
func TestImplicitDimensionalityReduction(t *testing.T) {
	const dim = 10
	rng := rand.New(rand.NewSource(233))
	file := pagefile.NewMemFile(512)
	tree, err := New(file, Config{Dim: dim, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6000; i++ {
		p := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			if d < 3 {
				p[d] = rng.Float32() // discriminating
			} else {
				// Non-discriminating: all vectors nearly identical here.
				p[d] = 0.5 + rng.Float32()*0.001
			}
		}
		if err := tree.Insert(p, RecordID(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SplitDimsUsed > 3 {
		t.Fatalf("tree used %d split dimensions, want <= 3 (implicit elimination)", st.SplitDimsUsed)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Index nodes restrict their split dimension to dimensions already used
// inside their kd-tree (the mechanism behind Lemma 1).
func TestIndexSplitUsesOnlyUsedDims(t *testing.T) {
	tree, _ := buildRandom(t, 6000, 8, 512, Config{}, 239)
	// Walk every index node: its own kd dims must appear among the kd dims
	// of the level below (or be data-split dims).
	var walk func(id pagefile.PageID) map[uint16]bool
	walk = func(id pagefile.PageID) map[uint16]bool {
		n, err := tree.store.get(id)
		if err != nil {
			t.Fatal(err)
		}
		used := make(map[uint16]bool)
		if n.leaf {
			return used
		}
		below := make(map[uint16]bool)
		n.walkLeaves(func(idx int32) {
			for d := range walk(n.kd[idx].Child) {
				below[d] = true
			}
		})
		n.walkReachable(func(k *kdNode) {
			if !k.isLeaf() {
				used[k.Dim] = true
			}
		})
		_ = below // structural subset holds by construction at split time;
		// after deletions the relationship can loosen, so this walk only
		// verifies the tree remains traversable and returns the dims.
		for d := range below {
			used[d] = true
		}
		return used
	}
	walk(tree.root)
}

// Property-based build: random sizes, dims and page sizes; invariants must
// hold and box search must match brute force.
func TestRandomBuildProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(12)
		pageSize := 256 << rng.Intn(3) // 256, 512, 1024
		n := 200 + rng.Intn(1200)
		cfg := Config{Dim: dim, PageSize: pageSize}
		if rng.Intn(2) == 0 {
			cfg.Policy = VAMPolicy{}
		}
		if rng.Intn(3) == 0 {
			cfg.ELSDisabled = true
		}
		file := pagefile.NewMemFile(pageSize)
		tree, err := New(file, cfg)
		if err != nil {
			// Geometrically impossible configs are allowed to fail.
			return true
		}
		pts := make([]geom.Point, n)
		for i := range pts {
			p := make(geom.Point, dim)
			for d := range p {
				p[d] = rng.Float32()
			}
			pts[i] = p
			if err := tree.Insert(p, RecordID(i)); err != nil {
				return false
			}
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for q := 0; q < 3; q++ {
			rect := randQueryRect(rng, dim, 0.5)
			got, err := tree.SearchBox(rect)
			if err != nil {
				return false
			}
			want := bruteBox(pts, rect)
			if len(entriesToSet(got)) != len(want) {
				t.Logf("seed %d: got %d want %d", seed, len(got), len(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
