package core

import (
	"encoding/binary"
	"fmt"

	"hybridtree/internal/els"
	"hybridtree/internal/pagefile"
)

// The ELS side table lives in memory (Section 3.4), but rebuilding it on
// Open means reading the whole tree. Close therefore snapshots the table
// into a chain of dedicated pages whose head is recorded in the metadata;
// Open restores from the snapshot when present and only falls back to a
// full rebuild when it is missing or stale.
//
// Snapshot page layout (little endian): magic 'E', bits uint8, count
// uint16, next uint32, then count records of (page id uint32, encoding of
// 2*dim*bits bits rounded to bytes).

const elsPageHeader = 8

// saveELS writes the current table into a page chain, reusing (then
// freeing any excess of) the previous chain. Returns the chain head.
func (t *Tree) saveELS(prev pagefile.PageID) (pagefile.PageID, error) {
	// Free the previous chain first; page reuse keeps the file compact.
	if err := t.freeELSChain(prev); err != nil {
		return pagefile.InvalidPage, err
	}
	if !t.els.Enabled() || t.els.Len() == 0 {
		return pagefile.InvalidPage, nil
	}
	encSize := (2*t.cfg.Dim*t.els.Bits() + 7) / 8
	recSize := 4 + encSize
	perPage := (t.cfg.PageSize - elsPageHeader) / recSize
	if perPage < 1 {
		return pagefile.InvalidPage, fmt.Errorf("core: page size %d cannot hold an ELS record", t.cfg.PageSize)
	}

	ids, encs := t.els.Snapshot()
	head := pagefile.InvalidPage
	var prevBuf []byte
	var prevPage pagefile.PageID
	buf := make([]byte, t.cfg.PageSize)
	flush := func(next pagefile.PageID) error {
		if prevBuf == nil {
			return nil
		}
		binary.LittleEndian.PutUint32(prevBuf[4:], uint32(next))
		return t.file.WritePage(prevPage, prevBuf)
	}
	for start := 0; start < len(ids); start += perPage {
		end := start + perPage
		if end > len(ids) {
			end = len(ids)
		}
		page, err := t.file.Allocate()
		if err != nil {
			return pagefile.InvalidPage, err
		}
		if head == pagefile.InvalidPage {
			head = page
		}
		if err := flush(page); err != nil {
			return pagefile.InvalidPage, err
		}
		for i := range buf {
			buf[i] = 0
		}
		buf[0] = 'E'
		buf[1] = byte(t.els.Bits())
		binary.LittleEndian.PutUint16(buf[2:], uint16(end-start))
		off := elsPageHeader
		for i := start; i < end; i++ {
			binary.LittleEndian.PutUint32(buf[off:], ids[i])
			copy(buf[off+4:], encs[i])
			off += recSize
		}
		prevBuf, prevPage = buf[:off+0], page
		// flush writes prevBuf after patching the next pointer; keep a
		// stable copy since buf is reused.
		stable := make([]byte, off)
		copy(stable, buf[:off])
		prevBuf = stable
	}
	if err := flush(pagefile.InvalidPage); err != nil {
		return pagefile.InvalidPage, err
	}
	return head, nil
}

// loadELS restores the table from a snapshot chain. Returns false when the
// snapshot is absent or unusable (caller falls back to RebuildELS).
func (t *Tree) loadELS(head pagefile.PageID) (bool, error) {
	if head == pagefile.InvalidPage || !t.els.Enabled() {
		return false, nil
	}
	encSize := (2*t.cfg.Dim*t.els.Bits() + 7) / 8
	recSize := 4 + encSize
	buf := make([]byte, t.cfg.PageSize)
	page := head
	hops := 0
	for page != pagefile.InvalidPage {
		if err := t.file.ReadPage(page, buf); err != nil {
			return false, err
		}
		if buf[0] != 'E' {
			return false, fmt.Errorf("core: page %d is not an ELS snapshot", page)
		}
		if int(buf[1]) != t.els.Bits() {
			return false, nil // snapshot at a different precision: rebuild
		}
		count := int(binary.LittleEndian.Uint16(buf[2:]))
		next := pagefile.PageID(binary.LittleEndian.Uint32(buf[4:]))
		if elsPageHeader+count*recSize > len(buf) {
			return false, fmt.Errorf("core: ELS snapshot page %d overflows", page)
		}
		off := elsPageHeader
		for i := 0; i < count; i++ {
			id := binary.LittleEndian.Uint32(buf[off:])
			enc := make(els.Encoded, encSize)
			copy(enc, buf[off+4:off+4+encSize])
			t.els.Restore(id, enc, t.cfg.Space)
			off += recSize
		}
		page = next
		hops++
		if hops > 1<<20 {
			return false, fmt.Errorf("core: ELS snapshot chain too long (corrupt link?)")
		}
	}
	return true, nil
}

// freeELSChain releases a snapshot chain.
func (t *Tree) freeELSChain(head pagefile.PageID) error {
	buf := make([]byte, t.cfg.PageSize)
	page := head
	for page != pagefile.InvalidPage {
		if err := t.file.ReadPage(page, buf); err != nil {
			return err
		}
		if buf[0] != 'E' {
			return fmt.Errorf("core: page %d is not an ELS snapshot", page)
		}
		next := pagefile.PageID(binary.LittleEndian.Uint32(buf[4:]))
		if err := t.file.Free(page); err != nil {
			return err
		}
		page = next
	}
	return nil
}
