package core

import (
	"fmt"
	"strings"

	"hybridtree/internal/geom"
)

// Explanation describes how a box query traversed the tree: per level, how
// many nodes were read and how candidate children were disposed of — pruned
// by the kd-defined bounding region, pruned by the encoded live space
// (the second step of the paper's two-step overlap check), or descended
// into. It makes the ELS and split-quality effects measured in Figures 5
// and 6 inspectable for a single query.
type Explanation struct {
	// Levels[0] is the root level; the last entry is the data level.
	Levels []LevelStats
	// Results is the number of matching entries.
	Results int
}

// LevelStats aggregates one tree level of an explained query.
type LevelStats struct {
	NodesRead  int // nodes of this level read
	KDPruned   int // subtrees cut by the kd bounding-region check
	ELSPruned  int // children cut by the live-space check after kd passed
	Descended  int // children visited at the next level
	EntriesHit int // data level only: entries matching the query
}

// String renders the explanation as a small table.
func (e *Explanation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "level  nodes  kd-pruned  els-pruned  descended  hits\n")
	for i, l := range e.Levels {
		fmt.Fprintf(&sb, "%5d %6d %10d %11d %10d %5d\n",
			i, l.NodesRead, l.KDPruned, l.ELSPruned, l.Descended, l.EntriesHit)
	}
	fmt.Fprintf(&sb, "results: %d\n", e.Results)
	return sb.String()
}

// ExplainBox runs a box query and returns both its results and the
// traversal explanation.
func (t *Tree) ExplainBox(q geom.Rect) ([]Entry, *Explanation, error) {
	if q.Dim() != t.cfg.Dim {
		return nil, nil, fmt.Errorf("core: query has dim %d, tree expects %d", q.Dim(), t.cfg.Dim)
	}
	c := t.getCtx()
	defer t.putCtx(c)
	qc := &c.qc
	qc.acquire(t.cfg.Dim)
	defer qc.release()

	ex := &Explanation{Levels: make([]LevelStats, t.height)}
	var out []Entry
	pending := append(qc.pending, visitRef{child: t.root, slot: qc.arena.put(t.cfg.Space)})
	for len(pending) > 0 {
		v := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		qc.arena.copyOut(v.slot, qc.walk)
		qc.arena.release(v.slot)
		n, err := t.store.get(v.child)
		if err != nil {
			qc.pending = pending[:0]
			ex.Results = len(out)
			return out, ex, err
		}
		for int(v.level) >= len(ex.Levels) {
			// Defensive: stale height after concurrent-looking misuse; grow.
			ex.Levels = append(ex.Levels, LevelStats{})
		}
		ls := &ex.Levels[v.level]
		ls.NodesRead++
		if n.leaf {
			for i, p := range n.pts {
				if q.Contains(p) {
					ls.EntriesHit++
					out = append(out, Entry{Point: p, RID: n.rids[i]})
				}
			}
			continue
		}
		if n.kdRoot == kdNone {
			continue
		}
		mark := len(pending)
		pending = t.kdWalkExplain(qc, n, q, ls, v.level+1, pending)
		reverseVisits(pending[mark:])
	}
	qc.pending = pending[:0]
	ex.Results = len(out)
	return out, ex, nil
}

// kdWalkExplain is kdWalkBox with per-disposition accounting: kd prunes,
// live-space prunes, and descents are charged to the current node's level.
func (t *Tree) kdWalkExplain(qc *queryCtx, n *node, q geom.Rect, ls *LevelStats, childLevel int32, pending []visitRef) []visitRef {
	br := qc.walk
	st := append(qc.frames, kdFrame{idx: n.kdRoot})
	for len(st) > 0 {
		f := &st[len(st)-1]
		k := &n.kd[f.idx]
		switch f.stage {
		case 0:
			if k.isLeaf() {
				st = st[:len(st)-1]
				live, ok := t.els.Get(uint32(k.Child), t.cfg.Space)
				if ok && !live.Intersects(q) {
					ls.ELSPruned++
					continue
				}
				ls.Descended++
				pending = append(pending, visitRef{child: k.Child, slot: qc.arena.put(br), level: childLevel})
				continue
			}
			d := int(k.Dim)
			f.saved = br.Hi[d]
			f.stage = 1
			if k.Lsp < br.Hi[d] {
				br.Hi[d] = k.Lsp
			}
			if q.Lo[d] <= br.Hi[d] && br.Hi[d] >= br.Lo[d] {
				st = append(st, kdFrame{idx: k.Left})
			} else {
				ls.KDPruned++
			}
		case 1:
			d := int(k.Dim)
			br.Hi[d] = f.saved
			f.saved = br.Lo[d]
			f.stage = 2
			if k.Rsp > br.Lo[d] {
				br.Lo[d] = k.Rsp
			}
			if q.Hi[d] >= br.Lo[d] && br.Hi[d] >= br.Lo[d] {
				st = append(st, kdFrame{idx: k.Right})
			} else {
				ls.KDPruned++
			}
		default:
			br.Lo[int(k.Dim)] = f.saved
			st = st[:len(st)-1]
		}
	}
	qc.frames = st[:0]
	return pending
}
