package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Ring is a Tracer that keeps the most recent finished traces in a
// fixed-size ring buffer, for the /debug/queries endpoint. Traces are
// recorded single-threaded by their owning query and only touch the ring
// (one mutex acquisition) when they finish.
type Ring struct {
	seq   atomic.Uint64
	mu    sync.Mutex
	buf   []*Trace
	next  int
	total uint64
}

// NewRing returns a ring tracer retaining the last capacity traces
// (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]*Trace, 0, capacity)}
}

// StartTrace implements Tracer: every operation is traced and delivered to
// the ring when finished.
func (r *Ring) StartTrace(op string) *Trace {
	return &Trace{Op: op, Seq: r.seq.Add(1), Start: time.Now(), sink: r.Collect}
}

// Collect implements Collector: it retains t, evicting the oldest retained
// trace once the ring is full. It is the sink StartTrace attaches, exported
// so a Tee can deliver one trace to several collectors.
func (r *Ring) Collect(t *Trace) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
	} else {
		r.buf[r.next] = t
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained traces, newest first.
func (r *Ring) Snapshot() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		// Walk backwards from the slot most recently written.
		idx := (r.next - 1 - i + 2*len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// Total returns how many traces have finished into the ring over its
// lifetime (including ones since overwritten).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return cap(r.buf) }
