package pagefile

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hybridtree/internal/obs"
)

// ErrCircuitOpen is returned without touching the underlying file while the
// circuit breaker is open: the file has failed enough consecutive reads that
// hammering it buys nothing, so callers shed fast until a probe succeeds. It
// wraps ErrTransient — the condition clears once the device recovers.
var ErrCircuitOpen = fmt.Errorf("pagefile: circuit open, shedding reads (%w)", ErrTransient)

// RetryPolicy configures a RetryFile.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per read, first included
	// (default 3).
	MaxAttempts int
	// Backoff is the sleep before the first retry (0 retries immediately);
	// each further retry doubles it, capped at MaxBackoff (default 100ms).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// RetryCorrupt spends attempts on checksum failures too: in-flight
	// corruption (a bus flip between platter and buffer) heals on reread,
	// at-rest corruption does not. Off by default — rereading a torn page
	// is usually wasted work; turn it on when the stack below injects
	// in-flight corruption (ChaosFile.ReadCorrupt under a ChecksumFile).
	RetryCorrupt bool
	// Jitter decorrelates the backoff ladder across a fleet. Plain
	// exponential backoff synchronizes: every client that failed together
	// retries together, hammering the recovering device in lockstep waves.
	// With Jitter on, each retry sleeps uniform(Backoff, 3×previous-sleep)
	// capped at MaxBackoff — the "decorrelated jitter" scheme — so retry
	// times spread out while still backing off on average. The random
	// source is injectable (SetRand) and the scheme is deterministic given
	// the source, so tests pin exact sleep schedules.
	Jitter bool
	// TripAfter is the number of consecutive exhausted reads that opens the
	// circuit breaker (0 disables the breaker entirely).
	TripAfter int
	// ProbeAfter is how long the breaker stays open before half-opening to
	// admit one probe read. 0 half-opens immediately, which turns the
	// breaker into pure consecutive-failure accounting that never sheds —
	// the right setting for a deterministic driver like the simulator,
	// where wall-clock shedding would make outcomes timing-dependent.
	ProbeAfter time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	return p
}

// retryMetrics is the retry layer's shared obs bundle. The state gauge
// reports the most recent breaker transition of any RetryFile in the
// process (0 closed, 1 open, 2 half-open) — fleet deployments run one
// data file per process, which is the case the gauge is for.
type retryMetrics struct {
	retries   *obs.Counter   // individual re-attempts issued
	recovered *obs.Counter   // reads that failed at least once, then succeeded
	exhausted *obs.Counter   // reads that failed after every attempt
	trips     *obs.Counter   // breaker closed->open transitions
	fastFails *obs.Counter   // reads shed by an open breaker
	backoff   *obs.Histogram // per-retry backoff sleeps, nanoseconds
	state     *obs.Gauge
}

var (
	retryMetricsOnce sync.Once
	retryMetricsVal  *retryMetrics
)

func retryObs() *retryMetrics {
	retryMetricsOnce.Do(func() {
		r := obs.Default()
		retryMetricsVal = &retryMetrics{
			retries:   r.Counter("pagefile_read_retries_total"),
			recovered: r.Counter("pagefile_read_retry_recovered_total"),
			exhausted: r.Counter("pagefile_read_retry_exhausted_total"),
			trips:     r.Counter("pagefile_breaker_trips_total"),
			fastFails: r.Counter("pagefile_breaker_fast_fails_total"),
			backoff:   r.Histogram("pagefile_read_backoff_ns"),
			state:     r.Gauge("pagefile_breaker_state"),
		}
	})
	return retryMetricsVal
}

// RetryFile wraps a File with a retry/backoff policy and a per-file circuit
// breaker on the read path. A read failing with a transient error is retried
// up to MaxAttempts times with exponential backoff; a read that exhausts its
// attempts counts toward the breaker, which — after TripAfter consecutive
// exhausted reads — fails subsequent reads instantly with ErrCircuitOpen
// until a half-open probe succeeds. Writes, Allocate and Free pass through
// untouched: mutations sit above an undo log that already makes their
// failures atomic, and blindly retrying a torn write would spend attempts
// without that safety net.
//
// Layer it above a ChecksumFile so a retried read re-verifies its CRC, and
// set RetryCorrupt when in-flight corruption is among the expected faults.
// The file is safe for concurrent use if the inner file is; the breaker is
// mutex-guarded and admits one probe at a time.
type RetryFile struct {
	File
	policy RetryPolicy
	// sleep and now are injectable so tests (and deterministic drivers)
	// never wait on a real clock.
	sleep func(time.Duration)
	now   func() time.Time
	// rand draws the jitter fraction in [0, 1); mutex-guarded because reads
	// run concurrently. Injectable (SetRand) so jitter schedules are
	// deterministic under test.
	randMu sync.Mutex
	rand   func() float64
	br     breaker
	m      *retryMetrics
}

// NewRetryFile wraps inner with the given policy.
func NewRetryFile(inner File, p RetryPolicy) *RetryFile {
	p = p.withDefaults()
	f := &RetryFile{File: inner, policy: p, sleep: time.Sleep, now: time.Now, rand: rand.Float64, m: retryObs()}
	f.br.tripAfter = p.TripAfter
	f.br.probeAfter = p.ProbeAfter
	return f
}

// SetClock overrides the wall clock and backoff sleep (tests; pass nil to
// keep the current function).
func (f *RetryFile) SetClock(now func() time.Time, sleep func(time.Duration)) {
	if now != nil {
		f.now = now
	}
	if sleep != nil {
		f.sleep = sleep
	}
}

// SetRand overrides the jitter source with fn (which must return values in
// [0, 1)); pass a seeded generator's Float64 for a deterministic schedule.
func (f *RetryFile) SetRand(fn func() float64) {
	if fn != nil {
		f.rand = fn
	}
}

func (f *RetryFile) jitterFrac() float64 {
	f.randMu.Lock()
	defer f.randMu.Unlock()
	return f.rand()
}

// BreakerState reports "closed", "open" or "half-open".
func (f *RetryFile) BreakerState() string { return f.br.stateName() }

// ReadPage implements File with retry, backoff and circuit breaking.
func (f *RetryFile) ReadPage(id PageID, buf []byte) error {
	return f.read(func() error { return f.File.ReadPage(id, buf) })
}

// ReadPageSeq implements File with retry, backoff and circuit breaking.
func (f *RetryFile) ReadPageSeq(id PageID, buf []byte) error {
	return f.read(func() error { return f.File.ReadPageSeq(id, buf) })
}

func (f *RetryFile) read(op func() error) error {
	if !f.br.allow(f.now()) {
		f.m.fastFails.Inc()
		return ErrCircuitOpen
	}
	backoff := f.policy.Backoff
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil {
			if attempt > 1 {
				f.m.recovered.Inc()
			}
			f.br.succeed(f.m)
			return nil
		}
		if attempt >= f.policy.MaxAttempts || !f.retryable(err) {
			break
		}
		f.m.retries.Inc()
		if backoff > 0 {
			f.m.backoff.Observe(int64(backoff))
			f.sleep(backoff)
			backoff = f.nextBackoff(backoff)
		}
	}
	f.m.exhausted.Inc()
	f.br.fail(f.now(), f.m)
	return err
}

// nextBackoff advances the ladder after a sleep of prev. Without jitter it
// is the classic doubling capped at MaxBackoff. With jitter it draws the
// next sleep from uniform(Backoff, 3×prev) — decorrelated jitter: the upper
// bound still grows geometrically from the realized sleeps, but two files
// that failed in the same instant immediately diverge, so fleet-wide
// retries cannot synchronize into waves.
func (f *RetryFile) nextBackoff(prev time.Duration) time.Duration {
	next := prev * 2
	if f.policy.Jitter {
		base := f.policy.Backoff
		span := 3*prev - base
		if span <= 0 {
			span = base
		}
		next = base + time.Duration(f.jitterFrac()*float64(span))
	}
	if next > f.policy.MaxBackoff {
		next = f.policy.MaxBackoff
	}
	return next
}

// retryable classifies one failed attempt: transient faults are worth
// another try, corruption only when the policy says in-flight damage is
// among the expected faults, and a nested layer's open breaker never is.
func (f *RetryFile) retryable(err error) bool {
	if errors.Is(err, ErrCircuitOpen) {
		return false
	}
	if IsCorrupt(err) {
		return f.policy.RetryCorrupt
	}
	return IsTransient(err)
}

// breaker states.
const (
	brClosed = iota
	brOpen
	brHalfOpen
)

// breaker is a consecutive-failure circuit breaker. Closed: reads flow,
// counting consecutive exhausted failures; TripAfter of them opens it.
// Open: reads shed instantly until ProbeAfter has elapsed, then it
// half-opens. Half-open: exactly one probe read is admitted at a time — a
// success closes the breaker, a failure re-opens it for another interval.
type breaker struct {
	mu         sync.Mutex
	state      int
	fails      int // consecutive exhausted reads while closed
	openedAt   time.Time
	probing    bool
	tripAfter  int
	probeAfter time.Duration
}

func (b *breaker) allow(now time.Time) bool {
	if b.tripAfter <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		return true
	case brOpen:
		if now.Sub(b.openedAt) < b.probeAfter {
			return false
		}
		b.state = brHalfOpen
		b.probing = true
		return true
	default:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

func (b *breaker) succeed(m *retryMetrics) {
	if b.tripAfter <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != brClosed && m != nil {
		m.state.Set(brClosed)
	}
	b.state, b.fails, b.probing = brClosed, 0, false
}

func (b *breaker) fail(now time.Time, m *retryMetrics) {
	if b.tripAfter <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.state == brHalfOpen {
		// Failed probe: back to open for another interval, no new trip.
		b.state = brOpen
		b.openedAt = now
		if m != nil {
			m.state.Set(brOpen)
		}
		return
	}
	b.fails++
	if b.state == brClosed && b.fails >= b.tripAfter {
		b.state = brOpen
		b.openedAt = now
		if m != nil {
			m.trips.Inc()
			m.state.Set(brOpen)
		}
	}
}

func (b *breaker) stateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brOpen:
		return "open"
	case brHalfOpen:
		return "half-open"
	}
	return "closed"
}
