// Package workload generates the query sets of the paper's evaluation:
// bounding-box queries and distance-based range queries "randomly
// distributed in the data space with appropriately chosen ranges to get
// constant selectivity" (Section 4) — 0.07% for FOURIER and 0.2% for
// COLHIST. Query extents are calibrated against the dataset by bisection so
// the average selectivity matches the target.
package workload

import (
	"fmt"
	"math/rand"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
)

// Selectivity targets used throughout the paper.
const (
	FourierSelectivity = 0.0007
	ColHistSelectivity = 0.002
)

// RangeQuery is a distance-based query: all points within Radius of Center
// under the experiment's metric.
type RangeQuery struct {
	Center geom.Point
	Radius float64
}

// BoxQueries returns count box queries centered at data-distributed points,
// with one global side length calibrated so the mean selectivity over the
// dataset is approximately target. The same side is used for every query,
// as in the paper (queries share the radius; only their positions vary).
func BoxQueries(data []geom.Point, count int, target float64, seed int64) ([]geom.Rect, float64, error) {
	if err := checkArgs(data, count, target); err != nil {
		return nil, 0, err
	}
	dim := len(data[0])
	rng := rand.New(rand.NewSource(seed))
	centers := sampleCenters(data, count, rng)
	sample := samplePoints(data, 4000, rng)

	measure := func(side float64) float64 {
		total := 0
		for _, c := range centers {
			q := boxAround(c, side, dim)
			for _, p := range sample {
				if q.Contains(p) {
					total++
				}
			}
		}
		return float64(total) / float64(len(centers)) / float64(len(sample))
	}
	side := bisect(measure, target, 1.0)
	queries := make([]geom.Rect, count)
	for i, c := range centers {
		queries[i] = boxAround(c, side, dim)
	}
	return queries, side, nil
}

// RangeQueries returns count distance-range queries under metric m with a
// globally calibrated radius hitting the target mean selectivity.
func RangeQueries(data []geom.Point, count int, target float64, m dist.Metric, seed int64) ([]RangeQuery, float64, error) {
	if err := checkArgs(data, count, target); err != nil {
		return nil, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	centers := sampleCenters(data, count, rng)
	sample := samplePoints(data, 4000, rng)

	measure := func(radius float64) float64 {
		total := 0
		for _, c := range centers {
			for _, p := range sample {
				if m.Distance(c, p) <= radius {
					total++
				}
			}
		}
		return float64(total) / float64(len(centers)) / float64(len(sample))
	}
	// An upper bound for the radius: the diameter of the unit cube under m
	// is at most m.Distance(origin, ones).
	dim := len(data[0])
	hi := m.Distance(make(geom.Point, dim), onesPoint(dim))
	radius := bisect(measure, target, hi)
	queries := make([]RangeQuery, count)
	for i, c := range centers {
		queries[i] = RangeQuery{Center: c.Clone(), Radius: radius}
	}
	return queries, radius, nil
}

func checkArgs(data []geom.Point, count int, target float64) error {
	if len(data) == 0 {
		return fmt.Errorf("workload: empty dataset")
	}
	if count < 1 {
		return fmt.Errorf("workload: count must be >= 1, got %d", count)
	}
	if target <= 0 || target >= 1 {
		return fmt.Errorf("workload: selectivity target %g outside (0,1)", target)
	}
	return nil
}

// sampleCenters picks query anchor points from the data distribution, the
// paper's "queries randomly distributed in the data space".
func sampleCenters(data []geom.Point, count int, rng *rand.Rand) []geom.Point {
	centers := make([]geom.Point, count)
	for i := range centers {
		centers[i] = data[rng.Intn(len(data))]
	}
	return centers
}

// samplePoints draws at most max points for selectivity estimation.
func samplePoints(data []geom.Point, max int, rng *rand.Rand) []geom.Point {
	if len(data) <= max {
		return data
	}
	sample := make([]geom.Point, max)
	for i := range sample {
		sample[i] = data[rng.Intn(len(data))]
	}
	return sample
}

// boxAround builds the query box of the given side centered at c, clipped
// to the unit cube.
func boxAround(c geom.Point, side float64, dim int) geom.Rect {
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	h := float32(side / 2)
	for d := 0; d < dim; d++ {
		lo[d] = c[d] - h
		hi[d] = c[d] + h
		if lo[d] < 0 {
			lo[d] = 0
		}
		if hi[d] > 1 {
			hi[d] = 1
		}
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// bisect finds x in (0, hi] with measure(x) ~ target; measure must be
// monotone non-decreasing. 40 iterations give plenty of precision for a
// selectivity knob.
func bisect(measure func(float64) float64, target, hi float64) float64 {
	lo := 0.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if measure(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func onesPoint(dim int) geom.Point {
	p := make(geom.Point, dim)
	for d := range p {
		p[d] = 1
	}
	return p
}
