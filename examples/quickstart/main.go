// Quickstart: build a hybrid tree in memory, run every query type, delete,
// and inspect the structure. Start here.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

func main() {
	const dim = 8

	// A hybrid tree lives on a page file; 4096-byte pages are the paper's
	// setting. For a persistent index use pagefile.CreateDiskFile instead.
	file := pagefile.NewMemFile(pagefile.DefaultPageSize)
	tree, err := core.New(file, core.Config{Dim: dim})
	if err != nil {
		log.Fatal(err)
	}

	// Index 20,000 random feature vectors. Vectors must lie inside the
	// configured data space (the unit cube by default).
	rng := rand.New(rand.NewSource(42))
	randomPoint := func() geom.Point {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		return p
	}
	var sample geom.Point
	for i := 0; i < 20000; i++ {
		p := randomPoint()
		if i == 777 {
			sample = p
		}
		if err := tree.Insert(p, core.RecordID(i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d vectors: height=%d, pages=%d\n",
		tree.Size(), tree.Height(), file.NumPages())

	// Bounding-box (feature-based) query.
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for d := range lo {
		lo[d], hi[d] = 0.1, 0.45
	}
	box, err := tree.SearchBox(geom.NewRect(lo, hi))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("box query matched %d vectors\n", len(box))

	// Exact point lookup.
	rids, err := tree.SearchPoint(sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("point lookup of record 777 found rids %v\n", rids)

	// Distance-based queries take the metric at query time — L2 now, L1 or
	// a user-defined weighted metric on the next call, same index.
	stats := file.Stats()
	stats.Reset()
	nn, err := tree.SearchKNN(sample, 5, dist.L2())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5-NN under L2 (cost: %d page reads):\n", stats.Reads())
	for i, nb := range nn {
		fmt.Printf("  %d. rid=%d dist=%.4f\n", i+1, nb.RID, nb.Dist)
	}

	within, err := tree.SearchRange(sample, 0.5, dist.L1())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("L1 range query (r=0.5) matched %d vectors\n", len(within))

	// Deletion uses eliminate-and-reinsert; the tree stays balanced.
	found, err := tree.Delete(sample, 777)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted record 777: %v; size now %d\n", found, tree.Size())

	// The structural audit verifies every invariant the search relies on.
	if err := tree.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	st, err := tree.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("invariants hold; avg fanout %.1f, avg data fill %.0f%%, ELS table %d bytes\n",
		st.AvgFanout, st.AvgDataFill*100, st.ELSBytes)
}
