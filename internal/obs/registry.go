// Package obs is the repo's instrumentation substrate: atomic counters,
// gauges and log-bucketed latency histograms in a named registry with
// Prometheus-text and JSON exposition, plus a per-query Tracer producing
// span trees of node visits and prune decisions (trace.go) and an opt-in
// HTTP introspection endpoint (serve.go).
//
// The package is stdlib-only and allocation-disciplined: every metric is a
// fixed-size struct mutated with atomic operations, so instruments resolved
// once (at tree or store construction) cost a handful of atomic adds per
// event and never allocate on the hot path. A nil *Trace is a valid no-op
// tracer target: every Trace method nil-checks its receiver, which is what
// keeps the traced query path at zero allocations when tracing is off.
//
// Metric names follow the Prometheus convention and may carry a label set
// inline: "index_node_reads_total{method=\"hybrid\"}". The registry treats
// the full string as the identity; the Prometheus writer splits it so that
// histogram "le" labels merge into the existing braces.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that may go up or down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of metrics. Lookups are get-or-create and
// safe for concurrent use; the returned instruments are shared by every
// caller asking for the same name, which is what unifies accounting across
// access methods (each method resolves the same counter names).
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, the one the index layers
// register into and the one cmd binaries serve.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it if needed.
// Registering the same name as two different metric kinds panics: it is a
// programming error that would silently split accounting.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	r.checkKindLocked(name, "counter")
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	r.checkKindLocked(name, "gauge")
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	r.checkKindLocked(name, "histogram")
	h = &Histogram{}
	r.histograms[name] = h
	return h
}

func (r *Registry) checkKindLocked(name, want string) {
	if _, ok := r.counters[name]; ok && want != "counter" {
		panic(fmt.Sprintf("obs: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && want != "gauge" {
		panic(fmt.Sprintf("obs: %q already registered as a gauge", name))
	}
	if _, ok := r.histograms[name]; ok && want != "histogram" {
		panic(fmt.Sprintf("obs: %q already registered as a histogram", name))
	}
}

// splitName separates an inline label set from a metric name:
// `reads{method="x"}` becomes (`reads`, `method="x"`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// joinLabels renders a label set with extra appended, inside braces; an
// empty result renders as no braces at all.
func joinLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	default:
		return "{" + labels + "," + extra + "}"
	}
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, sorted by name so output is diff-stable.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	counters := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]HistogramSnapshot, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h.Snapshot()
	}
	r.mu.RUnlock()

	typed := make(map[string]bool)
	writeType := func(base, kind string) {
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, name := range sortedKeys(counters) {
		base, labels := splitName(name)
		writeType(base, "counter")
		fmt.Fprintf(w, "%s%s %d\n", base, joinLabels(labels, ""), counters[name])
	}
	for _, name := range sortedKeys(gauges) {
		base, labels := splitName(name)
		writeType(base, "gauge")
		fmt.Fprintf(w, "%s%s %d\n", base, joinLabels(labels, ""), gauges[name])
	}
	histNames := make([]string, 0, len(hists))
	for name := range hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		s := hists[name]
		base, labels := splitName(name)
		writeType(base, "histogram")
		cum := uint64(0)
		for _, b := range s.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket%s %d\n", base, joinLabels(labels, fmt.Sprintf("le=%q", fmt.Sprint(b.Le))), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", base, joinLabels(labels, `le="+Inf"`), s.Count)
		fmt.Fprintf(w, "%s_sum%s %d\n", base, joinLabels(labels, ""), s.Sum)
		fmt.Fprintf(w, "%s_count%s %d\n", base, joinLabels(labels, ""), s.Count)
	}
}

// WriteJSON renders every registered metric as one JSON document with
// stable (sorted) key order.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.RLock()
	doc := struct {
		Counters   map[string]uint64            `json:"counters"`
		Gauges     map[string]int64             `json:"gauges"`
		Histograms map[string]HistogramSnapshot `json:"histograms"`
	}{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		doc.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		doc.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		doc.Histograms[name] = h.Snapshot()
	}
	r.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
