package hybridtree_bench

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridtree/internal/bench"
	"hybridtree/internal/dist"
)

// The parallel-read benchmarks compare the pre-refactor single-mutex path
// (bench.SerialTree: every search behind one exclusive lock) against the
// read-parallel concurrent.Tree on one shared fixture. Run with -cpu to
// sweep worker counts, e.g.:
//
//	go test -bench='ReadPath' -cpu=1,4,8 .
//
// Each benchmark reports queries/sec; the interesting number is the ratio
// between the two paths at the same -cpu value.

var (
	tpOnce    sync.Once
	tpFixture *bench.ThroughputFixture
	tpErr     error
)

func throughputFixture(b *testing.B) *bench.ThroughputFixture {
	tpOnce.Do(func() {
		// 40K uniform 16-d points on 4096-byte pages, 256 data-anchored
		// queries — big enough that a k-NN search does real traversal work,
		// small enough to build once in seconds.
		tpFixture, tpErr = bench.NewThroughputFixture(40000, 16, 256, 4096, 1)
	})
	if tpErr != nil {
		b.Fatal(tpErr)
	}
	return tpFixture
}

func reportQPS(b *testing.B) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "queries/sec")
	}
}

// BenchmarkReadPathSingleMutexKNN is the old read path: concurrent callers
// serialized behind one exclusive mutex. Throughput stays flat (or
// degrades) as -cpu grows.
func BenchmarkReadPathSingleMutexKNN(b *testing.B) {
	f := throughputFixture(b)
	var i atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := f.Queries[int(i.Add(1))%len(f.Queries)]
			if _, err := f.Serial.SearchKNN(q, 10, dist.L2()); err != nil {
				b.Error(err)
				return
			}
		}
	})
	reportQPS(b)
}

// BenchmarkReadPathParallelKNN is the new read path: searches share a
// reader lock, node caches are sharded, counters are atomic. Throughput
// scales with -cpu.
func BenchmarkReadPathParallelKNN(b *testing.B) {
	f := throughputFixture(b)
	var i atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := f.Queries[int(i.Add(1))%len(f.Queries)]
			if _, err := f.Parallel.SearchKNN(q, 10, dist.L2()); err != nil {
				b.Error(err)
				return
			}
		}
	})
	reportQPS(b)
}

// BenchmarkReadPathSingleMutexBox / BenchmarkReadPathParallelBox are the
// box-query versions of the same comparison.
func BenchmarkReadPathSingleMutexBox(b *testing.B) {
	f := throughputFixture(b)
	var i atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := f.Boxes[int(i.Add(1))%len(f.Boxes)]
			if _, err := f.Serial.SearchBox(q); err != nil {
				b.Error(err)
				return
			}
		}
	})
	reportQPS(b)
}

func BenchmarkReadPathParallelBox(b *testing.B) {
	f := throughputFixture(b)
	var i atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := f.Boxes[int(i.Add(1))%len(f.Boxes)]
			if _, err := f.Parallel.SearchBox(q); err != nil {
				b.Error(err)
				return
			}
		}
	})
	reportQPS(b)
}

var (
	ioOnce    sync.Once
	ioFixture *bench.ThroughputFixture
	ioErr     error
)

func simIOFixture(b *testing.B) *bench.ThroughputFixture {
	ioOnce.Do(func() {
		// Same shape as the in-memory fixture but smaller, with 50µs of
		// simulated latency per page read — the disk-access-bound regime the
		// paper's cost model describes.
		ioFixture, ioErr = bench.NewThroughputFixtureIO(10000, 16, 128, 4096, 2, 50*time.Microsecond)
	})
	if ioErr != nil {
		b.Fatal(ioErr)
	}
	return ioFixture
}

// BenchmarkSimIOColdKNNSingleMutex / BenchmarkSimIOColdKNNParallel rerun
// the single-mutex vs read-parallel comparison with per-read latency and a
// cache drop before every query, so each search pays the full cold-path
// read cost. Here parallelism pays even on one core: concurrent readers
// overlap their simulated I/O waits, while the single mutex serializes
// them.
func BenchmarkSimIOColdKNNSingleMutex(b *testing.B) {
	f := simIOFixture(b)
	var i atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := f.Queries[int(i.Add(1))%len(f.Queries)]
			f.Serial.DropCaches()
			if _, err := f.Serial.SearchKNN(q, 10, dist.L2()); err != nil {
				b.Error(err)
				return
			}
		}
	})
	reportQPS(b)
}

func BenchmarkSimIOColdKNNParallel(b *testing.B) {
	f := simIOFixture(b)
	var i atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := f.Queries[int(i.Add(1))%len(f.Queries)]
			f.Parallel.DropCaches()
			if _, err := f.Parallel.SearchKNN(q, 10, dist.L2()); err != nil {
				b.Error(err)
				return
			}
		}
	})
	reportQPS(b)
}

// BenchmarkSearchKNNBatch measures the batch executor end to end: one call
// fans the whole query slice across the bounded worker pool.
func BenchmarkSearchKNNBatch(b *testing.B) {
	f := throughputFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Parallel.SearchKNNBatch(f.Queries, 10, dist.L2()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*float64(len(f.Queries))/b.Elapsed().Seconds(), "queries/sec")
}
