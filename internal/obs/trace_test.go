package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestNilTraceIsNoOp pins the contract every hot path relies on: a nil
// *Trace absorbs every recording call without panicking or allocating.
func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	if got := tr.Visit(-1, 1, false, true); got != -1 {
		t.Fatalf("nil Visit returned %d, want -1", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		span := tr.Visit(-1, 1, false, true)
		tr.KDLeft(span)
		tr.KDRight(span)
		tr.KDPrune(span)
		tr.ELSHit(span)
		tr.ELSPrune(span)
		tr.DistPrune(span)
		tr.Descend(span)
		tr.Scan(span, 5)
		tr.Hit(span)
		tr.CountSplit()
		tr.CountReinsert()
		tr.MarkRolledBack()
		tr.SetResults(3)
		tr.SetError(errors.New("x"))
		tr.FinishSince(time.Time{})
	})
	if allocs != 0 {
		t.Fatalf("nil trace allocated %v per run", allocs)
	}
	if Nop().StartTrace("box") != nil {
		t.Fatal("Nop tracer returned a non-nil trace")
	}
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("box")
	root := tr.Visit(-1, 10, false, false)
	tr.KDLeft(root)
	tr.KDPrune(root)
	tr.Descend(root)
	tr.Descend(root)
	c1 := tr.Visit(root, 11, true, true)
	tr.Scan(c1, 8)
	tr.Hit(c1)
	c2 := tr.Visit(root, 12, true, true)
	tr.Scan(c2, 4)
	tr.SetResults(1)
	tr.FinishSince(tr.Start)

	if len(tr.Spans) != 3 {
		t.Fatalf("spans = %d", len(tr.Spans))
	}
	if tr.Spans[root].Level != 0 || tr.Spans[c1].Level != 1 || tr.Spans[c2].Level != 1 {
		t.Fatalf("levels wrong: %+v", tr.Spans)
	}
	if tr.Spans[c1].Parent != root || tr.Spans[c2].Parent != root {
		t.Fatalf("parents wrong: %+v", tr.Spans)
	}
	s := tr.String()
	for _, want := range []string{"node 10", "node 11", "node 12", "scanned=8 hits=1", "kd(L=1 R=0 pruned=1)"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
	// JSON renderer round-trips the span tree.
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != 3 || back.Spans[1].Node != 11 || back.Op != "box" || back.Results != 1 {
		t.Fatalf("JSON round trip = %+v", back)
	}
}

// TestRingWraparound fills a ring past its capacity and checks that the
// retained window is exactly the newest traces, newest first.
func TestRingWraparound(t *testing.T) {
	const capacity = 4
	r := NewRing(capacity)
	if r.Cap() != capacity {
		t.Fatalf("cap = %d", r.Cap())
	}
	const n = 11
	for i := 0; i < n; i++ {
		tr := r.StartTrace("box")
		tr.SetResults(i)
		tr.FinishSince(tr.Start)
	}
	if r.Total() != n {
		t.Fatalf("total = %d, want %d", r.Total(), n)
	}
	got := r.Snapshot()
	if len(got) != capacity {
		t.Fatalf("snapshot has %d traces, want %d", len(got), capacity)
	}
	for i, tr := range got {
		if want := n - 1 - i; tr.Results != want {
			t.Errorf("snapshot[%d].Results = %d, want %d", i, tr.Results, want)
		}
		if want := uint64(n - i); tr.Seq != want {
			t.Errorf("snapshot[%d].Seq = %d, want %d", i, tr.Seq, want)
		}
	}
	// A partially filled ring also snapshots newest-first.
	r2 := NewRing(8)
	for i := 0; i < 3; i++ {
		tr := r2.StartTrace("knn")
		tr.SetResults(i)
		tr.FinishSince(tr.Start)
	}
	got2 := r2.Snapshot()
	if len(got2) != 3 || got2[0].Results != 2 || got2[2].Results != 0 {
		t.Fatalf("partial snapshot wrong: %+v", got2)
	}
}
