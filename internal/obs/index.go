package obs

// IndexCounters resolves the unified node-access counters every access
// method reports through, labeled by method name:
//
//	index_node_reads_total{method=...}    logical node reads (hits + misses)
//	index_cache_hits_total{method=...}    reads served by a decoded-node cache
//	index_cache_misses_total{method=...}  reads that decoded a page
//
// Sharing one resolver keeps cross-method comparisons on a single code
// path: a method cannot drift into counting root accesses differently
// without diverging from the pagefile.Stats parity tests.
func IndexCounters(r *Registry, method string) (reads, hits, misses *Counter) {
	reads = r.Counter(`index_node_reads_total{method="` + method + `"}`)
	hits = r.Counter(`index_cache_hits_total{method="` + method + `"}`)
	misses = r.Counter(`index_cache_misses_total{method="` + method + `"}`)
	return reads, hits, misses
}

// PruneCounter resolves the unified child-prune counter for a method: one
// increment per child region rejected during a search without reading its
// node (bounding-region, live-space or MINDIST verdicts alike).
func PruneCounter(r *Registry, method string) *Counter {
	return r.Counter(`index_prunes_total{method="` + method + `"}`)
}
