package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hybridtree/internal/obs"
)

// Budget bounds one query's resource consumption. Zero fields are unlimited.
// A budget differs from a context deadline in how exhaustion resolves: a
// cancelled or timed-out context abandons the query (its results are
// discarded), while an exhausted budget degrades it — the query returns the
// valid partial answer it had built plus a typed *ErrBudgetExceeded, so a
// k-NN under a page budget yields best-found-so-far instead of nothing.
// This is the enforcement half of the paper's I/O cost model: the model
// predicts pages per query, the budget makes the prediction a hard bound.
type Budget struct {
	// MaxPageReads caps logical node reads (cache hits included, matching
	// the node-visit accounting of Stats and the trace layer).
	MaxPageReads int
	// MaxWallTime caps elapsed time from the first node visit.
	MaxWallTime time.Duration
	// MaxHeapPushes caps k-NN frontier insertions, bounding memory and the
	// O(log n) heap work per visited kd-leaf.
	MaxHeapPushes int
}

// Unlimited reports whether the budget constrains nothing.
func (b Budget) Unlimited() bool {
	return b.MaxPageReads <= 0 && b.MaxWallTime <= 0 && b.MaxHeapPushes <= 0
}

// ErrBudgetExceeded reports that a query exhausted one Budget resource.
// The query's return value still holds a valid partial result; Partial is
// its length. Retrieve it with errors.As.
type ErrBudgetExceeded struct {
	Op       string // "box", "range", "knn"
	Resource string // "page_reads", "wall_time", "heap_pushes"
	Limit    int64
	Used     int64
	Partial  int // entries in the degraded result
}

func (e *ErrBudgetExceeded) Error() string {
	return fmt.Sprintf("core: %s query exceeded %s budget (%d > %d), %d partial results",
		e.Op, e.Resource, e.Used, e.Limit, e.Partial)
}

// arm installs one query's lifecycle bounds on the context. ctx may be nil
// (treated as context.Background()). Capturing ctx.Done() once here keeps
// the per-visit check to a channel poll instead of an interface call.
func (qc *queryCtx) arm(ctx context.Context, b Budget) {
	if ctx != nil {
		qc.ctx = ctx
		qc.done = ctx.Done()
	}
	if b.MaxWallTime > 0 {
		qc.budgetDeadline = time.Now().Add(b.MaxWallTime)
	}
	qc.maxPages = b.MaxPageReads
	qc.maxPushes = b.MaxHeapPushes
}

// disarm clears the lifecycle bounds; acquire calls it so a pooled context
// never carries a previous query's cancellation into the next one.
func (qc *queryCtx) disarm() {
	qc.ctx = nil
	qc.done = nil
	qc.budgetDeadline = time.Time{}
	qc.maxPages = 0
	qc.maxPushes = 0
	qc.visited = 0
}

// checkVisit is the per-node-visit lifecycle gate, called once per traversal
// step before the node is read. For an unarmed query (Background context,
// zero budget) it is a handful of always-false branches — no allocation, no
// syscall — which is what keeps TestSearchZeroAlloc and the tracer overhead
// gate intact. time.Now is consulted only when a wall-time budget is set.
func (qc *queryCtx) checkVisit(op int) error {
	qc.visited++
	if qc.done != nil {
		select {
		case <-qc.done:
			return qc.ctx.Err()
		default:
		}
	}
	if qc.maxPages > 0 && qc.visited > qc.maxPages {
		return &ErrBudgetExceeded{Op: opNames[op], Resource: "page_reads",
			Limit: int64(qc.maxPages), Used: int64(qc.visited)}
	}
	if qc.maxPushes > 0 && qc.tally.heapPushes > qc.maxPushes {
		return &ErrBudgetExceeded{Op: opNames[op], Resource: "heap_pushes",
			Limit: int64(qc.maxPushes), Used: int64(qc.tally.heapPushes)}
	}
	if !qc.budgetDeadline.IsZero() && time.Now().After(qc.budgetDeadline) {
		return &ErrBudgetExceeded{Op: opNames[op], Resource: "wall_time",
			Limit: qc.budgetDeadline.UnixNano(), Used: time.Now().UnixNano()}
	}
	return nil
}

// ClassifyOutcome maps a query error onto the request-outcome taxonomy:
// nil is ok, context errors are cancelled/timeout, a budget error is a
// degraded (partial but valid) answer, everything else is an error.
// Layers above the tree (the concurrent executor, the simulator) reuse it
// so every layer buckets identically.
func ClassifyOutcome(err error) obs.OutcomeKind { return classifyOutcome(err) }

func classifyOutcome(err error) obs.OutcomeKind {
	if err == nil {
		return obs.OutcomeOK
	}
	if errors.Is(err, context.Canceled) {
		return obs.OutcomeCancelled
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return obs.OutcomeTimeout
	}
	var be *ErrBudgetExceeded
	if errors.As(err, &be) {
		return obs.OutcomeDegraded
	}
	return obs.OutcomeError
}

// isCtxErr reports whether err means the caller abandoned the query (as
// opposed to the query degrading or failing), in which case partial results
// are discarded.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
