// Package sim is a deterministic workload simulator for the access methods
// in this repository. A seeded generator materializes a trace of
// interleaved inserts, deletes and queries; the simulator drives each
// access method through the trace, differentially checks every result
// against a sequential-scan oracle, and — for the hybrid tree — injects
// probabilistic storage faults while asserting that every failed mutation
// left the tree invariant-clean and bit-identical in content. Everything
// is reproducible from (trace seed, fault seed): same seeds, same trace,
// same fault schedule, same final state, same digest.
package sim

import (
	"math"
	"math/rand"

	"hybridtree/internal/geom"
)

// OpKind enumerates trace operations.
type OpKind uint8

const (
	OpInsert OpKind = iota
	OpDelete
	OpBox
	OpRange
	OpKNN
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpBox:
		return "box"
	case OpRange:
		return "range"
	case OpKNN:
		return "knn"
	}
	return "?"
}

// Op is one simulated operation. Point is the inserted/deleted vector or
// the query center; Rect, Radius and K apply to their query kinds.
type Op struct {
	Kind   OpKind
	Point  geom.Point
	RID    uint64
	Rect   geom.Rect
	Radius float64
	K      int
}

// TraceConfig parameterizes trace generation.
type TraceConfig struct {
	Seed int64
	Ops  int
	Dim  int
	// Operation mix weights (normalized internally). Zero values take the
	// defaults 0.4 / 0.2 / 0.2 / 0.1 / 0.1.
	InsertW, DeleteW, BoxW, RangeW, KNNW float64
	// BoxSide is the nominal box-query side length (default 0.2); actual
	// sides jitter in [0.5, 1.5]× around it.
	BoxSide float64
	// MaxRadius bounds range-query radii (default 0.5).
	MaxRadius float64
	// MaxK bounds k-NN queries (default 10).
	MaxK int
	// Clusters is the number of Gaussian clusters in the data mixture
	// (default 8); 30% of inserts are uniform background noise.
	Clusters int
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.Ops == 0 {
		c.Ops = 10000
	}
	if c.Dim == 0 {
		c.Dim = 4
	}
	if c.InsertW == 0 && c.DeleteW == 0 && c.BoxW == 0 && c.RangeW == 0 && c.KNNW == 0 {
		c.InsertW, c.DeleteW, c.BoxW, c.RangeW, c.KNNW = 0.4, 0.2, 0.2, 0.1, 0.1
	}
	if c.BoxSide == 0 {
		c.BoxSide = 0.2
	}
	if c.MaxRadius == 0 {
		c.MaxRadius = 0.5
	}
	if c.MaxK == 0 {
		c.MaxK = 10
	}
	if c.Clusters == 0 {
		c.Clusters = 8
	}
	return c
}

// GenTrace materializes the full operation list for a configuration. The
// generator tracks the entries a fault-free run would hold live, so
// deletes mostly target existing records (with deliberate misses mixed in)
// and queries mostly center on populated space. Generation is a pure
// function of the config.
func GenTrace(cfg TraceConfig) []Op {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	centers := make([]geom.Point, cfg.Clusters)
	for i := range centers {
		c := make(geom.Point, cfg.Dim)
		for d := range c {
			c[d] = rng.Float32()
		}
		centers[i] = c
	}
	clamp := func(v float64) float32 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return float32(v)
	}
	randPoint := func() geom.Point {
		p := make(geom.Point, cfg.Dim)
		if rng.Float64() < 0.3 {
			for d := range p {
				p[d] = rng.Float32()
			}
			return p
		}
		c := centers[rng.Intn(len(centers))]
		for d := range p {
			p[d] = clamp(float64(c[d]) + rng.NormFloat64()*0.05)
		}
		return p
	}

	type rec struct {
		p   geom.Point
		rid uint64
	}
	var live []rec
	nextRID := uint64(0)
	total := cfg.InsertW + cfg.DeleteW + cfg.BoxW + cfg.RangeW + cfg.KNNW
	center := func() geom.Point {
		if len(live) > 0 && rng.Float64() < 0.7 {
			return live[rng.Intn(len(live))].p.Clone()
		}
		return randPoint()
	}

	ops := make([]Op, 0, cfg.Ops)
	for len(ops) < cfg.Ops {
		r := rng.Float64() * total
		switch {
		case r < cfg.InsertW || len(live) < 50:
			p := randPoint()
			ops = append(ops, Op{Kind: OpInsert, Point: p, RID: nextRID})
			live = append(live, rec{p, nextRID})
			nextRID++
		case r < cfg.InsertW+cfg.DeleteW:
			if rng.Float64() < 0.8 && len(live) > 0 {
				i := rng.Intn(len(live))
				ops = append(ops, Op{Kind: OpDelete, Point: live[i].p, RID: live[i].rid})
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				// A deliberate miss: a never-inserted (point, rid) pair.
				ops = append(ops, Op{Kind: OpDelete, Point: randPoint(), RID: math.MaxUint64 - nextRID})
			}
		case r < cfg.InsertW+cfg.DeleteW+cfg.BoxW:
			c := center()
			lo := make(geom.Point, cfg.Dim)
			hi := make(geom.Point, cfg.Dim)
			for d := 0; d < cfg.Dim; d++ {
				side := cfg.BoxSide * (0.5 + rng.Float64())
				lo[d] = float32(float64(c[d]) - side/2)
				hi[d] = float32(float64(c[d]) + side/2)
			}
			ops = append(ops, Op{Kind: OpBox, Rect: geom.Rect{Lo: lo, Hi: hi}})
		case r < cfg.InsertW+cfg.DeleteW+cfg.BoxW+cfg.RangeW:
			ops = append(ops, Op{Kind: OpRange, Point: center(), Radius: rng.Float64() * cfg.MaxRadius})
		default:
			ops = append(ops, Op{Kind: OpKNN, Point: center(), K: 1 + rng.Intn(cfg.MaxK)})
		}
	}
	return ops
}
