package nodestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"hybridtree/internal/pagefile"
)

// intCodec stores a single int per page, for exercising the store.
type intCodec struct{}

func (intCodec) Encode(n int, buf []byte) (int, error) {
	if n < 0 {
		return 0, errors.New("negative")
	}
	binary.LittleEndian.PutUint64(buf, uint64(n))
	return 8, nil
}

func (intCodec) Decode(id pagefile.PageID, buf []byte) (int, error) {
	v := int(binary.LittleEndian.Uint64(buf))
	if v == 424242 {
		return 0, fmt.Errorf("poisoned page %d", id)
	}
	return v, nil
}

func TestStoreRoundTrip(t *testing.T) {
	file := pagefile.NewMemFile(64)
	s := New[int](file, intCodec{})
	id, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(id, 77); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Fatalf("got %d", got)
	}
	// Decode path after cache drop.
	s.DropCache()
	got, err = s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Fatalf("decoded %d", got)
	}
}

func TestStoreCountsLogicalReads(t *testing.T) {
	file := pagefile.NewMemFile(64)
	s := New[int](file, intCodec{})
	id, _ := s.Alloc()
	_ = s.Put(id, 5)
	file.Stats().Reset()
	for i := 0; i < 7; i++ {
		if _, err := s.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	// Cache hits still count as logical accesses: the cold-query metric.
	if got := file.Stats().Reads(); got != 7 {
		t.Fatalf("reads = %d, want 7", got)
	}
}

func TestStoreErrors(t *testing.T) {
	file := pagefile.NewMemFile(64)
	s := New[int](file, intCodec{})
	id, _ := s.Alloc()
	if err := s.Put(id, -1); err == nil {
		t.Fatal("encode error swallowed")
	}
	// Poisoned page: decode error must surface.
	buf := make([]byte, 64)
	binary.LittleEndian.PutUint64(buf, 424242)
	_ = file.WritePage(id, buf)
	if _, err := s.Get(id); err == nil {
		t.Fatal("decode error swallowed")
	}
	// Free drops the cache entry.
	id2, _ := s.Alloc()
	_ = s.Put(id2, 9)
	if err := s.Free(id2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(id2); !errors.Is(err, pagefile.ErrPageFreed) {
		t.Fatalf("err = %v", err)
	}
}
