// Package seqscan implements the linear-scan baseline of the paper's
// evaluation. Beyond 10-15 dimensions most index structures lose to simply
// reading the whole file sequentially [Beyer et al.]; the paper therefore
// normalizes every method's I/O cost against a scan, charging sequential
// pages one tenth of a random page, so linear scan's normalized I/O cost is
// 0.1 by construction and any index above that line is losing.
package seqscan

import (
	"encoding/binary"
	"fmt"
	"math"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/index"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/pqueue"
)

// Scan is a flat file of (vector, record id) entries read sequentially.
type Scan struct {
	file     pagefile.File
	dim      int
	pages    []pagefile.PageID
	perPage  int
	lastFill int // entries on the final page
	count    int
	buf      []byte // scratch page buffer
	reads    *obs.Counter
}

// page layout: count uint16, then entries of (rid uint64, dim float32s).
const headerSize = 2

// New creates an empty scan file for dim-dimensional vectors.
func New(file pagefile.File, dim int) (*Scan, error) {
	if dim < 1 {
		return nil, fmt.Errorf("seqscan: dim must be >= 1, got %d", dim)
	}
	perPage := (file.PageSize() - headerSize) / (8 + 4*dim)
	if perPage < 1 {
		return nil, fmt.Errorf("seqscan: page size %d cannot hold a %d-d entry", file.PageSize(), dim)
	}
	reads, _, _ := obs.IndexCounters(obs.Default(), "scan")
	return &Scan{file: file, dim: dim, perPage: perPage, buf: make([]byte, file.PageSize()), reads: reads}, nil
}

// Name implements index.Index.
func (s *Scan) Name() string { return "scan" }

// File implements index.Index.
func (s *Scan) File() pagefile.File { return s.file }

// NumPages returns the number of data pages — the denominator of the
// paper's normalized I/O cost for every access method over this dataset.
func (s *Scan) NumPages() int { return len(s.pages) }

// Len returns the number of stored entries.
func (s *Scan) Len() int { return s.count }

// Insert implements index.Index: entries append to the last page.
func (s *Scan) Insert(p geom.Point, rid uint64) error {
	if len(p) != s.dim {
		return fmt.Errorf("seqscan: vector has dim %d, want %d", len(p), s.dim)
	}
	if len(s.pages) == 0 || s.lastFill == s.perPage {
		id, err := s.file.Allocate()
		if err != nil {
			return err
		}
		s.pages = append(s.pages, id)
		s.lastFill = 0
	}
	id := s.pages[len(s.pages)-1]
	buf := s.buf
	if err := s.file.ReadPageSeq(id, buf); err != nil {
		return err
	}
	off := headerSize + s.lastFill*(8+4*s.dim)
	binary.LittleEndian.PutUint64(buf[off:], rid)
	off += 8
	for _, v := range p {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
		off += 4
	}
	s.lastFill++
	s.count++
	binary.LittleEndian.PutUint16(buf, uint16(s.lastFill))
	return s.file.WritePage(id, buf[:off])
}

// Delete implements index.Index: the matching entry is overwritten with the
// final entry of the final page, which then shrinks by one (the classic
// heap-file delete). An emptied final page is released.
func (s *Scan) Delete(p geom.Point, rid uint64) (bool, error) {
	if len(p) != s.dim {
		return false, fmt.Errorf("seqscan: vector has dim %d, want %d", len(p), s.dim)
	}
	entrySize := 8 + 4*s.dim
	buf := s.buf
	for _, id := range s.pages {
		if err := s.file.ReadPageSeq(id, buf); err != nil {
			return false, err
		}
		n := int(binary.LittleEndian.Uint16(buf))
		for i := 0; i < n; i++ {
			off := headerSize + i*entrySize
			if binary.LittleEndian.Uint64(buf[off:]) != rid {
				continue
			}
			match := true
			for d := 0; d < s.dim; d++ {
				v := math.Float32frombits(binary.LittleEndian.Uint32(buf[off+8+4*d:]))
				if v != p[d] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			// Pull the last entry of the last page into the hole.
			lastPage := s.pages[len(s.pages)-1]
			if lastPage == id {
				lastOff := headerSize + (n-1)*entrySize
				copy(buf[off:off+entrySize], buf[lastOff:lastOff+entrySize])
				binary.LittleEndian.PutUint16(buf, uint16(n-1))
				if err := s.file.WritePage(id, buf[:headerSize+(n-1)*entrySize]); err != nil {
					return false, err
				}
			} else {
				last := make([]byte, s.file.PageSize())
				if err := s.file.ReadPageSeq(lastPage, last); err != nil {
					return false, err
				}
				lastOff := headerSize + (s.lastFill-1)*entrySize
				copy(buf[off:off+entrySize], last[lastOff:lastOff+entrySize])
				binary.LittleEndian.PutUint16(last, uint16(s.lastFill-1))
				if err := s.file.WritePage(id, buf[:headerSize+n*entrySize]); err != nil {
					return false, err
				}
				if err := s.file.WritePage(lastPage, last[:headerSize+(s.lastFill-1)*entrySize]); err != nil {
					return false, err
				}
			}
			s.lastFill--
			s.count--
			if s.lastFill == 0 {
				freed := s.pages[len(s.pages)-1]
				s.pages = s.pages[:len(s.pages)-1]
				if len(s.pages) > 0 {
					s.lastFill = s.perPage
				}
				if err := s.file.Free(freed); err != nil {
					return false, err
				}
			}
			return true, nil
		}
	}
	return false, nil
}

// scan streams every entry through fn, counting sequential reads. The point
// passed to fn is a scratch buffer valid only for the duration of the call;
// callbacks that keep it must Clone it.
func (s *Scan) scan(fn func(p geom.Point, rid uint64)) error {
	buf := make([]byte, s.file.PageSize())
	p := make(geom.Point, s.dim)
	s.reads.Add(uint64(len(s.pages)))
	for _, id := range s.pages {
		if err := s.file.ReadPageSeq(id, buf); err != nil {
			return err
		}
		n := int(binary.LittleEndian.Uint16(buf))
		off := headerSize
		for i := 0; i < n; i++ {
			rid := binary.LittleEndian.Uint64(buf[off:])
			off += 8
			for d := 0; d < s.dim; d++ {
				p[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
				off += 4
			}
			fn(p, rid)
		}
	}
	return nil
}

// SearchBox implements index.Index.
func (s *Scan) SearchBox(q geom.Rect) ([]index.Entry, error) {
	if q.Dim() != s.dim {
		return nil, fmt.Errorf("seqscan: query has dim %d, want %d", q.Dim(), s.dim)
	}
	var out []index.Entry
	err := s.scan(func(p geom.Point, rid uint64) {
		if q.Contains(p) {
			out = append(out, index.Entry{Point: p.Clone(), RID: rid})
		}
	})
	return out, err
}

// SearchRange implements index.Index. Under a squared-capable metric (L2)
// the scan compares squared distances against radius² with partial-distance
// early abandonment, paying one sqrt per reported hit instead of one full
// distance per stored point.
func (s *Scan) SearchRange(q geom.Point, radius float64, m dist.Metric) ([]index.Neighbor, error) {
	if len(q) != s.dim {
		return nil, fmt.Errorf("seqscan: query has dim %d, want %d", len(q), s.dim)
	}
	var out []index.Neighbor
	if sqm, ok := dist.AsSquared(m); ok {
		bound := radius * radius
		err := s.scan(func(p geom.Point, rid uint64) {
			if d2 := sqm.DistanceSqBounded(q, p, bound); d2 <= bound {
				out = append(out, index.Neighbor{Entry: index.Entry{Point: p.Clone(), RID: rid}, Dist: math.Sqrt(d2)})
			}
		})
		return out, err
	}
	err := s.scan(func(p geom.Point, rid uint64) {
		if d := m.Distance(q, p); d <= radius {
			out = append(out, index.Neighbor{Entry: index.Entry{Point: p.Clone(), RID: rid}, Dist: d})
		}
	})
	return out, err
}

// SearchKNN implements index.Index. Points are cloned only once they beat
// the current k-th bound (the seed cloned every stored point), and under a
// squared-capable metric the whole scan runs on squared distances with
// early abandonment against that bound.
func (s *Scan) SearchKNN(q geom.Point, k int, m dist.Metric) ([]index.Neighbor, error) {
	if len(q) != s.dim {
		return nil, fmt.Errorf("seqscan: query has dim %d, want %d", len(q), s.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("seqscan: k must be >= 1, got %d", k)
	}
	best := pqueue.NewKBest[index.Neighbor](k)
	sqm, useSq := dist.AsSquared(m)
	err := s.scan(func(p geom.Point, rid uint64) {
		bound := math.Inf(1)
		if best.Full() {
			bound = best.Bound()
		}
		var d float64
		if useSq {
			d = sqm.DistanceSqBounded(q, p, bound)
		} else {
			d = m.Distance(q, p)
		}
		if d > bound {
			return // abandoned or beaten; Offer would reject it
		}
		best.Offer(index.Neighbor{Entry: index.Entry{Point: p.Clone(), RID: rid}, Dist: d}, d)
	})
	if err != nil {
		return nil, err
	}
	ns, _ := best.Sorted()
	if useSq {
		for i := range ns {
			ns[i].Dist = math.Sqrt(ns[i].Dist)
		}
	}
	return ns, nil
}
