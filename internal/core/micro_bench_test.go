package core

import (
	"math/rand"
	"testing"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
)

// Micro-benchmarks for the hybrid tree's individual operations. The
// repository-level bench_test.go reproduces the paper's figures; these
// isolate per-operation costs for profiling and regression tracking.

func benchPoints(n, dim int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
	}
	return pts
}

func benchTree(b *testing.B, n, dim int) (*Tree, []geom.Point) {
	b.Helper()
	pts := benchPoints(n, dim, 1)
	file := pagefile.NewMemFile(pagefile.DefaultPageSize)
	tree, err := New(file, Config{Dim: dim})
	if err != nil {
		b.Fatal(err)
	}
	for i, p := range pts {
		if err := tree.Insert(p, RecordID(i)); err != nil {
			b.Fatal(err)
		}
	}
	return tree, pts
}

func BenchmarkInsert16d(b *testing.B) {
	pts := benchPoints(b.N+1000, 16, 2)
	file := pagefile.NewMemFile(pagefile.DefaultPageSize)
	tree, err := New(file, Config{Dim: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(pts[i], RecordID(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsert64d(b *testing.B) {
	pts := benchPoints(b.N+1000, 64, 3)
	file := pagefile.NewMemFile(pagefile.DefaultPageSize)
	tree, err := New(file, Config{Dim: 64})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(pts[i], RecordID(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkLoad16d(b *testing.B) {
	pts := benchPoints(20000, 16, 4)
	rids := make([]RecordID, len(pts))
	for i := range rids {
		rids[i] = RecordID(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		file := pagefile.NewMemFile(pagefile.DefaultPageSize)
		if _, err := BulkLoad(file, Config{Dim: 16}, pts, rids); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchBox16d(b *testing.B) {
	tree, _ := benchTree(b, 20000, 16)
	rng := rand.New(rand.NewSource(5))
	queries := make([]geom.Rect, 64)
	for i := range queries {
		queries[i] = randQueryRect(rng, 16, 0.4)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.SearchBox(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchKNN16d(b *testing.B) {
	tree, pts := benchTree(b, 20000, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.SearchKNN(pts[i%len(pts)], 10, dist.L2()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchKNNApprox16d(b *testing.B) {
	tree, pts := benchTree(b, 20000, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.SearchKNNApprox(pts[i%len(pts)], 10, dist.L2(), 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchRangeL1_64d(b *testing.B) {
	tree, pts := benchTree(b, 10000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.SearchRange(pts[i%len(pts)], 0.8, dist.L1()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelete16d(b *testing.B) {
	pts := benchPoints(b.N+20000, 16, 6)
	file := pagefile.NewMemFile(pagefile.DefaultPageSize)
	tree, err := New(file, Config{Dim: 16})
	if err != nil {
		b.Fatal(err)
	}
	for i, p := range pts {
		if err := tree.Insert(p, RecordID(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found, err := tree.Delete(pts[i], RecordID(i))
		if err != nil {
			b.Fatal(err)
		}
		if !found {
			b.Fatalf("entry %d missing", i)
		}
	}
}

func BenchmarkNodeEncode64d(b *testing.B) {
	pts := benchPoints(15, 64, 7)
	n := &node{id: 1, leaf: true, dim: 64, kdRoot: kdNone}
	for i, p := range pts {
		n.appendPoint(p, RecordID(i))
	}
	buf := make([]byte, pagefile.DefaultPageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.encode(buf, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNodeDecode64d(b *testing.B) {
	pts := benchPoints(15, 64, 8)
	n := &node{id: 1, leaf: true, dim: 64, kdRoot: kdNone}
	for i, p := range pts {
		n.appendPoint(p, RecordID(i))
	}
	buf := make([]byte, pagefile.DefaultPageSize)
	size, err := n.encode(buf, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeNode(1, buf[:size], 64); err != nil {
			b.Fatal(err)
		}
	}
}

// Ctx-variant benchmarks: steady-state costs with a caller-held query
// context and recycled result buffer. With all nodes cached these should
// report ~0 allocs/op — the headline number of the zero-allocation hot
// path (compare BenchmarkSearchKNN16d, which pays a pooled-context
// check-out plus a fresh result slice per call).

func BenchmarkSearchBoxCtx16d(b *testing.B) {
	tree, _ := benchTree(b, 20000, 16)
	rng := rand.New(rand.NewSource(5))
	queries := make([]geom.Rect, 64)
	for i := range queries {
		queries[i] = randQueryRect(rng, 16, 0.4)
	}
	c := NewQueryContext()
	var dst []Entry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = tree.SearchBoxCtx(c, queries[i%len(queries)], dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchKNNCtx16d(b *testing.B) {
	tree, pts := benchTree(b, 20000, 16)
	c := NewQueryContext()
	var dst []Neighbor
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = tree.SearchKNNCtx(c, pts[i%len(pts)], 10, dist.L2(), dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Tracer-overhead pair: the same warm-context k-NN workload with no tracer
// vs with a configured-but-nop tracer. The internal/perf tracer-overhead
// ratio gate compares exactly these two in the same run (CI's replacement
// for the bespoke OBS_OVERHEAD_GATE test), and the alloc gate pins both at
// 0 allocs/op — tracing off must stay free.

func BenchmarkSearchKNNTracerOff(b *testing.B) {
	tree, pts := benchTree(b, 20000, 16)
	tree.SetTracer(nil)
	c := NewQueryContext()
	var dst []Neighbor
	// Warm pass: grow the context arena and result buffer to steady state so
	// allocs/op measures the hot path, not one-time growth.
	var err error
	if dst, err = tree.SearchKNNCtx(c, pts[0], 10, dist.L2(), dst[:0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err = tree.SearchKNNCtx(c, pts[i%len(pts)], 10, dist.L2(), dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchKNNTracerNop(b *testing.B) {
	tree, pts := benchTree(b, 20000, 16)
	tree.SetTracer(obs.Nop())
	c := NewQueryContext()
	var dst []Neighbor
	var err error
	if dst, err = tree.SearchKNNCtx(c, pts[0], 10, dist.L2(), dst[:0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err = tree.SearchKNNCtx(c, pts[i%len(pts)], 10, dist.L2(), dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchRangeCtxL2_16d(b *testing.B) {
	tree, pts := benchTree(b, 20000, 16)
	c := NewQueryContext()
	var dst []Neighbor
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = tree.SearchRangeCtx(c, pts[i%len(pts)], 0.5, dist.L2(), dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}
