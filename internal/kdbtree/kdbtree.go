// Package kdbtree implements Robinson's K-D-B-tree (SIGMOD 1981), the only
// prior disk-based structure with single-dimension splits — and the
// motivating strawman of the hybrid tree paper. Because the K-D-B-tree
// insists on *clean* (mutually disjoint) region splits, splitting an index
// node forces every straddling child to split as well, cascading downward;
// cascades produce underfull and even empty nodes, which is why the
// structure has no utilization guarantee (Table 1) and why the hybrid tree
// relaxes exactly this constraint by allowing overlapping split positions.
//
// Regions are stored explicitly as rectangles (as in the original paper),
// so index fanout also degrades with dimensionality here.
package kdbtree

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/index"
	"hybridtree/internal/nodestore"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/pqueue"
)

// Config controls tree geometry.
type Config struct {
	Dim      int
	PageSize int
	// Space is the indexed region; defaults to the unit cube.
	Space geom.Rect
}

type node struct {
	id   pagefile.PageID
	leaf bool
	// Point page payload.
	pts  []geom.Point
	rids []uint64
	// Region page payload: disjoint child regions.
	rects    []geom.Rect
	children []pagefile.PageID
}

// Tree is a K-D-B-tree over a page file.
type Tree struct {
	cfg    Config
	file   pagefile.File
	store  *nodestore.Store[*node]
	root   pagefile.PageID
	rootRe geom.Rect
	height int
	size   int
	// CascadeSplits counts forced downward splits; EmptyNodes is audited
	// by Stats. Both exist to demonstrate the failure mode the hybrid tree
	// paper cites.
	CascadeSplits int
	prunes        *obs.Counter // index_prunes_total{method="kdb"}
}

const headerSize = 6

func (cfg *Config) leafCap() int { return (cfg.PageSize - headerSize) / (8 + 4*cfg.Dim) }
func (cfg *Config) nodeCap() int { return (cfg.PageSize - headerSize) / (8*cfg.Dim + 4) }

// New creates an empty K-D-B-tree on file.
func New(file pagefile.File, cfg Config) (*Tree, error) {
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("kdbtree: dim must be >= 1, got %d", cfg.Dim)
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = file.PageSize()
	}
	if cfg.PageSize != file.PageSize() {
		return nil, fmt.Errorf("kdbtree: page size %d != file page size %d", cfg.PageSize, file.PageSize())
	}
	if cfg.Space.Dim() == 0 {
		cfg.Space = geom.UnitCube(cfg.Dim)
	}
	if cfg.leafCap() < 2 || cfg.nodeCap() < 2 {
		return nil, fmt.Errorf("kdbtree: page size %d too small for %d dimensions", cfg.PageSize, cfg.Dim)
	}
	t := &Tree{cfg: cfg, file: file, rootRe: cfg.Space, prunes: obs.PruneCounter(obs.Default(), "kdb")}
	t.store = nodestore.New[*node](file, codec{dim: cfg.Dim})
	t.store.SetObsMethod("kdb")
	id, err := t.store.Alloc()
	if err != nil {
		return nil, err
	}
	root := &node{id: id, leaf: true}
	if err := t.store.Put(id, root); err != nil {
		return nil, err
	}
	t.root = id
	t.height = 1
	return t, nil
}

// Name implements index.Index.
func (t *Tree) Name() string { return "kdb" }

// File implements index.Index.
func (t *Tree) File() pagefile.File { return t.file }

// Size returns the number of stored entries.
func (t *Tree) Size() int { return t.size }

// Height returns the tree height (1 = root is a point page).
func (t *Tree) Height() int { return t.height }

// Insert implements index.Index.
func (t *Tree) Insert(p geom.Point, rid uint64) error {
	if len(p) != t.cfg.Dim {
		return fmt.Errorf("kdbtree: vector has dim %d, want %d", len(p), t.cfg.Dim)
	}
	if !t.cfg.Space.Contains(p) {
		return fmt.Errorf("kdbtree: vector %v outside the indexed space", p)
	}
	sp, err := t.insertAt(t.root, t.rootRe, p.Clone(), rid)
	if err != nil {
		return err
	}
	if sp != nil {
		id, err := t.store.Alloc()
		if err != nil {
			return err
		}
		root := &node{id: id,
			rects:    []geom.Rect{sp.leftRect, sp.rightRect},
			children: []pagefile.PageID{sp.left, sp.right}}
		if err := t.store.Put(id, root); err != nil {
			return err
		}
		t.root = id
		t.height++
	}
	t.size++
	return nil
}

// Delete implements index.Index. Regions are disjoint, but a point on a
// shared boundary lies in both closed rectangles, so every containing
// region is probed. Empty point pages are already legal in a K-D-B-tree
// (split cascades create them), so no restructuring is needed.
func (t *Tree) Delete(p geom.Point, rid uint64) (bool, error) {
	if len(p) != t.cfg.Dim {
		return false, fmt.Errorf("kdbtree: vector has dim %d, want %d", len(p), t.cfg.Dim)
	}
	found, err := t.deleteAt(t.root, p, rid)
	if err != nil || !found {
		return false, err
	}
	t.size--
	return true, nil
}

func (t *Tree) deleteAt(id pagefile.PageID, p geom.Point, rid uint64) (bool, error) {
	n, err := t.store.Get(id)
	if err != nil {
		return false, err
	}
	if n.leaf {
		for i := range n.pts {
			if n.rids[i] == rid && n.pts[i].Equal(p) {
				last := len(n.pts) - 1
				n.pts[i], n.rids[i] = n.pts[last], n.rids[last]
				n.pts = n.pts[:last]
				n.rids = n.rids[:last]
				return true, t.store.Put(n.id, n)
			}
		}
		return false, nil
	}
	for i := range n.rects {
		if !n.rects[i].Contains(p) {
			continue
		}
		found, err := t.deleteAt(n.children[i], p, rid)
		if err != nil || found {
			return found, err
		}
	}
	return false, nil
}

type splitInfo struct {
	leftRect, rightRect geom.Rect
	left, right         pagefile.PageID
}

func (t *Tree) insertAt(id pagefile.PageID, region geom.Rect, p geom.Point, rid uint64) (*splitInfo, error) {
	n, err := t.store.Get(id)
	if err != nil {
		return nil, err
	}
	if n.leaf {
		n.pts = append(n.pts, p)
		n.rids = append(n.rids, rid)
		if len(n.pts) > t.cfg.leafCap() {
			return t.splitLeaf(n, region)
		}
		return nil, t.store.Put(id, n)
	}
	// Regions are disjoint: descend into the first containing region
	// (boundary ties resolve to the lowest index deterministically).
	for i := range n.rects {
		if n.rects[i].Contains(p) {
			sp, err := t.insertAt(n.children[i], n.rects[i], p, rid)
			if err != nil {
				return nil, err
			}
			if sp != nil {
				n.rects[i] = sp.leftRect
				n.children[i] = sp.left
				n.rects = append(n.rects, sp.rightRect)
				n.children = append(n.children, sp.right)
				if len(n.children) > t.cfg.nodeCap() {
					return t.splitRegion(n, region)
				}
			}
			return nil, t.store.Put(id, n)
		}
	}
	return nil, fmt.Errorf("kdbtree: no region for %v in node %d (disjointness violated)", p, id)
}

// splitLeaf performs a clean median split of an overflowing point page.
func (t *Tree) splitLeaf(n *node, region geom.Rect) (*splitInfo, error) {
	br := geom.BoundingRect(n.pts)
	dim := br.MaxExtentDim()
	coords := make([]float64, len(n.pts))
	for i, p := range n.pts {
		coords[i] = float64(p[dim])
	}
	sort.Float64s(coords)
	val := float32(coords[len(coords)/2])
	// A median equal to the minimum (duplicate mass) would put everything
	// right; nudge to the next distinct value when possible.
	if val == float32(coords[0]) {
		for _, c := range coords {
			if float32(c) > val {
				val = float32(c)
				break
			}
		}
	}
	return t.cutNode(n, region, dim, val)
}

// splitRegion splits an overflowing region page by a hyperplane, forcing
// straddling children to split — the cascade.
func (t *Tree) splitRegion(n *node, region geom.Rect) (*splitInfo, error) {
	// Choose the dimension with the most distinct child boundaries and cut
	// at the median boundary, so both sides are guaranteed non-empty.
	bestDim, bestVal, bestCount := -1, float32(0), -1
	for d := 0; d < t.cfg.Dim; d++ {
		var bounds []float32
		for i := range n.rects {
			lo := n.rects[i].Lo[d]
			if lo > region.Lo[d] && lo < region.Hi[d] {
				bounds = append(bounds, lo)
			}
		}
		if len(bounds) == 0 {
			continue
		}
		sort.Slice(bounds, func(a, b int) bool { return bounds[a] < bounds[b] })
		if len(bounds) > bestCount {
			bestDim, bestVal, bestCount = d, bounds[len(bounds)/2], len(bounds)
		}
	}
	if bestDim < 0 {
		// No internal boundary anywhere (pathological); cut the region in
		// half on its widest dimension.
		bestDim = region.MaxExtentDim()
		bestVal = (region.Lo[bestDim] + region.Hi[bestDim]) / 2
	}
	return t.cutNode(n, region, bestDim, bestVal)
}

// cutNode splits node n (of either kind) cleanly by the hyperplane
// x_dim = val within region, recursively force-splitting straddling
// children. The left node reuses n's page. Either side may end up empty —
// the K-D-B-tree's documented weakness.
func (t *Tree) cutNode(n *node, region geom.Rect, dim int, val float32) (*splitInfo, error) {
	leftRect := region.Clone()
	leftRect.Hi[dim] = val
	rightRect := region.Clone()
	rightRect.Lo[dim] = val

	rid, err := t.store.Alloc()
	if err != nil {
		return nil, err
	}
	right := &node{id: rid, leaf: n.leaf}

	if n.leaf {
		var lp []geom.Point
		var lr []uint64
		for i, p := range n.pts {
			if p[dim] < val {
				lp = append(lp, p)
				lr = append(lr, n.rids[i])
			} else {
				right.pts = append(right.pts, p)
				right.rids = append(right.rids, n.rids[i])
			}
		}
		n.pts, n.rids = lp, lr
	} else {
		var lrects []geom.Rect
		var lkids []pagefile.PageID
		for i := range n.rects {
			r := n.rects[i]
			child := n.children[i]
			switch {
			case r.Hi[dim] <= val:
				lrects = append(lrects, r)
				lkids = append(lkids, child)
			case r.Lo[dim] >= val:
				right.rects = append(right.rects, r)
				right.children = append(right.children, child)
			default:
				// Straddler: forced downward split.
				t.CascadeSplits++
				childN, err := t.store.Get(child)
				if err != nil {
					return nil, err
				}
				sp, err := t.cutNode(childN, r, dim, val)
				if err != nil {
					return nil, err
				}
				lrects = append(lrects, sp.leftRect)
				lkids = append(lkids, sp.left)
				right.rects = append(right.rects, sp.rightRect)
				right.children = append(right.children, sp.right)
			}
		}
		n.rects, n.children = lrects, lkids
	}
	if err := t.store.Put(n.id, n); err != nil {
		return nil, err
	}
	if err := t.store.Put(right.id, right); err != nil {
		return nil, err
	}
	return &splitInfo{leftRect: leftRect, rightRect: rightRect, left: n.id, right: right.id}, nil
}

// SearchBox implements index.Index.
func (t *Tree) SearchBox(q geom.Rect) ([]index.Entry, error) {
	if q.Dim() != t.cfg.Dim {
		return nil, fmt.Errorf("kdbtree: query has dim %d, want %d", q.Dim(), t.cfg.Dim)
	}
	var out []index.Entry
	pruned := 0
	var walk func(id pagefile.PageID) error
	walk = func(id pagefile.PageID) error {
		n, err := t.store.Get(id)
		if err != nil {
			return err
		}
		if n.leaf {
			for i, p := range n.pts {
				if q.Contains(p) {
					out = append(out, index.Entry{Point: p, RID: n.rids[i]})
				}
			}
			return nil
		}
		for i := range n.rects {
			if n.rects[i].Intersects(q) {
				if err := walk(n.children[i]); err != nil {
					return err
				}
			} else {
				pruned++
			}
		}
		return nil
	}
	err := walk(t.root)
	t.prunes.Add(uint64(pruned))
	return out, err
}

// SearchRange implements index.Index (regions are plain rectangles, so any
// metric's MINDIST applies).
func (t *Tree) SearchRange(q geom.Point, radius float64, m dist.Metric) ([]index.Neighbor, error) {
	if len(q) != t.cfg.Dim {
		return nil, fmt.Errorf("kdbtree: query has dim %d, want %d", len(q), t.cfg.Dim)
	}
	if radius < 0 {
		return nil, fmt.Errorf("kdbtree: negative radius %g", radius)
	}
	var out []index.Neighbor
	pruned := 0
	var walk func(id pagefile.PageID) error
	walk = func(id pagefile.PageID) error {
		n, err := t.store.Get(id)
		if err != nil {
			return err
		}
		if n.leaf {
			for i, p := range n.pts {
				if d := m.Distance(q, p); d <= radius {
					out = append(out, index.Neighbor{Entry: index.Entry{Point: p, RID: n.rids[i]}, Dist: d})
				}
			}
			return nil
		}
		for i := range n.rects {
			if m.MinDistRect(q, n.rects[i]) <= radius {
				if err := walk(n.children[i]); err != nil {
					return err
				}
			} else {
				pruned++
			}
		}
		return nil
	}
	err := walk(t.root)
	t.prunes.Add(uint64(pruned))
	return out, err
}

// SearchKNN implements index.Index with best-first traversal.
func (t *Tree) SearchKNN(q geom.Point, k int, m dist.Metric) ([]index.Neighbor, error) {
	if len(q) != t.cfg.Dim {
		return nil, fmt.Errorf("kdbtree: query has dim %d, want %d", len(q), t.cfg.Dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("kdbtree: k must be >= 1, got %d", k)
	}
	pruned := 0
	var pq pqueue.Min[pagefile.PageID]
	best := pqueue.NewKBest[index.Neighbor](k)
	pq.Push(t.root, 0)
	for pq.Len() > 0 {
		id, mindist := pq.Pop()
		if best.Full() && mindist > best.Bound() {
			break
		}
		n, err := t.store.Get(id)
		if err != nil {
			return nil, err
		}
		if n.leaf {
			for i, p := range n.pts {
				d := m.Distance(q, p)
				best.Offer(index.Neighbor{Entry: index.Entry{Point: p, RID: n.rids[i]}, Dist: d}, d)
			}
			continue
		}
		for i := range n.rects {
			md := m.MinDistRect(q, n.rects[i])
			if !best.Full() || md <= best.Bound() {
				pq.Push(n.children[i], md)
			} else {
				pruned++
			}
		}
	}
	t.prunes.Add(uint64(pruned))
	ns, _ := best.Sorted()
	return ns, nil
}

// Stats summarizes the structure, in particular the empty and underfull
// nodes cascades produce.
type Stats struct {
	Height      int
	LeafNodes   int
	IndexNodes  int
	EmptyNodes  int
	Entries     int
	AvgLeafFill float64
	MinLeafFill float64
	Cascades    int
}

// Stats walks the tree without perturbing access counters.
func (t *Tree) Stats() (Stats, error) {
	saved := *t.file.Stats()
	defer func() { *t.file.Stats() = saved }()
	savedObs := t.store.PauseObs()
	defer t.store.ResumeObs(savedObs)
	st := Stats{Height: t.height, Cascades: t.CascadeSplits, MinLeafFill: 1}
	var fillSum float64
	var walk func(id pagefile.PageID) error
	walk = func(id pagefile.PageID) error {
		n, err := t.store.Get(id)
		if err != nil {
			return err
		}
		if n.leaf {
			st.LeafNodes++
			st.Entries += len(n.pts)
			fill := float64(len(n.pts)) / float64(t.cfg.leafCap())
			fillSum += fill
			if fill < st.MinLeafFill {
				st.MinLeafFill = fill
			}
			if len(n.pts) == 0 {
				st.EmptyNodes++
			}
			return nil
		}
		st.IndexNodes++
		if len(n.children) == 0 {
			st.EmptyNodes++
		}
		for _, c := range n.children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return Stats{}, err
	}
	if st.LeafNodes > 0 {
		st.AvgLeafFill = fillSum / float64(st.LeafNodes)
	}
	return st, nil
}

// codec serializes K-D-B-tree nodes. Layout: magic 'K', type, dim uint16,
// count uint16, then entries.
type codec struct{ dim int }

// Encode implements nodestore.Codec.
func (c codec) Encode(n *node, buf []byte) (int, error) {
	buf[0] = 'K'
	binary.LittleEndian.PutUint16(buf[2:], uint16(c.dim))
	off := headerSize
	if n.leaf {
		buf[1] = 0
		binary.LittleEndian.PutUint16(buf[4:], uint16(len(n.pts)))
		for i, p := range n.pts {
			binary.LittleEndian.PutUint64(buf[off:], n.rids[i])
			off += 8
			for _, v := range p {
				binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
				off += 4
			}
		}
		return off, nil
	}
	buf[1] = 1
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(n.children)))
	for i := range n.children {
		binary.LittleEndian.PutUint32(buf[off:], uint32(n.children[i]))
		off += 4
		for _, v := range n.rects[i].Lo {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
			off += 4
		}
		for _, v := range n.rects[i].Hi {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
			off += 4
		}
	}
	return off, nil
}

// Decode implements nodestore.Codec.
func (c codec) Decode(id pagefile.PageID, buf []byte) (*node, error) {
	if len(buf) < headerSize || buf[0] != 'K' {
		return nil, fmt.Errorf("kdbtree: corrupt page %d", id)
	}
	if got := int(binary.LittleEndian.Uint16(buf[2:])); got != c.dim {
		return nil, fmt.Errorf("kdbtree: page %d dim %d, want %d", id, got, c.dim)
	}
	count := int(binary.LittleEndian.Uint16(buf[4:]))
	n := &node{id: id}
	off := headerSize
	switch buf[1] {
	case 0:
		if headerSize+count*(8+4*c.dim) > len(buf) {
			return nil, fmt.Errorf("kdbtree: page %d entry count exceeds page", id)
		}
		n.leaf = true
		for i := 0; i < count; i++ {
			n.rids = append(n.rids, binary.LittleEndian.Uint64(buf[off:]))
			off += 8
			p := make(geom.Point, c.dim)
			for d := range p {
				p[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
				off += 4
			}
			n.pts = append(n.pts, p)
		}
	case 1:
		if headerSize+count*(8*c.dim+4) > len(buf) {
			return nil, fmt.Errorf("kdbtree: page %d region count exceeds page", id)
		}
		for i := 0; i < count; i++ {
			n.children = append(n.children, pagefile.PageID(binary.LittleEndian.Uint32(buf[off:])))
			off += 4
			r := geom.Rect{Lo: make(geom.Point, c.dim), Hi: make(geom.Point, c.dim)}
			for d := range r.Lo {
				r.Lo[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
				off += 4
			}
			for d := range r.Hi {
				r.Hi[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
				off += 4
			}
			n.rects = append(n.rects, r)
		}
	default:
		return nil, fmt.Errorf("kdbtree: page %d bad node type", id)
	}
	return n, nil
}
