package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Build identity: every metrics scrape and every benchmark snapshot should
// say which build it measured. ReadBuildInfo carries the VCS stamp when the
// binary was built from a git checkout (`go build`/`go run` inside the
// repo); binaries built without VCS metadata report "unknown".

// BuildVersion returns the build's VCS commit (with a "+dirty" suffix for
// a modified checkout) and the Go toolchain version that compiled it.
func BuildVersion() (commit, goVersion string) {
	commit, goVersion = "unknown", runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return commit, goVersion
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "+dirty"
		}
		commit = rev
	}
	return commit, goVersion
}

// RegisterBuildInfo publishes the Prometheus-idiomatic constant gauge
// build_info{commit="...",go_version="..."} = 1 in r, and returns the
// commit and Go version for callers that also print them (-version flags,
// benchmark snapshots).
func RegisterBuildInfo(r *Registry) (commit, goVersion string) {
	commit, goVersion = BuildVersion()
	r.Gauge(fmt.Sprintf("build_info{commit=%q,go_version=%q}", commit, goVersion)).Set(1)
	return commit, goVersion
}
