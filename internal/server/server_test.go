package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hybridtree/internal/concurrent"
	"hybridtree/internal/core"
	"hybridtree/internal/geom"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
)

// newTestServer builds a Server over a fresh in-memory tree of n uniform
// points, with its own registry so outcome tallies are exact.
func newTestServer(t *testing.T, dim, n int, mutate func(*Config)) (*Server, *concurrent.Tree) {
	t.Helper()
	tree, err := concurrent.New(pagefile.NewMemFile(512), core.Config{Dim: dim, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = float32(rng.Float64())
		}
		if err := tree.Insert(p, core.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{Dim: dim, Registry: obs.NewRegistry()}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(tree, cfg)
	t.Cleanup(func() {
		_ = s.Shutdown(context.Background())
		_ = tree.Close()
	})
	return s, tree
}

func post(t *testing.T, h http.Handler, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decode(t *testing.T, w *httptest.ResponseRecorder) queryResponse {
	t.Helper()
	var resp queryResponse
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatalf("decode response: %v (body %q)", err, w.Body.String())
	}
	return resp
}

// TestServeQueries drives every read endpoint end to end and checks the
// response envelope, the outcome header, and the exactly-one-outcome tally.
func TestServeQueries(t *testing.T) {
	s, tree := newTestServer(t, 3, 500, nil)
	h := s.Handler()

	w := post(t, h, "/v1/knn", `{"point":[0.5,0.5,0.5],"k":5}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("knn: status %d, body %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get(HeaderOutcome); got != "ok" {
		t.Fatalf("knn: outcome header %q, want ok", got)
	}
	if resp := decode(t, w); resp.Count != 5 || len(resp.Neighbors) != 5 {
		t.Fatalf("knn: got %d neighbors, want 5", resp.Count)
	}

	w = post(t, h, "/v1/range", `{"point":[0.5,0.5,0.5],"radius":0.4,"metric":"L1"}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("range: status %d, body %s", w.Code, w.Body.String())
	}
	if resp := decode(t, w); resp.Count == 0 {
		t.Fatal("range: no results in a 0.4 L1 ball around the center of 500 uniform points")
	}

	w = post(t, h, "/v1/box", `{"lo":[0,0,0],"hi":[1,1,1]}`, nil)
	if resp := decode(t, w); w.Code != http.StatusOK || resp.Count != tree.Size() {
		t.Fatalf("box: status %d count %d, want 200 with %d", w.Code, resp.Count, tree.Size())
	}

	// Writes are not mounted without EnableWrites.
	if w = post(t, h, "/v1/insert", `{"point":[0.1,0.2,0.3],"rid":9001}`, nil); w.Code != http.StatusNotFound {
		t.Fatalf("insert without EnableWrites: status %d, want 404", w.Code)
	}

	// Exactly one outcome per /v1 request, including the 404? No: the mux
	// rejected that one before any endpoint ran, so it counts no outcome.
	reqs := s.cfg.Registry.Counter("server_requests_total").Value()
	if reqs != 3 {
		t.Fatalf("server_requests_total = %d, want 3", reqs)
	}
	if ok := s.cfg.Registry.Counter(`server_request_outcomes_total{outcome="ok"}`).Value(); ok != 3 {
		t.Fatalf("ok outcomes = %d, want 3", ok)
	}
}

// TestServeWrites exercises insert and delete through the group committer.
func TestServeWrites(t *testing.T) {
	s, tree := newTestServer(t, 2, 10, func(c *Config) { c.EnableWrites = true })
	h := s.Handler()
	before := tree.Size()

	if w := post(t, h, "/v1/insert", `{"point":[0.25,0.75],"rid":777}`, nil); w.Code != http.StatusOK {
		t.Fatalf("insert: status %d, body %s", w.Code, w.Body.String())
	}
	if got := tree.Size(); got != before+1 {
		t.Fatalf("size after insert %d, want %d", got, before+1)
	}
	w := post(t, h, "/v1/delete", `{"point":[0.25,0.75],"rid":777}`, nil)
	resp := decode(t, w)
	if w.Code != http.StatusOK || resp.Found == nil || !*resp.Found {
		t.Fatalf("delete: status %d found %v, want 200 found=true", w.Code, resp.Found)
	}
	w = post(t, h, "/v1/delete", `{"point":[0.25,0.75],"rid":777}`, nil)
	if resp := decode(t, w); resp.Found == nil || *resp.Found {
		t.Fatalf("second delete: found %v, want found=false", resp.Found)
	}
}

// TestClientRejections: every malformed request resolves to the documented
// 4xx with an outcome header, and still counts exactly one outcome.
func TestClientRejections(t *testing.T) {
	s, _ := newTestServer(t, 3, 50, func(c *Config) { c.MaxBodyBytes = 256 })
	h := s.Handler()

	cases := []struct {
		name, path, body string
		hdr              map[string]string
		want             int
	}{
		{"bad json", "/v1/knn", `{"point":[0.1,`, nil, http.StatusBadRequest},
		{"wrong dim", "/v1/knn", `{"point":[0.1,0.2],"k":3}`, nil, http.StatusBadRequest},
		{"k missing", "/v1/knn", `{"point":[0.1,0.2,0.3]}`, nil, http.StatusBadRequest},
		{"bad metric", "/v1/knn", `{"point":[0.1,0.2,0.3],"k":3,"metric":"cosine"}`, nil, http.StatusBadRequest},
		{"bad radius", "/v1/range", `{"point":[0.1,0.2,0.3],"radius":-1}`, nil, http.StatusBadRequest},
		{"bad deadline", "/v1/knn", `{"point":[0.1,0.2,0.3],"k":3}`,
			map[string]string{HeaderDeadlineMs: "soon"}, http.StatusBadRequest},
		{"bad budget", "/v1/knn", `{"point":[0.1,0.2,0.3],"k":3}`,
			map[string]string{HeaderBudgetPages: "-5"}, http.StatusBadRequest},
		{"oversized body", "/v1/box",
			fmt.Sprintf(`{"lo":[0,0,0],"hi":[1,1,1],"metric":%q}`, strings.Repeat("x", 4096)),
			nil, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		w := post(t, h, tc.path, tc.body, tc.hdr)
		if w.Code != tc.want {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, w.Code, tc.want, w.Body.String())
		}
		if got := w.Header().Get(HeaderOutcome); got != "error" {
			t.Errorf("%s: outcome header %q, want error", tc.name, got)
		}
	}
	reqs := s.cfg.Registry.Counter("server_requests_total").Value()
	errs := s.cfg.Registry.Counter(`server_request_outcomes_total{outcome="error"}`).Value()
	if reqs != uint64(len(cases)) || errs != uint64(len(cases)) {
		t.Fatalf("tally: requests=%d error-outcomes=%d, want both %d", reqs, errs, len(cases))
	}
}

// TestBudgetDegrades: an absurdly small page budget yields an honest
// partial answer — 206, the partial marker, and a degraded outcome.
func TestBudgetDegrades(t *testing.T) {
	s, _ := newTestServer(t, 4, 3000, nil)
	w := post(t, s.Handler(), "/v1/knn", `{"point":[0.5,0.5,0.5,0.5],"k":50}`,
		map[string]string{HeaderBudgetPages: "2"})
	if w.Code != http.StatusPartialContent {
		t.Fatalf("status %d, want 206 (body %s)", w.Code, w.Body.String())
	}
	if got := w.Header().Get(HeaderOutcome); got != "degraded" {
		t.Fatalf("outcome header %q, want degraded", got)
	}
	resp := decode(t, w)
	if !resp.Partial {
		t.Fatal("degraded response not marked partial")
	}
	if w.Header().Get(HeaderPartial) == "" {
		t.Fatalf("degraded response missing %s header", HeaderPartial)
	}
}

// TestDeadlineCapAndTimeout: the server clamps client deadlines to
// MaxDeadline, and an already-expired deadline resolves as shed or timeout
// (the request never produces a fabricated answer).
func TestDeadlineCapAndTimeout(t *testing.T) {
	s, _ := newTestServer(t, 3, 2000, func(c *Config) {
		c.MaxDeadline = 50 * time.Millisecond
		c.Workers = 1
	})
	// A 0ms deadline expires before the query can run: the executor sheds
	// it from the queue or the search classifies the expiry as a timeout.
	w := post(t, s.Handler(), "/v1/knn", `{"point":[0.5,0.5,0.5],"k":5}`,
		map[string]string{HeaderDeadlineMs: "0"})
	// X-Deadline-Ms: 0 means "no client deadline", clamped to MaxDeadline
	// = 50ms — plenty; this one succeeds.
	if w.Code != http.StatusOK {
		t.Fatalf("0ms header (=> server cap): status %d, want 200", w.Code)
	}
	// An actual 1ms deadline against a wedged executor sheds below in
	// TestOverloadSheds; here just check an in-flight expiry maps to 504 or
	// 503, never 200 — drive it by wedging the sole worker so the deadline
	// lapses while queued.
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.exec.Do(context.Background(), func(*core.QueryContext) error { <-gate; return nil })
	}()
	time.Sleep(10 * time.Millisecond) // let the wedge occupy the worker
	// Release the wedge while the request below is still queued: its 1ms
	// deadline has long expired by then, so the worker sheds it on dequeue.
	go func() { time.Sleep(50 * time.Millisecond); close(gate) }()
	w = post(t, s.Handler(), "/v1/knn", `{"point":[0.5,0.5,0.5],"k":5}`,
		map[string]string{HeaderDeadlineMs: "1"})
	<-done
	if w.Code != http.StatusGatewayTimeout && w.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired-while-queued: status %d, want 504 or 503 (body %s)", w.Code, w.Body.String())
	}
}

// TestOverloadSheds wedges the executor's only worker and fills its queue:
// further requests must shed with 503 + Retry-After immediately rather
// than queue without bound.
func TestOverloadSheds(t *testing.T) {
	s, _ := newTestServer(t, 3, 100, func(c *Config) { c.Workers = 1; c.QueueDepth = 1 })
	gate := make(chan struct{})
	wedged := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.exec.Do(context.Background(), func(*core.QueryContext) error {
			close(wedged)
			<-gate
			return nil
		})
	}()
	<-wedged
	// Fill the queue (depth 1) with a second task.
	go s.exec.Do(context.Background(), func(*core.QueryContext) error { return nil })
	// Release the wedge on a timer: a post that races the filler into the
	// queue resolves as shed-on-dequeue (its 10ms deadline is long expired
	// by then) instead of deadlocking the loop below.
	go func() { time.Sleep(300 * time.Millisecond); close(gate) }()
	deadline := time.Now().Add(5 * time.Second)
	var w *httptest.ResponseRecorder
	for {
		w = post(t, s.Handler(), "/v1/knn", `{"point":[0.5,0.5,0.5],"k":3}`,
			map[string]string{HeaderDeadlineMs: "10"})
		if w.Code == http.StatusServiceUnavailable || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	<-done
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated executor: status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if got := w.Header().Get(HeaderOutcome); got != "shed" {
		t.Fatalf("outcome header %q, want shed", got)
	}
}

// TestPanicIsolation: a handler that panics resolves its own request to a
// 500 and leaves the server serving.
func TestPanicIsolation(t *testing.T) {
	s, _ := newTestServer(t, 3, 50, nil)
	bomb := s.endpoint(func(*http.Request, queryRequest) result { panic("boom") })

	req := httptest.NewRequest(http.MethodPost, "/v1/bomb", strings.NewReader(`{}`))
	w := httptest.NewRecorder()
	bomb.ServeHTTP(w, req)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", w.Code)
	}
	if got := w.Header().Get(HeaderOutcome); got != "error" {
		t.Fatalf("outcome header %q, want error", got)
	}
	if n := s.cfg.Registry.Counter("server_panics_total").Value(); n != 1 {
		t.Fatalf("server_panics_total = %d, want 1", n)
	}
	// The server is still fine.
	if w := post(t, s.Handler(), "/v1/knn", `{"point":[0.5,0.5,0.5],"k":3}`, nil); w.Code != http.StatusOK {
		t.Fatalf("request after panic: status %d, want 200", w.Code)
	}
	if n := s.cfg.Registry.Gauge("server_inflight_requests").Value(); n != 0 {
		t.Fatalf("inflight gauge %d after panic resolution, want 0", n)
	}
}

// TestDrainFlipsReadiness: once Shutdown begins, /readyz answers 503,
// /healthz stays alive, and /v1 requests shed.
func TestDrainFlipsReadiness(t *testing.T) {
	s, _ := newTestServer(t, 3, 50, nil)
	h := s.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		return w
	}
	if w := get("/readyz"); w.Code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", w.Code)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if w := get("/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", w.Code)
	}
	if w := get("/healthz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "draining") {
		t.Fatalf("healthz during drain: %d %q, want 200 'ok draining'", w.Code, w.Body.String())
	}
	w := post(t, h, "/v1/knn", `{"point":[0.5,0.5,0.5],"k":3}`, nil)
	if w.Code != http.StatusServiceUnavailable || w.Header().Get(HeaderOutcome) != "shed" {
		t.Fatalf("/v1 during drain: %d outcome %q, want 503 shed", w.Code, w.Header().Get(HeaderOutcome))
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestStatsAndMetricsEndpoints: the introspection surface rides along.
func TestStatsAndMetricsEndpoints(t *testing.T) {
	s, tree := newTestServer(t, 3, 120, nil)
	h := s.Handler()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var st statsResponse
	if err := json.NewDecoder(w.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Dim != 3 || st.Size != tree.Size() {
		t.Fatalf("stats %+v, want dim 3 size %d", st, tree.Size())
	}

	post(t, h, "/v1/knn", `{"point":[0.5,0.5,0.5],"k":3}`, nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics.json", nil))
	var payload struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(w.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Counters["server_requests_total"] == 0 {
		t.Fatalf("metrics.json missing server_requests_total: %v", payload.Counters)
	}
}

// TestBodyLimitBounds: MaxBytesReader actually stops reading at the cap
// rather than buffering an arbitrarily large body.
func TestBodyLimitBounds(t *testing.T) {
	s, _ := newTestServer(t, 3, 10, func(c *Config) { c.MaxBodyBytes = 128 })
	var big bytes.Buffer
	big.WriteString(`{"point":[`)
	for i := 0; i < 100000; i++ {
		big.WriteString("0.5,")
	}
	big.WriteString(`0.5],"k":3}`)
	w := post(t, s.Handler(), "/v1/knn", big.String(), nil)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("1MB body against a 128B cap: status %d, want 413", w.Code)
	}
}
