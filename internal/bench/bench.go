// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 4). It builds each access
// method over the synthetic FOURIER/COLHIST datasets, runs the calibrated
// constant-selectivity query batches, and reports the paper's metrics:
// average disk accesses, average CPU time, and both normalized against
// sequential scan (normalized I/O cost of a scan is 0.1 by the
// 10x-faster-sequential convention; normalized CPU cost of a scan is 1.0).
package bench

import (
	"fmt"
	"io"
	"time"

	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/hbtree"
	"hybridtree/internal/index"
	"hybridtree/internal/kdbtree"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/seqscan"
	"hybridtree/internal/srtree"
	"hybridtree/internal/workload"
	"hybridtree/internal/xtree"
)

// Options scales the experiments. The zero value is usable; Defaults()
// gives the benchmark-suite scale and Paper() the paper's full scale.
type Options struct {
	// FourierN and ColHistN are dataset sizes.
	FourierN int
	ColHistN int
	// Queries is the number of queries per measurement point.
	Queries int
	// PageSize defaults to 4096, the paper's setting.
	PageSize int
	// Seed makes everything deterministic.
	Seed int64
	// Out receives progress and results; nil discards progress lines.
	Out io.Writer
}

// Defaults returns a scale that completes the whole suite in a few minutes
// on a laptop while preserving every qualitative shape.
func Defaults() Options {
	return Options{FourierN: 60000, ColHistN: 30000, Queries: 30, PageSize: 4096, Seed: 1}
}

// Paper returns the paper's experimental scale (FOURIER 400K, COLHIST 70K).
// Expect tens of minutes.
func Paper() Options {
	return Options{FourierN: 400000, ColHistN: 70000, Queries: 100, PageSize: 4096, Seed: 1}
}

func (o Options) withDefaults() Options {
	d := Defaults()
	if o.FourierN == 0 {
		o.FourierN = d.FourierN
	}
	if o.ColHistN == 0 {
		o.ColHistN = d.ColHistN
	}
	if o.Queries == 0 {
		o.Queries = d.Queries
	}
	if o.PageSize == 0 {
		o.PageSize = d.PageSize
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Out != nil {
		fmt.Fprintf(o.Out, format, args...)
	}
}

// BuildHybrid constructs a hybrid tree over data. querySide feeds the
// EDA split objective (pass the calibrated workload side).
func BuildHybrid(data []geom.Point, pageSize int, cfg core.Config) (*index.Hybrid, error) {
	dim := len(data[0])
	cfg.Dim = dim
	cfg.PageSize = pageSize
	file := pagefile.NewMemFile(pageSize)
	tree, err := core.New(file, cfg)
	if err != nil {
		return nil, err
	}
	for i, p := range data {
		if err := tree.Insert(p, core.RecordID(i)); err != nil {
			return nil, fmt.Errorf("hybrid insert %d: %w", i, err)
		}
	}
	return &index.Hybrid{Tree: tree}, nil
}

// BuildSR constructs an SR-tree over data.
func BuildSR(data []geom.Point, pageSize int) (*srtree.Tree, error) {
	file := pagefile.NewMemFile(pageSize)
	tree, err := srtree.New(file, srtree.Config{Dim: len(data[0]), PageSize: pageSize})
	if err != nil {
		return nil, err
	}
	for i, p := range data {
		if err := tree.Insert(p, uint64(i)); err != nil {
			return nil, fmt.Errorf("sr insert %d: %w", i, err)
		}
	}
	return tree, nil
}

// BuildHB constructs an hB-tree over data.
func BuildHB(data []geom.Point, pageSize int) (*hbtree.Tree, error) {
	file := pagefile.NewMemFile(pageSize)
	tree, err := hbtree.New(file, hbtree.Config{Dim: len(data[0]), PageSize: pageSize})
	if err != nil {
		return nil, err
	}
	for i, p := range data {
		if err := tree.Insert(p, uint64(i)); err != nil {
			return nil, fmt.Errorf("hb insert %d: %w", i, err)
		}
	}
	return tree, nil
}

// BuildKDB constructs a K-D-B-tree over data.
func BuildKDB(data []geom.Point, pageSize int) (*kdbtree.Tree, error) {
	file := pagefile.NewMemFile(pageSize)
	tree, err := kdbtree.New(file, kdbtree.Config{Dim: len(data[0]), PageSize: pageSize})
	if err != nil {
		return nil, err
	}
	for i, p := range data {
		if err := tree.Insert(p, uint64(i)); err != nil {
			return nil, fmt.Errorf("kdb insert %d: %w", i, err)
		}
	}
	return tree, nil
}

// BuildX constructs an X-tree over data.
func BuildX(data []geom.Point, pageSize int) (*xtree.Tree, error) {
	file := pagefile.NewMemFile(pageSize)
	tree, err := xtree.New(file, xtree.Config{Dim: len(data[0]), PageSize: pageSize})
	if err != nil {
		return nil, err
	}
	for i, p := range data {
		if err := tree.Insert(p, uint64(i)); err != nil {
			return nil, fmt.Errorf("x insert %d: %w", i, err)
		}
	}
	return tree, nil
}

// BuildScan constructs the sequential-scan baseline over data.
func BuildScan(data []geom.Point, pageSize int) (*seqscan.Scan, error) {
	file := pagefile.NewMemFile(pageSize)
	s, err := seqscan.New(file, len(data[0]))
	if err != nil {
		return nil, err
	}
	for i, p := range data {
		if err := s.Insert(p, uint64(i)); err != nil {
			return nil, fmt.Errorf("scan insert %d: %w", i, err)
		}
	}
	return s, nil
}

// Measurement is the outcome of one (method, workload) run.
type Measurement struct {
	Method     string
	AvgIO      float64 // average page reads per query (random + sequential)
	AvgCPU     time.Duration
	NormIO     float64 // paper's normalized I/O cost
	NormCPU    float64 // paper's normalized CPU cost
	AvgResults float64
}

// RunBox executes the box-query batch against idx. scanPages is the
// sequential-scan page count of the dataset (the normalization
// denominator); scanCPU the measured scan CPU per query (0 to skip CPU
// normalization).
func RunBox(idx index.Index, queries []geom.Rect, scanPages int, scanCPU time.Duration) (Measurement, error) {
	return run(idx, scanPages, scanCPU, len(queries), func(i int) (int, error) {
		res, err := idx.SearchBox(queries[i])
		return len(res), err
	})
}

// RunRange executes the distance-range batch under metric m.
func RunRange(idx index.Index, queries []workload.RangeQuery, m dist.Metric, scanPages int, scanCPU time.Duration) (Measurement, error) {
	return run(idx, scanPages, scanCPU, len(queries), func(i int) (int, error) {
		res, err := idx.SearchRange(queries[i].Center, queries[i].Radius, m)
		return len(res), err
	})
}

// RunKNN executes a k-nearest-neighbor batch.
func RunKNN(idx index.Index, centers []geom.Point, k int, m dist.Metric, scanPages int, scanCPU time.Duration) (Measurement, error) {
	return run(idx, scanPages, scanCPU, len(centers), func(i int) (int, error) {
		res, err := idx.SearchKNN(centers[i], k, m)
		return len(res), err
	})
}

func run(idx index.Index, scanPages int, scanCPU time.Duration, n int, query func(i int) (int, error)) (Measurement, error) {
	stats := idx.File().Stats()
	stats.Reset()
	results := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		c, err := query(i)
		if err != nil {
			return Measurement{}, err
		}
		results += c
	}
	elapsed := time.Since(start)

	m := Measurement{
		Method:     idx.Name(),
		AvgIO:      float64(stats.Reads()) / float64(n),
		AvgCPU:     elapsed / time.Duration(n),
		AvgResults: float64(results) / float64(n),
	}
	if scanPages > 0 {
		// Per-query normalized I/O; divide the batch stats by n first.
		perQuery := pagefile.Stats{
			RandomReads: stats.RandomReads,
			SeqReads:    stats.SeqReads,
		}
		m.NormIO = perQuery.NormalizedIO(scanPages) / float64(n)
	}
	if scanCPU > 0 {
		m.NormCPU = float64(m.AvgCPU) / float64(scanCPU)
	}
	return m, nil
}

// ScanCPU measures the average CPU time of the scan baseline on the batch
// (its normalized CPU cost is 1.0 by definition).
func ScanCPU(s *seqscan.Scan, queries []geom.Rect) (time.Duration, error) {
	m, err := RunBox(s, queries, 0, 0)
	if err != nil {
		return 0, err
	}
	return m.AvgCPU, nil
}

// ScanCPURange measures scan CPU for a distance-range batch.
func ScanCPURange(s *seqscan.Scan, queries []workload.RangeQuery, metric dist.Metric) (time.Duration, error) {
	m, err := RunRange(s, queries, metric, 0, 0)
	if err != nil {
		return 0, err
	}
	return m.AvgCPU, nil
}
