package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
)

// hookFile calls onRead before every page read that reaches the file —
// the deterministic trigger the mid-query cancellation tests hang off.
type hookFile struct {
	pagefile.File
	mu     sync.Mutex
	onRead func(n int) // n = 1-based count of file reads so far
	n      int
}

func (f *hookFile) hit() {
	f.mu.Lock()
	f.n++
	n := f.n
	cb := f.onRead
	f.mu.Unlock()
	if cb != nil {
		cb(n)
	}
}

func (f *hookFile) ReadPage(id pagefile.PageID, buf []byte) error {
	f.hit()
	return f.File.ReadPage(id, buf)
}

func (f *hookFile) ReadPageSeq(id pagefile.PageID, buf []byte) error {
	f.hit()
	return f.File.ReadPageSeq(id, buf)
}

// requestTree builds a tree over a hookFile so tests can watch and interrupt
// its page reads.
func requestTree(t *testing.T, n, dim int, seed int64) (*Tree, *hookFile, []geom.Point) {
	t.Helper()
	hf := &hookFile{File: pagefile.NewMemFile(pagefile.DefaultPageSize)}
	tree, err := New(hf, Config{Dim: dim})
	if err != nil {
		t.Fatal(err)
	}
	pts := makePoints(n, dim, seed)
	for i, p := range pts {
		if err := tree.Insert(p, RecordID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tree, hf, pts
}

func makePoints(n, dim int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
	}
	return pts
}

func TestAlreadyCancelledContextReturnsPromptly(t *testing.T) {
	tree, hf, pts := requestTree(t, 2000, 8, 71)
	q := pts[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	sentinel := []Neighbor{{Entry: Entry{RID: 12345}, Dist: 99}}
	c := NewQueryContext()
	readsBefore := hf.n
	got, err := tree.SearchKNNContext(ctx, c, q, 10, dist.L2(), Budget{}, sentinel)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(got) != 1 || got[0].RID != 12345 || got[0].Dist != 99 {
		t.Fatalf("result mutated: %+v", got)
	}
	if hf.n != readsBefore {
		t.Fatalf("cancelled query performed %d file reads", hf.n-readsBefore)
	}

	// Box and range variants observe the same contract.
	ents, err := tree.SearchBoxContext(ctx, c, geom.Rect{Lo: q, Hi: q}, Budget{}, nil)
	if !errors.Is(err, context.Canceled) || len(ents) != 0 {
		t.Fatalf("box: err = %v, %d entries, want Canceled and none", err, len(ents))
	}
	nbs, err := tree.SearchRangeContext(ctx, c, q, 0.5, dist.L2(), Budget{}, nil)
	if !errors.Is(err, context.Canceled) || len(nbs) != 0 {
		t.Fatalf("range: err = %v, %d neighbors, want Canceled and none", err, len(nbs))
	}
}

// TestCancelMidKNNDeterministic cancels the context from inside the file
// layer after a fixed number of page reads — the same read every run — and
// verifies the pooled QueryContext stays reusable: a follow-up query on the
// same context is identical to an uncancelled run.
func TestCancelMidKNNDeterministic(t *testing.T) {
	tree, hf, pts := requestTree(t, 3000, 8, 72)
	q := pts[1]
	const k = 20

	c := NewQueryContext()
	want, err := tree.SearchKNNCtx(c, q, k, dist.L2(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Cold cache so every node visit reaches the hookFile.
	tree.DropCaches()
	ctx, cancel := context.WithCancel(context.Background())
	hf.mu.Lock()
	hf.onRead = func(n int) {
		if n == 5 {
			cancel()
		}
	}
	hf.n = 0
	hf.mu.Unlock()
	_, err = tree.SearchKNNContext(ctx, c, q, k, dist.L2(), Budget{}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	hf.mu.Lock()
	hf.onRead = nil
	hf.mu.Unlock()

	// Same context, same buffer reuse pattern as an uncancelled caller.
	got, err := tree.SearchKNNCtx(c, q, k, dist.L2(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !neighborsEqual(want, got) {
		t.Fatalf("post-cancel query diverged:\nwant %v\ngot  %v", want, got)
	}
}

// TestCancelMidKNNRace cancels from a separate goroutine while queries run,
// for the race detector: either outcome is legal, corruption is not.
func TestCancelMidKNNRace(t *testing.T) {
	tree, _, pts := requestTree(t, 3000, 8, 73)
	c := NewQueryContext()
	want, err := tree.SearchKNNCtx(c, pts[2], 10, dist.L2(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tree.DropCaches()
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		got, err := tree.SearchKNNContext(ctx, c, pts[2], 10, dist.L2(), Budget{}, nil)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("iter %d: err = %v", i, err)
			}
			continue
		}
		if !neighborsEqual(want, got) {
			t.Fatalf("iter %d: uncancelled result diverged", i)
		}
	}
}

func TestBudgetExceededKNNReturnsSortedValidPrefix(t *testing.T) {
	tree, _, pts := requestTree(t, 4000, 8, 74)
	q := pts[3]
	const k = 25

	c := NewQueryContext()
	got, err := tree.SearchKNNContext(nil, c, q, k, dist.L2(), Budget{MaxPageReads: 4}, nil)
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *ErrBudgetExceeded", err)
	}
	if be.Resource != "page_reads" || be.Op != "knn" {
		t.Fatalf("budget error = %+v, want page_reads/knn", be)
	}
	if be.Partial != len(got) {
		t.Fatalf("Partial = %d, len(got) = %d", be.Partial, len(got))
	}
	if len(got) == 0 {
		t.Fatal("degraded k-NN returned nothing despite visiting nodes")
	}
	for i, nb := range got {
		if i > 0 && nb.Dist < got[i-1].Dist {
			t.Fatalf("degraded result unsorted at %d: %v then %v", i, got[i-1].Dist, nb.Dist)
		}
		// Each neighbor must be an honest (point, distance) pair from the
		// dataset, not an artifact of the aborted traversal.
		truth := pts[nb.RID]
		if !truth.Equal(nb.Point) {
			t.Fatalf("result %d: point does not match RID %d", i, nb.RID)
		}
		if d := (dist.L2()).Distance(q, nb.Point); !close64(d, nb.Dist) {
			t.Fatalf("result %d: dist %v, recomputed %v", i, nb.Dist, d)
		}
	}
}

func TestBudgetHeapPushesAndWallTime(t *testing.T) {
	tree, _, pts := requestTree(t, 4000, 8, 75)
	c := NewQueryContext()

	_, err := tree.SearchKNNContext(nil, c, pts[4], 10, dist.L2(), Budget{MaxHeapPushes: 2}, nil)
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) || be.Resource != "heap_pushes" {
		t.Fatalf("err = %v, want heap_pushes budget error", err)
	}

	_, err = tree.SearchKNNContext(nil, c, pts[4], 10, dist.L2(), Budget{MaxWallTime: time.Nanosecond}, nil)
	if !errors.As(err, &be) || be.Resource != "wall_time" {
		t.Fatalf("err = %v, want wall_time budget error", err)
	}
}

func TestBudgetExceededBoxKeepsPartialSubset(t *testing.T) {
	tree, _, pts := requestTree(t, 4000, 8, 76)
	c := NewQueryContext()
	q := geom.Rect{Lo: make(geom.Point, 8), Hi: make(geom.Point, 8)}
	for d := 0; d < 8; d++ {
		q.Lo[d], q.Hi[d] = 0.1, 0.9
	}
	full, err := tree.SearchBoxCtx(c, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	byRID := make(map[RecordID]bool, len(full))
	for _, e := range full {
		byRID[e.RID] = true
	}

	part, err := tree.SearchBoxContext(nil, c, q, Budget{MaxPageReads: 5}, nil)
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *ErrBudgetExceeded", err)
	}
	if be.Partial != len(part) || len(part) >= len(full) {
		t.Fatalf("partial = %d (Partial %d), full = %d", len(part), be.Partial, len(full))
	}
	for _, e := range part {
		if !byRID[e.RID] {
			t.Fatalf("degraded box result %d not in the full answer", e.RID)
		}
		if !pts[e.RID].Equal(e.Point) {
			t.Fatalf("degraded box result %d carries a wrong point", e.RID)
		}
	}
}

// TestQueryOutcomeCountersExclusive drives one query per outcome kind and
// checks each lands in exactly one core_query_outcomes_total bucket.
func TestQueryOutcomeCountersExclusive(t *testing.T) {
	tree, _, pts := requestTree(t, 2000, 8, 77)
	c := NewQueryContext()
	r := obs.Default()
	snapshot := func() map[string]uint64 {
		out := make(map[string]uint64)
		for _, k := range []string{"ok", "cancelled", "timeout", "shed", "degraded", "error"} {
			out[k] = r.Counter(`core_query_outcomes_total{outcome="` + k + `"}`).Value()
		}
		return out
	}
	expectDelta := func(before map[string]uint64, want string) {
		t.Helper()
		after := snapshot()
		for k := range after {
			d := after[k] - before[k]
			switch {
			case k == want && d != 1:
				t.Fatalf("outcome %q counted %d times, want 1", k, d)
			case k != want && d != 0:
				t.Fatalf("outcome %q counted %d times, want 0 (wanted only %q)", k, d, want)
			}
		}
	}

	before := snapshot()
	if _, err := tree.SearchKNNCtx(c, pts[0], 5, dist.L2(), nil); err != nil {
		t.Fatal(err)
	}
	expectDelta(before, "ok")

	before = snapshot()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tree.SearchKNNContext(ctx, c, pts[0], 5, dist.L2(), Budget{}, nil); !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	expectDelta(before, "cancelled")

	before = snapshot()
	ctx, cancel = context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := tree.SearchKNNContext(ctx, c, pts[0], 5, dist.L2(), Budget{}, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal(err)
	}
	expectDelta(before, "timeout")

	before = snapshot()
	var be *ErrBudgetExceeded
	if _, err := tree.SearchKNNContext(nil, c, pts[0], 5, dist.L2(), Budget{MaxPageReads: 1}, nil); !errors.As(err, &be) {
		t.Fatal(err)
	}
	expectDelta(before, "degraded")
}

func close64(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6*(1+a+b)
}
