package concurrent

import (
	"sync"

	"hybridtree/internal/core"
	"hybridtree/internal/geom"
	"hybridtree/internal/obs"
)

// groupOp is one writer's queued mutation and its reply channel.
type groupOp struct {
	delete bool
	p      geom.Point
	rid    core.RecordID
	done   chan groupResult
}

type groupResult struct {
	found bool // Delete only
	err   error
}

// GroupCommitter amortizes the write-ahead log's fsync across concurrent
// writers. Callers' Insert/Delete calls queue behind the MVCC commit
// point; a single worker drains the queue and applies each batch inside
// one core.RunTx — one transaction, one commit record, one fsync — then
// fans the acknowledgement back out. Every acknowledged operation carries
// the same durability guarantee as a direct call: the shared fsync covers
// the whole batch, and a batch that fails durability rolls back and is
// retried operation by operation so each caller gets its own verdict.
//
// Without a transactional file underneath this still batches the writer
// lock like InsertBatch, it just cannot amortize what doesn't exist.
type GroupCommitter struct {
	t        *Tree
	ch       chan *groupOp
	maxBatch int
	wg       sync.WaitGroup

	closeOnce sync.Once

	batchSizes *obs.Histogram
	batches    *obs.Counter
}

// NewGroupCommitter starts the commit worker. maxBatch bounds how many
// queued operations one transaction may absorb (≤ 0 means 64).
func NewGroupCommitter(t *Tree, maxBatch int) *GroupCommitter {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	r := obs.Default()
	g := &GroupCommitter{
		t:          t,
		ch:         make(chan *groupOp, 4*maxBatch),
		maxBatch:   maxBatch,
		batchSizes: r.Histogram("wal_group_commit_batch_size"),
		batches:    r.Counter("wal_group_commit_batches_total"),
	}
	g.wg.Add(1)
	go g.run()
	return g
}

// Insert queues the insert and blocks until its group commits (or fails).
func (g *GroupCommitter) Insert(p geom.Point, rid core.RecordID) error {
	op := &groupOp{p: p, rid: rid, done: make(chan groupResult, 1)}
	g.ch <- op
	return (<-op.done).err
}

// Delete queues the delete and blocks until its group commits (or fails).
func (g *GroupCommitter) Delete(p geom.Point, rid core.RecordID) (bool, error) {
	op := &groupOp{delete: true, p: p, rid: rid, done: make(chan groupResult, 1)}
	g.ch <- op
	res := <-op.done
	return res.found, res.err
}

// Close drains queued operations and stops the worker. Operations
// submitted after Close panic (send on closed channel), matching the
// usual lifecycle contract: stop producers first.
func (g *GroupCommitter) Close() {
	g.closeOnce.Do(func() { close(g.ch) })
	g.wg.Wait()
}

func (g *GroupCommitter) run() {
	defer g.wg.Done()
	for op := range g.ch {
		batch := []*groupOp{op}
		for len(batch) < g.maxBatch {
			select {
			case next, ok := <-g.ch:
				if !ok {
					g.commit(batch)
					return
				}
				batch = append(batch, next)
			default:
				goto full
			}
		}
	full:
		g.commit(batch)
	}
}

// commit applies one batch as a single transaction; on failure it retries
// each operation alone so acknowledgements stay per-operation exact.
func (g *GroupCommitter) commit(batch []*groupOp) {
	g.batches.Inc()
	g.batchSizes.Observe(int64(len(batch)))
	results := make([]groupResult, len(batch))
	g.t.mu.Lock()
	err := g.t.tree.RunTx(func() error {
		for i, op := range batch {
			if op.delete {
				found, err := g.t.tree.Delete(op.p, op.rid)
				if err != nil {
					return err
				}
				results[i] = groupResult{found: found}
			} else if err := g.t.tree.Insert(op.p, op.rid); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil && len(batch) > 1 {
		// The whole batch rolled back; one bad operation must not fail its
		// neighbors. Re-run individually — each as its own transaction.
		for i, op := range batch {
			if op.delete {
				found, derr := g.t.tree.Delete(op.p, op.rid)
				results[i] = groupResult{found: found, err: derr}
			} else {
				results[i] = groupResult{err: g.t.tree.Insert(op.p, op.rid)}
			}
		}
		err = nil
	}
	g.t.mu.Unlock()
	for i, op := range batch {
		if err != nil {
			results[i] = groupResult{err: err}
		}
		op.done <- results[i]
	}
}
