package bench

import (
	"strings"
	"testing"
)

func TestFigurePrintGolden(t *testing.T) {
	fig := &Figure{
		Title:  "Test figure",
		XLabel: "dims",
		YLabel: "cost",
		X:      []float64{8, 16},
		Series: []Series{
			{Label: "alpha", Y: []float64{1.5, 2.25}},
			{Label: "a-much-longer-label", Y: []float64{0.125}},
		},
	}
	var sb strings.Builder
	fig.Print(&sb)
	out := sb.String()
	want := []string{
		"Test figure",
		"y-axis: cost",
		"alpha",
		"a-much-longer-label",
		"1.5",
		"2.25",
		"0.125",
		"-", // missing point rendered as a dash
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
	// Header and rows must align: every line the same number of columns.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", out)
	}
	// The long label's column must be wide enough to keep rows aligned.
	header := lines[3]
	if !strings.Contains(header, "a-much-longer-label") {
		t.Fatalf("header mangled: %q", header)
	}
}

func TestFigureGet(t *testing.T) {
	fig := &Figure{Series: []Series{{Label: "x"}, {Label: "y"}}}
	if fig.Get("y") == nil || fig.Get("nope") != nil {
		t.Fatal("Get misbehaves")
	}
}

func TestTablePrintGolden(t *testing.T) {
	tab := &Table{
		Title:   "Test table",
		Columns: []string{"a", "long-column"},
		Rows: [][]string{
			{"wide-cell-content", "x"},
			{"y", "z"},
		},
	}
	var sb strings.Builder
	tab.Print(&sb)
	out := sb.String()
	for _, w := range []string{"Test table", "long-column", "wide-cell-content"} {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
	// Column widths adapt to the widest cell: the second column of row 2
	// must start at the same offset as the header's second column.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	head := lines[2]
	row2 := lines[4]
	if strings.Index(head, "long-column") != strings.Index(row2, "z") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestOptionsPresets(t *testing.T) {
	d := Defaults()
	p := Paper()
	if p.FourierN != 400000 || p.ColHistN != 70000 {
		t.Fatalf("paper preset = %+v", p)
	}
	if d.FourierN >= p.FourierN {
		t.Fatal("defaults should be smaller than paper scale")
	}
	// Zero options fill in defaults.
	var o Options
	o = o.withDefaults()
	if o.FourierN != d.FourierN || o.Queries != d.Queries || o.PageSize != d.PageSize || o.Seed != d.Seed {
		t.Fatalf("withDefaults = %+v", o)
	}
	// Explicit values survive.
	o2 := Options{ColHistN: 123, Queries: 7}.withDefaults()
	if o2.ColHistN != 123 || o2.Queries != 7 {
		t.Fatalf("withDefaults clobbered explicit values: %+v", o2)
	}
}

func TestFig6RejectsUnknownDataset(t *testing.T) {
	if _, _, err := Fig6(small(), "NOPE"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
