package bench

import (
	"fmt"

	"hybridtree/internal/core"
	"hybridtree/internal/dataset"
)

// Table1 reproduces the paper's Table 1 ("Splitting strategies for various
// index structures"), replacing the R-tree column with the SR-tree actually
// used in the evaluation (both are DP structures splitting on all k
// dimensions). The analytic columns come from the structures' definitions;
// the fanout, overlap, and utilization columns are *measured* on builds at
// two dimensionalities so the claims are verified rather than asserted.
func Table1(o Options) (*Table, error) {
	o = o.withDefaults()
	n := o.ColHistN
	if n > 20000 {
		n = 20000 // the audit needs structure, not scale
	}

	type audit struct {
		fanoutLo, fanoutHi float64 // measured fanout at dimLo/dimHi
		overlap            string
		utilization        string
		redundancy         string
	}
	const dimLo, dimHi = 16, 64
	audits := make(map[string]audit)

	for _, dim := range []int{dimLo, dimHi} {
		data := dataset.ColHist(n, dim, o.Seed)
		o.logf("table1: building all structures at dim=%d n=%d\n", dim, n)

		hybrid, err := BuildHybrid(data, o.PageSize, core.Config{})
		if err != nil {
			return nil, err
		}
		hst, err := hybrid.Tree.Stats()
		if err != nil {
			return nil, err
		}
		hb, err := BuildHB(data, o.PageSize)
		if err != nil {
			return nil, err
		}
		hbst, err := hb.Stats()
		if err != nil {
			return nil, err
		}
		kdb, err := BuildKDB(data, o.PageSize)
		if err != nil {
			return nil, err
		}
		kdbst, err := kdb.Stats()
		if err != nil {
			return nil, err
		}
		sr, err := BuildSR(data, o.PageSize)
		if err != nil {
			return nil, err
		}
		srst, err := sr.Stats()
		if err != nil {
			return nil, err
		}

		set := func(name string, fanout float64, fill func(a *audit)) {
			a := audits[name]
			if dim == dimLo {
				a.fanoutLo = fanout
			} else {
				a.fanoutHi = fanout
			}
			fill(&a)
			audits[name] = a
		}
		set("Hybrid tree", hst.AvgFanout, func(a *audit) {
			a.overlap = fmt.Sprintf("low (%.1f%% of kd records, vol %.3f)", hst.OverlapFraction*100, hst.OverlapVolume)
			a.utilization = fmt.Sprintf("yes (min data fill %.0f%%)", hst.MinDataFill*100)
			a.redundancy = "none"
		})
		set("hB-tree", float64(hbst.ChildRefs)/maxf(1, float64(hbst.IndexNodes)), func(a *audit) {
			a.overlap = "none (disjoint holey bricks)"
			a.utilization = "yes (1/3..2/3 extraction)"
			a.redundancy = fmt.Sprintf("yes (ref ratio %.2f)", hbst.Redundancy)
		})
		set("KDB-tree", float64(0), func(a *audit) {
			a.overlap = "none (clean splits)"
			a.utilization = fmt.Sprintf("NO (min leaf fill %.0f%%, %d empty nodes, %d cascades)",
				kdbst.MinLeafFill*100, kdbst.EmptyNodes, kdbst.Cascades)
			a.redundancy = "none"
		})
		set("SR-tree", srst.AvgFanout, func(a *audit) {
			a.overlap = "high (rect+sphere regions overlap freely)"
			a.utilization = "yes (40% fill)"
			a.redundancy = "none"
		})
	}

	t := &Table{
		Title: "Table 1: splitting strategies (measured on COLHIST)",
		Columns: []string{
			"Index", "split dims", "fanout@16d", "fanout@64d",
			"overlap", "utilization guarantee", "storage redundancy",
		},
	}
	order := []struct {
		name      string
		splitDims string
	}{
		{"KDB-tree", "1"},
		{"hB-tree", "1..d (kd path)"},
		{"SR-tree", "k (all)"},
		{"Hybrid tree", "1"},
	}
	for _, row := range order {
		a := audits[row.name]
		fanLo, fanHi := fmt.Sprintf("%.1f", a.fanoutLo), fmt.Sprintf("%.1f", a.fanoutHi)
		if row.name == "KDB-tree" {
			// KDB stores explicit rectangles: report capacity, which is the
			// binding constraint.
			fanLo, fanHi = "8k+4 B/entry", "8k+4 B/entry"
		}
		t.Rows = append(t.Rows, []string{
			row.name, row.splitDims, fanLo, fanHi, a.overlap, a.utilization, a.redundancy,
		})
	}
	return t, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Table2 reproduces the paper's Table 2: the hybrid tree against BR-based
// and kd-tree-based structures on representation, overlap, split arity and
// dead-space elimination — with the hybrid column's claims verified on a
// real build.
func Table2(o Options) (*Table, error) {
	o = o.withDefaults()
	n := o.ColHistN
	if n > 20000 {
		n = 20000
	}
	data := dataset.ColHist(n, 32, o.Seed)
	hybrid, err := BuildHybrid(data, o.PageSize, core.Config{})
	if err != nil {
		return nil, err
	}
	st, err := hybrid.Tree.Stats()
	if err != nil {
		return nil, err
	}
	if err := hybrid.Tree.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("table2: hybrid invariants: %w", err)
	}

	t := &Table{
		Title:   "Table 2: the hybrid tree vs BR-based and kd-tree-based structures",
		Columns: []string{"Property", "BR-based (SR-tree)", "kd-tree-based (hB/KDB)", "Hybrid tree (measured)"},
	}
	t.Rows = [][]string{
		{"representation", "array of bounding boxes", "kd-tree",
			"kd-tree with two split positions"},
		{"indexed subspaces", "may mutually overlap", "strictly disjoint",
			fmt.Sprintf("may overlap (%.1f%% of splits, vol frac %.4f)", st.OverlapFraction*100, st.OverlapVolume)},
		{"node splitting", "all k dims", "1 or more dims",
			fmt.Sprintf("1 dim (%d distinct dims used)", st.SplitDimsUsed)},
		{"dead space elimination", "yes (tight BRs)", "no",
			fmt.Sprintf("yes (ELS, %d B side table = %.2f%% of data)", st.ELSBytes, 100*float64(st.ELSBytes)/float64(n*32*4))},
		{"fanout vs dimensionality", "decreases ~1/k", "independent",
			fmt.Sprintf("independent (avg %.1f at 32-d)", st.AvgFanout)},
	}
	return t, nil
}
