package dataset

import (
	"math"
	"math/rand"

	"hybridtree/internal/geom"
)

// ColHist generates n color-histogram vectors — the paper's COLHIST dataset
// (~70K Corel images binned on 4x4, 8x4 and 8x8 hue/saturation grids for
// 16, 32 and 64 dimensions [18]). Each synthetic "image" is a mixture of a
// few dominant color clusters: cluster centers land on an 8x8 HS grid, mass
// is Gamma-distributed across clusters and spills into neighboring bins
// with Gaussian falloff, then the histogram is normalized to sum to one and
// marginalized down to the requested grid. The result shares real color
// histograms' indexing-relevant structure: non-negative, unit-sum, sparse
// (most bins near zero), heavily skewed, and strongly correlated across
// neighboring bins.
//
// dim must be 16 (4x4), 32 (8x4) or 64 (8x8).
func ColHist(n, dim int, seed int64) []geom.Point {
	var hBins, sBins int
	switch dim {
	case 16:
		hBins, sBins = 4, 4
	case 32:
		hBins, sBins = 8, 4
	case 64:
		hBins, sBins = 8, 8
	default:
		panic("dataset: ColHist supports dim 16, 32 or 64")
	}
	rng := rand.New(rand.NewSource(seed))

	// Scene archetypes: collections like Corel's are dominated by recurring
	// scene types (sunsets, forests, oceans ...) whose images share dominant
	// colors. Each archetype fixes a palette of color clusters; each image
	// draws an archetype with Zipf-like popularity and jitters the palette.
	// The resulting dense neighborhoods are what give similarity queries
	// their constant-selectivity radii and the index its prunable clusters.
	type cluster struct {
		ch, cs, spread, weight float64
	}
	const nScenes = 48
	scenes := make([][]cluster, nScenes)
	for i := range scenes {
		k := 2 + rng.Intn(4)
		scene := make([]cluster, k)
		for c := range scene {
			scene[c] = cluster{
				ch:     rng.Float64() * 8,
				cs:     rng.Float64() * 8,
				spread: 0.3 + rng.Float64()*0.6,
				weight: gammaLike(rng, 1.2),
			}
		}
		scenes[i] = scene
	}

	pts := make([]geom.Point, n)
	full := make([]float64, 64) // always generate at 8x8, then marginalize
	for i := range pts {
		for j := range full {
			full[j] = 0
		}
		// Zipf-ish archetype popularity: squaring a uniform skews toward
		// low indices (popular scenes).
		u := rng.Float64()
		scene := scenes[int(u*u*float64(nScenes))]
		for _, c := range scene {
			// Per-image jitter: same scene, different photo.
			ch := c.ch + rng.NormFloat64()*0.25
			cs := c.cs + rng.NormFloat64()*0.25
			weight := c.weight * (0.7 + 0.6*rng.Float64())
			for h := 0; h < 8; h++ {
				dh := wrapDelta(float64(h)+0.5-ch, 8)
				for s := 0; s < 8; s++ {
					ds := float64(s) + 0.5 - cs
					full[h*8+s] += weight * math.Exp(-(dh*dh+ds*ds)/(2*c.spread*c.spread))
				}
			}
		}
		// A few stray pixels of unrelated colors, as real images have —
		// but only in a handful of bins: real color histograms are sparse,
		// and that sparsity is what dead-space elimination feeds on.
		for j := 0; j < 4; j++ {
			full[rng.Intn(64)] += 0.003 * rng.Float64()
		}

		// Marginalize 8x8 down to the requested grid.
		binned := make([]float64, dim)
		for h := 0; h < 8; h++ {
			for s := 0; s < 8; s++ {
				bh := h * hBins / 8
				bs := s * sBins / 8
				binned[bh*sBins+bs] += full[h*8+s]
			}
		}
		var sum float64
		for _, v := range binned {
			sum += v
		}
		p := make(geom.Point, dim)
		for d, v := range binned {
			f := v / sum
			if f > 1 {
				f = 1
			}
			p[d] = float32(f)
		}
		pts[i] = p
	}
	return pts
}

// wrapDelta returns the signed circular difference of x on a ring of the
// given period (hue is circular).
func wrapDelta(x, period float64) float64 {
	for x > period/2 {
		x -= period
	}
	for x < -period/2 {
		x += period
	}
	return x
}

// gammaLike draws a positive skewed value (sum of shape exponentials — a
// small-integer-shape Gamma), giving clusters realistically unequal mass.
func gammaLike(rng *rand.Rand, shape float64) float64 {
	v := 0.0
	whole := int(shape)
	for i := 0; i < whole; i++ {
		v += -math.Log(1 - rng.Float64())
	}
	if frac := shape - float64(whole); frac > 0 {
		v += -math.Log(1-rng.Float64()) * frac
	}
	return v
}
