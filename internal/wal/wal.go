package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"hybridtree/internal/pagefile"
)

// ErrReadOnlyBase reports an attempt to put a write-ahead log on top of a
// read-only page file (the mmap backend). It is returned by Open, up front,
// so callers get one typed error instead of a WritePage failure halfway
// through a transaction.
var ErrReadOnlyBase = errors.New("wal: base page file is read-only")

// ErrBroken reports that a failed commit could not be durably rewound: the
// on-disk log may still hold a transaction that was reported failed, so the
// WAL refuses every further mutation rather than risk recovery resurrecting
// it. Reads keep working; the caller should close and re-open (recovery
// re-establishes a consistent prefix).
var ErrBroken = errors.New("wal: log rewind failed, refusing further writes")

// errInTx guards the checkpoint path: a checkpoint inside an open
// transaction would flush unsealed writes past the commit point.
var errInTx = errors.New("wal: operation not allowed inside an open transaction")

// errMismatch reports a checkpoint read-back that returned different bytes
// without any I/O error — a silent short or torn write underneath.
var errMismatch = errors.New("wal: read-back mismatch")

func errVerify(readErr error) error {
	if readErr != nil {
		return readErr
	}
	return errMismatch
}

// Options tunes a wal.File.
type Options struct {
	// FsyncEvery is the number of sealed transactions per log fsync.
	// 1 (or 0, the default) fsyncs every commit: SealTx returning nil
	// means durable. Larger values amortize fsync at the price of the
	// last FsyncEvery-1 acknowledged transactions being lost by a crash.
	FsyncEvery int
}

// Recovery reports what Open found and did.
type Recovery struct {
	// Txs is the number of committed transactions replayed.
	Txs int
	// Replayed is the number of committed write records applied.
	Replayed int
	// Discarded is the number of valid records dropped because their
	// transaction never committed.
	Discarded int
	// TornBytes is the size of the unparseable tail discarded.
	TornBytes int
	// TruncatedTo is the log size after dropping the damaged tail.
	TruncatedTo int64
}

// File layers a write-ahead log over a pagefile.File. It is a no-steal
// design: writes land in a volatile page overlay and in log records — the
// inner file is only touched by Allocate (growth is cheap metadata) and by
// checkpoints. Reads hit the overlay first, so the tree above never
// observes the difference.
//
// Durability protocol, in order:
//
//	WritePage*        → overlay + staged log record (volatile)
//	SealTx            → append records + commit frame, fsync log: COMMITTED
//	Sync (checkpoint) → flush overlay to inner, fsync inner, truncate log
//
// The invariant recovery relies on: every page whose overlay contents
// differ from the inner file has a log record since the last checkpoint
// whose replay reproduces those contents. Checkpoints preserve it by
// truncating the log only after the inner fsync succeeds; failed commits
// preserve it by rewinding the log and having the tree rewrite pre-images
// (which log as fresh single-write transactions).
//
// Mutating calls (including BeginTx / SealTx / AbortTx / Sync) require
// external exclusion from each other, like every pagefile implementation.
// Reads, however, may run concurrently with mutations: the MVCC layer above
// serves lock-free searches whose cold-cache misses read through the file
// while a writer holds the tree lock, so every overlay access is guarded by
// ovMu. Writer-side cost is one uncontended mutex per page touched —
// negligible next to the log append.
type File struct {
	inner pagefile.File
	log   LogStore
	opts  Options

	ovMu    sync.RWMutex // guards overlay (map and slice contents)
	overlay map[pagefile.PageID][]byte

	inTx     bool
	pending  []byte // staged frames of the open transaction
	staged   int    // write records staged in pending
	seq      uint64 // last committed transaction sequence
	unsynced int    // commits since the last log fsync
	broken   error  // set when a rewind could not be made durable

	m *walMetrics
}

// Open attaches a write-ahead log to inner, replaying whatever committed
// tail log holds from a previous incarnation. The inner file must be
// writable; its free list must be empty (free lists are volatile across
// crashes — pagefile.CrashFile and OpenDiskFile both guarantee this).
func Open(inner pagefile.File, log LogStore, opts Options) (*File, Recovery, error) {
	if pagefile.IsReadOnly(inner) {
		return nil, Recovery{}, fmt.Errorf("%w: %T", ErrReadOnlyBase, inner)
	}
	f := &File{
		inner:   inner,
		log:     log,
		opts:    opts,
		overlay: make(map[pagefile.PageID][]byte),
		m:       metrics(),
	}
	rec, err := f.recover()
	if err != nil {
		return nil, rec, err
	}
	return f, rec, nil
}

// recover scans the log, applies the committed tail to the overlay, and
// truncates the damaged or uncommitted remainder.
func (f *File) recover() (Recovery, error) {
	start := time.Now()
	var rec Recovery
	data, err := f.log.Contents()
	if err != nil {
		return rec, fmt.Errorf("wal: recovery read: %w", err)
	}
	maxPayload := 5 + f.inner.PageSize()

	type writeRec struct {
		id   pagefile.PageID
		data []byte
	}
	var committed []writeRec // flattened committed writes, log order
	var uncommitted []writeRec
	pos := 0
	validEnd := 0
	for pos < len(data) {
		r, n, ok := parseFrame(data[pos:], maxPayload)
		if !ok {
			rec.TornBytes = len(data) - pos
			break
		}
		switch r.kind {
		case kindWrite:
			uncommitted = append(uncommitted, writeRec{r.pageID, r.data})
		case kindCommit:
			committed = append(committed, uncommitted...)
			uncommitted = uncommitted[:0]
			rec.Txs++
			f.seq = r.seq
			validEnd = pos + n
		case kindCheckpoint:
			// Everything before this point is durable in the inner file:
			// replay starts over.
			committed = committed[:0]
			uncommitted = uncommitted[:0]
			rec.Txs = 0
			f.seq = r.seq
			validEnd = pos + n
		}
		pos += n
	}
	rec.Discarded = len(uncommitted)

	// Apply the committed writes to the overlay (copying out of the log
	// buffer) and make sure the inner file is large enough to address every
	// replayed page — growth is durable metadata, contents are not.
	for _, w := range committed {
		if err := f.applyReplay(w.id, w.data); err != nil {
			return rec, fmt.Errorf("wal: replay page %d: %w", w.id, err)
		}
	}
	rec.Replayed = len(committed)

	// Drop the uncommitted and torn tail so future appends extend a clean
	// committed prefix.
	rec.TruncatedTo = int64(validEnd)
	if int64(validEnd) != f.log.Size() {
		if err := f.log.Truncate(int64(validEnd)); err != nil {
			return rec, err
		}
		if err := f.log.Sync(); err != nil {
			return rec, err
		}
	}

	f.m.recoveries.Inc()
	f.m.recReplayed.Add(uint64(rec.Replayed))
	f.m.recDiscard.Add(uint64(rec.Discarded))
	f.m.recTorn.Add(uint64(rec.TornBytes))
	f.m.recNs.Observe(time.Since(start).Nanoseconds())
	return rec, nil
}

// applyReplay installs one replayed page image in the overlay, growing the
// inner file if the page id is beyond its current end.
func (f *File) applyReplay(id pagefile.PageID, data []byte) error {
	if len(data) > f.inner.PageSize() {
		return pagefile.ErrTooLarge
	}
	for f.inner.NumPages() <= int(id) {
		if _, err := f.inner.Allocate(); err != nil {
			return err
		}
	}
	f.setOverlay(id, data)
	return nil
}

func (f *File) setOverlay(id pagefile.PageID, data []byte) {
	f.ovMu.Lock()
	defer f.ovMu.Unlock()
	p, ok := f.overlay[id]
	if !ok {
		p = make([]byte, f.inner.PageSize())
		f.overlay[id] = p
	}
	n := copy(p, data)
	for i := n; i < len(p); i++ {
		p[i] = 0
	}
}

// PageSize implements pagefile.File.
func (f *File) PageSize() int { return f.inner.PageSize() }

// Stats implements pagefile.File. Overlay hits are counted against the
// same Stats object so access accounting stays comparable with and without
// a WAL.
func (f *File) Stats() *pagefile.Stats { return f.inner.Stats() }

// NumPages implements pagefile.File.
func (f *File) NumPages() int { return f.inner.NumPages() }

// ReadPage implements pagefile.File, preferring the overlay. The copy-out
// happens under the read lock: setOverlay rewrites page slices in place.
func (f *File) ReadPage(id pagefile.PageID, buf []byte) error {
	f.ovMu.RLock()
	p, ok := f.overlay[id]
	if ok {
		copy(buf, p)
	}
	f.ovMu.RUnlock()
	if ok {
		f.inner.Stats().AddRandomReads(1)
		return nil
	}
	return f.inner.ReadPage(id, buf)
}

// ReadPageSeq implements pagefile.File, preferring the overlay.
func (f *File) ReadPageSeq(id pagefile.PageID, buf []byte) error {
	f.ovMu.RLock()
	p, ok := f.overlay[id]
	if ok {
		copy(buf, p)
	}
	f.ovMu.RUnlock()
	if ok {
		f.inner.Stats().AddSeqReads(1)
		return nil
	}
	return f.inner.ReadPageSeq(id, buf)
}

// WritePage implements pagefile.File: the write is acknowledged into the
// overlay and staged (inside a transaction) or logged as its own
// single-write transaction (outside one). Either way the inner file is
// untouched until the next checkpoint.
func (f *File) WritePage(id pagefile.PageID, data []byte) error {
	if len(data) > f.inner.PageSize() {
		return fmt.Errorf("%w: %d > %d", pagefile.ErrTooLarge, len(data), f.inner.PageSize())
	}
	if f.broken != nil {
		return f.broken
	}
	if f.inTx {
		f.pending = appendWrite(f.pending, id, data)
		f.staged++
		f.setOverlay(id, data)
		f.inner.Stats().AddWrites(1)
		f.m.appends.Inc()
		return nil
	}
	// Auto-commit: a single-write transaction, logged but not fsynced —
	// out-of-tx writes (construction, rollback repairs, flushes) duplicate
	// state that is either rebuilt or already covered by earlier records,
	// so deferred durability is safe for them.
	frame := appendWrite(nil, id, data)
	f.seq++
	frame = appendCommit(frame, f.seq)
	pos := f.log.Size()
	if err := f.log.Append(frame); err != nil {
		// A failed append may still have landed partial bytes; durably
		// rewind so recovery cannot see a CRC-lucky fragment of it.
		f.seq--
		f.rewindTo(pos)
		return fmt.Errorf("wal: log append: %w", err)
	}
	f.setOverlay(id, data)
	f.inner.Stats().AddWrites(1)
	f.m.appends.Inc()
	f.unsynced++
	return nil
}

// Allocate implements pagefile.File. Growth goes straight to the inner
// file: page ids must stay addressable across a crash, and both disk and
// crash-simulating backends persist length eagerly. No log record is
// needed — replay re-grows the file to cover any replayed page id.
func (f *File) Allocate() (pagefile.PageID, error) { return f.inner.Allocate() }

// Free implements pagefile.File. Frees are not logged: a crash forgets
// them (volatile free lists), which costs bounded space, never
// correctness. The overlay entry is dropped so a checkpoint cannot write
// to a freed page.
func (f *File) Free(id pagefile.PageID) error {
	if err := f.inner.Free(id); err != nil {
		return err
	}
	f.ovMu.Lock()
	delete(f.overlay, id)
	f.ovMu.Unlock()
	return nil
}

// BeginTx implements pagefile.TxFile.
func (f *File) BeginTx() { f.inTx = true }

// AbortTx implements pagefile.TxFile: staged records are dropped without
// reaching the log. Overlay contents written by the aborted transaction
// remain until the caller rewrites the pre-images (which log as fresh
// auto-committed writes), exactly mirroring how the tree repairs its
// eager page writes on rollback.
func (f *File) AbortTx() {
	f.inTx = false
	f.pending = f.pending[:0]
	f.staged = 0
}

// SealTx implements pagefile.TxFile: the staged writes plus a commit frame
// are appended to the log and, subject to FsyncEvery, fsynced. A nil
// return with FsyncEvery ≤ 1 means the transaction is durable. On error
// nothing is promised: the log is durably rewound so recovery can never
// resurrect the failed transaction, and the caller must roll back. If even
// the rewind fails, the file wedges itself (ErrBroken) instead.
func (f *File) SealTx() error {
	if !f.inTx {
		return nil
	}
	f.inTx = false
	if f.broken != nil {
		f.pending = f.pending[:0]
		f.staged = 0
		return f.broken
	}
	if f.staged == 0 {
		f.pending = f.pending[:0]
		return nil
	}
	staged := f.staged
	f.seq++
	f.pending = appendCommit(f.pending, f.seq)
	pos := f.log.Size()
	err := f.log.Append(f.pending)
	f.pending = f.pending[:0]
	f.staged = 0
	if err != nil {
		f.seq--
		f.rewindTo(pos)
		return fmt.Errorf("wal: log append: %w", err)
	}
	f.unsynced++
	if f.opts.FsyncEvery <= 1 || f.unsynced >= f.opts.FsyncEvery {
		if err := f.syncLog(); err != nil {
			// The commit must not be acknowledged: rewind the log to the
			// pre-transaction position so replay can never see it. (Any
			// earlier unsynced auto-committed records dropped with it only
			// duplicate state still covered by the durable prefix.)
			f.seq--
			f.rewindTo(pos)
			return err
		}
	}
	f.m.commits.Inc()
	f.m.groupedOps.Add(uint64(staged))
	return nil
}

// rewindTo durably removes an acknowledged-but-rejected log tail. The
// truncate must itself reach the disk: without an fsync the OS could still
// write back the rejected pages and drop the truncate metadata in a crash,
// and recovery would replay a CRC-valid commit that was reported failed and
// rolled back. If the rewind cannot be made durable, the on-disk log is in
// an unknown state, so the WAL turns every further mutation into ErrBroken
// rather than risk that resurrection. The rewind fsync also resets the
// unsynced counter (via syncLog), so a rewound commit never counts toward
// FsyncEvery batching.
func (f *File) rewindTo(pos int64) {
	if err := f.log.Truncate(pos); err != nil {
		f.broken = fmt.Errorf("%w: truncate: %v", ErrBroken, err)
		return
	}
	if err := f.syncLog(); err != nil {
		f.broken = fmt.Errorf("%w: sync: %v", ErrBroken, err)
	}
}

func (f *File) syncLog() error {
	start := time.Now()
	err := f.log.Sync()
	f.m.fsyncs.Inc()
	f.m.fsyncNs.Observe(time.Since(start).Nanoseconds())
	if err != nil {
		return err
	}
	f.unsynced = 0
	return nil
}

// Sync implements pagefile.File as a checkpoint: flush the overlay into
// the inner file, fsync it, then truncate the log. On error the log and
// overlay are kept — nothing durable is given up until the inner file
// provably holds it.
func (f *File) Sync() error {
	if f.inTx {
		return errInTx
	}
	if f.broken != nil {
		return f.broken
	}
	if f.unsynced > 0 {
		if err := f.syncLog(); err != nil {
			return err
		}
	}
	// Snapshot the overlay under the read lock. The page slices themselves
	// are stable references: only setOverlay rewrites them, and mutators are
	// externally excluded from Sync.
	type overlayPage struct {
		id   pagefile.PageID
		data []byte
	}
	f.ovMu.RLock()
	pages := make([]overlayPage, 0, len(f.overlay))
	for id, p := range f.overlay {
		pages = append(pages, overlayPage{id, p})
	}
	f.ovMu.RUnlock()
	sort.Slice(pages, func(i, j int) bool { return pages[i].id < pages[j].id })
	scratch := make([]byte, f.inner.PageSize())
	for _, pg := range pages {
		// Compare-and-skip keeps the invariant cheaply: a page is written
		// back only when it differs, and any read failure (torn page from
		// an earlier aborted checkpoint, checksum damage) counts as
		// different and gets repaired.
		id, cur := pg.id, pg.data
		if err := f.inner.ReadPage(id, scratch); err == nil && bytes.Equal(scratch, cur) {
			f.m.ckptSkipped.Inc()
			continue
		}
		if err := f.inner.WritePage(id, cur); err != nil {
			f.m.ckptFails.Inc()
			return fmt.Errorf("wal: checkpoint flush page %d: %w", id, err)
		}
		// Read back and verify: a short write that lied about success would
		// otherwise let the overlay (and its log records) be discarded while
		// the inner file holds a torn page. The checkpoint is the last
		// moment that damage is still recoverable, so it must be loud here.
		if err := f.inner.ReadPage(id, scratch); err != nil || !bytes.Equal(scratch, cur) {
			f.m.ckptFails.Inc()
			return fmt.Errorf("wal: checkpoint verify page %d: %w", id, errVerify(err))
		}
		f.m.ckptPages.Inc()
	}
	if err := f.inner.Sync(); err != nil {
		f.m.ckptFails.Inc()
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	// The inner file is durable: the overlay has served its purpose.
	f.ovMu.Lock()
	clear(f.overlay)
	f.ovMu.Unlock()
	// Mark and shrink the log. The checkpoint frame lands before the
	// truncate so a crash in between replays nothing stale; the truncate
	// itself is the cleanup. (A checkpoint frame surviving a rewind is
	// harmless — the inner fsync above already made everything it marks
	// durable — so the rewinds here still use rewindTo for the durable
	// truncate, keeping the log's tracked size honest.)
	f.seq++
	frame := appendCheckpoint(nil, f.seq)
	pos := f.log.Size()
	if err := f.log.Append(frame); err != nil {
		f.seq--
		f.rewindTo(pos)
		return fmt.Errorf("wal: checkpoint mark: %w", err)
	}
	if err := f.syncLog(); err != nil {
		f.seq--
		f.rewindTo(pos)
		return fmt.Errorf("wal: checkpoint mark: %w", err)
	}
	if err := f.log.Truncate(0); err != nil {
		return fmt.Errorf("wal: checkpoint truncate: %w", err)
	}
	if err := f.log.Sync(); err != nil {
		return fmt.Errorf("wal: checkpoint truncate: %w", err)
	}
	f.m.checkpoints.Inc()
	return nil
}

// OverlayPages returns how many pages currently live only in the overlay
// and the log — the replay work a crash right now would require.
func (f *File) OverlayPages() int {
	f.ovMu.RLock()
	defer f.ovMu.RUnlock()
	return len(f.overlay)
}

// Seq returns the last committed transaction sequence number.
func (f *File) Seq() uint64 { return f.seq }

// Close implements pagefile.File: checkpoint, then close the log and the
// inner file. The checkpoint error (if any) wins, but both underlying
// files are closed regardless.
func (f *File) Close() error {
	cerr := f.Sync()
	lerr := f.log.Close()
	ierr := f.inner.Close()
	if cerr != nil {
		return cerr
	}
	if lerr != nil {
		return lerr
	}
	return ierr
}
