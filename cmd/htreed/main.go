// Command htreed serves a hybrid tree index over HTTP: budgeted box /
// range / k-NN queries (and, with -writes, group-committed inserts and
// deletes) through admission control, with per-request deadlines and page
// budgets taken from headers, the obs introspection surface on the same
// port, and a SIGTERM graceful drain that finishes in-flight requests,
// checkpoints the tree and closes the WAL before exiting.
//
//	htree  build -db idx.ht -dim 16 -dataset colhist -n 100000
//	htreed -db idx.ht -dim 16 -addr :8080 -wal -writes
//
//	curl -s localhost:8080/v1/knn -H 'X-Deadline-Ms: 50' -H 'X-Budget-Pages: 64' \
//	     -d '{"point":[0.1,...], "k":5}'
//
// The -chaos flag (off|light|heavy) injects seeded storage faults under
// the tree — the load-storm harness in CI runs `htreed -chaos heavy` past
// capacity and asserts shed-not-crash. Only announced fault modes are
// injected (read/write/alloc/free/sync errors): the silent modes need the
// checksummed page format the on-disk index does not use, so injecting
// them would manufacture undetectable corruption no server could survive.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hybridtree/internal/concurrent"
	"hybridtree/internal/core"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/server"
	"hybridtree/internal/sim"
	"hybridtree/internal/wal"
)

func main() {
	var (
		db         = flag.String("db", "", "index file path (required; build it with htree build)")
		dim        = flag.Int("dim", 0, "dimensionality (required)")
		pageSize   = flag.Int("page", pagefile.DefaultPageSize, "page size in bytes")
		addr       = flag.String("addr", ":8080", "listen address")
		writes     = flag.Bool("writes", false, "serve /v1/insert and /v1/delete (group-committed)")
		walOn      = flag.Bool("wal", false, "write ahead through <db>.wal; commits fsync before acknowledgment and reopen replays any crashed tail")
		fsyncEv    = flag.Int("fsync-every", 1, "wal: fsync the log every N commits")
		mmap       = flag.Bool("mmap", false, "serve read-only through a memory mapping (incompatible with -writes/-wal/-chaos)")
		workers    = flag.Int("workers", 0, "query workers (default GOMAXPROCS)")
		queueDepth = flag.Int("queue-depth", 0, "admission queue depth (default 2x workers); a full queue sheds with 503")
		writeSlots = flag.Int("write-slots", 64, "concurrent write admission slots; excess writes shed with 503")
		maxConns   = flag.Int("max-conns", 1024, "max concurrently accepted connections (0 = unlimited)")
		maxBody    = flag.Int64("max-body", 1<<20, "max request body bytes (413 above)")
		maxDl      = flag.Duration("max-deadline", 30*time.Second, "cap on client X-Deadline-Ms, also applied when the header is absent (0 = uncapped)")
		defBudget  = flag.Int("default-budget-pages", 0, "page budget applied when X-Budget-Pages is absent (0 = unlimited)")
		maxBudget  = flag.Int("max-budget-pages", 0, "cap on client X-Budget-Pages (0 = uncapped)")
		readTO     = flag.Duration("read-timeout", 30*time.Second, "connection read timeout")
		writeTO    = flag.Duration("write-timeout", 30*time.Second, "connection write timeout")
		idleTO     = flag.Duration("idle-timeout", 60*time.Second, "keep-alive idle timeout")
		drainTO    = flag.Duration("drain-timeout", 15*time.Second, "SIGTERM: bound on draining in-flight requests before force-close")
		chaos      = flag.String("chaos", "off", "inject seeded storage faults under the tree: off, light, heavy (testing)")
		chaosSeed  = flag.Int64("chaos-seed", 1, "fault schedule seed")
		retryOn    = flag.Bool("retry", true, "layer the retry/breaker read path (with decorrelated-jitter backoff) above the page file")
		slowK      = flag.Int("slow-k", 16, "slowest query traces retained at /debug/slow")
		slowThresh = flag.Duration("slow-threshold", 0, "admit only traces at least this slow (0 = all)")
		version    = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *version {
		commit, goVersion := obs.BuildVersion()
		fmt.Printf("htreed %s (%s)\n", commit, goVersion)
		return
	}
	if *db == "" || *dim <= 0 {
		fatal("-db and -dim are required")
	}
	profile, ok := sim.Profiles[*chaos]
	if !ok {
		fatal(fmt.Sprintf("unknown -chaos profile %q (want off, light, heavy)", *chaos))
	}
	if *mmap && (*writes || *walOn || !profile.Zero()) {
		fatal("-mmap is read-only and incompatible with -writes, -wal and -chaos")
	}

	// Storage stack, innermost out: disk (or mmap), chaos, retry/breaker,
	// WAL. The WAL sits outermost so its log records capture post-retry
	// reality and its replay goes through the same fault-recovery path.
	var file pagefile.File
	var chaosFile *pagefile.ChaosFile
	if *mmap {
		mf, err := pagefile.OpenMmapFile(*db, *pageSize)
		check(err)
		file = mf
	} else {
		disk, err := pagefile.OpenDiskFile(*db, *pageSize)
		check(err)
		file = disk
		if !profile.Zero() {
			chaosFile = pagefile.NewChaosFile(file, scrubSilent(profile), *chaosSeed)
			file = chaosFile
			fmt.Fprintf(os.Stderr, "htreed: chaos profile %s live (seed %d, announced fault modes only)\n", *chaos, *chaosSeed)
		}
		if *retryOn {
			file = pagefile.NewRetryFile(file, pagefile.RetryPolicy{
				MaxAttempts: 3,
				Backoff:     200 * time.Microsecond,
				MaxBackoff:  5 * time.Millisecond,
				Jitter:      true,
				TripAfter:   16,
				ProbeAfter:  50 * time.Millisecond,
			})
		}
		if *walOn {
			log, err := wal.OpenFileLog(*db + ".wal")
			check(err)
			wf, rec, err := wal.Open(file, log, wal.Options{FsyncEvery: *fsyncEv})
			check(err)
			if rec.Txs > 0 || rec.Discarded > 0 || rec.TornBytes > 0 {
				fmt.Fprintf(os.Stderr, "htreed: recovered %s.wal: %d transactions replayed (%d records), %d uncommitted records discarded, %d torn bytes dropped\n",
					*db, rec.Txs, rec.Replayed, rec.Discarded, rec.TornBytes)
			}
			file = wf
		}
	}

	tree, err := concurrent.Open(file, core.Config{Dim: *dim, PageSize: *pageSize})
	check(err)

	// Observability: trace sinks, build info, WAL + runtime telemetry.
	ring := obs.NewRing(256)
	slow := obs.NewSlowRecorder(*slowK, *slowThresh)
	core.SetDefaultTracer(obs.Tee(ring, slow))
	obs.RegisterBuildInfo(obs.Default())
	wal.RegisterMetrics()
	sampler := obs.StartRuntimeSampler(obs.Default(), 0)
	defer sampler.Stop()

	srv := server.New(tree, server.Config{
		Dim:                *dim,
		EnableWrites:       *writes,
		MaxBodyBytes:       *maxBody,
		MaxConns:           *maxConns,
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		WriteSlots:         *writeSlots,
		MaxDeadline:        *maxDl,
		DefaultBudgetPages: *defBudget,
		MaxBudgetPages:     *maxBudget,
		ReadTimeout:        *readTO,
		WriteTimeout:       *writeTO,
		IdleTimeout:        *idleTO,
		Ring:               ring,
		Slow:               slow,
	})

	ln, err := net.Listen("tcp", *addr)
	check(err)
	fmt.Fprintf(os.Stderr, "htreed: serving %s (dim %d, %d entries) on http://%s writes=%v wal=%v\n",
		*db, *dim, tree.Size(), ln.Addr(), *writes, *walOn)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errCh:
		// The listener died without a drain: a real failure.
		fatal(fmt.Sprintf("serve: %v", err))
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "htreed: %v: draining (readiness down, bound %v)\n", sig, *drainTO)
	}

	// Graceful drain: stop accepting, finish in-flight within the bound,
	// drain the executor and group committer, then checkpoint and close.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "htreed: drain overran its bound, connections force-closed: %v\n", err)
	}
	if e := <-errCh; e != nil && e != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "htreed: serve: %v\n", e)
	}
	if chaosFile != nil {
		// The storm is over: the final checkpoint runs against the real
		// device, not the fault injector.
		chaosFile.SetEnabled(false)
	}
	if !*mmap {
		if err := tree.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "htreed: final checkpoint failed: %v\n", err)
			_ = tree.Close()
			_ = file.Close()
			os.Exit(1)
		}
	}
	leaked := tree.LeakedPages()
	check(tree.Close())
	check(file.Close())
	if leaked != 0 {
		fmt.Fprintf(os.Stderr, "htreed: drained with %d leaked pages\n", leaked)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "htreed: drained cleanly: checkpoint ok, leaked_pages=0\n")
}

// scrubSilent keeps only the announced fault modes of a chaos profile: the
// plain on-disk page format has no checksums, so silent modes (bit flips,
// torn/short writes reported as success, lying fsyncs) would be
// manufactured undetectable corruption rather than survivable faults.
func scrubSilent(p pagefile.ChaosProfile) pagefile.ChaosProfile {
	p.ReadCorrupt = 0
	p.WriteTorn = 0
	p.WriteShort = 0
	p.SyncLost = 0
	if p.SyncErr == 0 {
		p.SyncErr = 0.05 // announced fsync failures join the diet
	}
	return p
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "htreed:", msg)
	os.Exit(1)
}

func check(err error) {
	if err != nil {
		fatal(err.Error())
	}
}
