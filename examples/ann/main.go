// Ann: the approximate-nearest-neighbor extension (the paper's named
// future work) plus bulk loading. The example bulk-loads 64-d color
// histograms, then sweeps the approximation knob epsilon, reporting the
// recall/cost trade-off against exact search: every reported neighbor is
// guaranteed within (1+epsilon) of the true same-rank distance, and the
// page reads drop as epsilon grows.
package main

import (
	"fmt"
	"log"

	"hybridtree/internal/core"
	"hybridtree/internal/dataset"
	"hybridtree/internal/dist"
	"hybridtree/internal/pagefile"
)

func main() {
	const dim = 64
	const n = 40000
	const k = 10

	fmt.Printf("bulk loading %d histograms (%d-d)...\n", n, dim)
	data := dataset.ColHist(n, dim, 21)
	rids := make([]core.RecordID, n)
	for i := range rids {
		rids[i] = core.RecordID(i)
	}
	file := pagefile.NewMemFile(pagefile.DefaultPageSize)
	tree, err := core.BulkLoad(file, core.Config{Dim: dim}, data, rids)
	if err != nil {
		log.Fatal(err)
	}
	st, err := tree.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bulk-loaded: height %d, %d data pages, %.0f%% average fill\n\n",
		st.Height, st.DataNodes, st.AvgDataFill*100)

	queries := data[:50]
	m := dist.L1()
	stats := file.Stats()

	// Exact baseline.
	stats.Reset()
	exact := make([][]core.Neighbor, len(queries))
	for i, q := range queries {
		ns, err := tree.SearchKNN(q, k, m)
		if err != nil {
			log.Fatal(err)
		}
		exact[i] = ns
	}
	exactReads := float64(stats.Reads()) / float64(len(queries))
	fmt.Printf("%8s %14s %10s %12s\n", "epsilon", "reads/query", "recall@10", "max ratio")
	fmt.Printf("%8s %14.1f %10s %12s   (exact)\n", "-", exactReads, "1.000", "1.000")

	for _, eps := range []float64{0.1, 0.25, 0.5, 1.0, 2.0} {
		stats.Reset()
		hits, total := 0, 0
		worstRatio := 1.0
		for i, q := range queries {
			ns, err := tree.SearchKNNApprox(q, k, m, eps)
			if err != nil {
				log.Fatal(err)
			}
			truth := make(map[core.RecordID]bool, k)
			for _, e := range exact[i] {
				truth[e.RID] = true
			}
			for j, nb := range ns {
				total++
				if truth[nb.RID] {
					hits++
				}
				if e := exact[i][j].Dist; e > 0 {
					if r := nb.Dist / e; r > worstRatio {
						worstRatio = r
					}
				}
			}
		}
		reads := float64(stats.Reads()) / float64(len(queries))
		fmt.Printf("%8.2f %14.1f %10.3f %12.3f\n",
			eps, reads, float64(hits)/float64(total), worstRatio)
	}
	fmt.Println("\nmax ratio never exceeds 1+epsilon — the approximation guarantee.")
}
