// Shapesearch: similarity search over shape contours via Fourier
// descriptors — the FOURIER workload of the paper's evaluation (its dataset
// was built by Fourier-transforming polygon contours). The example indexes
// 16-d Fourier descriptors of 100K synthetic contours, then retrieves the
// contours most similar to a query shape, and demonstrates the implicit
// dimensionality reduction of Section 3.3: the tree splits mostly on the
// low-order (discriminating) coefficients and rarely on the noisy tail.
package main

import (
	"fmt"
	"log"

	"hybridtree/internal/core"
	"hybridtree/internal/dataset"
	"hybridtree/internal/dist"
	"hybridtree/internal/pagefile"
)

func main() {
	const dim = 16
	const n = 100000

	fmt.Printf("computing %d-d Fourier descriptors for %d contours...\n", dim, n)
	shapes := dataset.FourierGlobal(n, dim, 3)

	file := pagefile.NewMemFile(pagefile.DefaultPageSize)
	tree, err := core.New(file, core.Config{Dim: dim})
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range shapes {
		if err := tree.Insert(s, core.RecordID(i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("index built: %d entries, height %d, %d pages\n",
		tree.Size(), tree.Height(), file.NumPages())

	// Find the shapes most similar to contour 31337 (Euclidean distance on
	// Fourier descriptors approximates contour similarity).
	query := shapes[31337]
	stats := file.Stats()
	stats.Reset()
	matches, err := tree.SearchKNN(query, 8, dist.L2())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshapes most similar to contour #31337 (%d page reads):\n", stats.Reads())
	for i, nb := range matches {
		fmt.Printf("  %d. contour %-7d dist %.5f\n", i+1, nb.RID, nb.Dist)
	}

	// Implicit dimensionality reduction (Lemma 1): count how often each
	// dimension was chosen as a split dimension. Fourier energy
	// concentrates in the low coefficients, so the tree should rarely (or
	// never) split on the tail — those dimensions are eliminated without
	// any explicit dimensionality-reduction step.
	st, err := tree.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistinct split dimensions used: %d of %d\n", st.SplitDimsUsed, dim)
	fmt.Println("(the unused ones are the non-discriminating high-order coefficients)")
}
