package pagefile

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// CrashFile is an in-memory File that models the one property MemFile
// cannot: the difference between an *acknowledged* write and a *durable*
// one. Writes land in a volatile overlay; Sync materializes the overlay
// into the durable image. Crash throws the volatile state away the way a
// power cut would — each unsynced page independently survives intact, is
// lost entirely, or is torn (a prefix of the new bytes over a suffix of the
// old), with the damage drawn from a seeded rng so a whole kill schedule is
// reproducible. The free list is volatile and cleared by Crash, matching
// DiskFile, whose free list is never persisted either.
//
// File *growth* is treated as durable at Allocate time (a Truncate is
// metadata, and the recovery contract in internal/wal only needs page ids
// to stay addressable); page *contents* are durable only after Sync.
//
// Like DiskFile, reads may run concurrently with mutations (the durable
// stack lets lock-free MVCC searches read through the file while a writer
// checkpoints), so all state is guarded by an RWMutex.
type CrashFile struct {
	mu       sync.RWMutex
	pageSize int
	durable  [][]byte
	volatile map[PageID][]byte
	freed    []PageID
	isFree   map[PageID]bool
	stats    Stats
	closed   bool

	// LoseProb and TearProb shape Crash damage per unsynced page: with
	// probability LoseProb the page's volatile contents vanish, with
	// TearProb a torn prefix lands, otherwise the write survives whole.
	LoseProb float64
	TearProb float64
}

// NewCrashFile creates a crash-simulating in-memory page file.
func NewCrashFile(pageSize int) *CrashFile {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &CrashFile{
		pageSize: pageSize,
		volatile: make(map[PageID][]byte),
		isFree:   make(map[PageID]bool),
		LoseProb: 0.4,
		TearProb: 0.3,
	}
}

// PageSize implements File.
func (f *CrashFile) PageSize() int { return f.pageSize }

// Stats implements File.
func (f *CrashFile) Stats() *Stats { return &f.stats }

// NumPages implements File.
func (f *CrashFile) NumPages() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.durable) - len(f.freed)
}

func (f *CrashFile) check(id PageID) error {
	if f.closed {
		return ErrClosed
	}
	if int(id) >= len(f.durable) {
		return fmt.Errorf("%w: %d >= %d", ErrPageBounds, id, len(f.durable))
	}
	if f.isFree[id] {
		return fmt.Errorf("%w: %d", ErrPageFreed, id)
	}
	return nil
}

func (f *CrashFile) page(id PageID) []byte {
	if p, ok := f.volatile[id]; ok {
		return p
	}
	return f.durable[id]
}

// ReadPage implements File: reads observe acknowledged (volatile) contents.
func (f *CrashFile) ReadPage(id PageID, buf []byte) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if err := f.check(id); err != nil {
		return err
	}
	f.stats.AddRandomReads(1)
	copy(buf, f.page(id))
	return nil
}

// ReadPageSeq implements File.
func (f *CrashFile) ReadPageSeq(id PageID, buf []byte) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if err := f.check(id); err != nil {
		return err
	}
	f.stats.AddSeqReads(1)
	copy(buf, f.page(id))
	return nil
}

// WritePage implements File: the write is acknowledged but stays volatile
// until the next Sync.
func (f *CrashFile) WritePage(id PageID, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.check(id); err != nil {
		return err
	}
	if len(data) > f.pageSize {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(data), f.pageSize)
	}
	f.stats.AddWrites(1)
	p, ok := f.volatile[id]
	if !ok {
		p = make([]byte, f.pageSize)
		f.volatile[id] = p
	}
	n := copy(p, data)
	for i := n; i < len(p); i++ {
		p[i] = 0
	}
	return nil
}

// Allocate implements File. Growth is durable immediately (see type doc);
// freed-page reuse comes from the volatile free list.
func (f *CrashFile) Allocate() (PageID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return InvalidPage, ErrClosed
	}
	f.stats.AddAllocs(1)
	if n := len(f.freed); n > 0 {
		id := f.freed[n-1]
		f.freed = f.freed[:n-1]
		delete(f.isFree, id)
		return id, nil
	}
	id := PageID(len(f.durable))
	f.durable = append(f.durable, make([]byte, f.pageSize))
	return id, nil
}

// Free implements File. Frees are volatile: a crash forgets them, exactly
// like DiskFile's unpersisted free list.
func (f *CrashFile) Free(id PageID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.check(id); err != nil {
		return err
	}
	f.stats.AddFrees(1)
	f.freed = append(f.freed, id)
	f.isFree[id] = true
	delete(f.volatile, id)
	return nil
}

// Sync implements File: every volatile page becomes durable.
func (f *CrashFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.stats.AddSyncs(1)
	for id, p := range f.volatile {
		copy(f.durable[id], p)
	}
	clear(f.volatile)
	return nil
}

// Close implements File. Closing is not a crash: the volatile overlay is
// kept, so tests can distinguish a clean shutdown from a power cut (Crash).
func (f *CrashFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

// Reopen makes a closed file usable again, modeling a process restart
// attaching to the same disk.
func (f *CrashFile) Reopen() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = false
}

// VolatilePages returns how many acknowledged pages have not reached the
// durable image — what a crash right now would put at risk.
func (f *CrashFile) VolatilePages() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.volatile)
}

// Crash simulates a power cut: every unsynced page independently survives,
// vanishes, or tears, with damage drawn from a rng seeded by seed (pages
// are visited in ascending id order, so the outcome is a pure function of
// seed and the volatile set). The free list is cleared. The file remains
// usable afterwards, representing the disk as found on reboot.
func (f *CrashFile) Crash(seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rng := rand.New(rand.NewSource(seed))
	ids := make([]PageID, 0, len(f.volatile))
	for id := range f.volatile {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := rng.Float64()
		switch {
		case r < f.LoseProb:
			// lost: durable keeps the old contents
		case r < f.LoseProb+f.TearProb:
			k := rng.Intn(f.pageSize + 1)
			copy(f.durable[id][:k], f.volatile[id][:k])
		default:
			copy(f.durable[id], f.volatile[id])
		}
	}
	clear(f.volatile)
	f.freed = f.freed[:0]
	clear(f.isFree)
}
