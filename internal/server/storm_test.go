package server

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"testing"
	"time"

	"hybridtree/internal/concurrent"
	"hybridtree/internal/core"
	"hybridtree/internal/geom"
	"hybridtree/internal/loadgen"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/sim"
	"hybridtree/internal/wal"
)

// stormProfile is the heavy chaos profile scrubbed of its silent fault
// modes (short writes reported as success, lying fsyncs): those need
// crash-recovery machinery to survive — which the WAL suite covers — and
// would otherwise plant persistent corruption the post-storm differential
// audit could not distinguish from a server bug. Every fault the storm
// injects is announced, so the server's job is to absorb errors, not to
// divine silent corruption. ReadCorrupt stays: the checksum layer above
// chaos detects it and the retry layer rereads.
func stormProfile() pagefile.ChaosProfile {
	p := sim.Profiles["heavy"]
	p.WriteShort = 0
	p.WriteTorn = 0
	p.SyncLost = 0
	p.SyncErr = 0.02
	return p
}

// stormStack is the full production-shaped storage stack of htreed plus a
// checksum layer: mem → chaos → checksum → retry(jitter) → WAL.
type stormStack struct {
	chaos *pagefile.ChaosFile
	sum   *pagefile.ChecksumFile
	retry *pagefile.RetryFile
	log   *wal.MemLog
	tree  *concurrent.Tree
}

func newStormStack(t *testing.T, dim, n int, seed int64) *stormStack {
	t.Helper()
	st := &stormStack{log: wal.NewMemLog()}
	st.chaos = pagefile.NewChaosFile(pagefile.NewMemFile(512), stormProfile(), seed)
	st.chaos.SetEnabled(false) // quiet while seeding
	st.sum = pagefile.NewChecksumFile(st.chaos)
	st.retry = pagefile.NewRetryFile(st.sum, pagefile.RetryPolicy{
		MaxAttempts: 4,
		Backoff:     500 * time.Microsecond,
		MaxBackoff:  4 * time.Millisecond,
		Jitter:      true,
		TripAfter:   64,
		ProbeAfter:  5 * time.Millisecond,
	})
	wf, _, err := wal.Open(st.retry, st.log, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.tree, err = concurrent.New(wf, core.Config{Dim: dim, PageSize: st.sum.PageSize()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	pts := make([]geom.Point, n)
	rids := make([]core.RecordID, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = float32(rng.Float64())
		}
		pts[i], rids[i] = p, core.RecordID(i+1)
	}
	if err := st.tree.InsertBatch(pts, rids); err != nil {
		t.Fatal(err)
	}
	if err := st.tree.Flush(); err != nil {
		t.Fatal(err)
	}
	st.chaos.SetEnabled(true)
	return st
}

// drainAndAudit is the post-storm half of the acceptance gate: chaos off,
// final checkpoint, zero leaked pages, invariants clean — then a cold
// reopen over the same file and log must replay to the identical tree.
func drainAndAudit(t *testing.T, st *stormStack, dim int) {
	t.Helper()
	st.chaos.SetEnabled(false)
	if err := st.tree.Flush(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if leaked := st.tree.LeakedPages(); leaked != 0 {
		t.Fatalf("leaked %d pages after the storm", leaked)
	}
	if err := st.tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants after the storm: %v", err)
	}
	size := st.tree.Size()
	if err := st.tree.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wf, _, err := wal.Open(st.retry, st.log, wal.Options{})
	if err != nil {
		t.Fatalf("reopen wal: %v", err)
	}
	cold, err := concurrent.Open(wf, core.Config{Dim: dim, PageSize: st.sum.PageSize()})
	if err != nil {
		t.Fatalf("reopen tree: %v", err)
	}
	if got := cold.Size(); got != size {
		t.Fatalf("reopened size %d, want %d", got, size)
	}
	if err := cold.CheckInvariants(); err != nil {
		t.Fatalf("invariants after reopen: %v", err)
	}
}

// tallyInvariant asserts the server-side half of the storm contract: the
// per-outcome counters sum exactly to the requests the server received.
func tallyInvariant(t *testing.T, reg *obs.Registry) {
	t.Helper()
	requests := reg.Counter("server_requests_total").Value()
	var sum uint64
	for _, k := range []obs.OutcomeKind{obs.OutcomeOK, obs.OutcomeCancelled,
		obs.OutcomeTimeout, obs.OutcomeShed, obs.OutcomeDegraded, obs.OutcomeError} {
		sum += reg.Counter(`server_request_outcomes_total{outcome="` + k.String() + `"}`).Value()
	}
	if sum != requests {
		t.Fatalf("outcome counters sum to %d but server counted %d requests", sum, requests)
	}
}

func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+3 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: before %d, after %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
		runtime.GC()
	}
}

// TestStormShedNotCrash is the load-storm acceptance gate: an open-loop
// storm at far past capacity, with heavy announced storage faults live
// under the tree, must resolve every request to a mapped status (some
// shed, some served), leak no goroutines, and leave an index that passes
// a cold differential audit.
func TestStormShedNotCrash(t *testing.T) {
	const dim = 4
	before := runtime.NumGoroutine()
	st := newStormStack(t, dim, 3000, 21)

	reg := obs.NewRegistry()
	srv := New(st.tree, Config{
		Dim:          dim,
		EnableWrites: true,
		Workers:      1,
		QueueDepth:   2,
		WriteSlots:   4,
		Registry:     reg,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:  "http://" + ln.Addr().String(),
		Seed:     42,
		Dim:      dim,
		Requests: 1000,
		Rate:     6000,
		Mix:      loadgen.Mix{KNN: 0.4, Box: 0.2, Range: 0.2, Insert: 0.1, Delete: 0.1},
		K:        20,

		DeadlineMs:  1000,
		BudgetPages: 24,
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("storm report:\n%s", rep)
	if err := rep.Check(true); err != nil {
		t.Fatalf("storm invariant: %v", err)
	}

	// Server-side tallies, scraped over the wire like an operator would.
	requests, outcomes, err := loadgen.ScrapeServerTally("http://" + ln.Addr().String())
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	var sum uint64
	for _, v := range outcomes {
		sum += v
	}
	// The scrape itself is not a /v1 request; tallies are quiescent now.
	if sum != requests {
		t.Fatalf("scraped outcomes sum to %d but server counted %d requests", sum, requests)
	}
	// The server may legitimately count more requests than the client saw
	// responses — a request whose client gave up mid-flight still resolves
	// server-side (to cancelled, usually) — but never fewer.
	if requests < uint64(rep.Responses()) {
		t.Fatalf("server counted %d requests but client got %d responses", requests, rep.Responses())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("serve: %v", err)
	}
	tallyInvariant(t, reg)
	drainAndAudit(t, st, dim)
	checkNoGoroutineLeak(t, before)
}

// TestStormDrainMidStorm sends SIGTERM's in-process equivalent — a
// graceful Shutdown — while the storm is still arriving: in-flight
// requests resolve, late arrivals fail in the client transport (the
// listener is gone), nothing crashes, and the index still passes the cold
// audit afterwards.
func TestStormDrainMidStorm(t *testing.T) {
	const dim = 4
	before := runtime.NumGoroutine()
	st := newStormStack(t, dim, 2000, 33)

	reg := obs.NewRegistry()
	srv := New(st.tree, Config{
		Dim:          dim,
		EnableWrites: true,
		Workers:      2,
		QueueDepth:   4,
		Registry:     reg,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	repCh := make(chan *loadgen.Report, 1)
	go func() {
		rep, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL:  "http://" + ln.Addr().String(),
			Seed:     7,
			Dim:      dim,
			Requests: 1200,
			Rate:     3000,
			Mix:      loadgen.Mix{KNN: 0.5, Box: 0.2, Range: 0.2, Insert: 0.1},
			K:        8,

			DeadlineMs:  500,
			BudgetPages: 128,
			Timeout:     3 * time.Second,
		})
		if err != nil {
			t.Error(err)
		}
		repCh <- rep
	}()

	time.Sleep(100 * time.Millisecond) // let the storm build
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("mid-storm shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("serve: %v", err)
	}

	rep := <-repCh
	if rep == nil {
		t.Fatal("no report")
	}
	t.Logf("mid-storm drain report:\n%s", rep)
	if err := rep.Check(false); err != nil {
		t.Fatalf("storm invariant: %v", err)
	}
	if rep.TransportErrors == 0 {
		t.Fatal("drain began mid-storm but every request still reached the server")
	}
	if rep.Responses() == 0 {
		t.Fatal("no request resolved before the drain")
	}

	tallyInvariant(t, reg)
	drainAndAudit(t, st, dim)
	checkNoGoroutineLeak(t, before)
}
