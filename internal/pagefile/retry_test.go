package pagefile

import (
	"errors"
	"testing"
	"time"
)

// retryFixture builds mem <- fault <- retry with a fake clock: now is a
// settable instant and backoff sleeps advance it instead of waiting.
type retryFixture struct {
	mem   *MemFile
	fault *FaultFile
	rf    *RetryFile
	now   time.Time
	slept time.Duration
	buf   []byte
	id    PageID
}

func newRetryFixture(t *testing.T, p RetryPolicy) *retryFixture {
	t.Helper()
	fx := &retryFixture{mem: NewMemFile(64), now: time.Unix(0, 0)}
	id, err := fx.mem.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	fx.id = id
	fx.buf = make([]byte, 64)
	if err := fx.mem.WritePage(id, []byte("hello")); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	fx.fault = NewFaultFile(fx.mem, 1<<30)
	fx.rf = NewRetryFile(fx.fault, p)
	fx.rf.SetClock(func() time.Time { return fx.now },
		func(d time.Duration) { fx.slept += d; fx.now = fx.now.Add(d) })
	return fx
}

func TestRetryRecoversTransientFault(t *testing.T) {
	fx := newRetryFixture(t, RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond})
	// One injected failure, then healed: the first attempt fails, the retry
	// succeeds.
	fx.fault.SetHealAfter(1)
	fx.fault.SetRemaining(0)
	if err := fx.rf.ReadPage(fx.id, fx.buf); err != nil {
		t.Fatalf("read after transient fault: %v", err)
	}
	if string(fx.buf[:5]) != "hello" {
		t.Fatalf("payload = %q, want hello", fx.buf[:5])
	}
	if fx.slept != time.Millisecond {
		t.Fatalf("slept %v, want 1ms (one backoff)", fx.slept)
	}
}

func TestRetryExhaustsOnPersistentFault(t *testing.T) {
	fx := newRetryFixture(t, RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond})
	fx.fault.SetRemaining(0) // fail forever
	err := fx.rf.ReadPage(fx.id, fx.buf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !IsTransient(err) {
		t.Fatalf("exhausted error should still classify transient: %v", err)
	}
	// 3 attempts => 2 backoffs: 1ms + 2ms.
	if fx.slept != 3*time.Millisecond {
		t.Fatalf("slept %v, want 3ms", fx.slept)
	}
}

func TestRetryCorruptOnlyWhenEnabled(t *testing.T) {
	mem := NewMemFile(64)
	ck := NewChecksumFile(mem)
	id, _ := ck.Allocate()
	if err := ck.WritePage(id, []byte("payload")); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	// Flip one payload byte at rest: every reread fails the CRC identically.
	raw := make([]byte, 64)
	_ = mem.ReadPage(id, raw)
	raw[0] ^= 0xFF
	_ = mem.WritePage(id, raw)

	buf := make([]byte, ck.PageSize())
	attempts := 0
	counting := &countingFile{File: ck, onRead: func() { attempts++ }}

	rf := NewRetryFile(counting, RetryPolicy{MaxAttempts: 3})
	if err := rf.ReadPage(id, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	if attempts != 1 {
		t.Fatalf("corrupt read attempted %d times with RetryCorrupt off, want 1", attempts)
	}

	attempts = 0
	rf = NewRetryFile(counting, RetryPolicy{MaxAttempts: 3, RetryCorrupt: true})
	if err := rf.ReadPage(id, buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if attempts != 3 {
		t.Fatalf("corrupt read attempted %d times with RetryCorrupt on, want 3", attempts)
	}
}

// countingFile counts read calls that reach the wrapped file.
type countingFile struct {
	File
	onRead func()
}

func (f *countingFile) ReadPage(id PageID, buf []byte) error {
	f.onRead()
	return f.File.ReadPage(id, buf)
}

func (f *countingFile) ReadPageSeq(id PageID, buf []byte) error {
	f.onRead()
	return f.File.ReadPageSeq(id, buf)
}

// TestBreakerTripShedRecover drives the satellite scenario end to end: the
// breaker trips after N consecutive ChaosFile read faults, sheds without
// touching storage while open, and recovers once the storage heals.
func TestBreakerTripShedRecover(t *testing.T) {
	const trip = 3
	mem := NewMemFile(64)
	id, _ := mem.Allocate()
	_ = mem.WritePage(id, []byte("hello"))
	chaos := NewChaosFile(mem, ChaosProfile{ReadErr: 1}, 42) // every read fails
	fault := NewFaultFile(chaos, 1<<30)                      // heal lever for later
	rf := NewRetryFile(fault, RetryPolicy{
		MaxAttempts: 2,
		TripAfter:   trip,
		ProbeAfter:  time.Minute,
	})
	now := time.Unix(0, 0)
	rf.SetClock(func() time.Time { return now }, func(time.Duration) {})

	buf := make([]byte, 64)
	for i := 0; i < trip; i++ {
		if rf.BreakerState() != "closed" {
			t.Fatalf("breaker %s before trip threshold (fail %d)", rf.BreakerState(), i)
		}
		if err := rf.ReadPage(id, buf); !errors.Is(err, ErrInjected) {
			t.Fatalf("fail %d: err = %v, want ErrInjected", i, err)
		}
	}
	if rf.BreakerState() != "open" {
		t.Fatalf("breaker %s after %d consecutive failures, want open", rf.BreakerState(), trip)
	}

	// Open state sheds fast: ErrCircuitOpen before any attempt reaches the
	// chaos layer, well inside the probe interval.
	injectedSoFar := chaos.Counts().ReadErrs
	now = now.Add(time.Second) // < ProbeAfter
	for i := 0; i < 5; i++ {
		if err := rf.ReadPage(id, buf); !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("shed %d: err = %v, want ErrCircuitOpen", i, err)
		}
	}
	if got := chaos.Counts().ReadErrs; got != injectedSoFar {
		t.Fatalf("open breaker let %d reads reach storage", got-injectedSoFar)
	}
	if !IsTransient(ErrCircuitOpen) {
		t.Fatal("ErrCircuitOpen should classify as transient")
	}

	// Past the probe interval while still broken: the half-open probe fails
	// and the breaker re-opens for another interval.
	now = now.Add(time.Minute)
	if err := rf.ReadPage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("failed probe: err = %v, want ErrInjected", err)
	}
	if rf.BreakerState() != "open" {
		t.Fatalf("breaker %s after failed probe, want open", rf.BreakerState())
	}

	// Heal the storage, advance past the interval: the probe succeeds and
	// the breaker closes.
	chaos.SetEnabled(false)
	now = now.Add(2 * time.Minute)
	if err := rf.ReadPage(id, buf); err != nil {
		t.Fatalf("probe after heal: %v", err)
	}
	if rf.BreakerState() != "closed" {
		t.Fatalf("breaker %s after successful probe, want closed", rf.BreakerState())
	}
	if string(buf[:5]) != "hello" {
		t.Fatalf("payload = %q, want hello", buf[:5])
	}
}

// TestBreakerRecoversAfterFaultFileHeal exercises the FaultFile heal-after-N
// path named in the issue: burn the fuse, let the breaker trip, arm healing,
// and verify reads flow again.
func TestBreakerRecoversAfterFaultFileHeal(t *testing.T) {
	mem := NewMemFile(64)
	id, _ := mem.Allocate()
	_ = mem.WritePage(id, []byte("hello"))
	fault := NewFaultFile(mem, 0) // burnt from the start
	rf := NewRetryFile(fault, RetryPolicy{MaxAttempts: 1, TripAfter: 2, ProbeAfter: time.Minute})
	now := time.Unix(0, 0)
	rf.SetClock(func() time.Time { return now }, func(time.Duration) {})

	buf := make([]byte, 64)
	for i := 0; i < 2; i++ {
		if err := rf.ReadPage(id, buf); !errors.Is(err, ErrInjected) {
			t.Fatalf("fail %d: %v", i, err)
		}
	}
	if rf.BreakerState() != "open" {
		t.Fatalf("breaker %s, want open", rf.BreakerState())
	}
	fault.SetHealAfter(1) // next op fails, then the file is healthy forever
	now = now.Add(time.Minute)
	if err := rf.ReadPage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("probe during heal burst: %v", err)
	}
	now = now.Add(time.Minute)
	if err := rf.ReadPage(id, buf); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if rf.BreakerState() != "closed" {
		t.Fatalf("breaker %s after recovery, want closed", rf.BreakerState())
	}
}

// TestBreakerZeroProbeNeverSheds pins the simulator-facing contract: with
// ProbeAfter == 0 an open breaker half-opens on the very next read, so a
// single-threaded caller is never fast-failed and results stay deterministic.
func TestBreakerZeroProbeNeverSheds(t *testing.T) {
	mem := NewMemFile(64)
	id, _ := mem.Allocate()
	_ = mem.WritePage(id, []byte("hello"))
	fault := NewFaultFile(mem, 0)
	rf := NewRetryFile(fault, RetryPolicy{MaxAttempts: 1, TripAfter: 1, ProbeAfter: 0})

	buf := make([]byte, 64)
	for i := 0; i < 4; i++ {
		if err := rf.ReadPage(id, buf); !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d: err = %v, want ErrInjected (never ErrCircuitOpen)", i, err)
		}
	}
	fault.SetRemaining(1 << 30)
	if err := rf.ReadPage(id, buf); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if rf.BreakerState() != "closed" {
		t.Fatalf("breaker %s, want closed", rf.BreakerState())
	}
}

func TestRetryPassesWritesThrough(t *testing.T) {
	fx := newRetryFixture(t, RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond})
	fx.fault.SetRemaining(0)
	if err := fx.rf.WritePage(fx.id, []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write err = %v, want ErrInjected without retries", err)
	}
	if fx.slept != 0 {
		t.Fatalf("write path slept %v, want 0 (no retry on writes)", fx.slept)
	}
}

// TestRetryJitterDecorrelatesBackoff pins the decorrelated-jitter schedule:
// with an injected rand source, each retry sleeps Backoff + frac×span where
// span = 3×previous-sleep − Backoff, capped at MaxBackoff — and the same
// source yields the same schedule, so jitter stays deterministic under test.
func TestRetryJitterDecorrelatesBackoff(t *testing.T) {
	run := func(fracs []float64) []time.Duration {
		fx := newRetryFixture(t, RetryPolicy{
			MaxAttempts: 5, Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond, Jitter: true})
		var sleeps []time.Duration
		fx.rf.SetClock(nil, func(d time.Duration) { sleeps = append(sleeps, d); fx.now = fx.now.Add(d) })
		i := 0
		fx.rf.SetRand(func() float64 { v := fracs[i%len(fracs)]; i++; return v })
		fx.fault.SetRemaining(0) // every attempt fails
		if err := fx.rf.ReadPage(fx.id, fx.buf); !errors.Is(err, ErrInjected) {
			t.Fatalf("read: err = %v, want ErrInjected", err)
		}
		return sleeps
	}

	// frac = 0.5 exactly: sleep_1 = 1ms (the base), then
	// sleep_{n+1} = 1ms + 0.5×(3×sleep_n − 1ms).
	got := run([]float64{0.5})
	want := []time.Duration{
		1 * time.Millisecond,
		2 * time.Millisecond,    // 1 + 0.5*(3-1)
		3500 * time.Microsecond, // 1 + 0.5*(6-1)
		5750 * time.Microsecond, // 1 + 0.5*(10.5-1)
	}
	if len(got) != len(want) {
		t.Fatalf("sleeps = %v, want %d entries", got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (schedule %v)", i, got[i], want[i], got)
		}
	}

	// Determinism: the same source gives bit-identical schedules.
	a, b := run([]float64{0.17, 0.93, 0.41}), run([]float64{0.17, 0.93, 0.41})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a, b)
		}
	}
	// frac → 1 must stay within the cap.
	for i, d := range run([]float64{0.999999}) {
		if d > 10*time.Millisecond {
			t.Fatalf("sleep %d = %v exceeds MaxBackoff", i, d)
		}
	}
}

// TestRetryJitterOffKeepsDoublingLadder: the zero-value policy keeps the
// exact pre-jitter behavior, so existing deterministic drivers (the
// simulator's pinned digests) are unaffected.
func TestRetryJitterOffKeepsDoublingLadder(t *testing.T) {
	fx := newRetryFixture(t, RetryPolicy{
		MaxAttempts: 4, Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond})
	var sleeps []time.Duration
	fx.rf.SetClock(nil, func(d time.Duration) { sleeps = append(sleeps, d); fx.now = fx.now.Add(d) })
	fx.rf.SetRand(func() float64 { t.Fatal("jitter source consulted with Jitter off"); return 0 })
	fx.fault.SetRemaining(0)
	if err := fx.rf.ReadPage(fx.id, fx.buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read: err = %v, want ErrInjected", err)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("sleeps = %v, want %v", sleeps, want)
		}
	}
}
