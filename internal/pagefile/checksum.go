package pagefile

import (
	"fmt"
	"hash/crc32"
	"sync"
)

// ChecksumOverhead is the number of bytes ChecksumFile reserves at the end
// of each underlying page for the CRC.
const ChecksumOverhead = 4

// ErrChecksum reports that a page's stored checksum does not match its
// contents — the page was torn, partially written, or corrupted at rest.
// It wraps ErrCorrupt so the retry layer classifies it as damage, not as a
// transient device failure.
var ErrChecksum = fmt.Errorf("pagefile: page checksum mismatch (%w)", ErrCorrupt)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChecksumFile wraps a File and maintains a CRC32-C checksum in the last
// four bytes of every page, verified on every read. Its PageSize is the
// inner file's minus ChecksumOverhead: callers see only the payload.
//
// A page whose raw contents are entirely zero is treated as a valid,
// never-written page (freshly allocated pages read as zeros and cannot
// carry a checksum yet); any other corruption — a torn write that
// zero-filled the tail, a flipped bit at rest — fails the CRC and surfaces
// as ErrChecksum. Checksums turn the silent-corruption failure modes
// ChaosFile injects into detected read errors, which is the contract the
// recovery paths above this layer are written against.
type ChecksumFile struct {
	inner File
	bufs  sync.Pool // *[]byte raw pages, inner.PageSize() bytes each
}

// NewChecksumFile wraps inner. The inner page size must exceed
// ChecksumOverhead.
func NewChecksumFile(inner File) *ChecksumFile {
	if inner.PageSize() <= ChecksumOverhead {
		panic(fmt.Sprintf("pagefile: inner page size %d too small for checksums", inner.PageSize()))
	}
	f := &ChecksumFile{inner: inner}
	raw := inner.PageSize()
	f.bufs.New = func() any {
		b := make([]byte, raw)
		return &b
	}
	return f
}

// PageSize implements File: the payload size available to callers.
func (f *ChecksumFile) PageSize() int { return f.inner.PageSize() - ChecksumOverhead }

// Stats implements File.
func (f *ChecksumFile) Stats() *Stats { return f.inner.Stats() }

// NumPages implements File.
func (f *ChecksumFile) NumPages() int { return f.inner.NumPages() }

// Allocate implements File.
func (f *ChecksumFile) Allocate() (PageID, error) { return f.inner.Allocate() }

// Free implements File.
func (f *ChecksumFile) Free(id PageID) error { return f.inner.Free(id) }

// Sync implements File.
func (f *ChecksumFile) Sync() error { return f.inner.Sync() }

// Close implements File.
func (f *ChecksumFile) Close() error { return f.inner.Close() }

func (f *ChecksumFile) read(id PageID, buf []byte, seq bool) error {
	rawp := f.bufs.Get().(*[]byte)
	defer f.bufs.Put(rawp)
	raw := *rawp
	var err error
	if seq {
		err = f.inner.ReadPageSeq(id, raw)
	} else {
		err = f.inner.ReadPage(id, raw)
	}
	if err != nil {
		return err
	}
	payload := raw[:len(raw)-ChecksumOverhead]
	stored := uint32(raw[len(raw)-4]) | uint32(raw[len(raw)-3])<<8 |
		uint32(raw[len(raw)-2])<<16 | uint32(raw[len(raw)-1])<<24
	if stored != crc32.Checksum(payload, castagnoli) {
		if allZero(raw) {
			// Freshly allocated, never written: zeros are the legitimate
			// initial state and carry no checksum.
			copy(buf, payload)
			return nil
		}
		return fmt.Errorf("%w: page %d", ErrChecksum, id)
	}
	copy(buf, payload)
	return nil
}

// ReadPage implements File, verifying the page checksum.
func (f *ChecksumFile) ReadPage(id PageID, buf []byte) error {
	return f.read(id, buf, false)
}

// ReadPageSeq implements File, verifying the page checksum.
func (f *ChecksumFile) ReadPageSeq(id PageID, buf []byte) error {
	return f.read(id, buf, true)
}

// WritePage implements File, appending the payload checksum.
func (f *ChecksumFile) WritePage(id PageID, data []byte) error {
	if len(data) > f.PageSize() {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(data), f.PageSize())
	}
	rawp := f.bufs.Get().(*[]byte)
	defer f.bufs.Put(rawp)
	raw := *rawp
	n := copy(raw, data)
	for i := n; i < len(raw); i++ {
		raw[i] = 0
	}
	crc := crc32.Checksum(raw[:len(raw)-ChecksumOverhead], castagnoli)
	raw[len(raw)-4] = byte(crc)
	raw[len(raw)-3] = byte(crc >> 8)
	raw[len(raw)-2] = byte(crc >> 16)
	raw[len(raw)-1] = byte(crc >> 24)
	return f.inner.WritePage(id, raw)
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
