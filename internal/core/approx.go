package core

import (
	"fmt"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/pqueue"
)

// SearchKNNApprox is (1+epsilon)-approximate k-nearest-neighbor search —
// the query type the paper names as future work ("we intend to support new
// types of queries like approximate nearest neighbor queries efficiently
// using the hybrid tree"). It runs the same best-first traversal as
// SearchKNN but discards any subtree whose MINDIST exceeds
// bound/(1+epsilon), so every reported neighbor's distance is within a
// (1+epsilon) factor of the true k-th distance, in exchange for visiting
// fewer pages. epsilon = 0 degenerates to exact search.
func (t *Tree) SearchKNNApprox(q geom.Point, k int, m dist.Metric, epsilon float64) ([]Neighbor, error) {
	if len(q) != t.cfg.Dim {
		return nil, fmt.Errorf("core: query has dim %d, tree expects %d", len(q), t.cfg.Dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if epsilon < 0 {
		return nil, fmt.Errorf("core: epsilon %g must be >= 0", epsilon)
	}
	shrink := 1 / (1 + epsilon)

	type frontier struct {
		id pagefile.PageID
		br geom.Rect
	}
	var pq pqueue.Min[frontier]
	best := pqueue.NewKBest[Neighbor](k)
	pq.Push(frontier{id: t.root, br: t.cfg.Space}, 0)
	for pq.Len() > 0 {
		f, mindist := pq.Pop()
		if best.Full() && mindist > best.Bound()*shrink {
			break
		}
		n, err := t.store.get(f.id)
		if err != nil {
			return nil, err
		}
		if n.leaf {
			for i, p := range n.pts {
				d := m.Distance(q, p)
				best.Offer(Neighbor{Entry: Entry{Point: p, RID: n.rids[i]}, Dist: d}, d)
			}
			continue
		}
		brWalk := f.br.Clone()
		scratch := geom.Rect{Lo: make(geom.Point, t.cfg.Dim), Hi: make(geom.Point, t.cfg.Dim)}
		var walk func(idx int32)
		walk = func(idx int32) {
			k2 := &n.kd[idx]
			if k2.isLeaf() {
				var md float64
				if live, ok := t.els.Get(uint32(k2.Child), t.cfg.Space); ok {
					if !intersectInto(&scratch, brWalk, live) {
						return
					}
					md = m.MinDistRect(q, scratch)
				} else {
					md = m.MinDistRect(q, brWalk)
				}
				if !best.Full() || md <= best.Bound()*shrink {
					pq.Push(frontier{id: k2.Child, br: brWalk.Clone()}, md)
				}
				return
			}
			d := int(k2.Dim)
			oldHi := brWalk.Hi[d]
			if k2.Lsp < oldHi {
				brWalk.Hi[d] = k2.Lsp
			}
			if brWalk.Hi[d] >= brWalk.Lo[d] {
				walk(k2.Left)
			}
			brWalk.Hi[d] = oldHi
			oldLo := brWalk.Lo[d]
			if k2.Rsp > oldLo {
				brWalk.Lo[d] = k2.Rsp
			}
			if brWalk.Hi[d] >= brWalk.Lo[d] {
				walk(k2.Right)
			}
			brWalk.Lo[d] = oldLo
		}
		if n.kdRoot != kdNone {
			walk(n.kdRoot)
		}
	}
	neighbors, _ := best.Sorted()
	return neighbors, nil
}
