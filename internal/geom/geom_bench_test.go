package geom

import (
	"math/rand"
	"testing"
)

func benchSegs(n int) []Segment {
	rng := rand.New(rand.NewSource(1))
	segs := make([]Segment, n)
	for i := range segs {
		a, b := rng.Float32(), rng.Float32()
		if a > b {
			a, b = b, a
		}
		segs[i] = Segment{Lo: a, Hi: b, ID: i}
	}
	return segs
}

func BenchmarkBipartition200(b *testing.B) {
	segs := benchSegs(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bipartition(segs, 66)
	}
}

func BenchmarkRectIntersects64d(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	mk := func() Rect {
		lo := make(Point, 64)
		hi := make(Point, 64)
		for d := 0; d < 64; d++ {
			x, y := rng.Float32(), rng.Float32()
			if x > y {
				x, y = y, x
			}
			lo[d], hi[d] = x, y
		}
		return Rect{Lo: lo, Hi: hi}
	}
	r1, r2 := mk(), mk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1.Intersects(r2)
	}
}

func BenchmarkMinkowskiVolume64d(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	lo := make(Point, 64)
	hi := make(Point, 64)
	for d := 0; d < 64; d++ {
		lo[d] = rng.Float32() * 0.5
		hi[d] = lo[d] + 0.2
	}
	r := Rect{Lo: lo, Hi: hi}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.MinkowskiVolume(0.1)
	}
}
