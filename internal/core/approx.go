package core

import (
	"context"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
)

// SearchKNNApprox is (1+epsilon)-approximate k-nearest-neighbor search —
// the query type the paper names as future work ("we intend to support new
// types of queries like approximate nearest neighbor queries efficiently
// using the hybrid tree"). It runs the same best-first traversal as
// SearchKNN but discards any subtree whose MINDIST exceeds
// bound/(1+epsilon), so every reported neighbor's distance is within a
// (1+epsilon) factor of the true k-th distance, in exchange for visiting
// fewer pages. epsilon = 0 degenerates to exact search.
func (t *Tree) SearchKNNApprox(q geom.Point, k int, m dist.Metric, epsilon float64) ([]Neighbor, error) {
	c := t.getCtx()
	defer t.putCtx(c)
	return t.searchKNN(nil, c, q, k, m, epsilon, Budget{}, nil)
}

// SearchKNNApproxCtx is SearchKNNApprox with caller-managed scratch state
// and result buffer (see SearchBoxCtx).
func (t *Tree) SearchKNNApproxCtx(c *QueryContext, q geom.Point, k int, m dist.Metric, epsilon float64, dst []Neighbor) ([]Neighbor, error) {
	return t.searchKNN(nil, c, q, k, m, epsilon, Budget{}, dst)
}

// SearchKNNApproxContext is SearchKNNApproxCtx under a request lifecycle
// (see SearchKNNContext): budget exhaustion degrades to best-found-so-far,
// context abandonment returns ctx.Err() with dst unchanged past its input
// length.
func (t *Tree) SearchKNNApproxContext(ctx context.Context, c *QueryContext, q geom.Point, k int, m dist.Metric, epsilon float64, b Budget, dst []Neighbor) ([]Neighbor, error) {
	return t.searchKNN(ctx, c, q, k, m, epsilon, b, dst)
}
