package pagefile

import (
	"fmt"
	"os"
)

// MmapFile is a read-only File backed by a memory-mapped page file. Opening
// an index this way turns every page read into a copy out of the mapping —
// no read(2) syscall, no file-offset arithmetic in the kernel, and the OS
// page cache is shared across processes serving the same index. Mutating
// calls (WritePage, Allocate, Free) return ErrReadOnly, which makes MmapFile
// suitable exactly for the read-only serving paths: query commands and
// benchmark ablations that open a pre-built index.
//
// On platforms without mmap support (or when the mapping itself fails, e.g.
// on an exotic filesystem), OpenMmapFile degrades gracefully: the returned
// file still works, falling back to pread-style ReadAt calls against the
// underlying descriptor. Mapped reports which mode is active.
//
// Reads are safe to run concurrently: the mapping is immutable for the life
// of the file, counters are atomic, and the fallback path uses ReadAt (which
// does not touch the shared file offset). Close requires external exclusion
// against in-flight reads, same as every other File implementation.
type MmapFile struct {
	pageSize int
	f        *os.File
	data     []byte // nil when the mapping failed ⇒ ReadAt fallback
	nPages   int
	stats    Stats
	closed   bool
}

// OpenMmapFile attaches read-only to an existing page file at path and maps
// it into memory. The file must be a whole number of pages. If the platform
// cannot map it, the file is still usable through the ReadAt fallback.
func OpenMmapFile(path string, pageSize int) (*MmapFile, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pagefile: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pagefile: stat %s: %w", path, err)
	}
	if info.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("pagefile: %s size %d is not a multiple of page size %d", path, info.Size(), pageSize)
	}
	m := &MmapFile{
		pageSize: pageSize,
		f:        f,
		nPages:   int(info.Size() / int64(pageSize)),
	}
	if info.Size() > 0 {
		// A failed mapping is not fatal: leave data nil and serve reads
		// through ReadAt. Callers that care can check Mapped().
		if data, err := mmapReadOnly(f, int(info.Size())); err == nil {
			m.data = data
		}
	}
	return m, nil
}

// Mapped reports whether reads are served from a live memory mapping (true)
// or the ReadAt fallback (false).
func (f *MmapFile) Mapped() bool { return f.data != nil }

// PageSize implements File.
func (f *MmapFile) PageSize() int { return f.pageSize }

// Stats implements File.
func (f *MmapFile) Stats() *Stats { return &f.stats }

// NumPages implements File. A read-only file never frees pages, so every
// page in the underlying file is live.
func (f *MmapFile) NumPages() int { return f.nPages }

func (f *MmapFile) read(id PageID, buf []byte) error {
	if f.closed {
		return ErrClosed
	}
	if int(id) >= f.nPages {
		return fmt.Errorf("%w: %d >= %d", ErrPageBounds, id, f.nPages)
	}
	off := int(id) * f.pageSize
	if f.data != nil {
		copy(buf[:f.pageSize], f.data[off:off+f.pageSize])
		return nil
	}
	if _, err := f.f.ReadAt(buf[:f.pageSize], int64(off)); err != nil {
		return fmt.Errorf("pagefile: read page %d: %w", id, err)
	}
	return nil
}

// ReadPage implements File.
func (f *MmapFile) ReadPage(id PageID, buf []byte) error {
	f.stats.AddRandomReads(1)
	return f.read(id, buf)
}

// ReadPageSeq implements File.
func (f *MmapFile) ReadPageSeq(id PageID, buf []byte) error {
	f.stats.AddSeqReads(1)
	return f.read(id, buf)
}

// WritePage implements File; MmapFile is read-only.
func (f *MmapFile) WritePage(id PageID, data []byte) error { return ErrReadOnly }

// Allocate implements File; MmapFile is read-only.
func (f *MmapFile) Allocate() (PageID, error) { return InvalidPage, ErrReadOnly }

// Free implements File; MmapFile is read-only.
func (f *MmapFile) Free(id PageID) error { return ErrReadOnly }

// Sync implements File. A read-only file has nothing to make durable, so
// Sync succeeds trivially; write-shaped layers (the WAL) must reject a
// read-only base up front via the ReadOnly marker instead.
func (f *MmapFile) Sync() error {
	if f.closed {
		return ErrClosed
	}
	f.stats.AddSyncs(1)
	return nil
}

// ReadOnly implements ReadOnlyFile.
func (f *MmapFile) ReadOnly() bool { return true }

// Close unmaps the file and releases the descriptor.
func (f *MmapFile) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	var unmapErr error
	if f.data != nil {
		unmapErr = munmap(f.data)
		f.data = nil
	}
	closeErr := f.f.Close()
	if unmapErr != nil {
		return unmapErr
	}
	return closeErr
}
