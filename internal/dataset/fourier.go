// Package dataset generates the synthetic stand-ins for the paper's two
// evaluation datasets. The originals are not redistributable (FOURIER came
// from Stefan Berchtold, COLHIST from Corel images), so we reproduce their
// generative processes on synthetic inputs; DESIGN.md §4 documents why the
// substitutions preserve the behavior the experiments measure. All
// generators are deterministic in their seed and emit vectors normalized to
// the unit cube, the data space the hybrid tree's cost model assumes.
package dataset

import (
	"math"
	"math/rand"

	"hybridtree/internal/geom"
)

// Fourier generates n dim-dimensional vectors of Fourier coefficients of
// random polygon contours — the paper's FOURIER dataset (1.2M 16-d vectors;
// 8-d and 12-d variants take the first coefficients). Each polygon is a
// star-shaped contour whose radius performs a smoothed random walk around a
// circle; the contour's complex discrete Fourier transform concentrates
// energy in the low-order coefficients, so the trailing dimensions carry
// progressively less discriminating power — the property that makes
// implicit dimensionality reduction (paper §3.3) observable.
func Fourier(n, dim int, seed int64) []geom.Point {
	if dim < 1 || dim > 64 {
		panic("dataset: Fourier supports 1..64 dimensions")
	}
	rng := rand.New(rand.NewSource(seed))
	const vertices = 32
	nCoef := (dim + 1) / 2

	raw := make([][]float64, n)
	for i := range raw {
		raw[i] = fourierVector(rng, vertices, nCoef, dim)
	}
	return normalizePerDim(raw, dim)
}

// FourierGlobal is Fourier with per-dimension centering but a single global
// scale, so the trailing coefficients keep their (tiny) extents relative to
// the leading ones instead of being stretched to full width. This is the
// variant on which the hybrid tree's implicit dimensionality reduction
// (paper §3.3, Lemma 1) is directly observable: the tree simply never
// splits on the non-discriminating tail. The benchmark figures use Fourier
// (per-dimension normalization, the harder high-dimensional workload).
func FourierGlobal(n, dim int, seed int64) []geom.Point {
	if dim < 1 || dim > 64 {
		panic("dataset: FourierGlobal supports 1..64 dimensions")
	}
	rng := rand.New(rand.NewSource(seed))
	const vertices = 32
	nCoef := (dim + 1) / 2
	raw := make([][]float64, n)
	for i := range raw {
		raw[i] = fourierVector(rng, vertices, nCoef, dim)
	}
	return normalizeGlobal(raw, dim)
}

// fourierVector builds one polygon and returns the real/imaginary parts of
// its first nCoef non-DC Fourier coefficients, interleaved.
func fourierVector(rng *rand.Rand, vertices, nCoef, dim int) []float64 {
	// Star-shaped polygon: radius random walk around the unit circle,
	// smoothed so consecutive radii correlate (real shapes are smooth).
	radii := make([]float64, vertices)
	r := 1.0
	for i := range radii {
		r += rng.NormFloat64() * 0.15
		if r < 0.3 {
			r = 0.3
		}
		if r > 2.0 {
			r = 2.0
		}
		radii[i] = r
	}
	// Close the walk smoothly: blend the ends so the contour has no seam.
	for i := 0; i < 4; i++ {
		w := float64(i+1) / 5
		radii[vertices-1-i] = radii[vertices-1-i]*(1-w) + radii[0]*w
	}

	// Complex contour and its DFT. O(vertices * nCoef) suffices here — the
	// coefficient count is small.
	out := make([]float64, 0, dim)
	for k := 1; k <= nCoef; k++ {
		var re, im float64
		for j := 0; j < vertices; j++ {
			theta := 2 * math.Pi * float64(j) / float64(vertices)
			x := radii[j] * math.Cos(theta)
			y := radii[j] * math.Sin(theta)
			arg := -2 * math.Pi * float64(k) * float64(j) / float64(vertices)
			c, s := math.Cos(arg), math.Sin(arg)
			// (x + iy) * (c + is)
			re += x*c - y*s
			im += x*s + y*c
		}
		re /= float64(vertices)
		im /= float64(vertices)
		out = append(out, re)
		if len(out) < dim {
			out = append(out, im)
		}
		if len(out) == dim {
			break
		}
	}
	return out
}

// normalizePerDim rescales every dimension to [0,1] by its own min/max —
// the paper's "feature space is normalized" reading, and the harder
// workload (every dimension stretched to full width).
func normalizePerDim(raw [][]float64, dim int) []geom.Point {
	lo, hi := bounds(raw, dim)
	pts := make([]geom.Point, len(raw))
	for i, v := range raw {
		p := make(geom.Point, dim)
		for d, x := range v {
			ext := hi[d] - lo[d]
			if ext <= 0 {
				p[d] = 0
				continue
			}
			p[d] = clamp01(float32((x - lo[d]) / ext))
		}
		pts[i] = p
	}
	return pts
}

// normalizeGlobal maps the vectors into the unit cube with per-dimension
// centering but a single global scale: the widest dimension spans [0,1] and
// every other dimension keeps its extent *relative* to it.
func normalizeGlobal(raw [][]float64, dim int) []geom.Point {
	lo, hi := bounds(raw, dim)
	globalExt := 0.0
	for d := 0; d < dim; d++ {
		if ext := hi[d] - lo[d]; ext > globalExt {
			globalExt = ext
		}
	}
	if globalExt <= 0 {
		globalExt = 1
	}
	pts := make([]geom.Point, len(raw))
	for i, v := range raw {
		p := make(geom.Point, dim)
		for d, x := range v {
			mid := (lo[d] + hi[d]) / 2
			p[d] = clamp01(float32((x-mid)/globalExt + 0.5))
		}
		pts[i] = p
	}
	return pts
}

// bounds returns per-dimension min and max over raw.
func bounds(raw [][]float64, dim int) (lo, hi []float64) {
	lo = make([]float64, dim)
	hi = make([]float64, dim)
	for d := 0; d < dim; d++ {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for _, v := range raw {
		for d, x := range v {
			if x < lo[d] {
				lo[d] = x
			}
			if x > hi[d] {
				hi[d] = x
			}
		}
	}
	return lo, hi
}

// clamp01 guards against float32 rounding pushing a boundary value outside
// the unit interval.
func clamp01(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
