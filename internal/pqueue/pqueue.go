// Package pqueue provides the priority queues used by best-first
// nearest-neighbor search (Hjaltason–Samet): a min-heap of search-frontier
// entries ordered by MINDIST, and a bounded max-heap that maintains the k
// best candidates seen so far.
package pqueue

// Min is a binary min-heap of values with float64 priorities.
// The zero value is an empty, ready-to-use queue.
type Min[T any] struct {
	vals []T
	pris []float64
}

// Len returns the number of queued items.
func (q *Min[T]) Len() int { return len(q.vals) }

// Reset empties the queue in place, keeping the backing storage for reuse.
// Remaining values are zeroed so a pooled queue never keeps the previous
// query's values reachable.
func (q *Min[T]) Reset() {
	var zero T
	for i := range q.vals {
		q.vals[i] = zero
	}
	q.vals = q.vals[:0]
	q.pris = q.pris[:0]
}

// Push adds value with the given priority.
func (q *Min[T]) Push(value T, priority float64) {
	q.vals = append(q.vals, value)
	q.pris = append(q.pris, priority)
	i := len(q.vals) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.pris[parent] <= q.pris[i] {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

// Pop removes and returns the item with the smallest priority. It must not
// be called on an empty queue.
func (q *Min[T]) Pop() (T, float64) {
	value, priority := q.vals[0], q.pris[0]
	last := len(q.vals) - 1
	q.swap(0, last)
	var zero T
	q.vals[last] = zero // release for GC
	q.vals = q.vals[:last]
	q.pris = q.pris[:last]
	q.siftDown(0)
	return value, priority
}

// PeekPriority returns the smallest priority without removing its item. It
// must not be called on an empty queue.
func (q *Min[T]) PeekPriority() float64 { return q.pris[0] }

func (q *Min[T]) swap(i, j int) {
	q.vals[i], q.vals[j] = q.vals[j], q.vals[i]
	q.pris[i], q.pris[j] = q.pris[j], q.pris[i]
}

func (q *Min[T]) siftDown(i int) {
	n := len(q.vals)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.pris[l] < q.pris[small] {
			small = l
		}
		if r < n && q.pris[r] < q.pris[small] {
			small = r
		}
		if small == i {
			return
		}
		q.swap(i, small)
		i = small
	}
}

// KBest keeps the k items with the smallest priorities seen so far, in a
// max-heap so the current worst member is O(1) to inspect — the pruning
// bound during k-NN search.
type KBest[T any] struct {
	k    int
	vals []T
	pris []float64
}

// NewKBest returns a collector for the k smallest-priority items. k must be
// positive.
func NewKBest[T any](k int) *KBest[T] {
	if k < 1 {
		panic("pqueue: KBest needs k >= 1")
	}
	return &KBest[T]{k: k}
}

// Len returns how many items are currently held (at most k).
func (q *KBest[T]) Len() int { return len(q.vals) }

// K returns the collector's capacity k.
func (q *KBest[T]) K() int { return q.k }

// Reset empties the collector in place (k is unchanged), keeping the backing
// storage for reuse. Held values are zeroed so a pooled collector never keeps
// the previous query's values reachable.
func (q *KBest[T]) Reset() {
	var zero T
	for i := range q.vals {
		q.vals[i] = zero
	}
	q.vals = q.vals[:0]
	q.pris = q.pris[:0]
}

// Full reports whether k items are held.
func (q *KBest[T]) Full() bool { return len(q.vals) == q.k }

// Bound returns the current pruning bound: the largest held priority when
// full, +Inf-like behavior otherwise is the caller's concern — Offer handles
// the not-full case itself.
func (q *KBest[T]) Bound() float64 { return q.pris[0] }

// Offer considers (value, priority); it is kept iff fewer than k items are
// held or priority beats the current worst. Returns whether it was kept.
func (q *KBest[T]) Offer(value T, priority float64) bool {
	if len(q.vals) < q.k {
		q.push(value, priority)
		return true
	}
	if priority >= q.pris[0] {
		return false
	}
	q.vals[0], q.pris[0] = value, priority
	q.siftDown(0)
	return true
}

// Sorted drains the collector and returns the items in ascending priority
// order along with their priorities.
func (q *KBest[T]) Sorted() ([]T, []float64) {
	n := len(q.vals)
	vals := make([]T, n)
	pris := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		vals[i], pris[i] = q.pop()
	}
	return vals, pris
}

// AppendSorted drains the collector, appending its items to dst in ascending
// priority order, and returns the extended slice. Unlike Sorted it allocates
// nothing beyond what growing dst requires, so a caller that recycles its
// result buffer completes the drain allocation-free.
func (q *KBest[T]) AppendSorted(dst []T) []T {
	n := len(q.vals)
	base := len(dst)
	dst = append(dst, q.vals...) // grow by n; overwritten in order below
	for i := n - 1; i >= 0; i-- {
		dst[base+i], _ = q.pop()
	}
	return dst
}

func (q *KBest[T]) push(value T, priority float64) {
	q.vals = append(q.vals, value)
	q.pris = append(q.pris, priority)
	i := len(q.vals) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.pris[parent] >= q.pris[i] {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *KBest[T]) pop() (T, float64) {
	value, priority := q.vals[0], q.pris[0]
	last := len(q.vals) - 1
	q.swap(0, last)
	var zero T
	q.vals[last] = zero
	q.vals = q.vals[:last]
	q.pris = q.pris[:last]
	q.siftDown(0)
	return value, priority
}

func (q *KBest[T]) swap(i, j int) {
	q.vals[i], q.vals[j] = q.vals[j], q.vals[i]
	q.pris[i], q.pris[j] = q.pris[j], q.pris[i]
}

func (q *KBest[T]) siftDown(i int) {
	n := len(q.vals)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && q.pris[l] > q.pris[big] {
			big = l
		}
		if r < n && q.pris[r] > q.pris[big] {
			big = r
		}
		if big == i {
			return
		}
		q.swap(i, big)
		i = big
	}
}
