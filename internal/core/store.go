package core

import (
	"sync"

	"hybridtree/internal/pagefile"
)

// cacheShards is the number of independently-locked cache segments. Sixteen
// keeps lock contention negligible at any realistic GOMAXPROCS while the
// per-shard overhead stays trivial.
const cacheShards = 16

type cacheShard struct {
	mu sync.RWMutex
	m  map[pagefile.PageID]*node
}

// store mediates between decoded nodes and their on-disk pages. It keeps a
// write-through cache of decoded nodes so that tree construction does not
// pay a decode per traversal step, while still charging *every* logical
// node access to the page file's counters: the paper's I/O metric is the
// number of disk accesses a cold query would make, so a cache hit must cost
// the same one logical read as a miss.
//
// The cache is sharded by page id and scratch page buffers come from a
// pool, so any number of goroutines may call get concurrently; alloc, put
// and free mutate the tree and rely on the exclusive locking the
// concurrency layer provides for writers.
type store struct {
	file   pagefile.File
	dim    int
	shards [cacheShards]cacheShard
	bufs   sync.Pool // *[]byte scratch pages, one File.PageSize each
}

func newStore(file pagefile.File, dim int) *store {
	s := &store{file: file, dim: dim}
	for i := range s.shards {
		s.shards[i].m = make(map[pagefile.PageID]*node)
	}
	pageSize := file.PageSize()
	s.bufs.New = func() any {
		b := make([]byte, pageSize)
		return &b
	}
	return s
}

func (s *store) shard(id pagefile.PageID) *cacheShard {
	return &s.shards[uint(id)%cacheShards]
}

// get returns the decoded node for id, counting one logical random read.
// Safe for concurrent callers.
func (s *store) get(id pagefile.PageID) (*node, error) {
	sh := s.shard(id)
	sh.mu.RLock()
	n, ok := sh.m[id]
	sh.mu.RUnlock()
	if ok {
		s.file.Stats().AddRandomReads(1)
		return n, nil
	}
	bufp := s.bufs.Get().(*[]byte)
	if err := s.file.ReadPage(id, *bufp); err != nil {
		s.bufs.Put(bufp)
		return nil, err
	}
	n, err := decodeNode(id, *bufp, s.dim)
	s.bufs.Put(bufp)
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	if cached, ok := sh.m[id]; ok {
		// Another goroutine decoded the page first; keep its copy canonical
		// so writers always see the cached instance.
		n = cached
	} else {
		sh.m[id] = n
	}
	sh.mu.Unlock()
	return n, nil
}

// alloc creates a fresh node of the requested kind backed by a new page.
// The caller must put it once populated.
func (s *store) alloc(leaf bool) (*node, error) {
	id, err := s.file.Allocate()
	if err != nil {
		return nil, err
	}
	n := &node{id: id, leaf: leaf, kdRoot: kdNone}
	sh := s.shard(id)
	sh.mu.Lock()
	sh.m[id] = n
	sh.mu.Unlock()
	return n, nil
}

// put writes the node through to its page.
func (s *store) put(n *node) error {
	bufp := s.bufs.Get().(*[]byte)
	size, err := n.encode(*bufp, s.dim)
	if err == nil {
		err = s.file.WritePage(n.id, (*bufp)[:size])
	}
	s.bufs.Put(bufp)
	if err != nil {
		return err
	}
	sh := s.shard(n.id)
	sh.mu.Lock()
	sh.m[n.id] = n
	sh.mu.Unlock()
	return nil
}

// free releases the node's page and drops it from the cache.
func (s *store) free(id pagefile.PageID) error {
	sh := s.shard(id)
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
	return s.file.Free(id)
}

// dropCache empties the decoded-node cache (used by tests that want to
// force decode paths, and by Close).
func (s *store) dropCache() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m = make(map[pagefile.PageID]*node)
		sh.mu.Unlock()
	}
}
