package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Collector receives finished traces. Ring (recent traces) and SlowRecorder
// (tail-latency traces) both implement it; Tee fans one traced operation out
// to several collectors.
type Collector interface {
	Collect(*Trace)
}

// SlowRecorder is the slow-query flight recorder: a Tracer that retains the
// full span trees (with per-stage attribution) of the slowest operations.
// A trace is admitted when its elapsed time reaches the threshold, and the
// recorder keeps the K slowest admitted traces in a min-heap keyed by
// elapsed time — so the retained set is "the worst K tails seen", not "the
// last K slow ones". A threshold of 0 makes it a pure top-K recorder.
//
// Recording is single-threaded per operation (the Trace is owned by its
// query); the recorder itself is touched once per finished trace, and only
// traces that beat the current floor take the mutex's slow path beyond a
// length check. Disabling the recorder is done by not installing it as a
// tracer — the query path then runs its usual zero-allocation untraced
// code.
type SlowRecorder struct {
	seq         atomic.Uint64
	thresholdNs atomic.Int64
	observed    atomic.Uint64 // finished traces offered to Collect
	admitted    atomic.Uint64 // traces that cleared threshold + floor

	k    int
	mu   sync.Mutex
	heap []*Trace // min-heap on Elapsed; heap[0] is the eviction floor
}

// NewSlowRecorder returns a recorder retaining the k slowest traces
// (minimum 1) at or above threshold.
func NewSlowRecorder(k int, threshold time.Duration) *SlowRecorder {
	if k < 1 {
		k = 1
	}
	r := &SlowRecorder{k: k}
	r.thresholdNs.Store(int64(threshold))
	return r
}

// StartTrace implements Tracer: every operation is traced; Collect decides
// at finish time whether the trace is slow enough to retain.
func (r *SlowRecorder) StartTrace(op string) *Trace {
	return &Trace{Op: op, Seq: r.seq.Add(1), Start: time.Now(), sink: r.Collect}
}

// Collect implements Collector: it admits t when its elapsed time reaches
// the threshold and beats the current K-th slowest retained trace.
func (r *SlowRecorder) Collect(t *Trace) {
	r.observed.Add(1)
	e := int64(t.Elapsed)
	if e < r.thresholdNs.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.heap) < r.k {
		r.heap = append(r.heap, t)
		r.siftUp(len(r.heap) - 1)
		r.admitted.Add(1)
		return
	}
	if e <= int64(r.heap[0].Elapsed) {
		return
	}
	r.heap[0] = t
	r.siftDown(0)
	r.admitted.Add(1)
}

func (r *SlowRecorder) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if r.heap[p].Elapsed <= r.heap[i].Elapsed {
			return
		}
		r.heap[p], r.heap[i] = r.heap[i], r.heap[p]
		i = p
	}
}

func (r *SlowRecorder) siftDown(i int) {
	n := len(r.heap)
	for {
		l, rgt, min := 2*i+1, 2*i+2, i
		if l < n && r.heap[l].Elapsed < r.heap[min].Elapsed {
			min = l
		}
		if rgt < n && r.heap[rgt].Elapsed < r.heap[min].Elapsed {
			min = rgt
		}
		if min == i {
			return
		}
		r.heap[i], r.heap[min] = r.heap[min], r.heap[i]
		i = min
	}
}

// Snapshot returns the retained traces, slowest first.
func (r *SlowRecorder) Snapshot() []*Trace {
	r.mu.Lock()
	out := make([]*Trace, len(r.heap))
	copy(out, r.heap)
	r.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Elapsed > out[b].Elapsed })
	return out
}

// SetThreshold replaces the admission threshold; already-retained faster
// traces stay until evicted by slower ones.
func (r *SlowRecorder) SetThreshold(d time.Duration) { r.thresholdNs.Store(int64(d)) }

// Threshold returns the current admission threshold.
func (r *SlowRecorder) Threshold() time.Duration { return time.Duration(r.thresholdNs.Load()) }

// Observed returns how many finished traces the recorder has seen.
func (r *SlowRecorder) Observed() uint64 { return r.observed.Load() }

// Admitted returns how many traces cleared the threshold and the top-K
// floor over the recorder's lifetime (including since-evicted ones).
func (r *SlowRecorder) Admitted() uint64 { return r.admitted.Load() }

// Retained returns how many traces are currently held.
func (r *SlowRecorder) Retained() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.heap)
}

// K returns the recorder's capacity.
func (r *SlowRecorder) K() int { return r.k }

// tee is the fan-out Tracer Tee builds.
type tee struct {
	seq atomic.Uint64
	cs  []Collector
}

// Tee returns a Tracer delivering every finished trace to each collector —
// typically a Ring (recent queries) plus a SlowRecorder (tail queries), so
// one traced execution feeds both /debug/queries and /debug/slow. Nil
// collectors are skipped; with no non-nil collector it returns Nop().
func Tee(cs ...Collector) Tracer {
	kept := make([]Collector, 0, len(cs))
	for _, c := range cs {
		switch v := c.(type) {
		case nil:
			continue
		case *Ring:
			if v == nil {
				continue
			}
		case *SlowRecorder:
			if v == nil {
				continue
			}
		}
		kept = append(kept, c)
	}
	if len(kept) == 0 {
		return Nop()
	}
	return &tee{cs: kept}
}

// StartTrace implements Tracer.
func (t *tee) StartTrace(op string) *Trace {
	return &Trace{Op: op, Seq: t.seq.Add(1), Start: time.Now(), sink: t.deliver}
}

func (t *tee) deliver(tr *Trace) {
	for _, c := range t.cs {
		c.Collect(tr)
	}
}
