package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"hybridtree/internal/concurrent"
	"hybridtree/internal/core"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// MixedTree is the interface the mixed read-write workload drives: the MVCC
// snapshot wrapper (concurrent.Tree) and the pre-MVCC reader/writer-lock
// baseline (RWLockedTree) both satisfy it.
type MixedTree interface {
	SearchBox(q geom.Rect) ([]core.Entry, error)
	Insert(p geom.Point, rid core.RecordID) error
}

// RWLockedTree is the pre-MVCC concurrency layer preserved as a baseline:
// searches share a reader/writer lock, mutations hold it exclusively. Under
// a write-heavy interleaving every reader stalls behind each in-flight
// mutation (and Go's RWMutex writer preference makes readers queue behind a
// *waiting* writer too) — exactly the degradation the MVCC snapshot read
// path removes, and what the mixed benchmark quantifies.
type RWLockedTree struct {
	mu   sync.RWMutex
	tree *core.Tree
}

// NewRWLockedTree wraps t behind a reader/writer lock. The caller must not
// use t directly afterwards.
func NewRWLockedTree(t *core.Tree) *RWLockedTree { return &RWLockedTree{tree: t} }

// SearchBox runs under the shared (read) lock.
func (t *RWLockedTree) SearchBox(q geom.Rect) ([]core.Entry, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.tree.SearchBox(q)
}

// Insert runs under the exclusive lock.
func (t *RWLockedTree) Insert(p geom.Point, rid core.RecordID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tree.Insert(p, rid)
}

// MixedResult is one mixed-workload measurement. Read latencies are the
// headline: under the RWMutex baseline they degrade with write load, under
// MVCC snapshots they should not.
type MixedResult struct {
	Workers  int
	Reads    int
	Writes   int
	Elapsed  time.Duration
	ReadP50  time.Duration
	ReadP99  time.Duration
	ReadQPS  float64 // reads completed per second of wall clock
	TotalQPS float64
}

// String renders the measurement for logs and EXPERIMENTS.md.
func (r MixedResult) String() string {
	return fmt.Sprintf("workers=%d reads=%d writes=%d elapsed=%v read_p50=%v read_p99=%v read_qps=%.0f",
		r.Workers, r.Reads, r.Writes, r.Elapsed, r.ReadP50, r.ReadP99, r.ReadQPS)
}

// mixedOp is one slot of the deterministic operation schedule.
type mixedOp struct {
	write bool
	idx   int
}

// mixedSchedule interleaves reads and writes 9:1 (every tenth operation is
// an insert), deterministically, so both trees execute the identical
// operation sequence.
func mixedSchedule(reads, writes int) []mixedOp {
	ops := make([]mixedOp, 0, reads+writes)
	r, w := 0, 0
	for r < reads || w < writes {
		if w < writes && (r >= reads || (r+w)%10 == 9) {
			ops = append(ops, mixedOp{write: true, idx: w})
			w++
		} else {
			ops = append(ops, mixedOp{write: false, idx: r})
			r++
		}
	}
	return ops
}

// RunMixedWorkload drives the 90/10 read-write mix: workers goroutines pull
// operations from a shared schedule of len(queries) box searches
// interleaved with len(inserts) inserts (rid base+i). Reads time themselves
// individually; the returned percentiles are over all reads of the run.
func RunMixedWorkload(tr MixedTree, queries []geom.Rect, inserts []geom.Point, base core.RecordID, workers int) (MixedResult, error) {
	if workers < 1 {
		workers = 1
	}
	ops := mixedSchedule(len(queries), len(inserts))
	var (
		next     int64
		nextMu   sync.Mutex
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		latMu    sync.Mutex
		lats     []time.Duration
	)
	take := func() int {
		nextMu.Lock()
		i := int(next)
		next++
		nextMu.Unlock()
		return i
	}
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, len(ops)/workers+1)
			for {
				i := take()
				if i >= len(ops) {
					break
				}
				op := ops[i]
				if op.write {
					if err := tr.Insert(inserts[op.idx], base+core.RecordID(op.idx)); err != nil {
						errOnce.Do(func() { firstErr = err })
						break
					}
					continue
				}
				t0 := time.Now()
				_, err := tr.SearchBox(queries[op.idx])
				local = append(local, time.Since(t0))
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					break
				}
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return MixedResult{}, firstErr
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	res := MixedResult{
		Workers: workers,
		Reads:   len(queries),
		Writes:  len(inserts),
		Elapsed: elapsed,
	}
	if n := len(lats); n > 0 {
		res.ReadP50 = lats[n/2]
		res.ReadP99 = lats[n*99/100]
	}
	if elapsed > 0 {
		res.ReadQPS = float64(len(queries)) / elapsed.Seconds()
		res.TotalQPS = float64(len(ops)) / elapsed.Seconds()
	}
	return res, nil
}

// MixedFixture holds two identically built trees — MVCC snapshot wrapper
// and RWMutex baseline — plus the deterministic mixed workload: box queries
// and fresh insert points disjoint from the seeded records.
type MixedFixture struct {
	MVCC     *concurrent.Tree
	RWLocked *RWLockedTree
	Queries  []geom.Rect
	Inserts  []geom.Point
	RIDBase  core.RecordID
	Dim      int
}

// NewMixedFixture builds n seeded records on two independent in-memory
// trees and derives numReads box queries plus numReads/9 (rounded up)
// insert points, giving the 90/10 mix.
func NewMixedFixture(n, dim, numReads, pageSize int, seed int64) (*MixedFixture, error) {
	rng := newSplitMix(uint64(seed))
	data := make([]geom.Point, n)
	for i := range data {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.float32()
		}
		data[i] = p
	}
	build := func() (*core.Tree, error) {
		tree, err := core.New(pagefile.NewMemFile(pageSize), core.Config{Dim: dim, PageSize: pageSize})
		if err != nil {
			return nil, err
		}
		for i, p := range data {
			if err := tree.Insert(p, core.RecordID(i)); err != nil {
				return nil, fmt.Errorf("insert %d: %w", i, err)
			}
		}
		return tree, nil
	}
	mvccTree, err := build()
	if err != nil {
		return nil, fmt.Errorf("bench: build mvcc fixture: %w", err)
	}
	rwTree, err := build()
	if err != nil {
		return nil, fmt.Errorf("bench: build rwlock fixture: %w", err)
	}
	f := &MixedFixture{
		MVCC:     concurrent.Wrap(mvccTree),
		RWLocked: NewRWLockedTree(rwTree),
		RIDBase:  core.RecordID(n),
		Dim:      dim,
	}
	for i := 0; i < numReads; i++ {
		c := data[int(rng.next()%uint64(n))]
		lo, hi := make(geom.Point, dim), make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			lo[d], hi[d] = c[d]-0.05, c[d]+0.05
		}
		f.Queries = append(f.Queries, geom.Rect{Lo: lo, Hi: hi})
	}
	writes := (numReads + 8) / 9
	for i := 0; i < writes; i++ {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.float32()
		}
		f.Inserts = append(f.Inserts, p)
	}
	return f, nil
}
