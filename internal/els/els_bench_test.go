package els

import (
	"testing"

	"hybridtree/internal/geom"
)

func benchRects(dim int) (geom.Rect, geom.Rect) {
	outer := geom.UnitCube(dim)
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for d := 0; d < dim; d++ {
		lo[d] = 0.2 + float32(d%5)*0.01
		hi[d] = lo[d] + 0.1
	}
	return outer, geom.Rect{Lo: lo, Hi: hi}
}

func BenchmarkEncode64d8bit(b *testing.B) {
	outer, live := benchRects(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(outer, live, 8)
	}
}

func BenchmarkDecode64d8bit(b *testing.B) {
	outer, live := benchRects(64)
	e := Encode(outer, live, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decode(outer, e, 8)
	}
}

func BenchmarkTableGetMemoized(b *testing.B) {
	outer, live := benchRects(64)
	tab := NewTable(8)
	tab.Set(1, outer, live)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Get(1, outer)
	}
}
