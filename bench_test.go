// Package hybridtree_bench holds the testing.B entry points that regenerate
// every table and figure of the paper's evaluation (Section 4). Each
// benchmark runs one experiment per iteration at the default reduced scale
// (a few minutes for the full suite; see cmd/hybridbench -paper for the
// paper's full scale) and reports the headline numbers as custom metrics so
// `go test -bench` output doubles as the reproduction record:
//
//	go test -bench=. -benchmem ./...
//
// Metric naming: series label + x value, e.g. "hybrid-normIO@64d" is the
// hybrid tree's normalized I/O cost at 64 dimensions. The paper's linear
// scan reference lines are 0.1 (I/O) and 1.0 (CPU) by construction.
package hybridtree_bench

import (
	"fmt"
	"strings"
	"testing"

	"hybridtree/internal/bench"
)

// benchOptions is the scale used by the benchmark suite. Deterministic and
// laptop-sized while preserving every qualitative shape of the paper.
func benchOptions() bench.Options {
	o := bench.Defaults()
	o.ColHistN = 20000
	o.FourierN = 40000
	o.Queries = 25
	return o
}

// BenchmarkFig5a_EDAvsVAM_DiskAccesses reproduces Figure 5(a): disk
// accesses per query for EDA-optimal vs VAMSplit node splitting on COLHIST.
func BenchmarkFig5a_EDAvsVAM_DiskAccesses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figA, _, err := bench.Fig5ab(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, figA, "d")
		}
	}
}

// BenchmarkFig5b_EDAvsVAM_CPU reproduces Figure 5(b): CPU time per query
// for EDA-optimal vs VAMSplit node splitting on COLHIST.
func BenchmarkFig5b_EDAvsVAM_CPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, figB, err := bench.Fig5ab(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, figB, "d")
		}
	}
}

// BenchmarkFig5c_ELSPrecision reproduces Figure 5(c): disk accesses vs
// encoded-live-space precision on COLHIST.
func BenchmarkFig5c_ELSPrecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig5c(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, fig, "bits")
		}
	}
}

// BenchmarkFig6ab_Fourier reproduces Figure 6(a,b): normalized I/O and CPU
// cost vs dimensionality on FOURIER, hybrid vs hB vs SR vs linear scan.
func BenchmarkFig6ab_Fourier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figIO, figCPU, err := bench.Fig6(benchOptions(), "FOURIER")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, figIO, "d")
			reportFigure(b, figCPU, "dCPU")
		}
	}
}

// BenchmarkFig6cd_ColHist reproduces Figure 6(c,d): normalized I/O and CPU
// cost vs dimensionality on COLHIST.
func BenchmarkFig6cd_ColHist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figIO, figCPU, err := bench.Fig6(benchOptions(), "COLHIST")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, figIO, "d")
			reportFigure(b, figCPU, "dCPU")
		}
	}
}

// BenchmarkFig7ab_DatabaseSize reproduces Figure 7(a,b): scalability with
// database size on 64-d COLHIST.
func BenchmarkFig7ab_DatabaseSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figIO, figCPU, err := bench.Fig7ab(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, figIO, "K")
			reportFigure(b, figCPU, "KCPU")
		}
	}
}

// BenchmarkFig7cd_L1Distance reproduces Figure 7(c,d): L1 distance-based
// range queries on COLHIST, hybrid vs SR (hB excluded, paper footnote 2).
func BenchmarkFig7cd_L1Distance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figIO, figCPU, err := bench.Fig7cd(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, figIO, "d")
			reportFigure(b, figCPU, "dCPU")
		}
	}
}

// BenchmarkTable1_SplittingStrategies reproduces Table 1: the structural
// audit of splitting strategies across the four index structures.
func BenchmarkTable1_SplittingStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Table1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			var sb strings.Builder
			t.Print(&sb)
			b.Log(sb.String())
		}
	}
}

// BenchmarkTable2_StructureComparison reproduces Table 2: the hybrid tree
// against BR-based and kd-tree-based structures.
func BenchmarkTable2_StructureComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Table2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			var sb strings.Builder
			t.Print(&sb)
			b.Log(sb.String())
		}
	}
}

// BenchmarkAblationSplitPosition isolates the middle-vs-median data-node
// split position claim of Section 3.2.
func BenchmarkAblationSplitPosition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.AblationSplitPosition(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, fig, "d")
		}
	}
}

// BenchmarkAblationQuerySide isolates the EDA objective's query-side
// parameter (Section 3.3).
func BenchmarkAblationQuerySide(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.AblationQuerySide(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, fig, "d")
		}
	}
}

func reportFigure(b *testing.B, figure *bench.Figure, unit string) {
	for _, s := range figure.Series {
		label := strings.ReplaceAll(s.Label, " ", "")
		label = strings.ReplaceAll(label, "(", "")
		label = strings.ReplaceAll(label, ")", "")
		for i, y := range s.Y {
			b.ReportMetric(y, fmt.Sprintf("%s@%g%s", label, figure.X[i], unit))
		}
	}
}

// BenchmarkAblationBulkLoad compares bulk loading vs incremental insertion
// (build time, fill, query I/O).
func BenchmarkAblationBulkLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationBulkLoad(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDPFamily compares the SR-tree and X-tree against the
// hybrid tree.
func BenchmarkAblationDPFamily(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationDPFamily(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
