// Command loadgen fires a seeded open-loop request storm at a running
// htreed and checks the storm invariants: every response carries a mapped
// status and an outcome header, outcome tallies sum to responses, and —
// with -expect-shed — the storm actually drove the server past capacity
// (some 503s) without drowning it (some 200s). Exit status is nonzero if
// any invariant fails, so CI can gate on it directly.
//
//	loadgen -url http://127.0.0.1:8080 -dim 16 -n 2000 -rate 4000 \
//	        -deadline-ms 50 -budget-pages 256 -expect-shed -scrape
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hybridtree/internal/loadgen"
)

func main() {
	var (
		url        = flag.String("url", "http://127.0.0.1:8080", "htreed base URL")
		seed       = flag.Int64("seed", 1, "storm seed (drives every request deterministically)")
		dim        = flag.Int("dim", 0, "index dimensionality (required)")
		n          = flag.Int("n", 1000, "requests to send")
		rate       = flag.Float64("rate", 1000, "arrival rate, requests/second (open loop: arrivals never wait for completions)")
		k          = flag.Int("k", 10, "k for k-NN requests")
		radius     = flag.Float64("radius", 0.1, "radius for range requests")
		knn        = flag.Float64("knn", 0.5, "k-NN weight in the mix")
		box        = flag.Float64("box", 0.25, "box-query weight")
		rng        = flag.Float64("range", 0.25, "range-query weight")
		ins        = flag.Float64("insert", 0, "insert weight (server must run -writes)")
		del        = flag.Float64("delete", 0, "delete weight (server must run -writes)")
		deadlineMs = flag.Int("deadline-ms", 0, "X-Deadline-Ms header (0 = omit)")
		budget     = flag.Int("budget-pages", 0, "X-Budget-Pages header (0 = omit)")
		timeout    = flag.Duration("timeout", 10*time.Second, "client-side per-request timeout")
		expectShed = flag.Bool("expect-shed", false, "fail unless the storm produced both 503s and 200s")
		scrape     = flag.Bool("scrape", false, "scrape /metrics.json after the storm and check the server-side tally invariant")
	)
	flag.Parse()

	if *dim <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -dim is required")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:     *url,
		Seed:        *seed,
		Dim:         *dim,
		Requests:    *n,
		Rate:        *rate,
		Mix:         loadgen.Mix{KNN: *knn, Box: *box, Range: *rng, Insert: *ins, Delete: *del},
		K:           *k,
		Radius:      *radius,
		DeadlineMs:  *deadlineMs,
		BudgetPages: *budget,
		Timeout:     *timeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	fmt.Println(rep)

	failed := false
	if err := rep.Check(*expectShed); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: invariant violated:", err)
		failed = true
	}
	if *scrape {
		requests, outcomes, err := loadgen.ScrapeServerTally(*url)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: scrape:", err)
			failed = true
		} else {
			var sum uint64
			for _, v := range outcomes {
				sum += v
			}
			fmt.Printf("server: requests=%d outcome-sum=%d %v\n", requests, sum, outcomes)
			if sum != requests {
				fmt.Fprintf(os.Stderr, "loadgen: server tally broken: outcomes sum to %d but server counted %d requests\n", sum, requests)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
