package concurrent

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hybridtree/internal/core"
	"hybridtree/internal/geom"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/wal"
)

// newWALTree builds a concurrent.Tree over the durable stack.
func newWALTree(t *testing.T, dim, pageSize int) (*Tree, *pagefile.CrashFile, *wal.MemLog, *pagefile.ChecksumFile) {
	t.Helper()
	inner := pagefile.NewCrashFile(pageSize)
	sum := pagefile.NewChecksumFile(inner)
	log := wal.NewMemLog()
	wf, _, err := wal.Open(sum, log, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(wf, core.Config{Dim: dim, PageSize: sum.PageSize()})
	if err != nil {
		t.Fatal(err)
	}
	return tree, inner, log, sum
}

// TestGroupCommitAmortizesFsync: a burst of concurrent writers, every
// write durable, with far fewer log fsyncs than operations. The tree's
// writer mutex is held while the burst queues, so the commit worker
// cannot outpace the producers and trivially commit one op per batch —
// without that, batch formation (and the assertion below) would be a
// scheduler coin-flip.
func TestGroupCommitAmortizesFsync(t *testing.T) {
	const dim, pageSize = 3, 512
	const total = 400
	tree, inner, log, _ := newWALTree(t, dim, pageSize)

	fsyncs := obs.Default().Counter("wal_fsyncs_total")
	commits := obs.Default().Counter("wal_commits_total")
	fsyncs0, commits0 := fsyncs.Value(), commits.Value()

	g := NewGroupCommitter(tree, 64)
	tree.mu.Lock()
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < total; i++ {
		p := geom.Point{float32(rng.Float64()), float32(rng.Float64()), float32(rng.Float64())}
		wg.Add(1)
		go func(i int, p geom.Point) {
			defer wg.Done()
			if err := g.Insert(p, core.RecordID(i+1)); err != nil {
				t.Errorf("insert %d: %v", i, err)
			}
		}(i, p)
	}
	// Let the queue saturate before the worker may commit anything.
	deadline := time.Now().Add(10 * time.Second)
	for len(g.ch) < cap(g.ch) {
		if time.Now().After(deadline) {
			tree.mu.Unlock()
			t.Fatalf("queue never filled: %d/%d", len(g.ch), cap(g.ch))
		}
		time.Sleep(time.Millisecond)
	}
	tree.mu.Unlock()
	wg.Wait()
	g.Close()

	if got := tree.Size(); got != total {
		t.Fatalf("size %d, want %d", got, total)
	}
	dFsyncs := fsyncs.Value() - fsyncs0
	dCommits := commits.Value() - commits0
	if dCommits == 0 || dFsyncs == 0 {
		t.Fatalf("no commits (%d) or fsyncs (%d) recorded", dCommits, dFsyncs)
	}
	if dFsyncs > total/4 {
		t.Fatalf("fsyncs %d not amortized over %d ops", dFsyncs, total)
	}

	// Everything acknowledged must survive a crash with no checkpoint.
	inner.Crash(50)
	log.Crash(51)
	sum := pagefile.NewChecksumFile(inner)
	wf, rec, err := wal.Open(sum, log, wal.Options{})
	if err != nil {
		t.Fatalf("wal.Open after crash: %v", err)
	}
	if rec.Txs == 0 {
		t.Fatalf("no transactions replayed: %+v", rec)
	}
	recovered, err := Open(wf, core.Config{Dim: dim, PageSize: sum.PageSize()})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	if got := recovered.Size(); got != total {
		t.Fatalf("recovered size %d, want %d", got, total)
	}
	if err := recovered.CheckInvariants(); err != nil {
		t.Fatalf("invariants after recovery: %v", err)
	}
}

// TestGroupCommitMixedOpsWithReaders: inserts and deletes through the
// committer while searches run lock-free; final contents must be exact.
func TestGroupCommitMixedOpsWithReaders(t *testing.T) {
	const dim, pageSize = 2, 512
	tree, _, _, _ := newWALTree(t, dim, pageSize)
	g := NewGroupCommitter(tree, 16)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			q := geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{1, 1}}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := tree.SearchBox(q); err != nil {
					t.Errorf("SearchBox: %v", err)
					return
				}
			}
		}()
	}

	const n = 200
	pts := make([]geom.Point, n)
	rng := rand.New(rand.NewSource(99))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		pts[i] = geom.Point{float32(rng.Float64()), float32(rng.Float64())}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := g.Insert(pts[i], core.RecordID(i+1)); err != nil {
				t.Errorf("insert %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	// Delete the even half concurrently.
	for i := 0; i < n; i += 2 {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			found, err := g.Delete(pts[i], core.RecordID(i+1))
			if err != nil {
				t.Errorf("delete %d: %v", i, err)
			} else if !found {
				t.Errorf("delete %d: not found", i)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	g.Close()

	if got := tree.Size(); got != n/2 {
		t.Fatalf("size %d, want %d", got, n/2)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// Exact content check against the surviving odd half.
	want := map[core.RecordID]bool{}
	for i := 1; i < n; i += 2 {
		want[core.RecordID(i+1)] = true
	}
	got, err := tree.SearchBox(geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d entries, want %d", len(got), len(want))
	}
	for _, e := range got {
		if !want[e.RID] {
			t.Fatalf("unexpected entry %v", e)
		}
	}
	_ = fmt.Sprint()
}

// TestColdCacheReadersRaceGroupCommit is the regression test for the
// unguarded WAL overlay: after a reopen the node cache is cold, so
// lock-free searches miss and read through the wal.File (overlay lookup)
// while the group committer's writes mutate the overlay. Run under -race
// this used to report concurrent map access; without -race it could fatal
// with "concurrent map read and map write".
func TestColdCacheReadersRaceGroupCommit(t *testing.T) {
	const dim, pageSize = 2, 512
	tree, inner, log, _ := newWALTree(t, dim, pageSize)

	// Seed enough points that the tree spans many pages, then crash and
	// reopen: recovery repopulates the overlay, the node cache starts empty.
	rng := rand.New(rand.NewSource(7))
	const seeded = 300
	for i := 0; i < seeded; i++ {
		p := geom.Point{float32(rng.Float64()), float32(rng.Float64())}
		if err := tree.Insert(p, core.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	inner.Crash(60)
	log.Crash(61)
	sum := pagefile.NewChecksumFile(inner)
	wf, rec, err := wal.Open(sum, log, wal.Options{})
	if err != nil {
		t.Fatalf("wal.Open after crash: %v", err)
	}
	if rec.Txs == 0 {
		t.Fatalf("no transactions replayed: %+v", rec)
	}
	cold, err := Open(wf, core.Config{Dim: dim, PageSize: sum.PageSize()})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}

	g := NewGroupCommitter(cold, 16)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := geom.Point{float32(rng.Float64() * 0.5), float32(rng.Float64() * 0.5)}
				q := geom.Rect{Lo: lo, Hi: geom.Point{lo[0] + 0.5, lo[1] + 0.5}}
				if _, err := cold.SearchBox(q); err != nil {
					t.Errorf("SearchBox: %v", err)
					return
				}
			}
		}(r)
	}

	const extra = 200
	var wg sync.WaitGroup
	for i := 0; i < extra; i++ {
		p := geom.Point{float32(rng.Float64()), float32(rng.Float64())}
		wg.Add(1)
		go func(i int, p geom.Point) {
			defer wg.Done()
			if err := g.Insert(p, core.RecordID(seeded+i+1)); err != nil {
				t.Errorf("insert %d: %v", i, err)
			}
		}(i, p)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	g.Close()

	if got := cold.Size(); got != seeded+extra {
		t.Fatalf("size %d, want %d", got, seeded+extra)
	}
	if err := cold.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestGroupCommitCloseDrainsInFlight is the shutdown-ordering hazard test:
// many writers submit while Close races them. Every operation must resolve
// to exactly one verdict — committed (and then durable/visible) or
// ErrClosed — and nothing may panic with send-on-closed-channel, which is
// what the pre-fix unguarded `g.ch <- op` did when a submit lost the race.
func TestGroupCommitCloseDrainsInFlight(t *testing.T) {
	const dim, pageSize = 2, 512
	const writers = 64
	tree, _, _, _ := newWALTree(t, dim, pageSize)

	g := NewGroupCommitter(tree, 8)
	rng := rand.New(rand.NewSource(9))
	pts := make([]geom.Point, writers)
	for i := range pts {
		pts[i] = geom.Point{float32(rng.Float64()), float32(rng.Float64())}
	}

	errs := make([]error, writers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			errs[i] = g.Insert(pts[i], core.RecordID(i+1))
		}(i)
	}
	close(start)
	// Close concurrently with the submit burst: some operations land before
	// the channel closes, the rest must get ErrClosed — never a panic.
	g.Close()
	wg.Wait()

	committed := 0
	for i, err := range errs {
		switch {
		case err == nil:
			committed++
		case errors.Is(err, ErrClosed):
		default:
			t.Fatalf("writer %d: unexpected verdict %v", i, err)
		}
	}
	if got := tree.Size(); got != committed {
		t.Fatalf("tree size %d but %d inserts acknowledged", got, committed)
	}
	// Post-close submits keep resolving (no hang, no panic).
	if err := g.Insert(pts[0], core.RecordID(9999)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Insert: err = %v, want ErrClosed", err)
	}
	if _, err := g.Delete(pts[0], core.RecordID(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Delete: err = %v, want ErrClosed", err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}
