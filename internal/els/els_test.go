package els

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridtree/internal/geom"
)

func TestEncodeDecodeConservative(t *testing.T) {
	outer := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	live := geom.NewRect(geom.Point{0.1, 0.3}, geom.Point{0.4, 0.9})
	for _, bits := range []int{1, 2, 4, 8, 16} {
		e := Encode(outer, live, bits)
		dec := Decode(outer, e, bits)
		if !dec.ContainsRect(live) {
			t.Fatalf("bits=%d: decoded %v does not contain live %v", bits, dec, live)
		}
		if !outer.ContainsRect(dec) {
			t.Fatalf("bits=%d: decoded %v escapes outer", bits, dec)
		}
	}
}

func TestPrecisionImproves(t *testing.T) {
	outer := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	live := geom.NewRect(geom.Point{0.33, 0.21}, geom.Point{0.4, 0.27})
	prevArea := outer.Area()
	for _, bits := range []int{1, 2, 4, 8, 12} {
		dec := Decode(outer, Encode(outer, live, bits), bits)
		a := dec.Area()
		if a > prevArea+1e-12 {
			t.Fatalf("bits=%d: area %g worse than previous %g", bits, a, prevArea)
		}
		prevArea = a
	}
	// With many bits the decoded rect should be close to the live rect.
	dec := Decode(outer, Encode(outer, live, 16), 16)
	if dec.Area() > live.Area()*1.01+1e-9 {
		t.Fatalf("16-bit decode too loose: %g vs %g", dec.Area(), live.Area())
	}
}

func TestEncodingSize(t *testing.T) {
	// 2 boundaries * dim * bits, rounded up to bytes — the paper's
	// 2*num_dimensions*ELSPRECISION accounting (Figure 4).
	outer := geom.UnitCube(64)
	e := Encode(outer, outer, 4)
	if got, want := len(e), 2*64*4/8; got != want {
		t.Fatalf("encoded size = %d bytes, want %d", got, want)
	}
	e3 := Encode(geom.UnitCube(3), geom.UnitCube(3), 3)
	if got, want := len(e3), (2*3*3+7)/8; got != want {
		t.Fatalf("encoded size = %d bytes, want %d", got, want)
	}
}

func TestDegenerateOuter(t *testing.T) {
	outer := geom.NewRect(geom.Point{0.5, 0}, geom.Point{0.5, 1})
	live := outer.Clone()
	dec := Decode(outer, Encode(outer, live, 4), 4)
	if !dec.ContainsRect(live) {
		t.Fatalf("degenerate outer: decoded %v misses live %v", dec, live)
	}
}

func TestTable(t *testing.T) {
	outer := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	tab := NewTable(4)
	if !tab.Enabled() || tab.Bits() != 4 {
		t.Fatal("table misconfigured")
	}
	// Unknown id falls back to outer.
	r, ok := tab.Get(7, outer)
	if ok || !r.Equal(outer) {
		t.Fatal("unknown id should return outer")
	}
	live := geom.NewRect(geom.Point{0.2, 0.2}, geom.Point{0.3, 0.3})
	tab.Set(7, outer, live)
	r, ok = tab.Get(7, outer)
	if !ok || !r.ContainsRect(live) {
		t.Fatalf("get = %v,%v", r, ok)
	}
	if r.Area() >= outer.Area() {
		t.Fatal("encoded live rect should be tighter than outer")
	}
	if tab.MemoryBytes() != 2*2*4/8 {
		t.Fatalf("memory = %d", tab.MemoryBytes())
	}
	tab.Delete(7)
	if tab.Len() != 0 {
		t.Fatal("delete failed")
	}
}

func TestTableDisabled(t *testing.T) {
	outer := geom.UnitCube(2)
	tab := NewTable(0)
	if tab.Enabled() {
		t.Fatal("0 bits should disable")
	}
	tab.Set(1, outer, geom.NewRect(geom.Point{0.4, 0.4}, geom.Point{0.5, 0.5}))
	r, ok := tab.Get(1, outer)
	if ok || !r.Equal(outer) {
		t.Fatal("disabled table must return outer")
	}
	tab.EnlargeToInclude(1, outer, geom.Point{0.9, 0.9})
	if tab.Len() != 0 {
		t.Fatal("disabled table must store nothing")
	}
}

func TestTableBitsRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTable(17) should panic")
		}
	}()
	NewTable(17)
}

func TestEnlargeToInclude(t *testing.T) {
	outer := geom.UnitCube(2)
	tab := NewTable(8)
	p1 := geom.Point{0.25, 0.25}
	p2 := geom.Point{0.75, 0.5}
	tab.EnlargeToInclude(1, outer, p1)
	r, _ := tab.Get(1, outer)
	if !r.Contains(p1) {
		t.Fatalf("live %v misses %v", r, p1)
	}
	tab.EnlargeToInclude(1, outer, p2)
	r, _ = tab.Get(1, outer)
	if !r.Contains(p1) || !r.Contains(p2) {
		t.Fatalf("live %v misses a point", r)
	}
}

// Property: decoded rectangle always contains the live rectangle and stays
// inside outer, for random rects and precisions.
func TestConservativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(16)
		bits := 1 + rng.Intn(16)
		olo, ohi := make(geom.Point, dim), make(geom.Point, dim)
		llo, lhi := make(geom.Point, dim), make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			a, b := rng.Float32(), rng.Float32()
			if a > b {
				a, b = b, a
			}
			olo[d], ohi[d] = a, b
			// live inside outer
			u, v := rng.Float32(), rng.Float32()
			if u > v {
				u, v = v, u
			}
			llo[d] = a + u*(b-a)
			lhi[d] = a + v*(b-a)
		}
		outer := geom.Rect{Lo: olo, Hi: ohi}
		live := geom.Rect{Lo: llo, Hi: lhi}
		dec := Decode(outer, Encode(outer, live, bits), bits)
		return dec.ContainsRect(live) && outer.ContainsRect(dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
