package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// finish stamps a trace with a synthetic elapsed time and delivers it to
// its sink, bypassing the wall clock so admission tests are deterministic.
func finish(tr *Trace, elapsed time.Duration) {
	tr.Elapsed = elapsed
	if tr.sink != nil {
		tr.sink(tr)
	}
}

func TestSlowRecorderThresholdAndTopK(t *testing.T) {
	r := NewSlowRecorder(3, 10*time.Millisecond)
	// Below threshold: observed but never admitted.
	finish(r.StartTrace("fast"), 1*time.Millisecond)
	if r.Retained() != 0 {
		t.Fatalf("sub-threshold trace retained")
	}
	// Fill to K.
	for _, d := range []time.Duration{20, 30, 40} {
		finish(r.StartTrace("slow"), d*time.Millisecond)
	}
	if r.Retained() != 3 {
		t.Fatalf("retained = %d, want 3", r.Retained())
	}
	// A trace slower than the floor evicts the 20ms one...
	finish(r.StartTrace("slower"), 50*time.Millisecond)
	// ...and one at/below the floor is rejected.
	finish(r.StartTrace("floor"), 25*time.Millisecond)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	want := []time.Duration{50, 40, 30}
	for i, tr := range snap {
		if tr.Elapsed != want[i]*time.Millisecond {
			t.Fatalf("snapshot[%d].Elapsed = %v, want %v (order: slowest first)", i, tr.Elapsed, want[i]*time.Millisecond)
		}
	}
	if r.Observed() != 6 {
		t.Fatalf("observed = %d, want 6", r.Observed())
	}
	if r.Admitted() != 4 {
		t.Fatalf("admitted = %d, want 4 (3 fills + 1 eviction)", r.Admitted())
	}
}

func TestSlowRecorderSetThreshold(t *testing.T) {
	r := NewSlowRecorder(8, 0)
	if r.Threshold() != 0 {
		t.Fatalf("threshold = %v", r.Threshold())
	}
	finish(r.StartTrace("any"), 1)
	if r.Retained() != 1 {
		t.Fatal("zero threshold must admit everything")
	}
	r.SetThreshold(time.Second)
	finish(r.StartTrace("fast"), time.Millisecond)
	if r.Retained() != 1 {
		t.Fatal("raised threshold admitted a fast trace")
	}
}

func TestSlowRecorderConcurrentCollect(t *testing.T) {
	r := NewSlowRecorder(16, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				finish(r.StartTrace("op"), time.Duration(w*1000+i))
			}
		}(w)
	}
	wg.Wait()
	if r.Observed() != 4000 {
		t.Fatalf("observed = %d", r.Observed())
	}
	snap := r.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("retained = %d", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Elapsed > snap[i-1].Elapsed {
			t.Fatalf("snapshot not sorted at %d: %v > %v", i, snap[i].Elapsed, snap[i-1].Elapsed)
		}
	}
	// Values are w*1000+i, w<8, i<500; the 16 slowest are 7484..7499.
	if snap[0].Elapsed != 7499 || snap[15].Elapsed != 7484 {
		t.Fatalf("top-K wrong: [%v .. %v]", snap[0].Elapsed, snap[15].Elapsed)
	}
}

func TestTeeFansOut(t *testing.T) {
	ring := NewRing(4)
	slow := NewSlowRecorder(4, 0)
	tr := Tee(ring, slow).StartTrace("box")
	if tr == nil {
		t.Fatal("tee returned nil trace")
	}
	finish(tr, time.Millisecond)
	if ring.Total() != 1 {
		t.Fatalf("ring missed the trace: total=%d", ring.Total())
	}
	if slow.Observed() != 1 || slow.Retained() != 1 {
		t.Fatalf("recorder missed the trace: observed=%d", slow.Observed())
	}
}

func TestTeeSkipsNils(t *testing.T) {
	var nilRing *Ring
	var nilSlow *SlowRecorder
	if tr := Tee(nil, nilRing, nilSlow).StartTrace("x"); tr != nil {
		t.Fatal("all-nil tee must be the nop tracer")
	}
	ring := NewRing(2)
	tr := Tee(nilSlow, ring).StartTrace("x")
	finish(tr, 1)
	if ring.Total() != 1 {
		t.Fatal("tee with one live collector dropped the trace")
	}
}

func TestStageSetJSONAndString(t *testing.T) {
	tr := NewTrace("knn")
	tr.AddQueueWait(1000)
	tr.AddQueueWait(-5) // ignored
	tr.AddPageRead(2000)
	tr.AddPageRead(3000)
	tr.AddWALFsync(4000)
	tr.AddCompute(500)
	tr.Elapsed = 12000
	s := tr.Stages
	if s == nil || s.QueueWaitNs != 1000 || s.PageReads != 2 || s.PageReadNs != 5000 ||
		s.WALFsyncs != 1 || s.ComputeOps != 1 {
		t.Fatalf("stage set = %+v", s)
	}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"queue_wait_ns":1000`) || !strings.Contains(string(data), `"page_reads":2`) {
		t.Fatalf("stage JSON missing fields: %s", data)
	}
	out := tr.String()
	if !strings.Contains(out, "stages:") || !strings.Contains(out, "queue_wait=") || !strings.Contains(out, "other=") {
		t.Fatalf("String() missing stage line:\n%s", out)
	}

	// Stage-free traces stay lean: no Stages allocation, no JSON noise.
	plain := NewTrace("box")
	if data, _ := json.Marshal(plain); strings.Contains(string(data), "stages") {
		t.Fatalf("stage-free trace leaked stages into JSON: %s", data)
	}

	// Nil traces swallow stage calls like every other Trace method.
	var nilTr *Trace
	nilTr.AddQueueWait(1)
	nilTr.AddPageRead(1)
	nilTr.AddWALFsync(1)
	nilTr.AddCompute(1)
}
