package pagefile

import "errors"

// ErrInjected is the error produced by a FaultFile when its fuse burns.
var ErrInjected = errors.New("pagefile: injected fault")

// FaultFile wraps a File and fails operations once a countdown of successful
// operations is exhausted. It exists for failure-injection tests: index
// structures must surface storage errors to their callers, never swallow
// them or corrupt in-memory state.
type FaultFile struct {
	File
	// Remaining is the number of operations allowed to succeed before every
	// subsequent operation fails with ErrInjected.
	Remaining int
}

// NewFaultFile wraps inner; the first n operations succeed, the rest fail.
func NewFaultFile(inner File, n int) *FaultFile {
	return &FaultFile{File: inner, Remaining: n}
}

func (f *FaultFile) spend() error {
	if f.Remaining <= 0 {
		return ErrInjected
	}
	f.Remaining--
	return nil
}

// ReadPage implements File with fault injection.
func (f *FaultFile) ReadPage(id PageID, buf []byte) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.File.ReadPage(id, buf)
}

// ReadPageSeq implements File with fault injection.
func (f *FaultFile) ReadPageSeq(id PageID, buf []byte) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.File.ReadPageSeq(id, buf)
}

// WritePage implements File with fault injection.
func (f *FaultFile) WritePage(id PageID, data []byte) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.File.WritePage(id, data)
}

// Allocate implements File with fault injection.
func (f *FaultFile) Allocate() (PageID, error) {
	if err := f.spend(); err != nil {
		return InvalidPage, err
	}
	return f.File.Allocate()
}

// Free implements File with fault injection.
func (f *FaultFile) Free(id PageID) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.File.Free(id)
}
