package dist

// DominatesL2 reports whether m(a,b) >= L2(a,b) for all points, i.e.
// whether a Euclidean lower bound is also a lower bound under m. Distance
//-based regions (the SR-tree's bounding spheres) are defined in Euclidean
// terms; when a query arrives under a different metric the sphere can only
// be used for pruning if this holds. L_p norms with p <= 2 dominate L2
// (power-mean inequality), as do weighted variants whose weights are all
// >= 1; for anything else we conservatively answer false and the caller
// falls back to rectangle-only pruning.
func DominatesL2(m Metric) bool {
	switch v := m.(type) {
	case LpMetric:
		return v.P <= 2
	case euclidean:
		return true
	case WeightedLp:
		if v.P > 2 {
			return false
		}
		for _, w := range v.Weights {
			if w < 1 {
				return false
			}
		}
		return true
	default:
		return false
	}
}
