package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"
)

// NewMux builds the introspection handler tree:
//
//	/healthz        readiness probe: "ok" once the mux is serving
//	/metrics        Prometheus text exposition of reg
//	/metrics.json   the same registry as JSON
//	/debug/queries  recent finished traces from ring, newest first
//	                (?n=LIMIT, ?op=FILTER)
//	/debug/slow     the slow-query flight recorder: full span trees with
//	                per-stage attribution, slowest first (?n=LIMIT,
//	                ?op=FILTER)
//	/debug/vars     expvar
//	/debug/pprof/   the standard pprof handlers
//
// ring and slow may be nil, in which case the corresponding debug endpoint
// reports an empty list.
func NewMux(reg *Registry, ring *Ring, slow *SlowRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		var traces []*Trace
		if ring != nil {
			traces = ring.Snapshot()
		}
		writeTraces(w, r, traces)
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		var traces []*Trace
		if slow != nil {
			traces = slow.Snapshot()
		}
		writeTraces(w, r, traces)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeTraces applies the shared ?op= / ?n= filters and renders traces as
// indented JSON.
func writeTraces(w http.ResponseWriter, r *http.Request, traces []*Trace) {
	if op := r.URL.Query().Get("op"); op != "" {
		kept := traces[:0]
		for _, t := range traces {
			if t.Op == op {
				kept = append(kept, t)
			}
		}
		traces = kept
	}
	if ns := r.URL.Query().Get("n"); ns != "" {
		if n, err := strconv.Atoi(ns); err == nil && n >= 0 && n < len(traces) {
			traces = traces[:n]
		}
	}
	if traces == nil {
		traces = []*Trace{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(traces)
}

// Serve starts the introspection endpoint on addr (e.g. "localhost:6060";
// port 0 picks a free port) and serves it on a background goroutine. The
// returned listener address reports the bound port; stop the server with
// Shutdown (graceful) or Close.
func Serve(addr string, reg *Registry, ring *Ring, slow *SlowRecorder) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: NewMux(reg, ring, slow)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}

// Shutdown gracefully stops a server started by Serve: it stops accepting
// connections, waits up to timeout for in-flight scrapes to finish, then
// force-closes whatever remains. Always returns with the server stopped.
func Shutdown(srv *http.Server, timeout time.Duration) error {
	if srv == nil {
		return nil
	}
	if timeout <= 0 {
		return srv.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
		return err
	}
	return nil
}

// DumpText writes every registered metric whose name starts with one of the
// prefixes in Prometheus text form — the end-of-run dump the CLIs print so
// durability and process-health cost is visible without standing up the
// HTTP mux. No prefixes dumps everything.
func (r *Registry) DumpText(w io.Writer, prefixes ...string) {
	match := func(name string) bool {
		if len(prefixes) == 0 {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	r.mu.RLock()
	type line struct {
		name string
		text string
	}
	var lines []line
	for name, c := range r.counters {
		if match(name) {
			lines = append(lines, line{name, fmt.Sprintf("%s %d", name, c.Value())})
		}
	}
	for name, g := range r.gauges {
		if match(name) {
			lines = append(lines, line{name, fmt.Sprintf("%s %d", name, g.Value())})
		}
	}
	for name, h := range r.histograms {
		if match(name) {
			s := h.Snapshot()
			mean := float64(0)
			if s.Count > 0 {
				mean = float64(s.Sum) / float64(s.Count)
			}
			lines = append(lines, line{name, fmt.Sprintf("%s count=%d sum=%d mean=%.0f p50=%.0f p99=%.0f",
				name, s.Count, s.Sum, mean, h.Quantile(0.5), h.Quantile(0.99))})
		}
	}
	r.mu.RUnlock()
	sort.Slice(lines, func(a, b int) bool { return lines[a].name < lines[b].name })
	for _, l := range lines {
		fmt.Fprintln(w, l.text)
	}
}
