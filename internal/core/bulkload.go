package core

import (
	"fmt"
	"sort"

	"hybridtree/internal/els"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// BulkLoad builds a hybrid tree over a whole dataset at once. It recursively
// partitions the data with the configured split policy into data pages
// filled to ~bulkFill of capacity, then packs the resulting split tree into
// index pages top-down, so the final structure is exactly the shape
// incremental insertion aims for — clean single-dimension splits, kd-tree
// intra-node organization, dimensionality-independent fanout — but with
// higher utilization and no intermediate splits. The returned tree supports
// all subsequent operations (Insert, Delete, every search).
//
// The paper's VAMSplit reference [24] is a bulk-loading algorithm of this
// family; BulkLoad uses the tree's own policy (EDA by default), so bulk and
// incremental builds stay comparable.
func BulkLoad(file pagefile.File, cfg Config, pts []geom.Point, rids []RecordID) (*Tree, error) {
	if len(pts) != len(rids) {
		return nil, fmt.Errorf("core: %d points but %d record ids", len(pts), len(rids))
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if file.PageSize() != cfg.PageSize {
		return nil, fmt.Errorf("core: file page size %d != configured %d", file.PageSize(), cfg.PageSize)
	}
	for i, p := range pts {
		if len(p) != cfg.Dim {
			return nil, fmt.Errorf("core: point %d has dim %d, want %d", i, len(p), cfg.Dim)
		}
		if !cfg.Space.Contains(p) {
			return nil, fmt.Errorf("core: point %d outside the data space", i)
		}
	}

	t := &Tree{
		cfg:     cfg,
		file:    file,
		store:   newStore(file, cfg.Dim),
		els:     els.NewTable(cfg.ELSBits),
		elsHead: pagefile.InvalidPage,
	}
	metaID, err := file.Allocate()
	if err != nil {
		return nil, err
	}
	t.meta = metaID

	if len(pts) == 0 {
		root, err := t.store.alloc(true)
		if err != nil {
			return nil, err
		}
		if err := t.store.put(root); err != nil {
			return nil, err
		}
		t.root = root.id
		t.height = 1
		t.publishNow()
		return t, t.writeMeta()
	}

	// Work on index slices so the caller's data is not reordered.
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	split, err := t.bulkSplit(pts, rids, order)
	if err != nil {
		return nil, err
	}
	rootID, height, err := t.bulkPack(split)
	if err != nil {
		return nil, err
	}
	t.root = rootID
	t.height = height
	t.size = len(pts)
	if t.els.Enabled() {
		if err := t.RebuildELS(); err != nil {
			return nil, err
		}
	}
	t.publishNow()
	return t, t.writeMeta()
}

// bulkFill is the target data-page fill fraction for bulk loads; the
// remaining headroom absorbs future inserts without immediate splits.
const bulkFill = 0.85

// bulkNode is a node of the in-memory split tree: either a finished data
// page (leaf) or a clean single-dimension split.
type bulkNode struct {
	page        pagefile.PageID // leaf: the data page
	dim         uint16
	pos         float32
	left, right *bulkNode
	leaves      int
}

// bulkSplit recursively partitions the points (by index) into data pages.
func (t *Tree) bulkSplit(pts []geom.Point, rids []RecordID, order []int) (*bulkNode, error) {
	target := int(bulkFill * float64(t.cfg.dataCapacity()))
	if target < 1 {
		target = 1
	}
	if len(order) <= target {
		n, err := t.store.alloc(true)
		if err != nil {
			return nil, err
		}
		for _, i := range order {
			n.appendPoint(pts[i], rids[i])
		}
		if err := t.store.put(n); err != nil {
			return nil, err
		}
		return &bulkNode{page: n.id, leaves: 1}, nil
	}

	// Policy-chosen split over this subset; clamp the cut so both sides
	// can still fill pages reasonably.
	sub := make([]geom.Point, len(order))
	for i, j := range order {
		sub[i] = pts[j]
	}
	dim, pos := t.cfg.Policy.ChooseDataSplit(sub, geom.BoundingRect(sub))
	sort.SliceStable(order, func(a, b int) bool { return pts[order[a]][dim] < pts[order[b]][dim] })
	cut := sort.Search(len(order), func(i int) bool { return pts[order[i]][dim] > pos })
	// Round the cut to a multiple of the page target (the VAMSplit trick):
	// the left recursion then tiles into full pages and only the rightmost
	// page of the whole build carries the remainder.
	cut = (cut + target/2) / target * target
	maxCut := (len(order) - 1) / target * target
	if cut > maxCut {
		cut = maxCut
	}
	if cut < target {
		cut = target
	}
	split := (pts[order[cut-1]][dim] + pts[order[cut]][dim]) / 2

	left, err := t.bulkSplit(pts, rids, order[:cut])
	if err != nil {
		return nil, err
	}
	right, err := t.bulkSplit(pts, rids, order[cut:])
	if err != nil {
		return nil, err
	}
	return &bulkNode{dim: uint16(dim), pos: split, left: left, right: right,
		leaves: left.leaves + right.leaves}, nil
}

// bulkPack cuts the split tree into index pages of uniform height (every
// data page must sit at level 1, so siblings pack to equal heights, with
// single-child chains padding shallow corners). Returns the root page and
// the tree height.
func (t *Tree) bulkPack(b *bulkNode) (pagefile.PageID, int, error) {
	// The packing budget is half the page fanout: cutting a binary split
	// tree into pieces of at most budget leaves can yield up to twice that
	// many pieces in a node, which must still fit the page.
	budget := t.cfg.maxFanout() / 2
	if budget < 2 {
		budget = 2
	}
	// Height needed for L data pages with this fanout budget.
	height := 1
	capacity := 1
	for capacity < b.leaves {
		capacity *= budget
		height++
	}
	id, err := t.bulkPackTo(b, height, budget)
	return id, height, err
}

// bulkPackTo packs subtree b into a node of exactly the target height.
func (t *Tree) bulkPackTo(b *bulkNode, target, budget int) (pagefile.PageID, error) {
	if b.left == nil {
		// A lone data page below a tall level: pad with single-child index
		// nodes so every data page sits at level 1.
		id := b.page
		for h := 2; h <= target; h++ {
			wrap, err := t.store.alloc(false)
			if err != nil {
				return pagefile.InvalidPage, err
			}
			wrap.kd = []kdNode{{Left: kdNone, Right: kdNone, Child: id}}
			wrap.kdRoot = 0
			if err := t.store.put(wrap); err != nil {
				return pagefile.InvalidPage, err
			}
			id = wrap.id
		}
		return id, nil
	}

	// Capacity of one child subtree at the level below.
	childCap := 1
	for h := 2; h < target; h++ {
		childCap *= budget
	}
	// Expand the cut until every member fits a child subtree.
	cut := map[*bulkNode]bool{b: true}
	for {
		var expand *bulkNode
		for c := range cut {
			if c.left != nil && c.leaves > childCap {
				expand = c
				break
			}
		}
		if expand == nil {
			break
		}
		delete(cut, expand)
		cut[expand.left] = true
		cut[expand.right] = true
	}

	n, err := t.store.alloc(false)
	if err != nil {
		return pagefile.InvalidPage, err
	}
	var build func(cur *bulkNode) (int32, error)
	build = func(cur *bulkNode) (int32, error) {
		if cut[cur] {
			child, err := t.bulkPackTo(cur, target-1, budget)
			if err != nil {
				return kdNone, err
			}
			idx := int32(len(n.kd))
			n.kd = append(n.kd, kdNode{Left: kdNone, Right: kdNone, Child: child})
			return idx, nil
		}
		idx := int32(len(n.kd))
		n.kd = append(n.kd, kdNode{Dim: cur.dim, Lsp: cur.pos, Rsp: cur.pos})
		l, err := build(cur.left)
		if err != nil {
			return kdNone, err
		}
		r, err := build(cur.right)
		if err != nil {
			return kdNone, err
		}
		n.kd[idx].Left, n.kd[idx].Right = l, r
		return idx, nil
	}
	root, err := build(b)
	if err != nil {
		return pagefile.InvalidPage, err
	}
	n.kdRoot = root
	if size := n.serializedSize(t.cfg.Dim); size > t.cfg.PageSize {
		return pagefile.InvalidPage, fmt.Errorf("core: bulk-packed node %d needs %d bytes (page %d)", n.id, size, t.cfg.PageSize)
	}
	if err := t.store.put(n); err != nil {
		return pagefile.InvalidPage, err
	}
	return n.id, nil
}
