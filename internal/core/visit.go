package core

import (
	"fmt"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// errStopVisit is the internal sentinel used to unwind an early-terminated
// visitor walk; it is never returned to callers.
var errStopVisit = fmt.Errorf("core: visitor stop")

// SearchBoxFunc streams every entry inside q to fn without materializing a
// result slice; fn returning false stops the search early (useful for
// EXISTS-style predicates and LIMIT queries). The Entry's Point is shared
// with the node cache and must be cloned if retained.
func (t *Tree) SearchBoxFunc(q geom.Rect, fn func(Entry) bool) error {
	if q.Dim() != t.cfg.Dim {
		return fmt.Errorf("core: query has dim %d, tree expects %d", q.Dim(), t.cfg.Dim)
	}
	err := t.visitBox(t.root, t.cfg.Space, q, fn)
	if err == errStopVisit {
		return nil
	}
	return err
}

func (t *Tree) visitBox(id pagefile.PageID, br geom.Rect, q geom.Rect, fn func(Entry) bool) error {
	n, err := t.store.get(id)
	if err != nil {
		return err
	}
	if n.leaf {
		for i, p := range n.pts {
			if q.Contains(p) {
				if !fn(Entry{Point: p, RID: n.rids[i]}) {
					return errStopVisit
				}
			}
		}
		return nil
	}
	if n.kdRoot == kdNone {
		return nil
	}
	type visit struct {
		child pagefile.PageID
		br    geom.Rect
	}
	var visits []visit
	brWalk := br.Clone()
	var walk func(idx int32)
	walk = func(idx int32) {
		k := &n.kd[idx]
		if k.isLeaf() {
			live, ok := t.els.Get(uint32(k.Child), t.cfg.Space)
			if ok && !live.Intersects(q) {
				return
			}
			visits = append(visits, visit{child: k.Child, br: brWalk.Clone()})
			return
		}
		d := int(k.Dim)
		oldHi := brWalk.Hi[d]
		if k.Lsp < oldHi {
			brWalk.Hi[d] = k.Lsp
		}
		if q.Lo[d] <= brWalk.Hi[d] && brWalk.Hi[d] >= brWalk.Lo[d] {
			walk(k.Left)
		}
		brWalk.Hi[d] = oldHi
		oldLo := brWalk.Lo[d]
		if k.Rsp > oldLo {
			brWalk.Lo[d] = k.Rsp
		}
		if q.Hi[d] >= brWalk.Lo[d] && brWalk.Hi[d] >= brWalk.Lo[d] {
			walk(k.Right)
		}
		brWalk.Lo[d] = oldLo
	}
	walk(n.kdRoot)
	for _, v := range visits {
		if err := t.visitBox(v.child, v.br, q, fn); err != nil {
			return err
		}
	}
	return nil
}

// CountBox returns the number of entries inside q without materializing
// them.
func (t *Tree) CountBox(q geom.Rect) (int, error) {
	count := 0
	err := t.SearchBoxFunc(q, func(Entry) bool {
		count++
		return true
	})
	return count, err
}

// ContainsAny reports whether at least one entry lies inside q, stopping at
// the first hit.
func (t *Tree) ContainsAny(q geom.Rect) (bool, error) {
	found := false
	err := t.SearchBoxFunc(q, func(Entry) bool {
		found = true
		return false
	})
	return found, err
}

// CountRange returns the number of entries within radius of q under metric
// m without materializing them.
func (t *Tree) CountRange(q geom.Point, radius float64, m dist.Metric) (int, error) {
	// Range search already streams internally; reuse it via a thin
	// collector to keep one traversal implementation.
	ns, err := t.SearchRange(q, radius, m)
	if err != nil {
		return 0, err
	}
	return len(ns), nil
}
