// Package dist defines the distance-function abstraction the hybrid tree's
// distance-based queries are built on. The paper's headline flexibility
// claim is that, being a feature-based technique, the hybrid tree supports
// queries under *arbitrary* distance functions supplied at query time
// (Section 3.5) — including the per-query weighted metrics produced by
// relevance feedback. Any type satisfying Metric can drive range and k-NN
// search.
package dist

import (
	"fmt"
	"math"

	"hybridtree/internal/geom"
)

// Metric is a distance function usable for range and nearest-neighbor
// queries. Implementations must satisfy two contracts:
//
//   - Distance is a non-negative, symmetric point-to-point distance.
//   - MinDistRect(q, r) is a lower bound on Distance(q, x) over every
//     x in r (MINDIST). Tighter bounds prune better; zero is always safe.
//
// The index structures never assume anything else about the metric, which is
// what lets the same tree serve L1 today and a user-weighted metric on the
// next query.
type Metric interface {
	Name() string
	Distance(a, b geom.Point) float64
	MinDistRect(q geom.Point, r geom.Rect) float64
}

// LpMetric is the Minkowski L_p family for finite p >= 1.
type LpMetric struct{ P float64 }

// L1 is the Manhattan distance, the metric the paper uses for its
// distance-based query experiments (Figure 7(c,d), following [18]).
func L1() Metric { return LpMetric{P: 1} }

// L2 is the Euclidean distance.
func L2() Metric { return euclidean{} }

// Linf is the Chebyshev (maximum-coordinate) distance.
func Linf() Metric { return chebyshev{} }

// Name implements Metric.
func (m LpMetric) Name() string { return fmt.Sprintf("L%g", m.P) }

// Distance implements Metric.
func (m LpMetric) Distance(a, b geom.Point) float64 {
	if m.P == 1 {
		s := 0.0
		for d := range a {
			s += math.Abs(float64(a[d]) - float64(b[d]))
		}
		return s
	}
	if m.P == 2 {
		// Same kernel as L2(): math.Pow(x, 2) == x*x and math.Pow(s, 0.5)
		// == math.Sqrt(s) bit-for-bit, so this is purely a fast path —
		// LpMetric{P: 2} and L2() return identical floats either way
		// (pinned by TestLp2MatchesL2).
		return euclidean{}.Distance(a, b)
	}
	s := 0.0
	for d := range a {
		s += math.Pow(math.Abs(float64(a[d])-float64(b[d])), m.P)
	}
	return math.Pow(s, 1/m.P)
}

// MinDistRect implements Metric: per-dimension gap distances compose under
// any L_p norm.
func (m LpMetric) MinDistRect(q geom.Point, r geom.Rect) float64 {
	if m.P == 1 {
		s := 0.0
		for d := range q {
			s += axisGap(q[d], r.Lo[d], r.Hi[d])
		}
		return s
	}
	if m.P == 2 {
		return euclidean{}.MinDistRect(q, r)
	}
	s := 0.0
	for d := range q {
		s += math.Pow(axisGap(q[d], r.Lo[d], r.Hi[d]), m.P)
	}
	return math.Pow(s, 1/m.P)
}

type euclidean struct{}

func (euclidean) Name() string { return "L2" }

func (euclidean) Distance(a, b geom.Point) float64 {
	s := 0.0
	for d := range a {
		dv := float64(a[d]) - float64(b[d])
		s += dv * dv
	}
	return math.Sqrt(s)
}

func (euclidean) MinDistRect(q geom.Point, r geom.Rect) float64 {
	s := 0.0
	for d := range q {
		g := axisGap(q[d], r.Lo[d], r.Hi[d])
		s += g * g
	}
	return math.Sqrt(s)
}

type chebyshev struct{}

func (chebyshev) Name() string { return "Linf" }

func (chebyshev) Distance(a, b geom.Point) float64 {
	m := 0.0
	for d := range a {
		if v := math.Abs(float64(a[d]) - float64(b[d])); v > m {
			m = v
		}
	}
	return m
}

func (chebyshev) MinDistRect(q geom.Point, r geom.Rect) float64 {
	m := 0.0
	for d := range q {
		if g := axisGap(q[d], r.Lo[d], r.Hi[d]); g > m {
			m = g
		}
	}
	return m
}

// WeightedLp is an L_p metric with per-dimension weights — the form produced
// by relevance-feedback engines such as MARS/MindReader, where the weights
// change from one iteration of a query to the next. Weights must be
// non-negative.
type WeightedLp struct {
	P       float64
	Weights []float64
}

// NewWeightedLp validates and builds a weighted L_p metric.
func NewWeightedLp(p float64, weights []float64) (WeightedLp, error) {
	if p < 1 {
		return WeightedLp{}, fmt.Errorf("dist: p must be >= 1, got %g", p)
	}
	for d, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return WeightedLp{}, fmt.Errorf("dist: weight %d is %g, must be >= 0", d, w)
		}
	}
	return WeightedLp{P: p, Weights: weights}, nil
}

// Name implements Metric.
func (m WeightedLp) Name() string { return fmt.Sprintf("wL%g", m.P) }

// Distance implements Metric.
func (m WeightedLp) Distance(a, b geom.Point) float64 {
	if m.P == 2 {
		// Pow-free fast path, bit-identical to the general formula (see
		// the LpMetric{P: 2} note).
		return math.Sqrt(m.DistanceSq(a, b))
	}
	s := 0.0
	for d := range a {
		s += m.Weights[d] * math.Pow(math.Abs(float64(a[d])-float64(b[d])), m.P)
	}
	return math.Pow(s, 1/m.P)
}

// MinDistRect implements Metric.
func (m WeightedLp) MinDistRect(q geom.Point, r geom.Rect) float64 {
	if m.P == 2 {
		return math.Sqrt(m.MinDistRectSq(q, r))
	}
	s := 0.0
	for d := range q {
		s += m.Weights[d] * math.Pow(axisGap(q[d], r.Lo[d], r.Hi[d]), m.P)
	}
	return math.Pow(s, 1/m.P)
}

// axisGap returns the distance from coordinate v to the interval [lo,hi]
// along a single axis (zero when v lies inside).
func axisGap(v, lo, hi float32) float64 {
	switch {
	case v < lo:
		return float64(lo) - float64(v)
	case v > hi:
		return float64(v) - float64(hi)
	default:
		return 0
	}
}
