package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"hybridtree/internal/pagefile"
)

// On-page layout (little endian).
//
// Header (6 bytes): magic 'H', node type (0 data / 1 index), dim uint16,
// count uint16. For data nodes count is the entry count; for index nodes it
// is the number of kd records that follow.
//
// Data entry (8 + 4*dim bytes): RecordID uint64, then dim float32
// coordinates.
//
// kd record: tag byte. Internal (tag 0, 15 bytes): dim uint16, lsp float32,
// rsp float32, left uint16, right uint16 (indices into the kd record
// array). Leaf (tag 1, 5 bytes): child page id uint32. Records are written
// in pre-order from the kd root, so record 0 is always the root; a kd-tree
// with c leaves costs exactly (c-1)*15 + c*5 bytes regardless of the
// feature space dimensionality — the fanout-independence at the heart of
// Table 1.
const (
	nodeHeaderSize = 6
	kdInternalSize = 15
	kdLeafSize     = 5

	magicByte     = 'H'
	typeDataNode  = 0
	typeIndexNode = 1
)

// ErrCorruptPage reports that a page failed structural validation on decode.
type ErrCorruptPage struct {
	Page   pagefile.PageID
	Reason string
}

func (e *ErrCorruptPage) Error() string {
	return fmt.Sprintf("core: corrupt page %d: %s", e.Page, e.Reason)
}

// serializedSize returns the number of bytes the node occupies when
// encoded; the overflow tests compare it against the page size.
func (n *node) serializedSize(dim int) int {
	if n.leaf {
		return nodeHeaderSize + n.count()*(8+4*dim)
	}
	internal, leaves := 0, 0
	n.walkReachable(func(k *kdNode) {
		if k.isLeaf() {
			leaves++
		} else {
			internal++
		}
	})
	return nodeHeaderSize + internal*kdInternalSize + leaves*kdLeafSize
}

// walkReachable visits every reachable kd record in pre-order.
func (n *node) walkReachable(fn func(k *kdNode)) {
	if n.kdRoot == kdNone {
		return
	}
	stack := []int32{n.kdRoot}
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		k := &n.kd[idx]
		fn(k)
		if !k.isLeaf() {
			stack = append(stack, k.Right, k.Left)
		}
	}
}

// encode serializes the node into buf, compacting the kd arena to its
// reachable records. buf must be at least serializedSize bytes.
func (n *node) encode(buf []byte, dim int) (int, error) {
	buf[0] = magicByte
	if n.leaf {
		buf[1] = typeDataNode
		binary.LittleEndian.PutUint16(buf[2:], uint16(dim))
		binary.LittleEndian.PutUint16(buf[4:], uint16(n.count()))
		off := nodeHeaderSize
		for i := range n.rids {
			binary.LittleEndian.PutUint64(buf[off:], uint64(n.rids[i]))
			off += 8
			for _, v := range n.vals[i*dim : (i+1)*dim] {
				binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
				off += 4
			}
		}
		return off, nil
	}

	buf[1] = typeIndexNode
	binary.LittleEndian.PutUint16(buf[2:], uint16(dim))

	// First pass: pre-order numbering of reachable records.
	renum := make(map[int32]uint16)
	var order []int32
	var number func(idx int32)
	number = func(idx int32) {
		renum[idx] = uint16(len(order))
		order = append(order, idx)
		k := &n.kd[idx]
		if !k.isLeaf() {
			number(k.Left)
			number(k.Right)
		}
	}
	if n.kdRoot != kdNone {
		number(n.kdRoot)
	}
	if len(order) > (1 << 16) {
		return 0, fmt.Errorf("core: kd arena of %d records exceeds page index width", len(order))
	}
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(order)))

	off := nodeHeaderSize
	for _, idx := range order {
		k := &n.kd[idx]
		if k.isLeaf() {
			buf[off] = 1
			binary.LittleEndian.PutUint32(buf[off+1:], uint32(k.Child))
			off += kdLeafSize
			continue
		}
		buf[off] = 0
		binary.LittleEndian.PutUint16(buf[off+1:], k.Dim)
		binary.LittleEndian.PutUint32(buf[off+3:], math.Float32bits(k.Lsp))
		binary.LittleEndian.PutUint32(buf[off+7:], math.Float32bits(k.Rsp))
		binary.LittleEndian.PutUint16(buf[off+11:], renum[k.Left])
		binary.LittleEndian.PutUint16(buf[off+13:], renum[k.Right])
		off += kdInternalSize
	}
	return off, nil
}

// decodeNode reconstructs a node from page bytes, validating structure as
// it goes.
func decodeNode(id pagefile.PageID, buf []byte, dim int) (*node, error) {
	if len(buf) < nodeHeaderSize {
		return nil, &ErrCorruptPage{Page: id, Reason: "short page"}
	}
	if buf[0] != magicByte {
		return nil, &ErrCorruptPage{Page: id, Reason: fmt.Sprintf("bad magic 0x%02x", buf[0])}
	}
	if got := int(binary.LittleEndian.Uint16(buf[2:])); got != dim {
		return nil, &ErrCorruptPage{Page: id, Reason: fmt.Sprintf("dimensionality %d, tree expects %d", got, dim)}
	}
	count := int(binary.LittleEndian.Uint16(buf[4:]))

	switch buf[1] {
	case typeDataNode:
		need := nodeHeaderSize + count*(8+4*dim)
		if need > len(buf) {
			return nil, &ErrCorruptPage{Page: id, Reason: "entry count exceeds page"}
		}
		// Decode straight into the flat slab: exactly two allocations per
		// leaf (vals, rids) regardless of entry count.
		n := &node{id: id, leaf: true, dim: dim, kdRoot: kdNone,
			vals: make([]float32, count*dim), rids: make([]RecordID, count)}
		off := nodeHeaderSize
		for i := 0; i < count; i++ {
			n.rids[i] = RecordID(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
			row := n.vals[i*dim : (i+1)*dim]
			for d := 0; d < dim; d++ {
				row[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
				off += 4
			}
		}
		return n, nil

	case typeIndexNode:
		n := &node{id: id, kdRoot: kdNone, kd: make([]kdNode, count)}
		if count > 0 {
			n.kdRoot = 0
		}
		off := nodeHeaderSize
		for i := 0; i < count; i++ {
			if off >= len(buf) {
				return nil, &ErrCorruptPage{Page: id, Reason: "kd records exceed page"}
			}
			switch buf[off] {
			case 1:
				if off+kdLeafSize > len(buf) {
					return nil, &ErrCorruptPage{Page: id, Reason: "truncated kd leaf"}
				}
				n.kd[i] = kdNode{Left: kdNone, Right: kdNone,
					Child: pagefile.PageID(binary.LittleEndian.Uint32(buf[off+1:]))}
				off += kdLeafSize
			case 0:
				if off+kdInternalSize > len(buf) {
					return nil, &ErrCorruptPage{Page: id, Reason: "truncated kd internal"}
				}
				left := int32(binary.LittleEndian.Uint16(buf[off+11:]))
				right := int32(binary.LittleEndian.Uint16(buf[off+13:]))
				// Records are written in pre-order, so children always
				// follow their parent; anything else could encode a cycle
				// or shared substructure and must be rejected.
				if left >= int32(count) || right >= int32(count) || left <= int32(i) || right <= int32(i) {
					return nil, &ErrCorruptPage{Page: id, Reason: "kd link out of pre-order range"}
				}
				n.kd[i] = kdNode{
					Dim:  binary.LittleEndian.Uint16(buf[off+1:]),
					Lsp:  math.Float32frombits(binary.LittleEndian.Uint32(buf[off+3:])),
					Rsp:  math.Float32frombits(binary.LittleEndian.Uint32(buf[off+7:])),
					Left: left, Right: right,
				}
				if int(n.kd[i].Dim) >= dim {
					return nil, &ErrCorruptPage{Page: id, Reason: "split dimension out of range"}
				}
				off += kdInternalSize
			default:
				return nil, &ErrCorruptPage{Page: id, Reason: fmt.Sprintf("bad kd tag 0x%02x", buf[off])}
			}
		}
		return n, nil

	default:
		return nil, &ErrCorruptPage{Page: id, Reason: fmt.Sprintf("bad node type 0x%02x", buf[1])}
	}
}
