package index

import (
	"context"
	"sync"

	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// Hybrid adapts core.Tree to the Index interface (the tree's own API uses
// its richer result types).
type Hybrid struct {
	*core.Tree
	// NameOverride lets the harness distinguish configurations of the same
	// structure ("hybrid-vam", "hybrid-els0", ...).
	NameOverride string
}

var _ Lifecycle = (*Hybrid)(nil)

// Name implements Index.
func (h *Hybrid) Name() string {
	if h.NameOverride != "" {
		return h.NameOverride
	}
	return "hybrid"
}

// Insert implements Index.
func (h *Hybrid) Insert(p geom.Point, rid uint64) error {
	return h.Tree.Insert(p, core.RecordID(rid))
}

// Delete implements Index.
func (h *Hybrid) Delete(p geom.Point, rid uint64) (bool, error) {
	return h.Tree.Delete(p, core.RecordID(rid))
}

// SearchBox implements Index.
func (h *Hybrid) SearchBox(q geom.Rect) ([]Entry, error) {
	es, err := h.Tree.SearchBox(q)
	if err != nil {
		return nil, err
	}
	out := make([]Entry, len(es))
	for i, e := range es {
		out[i] = Entry{Point: e.Point, RID: uint64(e.RID)}
	}
	return out, nil
}

// SearchRange implements Index.
func (h *Hybrid) SearchRange(q geom.Point, radius float64, m dist.Metric) ([]Neighbor, error) {
	ns, err := h.Tree.SearchRange(q, radius, m)
	if err != nil {
		return nil, err
	}
	return convertNeighbors(ns), nil
}

// SearchKNN implements Index.
func (h *Hybrid) SearchKNN(q geom.Point, k int, m dist.Metric) ([]Neighbor, error) {
	ns, err := h.Tree.SearchKNN(q, k, m)
	if err != nil {
		return nil, err
	}
	return convertNeighbors(ns), nil
}

// qcPool recycles the arena-backed query contexts the lifecycle adapters
// hand to the tree, so a harness loop doesn't re-grow the scratch buffers
// on every budgeted query.
var qcPool = sync.Pool{New: func() any { return core.NewQueryContext() }}

// SearchBoxContext implements Lifecycle. It shadows the promoted core.Tree
// method with the index-typed signature the harness drives.
func (h *Hybrid) SearchBoxContext(ctx context.Context, q geom.Rect, b core.Budget) ([]Entry, error) {
	c := qcPool.Get().(*core.QueryContext)
	defer qcPool.Put(c)
	es, err := h.Tree.SearchBoxContext(ctx, c, q, b, nil)
	out := make([]Entry, len(es))
	for i, e := range es {
		out[i] = Entry{Point: e.Point, RID: uint64(e.RID)}
	}
	return out, err
}

// SearchRangeContext implements Lifecycle.
func (h *Hybrid) SearchRangeContext(ctx context.Context, q geom.Point, radius float64, m dist.Metric, b core.Budget) ([]Neighbor, error) {
	c := qcPool.Get().(*core.QueryContext)
	defer qcPool.Put(c)
	ns, err := h.Tree.SearchRangeContext(ctx, c, q, radius, m, b, nil)
	return convertNeighbors(ns), err
}

// SearchKNNContext implements Lifecycle.
func (h *Hybrid) SearchKNNContext(ctx context.Context, q geom.Point, k int, m dist.Metric, b core.Budget) ([]Neighbor, error) {
	c := qcPool.Get().(*core.QueryContext)
	defer qcPool.Put(c)
	ns, err := h.Tree.SearchKNNContext(ctx, c, q, k, m, b, nil)
	return convertNeighbors(ns), err
}

func convertNeighbors(ns []core.Neighbor) []Neighbor {
	out := make([]Neighbor, len(ns))
	for i, n := range ns {
		out[i] = Neighbor{Entry: Entry{Point: n.Point, RID: uint64(n.RID)}, Dist: n.Dist}
	}
	return out
}

// File implements Index.
func (h *Hybrid) File() pagefile.File { return h.Tree.File() }
