package hbtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// On-page layout (little endian). Header (8 bytes): magic 'B', node type
// (0 data / 1 index), dim uint16, count uint16 (points or kd records),
// forward count uint16. Forward entries are stored sparsely: only the
// dimensions on which the departed region is tighter than the data space
// are written, so a forward costs 6 + 10*constrainedDims bytes instead of
// 8*dim.
const (
	headerSize     = 8
	kdInternalSize = 11
	kdLeafSize     = 5
)

func dataCapacity(cfg *Config) int {
	return (cfg.PageSize - headerSize) / (8 + 4*cfg.Dim)
}

// serializedSize returns the encoded size of the node (reachable kd records
// plus sparsely encoded forwards) relative to the given data space.
func (n *node) serializedSize(dim int, space geom.Rect) int {
	size := headerSize
	if n.leaf {
		size += len(n.pts) * (8 + 4*dim)
	} else {
		var walk func(idx int32)
		walk = func(idx int32) {
			k := &n.kd[idx]
			if k.isLeaf() {
				size += kdLeafSize
				return
			}
			size += kdInternalSize
			walk(k.Left)
			walk(k.Right)
		}
		if n.root != kdNone {
			walk(n.root)
		}
	}
	c := codec{dim: dim, space: space}
	for _, f := range n.fwd {
		size += 6 + 10*c.constrained(f.rect)
	}
	return size
}

// codec serializes hB-tree nodes.
type codec struct {
	dim   int
	space geom.Rect
}

func (c codec) constrained(r geom.Rect) int {
	count := 0
	for d := 0; d < c.dim; d++ {
		if r.Lo[d] != c.space.Lo[d] || r.Hi[d] != c.space.Hi[d] {
			count++
		}
	}
	return count
}

// Encode implements nodestore.Codec.
func (c codec) Encode(n *node, buf []byte) (int, error) {
	if need := n.serializedSize(c.dim, c.space); need > len(buf) {
		return 0, fmt.Errorf("hbtree: node %d needs %d bytes, page holds %d (forward list exhausted the page)", n.id, need, len(buf))
	}
	buf[0] = 'B'
	binary.LittleEndian.PutUint16(buf[2:], uint16(c.dim))
	binary.LittleEndian.PutUint16(buf[6:], uint16(len(n.fwd)))
	off := headerSize

	if n.leaf {
		buf[1] = 0
		binary.LittleEndian.PutUint16(buf[4:], uint16(len(n.pts)))
		for i, p := range n.pts {
			binary.LittleEndian.PutUint64(buf[off:], n.rids[i])
			off += 8
			for _, v := range p {
				binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
				off += 4
			}
		}
	} else {
		buf[1] = 1
		// Pre-order renumbering of reachable records.
		renum := make(map[int32]uint16)
		var order []int32
		var number func(idx int32)
		number = func(idx int32) {
			renum[idx] = uint16(len(order))
			order = append(order, idx)
			k := &n.kd[idx]
			if !k.isLeaf() {
				number(k.Left)
				number(k.Right)
			}
		}
		if n.root != kdNone {
			number(n.root)
		}
		binary.LittleEndian.PutUint16(buf[4:], uint16(len(order)))
		for _, idx := range order {
			k := &n.kd[idx]
			if k.isLeaf() {
				buf[off] = 1
				binary.LittleEndian.PutUint32(buf[off+1:], uint32(k.Child))
				off += kdLeafSize
				continue
			}
			buf[off] = 0
			binary.LittleEndian.PutUint16(buf[off+1:], k.Dim)
			binary.LittleEndian.PutUint32(buf[off+3:], math.Float32bits(k.Val))
			binary.LittleEndian.PutUint16(buf[off+7:], renum[k.Left])
			binary.LittleEndian.PutUint16(buf[off+9:], renum[k.Right])
			off += kdInternalSize
		}
	}

	for _, f := range n.fwd {
		binary.LittleEndian.PutUint32(buf[off:], uint32(f.sibling))
		off += 4
		nc := c.constrained(f.rect)
		binary.LittleEndian.PutUint16(buf[off:], uint16(nc))
		off += 2
		for d := 0; d < c.dim; d++ {
			if f.rect.Lo[d] == c.space.Lo[d] && f.rect.Hi[d] == c.space.Hi[d] {
				continue
			}
			binary.LittleEndian.PutUint16(buf[off:], uint16(d))
			binary.LittleEndian.PutUint32(buf[off+2:], math.Float32bits(f.rect.Lo[d]))
			binary.LittleEndian.PutUint32(buf[off+6:], math.Float32bits(f.rect.Hi[d]))
			off += 10
		}
	}
	return off, nil
}

// Decode implements nodestore.Codec.
func (c codec) Decode(id pagefile.PageID, buf []byte) (*node, error) {
	if len(buf) < headerSize || buf[0] != 'B' {
		return nil, fmt.Errorf("hbtree: corrupt page %d", id)
	}
	if got := int(binary.LittleEndian.Uint16(buf[2:])); got != c.dim {
		return nil, fmt.Errorf("hbtree: page %d dim %d, want %d", id, got, c.dim)
	}
	count := int(binary.LittleEndian.Uint16(buf[4:]))
	nfwd := int(binary.LittleEndian.Uint16(buf[6:]))
	n := &node{id: id, root: kdNone}
	off := headerSize

	switch buf[1] {
	case 0:
		if headerSize+count*(8+4*c.dim) > len(buf) {
			return nil, fmt.Errorf("hbtree: page %d entry count exceeds page", id)
		}
		n.leaf = true
		for i := 0; i < count; i++ {
			n.rids = append(n.rids, binary.LittleEndian.Uint64(buf[off:]))
			off += 8
			p := make(geom.Point, c.dim)
			for d := range p {
				p[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
				off += 4
			}
			n.pts = append(n.pts, p)
		}
	case 1:
		n.kd = make([]kdNode, count)
		if count > 0 {
			n.root = 0
		}
		for i := 0; i < count; i++ {
			if off+kdInternalSize > len(buf) && (off >= len(buf) || buf[off] != 1 || off+kdLeafSize > len(buf)) {
				return nil, fmt.Errorf("hbtree: page %d truncated kd records", id)
			}
			switch buf[off] {
			case 1:
				n.kd[i] = kdNode{Left: kdNone, Right: kdNone,
					Child: pagefile.PageID(binary.LittleEndian.Uint32(buf[off+1:]))}
				off += kdLeafSize
			case 0:
				left := int32(binary.LittleEndian.Uint16(buf[off+7:]))
				right := int32(binary.LittleEndian.Uint16(buf[off+9:]))
				// Pre-order layout: children must follow their parent, which
				// rules out cycles and shared substructure.
				if left >= int32(count) || right >= int32(count) || left <= int32(i) || right <= int32(i) {
					return nil, fmt.Errorf("hbtree: page %d kd link out of pre-order range", id)
				}
				n.kd[i] = kdNode{
					Dim:  binary.LittleEndian.Uint16(buf[off+1:]),
					Val:  math.Float32frombits(binary.LittleEndian.Uint32(buf[off+3:])),
					Left: left, Right: right,
				}
				off += kdInternalSize
			default:
				return nil, fmt.Errorf("hbtree: page %d bad kd tag", id)
			}
		}
	default:
		return nil, fmt.Errorf("hbtree: page %d bad node type", id)
	}

	for i := 0; i < nfwd; i++ {
		if off+6 > len(buf) {
			return nil, fmt.Errorf("hbtree: page %d truncated forwards", id)
		}
		var f forward
		f.sibling = pagefile.PageID(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		nc := int(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		if off+10*nc > len(buf) {
			return nil, fmt.Errorf("hbtree: page %d truncated forward constraints", id)
		}
		f.rect = c.space.Clone()
		for j := 0; j < nc; j++ {
			d := int(binary.LittleEndian.Uint16(buf[off:]))
			if d >= c.dim {
				return nil, fmt.Errorf("hbtree: page %d forward dim out of range", id)
			}
			f.rect.Lo[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off+2:]))
			f.rect.Hi[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off+6:]))
			off += 10
		}
		n.fwd = append(n.fwd, f)
	}
	return n, nil
}
