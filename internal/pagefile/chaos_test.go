package pagefile

import (
	"bytes"
	"errors"
	"testing"
)

// Two chaos files with the same seed and profile must make identical fault
// decisions over the same operation sequence — the property the workload
// simulator's bit-reproducibility rests on.
func TestChaosFileDeterministic(t *testing.T) {
	profile := ChaosProfile{ReadErr: 0.1, ReadCorrupt: 0.1, WriteErr: 0.15, WriteTorn: 0.1, WriteShort: 0.05, AllocErr: 0.1, FreeErr: 0.1}
	run := func() ([]bool, ChaosCounts) {
		f := NewChaosFile(NewMemFile(64), profile, 42)
		var outcomes []bool
		buf := make([]byte, 64)
		var ids []PageID
		for i := 0; i < 300; i++ {
			var err error
			switch i % 4 {
			case 0:
				var id PageID
				id, err = f.Allocate()
				if err == nil {
					ids = append(ids, id)
				}
			case 1:
				if len(ids) > 0 {
					err = f.WritePage(ids[len(ids)-1], buf)
				}
			case 2:
				if len(ids) > 0 {
					err = f.ReadPage(ids[len(ids)-1], buf)
				}
			case 3:
				if len(ids) > 1 {
					err = f.Free(ids[0])
					if err == nil {
						ids = ids[1:]
					}
				}
			}
			outcomes = append(outcomes, err == nil)
		}
		return outcomes, f.Counts()
	}
	o1, c1 := run()
	o2, c2 := run()
	if c1 != c2 {
		t.Fatalf("counts differ across identical runs: %+v vs %+v", c1, c2)
	}
	if c1.Total() == 0 {
		t.Fatal("profile injected nothing; test is vacuous")
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("op %d outcome differs across identical runs", i)
		}
	}
}

// SetEnabled(false) must make the file transparent.
func TestChaosFileDisabled(t *testing.T) {
	f := NewChaosFile(NewMemFile(64), ChaosProfile{ReadErr: 1, WriteErr: 1, AllocErr: 1, FreeErr: 1}, 7)
	f.SetEnabled(false)
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := f.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if got := f.Counts().Total(); got != 0 {
		t.Fatalf("disabled file injected %d faults", got)
	}
	f.SetEnabled(true)
	if _, err := f.Allocate(); !errors.Is(err, ErrInjected) {
		t.Fatalf("re-enabled alloc err = %v, want ErrInjected", err)
	}
}

// ChecksumFile round-trips payloads and reduces the visible page size.
func TestChecksumFileRoundTrip(t *testing.T) {
	inner := NewMemFile(64)
	f := NewChecksumFile(inner)
	if got := f.PageSize(); got != 64-ChecksumOverhead {
		t.Fatalf("PageSize = %d, want %d", got, 64-ChecksumOverhead)
	}
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	// A fresh page reads as zeros without a checksum error.
	buf := make([]byte, f.PageSize())
	if err := f.ReadPage(id, buf); err != nil {
		t.Fatalf("fresh page read: %v", err)
	}
	if !allZero(buf) {
		t.Fatal("fresh page not zero")
	}
	payload := []byte("hello checksummed world")
	if err := f.WritePage(id, payload); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadPageSeq(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:len(payload)], payload) {
		t.Fatalf("payload mismatch: %q", buf[:len(payload)])
	}
	// Oversized payloads are rejected at this layer.
	if err := f.WritePage(id, make([]byte, 64)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized write err = %v, want ErrTooLarge", err)
	}
}

// Corruption at rest must surface as ErrChecksum on the next read.
func TestChecksumFileDetectsCorruption(t *testing.T) {
	inner := NewMemFile(64)
	f := NewChecksumFile(inner)
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WritePage(id, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Flip one byte behind the checksum layer's back.
	raw := make([]byte, 64)
	if err := inner.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	raw[3] ^= 0xFF
	if err := inner.WritePage(id, raw); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, f.PageSize())
	if err := f.ReadPage(id, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

// The full stack — Checksum over Chaos — must convert chaos's silent
// write/read damage into detected errors: after any sequence of chaotic
// writes, a read either fails (ErrInjected / ErrChecksum), returns the last
// successfully-written payload, or returns zeros (write torn at offset 0);
// it never returns silently mangled data.
func TestChecksumOverChaosDetectsDamage(t *testing.T) {
	profile := ChaosProfile{ReadErr: 0.05, ReadCorrupt: 0.25, WriteTorn: 0.25, WriteShort: 0.25}
	chaos := NewChaosFile(NewMemFile(128), profile, 11)
	f := NewChecksumFile(chaos)
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	payload := func(i int) []byte {
		b := make([]byte, f.PageSize())
		for j := range b {
			b[j] = byte(i)
		}
		return b
	}
	lastGood := -1
	detected := 0
	for i := 1; i <= 400; i++ {
		if err := f.WritePage(id, payload(i%251)); err == nil {
			lastGood = i % 251
		}
		buf := make([]byte, f.PageSize())
		switch err := f.ReadPage(id, buf); {
		case errors.Is(err, ErrInjected):
			// outright read failure: fine
		case errors.Is(err, ErrChecksum):
			detected++
		case err != nil:
			t.Fatalf("unexpected error class: %v", err)
		default:
			if allZero(buf) {
				continue // torn at offset 0, or short write that lost everything
			}
			if lastGood >= 0 && buf[0] == byte(lastGood) && !allZero(buf[1:]) {
				// Looks like the last good payload; verify fully.
				for j := range buf {
					if buf[j] != byte(lastGood) {
						t.Fatalf("iteration %d: silent corruption passed the checksum (byte %d = %#x, want %#x)", i, j, buf[j], byte(lastGood))
					}
				}
				continue
			}
			// A clean read must be some previously fully-written payload:
			// all bytes identical.
			for j := 1; j < len(buf); j++ {
				if buf[j] != buf[0] {
					t.Fatalf("iteration %d: silent corruption passed the checksum", i)
				}
			}
		}
	}
	if detected == 0 {
		t.Fatal("no damage was detected; test is vacuous")
	}
}
