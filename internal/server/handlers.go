package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hybridtree/internal/concurrent"
	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/obs"
)

// Wire headers. Requests carry the lifecycle knobs; responses always carry
// the resolved outcome, and degraded responses carry the honesty marker.
const (
	// HeaderDeadlineMs is the per-request deadline in milliseconds. It
	// propagates as a context deadline: expiry while queued sheds (503),
	// expiry mid-search abandons the query (504, results discarded).
	HeaderDeadlineMs = "X-Deadline-Ms"
	// HeaderBudgetPages is the per-request page-read budget. Exhaustion
	// degrades: the response is a valid partial answer, marked 206 +
	// X-Htree-Partial.
	HeaderBudgetPages = "X-Budget-Pages"
	// HeaderOutcome reports how the request resolved ("ok", "cancelled",
	// "timeout", "shed", "degraded", "error") on every /v1 response.
	HeaderOutcome = "X-Htree-Outcome"
	// HeaderPartial is the degraded-answer honesty marker: the number of
	// results actually returned, present exactly when the answer is
	// partial. A client that ignores it cannot mistake a degraded answer
	// for a complete one — the 206 status says so too.
	HeaderPartial = "X-Htree-Partial"
)

// StatusFor maps the six-way outcome taxonomy onto HTTP status codes. This
// is the server's single source of truth: every /v1 response's status is
// either this mapping or a 4xx rejected before the index ran (bad JSON,
// wrong dimensionality, oversized body — those still count one outcome,
// OutcomeError).
//
//	ok        → 200
//	degraded  → 206 (partial content: honest best-effort answer)
//	cancelled → 499 (client closed request, nginx convention)
//	timeout   → 504
//	shed      → 503 + Retry-After (back off and come back)
//	error     → 500
func StatusFor(k obs.OutcomeKind) int {
	switch k {
	case obs.OutcomeOK:
		return http.StatusOK
	case obs.OutcomeDegraded:
		return http.StatusPartialContent
	case obs.OutcomeCancelled:
		return 499
	case obs.OutcomeTimeout:
		return http.StatusGatewayTimeout
	case obs.OutcomeShed:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// classify extends core.ClassifyOutcome with the admission-control
// sentinels the executor and group committer return: both mean the request
// did no tree work and should be retried elsewhere or later.
func classify(err error) obs.OutcomeKind {
	if errors.Is(err, concurrent.ErrShed) || errors.Is(err, concurrent.ErrClosed) {
		return obs.OutcomeShed
	}
	return core.ClassifyOutcome(err)
}

// Request bodies. One struct covers every endpoint; each handler validates
// the fields it uses.
type queryRequest struct {
	Point  []float32 `json:"point,omitempty"`
	K      int       `json:"k,omitempty"`
	Radius float64   `json:"radius,omitempty"`
	Metric string    `json:"metric,omitempty"`
	Lo     []float32 `json:"lo,omitempty"`
	Hi     []float32 `json:"hi,omitempty"`
	RID    uint64    `json:"rid,omitempty"`
}

// neighborJSON is one k-NN/range result on the wire.
type neighborJSON struct {
	RID  uint64  `json:"rid"`
	Dist float64 `json:"dist"`
}

// queryResponse is the uniform response envelope.
type queryResponse struct {
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
	// Partial is set (with true) when the answer is a valid degraded
	// prefix/subset rather than the complete result.
	Partial   bool           `json:"partial,omitempty"`
	Count     int            `json:"count"`
	Neighbors []neighborJSON `json:"neighbors,omitempty"`
	RIDs      []uint64       `json:"rids,omitempty"`
	Found     *bool          `json:"found,omitempty"` // delete only
}

// statsResponse is the GET /v1/stats body.
type statsResponse struct {
	Dim    int    `json:"dim"`
	Size   int    `json:"size"`
	Height int    `json:"height"`
	Epoch  uint64 `json:"epoch"`
	Writes bool   `json:"writes"`
}

// result is what an endpoint hands back to the wrapper: the wrapper writes
// exactly one response and records exactly one outcome from it.
type result struct {
	outcome obs.OutcomeKind
	status  int // 0 = derive from outcome via StatusFor
	resp    queryResponse
}

// badRequest builds a client-rejection result: the request never reached
// the index, counts as OutcomeError, and reports the given 4xx status.
func badRequest(status int, format string, args ...any) result {
	return result{
		outcome: obs.OutcomeError,
		status:  status,
		resp:    queryResponse{Error: fmt.Sprintf(format, args...)},
	}
}

// routes builds the handler tree. The /v1 namespace is deliberately flat
// and method-routed so future endpoints slot in without touching existing
// ones — in particular a textual `POST /v1/query` (the tiny query language
// from ROADMAP item 3) is one more s.endpoint(...) line here.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("POST /v1/knn", s.endpoint(s.serveKNN))
	mux.Handle("POST /v1/box", s.endpoint(s.serveBox))
	mux.Handle("POST /v1/range", s.endpoint(s.serveRange))
	if s.cfg.EnableWrites {
		mux.Handle("POST /v1/insert", s.endpoint(s.serveInsert))
		mux.Handle("POST /v1/delete", s.endpoint(s.serveDelete))
	}
	// The introspection surface rides along on the same port: metrics,
	// recent/slow traces, pprof.
	o := obs.NewMux(s.cfg.Registry, s.cfg.Ring, s.cfg.Slow)
	mux.Handle("/metrics", o)
	mux.Handle("/metrics.json", o)
	mux.Handle("/debug/", o)
	return mux
}

// handleHealthz is liveness: 200 as long as the process serves, "draining"
// in the body once a drain begins (the process is still healthy — flipping
// liveness during drain would get it killed mid-checkpoint).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if s.draining.Load() {
		fmt.Fprintln(w, "ok draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: it flips to 503 the moment a drain begins so
// load balancers stop routing here before the listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	epoch, size, height := s.tree.SnapshotInfo()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(statsResponse{
		Dim: s.cfg.Dim, Size: size, Height: height, Epoch: epoch, Writes: s.cfg.EnableWrites,
	})
}

// endpoint wraps one /v1 handler with the per-request failure envelope:
// request counting, inflight/latency accounting, body capping, panic
// isolation, drain shedding, and exactly-one outcome + response. A panic
// anywhere in the handler (decoding, the search, encoding the result
// values) resolves that request to a 500 and leaves the server serving.
func (s *Server) endpoint(h func(r *http.Request, req queryRequest) result) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.m.requests.Inc()
		s.m.inflight.Add(1)
		start := time.Now()
		wrote := false
		finish := func(res result) {
			if wrote {
				return
			}
			wrote = true
			s.m.outcomes.Record(res.outcome)
			s.m.latency.Observe(time.Since(start).Nanoseconds())
			s.m.inflight.Add(-1)
			status := res.status
			if status == 0 {
				status = StatusFor(res.outcome)
			}
			res.resp.Outcome = res.outcome.String()
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set(HeaderOutcome, res.resp.Outcome)
			if res.resp.Partial {
				w.Header().Set(HeaderPartial, strconv.Itoa(res.resp.Count))
			}
			if res.outcome == obs.OutcomeShed {
				w.Header().Set("Retry-After", "1")
			}
			w.WriteHeader(status)
			_ = json.NewEncoder(w).Encode(res.resp)
		}
		defer func() {
			if p := recover(); p != nil {
				s.m.panics.Inc()
				finish(result{outcome: obs.OutcomeError,
					resp: queryResponse{Error: fmt.Sprintf("panic: %v", p)}})
			}
		}()

		if s.draining.Load() {
			finish(result{outcome: obs.OutcomeShed,
				resp: queryResponse{Error: "server draining"}})
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		var req queryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				finish(badRequest(http.StatusRequestEntityTooLarge,
					"request body exceeds %d bytes", tooBig.Limit))
				return
			}
			finish(badRequest(http.StatusBadRequest, "bad request body: %v", err))
			return
		}
		finish(h(r, req))
	})
}

// lifecycle derives the request's context and budget from the headers,
// clamped by the server's caps. The returned cancel must run when the
// request resolves.
func (s *Server) lifecycle(r *http.Request) (ctx context.Context, budget core.Budget, cancel context.CancelFunc, err error) {
	ctx = r.Context() // cancels on client disconnect → OutcomeCancelled
	cancel = func() {}
	deadline := s.cfg.DefaultDeadline
	if h := r.Header.Get(HeaderDeadlineMs); h != "" {
		ms, perr := strconv.Atoi(h)
		if perr != nil || ms < 0 {
			return ctx, budget, cancel, fmt.Errorf("%s: want a non-negative integer, got %q", HeaderDeadlineMs, h)
		}
		deadline = time.Duration(ms) * time.Millisecond
	}
	if s.cfg.MaxDeadline > 0 && (deadline == 0 || deadline > s.cfg.MaxDeadline) {
		deadline = s.cfg.MaxDeadline
	}
	if deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, deadline)
	}
	pages := s.cfg.DefaultBudgetPages
	if h := r.Header.Get(HeaderBudgetPages); h != "" {
		n, perr := strconv.Atoi(h)
		if perr != nil || n < 0 {
			return ctx, budget, cancel, fmt.Errorf("%s: want a non-negative integer, got %q", HeaderBudgetPages, h)
		}
		pages = n
	}
	if s.cfg.MaxBudgetPages > 0 && (pages == 0 || pages > s.cfg.MaxBudgetPages) {
		pages = s.cfg.MaxBudgetPages
	}
	budget = core.Budget{MaxPageReads: pages}
	return ctx, budget, cancel, nil
}

// point validates a request vector against the index dimensionality.
func (s *Server) point(field string, v []float32) (geom.Point, error) {
	if len(v) != s.cfg.Dim {
		return nil, fmt.Errorf("%s: want %d coordinates, got %d", field, s.cfg.Dim, len(v))
	}
	return geom.Point(v), nil
}

// metric parses the metric name ("L1", "L2" default, "Linf", "Lp:<p>").
func metric(name string) (dist.Metric, error) {
	switch strings.ToUpper(name) {
	case "", "L2":
		return dist.L2(), nil
	case "L1":
		return dist.L1(), nil
	case "LINF":
		return dist.Linf(), nil
	}
	if strings.HasPrefix(strings.ToUpper(name), "LP:") {
		p, err := strconv.ParseFloat(name[3:], 64)
		if err != nil || p < 1 {
			return nil, fmt.Errorf("metric: bad Lp exponent %q", name[3:])
		}
		return dist.LpMetric{P: p}, nil
	}
	return nil, fmt.Errorf("metric: unknown %q (want L1, L2, Linf or Lp:<p>)", name)
}

// settle converts a query error plus its (possibly partial) result sizes
// into the response envelope. Degraded answers keep their results and gain
// the partial marker; abandoned and failed queries report empty.
func settle(err error, resp queryResponse) result {
	k := classify(err)
	switch k {
	case obs.OutcomeOK:
		return result{outcome: k, resp: resp}
	case obs.OutcomeDegraded:
		resp.Partial = true
		resp.Error = err.Error()
		return result{outcome: k, resp: resp}
	default:
		return result{outcome: k, resp: queryResponse{Error: err.Error()}}
	}
}

func (s *Server) serveKNN(r *http.Request, req queryRequest) result {
	q, err := s.point("point", req.Point)
	if err != nil {
		return badRequest(http.StatusBadRequest, "%v", err)
	}
	if req.K <= 0 {
		return badRequest(http.StatusBadRequest, "k: want a positive integer, got %d", req.K)
	}
	m, err := metric(req.Metric)
	if err != nil {
		return badRequest(http.StatusBadRequest, "%v", err)
	}
	ctx, budget, cancel, err := s.lifecycle(r)
	if err != nil {
		return badRequest(http.StatusBadRequest, "%v", err)
	}
	defer cancel()
	ns, err := s.exec.SearchKNN(ctx, q, req.K, m, budget)
	return settle(err, neighborsResponse(ns))
}

func (s *Server) serveRange(r *http.Request, req queryRequest) result {
	q, err := s.point("point", req.Point)
	if err != nil {
		return badRequest(http.StatusBadRequest, "%v", err)
	}
	if req.Radius <= 0 {
		return badRequest(http.StatusBadRequest, "radius: want a positive number, got %g", req.Radius)
	}
	m, err := metric(req.Metric)
	if err != nil {
		return badRequest(http.StatusBadRequest, "%v", err)
	}
	ctx, budget, cancel, err := s.lifecycle(r)
	if err != nil {
		return badRequest(http.StatusBadRequest, "%v", err)
	}
	defer cancel()
	ns, err := s.exec.SearchRange(ctx, q, req.Radius, m, budget)
	return settle(err, neighborsResponse(ns))
}

func (s *Server) serveBox(r *http.Request, req queryRequest) result {
	lo, err := s.point("lo", req.Lo)
	if err != nil {
		return badRequest(http.StatusBadRequest, "%v", err)
	}
	hi, err := s.point("hi", req.Hi)
	if err != nil {
		return badRequest(http.StatusBadRequest, "%v", err)
	}
	ctx, budget, cancel, err := s.lifecycle(r)
	if err != nil {
		return badRequest(http.StatusBadRequest, "%v", err)
	}
	defer cancel()
	es, err := s.exec.SearchBox(ctx, geom.NewRect(lo, hi), budget)
	rids := make([]uint64, len(es))
	for i, e := range es {
		rids[i] = uint64(e.RID)
	}
	return settle(err, queryResponse{Count: len(rids), RIDs: rids})
}

// acquireWriteSlot is write admission: a free slot or an immediate shed.
func (s *Server) acquireWriteSlot() bool {
	select {
	case s.writeSem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) serveInsert(r *http.Request, req queryRequest) result {
	p, err := s.point("point", req.Point)
	if err != nil {
		return badRequest(http.StatusBadRequest, "%v", err)
	}
	if !s.acquireWriteSlot() {
		return result{outcome: obs.OutcomeShed,
			resp: queryResponse{Error: "write queue full"}}
	}
	defer func() { <-s.writeSem }()
	return settle(s.group.Insert(p, core.RecordID(req.RID)), queryResponse{Count: 1})
}

func (s *Server) serveDelete(r *http.Request, req queryRequest) result {
	p, err := s.point("point", req.Point)
	if err != nil {
		return badRequest(http.StatusBadRequest, "%v", err)
	}
	if !s.acquireWriteSlot() {
		return result{outcome: obs.OutcomeShed,
			resp: queryResponse{Error: "write queue full"}}
	}
	defer func() { <-s.writeSem }()
	found, err := s.group.Delete(p, core.RecordID(req.RID))
	return settle(err, queryResponse{Found: &found})
}

func neighborsResponse(ns []core.Neighbor) queryResponse {
	out := make([]neighborJSON, len(ns))
	for i, n := range ns {
		out[i] = neighborJSON{RID: uint64(n.RID), Dist: n.Dist}
	}
	return queryResponse{Count: len(out), Neighbors: out}
}
