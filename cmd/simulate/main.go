// Command simulate runs the deterministic workload simulator: a seeded
// trace of inserts, deletes and queries driven through every access
// method, differentially checked against a sequential-scan oracle, with
// probabilistic storage faults injected under the hybrid tree. On
// divergence it prints a minimized reproducer (seed + op index) and exits
// nonzero. With -repeat N it runs the workload N times and requires
// bit-identical digests, proving the whole pipeline is deterministic.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hybridtree/internal/core"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/sim"
	"hybridtree/internal/wal"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "trace seed")
		ops        = flag.Int("ops", 10000, "operations per run")
		dim        = flag.Int("dim", 4, "dimensionality")
		page       = flag.Int("page", 512, "page size in bytes")
		indexes    = flag.String("indexes", strings.Join(sim.AllIndexes, ","), "comma-separated access methods")
		faults     = flag.String("faults", "light", "fault profile: off, light, heavy")
		faultSeed  = flag.Int64("fault-seed", 0, "fault schedule seed (default seed+1)")
		checkEvery = flag.Int("check-every", 1000, "full differential check interval")
		repeat     = flag.Int("repeat", 1, "runs; digests must match across all of them")
		deadline   = flag.Duration("deadline", 0, "per-query context deadline (0 disables)")
		budgetPgs  = flag.Int("budget-pages", 0, "per-query page-read budget; exhausted queries degrade to a verified partial answer (0 = unlimited)")
		retry      = flag.Bool("retry", false, "layer the retry/breaker read path under the hybrid tree and periodically drop caches so queries recover injected faults in-path")
		maxLeaked  = flag.Int("max-leaked", -1, "fail if any index leaks more than this many pages after the final flush (-1 disables; CI passes 0)")
		verbose    = flag.Bool("v", false, "per-index reports")
		version    = flag.Bool("version", false, "print the build version and exit")
		obsAddr    = flag.String("obs", "", "serve the introspection endpoint on this address (e.g. localhost:6060) for the duration of the run")
		slowK      = flag.Int("slow-k", 16, "with -obs: retain this many slowest query traces in the flight recorder")
		slowThresh = flag.Duration("slow-threshold", 0, "with -obs: admit only traces at least this slow (0 = consider every trace)")

		crash      = flag.Bool("crash", false, "run the WAL kill/reopen differential loop instead of the multi-index run")
		kills      = flag.Int("kills", 200, "crash mode: number of kill points")
		meanSeg    = flag.Int("mean-segment", 8, "crash mode: average ops between kills")
		ckptOps    = flag.Int("checkpoint-ops", 40, "crash mode: checkpoint every N acked mutations with faults live (0 = only post-kill)")
		fsyncEvery = flag.Int("fsync-every", 1, "crash mode: group-commit width; >1 weakens acked=>durable and will diverge")
		killSeed   = flag.Int64("kill-seed", 0, "crash mode: kill schedule seed (default seed+2)")
	)
	flag.Parse()

	if *version {
		commit, goVersion := obs.BuildVersion()
		fmt.Printf("simulate %s (%s)\n", commit, goVersion)
		return
	}

	if *obsAddr != "" {
		ring := obs.NewRing(256)
		slow := obs.NewSlowRecorder(*slowK, *slowThresh)
		core.SetDefaultTracer(obs.Tee(ring, slow))
		obs.RegisterBuildInfo(obs.Default())
		wal.RegisterMetrics()
		sampler := obs.StartRuntimeSampler(obs.Default(), 0)
		srv, addr, err := obs.Serve(*obsAddr, obs.Default(), ring, slow)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simulate: obs endpoint: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			sampler.Stop()
			obs.Shutdown(srv, 5*time.Second)
		}()
		fmt.Fprintf(os.Stderr, "simulate: metrics at http://%s/metrics, slow queries at http://%s/debug/slow\n", addr, addr)
		defer func() {
			sampler.Sample()
			fmt.Fprintf(os.Stderr, "\nsimulate: --- metrics (wal_*, pagefile_*, go_*) ---\n")
			obs.Default().DumpText(os.Stderr, "wal_", "pagefile_", "go_")
			snap := slow.Snapshot()
			fmt.Fprintf(os.Stderr, "simulate: --- flight recorder: %d slowest of %d observed queries ---\n", len(snap), slow.Observed())
			for _, tr := range snap {
				fmt.Fprintln(os.Stderr, tr.String())
			}
		}()
	}

	profile, ok := sim.Profiles[*faults]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown fault profile %q (want off, light, heavy)\n", *faults)
		os.Exit(2)
	}
	if *crash {
		runCrash(sim.CrashConfig{
			Trace:         sim.TraceConfig{Seed: *seed, Ops: *ops, Dim: *dim},
			PageSize:      *page,
			Kills:         *kills,
			MeanSegment:   *meanSeg,
			CheckpointOps: *ckptOps,
			FsyncEvery:    *fsyncEvery,
			Faults:        crashFaults(profile),
			FaultSeed:     *faultSeed,
			KillSeed:      *killSeed,
			MaxLeaked:     max(*maxLeaked, 0),
		}, *repeat, *verbose)
		return
	}
	cfg := sim.Config{
		Trace:      sim.TraceConfig{Seed: *seed, Ops: *ops, Dim: *dim},
		PageSize:   *page,
		Indexes:    strings.Split(*indexes, ","),
		Faults:     profile,
		FaultSeed:  *faultSeed,
		CheckEvery: *checkEvery,
		Lifecycle:  sim.LifecycleConfig{Deadline: *deadline, BudgetPages: *budgetPgs, Retry: *retry},
	}

	var digest uint64
	for run := 0; run < *repeat; run++ {
		rep, err := sim.Run(cfg)
		if err != nil {
			fail(cfg, err)
		}
		for _, ir := range rep.Indexes {
			if *maxLeaked >= 0 && ir.LeakedPages > *maxLeaked {
				fmt.Fprintf(os.Stderr, "LEAK: %s leaked %d pages after the final flush (max %d)\n",
					ir.Name, ir.LeakedPages, *maxLeaked)
				os.Exit(1)
			}
		}
		if run == 0 {
			digest = rep.Digest
			if *verbose {
				for _, ir := range rep.Indexes {
					fmt.Printf("%-7s ops=%d size=%d pages=%d mut-errs=%d unsupported=%d leaked=%d faults=%d digest=%016x\n",
						ir.Name, ir.Ops, ir.FinalSize, ir.NumPages, ir.MutationErrors,
						ir.Unsupported, ir.LeakedPages, ir.ChaosCounts.Total(), ir.Digest)
					fmt.Printf("        outcomes: ok=%d cancelled=%d timeout=%d shed=%d degraded=%d error=%d\n",
						ir.Outcomes[obs.OutcomeOK], ir.Outcomes[obs.OutcomeCancelled],
						ir.Outcomes[obs.OutcomeTimeout], ir.Outcomes[obs.OutcomeShed],
						ir.Outcomes[obs.OutcomeDegraded], ir.Outcomes[obs.OutcomeError])
				}
			}
		} else if rep.Digest != digest {
			fmt.Fprintf(os.Stderr, "NONDETERMINISM: run %d digest %016x != run 0 digest %016x (seed %d)\n",
				run, rep.Digest, digest, *seed)
			os.Exit(1)
		}
	}
	fmt.Printf("ok: %d run(s) x %d ops over [%s], faults=%s, digest=%016x\n",
		*repeat, *ops, *indexes, *faults, digest)
}

// crashFaults adapts a named profile for the crash loop: failed fsyncs
// join the diet (the WAL claims to survive them), lying fsyncs never do
// (no log can — RunCrash rejects such profiles outright).
func crashFaults(p pagefile.ChaosProfile) pagefile.ChaosProfile {
	if !p.Zero() {
		p.SyncErr = 0.05
	}
	p.SyncLost = 0
	return p
}

// runCrash drives the kill/reopen loop, optionally -repeat times with
// digests required to match, and exits nonzero on divergence.
func runCrash(cfg sim.CrashConfig, repeat int, verbose bool) {
	var digest uint64
	for run := 0; run < repeat; run++ {
		rep, err := sim.RunCrash(cfg)
		if err != nil {
			var d *sim.Divergence
			if errors.As(err, &d) {
				fmt.Fprintf(os.Stderr, "DIVERGENCE: %v\n", d)
				fmt.Fprintf(os.Stderr, "replay: go run ./cmd/simulate -crash -seed %d -kills %d -fault-seed %d -kill-seed %d\n",
					cfg.Trace.Seed, cfg.Kills, cfg.FaultSeed, cfg.KillSeed)
			} else {
				fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
			}
			os.Exit(1)
		}
		if run == 0 {
			digest = rep.Digest
			if verbose {
				fmt.Printf("crash: kills=%d ops=%d acked=%d rejected=%d txs-replayed=%d records=%d discarded=%d torn-bytes=%d ckpt-failed=%d/%d size=%d digest=%016x\n",
					rep.Kills, rep.Ops, rep.Acked, rep.Rejected, rep.TxsReplayed,
					rep.RecordsReplayed, rep.RecordsDiscarded, rep.TornBytes,
					rep.CheckpointFailures, rep.Checkpoints, rep.FinalSize, rep.Digest)
			}
		} else if rep.Digest != digest {
			fmt.Fprintf(os.Stderr, "NONDETERMINISM: crash run %d digest %016x != run 0 digest %016x (seed %d)\n",
				run, rep.Digest, digest, cfg.Trace.Seed)
			os.Exit(1)
		}
	}
	fmt.Printf("ok: crash loop, %d run(s) x %d kills, digest=%016x\n", repeat, cfg.Kills, digest)
}

// fail reports a divergence with a minimized reproducer and exits 1.
func fail(cfg sim.Config, err error) {
	var d *sim.Divergence
	if !errors.As(err, &d) {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "DIVERGENCE: %v\n", d)
	trace := sim.GenTrace(cfg.Trace)
	if d.OpIndex+1 <= len(trace) {
		min := sim.Minimize(cfg, d.Index, trace[:d.OpIndex+1], 60)
		fmt.Fprintf(os.Stderr, "minimized to %d ops (from %d); failing op: %+v\n",
			len(min), d.OpIndex+1, d.Op)
		fmt.Fprintf(os.Stderr, "replay: go run ./cmd/simulate -seed %d -ops %d -indexes %s -fault-seed %d\n",
			d.Seed, d.OpIndex+1, d.Index, cfg.FaultSeed)
	}
	os.Exit(1)
}
