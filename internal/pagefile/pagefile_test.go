package pagefile

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
)

// fileImpls returns constructors for every File implementation so the same
// conformance suite runs against each.
func fileImpls(t *testing.T) map[string]func() File {
	t.Helper()
	return map[string]func() File{
		"mem": func() File { return NewMemFile(256) },
		"disk": func() File {
			f, err := CreateDiskFile(filepath.Join(t.TempDir(), "pages.db"), 256)
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
		"buffered-mem": func() File { return NewBuffered(NewMemFile(256), 4) },
	}
}

func TestFileConformance(t *testing.T) {
	for name, mk := range fileImpls(t) {
		t.Run(name, func(t *testing.T) {
			f := mk()
			defer f.Close()
			if f.PageSize() != 256 {
				t.Fatalf("page size = %d", f.PageSize())
			}

			id1, err := f.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			id2, err := f.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id1 == id2 {
				t.Fatal("Allocate returned duplicate ids")
			}

			data := make([]byte, 256)
			for i := range data {
				data[i] = byte(i)
			}
			if err := f.WritePage(id1, data); err != nil {
				t.Fatal(err)
			}
			if err := f.WritePage(id2, []byte("short")); err != nil {
				t.Fatal(err)
			}

			buf := make([]byte, 256)
			if err := f.ReadPage(id1, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, data) {
				t.Fatal("page 1 round-trip mismatch")
			}
			if err := f.ReadPageSeq(id2, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf[:5], []byte("short")) {
				t.Fatal("page 2 round-trip mismatch")
			}
			// Short writes zero-fill the remainder.
			for i := 5; i < 256; i++ {
				if buf[i] != 0 {
					t.Fatalf("byte %d = %d, want 0 (zero fill)", i, buf[i])
				}
			}

			// Oversized write rejected.
			if err := f.WritePage(id1, make([]byte, 257)); !errors.Is(err, ErrTooLarge) {
				t.Fatalf("oversize write err = %v, want ErrTooLarge", err)
			}

			// Free/reallocate reuses the id.
			if err := f.Free(id1); err != nil {
				t.Fatal(err)
			}
			id3, err := f.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id3 != id1 {
				t.Fatalf("freed id not reused: got %d want %d", id3, id1)
			}
		})
	}
}

func TestMemFileErrors(t *testing.T) {
	f := NewMemFile(128)
	buf := make([]byte, 128)
	if err := f.ReadPage(0, buf); !errors.Is(err, ErrPageBounds) {
		t.Fatalf("out-of-bounds read err = %v", err)
	}
	id, _ := f.Allocate()
	if err := f.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadPage(id, buf); !errors.Is(err, ErrPageFreed) {
		t.Fatalf("freed read err = %v", err)
	}
	if err := f.Free(id); !errors.Is(err, ErrPageFreed) {
		t.Fatalf("double free err = %v", err)
	}
	f.Close()
	if _, err := f.Allocate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed alloc err = %v", err)
	}
}

func TestStatsCounting(t *testing.T) {
	f := NewMemFile(64)
	id, _ := f.Allocate()
	buf := make([]byte, 64)
	_ = f.WritePage(id, []byte("x"))
	_ = f.ReadPage(id, buf)
	_ = f.ReadPage(id, buf)
	_ = f.ReadPageSeq(id, buf)
	s := f.Stats()
	if s.RandomReads != 2 || s.SeqReads != 1 || s.Writes != 1 || s.Allocs != 1 {
		t.Fatalf("stats = %+v", *s)
	}
	if s.Reads() != 3 {
		t.Fatalf("Reads() = %d", s.Reads())
	}
	s.Reset()
	if s.Reads() != 0 || s.Writes != 0 {
		t.Fatal("Reset did not zero stats")
	}
}

func TestNormalizedIO(t *testing.T) {
	var s Stats
	s.RandomReads = 10
	// 10 random reads over a 100-page file: cost 0.1.
	if got := s.NormalizedIO(100); got != 0.1 {
		t.Fatalf("normalized = %g, want 0.1", got)
	}
	s = Stats{SeqReads: 100}
	// A pure sequential scan of the whole file scores exactly 0.1 — the
	// paper's convention for linear scan.
	if got := s.NormalizedIO(100); got != 0.1 {
		t.Fatalf("seq normalized = %g, want 0.1", got)
	}
	if got := s.NormalizedIO(0); got != 0 {
		t.Fatalf("empty file normalized = %g, want 0", got)
	}
}

func TestBufferedCountsMissesOnly(t *testing.T) {
	inner := NewMemFile(64)
	b := NewBuffered(inner, 2)
	ids := make([]PageID, 3)
	for i := range ids {
		id, _ := b.Allocate()
		ids[i] = id
		_ = b.WritePage(id, []byte{byte(i)})
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	b.Stats().Reset()
	inner.Stats().Reset()

	// Two pages fit: repeated reads of the same two are hits after the
	// first miss each.
	for i := 0; i < 5; i++ {
		_ = b.ReadPage(ids[0], buf)
		_ = b.ReadPage(ids[1], buf)
	}
	if got := b.Stats().RandomReads; got > 2 {
		t.Fatalf("buffered misses = %d, want <= 2", got)
	}
	// Touch the third page: evicts one, further alternation thrashes.
	_ = b.ReadPage(ids[2], buf)
	if buf[0] != 2 {
		t.Fatalf("read wrong content: %d", buf[0])
	}
}

func TestBufferedWriteBack(t *testing.T) {
	inner := NewMemFile(64)
	b := NewBuffered(inner, 1)
	id1, _ := b.Allocate()
	id2, _ := b.Allocate()
	if err := b.WritePage(id1, []byte("aa")); err != nil {
		t.Fatal(err)
	}
	// Writing id2 evicts id1, forcing write-back to inner.
	if err := b.WritePage(id2, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := inner.ReadPage(id1, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:2]) != "aa" {
		t.Fatalf("write-back content = %q", buf[:2])
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Close flushed id2 too — reopen inner view.
	inner2 := inner
	_ = inner2
}

func TestDiskFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.db")
	f, err := CreateDiskFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	want := make(map[PageID][]byte)
	for i := 0; i < 20; i++ {
		id, err := f.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 128)
		rng.Read(data)
		if err := f.WritePage(id, data); err != nil {
			t.Fatal(err)
		}
		want[id] = data
	}
	buf := make([]byte, 128)
	for id, data := range want {
		if err := f.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data) {
			t.Fatalf("page %d mismatch", id)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
}

func TestFaultFile(t *testing.T) {
	inner := NewMemFile(64)
	f := NewFaultFile(inner, 2)
	if _, err := f.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := f.WritePage(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Fuse burned: everything fails now.
	buf := make([]byte, 64)
	if err := f.ReadPage(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if _, err := f.Allocate(); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if err := f.Free(0); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if err := f.ReadPageSeq(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if err := f.WritePage(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}
