package perf

// Canonical benchmark names in the CI snapshot (see .github/workflows and
// the bench/core packages). Kept as constants so the rule table and the
// tests cannot drift apart silently.
const (
	BenchMixedMVCC     = "internal/bench.Mixed90R10W/mvcc"
	BenchMixedRWLock   = "internal/bench.Mixed90R10W/rwlock"
	BenchMixedReadOnly = "internal/bench.MixedReadOnly"
	BenchLeafScanOld   = "internal/bench.LeafScanLegacy"
	BenchLeafScanSlab  = "internal/bench.LeafScanSlab"
	BenchLeafDecOld    = "internal/bench.LeafDecodeLegacy"
	BenchLeafDecSlab   = "internal/bench.LeafDecodeSlab"
	BenchKNNTracerOff  = "internal/core.SearchKNNTracerOff"
	BenchKNNTracerNop  = "internal/core.SearchKNNTracerNop"
	BenchKNNCtx        = "internal/core.SearchKNNCtx16d"
	BenchBoxCtx        = "internal/core.SearchBoxCtx16d"
	BenchRangeCtx      = "internal/core.SearchRangeCtxL2_16d"
)

// DefaultRules is the CI rule table. It folds the three bespoke gates that
// used to be separate test steps into the uniform mechanism:
//
//   - leaf-scan layout gate (was TestLeafScanGate, LEAF_GATE=1): the slab
//     layout must stay within 1.25x of the legacy per-point layout, same
//     run, always gateable;
//   - tracer overhead gate (was TestTracerOverheadGate, OBS_OVERHEAD_GATE=1):
//     an installed-but-nop tracer must stay within 8% of tracer-off on the
//     k-NN hot path, and both must stay at zero allocations;
//   - mixed-workload gate (was TestMixedWorkloadGate, MIXED_GATE=1): MVCC
//     readers under a 90/10 mixed load must retain at least 20% of the
//     read-only throughput.
//
// On top of those same-run invariants, wall-clock medians compare against
// the committed baseline with a 25% gate / 10% warn band, requiring at
// least 3 repeats and a matching machine fingerprint to hard-fail.
func DefaultRules() []Rule {
	nsDelta := func(bench string) DeltaRule {
		return DeltaRule{
			Bench: bench, Metric: "ns/op",
			MaxRegress: 0.25, WarnRegress: 0.10,
			MinRepeats: 3, MachineBound: true,
		}
	}
	return []Rule{
		// Same-run ratio gates (machine-independent, always enforced).
		RatioRule{
			Name:     "leaf-scan-layout",
			NumBench: BenchLeafScanSlab, NumMetric: "ns/op",
			DenBench: BenchLeafScanOld, DenMetric: "ns/op",
			MaxRatio: 1.25,
		},
		RatioRule{
			Name:     "leaf-decode-layout",
			NumBench: BenchLeafDecSlab, NumMetric: "ns/op",
			DenBench: BenchLeafDecOld, DenMetric: "ns/op",
			MaxRatio: 1.25,
		},
		RatioRule{
			Name:     "tracer-overhead",
			NumBench: BenchKNNTracerNop, NumMetric: "ns/op",
			DenBench: BenchKNNTracerOff, DenMetric: "ns/op",
			MaxRatio: 1.08,
		},
		RatioRule{
			Name:     "mixed-read-retention",
			NumBench: BenchMixedMVCC, NumMetric: "read_qps",
			DenBench: BenchMixedReadOnly, DenMetric: "read_qps",
			MinRatio: 0.20,
		},
		// Zero-allocation contract on the query hot path, traced off or nop.
		AllocRule{Bench: BenchKNNTracerOff, MaxAllocs: 0},
		AllocRule{Bench: BenchKNNTracerNop, MaxAllocs: 0},
		// Baseline trajectory: wall-clock medians of the hot-path suites.
		nsDelta(BenchKNNCtx),
		nsDelta(BenchBoxCtx),
		nsDelta(BenchRangeCtx),
		nsDelta(BenchKNNTracerOff),
		nsDelta(BenchLeafScanSlab),
		nsDelta(BenchLeafDecSlab),
		DeltaRule{
			Bench: BenchMixedMVCC, Metric: "read_qps",
			MaxRegress: 0.25, WarnRegress: 0.10,
			MinRepeats: 3, MachineBound: true, HigherIsBetter: true,
		},
	}
}
