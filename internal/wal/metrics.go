package wal

import (
	"sync"

	"hybridtree/internal/obs"
)

// walMetrics is the process-wide instrument bundle, resolved once like
// core's treeMetrics: names are fixed, so every wal.File shares it and the
// write path only pays atomic adds.
type walMetrics struct {
	appends     *obs.Counter // records appended to the log
	commits     *obs.Counter // transactions sealed durable
	fsyncs      *obs.Counter // log fsyncs issued
	fsyncNs     *obs.Histogram
	groupedOps  *obs.Counter // writes that rode a commit (group size numerator)
	checkpoints *obs.Counter
	ckptFails   *obs.Counter
	ckptPages   *obs.Counter // overlay pages written back at checkpoints
	ckptSkipped *obs.Counter // overlay pages skipped (inner already matched)

	recoveries  *obs.Counter
	recReplayed *obs.Counter // committed write records replayed
	recDiscard  *obs.Counter // valid records dropped (uncommitted tail)
	recTorn     *obs.Counter // unparseable bytes dropped from the tail
	recNs       *obs.Histogram
}

// MetricNames lists every wal_* metric the package registers, for callers
// that print a durability-cost summary at end of run (simulate -obs,
// hybridbench -obs). Kept in sync with metrics() below.
var MetricNames = []string{
	"wal_appends_total",
	"wal_commits_total",
	"wal_fsyncs_total",
	"wal_fsync_ns",
	"wal_grouped_ops_total",
	"wal_checkpoints_total",
	"wal_checkpoint_failures_total",
	"wal_checkpoint_pages_total",
	"wal_checkpoint_pages_skipped_total",
	"wal_recoveries_total",
	"wal_recover_records_replayed_total",
	"wal_recover_records_discarded_total",
	"wal_recover_torn_bytes_total",
	"wal_recovery_ns",
}

var (
	metricsOnce sync.Once
	metricsVal  *walMetrics
)

// RegisterMetrics forces the wal_* instruments into the default registry
// without opening a log, so end-of-run dumps show all fourteen names (as
// zeros) even for runs that never touched the WAL.
func RegisterMetrics() { metrics() }

func metrics() *walMetrics {
	metricsOnce.Do(func() {
		r := obs.Default()
		metricsVal = &walMetrics{
			appends:     r.Counter("wal_appends_total"),
			commits:     r.Counter("wal_commits_total"),
			fsyncs:      r.Counter("wal_fsyncs_total"),
			fsyncNs:     r.Histogram("wal_fsync_ns"),
			groupedOps:  r.Counter("wal_grouped_ops_total"),
			checkpoints: r.Counter("wal_checkpoints_total"),
			ckptFails:   r.Counter("wal_checkpoint_failures_total"),
			ckptPages:   r.Counter("wal_checkpoint_pages_total"),
			ckptSkipped: r.Counter("wal_checkpoint_pages_skipped_total"),
			recoveries:  r.Counter("wal_recoveries_total"),
			recReplayed: r.Counter("wal_recover_records_replayed_total"),
			recDiscard:  r.Counter("wal_recover_records_discarded_total"),
			recTorn:     r.Counter("wal_recover_torn_bytes_total"),
			recNs:       r.Histogram("wal_recovery_ns"),
		}
	})
	return metricsVal
}
