package dataset

import (
	"math"
	"testing"
)

func TestFourierBasics(t *testing.T) {
	for _, dim := range []int{8, 12, 16} {
		pts := Fourier(2000, dim, 1)
		if len(pts) != 2000 {
			t.Fatalf("dim %d: got %d points", dim, len(pts))
		}
		for i, p := range pts {
			if len(p) != dim {
				t.Fatalf("point %d has dim %d", i, len(p))
			}
			for d, v := range p {
				if v < 0 || v > 1 || math.IsNaN(float64(v)) {
					t.Fatalf("point %d dim %d = %g outside [0,1]", i, d, v)
				}
			}
		}
	}
}

func TestFourierDeterministic(t *testing.T) {
	a := Fourier(100, 16, 42)
	b := Fourier(100, 16, 42)
	c := Fourier(100, 16, 43)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed produced different data")
		}
	}
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

// Energy must concentrate in the low-order coefficients: the variance of
// leading dimensions should dominate trailing ones. This is the property
// that makes higher dimensions non-discriminating (implicit dimensionality
// reduction, paper §3.3).
func TestFourierEnergyDecay(t *testing.T) {
	pts := Fourier(3000, 16, 7)
	variance := func(d int) float64 {
		var sum, sumSq float64
		for _, p := range pts {
			v := float64(p[d])
			sum += v
			sumSq += v * v
		}
		n := float64(len(pts))
		return sumSq/n - (sum/n)*(sum/n)
	}
	// Compare total spread of the first complex coefficient (dims 0,1)
	// against the last (dims 14,15) in raw (pre-normalization) terms:
	// after per-dim normalization variances are comparable, so instead
	// check discrimination via near-boundary concentration: trailing dims
	// should have most mass tightly clustered (low variance relative to
	// leading dims at least is not guaranteed post-normalization, so use
	// interquartile-like spread of the middle mass).
	lead := variance(0) + variance(1)
	trail := variance(14) + variance(15)
	// Normalization equalizes ranges but not shape; the trailing
	// coefficients of smooth contours are noise-dominated and
	// concentrated, so their variance within the normalized range is
	// smaller.
	if trail > lead {
		t.Fatalf("no energy decay: lead var %g, trail var %g", lead, trail)
	}
}

func TestColHistBasics(t *testing.T) {
	for _, dim := range []int{16, 32, 64} {
		pts := ColHist(1500, dim, 3)
		if len(pts) != 1500 {
			t.Fatalf("dim %d: got %d", dim, len(pts))
		}
		for i, p := range pts {
			if len(p) != dim {
				t.Fatalf("point %d dim = %d", i, len(p))
			}
			var sum float64
			for d, v := range p {
				if v < 0 || v > 1 || math.IsNaN(float64(v)) {
					t.Fatalf("point %d dim %d = %g", i, d, v)
				}
				sum += float64(v)
			}
			if sum < 0.97 || sum > 1.03 {
				t.Fatalf("histogram %d sums to %g, want ~1", i, sum)
			}
		}
	}
}

func TestColHistUnsupportedDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dim 10 should panic")
		}
	}()
	ColHist(10, 10, 1)
}

func TestColHistSparsity(t *testing.T) {
	// Real color histograms are sparse: most bins hold almost nothing.
	pts := ColHist(500, 64, 9)
	small := 0
	total := 0
	for _, p := range pts {
		for _, v := range p {
			total++
			if v < 0.02 {
				small++
			}
		}
	}
	frac := float64(small) / float64(total)
	if frac < 0.5 {
		t.Fatalf("only %.0f%% of bins are near-empty; histograms not sparse", frac*100)
	}
}

func TestColHistDeterministic(t *testing.T) {
	a := ColHist(50, 32, 11)
	b := ColHist(50, 32, 11)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed produced different data")
		}
	}
}

func TestColHistMarginalsConsistent(t *testing.T) {
	// The 16-d histogram is a coarsening of the 64-d one in expectation;
	// verify structurally that the coarser grids still sum to 1 and are
	// less sparse (aggregation fills bins).
	fine := ColHist(300, 64, 13)
	coarse := ColHist(300, 16, 13)
	countSmall := func(pts [][]float32) float64 {
		small, total := 0, 0
		for _, p := range pts {
			for _, v := range p {
				total++
				if v < 0.02 {
					small++
				}
			}
		}
		return float64(small) / float64(total)
	}
	f := make([][]float32, len(fine))
	for i := range fine {
		f[i] = fine[i]
	}
	c := make([][]float32, len(coarse))
	for i := range coarse {
		c[i] = coarse[i]
	}
	if countSmall(c) >= countSmall(f) {
		t.Fatalf("coarse grid (%.2f near-empty) should be denser than fine (%.2f)",
			countSmall(c), countSmall(f))
	}
}

// FourierGlobal preserves relative coefficient extents: the leading
// dimensions must span far more of the unit interval than the trailing
// ones — the structure implicit dimensionality reduction feeds on.
func TestFourierGlobalExtentDecay(t *testing.T) {
	pts := FourierGlobal(3000, 16, 7)
	extent := func(d int) float64 {
		lo, hi := pts[0][d], pts[0][d]
		for _, p := range pts {
			if p[d] < lo {
				lo = p[d]
			}
			if p[d] > hi {
				hi = p[d]
			}
		}
		return float64(hi - lo)
	}
	lead := extent(0) + extent(1)
	trail := extent(14) + extent(15)
	if trail > lead/3 {
		t.Fatalf("extent decay missing: lead %g, trail %g", lead, trail)
	}
	for i, p := range pts {
		for d, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("point %d dim %d = %g outside unit cube", i, d, v)
			}
		}
	}
}

func TestFourierGlobalDeterministic(t *testing.T) {
	a := FourierGlobal(50, 12, 9)
	b := FourierGlobal(50, 12, 9)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed produced different data")
		}
	}
}
