// Package concurrent provides a goroutine-safe wrapper around the hybrid
// tree. The core tree, like most paginated index implementations, is
// single-threaded: traversals update the decoded-node cache and the access
// counters, so even logically read-only operations mutate shared state.
// Tree serializes every operation behind one mutex — the right call for
// the library's primary use (offline benchmark-grade indexing) and a safe
// default for services with moderate concurrency. Callers needing true
// parallel reads should shard across multiple trees.
package concurrent

import (
	"fmt"
	"sync"

	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// Tree is a mutex-guarded hybrid tree.
type Tree struct {
	mu   sync.Mutex
	tree *core.Tree
}

// New creates a goroutine-safe hybrid tree on file.
func New(file pagefile.File, cfg core.Config) (*Tree, error) {
	t, err := core.New(file, cfg)
	if err != nil {
		return nil, err
	}
	return &Tree{tree: t}, nil
}

// Open wraps core.Open.
func Open(file pagefile.File, cfg core.Config) (*Tree, error) {
	t, err := core.Open(file, cfg)
	if err != nil {
		return nil, err
	}
	return &Tree{tree: t}, nil
}

// Wrap guards an existing tree. The caller must not use the inner tree
// directly afterwards.
func Wrap(t *core.Tree) *Tree { return &Tree{tree: t} }

// Insert is a goroutine-safe core.Tree.Insert.
func (t *Tree) Insert(p geom.Point, rid core.RecordID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tree.Insert(p, rid)
}

// InsertBatch inserts many entries under one lock acquisition.
func (t *Tree) InsertBatch(pts []geom.Point, rids []core.RecordID) error {
	if len(pts) != len(rids) {
		return fmt.Errorf("concurrent: %d points but %d record ids", len(pts), len(rids))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, p := range pts {
		if err := t.tree.Insert(p, rids[i]); err != nil {
			return err
		}
	}
	return nil
}

// Delete is a goroutine-safe core.Tree.Delete.
func (t *Tree) Delete(p geom.Point, rid core.RecordID) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tree.Delete(p, rid)
}

// Update atomically replaces the vector of a record: the delete and insert
// happen under one lock, so no concurrent search observes the record
// missing.
func (t *Tree) Update(old, new geom.Point, rid core.RecordID) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	found, err := t.tree.Delete(old, rid)
	if err != nil || !found {
		return found, err
	}
	return true, t.tree.Insert(new, rid)
}

// SearchBox is a goroutine-safe core.Tree.SearchBox. Returned points are
// cloned so they remain valid after the lock is released.
func (t *Tree) SearchBox(q geom.Rect) ([]core.Entry, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	es, err := t.tree.SearchBox(q)
	cloneEntries(es)
	return es, err
}

// SearchRange is a goroutine-safe core.Tree.SearchRange.
func (t *Tree) SearchRange(q geom.Point, radius float64, m dist.Metric) ([]core.Neighbor, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ns, err := t.tree.SearchRange(q, radius, m)
	cloneNeighbors(ns)
	return ns, err
}

// SearchKNN is a goroutine-safe core.Tree.SearchKNN.
func (t *Tree) SearchKNN(q geom.Point, k int, m dist.Metric) ([]core.Neighbor, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ns, err := t.tree.SearchKNN(q, k, m)
	cloneNeighbors(ns)
	return ns, err
}

// CountBox is a goroutine-safe core.Tree.CountBox.
func (t *Tree) CountBox(q geom.Rect) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tree.CountBox(q)
}

// Size returns the number of stored records.
func (t *Tree) Size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tree.Size()
}

// CheckInvariants runs the structural audit under the lock.
func (t *Tree) CheckInvariants() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tree.CheckInvariants()
}

// Close flushes metadata.
func (t *Tree) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tree.Close()
}

func cloneEntries(es []core.Entry) {
	for i := range es {
		es[i].Point = es[i].Point.Clone()
	}
}

func cloneNeighbors(ns []core.Neighbor) {
	for i := range ns {
		ns[i].Point = ns[i].Point.Clone()
	}
}
