package wal

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
)

// LogStore is the append-only byte store a wal.File logs into. Append
// acknowledges without durability; Sync makes every acknowledged byte
// durable; Truncate discards an acknowledged tail (used to rewind a commit
// whose fsync failed, and to drop torn bytes at recovery). Contents reports
// everything acknowledged so far for the recovery scan.
//
// Like pagefile.File, mutating calls require external exclusion; the wal
// layer serializes them behind the tree's writer lock.
type LogStore interface {
	Append(b []byte) error
	Sync() error
	Size() int64
	Truncate(n int64) error
	Contents() ([]byte, error)
	Close() error
}

// MemLog is the in-memory LogStore the simulator crashes on purpose. It
// tracks the durable watermark (everything before the last successful
// Sync); Crash discards a random amount of the unsynced tail and may
// corrupt the torn edge, which is the exact damage a power cut inflicts on
// an append-only file.
type MemLog struct {
	mu     sync.Mutex
	buf    []byte
	synced int

	failSyncs int // inject: fail the next N Sync calls
}

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog { return &MemLog{} }

// Append implements LogStore.
func (l *MemLog) Append(b []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = append(l.buf, b...)
	return nil
}

// Sync implements LogStore.
func (l *MemLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failSyncs > 0 {
		l.failSyncs--
		return fmt.Errorf("wal: injected log sync failure")
	}
	l.synced = len(l.buf)
	return nil
}

// Size implements LogStore.
func (l *MemLog) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(len(l.buf))
}

// Truncate implements LogStore.
func (l *MemLog) Truncate(n int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 || n > int64(len(l.buf)) {
		return fmt.Errorf("wal: truncate %d out of range [0, %d]", n, len(l.buf))
	}
	l.buf = l.buf[:n]
	if l.synced > int(n) {
		l.synced = int(n)
	}
	return nil
}

// Contents implements LogStore. The returned slice is a copy.
func (l *MemLog) Contents() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.buf...), nil
}

// Close implements LogStore.
func (l *MemLog) Close() error { return nil }

// Synced returns the durable watermark in bytes.
func (l *MemLog) Synced() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// FailNextSyncs arms the next n Sync calls to fail, for rewind tests.
func (l *MemLog) FailNextSyncs(n int) {
	l.mu.Lock()
	l.failSyncs = n
	l.mu.Unlock()
}

// Crash simulates a power cut: a seeded random prefix of the unsynced tail
// survives, the rest vanishes, and with some probability the surviving torn
// edge takes a flipped byte (a sector that was mid-write). Afterwards
// everything present is considered durable — it is what the disk holds on
// reboot.
func (l *MemLog) Crash(seed int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if tail := len(l.buf) - l.synced; tail > 0 {
		rng := rand.New(rand.NewSource(seed))
		keep := rng.Intn(tail + 1)
		l.buf = l.buf[:l.synced+keep]
		if keep > 0 && rng.Float64() < 0.25 {
			l.buf[l.synced+rng.Intn(keep)] ^= 0xA5
		}
	}
	l.synced = len(l.buf)
}

// FileLog is a LogStore backed by an operating-system file.
type FileLog struct {
	f    *os.File
	size int64
}

// OpenFileLog opens (creating if absent) the log file at path. Existing
// contents are preserved for recovery.
func OpenFileLog(path string) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open log %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: stat log %s: %w", path, err)
	}
	return &FileLog{f: f, size: info.Size()}, nil
}

// Append implements LogStore.
func (l *FileLog) Append(b []byte) error {
	if _, err := l.f.WriteAt(b, l.size); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(b))
	return nil
}

// Sync implements LogStore.
func (l *FileLog) Sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: log sync: %w", err)
	}
	return nil
}

// Size implements LogStore.
func (l *FileLog) Size() int64 { return l.size }

// Truncate implements LogStore.
func (l *FileLog) Truncate(n int64) error {
	if err := l.f.Truncate(n); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	l.size = n
	return nil
}

// Contents implements LogStore. A file shorter than the tracked size
// (external truncation, a lost append) is an error, not a zero-padded
// buffer: recovery must see the damage, not silently parse zeros.
func (l *FileLog) Contents() ([]byte, error) {
	buf := make([]byte, l.size)
	n, err := l.f.ReadAt(buf, 0)
	if int64(n) != l.size {
		if err == nil || err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wal: read log: got %d of %d bytes: %w", n, l.size, err)
	}
	return buf, nil
}

// Close implements LogStore.
func (l *FileLog) Close() error { return l.f.Close() }
