// Command hybridbench regenerates the tables and figures of "The Hybrid
// Tree: An Index Structure for High Dimensional Feature Spaces" (ICDE
// 1999). Each experiment builds the hybrid tree and its competitors over
// synthetic FOURIER/COLHIST datasets, runs the paper's constant-selectivity
// query workloads, and prints the figure as an aligned series table.
//
// Usage:
//
//	hybridbench -fig 6cd              # one figure at the default scale
//	hybridbench -all -paper           # everything at the paper's full scale
//	hybridbench -table 1 -colhist 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hybridtree/internal/bench"
	"hybridtree/internal/core"
	"hybridtree/internal/obs"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure to reproduce: 5ab, 5c, 6ab, 6cd, 7ab, 7cd")
		table    = flag.Int("table", 0, "table to reproduce: 1 or 2 (3: per-method obs counters, not from the paper)")
		ablation = flag.String("ablation", "", "ablation to run: pos, queryside, bulk, dp, elsmem, mmap")
		all      = flag.Bool("all", false, "run every figure, table and ablation")
		paper    = flag.Bool("paper", false, "use the paper's full scale (FOURIER 400K, COLHIST 70K, 100 queries)")
		fourierN = flag.Int("fourier", 0, "FOURIER dataset size (overrides scale preset)")
		colhistN = flag.Int("colhist", 0, "COLHIST dataset size (overrides scale preset)")
		queries  = flag.Int("queries", 0, "queries per measurement point")
		pageSize = flag.Int("page", 0, "page size in bytes (default 4096, as in the paper)")
		seed     = flag.Int64("seed", 0, "random seed (default 1)")
		quiet    = flag.Bool("quiet", false, "suppress progress lines")
		obsAddr  = flag.String("obs", "", "serve the introspection endpoint on this address (e.g. localhost:6060) for the duration of the run")
		obsHold  = flag.Duration("obs-hold", 0, "keep the process (and the -obs endpoint) alive this long after the run finishes; -1s means forever")
	)
	flag.Parse()

	if *obsAddr != "" {
		ring := obs.NewRing(256)
		core.SetDefaultTracer(ring)
		srv, addr, err := obs.Serve(*obsAddr, obs.Default(), ring)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybridbench: obs endpoint: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "hybridbench: metrics at http://%s/metrics, traces at http://%s/debug/queries\n", addr, addr)
		if *obsHold != 0 {
			defer func() {
				if *obsHold < 0 {
					fmt.Fprintf(os.Stderr, "hybridbench: holding obs endpoint open; ^C to exit\n")
					select {}
				}
				fmt.Fprintf(os.Stderr, "hybridbench: holding obs endpoint open for %v\n", *obsHold)
				time.Sleep(*obsHold)
			}()
		}
	}

	opts := bench.Defaults()
	if *paper {
		opts = bench.Paper()
	}
	if *fourierN > 0 {
		opts.FourierN = *fourierN
	}
	if *colhistN > 0 {
		opts.ColHistN = *colhistN
	}
	if *queries > 0 {
		opts.Queries = *queries
	}
	if *pageSize > 0 {
		opts.PageSize = *pageSize
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if !*quiet {
		opts.Out = os.Stderr
	}

	if !*all && *fig == "" && *table == 0 && *ablation == "" {
		flag.Usage()
		os.Exit(2)
	}

	run := func(name string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybridbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	if *all || *fig == "5ab" {
		a, b, err := bench.Fig5ab(opts)
		run("fig5ab", err)
		a.Print(os.Stdout)
		b.Print(os.Stdout)
	}
	if *all || *fig == "5c" {
		f, err := bench.Fig5c(opts)
		run("fig5c", err)
		f.Print(os.Stdout)
	}
	if *all || *fig == "6ab" {
		io, cpu, err := bench.Fig6(opts, "FOURIER")
		run("fig6ab", err)
		io.Print(os.Stdout)
		cpu.Print(os.Stdout)
	}
	if *all || *fig == "6cd" {
		io, cpu, err := bench.Fig6(opts, "COLHIST")
		run("fig6cd", err)
		io.Print(os.Stdout)
		cpu.Print(os.Stdout)
	}
	if *all || *fig == "7ab" {
		io, cpu, err := bench.Fig7ab(opts)
		run("fig7ab", err)
		io.Print(os.Stdout)
		cpu.Print(os.Stdout)
	}
	if *all || *fig == "7cd" {
		io, cpu, err := bench.Fig7cd(opts)
		run("fig7cd", err)
		io.Print(os.Stdout)
		cpu.Print(os.Stdout)
	}
	if *all || *table == 1 {
		t, err := bench.Table1(opts)
		run("table1", err)
		t.Print(os.Stdout)
	}
	if *all || *table == 2 {
		t, err := bench.Table2(opts)
		run("table2", err)
		t.Print(os.Stdout)
	}
	if *all || *table == 3 {
		t, err := bench.TableObs(opts)
		run("table3", err)
		t.Print(os.Stdout)
	}
	if *all || *ablation == "pos" {
		f, err := bench.AblationSplitPosition(opts)
		run("ablation pos", err)
		f.Print(os.Stdout)
	}
	if *all || *ablation == "queryside" {
		f, err := bench.AblationQuerySide(opts)
		run("ablation queryside", err)
		f.Print(os.Stdout)
	}
	if *all || *ablation == "bulk" {
		t, err := bench.AblationBulkLoad(opts)
		run("ablation bulk", err)
		t.Print(os.Stdout)
	}
	if *all || *ablation == "dp" {
		t, err := bench.AblationDPFamily(opts)
		run("ablation dp", err)
		t.Print(os.Stdout)
	}
	if *all || *ablation == "elsmem" {
		t, err := bench.AblationELSMemory(opts)
		run("ablation elsmem", err)
		t.Print(os.Stdout)
	}
	if *all || *ablation == "mmap" {
		t, err := bench.AblationMmap(opts)
		run("ablation mmap", err)
		t.Print(os.Stdout)
	}
}
