package core

import (
	"hybridtree/internal/pagefile"
)

// store mediates between decoded nodes and their on-disk pages. It keeps a
// write-through cache of decoded nodes so that tree construction does not
// pay a decode per traversal step, while still charging *every* logical
// node access to the page file's counters: the paper's I/O metric is the
// number of disk accesses a cold query would make, so a cache hit must cost
// the same one logical read as a miss.
type store struct {
	file  pagefile.File
	dim   int
	cache map[pagefile.PageID]*node
	buf   []byte
}

func newStore(file pagefile.File, dim int) *store {
	return &store{
		file:  file,
		dim:   dim,
		cache: make(map[pagefile.PageID]*node),
		buf:   make([]byte, file.PageSize()),
	}
}

// get returns the decoded node for id, counting one logical random read.
func (s *store) get(id pagefile.PageID) (*node, error) {
	if n, ok := s.cache[id]; ok {
		s.file.Stats().RandomReads++
		return n, nil
	}
	if err := s.file.ReadPage(id, s.buf); err != nil {
		return nil, err
	}
	n, err := decodeNode(id, s.buf, s.dim)
	if err != nil {
		return nil, err
	}
	s.cache[id] = n
	return n, nil
}

// alloc creates a fresh node of the requested kind backed by a new page.
// The caller must put it once populated.
func (s *store) alloc(leaf bool) (*node, error) {
	id, err := s.file.Allocate()
	if err != nil {
		return nil, err
	}
	n := &node{id: id, leaf: leaf, kdRoot: kdNone}
	s.cache[id] = n
	return n, nil
}

// put writes the node through to its page.
func (s *store) put(n *node) error {
	size, err := n.encode(s.buf, s.dim)
	if err != nil {
		return err
	}
	if err := s.file.WritePage(n.id, s.buf[:size]); err != nil {
		return err
	}
	s.cache[n.id] = n
	return nil
}

// free releases the node's page and drops it from the cache.
func (s *store) free(id pagefile.PageID) error {
	delete(s.cache, id)
	return s.file.Free(id)
}

// dropCache empties the decoded-node cache (used by tests that want to
// force decode paths, and by Close).
func (s *store) dropCache() {
	s.cache = make(map[pagefile.PageID]*node)
}
