package obs

import (
	"math"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRuntimeSamplerSample(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg)
	runtime.GC() // guarantee at least one GC cycle and pause to fold in
	s.Sample()

	if got := reg.Gauge("go_goroutines").Value(); got < 1 {
		t.Fatalf("go_goroutines = %d", got)
	}
	if got := reg.Gauge("go_gomaxprocs").Value(); got < 1 {
		t.Fatalf("go_gomaxprocs = %d", got)
	}
	if got := reg.Gauge("go_memory_total_bytes").Value(); got <= 0 {
		t.Fatalf("go_memory_total_bytes = %d", got)
	}
	if got := reg.Gauge("go_gc_cycles_total").Value(); got < 1 {
		t.Fatalf("go_gc_cycles_total = %d after explicit GC", got)
	}
	if got := reg.Histogram("go_gc_pause_ns").Count(); got < 1 {
		t.Fatalf("go_gc_pause_ns count = %d after explicit GC", got)
	}

	// A second sample folds only the delta: pause count must not double.
	before := reg.Histogram("go_gc_pause_ns").Count()
	s.Sample()
	after := reg.Histogram("go_gc_pause_ns").Count()
	if after < before {
		t.Fatalf("pause count went backwards: %d -> %d", before, after)
	}
	runtime.GC()
	s.Sample()
	if got := reg.Histogram("go_gc_pause_ns").Count(); got <= after {
		t.Fatalf("new GC cycle added no pause delta: %d -> %d", after, got)
	}
}

func TestRuntimeSamplerStartStop(t *testing.T) {
	reg := NewRegistry()
	s := StartRuntimeSampler(reg, 100*time.Millisecond)
	if got := reg.Gauge("go_goroutines").Value(); got < 1 {
		t.Fatalf("initial sample missing: go_goroutines = %d", got)
	}
	s.Stop()
	s.Stop() // idempotent

	// A never-started sampler's Stop must not hang.
	done := make(chan struct{})
	go func() {
		NewRuntimeSampler(NewRegistry()).Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop on a never-started sampler hung")
	}
}

func TestRuntimeMetricsInPrometheusOutput(t *testing.T) {
	reg := NewRegistry()
	NewRuntimeSampler(reg).Sample()
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, name := range []string{"go_goroutines", "go_heap_objects_bytes", "go_gc_pause_ns", "go_sched_latency_ns"} {
		if !strings.Contains(out, name) {
			t.Errorf("/metrics missing %s:\n%s", name, out)
		}
	}
}

func TestBucketMidNs(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		lo, hi float64
		want   int64
	}{
		{0, 2e-6, 1000},       // mid of [0, 2us] = 1us
		{-inf, 1e-6, 1000},    // open low edge: the finite bound
		{1e-3, inf, 1000000},  // open high edge: the finite bound
		{-inf, inf, 0},        // degenerate
		{1e-6, 3e-6, 2000},    // plain midpoint
	}
	for _, c := range cases {
		if got := bucketMidNs(c.lo, c.hi); got != c.want {
			t.Errorf("bucketMidNs(%v, %v) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestBuildVersion(t *testing.T) {
	commit, goVersion := BuildVersion()
	if commit == "" || goVersion == "" {
		t.Fatalf("BuildVersion() = %q, %q", commit, goVersion)
	}
	if !strings.HasPrefix(goVersion, "go") {
		t.Fatalf("go version %q", goVersion)
	}
	reg := NewRegistry()
	c2, g2 := RegisterBuildInfo(reg)
	if c2 != commit || g2 != goVersion {
		t.Fatalf("RegisterBuildInfo returned %q/%q, BuildVersion %q/%q", c2, g2, commit, goVersion)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "build_info{commit=") {
		t.Fatalf("registry missing build_info gauge:\n%s", sb.String())
	}
}
