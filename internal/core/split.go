package core

import (
	"math"
	"sort"

	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// splitResult describes a completed node split to the parent level: the
// split dimension, the two split positions (lsp == rsp for the always-clean
// data-node splits; lsp > rsp when an index split had to overlap), and the
// two resulting pages. left always reuses the page of the node that split,
// so parents holding its id stay valid.
type splitResult struct {
	dim         uint16
	lsp, rsp    float32
	left, right pagefile.PageID
}

// IndexSplitCandidate summarizes one candidate split dimension for an index
// node: the overlap w_d and extent s_d resulting from the 1-d bipartition
// of the children's projected segments (Section 3.3), plus the projected
// segment centers for variance-based policies.
type IndexSplitCandidate struct {
	Dim     int
	Overlap float64 // w_d = max(0, lsp-rsp) of the trial bipartition
	Extent  float64 // s_d = extent of the node's BR along Dim
	Centers []float64
}

// SplitPolicy selects split dimensions and positions. The hybrid tree's
// native policy is EDAPolicy; VAMPolicy reproduces the VAMSplit baseline of
// the paper's Figure 5(a,b) ablation.
type SplitPolicy interface {
	Name() string
	// ChooseDataSplit returns the split dimension and target position for
	// an overflowing data node whose points have bounding rectangle br.
	// The executor clamps the position to honor utilization.
	ChooseDataSplit(pts []geom.Point, br geom.Rect) (dim int, pos float32)
	// ChooseIndexDim picks the split dimension for an index node from the
	// trial-bipartition summaries. cands is never empty.
	ChooseIndexDim(cands []IndexSplitCandidate, cfg *Config) int
}

// EDAPolicy implements the paper's splitting strategy: it minimizes the
// increase in the expected number of disk accesses (EDA) per query.
//
// Data nodes (Section 3.2): the increase in EDA is r/(s_d + r), minimized
// by the maximum-extent dimension regardless of the query side r, the data
// distribution, or the split position; the position is the middle of the
// extent, nudged only as far as the utilization constraint demands (more
// cubic BRs have smaller Minkowski sums).
//
// Index nodes (Section 3.3): splits may overlap, so the increase in EDA is
// (w_d + r)/(s_d + r); the dimension minimizing it depends on the query
// side r (integrated over r when Config.UniformQuerySide is set).
type EDAPolicy struct{}

// Name implements SplitPolicy.
func (EDAPolicy) Name() string { return "EDA" }

// ChooseDataSplit implements SplitPolicy.
func (EDAPolicy) ChooseDataSplit(pts []geom.Point, br geom.Rect) (int, float32) {
	d := br.MaxExtentDim()
	return d, (br.Lo[d] + br.Hi[d]) / 2
}

// ChooseIndexDim implements SplitPolicy.
func (EDAPolicy) ChooseIndexDim(cands []IndexSplitCandidate, cfg *Config) int {
	best, bestScore := cands[0].Dim, math.Inf(1)
	for _, c := range cands {
		var score float64
		if cfg.UniformQuerySide {
			score = integratedEDA(c.Overlap, c.Extent, cfg.QuerySide)
		} else {
			score = (c.Overlap + cfg.QuerySide) / (c.Extent + cfg.QuerySide)
		}
		if score < bestScore {
			best, bestScore = c.Dim, score
		}
	}
	return best
}

// integratedEDA averages (w+r)/(s+r) over r uniform in (0, rmax]:
// (1/rmax) ∫₀^rmax (w+r)/(s+r) dr = 1 + ((w-s)/rmax)·ln((s+rmax)/s)
// (with the s == 0 limit handled separately).
func integratedEDA(w, s, rmax float64) float64 {
	if rmax <= 0 {
		rmax = 1e-9
	}
	if s <= 0 {
		// Zero extent: (w+r)/r averaged; w is necessarily 0 when s is 0.
		return 1
	}
	return 1 + (w-s)/rmax*math.Log((s+rmax)/s)
}

// VAMPolicy is the VAMSplit strategy of White & Jain used as the baseline
// in Figure 5(a,b): split on the dimension of maximum variance (chosen for
// robustness to outliers) at the median. As the paper argues, variance is
// the wrong objective for paginated search — the number of disk accesses
// depends on the extents of the indexed subspaces, not on how data
// distributes inside them.
type VAMPolicy struct{}

// Name implements SplitPolicy.
func (VAMPolicy) Name() string { return "VAM" }

// ChooseDataSplit implements SplitPolicy: maximum-variance dimension,
// median position.
func (VAMPolicy) ChooseDataSplit(pts []geom.Point, br geom.Rect) (int, float32) {
	dim := len(pts[0])
	best, bestVar := 0, -1.0
	for d := 0; d < dim; d++ {
		var sum, sumSq float64
		for _, p := range pts {
			v := float64(p[d])
			sum += v
			sumSq += v * v
		}
		n := float64(len(pts))
		variance := sumSq/n - (sum/n)*(sum/n)
		if variance > bestVar {
			best, bestVar = d, variance
		}
	}
	coords := make([]float64, len(pts))
	for i, p := range pts {
		coords[i] = float64(p[best])
	}
	sort.Float64s(coords)
	return best, float32(coords[len(coords)/2])
}

// ChooseIndexDim implements SplitPolicy: maximum variance of the children's
// projected segment centers.
func (VAMPolicy) ChooseIndexDim(cands []IndexSplitCandidate, _ *Config) int {
	best, bestVar := cands[0].Dim, -1.0
	for _, c := range cands {
		var sum, sumSq float64
		for _, v := range c.Centers {
			sum += v
			sumSq += v * v
		}
		n := float64(len(c.Centers))
		variance := sumSq/n - (sum/n)*(sum/n)
		if variance > bestVar {
			best, bestVar = c.Dim, variance
		}
	}
	return best
}

// EDAMedianPolicy is an ablation policy: the EDA-optimal split dimension
// (maximum extent) but the conventional median split position instead of
// the paper's middle-of-extent choice. The paper argues the middle choice
// produces more cubic BRs with smaller surface area and hence fewer disk
// accesses (Section 3.2); this policy isolates that claim.
type EDAMedianPolicy struct{}

// Name implements SplitPolicy.
func (EDAMedianPolicy) Name() string { return "EDA-median" }

// ChooseDataSplit implements SplitPolicy.
func (EDAMedianPolicy) ChooseDataSplit(pts []geom.Point, br geom.Rect) (int, float32) {
	d := br.MaxExtentDim()
	coords := make([]float64, len(pts))
	for i, p := range pts {
		coords[i] = float64(p[d])
	}
	sort.Float64s(coords)
	return d, float32(coords[len(coords)/2])
}

// ChooseIndexDim implements SplitPolicy (same as EDA).
func (EDAMedianPolicy) ChooseIndexDim(cands []IndexSplitCandidate, cfg *Config) int {
	return EDAPolicy{}.ChooseIndexDim(cands, cfg)
}

// splitDataNode splits an overflowing data node. The split is always clean
// (lsp == rsp): overlap is eliminated entirely at the data level
// (Section 3.6 point 3). The left half reuses n's page.
func (t *Tree) splitDataNode(n *node) (splitResult, error) {
	t.countSplit(true)
	br := n.dataRect()
	dim, pos := t.cfg.Policy.ChooseDataSplit(n.materializePoints(nil), br)

	// Order entry indices by the split coordinate and clamp the split index
	// so each side receives at least minDataFill entries (footnote 1 of the
	// paper: shift from the middle just enough to satisfy utilization).
	order := make([]int, n.count())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return n.coord(order[a], dim) < n.coord(order[b], dim) })

	cut := sort.Search(len(order), func(i int) bool { return n.coord(order[i], dim) > pos })
	minFill := t.cfg.minDataFill()
	if cut < minFill {
		cut = minFill
	}
	if cut > len(order)-minFill {
		cut = len(order) - minFill
	}
	// The realized split position separates the two sides; with duplicate
	// coordinates both sides may touch it, which the two-split-position
	// representation accommodates (both BRs include the boundary).
	split := (n.coord(order[cut-1], dim) + n.coord(order[cut], dim)) / 2

	right, err := t.store.alloc(true)
	if err != nil {
		return splitResult{}, err
	}
	leftVals := make([]float32, 0, cut*n.dim)
	leftRids := make([]RecordID, 0, cut)
	for _, i := range order[:cut] {
		leftVals = append(leftVals, n.point(i)...)
		leftRids = append(leftRids, n.rids[i])
	}
	for _, i := range order[cut:] {
		right.appendPoint(n.point(i), n.rids[i])
	}
	n.vals, n.rids = leftVals, leftRids

	if err := t.store.put(n); err != nil {
		return splitResult{}, err
	}
	if err := t.store.put(right); err != nil {
		return splitResult{}, err
	}
	t.elsSet(uint32(n.id), t.cfg.Space, n.dataRect())
	t.elsSet(uint32(right.id), t.cfg.Space, right.dataRect())

	return splitResult{dim: uint16(dim), lsp: split, rsp: split, left: n.id, right: right.id}, nil
}

// splitIndexNode splits an overflowing index node. Per Section 3.3, the
// best split positions are first determined for every candidate dimension
// by the 1-d bipartition of the children's projected segments; the policy
// then selects the dimension; the groups from the pre-selection phase
// become the two nodes, each with a freshly built intra-node kd-tree.
//
// Candidate dimensions are restricted to those already used inside the
// node's kd-tree — by Lemma 1 (implicit dimensionality reduction) this
// still contains the EDA-optimal choice, and it guarantees that dimensions
// no data-node split ever discriminated on are never used higher up.
func (t *Tree) splitIndexNode(n *node, nodeBR geom.Rect) (splitResult, error) {
	t.countSplit(false)
	entries := n.children(nodeBR)
	minEach := int(math.Ceil(t.cfg.MinFillIndex * float64(len(entries))))
	if minEach < 1 {
		minEach = 1
	}
	if 2*minEach > len(entries) {
		minEach = len(entries) / 2
	}

	dims := n.usedSplitDims()
	cands := make([]IndexSplitCandidate, 0, len(dims))
	type trial struct {
		left, right []int
		lsp, rsp    float32
	}
	trials := make(map[int]trial, len(dims))
	for _, d := range dims {
		segs := make([]geom.Segment, len(entries))
		centers := make([]float64, len(entries))
		for i, e := range entries {
			segs[i] = geom.Segment{Lo: e.br.Lo[d], Hi: e.br.Hi[d], ID: i}
			centers[i] = (float64(e.br.Lo[d]) + float64(e.br.Hi[d])) / 2
		}
		left, right, lsp, rsp := geom.Bipartition(segs, minEach)
		w := 0.0
		if lsp > rsp {
			w = float64(lsp) - float64(rsp)
		}
		cands = append(cands, IndexSplitCandidate{
			Dim: d, Overlap: w, Extent: nodeBR.Extent(d), Centers: centers,
		})
		trials[d] = trial{left: left, right: right, lsp: lsp, rsp: rsp}
	}
	dim := t.cfg.Policy.ChooseIndexDim(cands, &t.cfg)
	tr := trials[dim]

	group := func(idx []int) []childEntry {
		g := make([]childEntry, len(idx))
		for i, j := range idx {
			g[i] = entries[j]
		}
		return g
	}
	leftEntries, rightEntries := group(tr.left), group(tr.right)

	right, err := t.store.alloc(false)
	if err != nil {
		return splitResult{}, err
	}
	n.kd = n.kd[:0]
	n.kdRoot = t.buildKD(n, leftEntries)
	right.kdRoot = t.buildKD(right, rightEntries)

	if err := t.store.put(n); err != nil {
		return splitResult{}, err
	}
	if err := t.store.put(right); err != nil {
		return splitResult{}, err
	}
	t.setIndexELS(n, leftEntries)
	t.setIndexELS(right, rightEntries)

	return splitResult{dim: uint16(dim), lsp: tr.lsp, rsp: tr.rsp, left: n.id, right: right.id}, nil
}

// setIndexELS records an index node's live rectangle as the union of its
// children's live rectangles (already conservative, so the union is too).
func (t *Tree) setIndexELS(n *node, entries []childEntry) {
	if !t.els.Enabled() {
		return
	}
	live := geom.EmptyRect(t.cfg.Dim)
	for _, e := range entries {
		childLive, _ := t.els.Get(uint32(e.child), t.cfg.Space)
		live.EnlargeRect(childLive)
	}
	t.elsSet(uint32(n.id), t.cfg.Space, live)
}

// buildKD constructs a fresh intra-node kd-tree over the given children by
// recursive balanced bipartition, appending records to n's arena and
// returning the subtree root index. Each internal record's split positions
// come from the bipartition bounds, so every child's segment fits inside
// its side — the containment the BR mapping relies on.
func (t *Tree) buildKD(n *node, entries []childEntry) int32 {
	if len(entries) == 0 {
		return kdNone
	}
	if len(entries) == 1 {
		idx := int32(len(n.kd))
		n.kd = append(n.kd, kdNode{Left: kdNone, Right: kdNone, Child: entries[0].child})
		return idx
	}
	dim := t.chooseRebuildDim(entries)
	segs := make([]geom.Segment, len(entries))
	for i, e := range entries {
		segs[i] = geom.Segment{Lo: e.br.Lo[dim], Hi: e.br.Hi[dim], ID: i}
	}
	left, right, lsp, rsp := geom.Bipartition(segs, rebuildMinEach(len(entries)))
	leftEntries := make([]childEntry, len(left))
	for i, j := range left {
		leftEntries[i] = entries[j]
	}
	rightEntries := make([]childEntry, len(right))
	for i, j := range right {
		rightEntries[i] = entries[j]
	}
	idx := int32(len(n.kd))
	n.kd = append(n.kd, kdNode{Dim: uint16(dim), Lsp: lsp, Rsp: rsp, Left: kdNone, Right: kdNone})
	l := t.buildKD(n, leftEntries)
	r := t.buildKD(n, rightEntries)
	n.kd[idx].Left, n.kd[idx].Right = l, r
	return idx
}

// rebuildMinEach is the utilization floor for one level of an intra-node
// kd rebuild. Unlike the node split itself (which must honor the paper's
// 1/3 utilization), the rebuild's only hard requirement is that both sides
// be non-empty; a low floor lets the bipartition choose nearly clean
// subtrees and keeps the mapped BRs tight, at a small cost in intra-node
// kd balance.
func rebuildMinEach(n int) int {
	m := n / 8
	if m < 1 {
		m = 1
	}
	return m
}

// chooseRebuildDim picks the split dimension for one level of a kd-tree
// rebuild using the configured policy over all dimensions.
func (t *Tree) chooseRebuildDim(entries []childEntry) int {
	cands := make([]IndexSplitCandidate, t.cfg.Dim)
	minEach := rebuildMinEach(len(entries))
	for d := 0; d < t.cfg.Dim; d++ {
		segs := make([]geom.Segment, len(entries))
		centers := make([]float64, len(entries))
		lo, hi := entries[0].br.Lo[d], entries[0].br.Hi[d]
		for i, e := range entries {
			segs[i] = geom.Segment{Lo: e.br.Lo[d], Hi: e.br.Hi[d], ID: i}
			centers[i] = (float64(e.br.Lo[d]) + float64(e.br.Hi[d])) / 2
			if e.br.Lo[d] < lo {
				lo = e.br.Lo[d]
			}
			if e.br.Hi[d] > hi {
				hi = e.br.Hi[d]
			}
		}
		w, _ := geom.SegmentOverlap(segs, minEach)
		cands[d] = IndexSplitCandidate{Dim: d, Overlap: w, Extent: float64(hi) - float64(lo), Centers: centers}
	}
	return t.cfg.Policy.ChooseIndexDim(cands, &t.cfg)
}
