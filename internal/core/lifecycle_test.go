package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

func TestDeleteBasic(t *testing.T) {
	tree, pts := buildRandom(t, 1200, 6, 512, Config{}, 101)
	// Delete a known entry.
	found, err := tree.Delete(pts[10], 10)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("existing entry not found")
	}
	if tree.Size() != 1199 {
		t.Fatalf("size = %d", tree.Size())
	}
	// Deleting again fails: it is gone.
	found, err = tree.Delete(pts[10], 10)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("entry deleted twice")
	}
	// Wrong rid with right point fails.
	found, err = tree.Delete(pts[11], 99999)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("rid mismatch deleted something")
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteHalfThenSearch(t *testing.T) {
	tree, pts := buildRandom(t, 2000, 8, 512, Config{}, 103)
	rng := rand.New(rand.NewSource(107))
	deleted := make(map[RecordID]bool)
	perm := rng.Perm(len(pts))
	for _, i := range perm[:1000] {
		found, err := tree.Delete(pts[i], RecordID(i))
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("entry %d missing", i)
		}
		deleted[RecordID(i)] = true
	}
	if tree.Size() != 1000 {
		t.Fatalf("size = %d, want 1000", tree.Size())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Remaining points all findable; deleted ones gone.
	for q := 0; q < 20; q++ {
		rect := randQueryRect(rng, 8, 0.7)
		got, err := tree.SearchBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[RecordID]bool)
		for i, p := range pts {
			if !deleted[RecordID(i)] && rect.Contains(p) {
				want[RecordID(i)] = true
			}
		}
		sameSet(t, entriesToSet(got), want, fmt.Sprintf("post-delete box %d", q))
	}
}

func TestDeleteAll(t *testing.T) {
	tree, pts := buildRandom(t, 800, 4, 512, Config{}, 109)
	for i, p := range pts {
		found, err := tree.Delete(p, RecordID(i))
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("entry %d missing at deletion", i)
		}
	}
	if tree.Size() != 0 {
		t.Fatalf("size = %d after deleting all", tree.Size())
	}
	res, err := tree.SearchBox(geom.UnitCube(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("%d entries remain after deleting all", len(res))
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The tree must shrink back rather than keep a tall skeleton.
	if tree.Height() > 2 {
		t.Fatalf("height = %d after deleting everything", tree.Height())
	}
}

func TestInsertDeleteInterleaved(t *testing.T) {
	file := pagefile.NewMemFile(512)
	tree, err := New(file, Config{Dim: 4, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(113))
	live := make(map[RecordID]geom.Point)
	nextRID := RecordID(0)
	for step := 0; step < 4000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			p := geom.Point{rng.Float32(), rng.Float32(), rng.Float32(), rng.Float32()}
			if err := tree.Insert(p, nextRID); err != nil {
				t.Fatal(err)
			}
			live[nextRID] = p
			nextRID++
		} else {
			// Delete a random live record.
			var rid RecordID
			for r := range live {
				rid = r
				break
			}
			found, err := tree.Delete(live[rid], rid)
			if err != nil {
				t.Fatal(err)
			}
			if !found {
				t.Fatalf("live record %d not found", rid)
			}
			delete(live, rid)
		}
	}
	if tree.Size() != len(live) {
		t.Fatalf("size = %d, want %d", tree.Size(), len(live))
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, err := tree.SearchBox(geom.UnitCube(4))
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[RecordID]bool)
	for r := range live {
		want[r] = true
	}
	sameSet(t, entriesToSet(got), want, "final contents")
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.db")
	file, err := pagefile.CreateDiskFile(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Dim: 8, PageSize: 1024}
	tree, err := New(file, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(127))
	pts := make([]geom.Point, 1500)
	for i := range pts {
		p := make(geom.Point, 8)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
		if err := tree.Insert(p, RecordID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from the same file: a brand-new store, no warm cache.
	reopened, err := Open(file, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Size() != 1500 {
		t.Fatalf("reopened size = %d", reopened.Size())
	}
	if err := reopened.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	qrng := rand.New(rand.NewSource(131))
	for q := 0; q < 15; q++ {
		rect := randQueryRect(qrng, 8, 0.7)
		got, err := reopened.SearchBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, entriesToSet(got), bruteBox(pts, rect), "reopened box")
	}
	// And further inserts work on the reopened tree.
	extra := geom.Point{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	if err := reopened.Insert(extra, 99999); err != nil {
		t.Fatal(err)
	}
	rids, err := reopened.SearchPoint(extra)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 1 || rids[0] != 99999 {
		t.Fatalf("post-reopen insert lookup = %v", rids)
	}
	if err := file.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsMismatchedConfig(t *testing.T) {
	file := pagefile.NewMemFile(1024)
	tree, err := New(file, Config{Dim: 8, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(file, Config{Dim: 4, PageSize: 1024}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestCodecRoundTripData(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(32)
		count := rng.Intn(20)
		n := &node{id: 7, leaf: true, dim: dim, kdRoot: kdNone}
		for i := 0; i < count; i++ {
			p := make(geom.Point, dim)
			for d := range p {
				p[d] = rng.Float32()
			}
			n.appendPoint(p, RecordID(rng.Uint64()))
		}
		buf := make([]byte, 8192)
		size, err := n.encode(buf, dim)
		if err != nil || size != n.serializedSize(dim) {
			return false
		}
		dec, err := decodeNode(7, buf[:size], dim)
		if err != nil || !dec.leaf || dec.count() != count {
			return false
		}
		for i := range n.rids {
			if !dec.point(i).Equal(n.point(i)) || dec.rids[i] != n.rids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTripIndex(t *testing.T) {
	// Build a random kd arena (with some unreachable junk records to prove
	// encode compacts), round-trip it, and compare the reachable structure
	// via the children() mapping.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 2 + rng.Intn(8)
		n := &node{id: 3, kdRoot: kdNone}
		// Random kd-tree with up to 20 leaves.
		var build func(depth int) int32
		build = func(depth int) int32 {
			idx := int32(len(n.kd))
			if depth <= 0 || rng.Float64() < 0.3 {
				n.kd = append(n.kd, kdNode{Left: kdNone, Right: kdNone,
					Child: pagefile.PageID(rng.Intn(1000))})
				return idx
			}
			a, b := rng.Float32(), rng.Float32()
			n.kd = append(n.kd, kdNode{Dim: uint16(rng.Intn(dim)), Lsp: a, Rsp: b})
			l := build(depth - 1)
			r := build(depth - 1)
			n.kd[idx].Left, n.kd[idx].Right = l, r
			return idx
		}
		// Unreachable junk first, then the real tree.
		n.kd = append(n.kd, kdNode{Left: kdNone, Right: kdNone, Child: 999999})
		n.kdRoot = build(4)

		buf := make([]byte, 8192)
		size, err := n.encode(buf, dim)
		if err != nil {
			return false
		}
		dec, err := decodeNode(3, buf[:size], dim)
		if err != nil || dec.leaf {
			return false
		}
		space := geom.UnitCube(dim)
		a := n.children(space)
		b := dec.children(space)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].child != b[i].child || !a[i].br.Equal(b[i].br) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	n := &node{id: 1, leaf: true, dim: 2, kdRoot: kdNone,
		vals: []float32{0.5, 0.5}, rids: []RecordID{1}}
	buf := make([]byte, 512)
	size, err := n.encode(buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte){
		"magic":     func(b []byte) { b[0] = 'X' },
		"type":      func(b []byte) { b[1] = 9 },
		"dim":       func(b []byte) { b[2] = 5 },
		"count":     func(b []byte) { b[4] = 0xff; b[5] = 0xff },
		"truncated": nil,
	}
	for name, corrupt := range cases {
		page := make([]byte, size)
		copy(page, buf[:size])
		if name == "truncated" {
			page = page[:3]
		} else {
			corrupt(page)
		}
		if _, err := decodeNode(1, page, 2); err == nil {
			t.Errorf("%s corruption not detected", name)
		}
	}
}

func TestDataSplitUtilization(t *testing.T) {
	// Build a full data node with a heavily skewed distribution: the middle
	// split would starve one side, so the clamp must kick in (footnote 1).
	file := pagefile.NewMemFile(512)
	tree, err := New(file, Config{Dim: 2, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	cap := tree.cfg.dataCapacity()
	n, err := tree.store.alloc(true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(137))
	for i := 0; i <= cap; i++ {
		// 90% of the mass below 0.1, a few points near 1.
		var x float32
		if i%10 == 0 {
			x = 0.9 + rng.Float32()*0.1
		} else {
			x = rng.Float32() * 0.1
		}
		n.appendPoint(geom.Point{x, rng.Float32()}, RecordID(i))
	}
	sr, err := tree.splitDataNode(n)
	if err != nil {
		t.Fatal(err)
	}
	if sr.lsp != sr.rsp {
		t.Fatal("data node split must be clean")
	}
	left, _ := tree.store.get(sr.left)
	right, _ := tree.store.get(sr.right)
	minFill := tree.cfg.minDataFill()
	if left.count() < minFill || right.count() < minFill {
		t.Fatalf("utilization violated: %d/%d with min %d", left.count(), right.count(), minFill)
	}
	if left.count()+right.count() != cap+1 {
		t.Fatal("split lost entries")
	}
	// Every left point at or below the split, every right at or above.
	for i := 0; i < left.count(); i++ {
		if p := left.point(i); p[sr.dim] > sr.lsp {
			t.Fatalf("left point %v beyond lsp %g", p, sr.lsp)
		}
	}
	for i := 0; i < right.count(); i++ {
		if p := right.point(i); p[sr.dim] < sr.rsp {
			t.Fatalf("right point %v before rsp %g", p, sr.rsp)
		}
	}
}

func TestEDADataSplitChoosesMaxExtent(t *testing.T) {
	pts := []geom.Point{{0.1, 0.4}, {0.9, 0.6}} // dim 0 extent 0.8, dim 1 extent 0.2
	d, pos := EDAPolicy{}.ChooseDataSplit(pts, geom.BoundingRect(pts))
	if d != 0 {
		t.Fatalf("EDA chose dim %d, want 0 (max extent)", d)
	}
	if pos < 0.49 || pos > 0.51 {
		t.Fatalf("EDA position %g, want middle 0.5", pos)
	}
}

func TestVAMDataSplitChoosesMaxVariance(t *testing.T) {
	// Dim 0: one extreme outlier (big extent, small variance contribution
	// spread); dim 1: bimodal mass (smaller extent, bigger variance).
	var pts []geom.Point
	for i := 0; i < 50; i++ {
		v := float32(0.2)
		if i%2 == 0 {
			v = 0.8
		}
		pts = append(pts, geom.Point{0.5, v})
	}
	pts = append(pts, geom.Point{0.0, 0.5}, geom.Point{1.0, 0.5})
	dEDA, _ := EDAPolicy{}.ChooseDataSplit(pts, geom.BoundingRect(pts))
	dVAM, _ := VAMPolicy{}.ChooseDataSplit(pts, geom.BoundingRect(pts))
	if dEDA != 0 {
		t.Fatalf("EDA chose %d, want 0 (extent)", dEDA)
	}
	if dVAM != 1 {
		t.Fatalf("VAM chose %d, want 1 (variance)", dVAM)
	}
}

func TestFanoutIndependentOfDimensionality(t *testing.T) {
	// The Table 1 property: index fanout must not shrink as dimensionality
	// grows (only data-node capacity does).
	cfg8, _ := Config{Dim: 8, PageSize: 4096}.withDefaults()
	cfg64, _ := Config{Dim: 64, PageSize: 4096}.withDefaults()
	if cfg8.maxFanout() != cfg64.maxFanout() {
		t.Fatalf("fanout depends on dim: %d vs %d", cfg8.maxFanout(), cfg64.maxFanout())
	}
	if cfg64.maxFanout() < 100 {
		t.Fatalf("fanout %d suspiciously low for 4K pages", cfg64.maxFanout())
	}
	// Contrast with data capacity, which must shrink.
	if cfg64.dataCapacity() >= cfg8.dataCapacity() {
		t.Fatal("data capacity should shrink with dimensionality")
	}
}

func TestStatsAndUtilization(t *testing.T) {
	tree, _ := buildRandom(t, 5000, 8, 512, Config{}, 139)
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 5000 {
		t.Fatalf("stats entries = %d", st.Entries)
	}
	if st.Height != tree.Height() || st.Height < 2 {
		t.Fatalf("height = %d", st.Height)
	}
	if st.DataNodes == 0 || st.IndexNodes == 0 {
		t.Fatalf("nodes: %d data, %d index", st.DataNodes, st.IndexNodes)
	}
	// Guaranteed utilization: no data node below the configured minimum
	// (the root exemption does not apply once the tree has split).
	minFill := float64(tree.cfg.minDataFill()) / float64(tree.cfg.dataCapacity())
	if st.MinDataFill < minFill-1e-9 {
		t.Fatalf("min data fill %.3f below guarantee %.3f", st.MinDataFill, minFill)
	}
	if st.AvgDataFill < 0.4 {
		t.Fatalf("average fill %.3f suspiciously low", st.AvgDataFill)
	}
	if st.ELSBytes == 0 {
		t.Fatal("ELS table empty despite default precision")
	}
}

func TestAccessCountingColdSemantics(t *testing.T) {
	// Every logical node touch must count, even when served from the
	// decoded cache: run the same query twice and require identical read
	// counts.
	tree, _ := buildRandom(t, 3000, 8, 512, Config{}, 149)
	rect := randQueryRect(rand.New(rand.NewSource(151)), 8, 0.5)
	stats := tree.File().Stats()

	stats.Reset()
	if _, err := tree.SearchBox(rect); err != nil {
		t.Fatal(err)
	}
	first := stats.Reads()
	stats.Reset()
	if _, err := tree.SearchBox(rect); err != nil {
		t.Fatal(err)
	}
	second := stats.Reads()
	if first != second {
		t.Fatalf("cache changed logical access count: %d then %d", first, second)
	}
	if first == 0 {
		t.Fatal("query counted no accesses")
	}
}

func TestELSSnapshotRoundTrip(t *testing.T) {
	file := pagefile.NewMemFile(1024)
	cfg := Config{Dim: 8, PageSize: 1024}
	tree, err := New(file, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(401))
	pts := make([]geom.Point, 2000)
	for i := range pts {
		p := make(geom.Point, 8)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
		if err := tree.Insert(p, RecordID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	wantBytes := tree.ELSMemoryBytes()
	if wantBytes == 0 {
		t.Fatal("no ELS entries to snapshot")
	}

	// Reopening must restore from the snapshot (no full-tree rebuild):
	// count the page reads Open performs and require far fewer than the
	// tree's node count.
	file.Stats().Reset()
	reopened, err := Open(file, cfg)
	if err != nil {
		t.Fatal(err)
	}
	openReads := file.Stats().Reads()
	st, err := reopened.Stats()
	if err != nil {
		t.Fatal(err)
	}
	nodes := st.DataNodes + st.IndexNodes
	if int(openReads) >= nodes {
		t.Fatalf("Open read %d pages with %d nodes; snapshot not used", openReads, nodes)
	}
	if reopened.ELSMemoryBytes() != wantBytes {
		t.Fatalf("restored ELS %d bytes, want %d", reopened.ELSMemoryBytes(), wantBytes)
	}
	// Searches still prune correctly with the restored table.
	if err := reopened.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	qrng := rand.New(rand.NewSource(403))
	for q := 0; q < 10; q++ {
		rect := randQueryRect(qrng, 8, 0.6)
		got, err := reopened.SearchBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, entriesToSet(got), bruteBox(pts, rect), "post-restore box")
	}

	// Close again: the old chain is freed, a new one written, and a third
	// Open still works.
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := Open(file, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.ELSMemoryBytes() != wantBytes {
		t.Fatal("second round-trip lost ELS entries")
	}
}

func TestELSSnapshotPrecisionMismatchRebuilds(t *testing.T) {
	file := pagefile.NewMemFile(1024)
	tree, err := New(file, Config{Dim: 4, PageSize: 1024, ELSBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(409))
	for i := 0; i < 500; i++ {
		p := geom.Point{rng.Float32(), rng.Float32(), rng.Float32(), rng.Float32()}
		if err := tree.Insert(p, RecordID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	// Open at a different precision: the snapshot must be ignored and the
	// table rebuilt at the requested precision.
	reopened, err := Open(file, Config{Dim: 4, PageSize: 1024, ELSBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := reopened.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if reopened.ELSMemoryBytes() == 0 {
		t.Fatal("rebuild produced no entries")
	}
}

// The tree composes with the LRU buffer pool: logical access counting then
// reflects buffer misses instead of cold reads, and correctness is
// unaffected.
func TestTreeOnBufferedFile(t *testing.T) {
	inner := pagefile.NewMemFile(512)
	buffered := pagefile.NewBuffered(inner, 16)
	tree, err := New(buffered, Config{Dim: 4, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(601))
	pts := make([]geom.Point, 1500)
	for i := range pts {
		p := geom.Point{rng.Float32(), rng.Float32(), rng.Float32(), rng.Float32()}
		pts[i] = p
		if err := tree.Insert(p, RecordID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 10; q++ {
		rect := randQueryRect(rng, 4, 0.4)
		got, err := tree.SearchBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, entriesToSet(got), bruteBox(pts, rect), "buffered box")
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	if err := buffered.Flush(); err != nil {
		t.Fatal(err)
	}
	// The flushed inner file is a complete, reopenable index.
	reopened, err := Open(inner, Config{Dim: 4, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Size() != 1500 {
		t.Fatalf("reopened size = %d", reopened.Size())
	}
	if err := reopened.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
