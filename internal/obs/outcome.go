package obs

// OutcomeKind classifies how a request resolved. Every request ends in
// exactly one outcome — the taxonomy is exhaustive and mutually exclusive,
// so the per-outcome counters of an Outcomes bundle sum to the number of
// requests issued.
type OutcomeKind int

const (
	// OutcomeOK: the request completed with full results.
	OutcomeOK OutcomeKind = iota
	// OutcomeCancelled: the caller's context was cancelled mid-flight.
	OutcomeCancelled
	// OutcomeTimeout: the context deadline or the query's wall-time budget
	// expired.
	OutcomeTimeout
	// OutcomeShed: admission control rejected the request before it ran.
	OutcomeShed
	// OutcomeDegraded: a resource budget was exhausted and the request
	// returned a valid partial result (best-found-so-far).
	OutcomeDegraded
	// OutcomeError: the request failed for any other reason.
	OutcomeError

	// NumOutcomes is the number of outcome kinds.
	NumOutcomes = int(OutcomeError) + 1
)

var outcomeNames = [NumOutcomes]string{"ok", "cancelled", "timeout", "shed", "degraded", "error"}

// String returns the outcome's label ("ok", "cancelled", ...).
func (k OutcomeKind) String() string {
	if k < 0 || int(k) >= NumOutcomes {
		return "unknown"
	}
	return outcomeNames[k]
}

// Outcomes is a per-outcome counter bundle resolved once and indexed by
// OutcomeKind, so recording an outcome on the hot path is a single array
// load plus an atomic add — no map lookups, no label formatting.
type Outcomes struct {
	counters [NumOutcomes]*Counter
}

// NewOutcomes resolves base{outcome="..."} counters for every outcome kind
// in r, e.g. NewOutcomes(r, "core_query_outcomes_total").
func NewOutcomes(r *Registry, base string) *Outcomes {
	o := &Outcomes{}
	for k := 0; k < NumOutcomes; k++ {
		o.counters[k] = r.Counter(base + `{outcome="` + outcomeNames[k] + `"}`)
	}
	return o
}

// Record counts one request resolving with outcome k. Out-of-range kinds
// count as OutcomeError rather than panicking on the request path.
func (o *Outcomes) Record(k OutcomeKind) {
	if k < 0 || int(k) >= NumOutcomes {
		k = OutcomeError
	}
	o.counters[k].Inc()
}

// Get returns the counter for one outcome kind (tests and reports).
func (o *Outcomes) Get(k OutcomeKind) *Counter {
	if k < 0 || int(k) >= NumOutcomes {
		k = OutcomeError
	}
	return o.counters[k]
}
