module hybridtree

go 1.22
