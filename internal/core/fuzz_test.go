package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// FuzzDecodeNode throws arbitrary bytes at the page decoder: it must either
// return a structured error or a decodable node — never panic, never loop.
// Run `go test -fuzz FuzzDecodeNode ./internal/core` to explore beyond the
// seed corpus.
func FuzzDecodeNode(f *testing.F) {
	// Seed with a few valid pages of both kinds, plus garbage.
	mkData := func(dim, count int) []byte {
		n := &node{id: 1, leaf: true, dim: dim, kdRoot: kdNone}
		for i := 0; i < count; i++ {
			p := make(geom.Point, dim)
			for d := range p {
				p[d] = float32(i) / 10
			}
			n.appendPoint(p, RecordID(i))
		}
		buf := make([]byte, 4096)
		size, err := n.encode(buf, dim)
		if err != nil {
			f.Fatal(err)
		}
		return buf[:size]
	}
	mkIndex := func(dim int) []byte {
		n := &node{id: 2, kd: []kdNode{
			{Dim: 0, Lsp: 0.5, Rsp: 0.4, Left: 1, Right: 2},
			{Left: kdNone, Right: kdNone, Child: 7},
			{Left: kdNone, Right: kdNone, Child: 9},
		}, kdRoot: 0}
		buf := make([]byte, 4096)
		size, err := n.encode(buf, dim)
		if err != nil {
			f.Fatal(err)
		}
		return buf[:size]
	}
	f.Add(mkData(4, 3), 4)
	f.Add(mkData(16, 0), 16)
	f.Add(mkIndex(4), 4)
	f.Add([]byte{}, 4)
	f.Add([]byte{'H', 0, 4, 0, 255, 255}, 4)
	f.Add([]byte{'H', 1, 4, 0, 3, 0, 0, 0, 0}, 4)
	f.Add([]byte{'X', 9, 1, 2, 3}, 2)

	f.Fuzz(func(t *testing.T, data []byte, dim int) {
		if dim < 1 || dim > 64 {
			return
		}
		n, err := decodeNode(pagefile.PageID(1), data, dim)
		if err != nil {
			return
		}
		// Anything that decoded must re-encode within a bounded buffer and
		// decode again to the same structural size.
		buf := make([]byte, 1<<20)
		size, err := n.encode(buf, dim)
		if err != nil {
			return // oversized kd arenas may legitimately refuse
		}
		if _, err := decodeNode(pagefile.PageID(1), buf[:size], dim); err != nil {
			t.Fatalf("re-decode of re-encoded node failed: %v", err)
		}
	})
}

// FuzzNodeRoundTrip builds structurally valid data nodes from fuzz input
// and demands an exact encode → decode → encode fixed point: the second
// encoding must be byte-identical to the first. Run with
// `go test -fuzz FuzzNodeRoundTrip ./internal/core`.
func FuzzNodeRoundTrip(f *testing.F) {
	f.Add(4, []byte{0, 0, 128, 63, 0, 0, 0, 63, 1, 2, 3, 4})
	f.Add(1, []byte{})
	f.Add(16, bytes.Repeat([]byte{0x41}, 200))
	f.Fuzz(func(t *testing.T, dim int, raw []byte) {
		if dim < 1 || dim > 64 {
			return
		}
		// Consume raw as a stream of float32 coordinates; each dim of them
		// plus a derived rid makes one entry.
		n := &node{id: 1, leaf: true, dim: dim, kdRoot: kdNone}
		for off := 0; off+4*dim <= len(raw) && n.count() < 200; off += 4 * dim {
			p := make(geom.Point, dim)
			for d := 0; d < dim; d++ {
				bits := binary.LittleEndian.Uint32(raw[off+4*d:])
				v := math.Float32frombits(bits)
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					v = 0
				}
				p[d] = v
			}
			n.appendPoint(p, RecordID(off))
		}
		buf1 := make([]byte, 1<<20)
		size1, err := n.encode(buf1, dim)
		if err != nil {
			t.Fatalf("encode of valid data node failed: %v", err)
		}
		decoded, err := decodeNode(pagefile.PageID(1), buf1[:size1], dim)
		if err != nil {
			t.Fatalf("decode of encoded node failed: %v", err)
		}
		if decoded.count() != n.count() {
			t.Fatalf("decoded %d entries, encoded %d", decoded.count(), n.count())
		}
		buf2 := make([]byte, 1<<20)
		size2, err := decoded.encode(buf2, dim)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(buf1[:size1], buf2[:size2]) {
			t.Fatalf("encoding is not a fixed point: %d bytes vs %d", size1, size2)
		}
	})
}

// FuzzSlabRoundTrip exercises the flat-slab leaf layout directly: entries
// built through appendPoint must encode and decode back to an identical
// slab (vals length exactly count*dim, per-point views equal, rids equal),
// and the re-encoding must be byte-identical. Seeds cover odd dimensions
// and the empty leaf. Run with
// `go test -fuzz FuzzSlabRoundTrip ./internal/core`.
func FuzzSlabRoundTrip(f *testing.F) {
	f.Add(3, 5, uint64(7))   // odd dim
	f.Add(1, 0, uint64(1))   // empty leaf, minimal dim
	f.Add(7, 1, uint64(42))  // odd dim, single entry
	f.Add(16, 9, uint64(3))  // even dim
	f.Add(63, 2, uint64(11)) // large odd dim
	f.Fuzz(func(t *testing.T, dim, count int, seed uint64) {
		if dim < 1 || dim > 64 || count < 0 || count > 120 {
			return
		}
		n := &node{id: 1, leaf: true, dim: dim, kdRoot: kdNone}
		s := seed
		for i := 0; i < count; i++ {
			p := make(geom.Point, dim)
			for d := range p {
				s = s*6364136223846793005 + 1442695040888963407
				p[d] = float32(s>>40) / float32(1<<24)
			}
			n.appendPoint(p, RecordID(s))
		}
		if len(n.vals) != count*dim || len(n.rids) != count {
			t.Fatalf("slab shape: %d vals, %d rids, want %d and %d", len(n.vals), len(n.rids), count*dim, count)
		}
		buf1 := make([]byte, n.serializedSize(dim))
		size1, err := n.encode(buf1, dim)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		dec, err := decodeNode(pagefile.PageID(1), buf1[:size1], dim)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(dec.vals) != count*dim || dec.count() != count || dec.dim != dim {
			t.Fatalf("decoded slab shape: %d vals, count %d, dim %d", len(dec.vals), dec.count(), dec.dim)
		}
		for i := 0; i < count; i++ {
			if dec.rids[i] != n.rids[i] {
				t.Fatalf("entry %d: rid %d != %d", i, dec.rids[i], n.rids[i])
			}
			if !dec.point(i).Equal(n.point(i)) {
				t.Fatalf("entry %d: point %v != %v", i, dec.point(i), n.point(i))
			}
		}
		buf2 := make([]byte, dec.serializedSize(dim))
		size2, err := dec.encode(buf2, dim)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(buf1[:size1], buf2[:size2]) {
			t.Fatalf("slab encoding is not a fixed point: %d bytes vs %d", size1, size2)
		}
	})
}

// FuzzTreeOps interprets fuzz input as an insert/delete/search program run
// against a small tree and a brute-force model, checking agreement and
// invariant cleanliness throughout. Run with
// `go test -fuzz FuzzTreeOps ./internal/core`.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{0, 10, 20, 0, 200, 210, 1, 10, 20, 2, 0, 0, 255, 255})
	f.Add(bytes.Repeat([]byte{0, 7, 130, 0, 9, 200, 1, 7, 130}, 20))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, program []byte) {
		const dim = 2
		file := pagefile.NewMemFile(256)
		tree, err := New(file, Config{Dim: dim, PageSize: 256})
		if err != nil {
			t.Fatal(err)
		}
		type rec struct {
			p   geom.Point
			rid RecordID
		}
		var model []rec
		nextRID := RecordID(0)
		coord := func(b byte) float32 { return float32(b) / 255 }
		ops := 0
		for off := 0; off+1+dim <= len(program) && ops < 300; off += 1 + dim {
			ops++
			p := geom.Point{coord(program[off+1]), coord(program[off+2])}
			switch program[off] % 3 {
			case 0: // insert
				rid := nextRID
				nextRID++
				if err := tree.Insert(p, rid); err != nil {
					t.Fatalf("op %d: insert: %v", ops, err)
				}
				model = append(model, rec{p, rid})
			case 1: // delete first model entry at this point, or probe a miss
				target := -1
				for i, m := range model {
					if m.p.Equal(p) {
						target = i
						break
					}
				}
				var wantRID RecordID
				if target >= 0 {
					wantRID = model[target].rid
				}
				found, err := tree.Delete(p, wantRID)
				if err != nil {
					t.Fatalf("op %d: delete: %v", ops, err)
				}
				if found != (target >= 0) {
					t.Fatalf("op %d: delete found=%v, model says %v", ops, found, target >= 0)
				}
				if target >= 0 {
					model[target] = model[len(model)-1]
					model = model[:len(model)-1]
				}
			case 2: // box search around p
				rect := geom.Rect{
					Lo: geom.Point{p[0] - 0.2, p[1] - 0.2},
					Hi: geom.Point{p[0] + 0.2, p[1] + 0.2},
				}
				got, err := tree.SearchBox(rect)
				if err != nil {
					t.Fatalf("op %d: search: %v", ops, err)
				}
				want := 0
				for _, m := range model {
					if rect.Contains(m.p) {
						want++
					}
				}
				if len(got) != want {
					t.Fatalf("op %d: box returned %d, model has %d", ops, len(got), want)
				}
			}
		}
		if tree.Size() != len(model) {
			t.Fatalf("size = %d, model has %d", tree.Size(), len(model))
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("after %d ops: %v", ops, err)
		}
	})
}
