package sim

import (
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"hybridtree/internal/geom"
	"hybridtree/internal/index"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/seqscan"
)

func TestTraceDeterminism(t *testing.T) {
	cfg := TraceConfig{Seed: 7, Ops: 3000}
	a := GenTrace(cfg)
	b := GenTrace(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c := GenTrace(TraceConfig{Seed: 8, Ops: 3000})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTraceShape(t *testing.T) {
	ops := GenTrace(TraceConfig{Seed: 1, Ops: 5000})
	if len(ops) != 5000 {
		t.Fatalf("got %d ops, want 5000", len(ops))
	}
	var counts [5]int
	for _, op := range ops {
		counts[op.Kind]++
		for _, v := range op.Point {
			if v < 0 || v > 1 {
				t.Fatalf("point coordinate %v outside unit cube", v)
			}
		}
	}
	for k, n := range counts {
		if n == 0 {
			t.Fatalf("trace has no %s ops", OpKind(k))
		}
	}
}

// TestCleanRunAllIndexes is the fault-free differential run: every access
// method must agree with the oracle on every operation.
func TestCleanRunAllIndexes(t *testing.T) {
	rep, err := Run(Config{Trace: TraceConfig{Seed: 11, Ops: 3000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Indexes) != len(AllIndexes) {
		t.Fatalf("got %d index reports, want %d", len(rep.Indexes), len(AllIndexes))
	}
	for _, ir := range rep.Indexes {
		if ir.MutationErrors != 0 {
			t.Errorf("%s: %d mutation errors without fault injection", ir.Name, ir.MutationErrors)
		}
		if ir.Name == "hb" && ir.Unsupported == 0 {
			t.Error("hb reported no unsupported ops; deletes/range/knn should be skipped")
		}
		if ir.Name != "hb" && ir.Unsupported != 0 {
			t.Errorf("%s: %d unsupported ops", ir.Name, ir.Unsupported)
		}
	}
}

// TestHybridSurvivesHeavyFaults drives the hybrid tree under the heavy
// chaos profile: faults must actually fire, every failed mutation must
// roll back cleanly, and no pages may leak.
func TestHybridSurvivesHeavyFaults(t *testing.T) {
	rep, err := Run(Config{
		Trace:      TraceConfig{Seed: 5, Ops: 4000},
		Indexes:    []string{"hybrid"},
		Faults:     Profiles["heavy"],
		CheckEvery: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	ir := rep.Indexes[0]
	if ir.ChaosCounts.Total() == 0 {
		t.Fatal("heavy profile injected no faults")
	}
	if ir.MutationErrors == 0 {
		t.Fatal("no mutation errors despite injected faults")
	}
	if ir.LeakedPages != 0 {
		t.Fatalf("%d pages leaked", ir.LeakedPages)
	}
	t.Logf("survived %d faults, %d rolled-back mutations", ir.ChaosCounts.Total(), ir.MutationErrors)
}

// TestDigestReproducible is the bit-reproducibility contract: identical
// configs yield identical digests, different seeds different ones.
func TestDigestReproducible(t *testing.T) {
	cfg := Config{Trace: TraceConfig{Seed: 3, Ops: 2000}, Faults: Profiles["light"]}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same config, digests %016x != %016x", a.Digest, b.Digest)
	}
	cfg.Trace.Seed = 4
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest == a.Digest {
		t.Fatal("different seeds produced identical digests")
	}
}

// TestLifecycleHeavyFaultsWithDeadlines is the acceptance run for the
// request-lifecycle layer: heavy chaos, the retry read path, a per-query
// page budget and per-op deadlines, all at once. It must finish with zero
// divergences, zero leaked pages, every op resolved to exactly one outcome
// bucket, and no goroutines left behind.
func TestLifecycleHeavyFaultsWithDeadlines(t *testing.T) {
	before := runtime.NumGoroutine()
	rep, err := Run(Config{
		Trace:      TraceConfig{Seed: 5, Ops: 4000},
		Indexes:    []string{"hybrid"},
		Faults:     Profiles["heavy"],
		CheckEvery: 500,
		Lifecycle:  LifecycleConfig{Deadline: 2 * time.Second, BudgetPages: 16, Retry: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ir := rep.Indexes[0]
	if ir.ChaosCounts.Total() == 0 {
		t.Fatal("heavy profile injected no faults")
	}
	if ir.LeakedPages != 0 {
		t.Fatalf("%d pages leaked", ir.LeakedPages)
	}
	sum := 0
	for _, n := range ir.Outcomes {
		sum += n
	}
	if sum != ir.Ops {
		t.Fatalf("outcomes sum to %d, want %d ops: %v", sum, ir.Ops, ir.Outcomes)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before %d, after %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("outcomes ok/cancelled/timeout/shed/degraded/error = %v", ir.Outcomes)
}

// TestLifecycleRetryKeepsOracleAgreement pins the core retry guarantee:
// with the retry read path configured and caches dropped periodically,
// queries run cold through the chaotic file, transient faults are retried
// inside the read path, and every recovered query still agrees with the
// oracle — a clean (divergence-free) run proves retries never alter
// results. Without a deadline the whole run is deterministic, so two runs
// must also produce identical digests and outcome tallies.
func TestLifecycleRetryKeepsOracleAgreement(t *testing.T) {
	cfg := Config{
		Trace:      TraceConfig{Seed: 13, Ops: 3000},
		Indexes:    []string{"hybrid"},
		Faults:     Profiles["heavy"],
		CheckEvery: 300,
		Lifecycle:  LifecycleConfig{Retry: true},
	}
	retries := obs.Default().Counter("pagefile_read_retries_total")
	base := retries.Value()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := retries.Value() - base; got == 0 {
		t.Fatal("no read retries fired; the retry path went unexercised")
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("retry run not deterministic: %016x != %016x", a.Digest, b.Digest)
	}
	if a.Indexes[0].Outcomes != b.Indexes[0].Outcomes {
		t.Fatalf("outcome tallies differ: %v != %v", a.Indexes[0].Outcomes, b.Indexes[0].Outcomes)
	}
	if a.Indexes[0].LeakedPages != 0 {
		t.Fatalf("%d pages leaked", a.Indexes[0].LeakedPages)
	}
}

// TestLifecycleBudgetDegrades drives a page budget small enough that some
// queries must degrade, and checks the degraded answers were verified (the
// run is divergence-free) and actually occurred.
func TestLifecycleBudgetDegrades(t *testing.T) {
	rep, err := Run(Config{
		Trace:     TraceConfig{Seed: 21, Ops: 3000},
		Indexes:   []string{"hybrid"},
		Lifecycle: LifecycleConfig{BudgetPages: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ir := rep.Indexes[0]
	if ir.Outcomes[obs.OutcomeDegraded] == 0 {
		t.Fatal("page budget of 4 never degraded a query")
	}
	if ir.Outcomes[obs.OutcomeOK] == 0 {
		t.Fatal("every op degraded; expected a mix")
	}
	sum := 0
	for _, n := range ir.Outcomes {
		sum += n
	}
	if sum != ir.Ops {
		t.Fatalf("outcomes sum to %d, want %d ops: %v", sum, ir.Ops, ir.Outcomes)
	}
	t.Logf("degraded %d of %d ops", ir.Outcomes[obs.OutcomeDegraded], ir.Ops)
}

// brokenIndex silently drops the insert of one record id — the kind of
// bug the differential oracle exists to catch.
type brokenIndex struct {
	index.Index
	dropRID uint64
}

func (b *brokenIndex) Insert(p geom.Point, rid uint64) error {
	if rid == b.dropRID {
		return nil // swallowed
	}
	return b.Index.Insert(p, rid)
}

// TestDivergenceDetected verifies the drive loop actually catches a lost
// record and reports a replayable (seed, op index) location.
func TestDivergenceDetected(t *testing.T) {
	cfg := Config{Trace: TraceConfig{Seed: 9, Ops: 1500}, CheckEvery: 100}
	cfg = cfg.withDefaults()
	trace := GenTrace(cfg.Trace)

	inner, err := seqscan.New(pagefile.NewMemFile(cfg.PageSize), cfg.Trace.Dim)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := seqscan.New(pagefile.NewMemFile(cfg.PageSize), cfg.Trace.Dim)
	if err != nil {
		t.Fatal(err)
	}
	sut := &brokenIndex{Index: inner, dropRID: 200}
	_, err = driveIndex(cfg, "broken", sut, nil, nil, oracle, trace)
	var d *Divergence
	if !errors.As(err, &d) {
		t.Fatalf("lost record not detected: err=%v", err)
	}
	if d.Seed != cfg.Trace.Seed || d.OpIndex < 0 || d.OpIndex >= len(trace) {
		t.Fatalf("unreplayable divergence: %+v", d)
	}
	t.Logf("caught: %v", d)
}

// TestMinimizeShrinks checks the ddmin core: given a predicate that fails
// whenever two specific ops are both present, the minimized trace should
// contain little beyond those two ops, and must still fail.
func TestMinimizeShrinks(t *testing.T) {
	trace := GenTrace(TraceConfig{Seed: 2, Ops: 400})
	var needles []int
	for i, op := range trace {
		if op.Kind == OpInsert && (op.RID == 30 || op.RID == 90) {
			needles = append(needles, i)
		}
	}
	if len(needles) != 2 {
		t.Fatalf("trace lacks needle inserts (got %d)", len(needles))
	}
	fails := func(t []Op) bool {
		have := 0
		for _, op := range t {
			if op.Kind == OpInsert && (op.RID == 30 || op.RID == 90) {
				have++
			}
		}
		return have == 2
	}
	min := minimizeWith(fails, trace, 200)
	if !fails(min) {
		t.Fatal("minimized trace no longer fails")
	}
	if len(min) >= len(trace)/4 {
		t.Fatalf("minimize barely shrank: %d of %d ops", len(min), len(trace))
	}
	t.Logf("shrunk %d -> %d ops", len(trace), len(min))
}

// TestReplayTruncatedTrace checks the reproducer path end to end: a run
// over a prefix of the generated trace behaves identically to the same
// prefix of a full run (same digest inputs, no divergence).
func TestReplayTruncatedTrace(t *testing.T) {
	cfg := Config{Trace: TraceConfig{Seed: 6, Ops: 1200}, Faults: Profiles["light"]}
	cfg = cfg.withDefaults()
	trace := GenTrace(cfg.Trace)
	ir, err := Replay(cfg, "hybrid", trace[:600])
	if err != nil {
		t.Fatal(err)
	}
	ir2, err := Replay(cfg, "hybrid", trace[:600])
	if err != nil {
		t.Fatal(err)
	}
	if ir.Digest != ir2.Digest {
		t.Fatalf("replay not deterministic: %016x != %016x", ir.Digest, ir2.Digest)
	}
}
