package geom

import "sort"

// Segment is a 1-d interval — the projection of a child's indexed subspace
// onto a candidate split dimension. The hybrid tree's index-node split
// (Section 3.3) bipartitions a set of segments so as to minimize the overlap
// between the two groups without violating the utilization constraint.
type Segment struct {
	Lo, Hi float32
	// ID identifies the child the segment was projected from.
	ID int
}

// Bipartition divides segs into two groups following the paper's algorithm:
// sort by left boundary (leftmost first) and by right boundary (rightmost
// first), alternately draw from the two sorted lists into the left and right
// groups respectively until each group holds at least minEach segments, then
// place every remaining segment in the group needing the least elongation.
//
// It returns the index sets (positions into segs) of the two groups plus the
// resulting split positions: lsp is the right boundary of the left group and
// rsp the left boundary of the right group; lsp > rsp means the groups
// overlap by lsp-rsp along this dimension.
//
// The whole procedure is O(n log n) — the 1-d analogue of the R-tree
// quadratic bipartition, as the paper observes.
func Bipartition(segs []Segment, minEach int) (left, right []int, lsp, rsp float32) {
	n := len(segs)
	if n < 2 {
		panic("geom: Bipartition needs at least two segments")
	}
	if minEach < 1 {
		minEach = 1
	}
	if 2*minEach > n {
		minEach = n / 2
	}

	byLeft := make([]int, n)  // ascending left boundary
	byRight := make([]int, n) // descending right boundary
	for i := range segs {
		byLeft[i], byRight[i] = i, i
	}
	sort.SliceStable(byLeft, func(a, b int) bool { return segs[byLeft[a]].Lo < segs[byLeft[b]].Lo })
	sort.SliceStable(byRight, func(a, b int) bool { return segs[byRight[a]].Hi > segs[byRight[b]].Hi })

	taken := make([]bool, n)
	var li, ri int // cursors into byLeft / byRight

	takeLeft := func() bool {
		for li < n {
			i := byLeft[li]
			li++
			if !taken[i] {
				taken[i] = true
				left = append(left, i)
				return true
			}
		}
		return false
	}
	takeRight := func() bool {
		for ri < n {
			i := byRight[ri]
			ri++
			if !taken[i] {
				taken[i] = true
				right = append(right, i)
				return true
			}
		}
		return false
	}

	// Alternate seeding until both groups meet the utilization constraint.
	for len(left) < minEach || len(right) < minEach {
		if len(left) < minEach && !takeLeft() {
			break
		}
		if len(right) < minEach && !takeRight() {
			break
		}
	}

	// Current group boundaries along the split dimension.
	groupHi := func(idx []int) float32 {
		hi := segs[idx[0]].Hi
		for _, i := range idx[1:] {
			if segs[i].Hi > hi {
				hi = segs[i].Hi
			}
		}
		return hi
	}
	groupLo := func(idx []int) float32 {
		lo := segs[idx[0]].Lo
		for _, i := range idx[1:] {
			if segs[i].Lo < lo {
				lo = segs[i].Lo
			}
		}
		return lo
	}
	lsp = groupHi(left)
	rsp = groupLo(right)

	// Distribute the remainder: each leftover segment goes to the group
	// whose boundary it elongates least, utilization no longer a concern.
	for i := 0; i < n; i++ {
		if taken[i] {
			continue
		}
		s := segs[i]
		elongL := s.Hi - lsp // how far the left group's right edge must move
		elongR := rsp - s.Lo // how far the right group's left edge must move
		if elongL < 0 {
			elongL = 0
		}
		if elongR < 0 {
			elongR = 0
		}
		if elongL <= elongR {
			left = append(left, i)
			if s.Hi > lsp {
				lsp = s.Hi
			}
		} else {
			right = append(right, i)
			if s.Lo < rsp {
				rsp = s.Lo
			}
		}
	}
	return left, right, lsp, rsp
}

// SegmentOverlap returns the overlap amount w = max(0, lsp-rsp) produced by
// bipartitioning segs with the given utilization minimum, without
// materializing the groups. Used during split-dimension pre-selection.
func SegmentOverlap(segs []Segment, minEach int) (w, extent float64) {
	_, _, lsp, rsp := Bipartition(segs, minEach)
	if lsp > rsp {
		w = float64(lsp) - float64(rsp)
	}
	lo, hi := segs[0].Lo, segs[0].Hi
	for _, s := range segs[1:] {
		if s.Lo < lo {
			lo = s.Lo
		}
		if s.Hi > hi {
			hi = s.Hi
		}
	}
	return w, float64(hi) - float64(lo)
}
