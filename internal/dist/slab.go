package dist

import (
	"hybridtree/internal/geom"
)

// SlabMetric is the streaming leaf-scan fast path over a flat coordinate
// slab: n points stored contiguously as slab[i*dim:(i+1)*dim], the layout
// the hybrid tree's data nodes decode pages into. The batch kernel walks
// the slab linearly — one pass, hardware-prefetch friendly, no per-point
// slice headers — instead of calling DistanceSqBounded through an
// interface once per point.
//
// Contracts, for instances whose SquaredOK reports true:
//
//   - DistanceSqSlab(q, slab, dim, bound, out) fills out[i] for every
//     point i. out[i] accumulates per-dimension terms in exactly the order
//     DistanceSq does, so accepted values are bit-identical to the scalar
//     kernel: out[i] == DistanceSq(q, slab[i*dim:(i+1)*dim]) whenever that
//     value is <= bound. When the running sum strictly exceeds bound the
//     point is abandoned early and out[i] holds the partial sum (> bound).
//   - len(out) >= n and len(q) == dim are the caller's responsibility.
//
// Use AsSlab to detect support, mirroring AsSquared.
type SlabMetric interface {
	SquaredMetric
	// DistanceSqSlab computes the (early-abandoned) squared distance from q
	// to every point of the slab, writing out[i] for point i.
	DistanceSqSlab(q geom.Point, slab []float32, dim int, bound float64, out []float64)
}

// AsSlab reports whether m supports the batch slab kernel and returns its
// SlabMetric view when it does. Every SlabMetric is a SquaredMetric, so the
// same SquaredOK gate applies (e.g. LpMetric only when P == 2).
func AsSlab(m Metric) (SlabMetric, bool) {
	if s, ok := m.(SlabMetric); ok && s.SquaredOK() {
		return s, true
	}
	return nil, false
}

// FilterBoxSlab appends to hits the index of every slab point contained in
// the box [lo, hi], scanning linearly in point order. Containment matches
// geom.Rect.Contains exactly: a point is out when any coordinate is < lo[d]
// or > hi[d] (boundaries inclusive, NaN coordinates excluded by the same
// comparisons).
func FilterBoxSlab(lo, hi geom.Point, slab []float32, dim int, hits []int32) []int32 {
	n := len(slab) / dim
	for i := 0; i < n; i++ {
		row := slab[i*dim : (i+1)*dim]
		in := true
		for d := 0; d < dim; d++ {
			if row[d] < lo[d] || row[d] > hi[d] {
				in = false
				break
			}
		}
		if in {
			hits = append(hits, int32(i))
		}
	}
	return hits
}

// DistanceSqSlab implements SlabMetric.
func (euclidean) DistanceSqSlab(q geom.Point, slab []float32, dim int, bound float64, out []float64) {
	n := len(slab) / dim
	for i := 0; i < n; i++ {
		row := slab[i*dim : (i+1)*dim]
		s := 0.0
		for d := 0; d < dim; d++ {
			dv := float64(q[d]) - float64(row[d])
			s += dv * dv
			if s > bound {
				break
			}
		}
		out[i] = s
	}
}

// DistanceSqSlab implements SlabMetric (valid when P == 2).
func (m LpMetric) DistanceSqSlab(q geom.Point, slab []float32, dim int, bound float64, out []float64) {
	euclidean{}.DistanceSqSlab(q, slab, dim, bound, out)
}

// DistanceSqSlab implements SlabMetric (valid when P == 2).
func (m WeightedLp) DistanceSqSlab(q geom.Point, slab []float32, dim int, bound float64, out []float64) {
	n := len(slab) / dim
	for i := 0; i < n; i++ {
		row := slab[i*dim : (i+1)*dim]
		s := 0.0
		for d := 0; d < dim; d++ {
			dv := float64(q[d]) - float64(row[d])
			s += m.Weights[d] * (dv * dv)
			if s > bound {
				break
			}
		}
		out[i] = s
	}
}
