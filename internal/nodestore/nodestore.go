// Package nodestore provides a generic decoded-node cache over a page file,
// shared by the baseline access methods (SR-tree, hB-tree, KDB-tree). Like
// the hybrid tree's store, it charges one logical random read per Get even
// on a cache hit: the experiments count cold disk accesses, and caching is
// only a construction-speed convenience that must not distort measurements.
package nodestore

import "hybridtree/internal/pagefile"

// Codec serializes nodes of type N to and from page bytes.
type Codec[N any] interface {
	Encode(n N, buf []byte) (int, error)
	Decode(id pagefile.PageID, buf []byte) (N, error)
}

// Store is a write-through decoded-node cache.
type Store[N any] struct {
	file  pagefile.File
	codec Codec[N]
	cache map[pagefile.PageID]N
	buf   []byte
}

// New creates a store over file using codec.
func New[N any](file pagefile.File, codec Codec[N]) *Store[N] {
	return &Store[N]{
		file:  file,
		codec: codec,
		cache: make(map[pagefile.PageID]N),
		buf:   make([]byte, file.PageSize()),
	}
}

// Get returns the decoded node, counting one logical random read.
func (s *Store[N]) Get(id pagefile.PageID) (N, error) {
	if n, ok := s.cache[id]; ok {
		s.file.Stats().RandomReads++
		return n, nil
	}
	var zero N
	if err := s.file.ReadPage(id, s.buf); err != nil {
		return zero, err
	}
	n, err := s.codec.Decode(id, s.buf)
	if err != nil {
		return zero, err
	}
	s.cache[id] = n
	return n, nil
}

// Alloc reserves a fresh page id.
func (s *Store[N]) Alloc() (pagefile.PageID, error) {
	return s.file.Allocate()
}

// Put writes the node through to its page and caches it.
func (s *Store[N]) Put(id pagefile.PageID, n N) error {
	size, err := s.codec.Encode(n, s.buf)
	if err != nil {
		return err
	}
	if err := s.file.WritePage(id, s.buf[:size]); err != nil {
		return err
	}
	s.cache[id] = n
	return nil
}

// Free releases the node's page.
func (s *Store[N]) Free(id pagefile.PageID) error {
	delete(s.cache, id)
	return s.file.Free(id)
}

// DropCache empties the decoded cache, forcing decodes on subsequent Gets.
func (s *Store[N]) DropCache() {
	s.cache = make(map[pagefile.PageID]N)
}
