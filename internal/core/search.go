package core

import (
	"fmt"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/pqueue"
)

// Entry is one stored record returned by a search.
type Entry struct {
	Point geom.Point
	RID   RecordID
}

// Neighbor is a search result annotated with its distance to the query.
type Neighbor struct {
	Entry
	Dist float64
}

// SearchBox returns every entry whose vector lies inside q (boundaries
// inclusive) — the feature-based bounding-box query of Section 3.5, and the
// query type of the paper's Figures 5 and 6.
func (t *Tree) SearchBox(q geom.Rect) ([]Entry, error) {
	if q.Dim() != t.cfg.Dim {
		return nil, fmt.Errorf("core: query has dim %d, tree expects %d", q.Dim(), t.cfg.Dim)
	}
	var out []Entry
	err := t.boxAt(t.root, t.cfg.Space, q, &out)
	return out, err
}

// boxAt performs box search below one node. The intra-node kd-tree is
// navigated by narrowing one boundary per internal record and re-testing
// only that boundary — the "a boundary is checked only once" property that
// gives the hybrid tree its intranode speed advantage over array-of-BR
// structures (Section 3.1).
func (t *Tree) boxAt(id pagefile.PageID, br geom.Rect, q geom.Rect, out *[]Entry) error {
	n, err := t.store.get(id)
	if err != nil {
		return err
	}
	if n.leaf {
		for i, p := range n.pts {
			if q.Contains(p) {
				*out = append(*out, Entry{Point: p, RID: n.rids[i]})
			}
		}
		return nil
	}
	if n.kdRoot == kdNone {
		return nil
	}
	type visit struct {
		child pagefile.PageID
		br    geom.Rect
	}
	var visits []visit
	brWalk := br.Clone()
	var walk func(idx int32)
	walk = func(idx int32) {
		k := &n.kd[idx]
		if k.isLeaf() {
			// Step two of the paper's two-step overlap check: the kd-defined
			// BR already intersects q; now consult the encoded live space.
			live, ok := t.els.Get(uint32(k.Child), t.cfg.Space)
			if ok && !live.Intersects(q) {
				return
			}
			visits = append(visits, visit{child: k.Child, br: brWalk.Clone()})
			return
		}
		d := int(k.Dim)
		oldHi := brWalk.Hi[d]
		if k.Lsp < oldHi {
			brWalk.Hi[d] = k.Lsp
		}
		if q.Lo[d] <= brWalk.Hi[d] && brWalk.Hi[d] >= brWalk.Lo[d] {
			walk(k.Left)
		}
		brWalk.Hi[d] = oldHi
		oldLo := brWalk.Lo[d]
		if k.Rsp > oldLo {
			brWalk.Lo[d] = k.Rsp
		}
		if q.Hi[d] >= brWalk.Lo[d] && brWalk.Hi[d] >= brWalk.Lo[d] {
			walk(k.Right)
		}
		brWalk.Lo[d] = oldLo
	}
	walk(n.kdRoot)
	for _, v := range visits {
		if err := t.boxAt(v.child, v.br, q, out); err != nil {
			return err
		}
	}
	return nil
}

// SearchPoint returns the record ids stored exactly at p.
func (t *Tree) SearchPoint(p geom.Point) ([]RecordID, error) {
	entries, err := t.SearchBox(geom.Rect{Lo: p, Hi: p})
	if err != nil {
		return nil, err
	}
	rids := make([]RecordID, 0, len(entries))
	for _, e := range entries {
		rids = append(rids, e.RID)
	}
	return rids, nil
}

// SearchRange returns every entry within distance radius of q under metric
// m — the distance-based range query of Section 3.5. The metric is supplied
// per query: nothing about the tree is specialized to it.
func (t *Tree) SearchRange(q geom.Point, radius float64, m dist.Metric) ([]Neighbor, error) {
	if len(q) != t.cfg.Dim {
		return nil, fmt.Errorf("core: query has dim %d, tree expects %d", len(q), t.cfg.Dim)
	}
	if radius < 0 {
		return nil, fmt.Errorf("core: negative radius %g", radius)
	}
	var out []Neighbor
	err := t.rangeAt(t.root, t.cfg.Space, q, radius, m, &out)
	return out, err
}

func (t *Tree) rangeAt(id pagefile.PageID, br geom.Rect, q geom.Point, radius float64, m dist.Metric, out *[]Neighbor) error {
	n, err := t.store.get(id)
	if err != nil {
		return err
	}
	if n.leaf {
		for i, p := range n.pts {
			if d := m.Distance(q, p); d <= radius {
				*out = append(*out, Neighbor{Entry: Entry{Point: p, RID: n.rids[i]}, Dist: d})
			}
		}
		return nil
	}
	type visit struct {
		child pagefile.PageID
		br    geom.Rect
	}
	var visits []visit
	brWalk := br.Clone()
	scratch := geom.Rect{Lo: make(geom.Point, t.cfg.Dim), Hi: make(geom.Point, t.cfg.Dim)}
	var walk func(idx int32)
	walk = func(idx int32) {
		k := &n.kd[idx]
		if k.isLeaf() {
			// The child's true region is brWalk ∩ live; bounding against
			// the intersection (built in a reused scratch rect) is strictly
			// tighter than the max of the two separate MINDISTs.
			lb := 0.0
			if live, ok := t.els.Get(uint32(k.Child), t.cfg.Space); ok {
				if !intersectInto(&scratch, brWalk, live) {
					return
				}
				lb = m.MinDistRect(q, scratch)
			} else {
				lb = m.MinDistRect(q, brWalk)
			}
			if lb <= radius {
				visits = append(visits, visit{child: k.Child, br: brWalk.Clone()})
			}
			return
		}
		d := int(k.Dim)
		oldHi := brWalk.Hi[d]
		if k.Lsp < oldHi {
			brWalk.Hi[d] = k.Lsp
		}
		if brWalk.Hi[d] >= brWalk.Lo[d] {
			walk(k.Left)
		}
		brWalk.Hi[d] = oldHi
		oldLo := brWalk.Lo[d]
		if k.Rsp > oldLo {
			brWalk.Lo[d] = k.Rsp
		}
		if brWalk.Hi[d] >= brWalk.Lo[d] {
			walk(k.Right)
		}
		brWalk.Lo[d] = oldLo
	}
	if n.kdRoot != kdNone {
		walk(n.kdRoot)
	}
	for _, v := range visits {
		if err := t.rangeAt(v.child, v.br, q, radius, m, out); err != nil {
			return err
		}
	}
	return nil
}

// SearchKNN returns the k entries nearest to q under metric m, closest
// first, using best-first (Hjaltason–Samet) traversal: nodes are expanded
// in order of the MINDIST between q and their (live-space-tightened) BRs,
// stopping when the next node cannot beat the current k-th distance.
func (t *Tree) SearchKNN(q geom.Point, k int, m dist.Metric) ([]Neighbor, error) {
	if len(q) != t.cfg.Dim {
		return nil, fmt.Errorf("core: query has dim %d, tree expects %d", len(q), t.cfg.Dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	type frontier struct {
		id pagefile.PageID
		br geom.Rect
	}
	var pq pqueue.Min[frontier]
	best := pqueue.NewKBest[Neighbor](k)

	rootBR := t.cfg.Space
	pq.Push(frontier{id: t.root, br: rootBR}, 0)
	for pq.Len() > 0 {
		f, mindist := pq.Pop()
		if best.Full() && mindist > best.Bound() {
			break
		}
		n, err := t.store.get(f.id)
		if err != nil {
			return nil, err
		}
		if n.leaf {
			for i, p := range n.pts {
				d := m.Distance(q, p)
				best.Offer(Neighbor{Entry: Entry{Point: p, RID: n.rids[i]}, Dist: d}, d)
			}
			continue
		}
		brWalk := f.br.Clone()
		scratch := geom.Rect{Lo: make(geom.Point, t.cfg.Dim), Hi: make(geom.Point, t.cfg.Dim)}
		var walk func(idx int32)
		walk = func(idx int32) {
			k2 := &n.kd[idx]
			if k2.isLeaf() {
				var md float64
				if live, ok := t.els.Get(uint32(k2.Child), t.cfg.Space); ok {
					if !intersectInto(&scratch, brWalk, live) {
						return
					}
					md = m.MinDistRect(q, scratch)
				} else {
					md = m.MinDistRect(q, brWalk)
				}
				if !best.Full() || md <= best.Bound() {
					pq.Push(frontier{id: k2.Child, br: brWalk.Clone()}, md)
				}
				return
			}
			d := int(k2.Dim)
			oldHi := brWalk.Hi[d]
			if k2.Lsp < oldHi {
				brWalk.Hi[d] = k2.Lsp
			}
			if brWalk.Hi[d] >= brWalk.Lo[d] {
				walk(k2.Left)
			}
			brWalk.Hi[d] = oldHi
			oldLo := brWalk.Lo[d]
			if k2.Rsp > oldLo {
				brWalk.Lo[d] = k2.Rsp
			}
			if brWalk.Hi[d] >= brWalk.Lo[d] {
				walk(k2.Right)
			}
			brWalk.Lo[d] = oldLo
		}
		if n.kdRoot != kdNone {
			walk(n.kdRoot)
		}
	}
	neighbors, _ := best.Sorted()
	return neighbors, nil
}

// intersectInto writes the intersection of a and b into dst (which must
// have matching dimensionality) and reports whether it is non-empty.
func intersectInto(dst *geom.Rect, a, b geom.Rect) bool {
	for d := range dst.Lo {
		lo, hi := a.Lo[d], a.Hi[d]
		if b.Lo[d] > lo {
			lo = b.Lo[d]
		}
		if b.Hi[d] < hi {
			hi = b.Hi[d]
		}
		if lo > hi {
			return false
		}
		dst.Lo[d], dst.Hi[d] = lo, hi
	}
	return true
}
