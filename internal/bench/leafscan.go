package bench

import (
	"encoding/binary"
	"fmt"
	"math"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
)

// This file is the measurement harness for the flat-slab leaf layout: it
// keeps a small self-contained copy of the *legacy* per-point decode path
// (one []geom.Point allocation per entry, exactly what internal/core did
// before the slab rewrite) as the baseline, decodes the same page both ways,
// and scans both layouts with the same k-NN-style bounded distance loop.
// The page bytes follow the frozen v1 data-page format — 6-byte header
// (magic 'H', type 0, dim uint16, count uint16), then per entry a uint64
// record id followed by dim little-endian float32 coordinates — so the
// comparison measures layout and kernel, not codec differences.

// LegacyLeaf is the pre-slab in-memory layout: one heap-allocated point per
// entry, pointers chasing out of the page in decode order.
type LegacyLeaf struct {
	Pts  []geom.Point
	Rids []uint64
}

// SlabLeaf is the current layout: all coordinates in one contiguous slab,
// record ids in a parallel slice.
type SlabLeaf struct {
	Vals []float32
	Rids []uint64
	Dim  int
}

const leafHeaderSize = 6

// EncodeLeafPage builds a v1 data page over deterministic pseudo-random
// coordinates (splitmix-style from seed). Used by both decode baselines and
// the scan benchmarks so every measurement sees identical bytes.
func EncodeLeafPage(dim, count int, seed uint64) []byte {
	buf := make([]byte, leafHeaderSize+count*(8+4*dim))
	buf[0] = 'H'
	buf[1] = 0
	binary.LittleEndian.PutUint16(buf[2:], uint16(dim))
	binary.LittleEndian.PutUint16(buf[4:], uint16(count))
	off := leafHeaderSize
	s := seed
	for i := 0; i < count; i++ {
		binary.LittleEndian.PutUint64(buf[off:], uint64(i)<<16|s&0xffff)
		off += 8
		for d := 0; d < dim; d++ {
			s = s*6364136223846793005 + 1442695040888963407
			v := float32(s>>40) / float32(1<<24)
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
			off += 4
		}
	}
	return buf
}

// DecodeLegacyLeaf decodes a data page the way internal/core did before the
// slab layout: a fresh geom.Point allocation per entry.
func DecodeLegacyLeaf(page []byte, dim int) (*LegacyLeaf, error) {
	count, err := leafCount(page, dim)
	if err != nil {
		return nil, err
	}
	l := &LegacyLeaf{Pts: make([]geom.Point, 0, count), Rids: make([]uint64, 0, count)}
	off := leafHeaderSize
	for i := 0; i < count; i++ {
		rid := binary.LittleEndian.Uint64(page[off:])
		off += 8
		p := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = math.Float32frombits(binary.LittleEndian.Uint32(page[off:]))
			off += 4
		}
		l.Pts = append(l.Pts, p)
		l.Rids = append(l.Rids, rid)
	}
	return l, nil
}

// DecodeSlabLeaf decodes the same page into the contiguous layout: two
// allocations total regardless of entry count.
func DecodeSlabLeaf(page []byte, dim int) (*SlabLeaf, error) {
	count, err := leafCount(page, dim)
	if err != nil {
		return nil, err
	}
	l := &SlabLeaf{Vals: make([]float32, count*dim), Rids: make([]uint64, count), Dim: dim}
	off := leafHeaderSize
	for i := 0; i < count; i++ {
		l.Rids[i] = binary.LittleEndian.Uint64(page[off:])
		off += 8
		row := l.Vals[i*dim : (i+1)*dim]
		for d := 0; d < dim; d++ {
			row[d] = math.Float32frombits(binary.LittleEndian.Uint32(page[off:]))
			off += 4
		}
	}
	return l, nil
}

func leafCount(page []byte, dim int) (int, error) {
	if len(page) < leafHeaderSize || page[0] != 'H' || page[1] != 0 {
		return 0, fmt.Errorf("bench: not a data page")
	}
	if got := int(binary.LittleEndian.Uint16(page[2:])); got != dim {
		return 0, fmt.Errorf("bench: page dim %d, want %d", got, dim)
	}
	count := int(binary.LittleEndian.Uint16(page[4:]))
	if leafHeaderSize+count*(8+4*dim) > len(page) {
		return 0, fmt.Errorf("bench: truncated page")
	}
	return count, nil
}

// ScanLegacyKNN is the pre-slab leaf loop of searchKNN: per-point bounded
// squared distance through the pointer-per-point layout. Returns the best
// squared distance found and the number of entries within bound.
func ScanLegacyKNN(q geom.Point, l *LegacyLeaf, bound float64) (float64, int) {
	sq, _ := dist.AsSquared(dist.L2())
	best := math.Inf(1)
	within := 0
	for _, p := range l.Pts {
		d2 := sq.DistanceSqBounded(q, p, bound)
		if d2 > bound {
			continue
		}
		within++
		if d2 < best {
			best = d2
		}
	}
	return best, within
}

// ScanSlabKNN is the slab leaf loop: one streaming kernel call over the
// contiguous values, then a scalar pass over its output.
func ScanSlabKNN(q geom.Point, l *SlabLeaf, bound float64, out []float64) (float64, int) {
	slm, _ := dist.AsSlab(dist.L2())
	n := len(l.Rids)
	out = out[:n]
	slm.DistanceSqSlab(q, l.Vals, l.Dim, bound, out)
	best := math.Inf(1)
	within := 0
	for _, d2 := range out {
		if d2 > bound {
			continue
		}
		within++
		if d2 < best {
			best = d2
		}
	}
	return best, within
}
