package obs

import (
	"math"
	"testing"
)

// TestHistogramBucketBoundaries pins the log2 bucket layout: 0 has its own
// bucket, and each power-of-two range lands exactly where BucketUpperBound
// says it does, including both edges.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{255, 8}, {256, 9},
		{1 << 40, 41}, {1<<41 - 1, 41},
		{math.MaxInt64, 63},
		{-5, 0}, // negatives clamp to 0
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.v)
		got := -1
		for i := 0; i < NumBuckets; i++ {
			if h.buckets[i].Load() == 1 {
				got = i
				break
			}
		}
		if got != c.bucket {
			t.Errorf("Observe(%d) landed in bucket %d, want %d", c.v, got, c.bucket)
		}
		if c.v >= 0 {
			ub := BucketUpperBound(c.bucket)
			if uint64(c.v) > ub {
				t.Errorf("Observe(%d): value above its bucket's upper bound %d", c.v, ub)
			}
			if c.bucket > 0 && uint64(c.v) <= BucketUpperBound(c.bucket-1) {
				t.Errorf("Observe(%d): value not above previous bucket's bound %d",
					c.v, BucketUpperBound(c.bucket-1))
			}
		}
	}
	if BucketUpperBound(0) != 0 {
		t.Errorf("BucketUpperBound(0) = %d", BucketUpperBound(0))
	}
	if BucketUpperBound(64) != math.MaxUint64 {
		t.Errorf("BucketUpperBound(64) = %d", BucketUpperBound(64))
	}
}

// TestHistogramMerge checks that merging two histograms is equivalent to
// observing all their values into one.
func TestHistogramMerge(t *testing.T) {
	var a, b, direct Histogram
	va := []int64{0, 1, 1, 7, 300, 1 << 20}
	vb := []int64{0, 2, 8, 8, 1 << 20, 1 << 50}
	for _, v := range va {
		a.Observe(v)
		direct.Observe(v)
	}
	for _, v := range vb {
		b.Observe(v)
		direct.Observe(v)
	}
	a.Merge(&b)
	if a.Count() != direct.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), direct.Count())
	}
	if a.Sum() != direct.Sum() {
		t.Fatalf("merged sum %d, want %d", a.Sum(), direct.Sum())
	}
	for i := 0; i < NumBuckets; i++ {
		if got, want := a.buckets[i].Load(), direct.buckets[i].Load(); got != want {
			t.Errorf("bucket %d: merged %d, direct %d", i, got, want)
		}
	}
	// Self-merge and nil-merge are no-ops.
	before := a.Count()
	a.Merge(&a)
	a.Merge(nil)
	if a.Count() != before {
		t.Fatalf("self/nil merge changed count: %d -> %d", before, a.Count())
	}
}

func TestHistogramSnapshotAndQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(100) // bucket [64,127]
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 10000 {
		t.Fatalf("snapshot count=%d sum=%d", s.Count, s.Sum)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].Le != 127 || s.Buckets[0].Count != 100 {
		t.Fatalf("snapshot buckets = %+v", s.Buckets)
	}
	q := h.Quantile(0.5)
	if q < 64 || q > 127 {
		t.Fatalf("median %v outside the only occupied bucket [64,127]", q)
	}
	h.Observe(1 << 30)
	if q := h.Quantile(1); q < 1<<29 {
		t.Fatalf("max quantile %v below the top observation's bucket", q)
	}
}

// TestHistogramQuantileEdges pins the estimator's edge behavior: empty
// histograms, out-of-range q clamping, and the q=0 / q=1 extremes of a
// single-bucket population staying inside that bucket's range.
func TestHistogramQuantileEdges(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	// Single observation: every quantile must land in its bucket [64,127].
	var one Histogram
	one.Observe(100)
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		got := one.Quantile(q)
		if got < 64 || got > 127 {
			t.Errorf("single-value Quantile(%v) = %v, outside [64,127]", q, got)
		}
	}
	// q=0 interpolates to the bucket's low edge, q=1 to its upper bound.
	if lo, hi := one.Quantile(0), one.Quantile(1); lo >= hi {
		t.Errorf("Quantile(0)=%v not below Quantile(1)=%v within the bucket", lo, hi)
	}

	// Out-of-range q clamps rather than extrapolating.
	if got, want := one.Quantile(-5), one.Quantile(0); got != want {
		t.Errorf("Quantile(-5) = %v, want clamp to Quantile(0) = %v", got, want)
	}
	if got, want := one.Quantile(7), one.Quantile(1); got != want {
		t.Errorf("Quantile(7) = %v, want clamp to Quantile(1) = %v", got, want)
	}

	// Two well-separated buckets: the median boundary is ordered correctly.
	var two Histogram
	two.Observe(10)
	two.Observe(1 << 20)
	if q25, q75 := two.Quantile(0.25), two.Quantile(0.75); q25 >= q75 {
		t.Errorf("q25=%v >= q75=%v for bimodal data", q25, q75)
	}
}

func TestHistogramObserveN(t *testing.T) {
	var batched, looped Histogram
	batched.ObserveN(100, 7)
	batched.ObserveN(-3, 2) // negatives clamp to 0, like Observe
	batched.ObserveN(5, 0)  // n=0 is a no-op
	for i := 0; i < 7; i++ {
		looped.Observe(100)
	}
	looped.Observe(-3)
	looped.Observe(-3)
	if batched.Count() != looped.Count() || batched.Sum() != looped.Sum() {
		t.Fatalf("ObserveN count/sum %d/%d, loop %d/%d",
			batched.Count(), batched.Sum(), looped.Count(), looped.Sum())
	}
	for i := 0; i < NumBuckets; i++ {
		if got, want := batched.buckets[i].Load(), looped.buckets[i].Load(); got != want {
			t.Errorf("bucket %d: ObserveN %d, loop %d", i, got, want)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	done := make(chan struct{})
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				h.Observe(int64(i % 1000))
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var total uint64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	if total != workers*per {
		t.Fatalf("bucket total = %d, want %d", total, workers*per)
	}
}
