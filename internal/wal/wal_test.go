package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"hybridtree/internal/pagefile"
)

const testPageSize = 256

// newStack builds a wal.File over a fresh CrashFile and MemLog.
func newStack(t *testing.T, opts Options) (*File, *pagefile.CrashFile, *MemLog) {
	t.Helper()
	inner := pagefile.NewCrashFile(testPageSize)
	log := NewMemLog()
	f, rec, err := Open(inner, log, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rec.Replayed != 0 || rec.Txs != 0 {
		t.Fatalf("fresh open replayed something: %+v", rec)
	}
	return f, inner, log
}

func mustAlloc(t *testing.T, f pagefile.File) pagefile.PageID {
	t.Helper()
	id, err := f.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	return id
}

func page(fill byte) []byte {
	p := make([]byte, testPageSize)
	for i := range p {
		p[i] = fill
	}
	return p
}

func readPage(t *testing.T, f pagefile.File, id pagefile.PageID) []byte {
	t.Helper()
	buf := make([]byte, testPageSize)
	if err := f.ReadPage(id, buf); err != nil {
		t.Fatalf("ReadPage %d: %v", id, err)
	}
	return buf
}

// reopen simulates the post-crash restart: a new wal.File over the same
// (crashed) inner file and log.
func reopen(t *testing.T, inner pagefile.File, log LogStore, opts Options) (*File, Recovery) {
	t.Helper()
	f, rec, err := Open(inner, log, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return f, rec
}

func TestSealedTxSurvivesCrash(t *testing.T) {
	f, inner, log := newStack(t, Options{})
	a, b := mustAlloc(t, f), mustAlloc(t, f)

	f.BeginTx()
	if err := f.WritePage(a, page(0xAA)); err != nil {
		t.Fatal(err)
	}
	if err := f.WritePage(b, page(0xBB)); err != nil {
		t.Fatal(err)
	}
	if err := f.SealTx(); err != nil {
		t.Fatalf("SealTx: %v", err)
	}

	// Power cut: inner volatile state tears, but the log was fsynced.
	inner.Crash(1)
	log.Crash(2)
	f2, rec := reopen(t, inner, log, Options{})
	if rec.Txs != 1 || rec.Replayed != 2 {
		t.Fatalf("recovery = %+v, want 1 tx / 2 records", rec)
	}
	if got := readPage(t, f2, a); !bytes.Equal(got, page(0xAA)) {
		t.Fatalf("page a lost after recovery")
	}
	if got := readPage(t, f2, b); !bytes.Equal(got, page(0xBB)) {
		t.Fatalf("page b lost after recovery")
	}
}

func TestUncommittedRecordsNeverResurrect(t *testing.T) {
	f, inner, log := newStack(t, Options{})
	a := mustAlloc(t, f)
	if err := f.WritePage(a, page(0x01)); err != nil { // auto-commit
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // checkpoint: 0x01 durable
		t.Fatal(err)
	}

	// Forge the failure mode where write records reach the log but their
	// commit frame does not (torn off by the crash): they must be
	// discarded, not replayed.
	frames := appendWrite(nil, a, page(0x02))
	if err := log.Append(frames); err != nil {
		t.Fatal(err)
	}
	if err := log.Sync(); err != nil { // survives the crash intact, still uncommitted
		t.Fatal(err)
	}
	inner.Crash(4)
	f2, rec := reopen(t, inner, log, Options{})
	if rec.Discarded != 1 {
		t.Fatalf("Discarded = %d, want 1 (recovery: %+v)", rec.Discarded, rec)
	}
	if got := readPage(t, f2, a); !bytes.Equal(got, page(0x01)) {
		t.Fatalf("uncommitted write resurrected: page = %x...", got[0])
	}
}

func TestTornTailDetectedAndTruncated(t *testing.T) {
	f, inner, log := newStack(t, Options{})
	a := mustAlloc(t, f)
	if err := f.WritePage(a, page(0x11)); err != nil {
		t.Fatal(err)
	}
	f.BeginTx()
	if err := f.WritePage(a, page(0x22)); err != nil {
		t.Fatal(err)
	}
	if err := f.SealTx(); err != nil {
		t.Fatal(err)
	}
	// Garbage after the last valid frame: a torn append.
	if err := log.Append([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	inner.Crash(5)
	f2, rec := reopen(t, inner, log, Options{})
	if rec.TornBytes == 0 {
		t.Fatalf("torn tail not detected: %+v", rec)
	}
	if log.Size() != rec.TruncatedTo {
		t.Fatalf("log not truncated: size %d, want %d", log.Size(), rec.TruncatedTo)
	}
	if got := readPage(t, f2, a); !bytes.Equal(got, page(0x22)) {
		t.Fatalf("committed write lost to torn tail")
	}
}

func TestCheckpointTruncatesAndSurvives(t *testing.T) {
	f, inner, log := newStack(t, Options{})
	a := mustAlloc(t, f)
	f.BeginTx()
	if err := f.WritePage(a, page(0x33)); err != nil {
		t.Fatal(err)
	}
	if err := f.SealTx(); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if log.Size() != 0 {
		t.Fatalf("log size %d after checkpoint, want 0", log.Size())
	}
	if f.OverlayPages() != 0 {
		t.Fatalf("overlay %d pages after checkpoint, want 0", f.OverlayPages())
	}
	inner.Crash(6)
	f2, rec := reopen(t, inner, log, Options{})
	if rec.Replayed != 0 {
		t.Fatalf("checkpointed state should need no replay: %+v", rec)
	}
	if got := readPage(t, f2, a); !bytes.Equal(got, page(0x33)) {
		t.Fatalf("checkpointed page lost")
	}
}

func TestSealRewindsOnFsyncFailure(t *testing.T) {
	f, inner, log := newStack(t, Options{})
	a := mustAlloc(t, f)
	if err := f.WritePage(a, page(0x44)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	log.FailNextSyncs(1)
	f.BeginTx()
	if err := f.WritePage(a, page(0x55)); err != nil {
		t.Fatal(err)
	}
	if err := f.SealTx(); err == nil {
		t.Fatalf("SealTx succeeded despite fsync failure")
	}
	if log.Size() != 0 {
		t.Fatalf("failed tx left %d bytes in the log", log.Size())
	}
	// The caller's contract: rewrite the pre-image after a failed seal.
	if err := f.WritePage(a, page(0x44)); err != nil {
		t.Fatal(err)
	}
	inner.Crash(7)
	log.Crash(8)
	f2, rec := reopen(t, inner, log, Options{})
	_ = rec
	if got := readPage(t, f2, a); !bytes.Equal(got, page(0x44)) {
		t.Fatalf("failed-fsync tx resurrected: page = %x...", got[0])
	}
}

func TestFsyncEveryAmortizes(t *testing.T) {
	f, _, log := newStack(t, Options{FsyncEvery: 4})
	a := mustAlloc(t, f)
	for i := 0; i < 3; i++ {
		f.BeginTx()
		if err := f.WritePage(a, page(byte(i))); err != nil {
			t.Fatal(err)
		}
		if err := f.SealTx(); err != nil {
			t.Fatal(err)
		}
		if log.Synced() != 0 {
			t.Fatalf("commit %d forced an fsync with FsyncEvery=4", i)
		}
	}
	f.BeginTx()
	if err := f.WritePage(a, page(9)); err != nil {
		t.Fatal(err)
	}
	if err := f.SealTx(); err != nil {
		t.Fatal(err)
	}
	if got, want := int64(log.Synced()), log.Size(); got != want {
		t.Fatalf("4th commit did not fsync: synced %d, size %d", got, want)
	}
}

func TestAbortDropsStagedRecords(t *testing.T) {
	f, inner, log := newStack(t, Options{})
	a := mustAlloc(t, f)
	if err := f.WritePage(a, page(0x66)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	before := log.Size()
	f.BeginTx()
	if err := f.WritePage(a, page(0x77)); err != nil {
		t.Fatal(err)
	}
	f.AbortTx()
	if log.Size() != before {
		t.Fatalf("aborted tx reached the log")
	}
	// Mirror the tree's rollback: rewrite the pre-image.
	if err := f.WritePage(a, page(0x66)); err != nil {
		t.Fatal(err)
	}
	inner.Crash(9)
	log.Crash(10)
	f2, _ := reopen(t, inner, log, Options{})
	if got := readPage(t, f2, a); !bytes.Equal(got, page(0x66)) {
		t.Fatalf("aborted tx visible after recovery")
	}
}

func TestReplayIsIdempotentAcrossRepeatedCrashes(t *testing.T) {
	f, inner, log := newStack(t, Options{})
	a := mustAlloc(t, f)
	f.BeginTx()
	if err := f.WritePage(a, page(0x88)); err != nil {
		t.Fatal(err)
	}
	if err := f.SealTx(); err != nil {
		t.Fatal(err)
	}
	// Crash, recover, crash again without checkpointing: the log must keep
	// carrying the committed state.
	for seed := int64(20); seed < 23; seed++ {
		inner.Crash(seed)
		log.Crash(seed + 100)
		var rec Recovery
		f, rec = reopen(t, inner, log, Options{})
		if rec.Txs != 1 || rec.Replayed != 1 {
			t.Fatalf("seed %d: recovery %+v, want 1 tx / 1 record", seed, rec)
		}
		if got := readPage(t, f, a); !bytes.Equal(got, page(0x88)) {
			t.Fatalf("seed %d: committed write lost", seed)
		}
	}
}

func TestOpenRejectsReadOnlyBase(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.db")
	df, err := pagefile.CreateDiskFile(path, testPageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := df.Close(); err != nil {
		t.Fatal(err)
	}
	mf, err := pagefile.OpenMmapFile(path, testPageSize)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	_, _, err = Open(mf, NewMemLog(), Options{})
	if !errors.Is(err, ErrReadOnlyBase) {
		t.Fatalf("Open over mmap: err = %v, want ErrReadOnlyBase", err)
	}
}

func TestFileLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	log, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	inner := pagefile.NewCrashFile(testPageSize)
	f, _, err := Open(inner, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := mustAlloc(t, f)
	f.BeginTx()
	if err := f.WritePage(a, page(0x99)); err != nil {
		t.Fatal(err)
	}
	if err := f.SealTx(); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen the log from disk; the inner CrashFile loses its volatile
	// state as if the process died.
	inner.Crash(30)
	log2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	f2, rec, err := Open(inner, log2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Txs != 1 {
		t.Fatalf("recovery from FileLog: %+v", rec)
	}
	if got := readPage(t, f2, a); !bytes.Equal(got, page(0x99)) {
		t.Fatalf("FileLog-backed recovery lost the committed write")
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != rec.TruncatedTo {
		t.Fatalf("log file size %v/%v, want %d", fi, err, rec.TruncatedTo)
	}
}

// TestConcurrentReadsDuringMutations: the MVCC layer above serves
// lock-free searches whose cold-cache misses read through the file while
// a writer mutates the overlay. Run under -race this is the regression
// test for the unguarded overlay map (concurrent map read and map write).
func TestConcurrentReadsDuringMutations(t *testing.T) {
	f, _, _ := newStack(t, Options{})
	const npages = 8
	ids := make([]pagefile.PageID, npages)
	for i := range ids {
		ids[i] = mustAlloc(t, f)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			buf := make([]byte, testPageSize)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[(i+r)%npages]
				if err := f.ReadPage(id, buf); err != nil {
					t.Errorf("ReadPage: %v", err)
					return
				}
				if err := f.ReadPageSeq(id, buf); err != nil {
					t.Errorf("ReadPageSeq: %v", err)
					return
				}
				_ = f.OverlayPages()
			}
		}(r)
	}

	// One writer (mutations are externally excluded from each other, not
	// from reads): transactions, auto-commits, and checkpoints. The
	// Gosched forces reader/writer interleaving even on GOMAXPROCS=1,
	// where the loop would otherwise run to completion before any reader
	// is scheduled and the race would go unexercised.
	for i := 0; i < 200; i++ {
		runtime.Gosched()
		f.BeginTx()
		if err := f.WritePage(ids[i%npages], page(byte(i))); err != nil {
			t.Fatal(err)
		}
		if err := f.WritePage(ids[(i+1)%npages], page(byte(i+1))); err != nil {
			t.Fatal(err)
		}
		if err := f.SealTx(); err != nil {
			t.Fatal(err)
		}
		if i%17 == 0 {
			if err := f.WritePage(ids[i%npages], page(0xEE)); err != nil {
				t.Fatal(err)
			}
		}
		if i%31 == 0 {
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	readers.Wait()
}

// TestFailedRewindBricksTheWAL: when the commit fsync fails AND the rewind
// cannot be made durable either, the on-disk log may still hold the
// rejected transaction — so the WAL must refuse every further mutation
// instead of letting later commits stack on an unknown prefix.
func TestFailedRewindBricksTheWAL(t *testing.T) {
	f, _, log := newStack(t, Options{})
	a := mustAlloc(t, f)
	if err := f.WritePage(a, page(0x11)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	log.FailNextSyncs(2) // commit fsync, then the rewind fsync
	f.BeginTx()
	if err := f.WritePage(a, page(0x22)); err != nil {
		t.Fatal(err)
	}
	if err := f.SealTx(); err == nil {
		t.Fatalf("SealTx succeeded despite fsync failure")
	}

	if err := f.WritePage(a, page(0x33)); !errors.Is(err, ErrBroken) {
		t.Fatalf("WritePage after failed rewind: %v, want ErrBroken", err)
	}
	f.BeginTx()
	if err := f.SealTx(); !errors.Is(err, ErrBroken) {
		t.Fatalf("SealTx after failed rewind: %v, want ErrBroken", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrBroken) {
		t.Fatalf("Sync after failed rewind: %v, want ErrBroken", err)
	}
	// Reads still serve the in-memory state.
	if got := readPage(t, f, a); !bytes.Equal(got, page(0x22)) {
		t.Fatalf("read after brick: %x...", got[0])
	}
}

// TestRewindIsDurable: a successful rewind fsyncs the truncation, so the
// durable watermark lands exactly on the rewound position — a crash right
// after the failed commit cannot resurrect it from OS-buffered pages.
func TestRewindIsDurable(t *testing.T) {
	f, inner, log := newStack(t, Options{})
	a := mustAlloc(t, f)
	if err := f.WritePage(a, page(0x11)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	log.FailNextSyncs(1)
	f.BeginTx()
	if err := f.WritePage(a, page(0x22)); err != nil {
		t.Fatal(err)
	}
	if err := f.SealTx(); err == nil {
		t.Fatalf("SealTx succeeded despite fsync failure")
	}
	if got, want := log.Synced(), int(log.Size()); got != want {
		t.Fatalf("rewind not durable: synced %d, size %d", got, want)
	}
	// Caller contract: rewrite the pre-image, then crash. Recovery must
	// see the repair, never the rejected commit.
	if err := f.WritePage(a, page(0x11)); err != nil {
		t.Fatal(err)
	}
	inner.Crash(40)
	log.Crash(41)
	f2, _ := reopen(t, inner, log, Options{})
	if got := readPage(t, f2, a); !bytes.Equal(got, page(0x11)) {
		t.Fatalf("rejected commit resurrected: page = %x...", got[0])
	}
}

// TestRewoundCommitNotCountedByFsyncEvery: the rewind fsync resets the
// group-commit batching counter, so a rewound commit cannot make the next
// group fsync fire early (or late).
func TestRewoundCommitNotCountedByFsyncEvery(t *testing.T) {
	f, _, log := newStack(t, Options{FsyncEvery: 2})
	a := mustAlloc(t, f)

	seal := func(fill byte) error {
		f.BeginTx()
		if err := f.WritePage(a, page(fill)); err != nil {
			t.Fatal(err)
		}
		return f.SealTx()
	}
	if err := seal(0x01); err != nil { // unsynced=1: below the batch
		t.Fatal(err)
	}
	log.FailNextSyncs(1)
	if err := seal(0x02); err == nil { // batch fsync fails, rewinds
		t.Fatalf("SealTx succeeded despite fsync failure")
	}
	// The rewind fsync made everything durable; the counter must be back
	// at zero, so this commit is the first of a fresh batch: no fsync.
	syncedBefore := log.Synced()
	if err := seal(0x03); err != nil {
		t.Fatal(err)
	}
	if got := log.Synced(); got != syncedBefore {
		t.Fatalf("commit after rewind fsynced (synced %d -> %d): rewound commit still counted toward FsyncEvery", syncedBefore, got)
	}
	if log.Size() == int64(syncedBefore) {
		t.Fatalf("commit after rewind appended nothing")
	}
}

// TestFileLogShortReadDetected: a log file shorter than the tracked size
// (external truncation, a lost append) must surface as an error from
// Contents, not as a silently zero-padded buffer handed to recovery.
func TestFileLogShortReadDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	log, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	data := bytes.Repeat([]byte{0x5A}, 1024)
	if err := log.Append(data); err != nil {
		t.Fatal(err)
	}
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, 512); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Contents(); err == nil {
		t.Fatalf("Contents returned zero-padded buffer for a short log")
	}
}
