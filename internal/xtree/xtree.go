// Package xtree implements the X-tree of Berchtold, Keim and Kriegel
// (VLDB 1996), the other data-partitioning structure the paper's
// classification names alongside the R-tree. The X-tree is an R-tree that
// refuses to perform high-overlap directory splits: when every split of an
// overflowing directory node would make its children overlap beyond a
// threshold, the node instead becomes a *supernode* spanning several disk
// pages, trading fanout for overlap-free descent. Supernodes are stored as
// page chains here, so reading one honestly costs one page access per
// page of the chain.
package xtree

import (
	"fmt"
	"math"
	"sort"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/index"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/pqueue"
)

// Config controls tree geometry.
type Config struct {
	Dim      int
	PageSize int
	// MinFill is the minimum fill fraction enforced by splits; default 0.4.
	MinFill float64
	// MaxOverlap is the overlap fraction (overlap volume / union volume of
	// the two halves) beyond which a directory split is rejected and the
	// node becomes a supernode; default 0.2, the X-tree paper's setting.
	MaxOverlap float64
}

// entry is one directory entry: a child page and its minimum bounding
// rectangle.
type entry struct {
	child pagefile.PageID
	rect  geom.Rect
}

type node struct {
	id   pagefile.PageID
	leaf bool
	pts  []geom.Point
	rids []uint64
	ents []entry
	// chain lists the continuation pages of a supernode (empty for
	// single-page nodes).
	chain []pagefile.PageID
}

// Tree is an X-tree over a page file.
type Tree struct {
	cfg    Config
	file   pagefile.File
	cache  map[pagefile.PageID]*node
	buf    []byte
	root   pagefile.PageID
	height int
	size   int
	// obs holds the unified per-method read counters (nil while an audit
	// walk has them paused); prunes is index_prunes_total{method="x"}. The
	// X-tree is single-goroutine (plain map cache), so plain fields suffice.
	obs    *obsCounters
	prunes *obs.Counter
}

// obsCounters bundles the shared obs.IndexCounters resolution.
type obsCounters struct {
	reads, hits, misses *obs.Counter
}

const headerSize = 12 // magic, type, dim u16, count u16, next u32, pad

func (cfg *Config) leafCap() int { return (cfg.PageSize - headerSize) / (8 + 4*cfg.Dim) }
func (cfg *Config) nodeCap() int { return (cfg.PageSize - headerSize) / (8*cfg.Dim + 4) }

// New creates an empty X-tree on file.
func New(file pagefile.File, cfg Config) (*Tree, error) {
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("xtree: dim must be >= 1, got %d", cfg.Dim)
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = file.PageSize()
	}
	if cfg.PageSize != file.PageSize() {
		return nil, fmt.Errorf("xtree: page size %d != file page size %d", cfg.PageSize, file.PageSize())
	}
	if cfg.MinFill == 0 {
		cfg.MinFill = 0.4
	}
	if cfg.MaxOverlap == 0 {
		cfg.MaxOverlap = 0.2
	}
	if cfg.leafCap() < 2 || cfg.nodeCap() < 2 {
		return nil, fmt.Errorf("xtree: page size %d too small for %d dimensions", cfg.PageSize, cfg.Dim)
	}
	t := &Tree{cfg: cfg, file: file,
		cache: make(map[pagefile.PageID]*node),
		buf:   make([]byte, cfg.PageSize)}
	reads, hits, misses := obs.IndexCounters(obs.Default(), "x")
	t.obs = &obsCounters{reads: reads, hits: hits, misses: misses}
	t.prunes = obs.PruneCounter(obs.Default(), "x")
	root := &node{leaf: true}
	id, err := t.alloc()
	if err != nil {
		return nil, err
	}
	root.id = id
	if err := t.put(root); err != nil {
		return nil, err
	}
	t.root = id
	t.height = 1
	return t, nil
}

func (t *Tree) alloc() (pagefile.PageID, error) { return t.file.Allocate() }

// get loads a node, charging one logical read per page of its chain (the
// honest cost of a supernode). The charge goes through the atomic Stats
// accessor like every other access method's, so totals stay exact even when
// another index shares the file's counters with a concurrent reader.
func (t *Tree) get(id pagefile.PageID) (*node, error) {
	if n, ok := t.cache[id]; ok {
		pages := 1 + uint64(len(n.chain))
		t.file.Stats().AddRandomReads(pages)
		if o := t.obs; o != nil {
			o.reads.Add(pages)
			o.hits.Add(pages)
		}
		return n, nil
	}
	n, err := t.load(id)
	if err != nil {
		return nil, err
	}
	if o := t.obs; o != nil {
		pages := 1 + uint64(len(n.chain))
		o.reads.Add(pages)
		o.misses.Add(pages)
	}
	t.cache[id] = n
	return n, nil
}

// Name implements index.Index.
func (t *Tree) Name() string { return "x" }

// File implements index.Index.
func (t *Tree) File() pagefile.File { return t.file }

// Size returns the number of stored entries.
func (t *Tree) Size() int { return t.size }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// Insert implements index.Index.
func (t *Tree) Insert(p geom.Point, rid uint64) error {
	if len(p) != t.cfg.Dim {
		return fmt.Errorf("xtree: vector has dim %d, want %d", len(p), t.cfg.Dim)
	}
	sp, err := t.insertAt(t.root, p.Clone(), rid)
	if err != nil {
		return err
	}
	if sp != nil {
		root := &node{ents: []entry{sp.left, sp.right}}
		id, err := t.alloc()
		if err != nil {
			return err
		}
		root.id = id
		if err := t.put(root); err != nil {
			return err
		}
		t.root = id
		t.height++
	}
	t.size++
	return nil
}

// Delete implements index.Index by descending into every child whose MBR
// contains the point and swap-removing the match from its leaf. MBRs are
// left as-is — conservative but correct, the usual R-tree shortcut when
// tightening is not worth a full condense pass.
func (t *Tree) Delete(p geom.Point, rid uint64) (bool, error) {
	if len(p) != t.cfg.Dim {
		return false, fmt.Errorf("xtree: vector has dim %d, want %d", len(p), t.cfg.Dim)
	}
	found, err := t.deleteAt(t.root, p, rid)
	if err != nil || !found {
		return false, err
	}
	t.size--
	return true, nil
}

func (t *Tree) deleteAt(id pagefile.PageID, p geom.Point, rid uint64) (bool, error) {
	n, err := t.get(id)
	if err != nil {
		return false, err
	}
	if n.leaf {
		for i := range n.pts {
			if n.rids[i] == rid && n.pts[i].Equal(p) {
				last := len(n.pts) - 1
				n.pts[i], n.rids[i] = n.pts[last], n.rids[last]
				n.pts = n.pts[:last]
				n.rids = n.rids[:last]
				return true, t.put(n)
			}
		}
		return false, nil
	}
	for i := range n.ents {
		if !n.ents[i].rect.Contains(p) {
			continue
		}
		found, err := t.deleteAt(n.ents[i].child, p, rid)
		if err != nil || found {
			return found, err
		}
	}
	return false, nil
}

type splitPair struct{ left, right entry }

func (t *Tree) insertAt(id pagefile.PageID, p geom.Point, rid uint64) (*splitPair, error) {
	n, err := t.get(id)
	if err != nil {
		return nil, err
	}
	if n.leaf {
		n.pts = append(n.pts, p)
		n.rids = append(n.rids, rid)
		if len(n.pts) > t.cfg.leafCap() {
			return t.splitLeaf(n)
		}
		return nil, t.put(n)
	}

	// R-tree ChooseSubtree: minimum area enlargement, ties by area.
	best, bestEnl, bestArea := 0, math.Inf(1), math.Inf(1)
	for i := range n.ents {
		enl := n.ents[i].rect.EnlargementArea(p)
		area := n.ents[i].rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	n.ents[best].rect.Enlarge(p)
	sp, err := t.insertAt(n.ents[best].child, p, rid)
	if err != nil {
		return nil, err
	}
	if sp != nil {
		n.ents[best] = sp.left
		n.ents = append(n.ents, sp.right)
		if len(n.ents) > t.dirCapacity(n) {
			return t.splitDir(n)
		}
	}
	return nil, t.put(n)
}

// dirCapacity is the entry budget of a directory node: one page's worth
// normally, the chain's worth for a supernode.
func (t *Tree) dirCapacity(n *node) int {
	return t.cfg.nodeCap() * (1 + len(n.chain))
}

// splitLeaf splits an overflowing leaf with the R*-style axis/ distribution
// choice: minimum-margin axis, then minimum-overlap distribution.
func (t *Tree) splitLeaf(n *node) (*splitPair, error) {
	order, cut := chooseSplit(len(n.pts), t.cfg.Dim, t.minLeaf(), func(i int, d int) float32 {
		return n.pts[i][d]
	}, func(idx []int) geom.Rect {
		r := geom.Rect{Lo: n.pts[idx[0]].Clone(), Hi: n.pts[idx[0]].Clone()}
		for _, i := range idx[1:] {
			r.Enlarge(n.pts[i])
		}
		return r
	})
	right := &node{leaf: true}
	id, err := t.alloc()
	if err != nil {
		return nil, err
	}
	right.id = id
	var lp []geom.Point
	var lr []uint64
	for _, i := range order[:cut] {
		lp = append(lp, n.pts[i])
		lr = append(lr, n.rids[i])
	}
	for _, i := range order[cut:] {
		right.pts = append(right.pts, n.pts[i])
		right.rids = append(right.rids, n.rids[i])
	}
	n.pts, n.rids = lp, lr
	if err := t.put(n); err != nil {
		return nil, err
	}
	if err := t.put(right); err != nil {
		return nil, err
	}
	return &splitPair{
		left:  entry{child: n.id, rect: geom.BoundingRect(n.pts)},
		right: entry{child: right.id, rect: geom.BoundingRect(right.pts)},
	}, nil
}

// splitDir splits an overflowing directory node — unless every candidate
// split overlaps beyond MaxOverlap, in which case the node grows into (or
// extends) a supernode: the X-tree's defining move.
func (t *Tree) splitDir(n *node) (*splitPair, error) {
	order, cut := chooseSplit(len(n.ents), t.cfg.Dim, t.minNode(), func(i int, d int) float32 {
		return (n.ents[i].rect.Lo[d] + n.ents[i].rect.Hi[d]) / 2
	}, func(idx []int) geom.Rect {
		r := n.ents[idx[0]].rect.Clone()
		for _, i := range idx[1:] {
			r.EnlargeRect(n.ents[i].rect)
		}
		return r
	})

	// Overlap test of the chosen (best) distribution. Volume ratios are
	// useless in high dimensions (every intersection volume is ~0), so —
	// like the X-tree paper, which defines overlap by the data falling
	// into multiple regions — we measure the fraction of children whose
	// own region straddles the other half's MBR.
	mbr := func(idx []int) geom.Rect {
		r := n.ents[idx[0]].rect.Clone()
		for _, i := range idx[1:] {
			r.EnlargeRect(n.ents[i].rect)
		}
		return r
	}
	lm, rm := mbr(order[:cut]), mbr(order[cut:])
	straddling := 0
	for _, i := range order[:cut] {
		if n.ents[i].rect.Intersects(rm) {
			straddling++
		}
	}
	for _, i := range order[cut:] {
		if n.ents[i].rect.Intersects(lm) {
			straddling++
		}
	}
	overlapFrac := float64(straddling) / float64(len(n.ents))
	if overlapFrac > t.cfg.MaxOverlap {
		// Supernode: extend the chain by one page instead of splitting.
		extra, err := t.alloc()
		if err != nil {
			return nil, err
		}
		n.chain = append(n.chain, extra)
		return nil, t.put(n)
	}

	right := &node{}
	id, err := t.alloc()
	if err != nil {
		return nil, err
	}
	right.id = id
	var le []entry
	for _, i := range order[:cut] {
		le = append(le, n.ents[i])
	}
	for _, i := range order[cut:] {
		right.ents = append(right.ents, n.ents[i])
	}
	// A split supernode sheds chain pages it no longer needs, and its
	// right half may itself still exceed one page.
	if err := t.shrinkChain(n, len(le)); err != nil {
		return nil, err
	}
	n.ents = le
	if err := t.ensureChain(right, len(right.ents)); err != nil {
		return nil, err
	}
	if err := t.put(n); err != nil {
		return nil, err
	}
	if err := t.put(right); err != nil {
		return nil, err
	}
	return &splitPair{
		left:  entry{child: n.id, rect: lm},
		right: entry{child: right.id, rect: rm},
	}, nil
}

// ensureChain grows a directory node's chain until count entries fit.
func (t *Tree) ensureChain(n *node, count int) error {
	need := 0
	if count > t.cfg.nodeCap() {
		need = (count - 1) / t.cfg.nodeCap()
	}
	for len(n.chain) < need {
		extra, err := t.alloc()
		if err != nil {
			return err
		}
		n.chain = append(n.chain, extra)
	}
	return nil
}

// shrinkChain frees continuation pages beyond what count entries need.
func (t *Tree) shrinkChain(n *node, count int) error {
	need := 0
	if count > t.cfg.nodeCap() {
		need = (count - 1) / t.cfg.nodeCap()
	}
	for len(n.chain) > need {
		last := n.chain[len(n.chain)-1]
		n.chain = n.chain[:len(n.chain)-1]
		if err := t.file.Free(last); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tree) minLeaf() int {
	m := int(t.cfg.MinFill * float64(t.cfg.leafCap()))
	if m < 1 {
		m = 1
	}
	return m
}

func (t *Tree) minNode() int {
	m := int(t.cfg.MinFill * float64(t.cfg.nodeCap()))
	if m < 1 {
		m = 1
	}
	return m
}

// chooseSplit implements the R*-tree axis and distribution choice over
// abstract items: pick the axis with minimum margin sum over candidate
// distributions, then the distribution with minimum overlap (ties by total
// area). Prefix/suffix cover arrays keep each axis O(n·dim) — essential
// once supernodes push n into the thousands. Returns the item order and
// the cut index.
func chooseSplit(count, dim, minFill int, coord func(i, d int) float32, cover func(idx []int) geom.Rect) ([]int, int) {
	if 2*minFill > count {
		minFill = count / 2
	}
	if minFill < 1 {
		minFill = 1
	}
	covers := func(order []int) (prefix, suffix []geom.Rect) {
		prefix = make([]geom.Rect, count)
		suffix = make([]geom.Rect, count)
		prefix[0] = cover(order[:1])
		for i := 1; i < count; i++ {
			r := prefix[i-1].Clone()
			r.EnlargeRect(cover(order[i : i+1]))
			prefix[i] = r
		}
		suffix[count-1] = cover(order[count-1:])
		for i := count - 2; i >= 0; i-- {
			r := suffix[i+1].Clone()
			r.EnlargeRect(cover(order[i : i+1]))
			suffix[i] = r
		}
		return prefix, suffix
	}

	bestAxis, bestMargin := 0, math.Inf(1)
	for d := 0; d < dim; d++ {
		order := sortedBy(count, d, coord)
		prefix, suffix := covers(order)
		margin := 0.0
		for cut := minFill; cut <= count-minFill; cut++ {
			margin += prefix[cut-1].Margin() + suffix[cut].Margin()
		}
		if margin < bestMargin {
			bestAxis, bestMargin = d, margin
		}
	}
	order := sortedBy(count, bestAxis, coord)
	prefix, suffix := covers(order)
	bestCut, bestOverlap, bestArea := minFill, math.Inf(1), math.Inf(1)
	for cut := minFill; cut <= count-minFill; cut++ {
		lm, rm := prefix[cut-1], suffix[cut]
		inter := lm.Intersect(rm)
		ov := 0.0
		if !inter.IsEmpty() {
			ov = inter.Area()
		}
		area := lm.Area() + rm.Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestCut, bestOverlap, bestArea = cut, ov, area
		}
	}
	return order, bestCut
}

func sortedBy(count, d int, coord func(i, d int) float32) []int {
	order := make([]int, count)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return coord(order[a], d) < coord(order[b], d) })
	return order
}

// SearchBox implements index.Index.
func (t *Tree) SearchBox(q geom.Rect) ([]index.Entry, error) {
	if q.Dim() != t.cfg.Dim {
		return nil, fmt.Errorf("xtree: query has dim %d, want %d", q.Dim(), t.cfg.Dim)
	}
	var out []index.Entry
	pruned := 0
	var walk func(id pagefile.PageID) error
	walk = func(id pagefile.PageID) error {
		n, err := t.get(id)
		if err != nil {
			return err
		}
		if n.leaf {
			for i, p := range n.pts {
				if q.Contains(p) {
					out = append(out, index.Entry{Point: p, RID: n.rids[i]})
				}
			}
			return nil
		}
		for i := range n.ents {
			if n.ents[i].rect.Intersects(q) {
				if err := walk(n.ents[i].child); err != nil {
					return err
				}
			} else {
				pruned++
			}
		}
		return nil
	}
	err := walk(t.root)
	t.prunes.Add(uint64(pruned))
	return out, err
}

// SearchRange implements index.Index.
func (t *Tree) SearchRange(q geom.Point, radius float64, m dist.Metric) ([]index.Neighbor, error) {
	if len(q) != t.cfg.Dim {
		return nil, fmt.Errorf("xtree: query has dim %d, want %d", len(q), t.cfg.Dim)
	}
	if radius < 0 {
		return nil, fmt.Errorf("xtree: negative radius %g", radius)
	}
	var out []index.Neighbor
	pruned := 0
	var walk func(id pagefile.PageID) error
	walk = func(id pagefile.PageID) error {
		n, err := t.get(id)
		if err != nil {
			return err
		}
		if n.leaf {
			for i, p := range n.pts {
				if d := m.Distance(q, p); d <= radius {
					out = append(out, index.Neighbor{Entry: index.Entry{Point: p, RID: n.rids[i]}, Dist: d})
				}
			}
			return nil
		}
		for i := range n.ents {
			if m.MinDistRect(q, n.ents[i].rect) <= radius {
				if err := walk(n.ents[i].child); err != nil {
					return err
				}
			} else {
				pruned++
			}
		}
		return nil
	}
	err := walk(t.root)
	t.prunes.Add(uint64(pruned))
	return out, err
}

// SearchKNN implements index.Index with best-first traversal.
func (t *Tree) SearchKNN(q geom.Point, k int, m dist.Metric) ([]index.Neighbor, error) {
	if len(q) != t.cfg.Dim {
		return nil, fmt.Errorf("xtree: query has dim %d, want %d", len(q), t.cfg.Dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("xtree: k must be >= 1, got %d", k)
	}
	pruned := 0
	var pq pqueue.Min[pagefile.PageID]
	best := pqueue.NewKBest[index.Neighbor](k)
	pq.Push(t.root, 0)
	for pq.Len() > 0 {
		id, mindist := pq.Pop()
		if best.Full() && mindist > best.Bound() {
			break
		}
		n, err := t.get(id)
		if err != nil {
			return nil, err
		}
		if n.leaf {
			for i, p := range n.pts {
				d := m.Distance(q, p)
				best.Offer(index.Neighbor{Entry: index.Entry{Point: p, RID: n.rids[i]}, Dist: d}, d)
			}
			continue
		}
		for i := range n.ents {
			md := m.MinDistRect(q, n.ents[i].rect)
			if !best.Full() || md <= best.Bound() {
				pq.Push(n.ents[i].child, md)
			} else {
				pruned++
			}
		}
	}
	t.prunes.Add(uint64(pruned))
	ns, _ := best.Sorted()
	return ns, nil
}

// Stats summarizes the structure.
type Stats struct {
	Height     int
	LeafNodes  int
	DirNodes   int
	Supernodes int
	ChainPages int
	Entries    int
	MaxFanout  int
}

// Stats walks the tree without perturbing access counters.
func (t *Tree) Stats() (Stats, error) {
	saved := *t.file.Stats()
	defer func() { *t.file.Stats() = saved }()
	savedObs := t.obs
	t.obs = nil
	defer func() { t.obs = savedObs }()
	st := Stats{Height: t.height}
	var walk func(id pagefile.PageID) error
	walk = func(id pagefile.PageID) error {
		n, err := t.get(id)
		if err != nil {
			return err
		}
		if n.leaf {
			st.LeafNodes++
			st.Entries += len(n.pts)
			return nil
		}
		st.DirNodes++
		st.ChainPages += len(n.chain)
		if len(n.chain) > 0 {
			st.Supernodes++
		}
		if len(n.ents) > st.MaxFanout {
			st.MaxFanout = len(n.ents)
		}
		for i := range n.ents {
			if err := walk(n.ents[i].child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return Stats{}, err
	}
	return st, nil
}
