package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybridtree/internal/els"
	"hybridtree/internal/geom"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
)

// Tree is a hybrid tree index over a page file. Mutations require external
// serialization (one writer at a time), but searches are MVCC snapshot
// reads: any number of goroutines may search concurrently with each other
// and with the single writer, with zero lock acquisitions on the read path.
// Each search pins the current epoch on entry and traverses the immutable
// version of the tree published by the last commit.
type Tree struct {
	cfg    Config
	file   pagefile.File
	// tx is non-nil when file supports transactional durability
	// (pagefile.TxFile — the write-ahead log). Each top-level mutation is
	// then bracketed in a transaction and sealed durable before it is
	// acknowledged; see sealMutation.
	tx    pagefile.TxFile
	store *store
	els    *els.Table
	meta   pagefile.PageID
	root   pagefile.PageID
	height int // 1 = root is a data node
	size   int // number of stored records
	// current is the published tree version searches traverse. Writers
	// replace it with a single atomic store at commit.
	current atomic.Pointer[treeVersion]
	// elsHead is the page chain holding the persisted ELS snapshot
	// (InvalidPage when none has been written).
	elsHead pagefile.PageID
	// qcPool recycles QueryContexts for the plain (context-less) search
	// methods; see queryctx.go. Safe for the concurrent read path: pooled
	// contexts are exclusive to one search at a time by construction.
	qcPool sync.Pool
	// leaked holds pages whose deferred release failed during commit. The
	// records they held are safe (the mutation had already detached them);
	// only the space is lost — and only until the next Flush, which retries
	// the frees (see reclaimLeaked).
	leaked []pagefile.PageID
	// tracer produces per-query/per-mutation traces (nil = tracing off);
	// metrics is the shared instrument bundle (nil = metrics off); mutTrace
	// is the trace of the in-flight top-level mutation, so split and
	// reinsert events deep in the mutation can attribute themselves to it.
	// See metrics.go.
	tracer   obs.Tracer
	metrics  *treeMetrics
	mutTrace *obs.Trace
}

// treeVersion is one published, immutable version of the tree: the header
// fields a search needs plus the ELS snapshot, all consistent at .epoch.
// Readers load it with one atomic pointer load and then resolve every page
// through the store's version chains at this epoch.
type treeVersion struct {
	epoch  uint64
	root   pagefile.PageID
	height int
	size   int
	els    *els.Snap
}

// publishNow publishes the tree's current writer-side state as the visible
// version without advancing the epoch — for construction-time paths (New,
// Open, BulkLoad, ELS rebuilds) that run before or between mutations.
func (t *Tree) publishNow() {
	t.current.Store(&treeVersion{
		epoch:  t.store.epoch.Load(),
		root:   t.root,
		height: t.height,
		size:   t.size,
		els:    t.els.Publish(),
	})
}

// mutationScope captures the Tree-level state a rollback must restore.
// Nested scopes (Delete's orphan reinsertion calling Insert) are no-ops:
// the outermost scope owns the copy-on-write set.
type mutationScope struct {
	root   pagefile.PageID
	height int
	size   int
	nested bool
}

// beginMutation opens a copy-on-write scope covering the store, the ELS
// table and the Tree's own header fields. Every public mutation wraps
// itself in one so that a failed operation — including one that fails
// partway through a node split or an orphan reinsertion — leaves the tree
// exactly as it was, while concurrent snapshot readers never observe the
// scope at all: its effects become visible only at commitMutation's
// version publication.
func (t *Tree) beginMutation() mutationScope {
	if t.store.mutActive() {
		return mutationScope{nested: true}
	}
	t.store.beginMut()
	if t.tx != nil {
		t.tx.BeginTx()
	}
	return mutationScope{root: t.root, height: t.height, size: t.size}
}

// sealMutation makes an outermost mutation durable before it is
// acknowledged: the metadata page is rewritten inside the transaction (so
// a recovered file opens with the post-mutation root/size) and the
// transaction is sealed — the write-ahead log's commit point. The metadata
// is logged with the ELS snapshot head cleared, because any mutation makes
// a previously saved snapshot stale; recovery rebuilds the ELS table from
// the data instead. A non-nil error means durability was NOT reached and
// the caller must roll back: acknowledged always implies durable.
func (t *Tree) sealMutation(m mutationScope) error {
	if m.nested || t.tx == nil {
		return nil
	}
	if err := t.writeMetaAs(pagefile.InvalidPage); err != nil {
		return err
	}
	if tr := t.mutTrace; tr != nil {
		t0 := time.Now()
		err := t.tx.SealTx()
		tr.AddWALFsync(int64(time.Since(t0)))
		return err
	}
	return t.tx.SealTx()
}

// rollbackMutation restores the pre-mutation state after an error. Shared
// in-memory state was never touched (the mutation worked on private
// clones), so this only discards the private set, repairs the eagerly
// written disk pages, and rewinds the ELS table to the published snapshot.
func (t *Tree) rollbackMutation(m mutationScope) {
	if m.nested {
		return
	}
	// Drop the staged transaction before repairing pages: the pre-image
	// rewrites below then log as fresh auto-committed writes, keeping the
	// WAL's overlay consistent with the restored in-memory state.
	if t.tx != nil {
		t.tx.AbortTx()
	}
	t.store.rollbackMut()
	if cur := t.current.Load(); cur != nil {
		t.els.ResetTo(cur.els)
	}
	t.root, t.height, t.size = m.root, m.height, m.size
	if t.tx != nil {
		// The aborted transaction may have written the metadata page into
		// the WAL overlay; restore it so a checkpoint cannot flush a header
		// describing the rolled-back state.
		_ = t.writeMetaAs(pagefile.InvalidPage)
	}
}

// commitMutation publishes the mutation: every dirty node version is linked
// into its page chain at the next epoch, the new tree version becomes
// visible with a single atomic store, the epoch advances, and retired node
// versions whose epoch has drained are reclaimed. It also performs the
// deferred page frees; it deliberately returns nothing, because the
// mutation's logical effect is fully applied by now and reporting a failed
// deferred free as a failed mutation would make callers treat a committed
// change as a no-op. Failed frees only leak space, which LeakedPages
// exposes.
func (t *Tree) commitMutation(m mutationScope) {
	if m.nested {
		return
	}
	c := t.store.epoch.Load() + 1
	t.leaked = append(t.leaked, t.store.commitMut(c)...)
	// Publish the new version before advancing the epoch: a reader's
	// advisory pin epoch must never run ahead of the version it loads.
	t.current.Store(&treeVersion{
		epoch:  c,
		root:   t.root,
		height: t.height,
		size:   t.size,
		els:    t.els.Publish(),
	})
	t.store.advanceEpoch(c)
	remaining := t.store.reclaimRetired()
	if mt := t.metrics; mt != nil {
		mt.leakedPages.Set(int64(len(t.leaked)))
		mt.mvccEpoch.Set(int64(c))
		mt.mvccRetired.Set(int64(remaining))
	}
}

// elsSet, elsEnlarge and elsDelete are the mutation path's ELS accessors.
// The table copy-on-writes any chunk shared with the published snapshot,
// so no pre-image capture is needed: rollback rewinds with ResetTo.
func (t *Tree) elsSet(id uint32, outer, live geom.Rect) {
	t.els.Set(id, outer, live)
}

func (t *Tree) elsEnlarge(id uint32, outer geom.Rect, p geom.Point) {
	t.els.EnlargeToInclude(id, outer, p)
}

func (t *Tree) elsEnlargeExisting(id uint32, outer geom.Rect, p geom.Point) {
	t.els.EnlargeExisting(id, outer, p)
}

func (t *Tree) elsDelete(id uint32) {
	t.els.Delete(id)
}

// SnapshotInfo reports the published version's epoch, size and height with
// zero locks (for concurrency layers; the plain Size/Height accessors read
// the writer's working copy and need writer-side serialization).
func (t *Tree) SnapshotInfo() (epoch uint64, size, height int) {
	v := t.current.Load()
	return v.epoch, v.size, v.height
}

// Epoch returns the current published commit epoch.
func (t *Tree) Epoch() uint64 { return t.store.epoch.Load() }

// RetiredVersions returns the number of superseded node versions awaiting
// epoch-based reclamation.
func (t *Tree) RetiredVersions() int { return int(t.store.retiredCount.Load()) }

// Reclaim runs an epoch-reclamation pass, severing retired node versions no
// pinned reader can still need, and returns how many remain retired.
// Commits do this automatically; explicit calls are for quiesce points and
// tests. Requires writer-side serialization.
func (t *Tree) Reclaim() int {
	remaining := t.store.reclaimRetired()
	if mt := t.metrics; mt != nil {
		mt.mvccRetired.Set(int64(remaining))
	}
	return remaining
}

// Pin pins the current snapshot and returns a release function; node
// versions the snapshot references cannot be reclaimed until release.
// Audits and tests use it directly; searches pin internally.
func (t *Tree) Pin() func() {
	sl, _ := t.store.pin()
	return func() { t.store.unpin(sl) }
}

// LeakedPages reports how many pages could not be released because their
// deferred free failed at commit (injected storage faults). The pages hold
// no live records; their space is lost until a Flush reclaims them.
func (t *Tree) LeakedPages() int { return len(t.leaked) }

// reclaimLeaked retries the deferred frees that failed at commit. Safe at
// any quiet point: a leaked page is still allocated in the file (its Free
// failed), so Allocate can never have reused it, and it left the node cache
// when the owning mutation committed.
func (t *Tree) reclaimLeaked() {
	if len(t.leaked) == 0 {
		return
	}
	kept := t.leaked[:0]
	for _, id := range t.leaked {
		if err := t.file.Free(id); err != nil {
			kept = append(kept, id)
		}
	}
	t.leaked = kept
	if mt := t.metrics; mt != nil {
		mt.leakedPages.Set(int64(len(t.leaked)))
	}
}

// Flush re-encodes every cached node to its page, rewrites the metadata
// page, and syncs the file, so that when it returns nil the durable image
// matches memory — not merely the acknowledged one. The decoded-node cache
// is authoritative (write-through, never evicting), so after a period of
// injected write faults a clean Flush makes the on-disk image match memory
// again — the repair step to run before dropping caches. Flush also
// retries the page frees that failed at commit, so a clean Flush leaves
// LeakedPages at zero. Under a write-ahead log the node rewrite is skipped
// (the log's overlay is already authoritative over the inner file) and the
// sync is the checkpoint that flushes the overlay and truncates the log.
func (t *Tree) Flush() error {
	if t.tx == nil {
		if err := t.store.flushAll(); err != nil {
			return err
		}
	}
	t.reclaimLeaked()
	if err := t.writeMeta(); err != nil {
		return err
	}
	return t.file.Sync()
}

// RunTx runs fn — any sequence of Insert/Delete calls on this tree — as
// one atomic mutation sealed by a single commit: one fsync covers the
// whole batch, which is what the concurrent layer's group commit leans on.
// If fn returns an error (or durability fails), every operation inside is
// rolled back together. Without a transactional file it still provides
// the all-or-nothing in-memory semantics via the shared mutation scope.
func (t *Tree) RunTx(fn func() error) error {
	if t.store.mutActive() {
		return fmt.Errorf("core: RunTx inside an active mutation")
	}
	m := t.beginMutation()
	err := fn()
	if err == nil {
		err = t.sealMutation(m)
	}
	if err != nil {
		t.rollbackMutation(m)
		return err
	}
	t.commitMutation(m)
	return nil
}

// New creates an empty hybrid tree on file. Page 0 of the file is used for
// tree metadata so the index can be reopened with Open.
func New(file pagefile.File, cfg Config) (*Tree, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if file.PageSize() != cfg.PageSize {
		return nil, fmt.Errorf("core: file page size %d != configured %d", file.PageSize(), cfg.PageSize)
	}
	t := &Tree{
		cfg:     cfg,
		file:    file,
		store:   newStore(file, cfg.Dim),
		els:     els.NewTable(cfg.ELSBits),
		elsHead: pagefile.InvalidPage,
		tracer:  loadDefaultTracer(),
		metrics: hybridMetrics(),
	}
	t.tx, _ = file.(pagefile.TxFile)
	metaID, err := file.Allocate()
	if err != nil {
		return nil, err
	}
	t.meta = metaID
	root, err := t.store.alloc(true)
	if err != nil {
		return nil, err
	}
	if err := t.store.put(root); err != nil {
		return nil, err
	}
	t.root = root.id
	t.height = 1
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	t.publishNow()
	return t, nil
}

// Open loads a tree previously created with New from its file. The
// configuration must match the one the tree was built with in Dim and
// PageSize; split-policy and ELS settings may differ (the ELS side table is
// rebuilt from the data, as it lives in memory).
func Open(file pagefile.File, cfg Config) (*Tree, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:     cfg,
		file:    file,
		store:   newStore(file, cfg.Dim),
		els:     els.NewTable(cfg.ELSBits),
		meta:    0,
		elsHead: pagefile.InvalidPage,
		tracer:  loadDefaultTracer(),
		metrics: hybridMetrics(),
	}
	t.tx, _ = file.(pagefile.TxFile)
	if err := t.readMeta(); err != nil {
		return nil, err
	}
	if t.els.Enabled() {
		restored, err := t.loadELS(t.elsHead)
		if err != nil {
			return nil, err
		}
		if !restored {
			if err := t.RebuildELS(); err != nil {
				return nil, err
			}
		}
	}
	t.publishNow()
	return t, nil
}

const metaMagic = "HTREEv1\x00"

func (t *Tree) writeMeta() error { return t.writeMetaAs(t.elsHead) }

// writeMetaAs writes the metadata page with an explicit ELS snapshot head.
// Transactionally logged metadata always clears it (a mutation makes any
// saved snapshot stale; recovery rebuilds from the data) without touching
// t.elsHead, so the normal Close path can still free the superseded chain.
func (t *Tree) writeMetaAs(elsHead pagefile.PageID) error {
	buf := make([]byte, 8+4+4+4+8+4+4)
	copy(buf, metaMagic)
	binary.LittleEndian.PutUint32(buf[8:], uint32(t.cfg.Dim))
	binary.LittleEndian.PutUint32(buf[12:], uint32(t.root))
	binary.LittleEndian.PutUint32(buf[16:], uint32(t.height))
	binary.LittleEndian.PutUint64(buf[20:], uint64(t.size))
	binary.LittleEndian.PutUint32(buf[28:], uint32(t.cfg.PageSize))
	binary.LittleEndian.PutUint32(buf[32:], uint32(elsHead))
	return t.file.WritePage(t.meta, buf)
}

func (t *Tree) readMeta() error {
	buf := make([]byte, t.file.PageSize())
	if err := t.file.ReadPage(t.meta, buf); err != nil {
		return err
	}
	if string(buf[:8]) != metaMagic {
		return &ErrCorruptPage{Page: t.meta, Reason: "bad meta magic"}
	}
	if dim := int(binary.LittleEndian.Uint32(buf[8:])); dim != t.cfg.Dim {
		return fmt.Errorf("core: tree has dim %d, config says %d", dim, t.cfg.Dim)
	}
	if ps := int(binary.LittleEndian.Uint32(buf[28:])); ps != t.cfg.PageSize {
		return fmt.Errorf("core: tree has page size %d, config says %d", ps, t.cfg.PageSize)
	}
	t.root = pagefile.PageID(binary.LittleEndian.Uint32(buf[12:]))
	t.height = int(binary.LittleEndian.Uint32(buf[16:]))
	t.size = int(binary.LittleEndian.Uint64(buf[20:]))
	t.elsHead = pagefile.PageID(binary.LittleEndian.Uint32(buf[32:]))
	if t.elsHead == t.meta {
		// Page 0 is the metadata page, so 0 can never head a snapshot
		// chain; files written before snapshots existed read as 0 here.
		t.elsHead = pagefile.InvalidPage
	}
	return nil
}

// Close snapshots the ELS side table into the file and flushes metadata,
// so a subsequent Open restores without re-reading the whole tree. The
// page file itself remains the caller's to close.
func (t *Tree) Close() error {
	head, err := t.saveELS(t.elsHead)
	if err != nil {
		return err
	}
	t.elsHead = head
	return t.writeMeta()
}

// Size returns the number of records in the tree.
func (t *Tree) Size() int { return t.size }

// Height returns the tree height; 1 means the root is a data node.
func (t *Tree) Height() int { return t.height }

// Config returns the tree's effective (defaulted) configuration.
func (t *Tree) Config() Config { return t.cfg }

// File exposes the underlying page file (for access accounting).
func (t *Tree) File() pagefile.File { return t.file }

// ELSMemoryBytes reports the in-memory footprint of the encoded-live-space
// side table, to check the paper's <1%-of-database claim.
func (t *Tree) ELSMemoryBytes() int { return t.els.MemoryBytes() }

// SetELSPrecision swaps the encoded-live-space table for one with the given
// precision (0 disables) and rebuilds it from the stored data. The tree
// structure itself never depends on ELS, so precision sweeps — Figure 5(c)
// of the paper — can reuse one build.
func (t *Tree) SetELSPrecision(bits int) error {
	t.els = els.NewTable(bits)
	t.cfg.ELSBits = bits
	t.cfg.ELSDisabled = bits == 0
	return t.RebuildELS()
}

// Insert adds (p, rid) to the tree. The vector must lie inside the
// configured data space and have the configured dimensionality. Duplicate
// (vector, rid) pairs are stored as distinct entries.
//
// Insert is atomic: when it returns an error, the tree — nodes, header,
// ELS side table — is exactly as it was before the call.
func (t *Tree) Insert(p geom.Point, rid RecordID) error {
	if len(p) != t.cfg.Dim {
		return fmt.Errorf("core: vector has dim %d, tree expects %d", len(p), t.cfg.Dim)
	}
	if !t.cfg.Space.Contains(p) {
		return fmt.Errorf("core: vector %v outside the data space %v", p, t.cfg.Space)
	}
	m := t.beginMutation()
	tr, start := t.beginTreeMutation(m, mutInsert)
	err := t.insertRecord(p, rid)
	if err == nil {
		err = t.sealMutation(m)
	}
	if err != nil {
		t.rollbackMutation(m)
		t.finishTreeMutation(mutInsert, tr, start, err)
		return err
	}
	t.commitMutation(m)
	t.finishTreeMutation(mutInsert, tr, start, nil)
	return nil
}

func (t *Tree) insertRecord(p geom.Point, rid RecordID) error {
	// The descent enlarges the ELS entry of every node it passes *as a
	// child of its parent* — which covers everything except the root.
	// Fresh trees never store a root entry, but RebuildELS (recovery) and
	// snapshot restore do, and that entry would otherwise go silently
	// stale and under-report the live space.
	t.elsEnlargeExisting(uint32(t.root), t.cfg.Space, p)
	sr, err := t.insertAt(t.root, t.cfg.Space, p.Clone(), rid)
	if err != nil {
		return err
	}
	if sr != nil {
		if err := t.growRoot(*sr); err != nil {
			return err
		}
	}
	t.size++
	return nil
}

// growRoot installs a new root above a split old root.
func (t *Tree) growRoot(sr splitResult) error {
	root, err := t.store.alloc(false)
	if err != nil {
		return err
	}
	root.kd = []kdNode{
		{Dim: sr.dim, Lsp: sr.lsp, Rsp: sr.rsp, Left: 1, Right: 2},
		{Left: kdNone, Right: kdNone, Child: sr.left},
		{Left: kdNone, Right: kdNone, Child: sr.right},
	}
	root.kdRoot = 0
	if err := t.store.put(root); err != nil {
		return err
	}
	t.root = root.id
	t.height++
	return nil
}

// insertAt descends into node id (whose mapped BR is br) and returns a
// split descriptor when the node had to split.
func (t *Tree) insertAt(id pagefile.PageID, br geom.Rect, p geom.Point, rid RecordID) (*splitResult, error) {
	n, err := t.store.get(id)
	if err != nil {
		return nil, err
	}
	if n.leaf {
		n.appendPoint(p, rid)
		if n.count() > t.cfg.dataCapacity() {
			sr, err := t.splitDataNode(n)
			if err != nil {
				return nil, err
			}
			return &sr, nil
		}
		if err := t.store.put(n); err != nil {
			return nil, err
		}
		t.elsSet(uint32(n.id), t.cfg.Space, n.dataRect())
		return nil, nil
	}

	leafIdx, path := t.chooseChild(n, br, p)
	dirty := widenPath(n, path, p)
	childBR := pathBR(n, br, path)
	childID := n.kd[leafIdx].Child
	t.elsEnlarge(uint32(childID), t.cfg.Space, p)

	sr, err := t.insertAt(childID, childBR, p, rid)
	if err != nil {
		return nil, err
	}
	if sr != nil {
		n.replaceLeafWithSplit(leafIdx, *sr)
		if n.serializedSize(t.cfg.Dim) > t.cfg.PageSize {
			up, err := t.splitIndexNode(n, br)
			if err != nil {
				return nil, err
			}
			return &up, nil
		}
		dirty = true
	}
	if dirty {
		if err := t.store.put(n); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// chooseChild picks the child whose mapped BR needs the least enlargement
// to accommodate p, ties broken by smaller area — the R-tree ChooseSubtree
// criterion running over the "array of BRs" view (Section 3.5). It returns
// the kd-leaf's arena index and the kd path from the root to it.
//
// The walk mutates and restores a scratch rectangle in place: this is the
// hottest loop of construction and must not allocate per child.
func (t *Tree) chooseChild(n *node, nodeBR geom.Rect, p geom.Point) (int32, []int32) {
	br := nodeBR.Clone()
	var (
		bestIdx    int32 = kdNone
		bestEnl          = 0.0
		bestArea         = 0.0
		first            = true
		stack            = make([]int32, 0, 16)
		bestPath         = make([]int32, 0, 16)
	)
	var walk func(idx int32)
	walk = func(idx int32) {
		stack = append(stack, idx)
		defer func() { stack = stack[:len(stack)-1] }()
		k := &n.kd[idx]
		if k.isLeaf() {
			enl, area := enlargementAndArea(br, p)
			if first || enl < bestEnl || (enl == bestEnl && area < bestArea) {
				first = false
				bestIdx, bestEnl, bestArea = idx, enl, area
				bestPath = append(bestPath[:0], stack...)
			}
			return
		}
		d := int(k.Dim)
		oldHi := br.Hi[d]
		if k.Lsp < oldHi {
			br.Hi[d] = k.Lsp
		}
		if br.Hi[d] >= br.Lo[d] {
			walk(k.Left)
		}
		br.Hi[d] = oldHi
		oldLo := br.Lo[d]
		if k.Rsp > oldLo {
			br.Lo[d] = k.Rsp
		}
		if br.Hi[d] >= br.Lo[d] {
			walk(k.Right)
		}
		br.Lo[d] = oldLo
	}
	if n.kdRoot == kdNone {
		panic(fmt.Sprintf("core: index node %d has no children", n.id))
	}
	walk(n.kdRoot)
	return bestIdx, bestPath
}

// enlargementAndArea returns the area increase needed for br to include p,
// and br's area, in one pass.
func enlargementAndArea(br geom.Rect, p geom.Point) (enl, area float64) {
	area = 1.0
	grown := 1.0
	for d := range p {
		lo, hi := br.Lo[d], br.Hi[d]
		area *= float64(hi) - float64(lo)
		if p[d] < lo {
			lo = p[d]
		}
		if p[d] > hi {
			hi = p[d]
		}
		grown *= float64(hi) - float64(lo)
	}
	return grown - area, area
}

// widenPath adjusts split positions along the kd path so the branch taken
// at every internal node admits p — the hybrid tree's analogue of R-tree BR
// enlargement. With overlapping or gapped splits the chosen child's bound
// may exclude p; raising lsp (left branch) or lowering rsp (right branch)
// to p's coordinate restores the invariant that a child's mapped BR
// contains all data beneath it. Returns whether anything changed.
func widenPath(n *node, path []int32, p geom.Point) bool {
	changed := false
	for i := 0; i+1 < len(path); i++ {
		k := &n.kd[path[i]]
		d := int(k.Dim)
		if path[i+1] == k.Left {
			if p[d] > k.Lsp {
				k.Lsp = p[d]
				changed = true
			}
		} else {
			if p[d] < k.Rsp {
				k.Rsp = p[d]
				changed = true
			}
		}
	}
	return changed
}

// pathBR computes the mapped BR at the end of a kd path starting from the
// node's own BR.
func pathBR(n *node, nodeBR geom.Rect, path []int32) geom.Rect {
	br := nodeBR.Clone()
	for i := 0; i+1 < len(path); i++ {
		k := &n.kd[path[i]]
		d := int(k.Dim)
		if path[i+1] == k.Left {
			if k.Lsp < br.Hi[d] {
				br.Hi[d] = k.Lsp
			}
		} else {
			if k.Rsp > br.Lo[d] {
				br.Lo[d] = k.Rsp
			}
		}
	}
	return br
}

// Delete removes one entry matching (p, rid). It reports whether an entry
// was found. Underfull data nodes are eliminated and their remaining
// entries reinserted, the R-tree eliminate-and-reinsert policy the paper
// adopts (Section 3.5).
//
// Delete is atomic: an error at any point — including partway through the
// orphan reinsertions — rolls the tree back to its pre-call state, so no
// record is ever lost or duplicated by a failed delete.
func (t *Tree) Delete(p geom.Point, rid RecordID) (bool, error) {
	if len(p) != t.cfg.Dim {
		return false, fmt.Errorf("core: vector has dim %d, tree expects %d", len(p), t.cfg.Dim)
	}
	m := t.beginMutation()
	tr, start := t.beginTreeMutation(m, mutDelete)
	found, err := t.deleteRecord(p, rid)
	if err == nil {
		err = t.sealMutation(m)
	}
	if err != nil {
		t.rollbackMutation(m)
		t.finishTreeMutation(mutDelete, tr, start, err)
		return false, err
	}
	t.commitMutation(m)
	t.finishTreeMutation(mutDelete, tr, start, nil)
	return found, nil
}

func (t *Tree) deleteRecord(p geom.Point, rid RecordID) (bool, error) {
	var orphanPts []geom.Point
	var orphanRids []RecordID
	found, _, err := t.deleteAt(t.root, t.cfg.Space, p, rid, t.height, &orphanPts, &orphanRids)
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	t.size--
	// Shrink the root while it is an index node with a single child.
	for {
		rootN, err := t.store.get(t.root)
		if err != nil {
			return false, err
		}
		if rootN.leaf || rootN.kdRoot == kdNone || !rootN.kd[rootN.kdRoot].isLeaf() {
			break
		}
		child := rootN.kd[rootN.kdRoot].Child
		if err := t.store.free(t.root); err != nil {
			return false, err
		}
		t.elsDelete(uint32(t.root))
		t.root = child
		t.height--
	}
	// Reinsert orphans from eliminated nodes.
	for i, op := range orphanPts {
		if err := t.Insert(op, orphanRids[i]); err != nil {
			return false, err
		}
		t.size-- // Insert counted it again; the record was already counted
		if m := t.metrics; m != nil {
			m.reinserts.Inc()
		}
		t.mutTrace.CountReinsert()
	}
	return true, nil
}

// deleteAt searches for (p, rid) beneath node id and removes it. It returns
// whether the entry was found and whether the subtree is now completely
// empty (so the parent can prune it). Eliminated children contribute their
// remaining entries to the orphan lists.
func (t *Tree) deleteAt(id pagefile.PageID, br geom.Rect, p geom.Point, rid RecordID, level int,
	orphanPts *[]geom.Point, orphanRids *[]RecordID) (found, empty bool, err error) {

	n, err := t.store.get(id)
	if err != nil {
		return false, false, err
	}
	if n.leaf {
		for i := range n.rids {
			if n.rids[i] == rid && n.point(i).Equal(p) {
				n.swapRemove(i)
				return true, n.count() == 0, t.store.put(n)
			}
		}
		return false, false, nil
	}

	// Probe every child whose mapped BR (∩ live rect) contains p.
	type cand struct {
		idx   int32
		child pagefile.PageID
		br    geom.Rect
	}
	var cands []cand
	brWalk := br.Clone()
	var walk func(idx int32)
	walk = func(idx int32) {
		k := &n.kd[idx]
		if k.isLeaf() {
			if brWalk.Contains(p) {
				live, ok := t.els.Get(uint32(k.Child), t.cfg.Space)
				if !ok || live.Contains(p) {
					cands = append(cands, cand{idx: idx, child: k.Child, br: brWalk.Clone()})
				}
			}
			return
		}
		d := int(k.Dim)
		oldHi := brWalk.Hi[d]
		if k.Lsp < oldHi {
			brWalk.Hi[d] = k.Lsp
		}
		if p[d] <= brWalk.Hi[d] {
			walk(k.Left)
		}
		brWalk.Hi[d] = oldHi
		oldLo := brWalk.Lo[d]
		if k.Rsp > oldLo {
			brWalk.Lo[d] = k.Rsp
		}
		if p[d] >= brWalk.Lo[d] {
			walk(k.Right)
		}
		brWalk.Lo[d] = oldLo
	}
	if n.kdRoot != kdNone {
		walk(n.kdRoot)
	}

	for _, c := range cands {
		found, childEmpty, err := t.deleteAt(c.child, c.br, p, rid, level-1, orphanPts, orphanRids)
		if err != nil {
			return false, false, err
		}
		if !found {
			continue
		}
		if childEmpty {
			// Prune the empty subtree. If it is our only child, we are
			// empty too and our parent prunes us instead.
			if n.removeChild(c.child) {
				if err := t.freeSubtree(c.child); err != nil {
					return false, false, err
				}
				return true, false, t.store.put(n)
			}
			return true, true, t.store.put(n)
		}
		// Underflow handling: eliminate underfull data children (unless
		// they are this node's only child) and queue their entries for
		// reinsertion — the eliminate-and-reinsert policy of Section 3.5.
		child, err := t.store.get(c.child)
		if err != nil {
			return false, false, err
		}
		if child.leaf && child.count() < t.cfg.minDataFill() && n.removeChild(c.child) {
			*orphanPts = child.materializePoints(*orphanPts)
			*orphanRids = append(*orphanRids, child.rids...)
			if err := t.store.free(c.child); err != nil {
				return false, false, err
			}
			t.elsDelete(uint32(c.child))
		}
		return true, false, t.store.put(n)
	}
	return false, false, nil
}

// freeSubtree releases every page of an (empty) subtree.
func (t *Tree) freeSubtree(id pagefile.PageID) error {
	n, err := t.store.get(id)
	if err != nil {
		return err
	}
	if !n.leaf {
		var children []pagefile.PageID
		n.walkLeaves(func(idx int32) { children = append(children, n.kd[idx].Child) })
		for _, c := range children {
			if err := t.freeSubtree(c); err != nil {
				return err
			}
		}
	}
	t.elsDelete(uint32(id))
	return t.store.free(id)
}

// RebuildELS recomputes the encoded-live-space table from the stored data
// (used after Open, when the in-memory side table is empty).
func (t *Tree) RebuildELS() error {
	if t.els.Enabled() {
		if _, err := t.rebuildELSAt(t.root); err != nil {
			return err
		}
	}
	t.publishNow()
	return nil
}

func (t *Tree) rebuildELSAt(id pagefile.PageID) (geom.Rect, error) {
	n, err := t.store.get(id)
	if err != nil {
		return geom.Rect{}, err
	}
	live := geom.EmptyRect(t.cfg.Dim)
	if n.leaf {
		if n.count() > 0 {
			live = n.dataRect()
		}
	} else {
		var children []pagefile.PageID
		n.walkLeaves(func(idx int32) { children = append(children, n.kd[idx].Child) })
		for _, c := range children {
			childLive, err := t.rebuildELSAt(c)
			if err != nil {
				return geom.Rect{}, err
			}
			live.EnlargeRect(childLive)
		}
	}
	if !live.IsEmpty() {
		t.els.Set(uint32(id), t.cfg.Space, live)
	}
	return live, nil
}
