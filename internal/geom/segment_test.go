package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func segIDs(segs []Segment, idx []int) map[int]bool {
	m := make(map[int]bool)
	for _, i := range idx {
		m[segs[i].ID] = true
	}
	return m
}

func TestBipartitionDisjointSegments(t *testing.T) {
	// Four cleanly separable segments: a clean (overlap-free) split must be
	// found, i.e. lsp <= rsp.
	segs := []Segment{
		{Lo: 0.0, Hi: 0.1, ID: 0},
		{Lo: 0.2, Hi: 0.3, ID: 1},
		{Lo: 0.6, Hi: 0.7, ID: 2},
		{Lo: 0.8, Hi: 0.9, ID: 3},
	}
	left, right, lsp, rsp := Bipartition(segs, 2)
	if len(left) != 2 || len(right) != 2 {
		t.Fatalf("sizes = %d,%d, want 2,2", len(left), len(right))
	}
	if lsp > rsp {
		t.Fatalf("expected overlap-free split, got lsp=%g > rsp=%g", lsp, rsp)
	}
	l, r := segIDs(segs, left), segIDs(segs, right)
	if !l[0] || !l[1] || !r[2] || !r[3] {
		t.Fatalf("wrong grouping: left=%v right=%v", l, r)
	}
}

func TestBipartitionForcedOverlap(t *testing.T) {
	// Three long segments all covering [0,1]: any bipartition overlaps fully.
	segs := []Segment{
		{Lo: 0, Hi: 1, ID: 0},
		{Lo: 0, Hi: 1, ID: 1},
		{Lo: 0, Hi: 1, ID: 2},
	}
	left, right, lsp, rsp := Bipartition(segs, 1)
	if len(left)+len(right) != 3 || len(left) == 0 || len(right) == 0 {
		t.Fatalf("bad group sizes %d,%d", len(left), len(right))
	}
	if lsp-rsp != 1 {
		t.Fatalf("overlap = %g, want 1", lsp-rsp)
	}
}

func TestBipartitionUtilization(t *testing.T) {
	// Nine segments clustered at the left end plus one at the right: the
	// utilization constraint must still give each side minEach members.
	var segs []Segment
	for i := 0; i < 9; i++ {
		segs = append(segs, Segment{Lo: float32(i) * 0.01, Hi: float32(i)*0.01 + 0.005, ID: i})
	}
	segs = append(segs, Segment{Lo: 0.9, Hi: 0.95, ID: 9})
	left, right, _, _ := Bipartition(segs, 4)
	if len(left) < 4 || len(right) < 4 {
		t.Fatalf("utilization violated: %d,%d", len(left), len(right))
	}
}

func TestBipartitionPanicsOnTooFew(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bipartition of 1 segment should panic")
		}
	}()
	Bipartition([]Segment{{Lo: 0, Hi: 1}}, 1)
}

// Properties checked over random segment sets:
//  1. every segment lands in exactly one group;
//  2. lsp >= every left member's Hi is false — lsp is exactly the max Hi of
//     the left group, and rsp exactly the min Lo of the right group;
//  3. each group meets the utilization minimum;
//  4. every left segment fits in (-inf, lsp] and every right segment in
//     [rsp, +inf) — the containment the hybrid tree's mapped BRs rely on.
func TestBipartitionProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		segs := make([]Segment, n)
		for i := range segs {
			a, b := rng.Float32(), rng.Float32()
			if a > b {
				a, b = b, a
			}
			segs[i] = Segment{Lo: a, Hi: b, ID: i}
		}
		minEach := 1 + rng.Intn(n/2)
		left, right, lsp, rsp := Bipartition(segs, minEach)
		if len(left)+len(right) != n {
			return false
		}
		seen := make(map[int]bool)
		for _, i := range append(append([]int{}, left...), right...) {
			if seen[i] {
				return false
			}
			seen[i] = true
		}
		if len(left) < minEach || len(right) < minEach {
			return false
		}
		maxHi := segs[left[0]].Hi
		for _, i := range left {
			if segs[i].Hi > lsp {
				return false // left member sticks out past lsp
			}
			if segs[i].Hi > maxHi {
				maxHi = segs[i].Hi
			}
		}
		if maxHi != lsp {
			return false // lsp must be tight
		}
		minLo := segs[right[0]].Lo
		for _, i := range right {
			if segs[i].Lo < rsp {
				return false
			}
			if segs[i].Lo < minLo {
				minLo = segs[i].Lo
			}
		}
		return minLo == rsp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentOverlap(t *testing.T) {
	segs := []Segment{
		{Lo: 0, Hi: 0.6, ID: 0},
		{Lo: 0.4, Hi: 1, ID: 1},
	}
	w, ext := SegmentOverlap(segs, 1)
	if ext != 1 {
		t.Fatalf("extent = %g, want 1", ext)
	}
	// The two segments overlap in [0.4,0.6]; splitting them apart costs
	// w = 0.6-0.4 = 0.2.
	if w < 0.19 || w > 0.21 {
		t.Fatalf("overlap = %g, want ~0.2", w)
	}
}
