package sim

import (
	"fmt"
	"math/rand"

	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/index"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/seqscan"
	"hybridtree/internal/wal"
)

// CrashConfig parameterizes the kill/reopen differential loop. The hybrid
// tree runs on wal.File(ChecksumFile(ChaosFile(CrashFile))) plus an
// in-memory log; the oracle is a sequential scan that applies only the
// operations the tree acknowledged. At every kill point both media crash
// (unsynced pages lost or torn, unsynced log tail shredded), the stack is
// reopened, the log replayed, and the recovered tree's five search methods
// are checked byte-for-byte against the oracle — the executable statement
// of "acknowledged means durable".
type CrashConfig struct {
	Trace    TraceConfig
	PageSize int
	// Kills is the number of kill points (default 200). The trace must be
	// long enough to feed them; RunCrash stops at whichever runs out last.
	Kills int
	// MeanSegment is the average number of ops between kills (default 8);
	// actual segment lengths are uniform in [1, 2*MeanSegment].
	MeanSegment int
	// CheckpointOps attempts a checkpoint (tree.Flush) every N acknowledged
	// mutations with fault injection live (0 = only the quiesced post-kill
	// checkpoint). Failures are tolerated — a failed checkpoint must leave
	// overlay and log intact, which the next kill verifies.
	CheckpointOps int
	// FsyncEvery is passed to wal.Options. Anything above 1 weakens the
	// acked⇒durable guarantee (the differential check would fail), so the
	// storm pins it to 1; it is configurable for experiments only.
	FsyncEvery int
	// FailSyncProb arms a one-shot log-fsync failure before a segment with
	// this probability (default 0.15), exercising the seal-rewind path: the
	// affected commit must fail, roll back, and never be acknowledged.
	FailSyncProb float64
	// Faults is the chaos profile on the inner page file. Sync-lost faults
	// are rejected: a device that lies about fsync defeats any write-ahead
	// log, so the profile would make the differential check meaningless.
	Faults    pagefile.ChaosProfile
	FaultSeed int64
	// KillSeed drives segment lengths, kill damage, and checkpoint jitter
	// independently of the trace and fault schedules.
	KillSeed int64
	// MaxLeaked bounds LeakedPages after each post-kill recovery Flush
	// (normally 0: the quiesced Flush retries every deferred free).
	MaxLeaked int
}

func (c CrashConfig) withDefaults() (CrashConfig, error) {
	c.Trace = c.Trace.withDefaults()
	if c.PageSize == 0 {
		c.PageSize = 512
	}
	if c.Kills == 0 {
		c.Kills = 200
	}
	if c.MeanSegment == 0 {
		c.MeanSegment = 8
	}
	if c.FsyncEvery == 0 {
		c.FsyncEvery = 1
	}
	if c.FailSyncProb == 0 {
		c.FailSyncProb = 0.15
	}
	if c.KillSeed == 0 {
		c.KillSeed = c.Trace.Seed + 2
	}
	if c.FaultSeed == 0 {
		c.FaultSeed = c.Trace.Seed + 1
	}
	if c.Faults.SyncLost > 0 {
		return c, fmt.Errorf("sim: crash profile with SyncLost %g: a lying fsync is unrecoverable by design", c.Faults.SyncLost)
	}
	if c.Trace.Ops < c.Kills {
		c.Trace.Ops = c.Kills * c.MeanSegment
	}
	return c, nil
}

// CrashReport is the outcome of a clean (divergence-free) crash storm.
type CrashReport struct {
	Kills int
	Ops   int
	// Acked counts mutations the tree acknowledged (and the oracle
	// therefore mirrors); Rejected counts mutations that failed and were
	// rolled back — including commits whose log fsync was forced to fail.
	Acked, Rejected int
	// Replay totals accumulated across every recovery.
	TxsReplayed, RecordsReplayed, RecordsDiscarded, TornBytes int
	// Checkpoints attempted with faults live, and how many failed.
	Checkpoints, CheckpointFailures int
	// Queries checked against the oracle; Tolerated are the ones that
	// surfaced an injected storage error instead of a result.
	Queries, Tolerated int
	FinalSize          int
	ChaosCounts        pagefile.ChaosCounts
	// Digest folds every acknowledgement, recovery summary and check
	// result; two runs of the same config must match bit-for-bit.
	Digest uint64
}

// RunCrash runs the kill/reopen differential loop and returns a
// *Divergence error the moment recovery disagrees with the oracle.
func RunCrash(cfg CrashConfig) (*CrashReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	trace := GenTrace(cfg.Trace)
	killRng := rand.New(rand.NewSource(cfg.KillSeed))
	dim, ps := cfg.Trace.Dim, cfg.PageSize
	space := geom.UnitCube(dim)
	metric := dist.L2()

	inner := pagefile.NewCrashFile(ps + pagefile.ChecksumOverhead)
	chaos := pagefile.NewChaosFile(inner, cfg.Faults, cfg.FaultSeed)
	chaos.SetEnabled(false)
	sum := pagefile.NewChecksumFile(chaos)
	log := wal.NewMemLog()
	wopts := wal.Options{FsyncEvery: cfg.FsyncEvery}
	wf, _, err := wal.Open(sum, log, wopts)
	if err != nil {
		return nil, fmt.Errorf("sim: wal open: %w", err)
	}
	tree, err := core.New(wf, core.Config{Dim: dim, PageSize: ps})
	if err != nil {
		return nil, fmt.Errorf("sim: tree: %w", err)
	}
	oracle, err := seqscan.New(pagefile.NewMemFile(ps), dim)
	if err != nil {
		return nil, fmt.Errorf("sim: oracle: %w", err)
	}
	chaos.SetEnabled(true)

	rep := &CrashReport{}
	dg := newDigest()
	dg.fold(uint64(cfg.Trace.Seed))
	dg.fold(uint64(cfg.FaultSeed))
	dg.fold(uint64(cfg.KillSeed))
	diverge := func(i int, detail string) error {
		return &Divergence{Index: "hybrid+wal", Seed: cfg.Trace.Seed, OpIndex: i,
			Op: trace[i], Detail: detail}
	}
	storageErr := func(err error) bool {
		return pagefile.IsTransient(err) || pagefile.IsCorrupt(err)
	}

	// checkRecovered is the five-method differential: box (collecting),
	// box (streaming count), range, exact k-NN, and approximate k-NN at
	// epsilon 0 (where "approximate" must mean "exact") — each compared
	// byte-for-byte against the oracle's replay of the acknowledged ops.
	// Runs quiesced: it is the measurement instrument, not the workload.
	checkRecovered := func(i int, t *core.Tree) error {
		sut := &index.Hybrid{Tree: t}
		want, err := oracle.SearchBox(space)
		if err != nil {
			return fmt.Errorf("sim: oracle box: %w", err)
		}
		got, err := sut.SearchBox(space)
		if err != nil {
			return diverge(i, fmt.Sprintf("recovered box failed: %v", err))
		}
		if detail := compareEntries(got, want); detail != "" {
			return diverge(i, "recovered box: "+detail)
		}
		foldEntries(dg, got)
		n, err := t.CountBox(space)
		if err != nil {
			return diverge(i, fmt.Sprintf("recovered count failed: %v", err))
		}
		if n != len(want) {
			return diverge(i, fmt.Sprintf("recovered count %d, oracle has %d", n, len(want)))
		}
		q := randQuery(killRng, dim)
		radius := killRng.Float64() * 0.5
		wantR, err := oracle.SearchRange(q, radius, metric)
		if err != nil {
			return fmt.Errorf("sim: oracle range: %w", err)
		}
		gotR, err := sut.SearchRange(q, radius, metric)
		if err != nil {
			return diverge(i, fmt.Sprintf("recovered range failed: %v", err))
		}
		if detail := compareNeighborSets(gotR, wantR); detail != "" {
			return diverge(i, "recovered range: "+detail)
		}
		foldNeighbors(dg, gotR)
		k := 1 + killRng.Intn(10)
		wantK, err := oracle.SearchKNN(q, k, metric)
		if err != nil {
			return fmt.Errorf("sim: oracle knn: %w", err)
		}
		gotK, err := sut.SearchKNN(q, k, metric)
		if err != nil {
			return diverge(i, fmt.Sprintf("recovered knn failed: %v", err))
		}
		if detail := compareKNN(q, gotK, wantK, metric); detail != "" {
			return diverge(i, "recovered knn: "+detail)
		}
		foldNeighbors(dg, gotK)
		gotA, err := t.SearchKNNApprox(q, k, metric, 0)
		if err != nil {
			return diverge(i, fmt.Sprintf("recovered approx knn failed: %v", err))
		}
		if detail := compareKNN(q, convertNeighbors(gotA), wantK, metric); detail != "" {
			return diverge(i, "recovered approx knn (epsilon 0): "+detail)
		}
		return nil
	}

	ackedSinceCkpt := 0
	i := 0
	for kill := 0; kill < cfg.Kills && i < len(trace); kill++ {
		// Occasionally arm a one-shot log-fsync failure: the commit it hits
		// must fail, roll back, and stay un-acknowledged.
		if killRng.Float64() < cfg.FailSyncProb {
			log.FailNextSyncs(1)
		}
		segLen := 1 + killRng.Intn(2*cfg.MeanSegment)
		for n := 0; n < segLen && i < len(trace); n, i = n+1, i+1 {
			op := trace[i]
			rep.Ops++
			dg.fold(uint64(i))
			dg.fold(uint64(op.Kind))
			switch op.Kind {
			case OpInsert:
				if err := tree.Insert(op.Point, core.RecordID(op.RID)); err != nil {
					rep.Rejected++
					dg.fold(1)
					break
				}
				rep.Acked++
				ackedSinceCkpt++
				dg.fold(0)
				if err := oracle.Insert(op.Point, op.RID); err != nil {
					return rep, fmt.Errorf("sim: oracle insert: %w", err)
				}
			case OpDelete:
				found, err := tree.Delete(op.Point, core.RecordID(op.RID))
				if err != nil {
					rep.Rejected++
					dg.fold(1)
					break
				}
				rep.Acked++
				ackedSinceCkpt++
				dg.fold(0)
				dg.foldBool(found)
				wantFound, err := oracle.Delete(op.Point, op.RID)
				if err != nil {
					return rep, fmt.Errorf("sim: oracle delete: %w", err)
				}
				if found != wantFound {
					return rep, diverge(i, fmt.Sprintf("delete found=%v, oracle says %v", found, wantFound))
				}
			case OpBox:
				rep.Queries++
				got, err := tree.SearchBox(op.Rect)
				if err != nil {
					if !storageErr(err) {
						return rep, diverge(i, fmt.Sprintf("box failed: %v", err))
					}
					rep.Tolerated++
					dg.fold(4)
					break
				}
				want, oerr := oracle.SearchBox(op.Rect)
				if oerr != nil {
					return rep, fmt.Errorf("sim: oracle box: %w", oerr)
				}
				if detail := compareEntries(convertEntries(got), want); detail != "" {
					return rep, diverge(i, "box: "+detail)
				}
				dg.fold(uint64(len(got)))
			case OpRange:
				rep.Queries++
				got, err := tree.SearchRange(op.Point, op.Radius, metric)
				if err != nil {
					if !storageErr(err) {
						return rep, diverge(i, fmt.Sprintf("range failed: %v", err))
					}
					rep.Tolerated++
					dg.fold(4)
					break
				}
				want, oerr := oracle.SearchRange(op.Point, op.Radius, metric)
				if oerr != nil {
					return rep, fmt.Errorf("sim: oracle range: %w", oerr)
				}
				if detail := compareNeighborSets(convertNeighbors(got), want); detail != "" {
					return rep, diverge(i, "range: "+detail)
				}
				dg.fold(uint64(len(got)))
			case OpKNN:
				rep.Queries++
				got, err := tree.SearchKNN(op.Point, op.K, metric)
				if err != nil {
					if !storageErr(err) {
						return rep, diverge(i, fmt.Sprintf("knn failed: %v", err))
					}
					rep.Tolerated++
					dg.fold(4)
					break
				}
				want, oerr := oracle.SearchKNN(op.Point, op.K, metric)
				if oerr != nil {
					return rep, fmt.Errorf("sim: oracle knn: %w", oerr)
				}
				if detail := compareKNN(op.Point, convertNeighbors(got), want, metric); detail != "" {
					return rep, diverge(i, "knn: "+detail)
				}
				dg.fold(uint64(len(got)))
			}
			// Periodic checkpoint with faults still live: it may fail (torn
			// flush, failed sync) but must never lose the overlay or the
			// log — the kill below proves it didn't.
			if cfg.CheckpointOps > 0 && ackedSinceCkpt >= cfg.CheckpointOps {
				ackedSinceCkpt = 0
				rep.Checkpoints++
				if err := tree.Flush(); err != nil {
					rep.CheckpointFailures++
					dg.fold(6)
				}
			}
		}

		// Kill: everything unsynced is lost or torn, in both media.
		log.FailNextSyncs(0)
		chaos.SetEnabled(false)
		inner.Crash(killRng.Int63())
		log.Crash(killRng.Int63())
		rep.Kills++

		wf, rec, err := wal.Open(sum, log, wopts)
		if err != nil {
			return rep, diverge(max(i-1, 0), fmt.Sprintf("wal recovery failed: %v", err))
		}
		rep.TxsReplayed += rec.Txs
		rep.RecordsReplayed += rec.Replayed
		rep.RecordsDiscarded += rec.Discarded
		rep.TornBytes += rec.TornBytes
		dg.fold(uint64(rec.Txs))
		dg.fold(uint64(rec.Replayed))
		tree, err = core.Open(wf, core.Config{Dim: dim, PageSize: ps})
		if err != nil {
			return rep, diverge(max(i-1, 0), fmt.Sprintf("reopen after crash failed: %v", err))
		}
		if err := checkRecovered(max(i-1, 0), tree); err != nil {
			return rep, err
		}
		if err := tree.CheckInvariants(); err != nil {
			return rep, diverge(max(i-1, 0), fmt.Sprintf("invariants after recovery: %v", err))
		}
		// Recovery checkpoint, quiesced: it must succeed and must leave no
		// leaked pages behind.
		if err := tree.Flush(); err != nil {
			return rep, diverge(max(i-1, 0), fmt.Sprintf("recovery flush failed: %v", err))
		}
		if leaked := tree.LeakedPages(); leaked > cfg.MaxLeaked {
			return rep, diverge(max(i-1, 0), fmt.Sprintf("%d leaked pages after recovery flush (max %d)", leaked, cfg.MaxLeaked))
		}
		chaos.SetEnabled(true)
	}

	chaos.SetEnabled(false)
	rep.ChaosCounts = chaos.Counts()
	if err := checkRecovered(len(trace)-1, tree); err != nil {
		return rep, err
	}
	if err := tree.CheckInvariants(); err != nil {
		return rep, diverge(len(trace)-1, fmt.Sprintf("final invariants: %v", err))
	}
	rep.FinalSize = oracle.Len()
	dg.fold(uint64(rep.FinalSize))
	dg.fold(uint64(rep.Acked))
	dg.fold(uint64(rep.Kills))
	rep.Digest = dg.sum()
	return rep, nil
}

func randQuery(rng *rand.Rand, dim int) geom.Point {
	p := make(geom.Point, dim)
	for d := range p {
		p[d] = rng.Float32()
	}
	return p
}

func convertEntries(es []core.Entry) []index.Entry {
	out := make([]index.Entry, len(es))
	for i, e := range es {
		out[i] = index.Entry{Point: e.Point, RID: uint64(e.RID)}
	}
	return out
}

func convertNeighbors(ns []core.Neighbor) []index.Neighbor {
	out := make([]index.Neighbor, len(ns))
	for i, n := range ns {
		out[i] = index.Neighbor{
			Entry: index.Entry{Point: n.Point, RID: uint64(n.RID)},
			Dist:  n.Dist,
		}
	}
	return out
}
