package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"hybridtree/internal/geom"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
)

// cacheShards is the number of independently-locked cache segments. Sixteen
// keeps lock contention negligible at any realistic GOMAXPROCS while the
// per-shard overhead stays trivial.
const cacheShards = 16

type cacheShard struct {
	mu sync.RWMutex
	m  map[pagefile.PageID]*node
}

// store mediates between decoded nodes and their on-disk pages. It keeps a
// write-through cache of decoded nodes so that tree construction does not
// pay a decode per traversal step, while still charging *every* logical
// node access to the page file's counters: the paper's I/O metric is the
// number of disk accesses a cold query would make, so a cache hit must cost
// the same one logical read as a miss.
//
// The cache is sharded by page id and scratch page buffers come from a
// pool, so any number of goroutines may call get concurrently; alloc, put
// and free mutate the tree and rely on the exclusive locking the
// concurrency layer provides for writers.
type store struct {
	file   pagefile.File
	dim    int
	shards [cacheShards]cacheShard
	bufs   sync.Pool // *[]byte scratch pages, one File.PageSize each
	undo   undoLog
	// obs holds the shared node-read/cache-hit counters; nil disables obs
	// accounting (and audits pause it so structural walks don't pollute the
	// operational telemetry, mirroring their pagefile.Stats save/restore).
	obs atomic.Pointer[storeObs]
}

// storeObs is the store's bundle of shared obs counters. Every access
// method resolves the same counter names via obs.IndexCounters, so
// cross-method comparisons read one code path's numbers.
type storeObs struct {
	reads, hits, misses *obs.Counter
}

func storeObsFor(method string) *storeObs {
	reads, hits, misses := obs.IndexCounters(obs.Default(), method)
	return &storeObs{reads: reads, hits: hits, misses: misses}
}

func (s *store) setObs(o *storeObs) { s.obs.Store(o) }

// pauseObs detaches the obs counters and returns the previous attachment
// for resumeObs, so audit walks don't inflate read accounting.
func (s *store) pauseObs() *storeObs {
	o := s.obs.Load()
	s.obs.Store(nil)
	return o
}

func (s *store) resumeObs(o *storeObs) { s.obs.Store(o) }

// nodeSnap is a first-touch pre-image of a node, captured while a
// mutation's undo log is active. Points are never element-mutated by the
// tree (they are replaced wholesale), so copying the slice contents one
// level deep is a complete pre-image.
type nodeSnap struct {
	leaf   bool
	pts    []geom.Point
	rids   []RecordID
	kd     []kdNode
	kdRoot int32
}

func snapshotNode(n *node) nodeSnap {
	s := nodeSnap{leaf: n.leaf, kdRoot: n.kdRoot}
	if n.pts != nil {
		s.pts = append([]geom.Point(nil), n.pts...)
	}
	if n.rids != nil {
		s.rids = append([]RecordID(nil), n.rids...)
	}
	if n.kd != nil {
		s.kd = append([]kdNode(nil), n.kd...)
	}
	return s
}

// undoLog records everything needed to make a failed mutation an exact
// no-op: pre-images of the nodes it touched, the pages it allocated, and
// the frees it requested (deferred to commit so rollback never has to
// resurrect a released page). Ordered slices accompany the maps so that
// rollback and commit iterate deterministically — map iteration order is
// randomized in Go, and a nondeterministic order of best-effort page
// operations would consume fault-injection decisions in random order,
// breaking trace reproducibility.
type undoLog struct {
	active     bool
	prev       map[pagefile.PageID]nodeSnap
	prevOrder  []pagefile.PageID
	fresh      map[pagefile.PageID]struct{}
	freshOrder []pagefile.PageID
	frees      []pagefile.PageID
}

// beginUndo opens an undo scope. Callers hold the writer lock, so no reads
// race with the bookkeeping that get/alloc/free perform while it is active.
func (s *store) beginUndo() {
	s.undo.active = true
	s.undo.prev = make(map[pagefile.PageID]nodeSnap)
	s.undo.fresh = make(map[pagefile.PageID]struct{})
	s.undo.prevOrder = s.undo.prevOrder[:0]
	s.undo.freshOrder = s.undo.freshOrder[:0]
	s.undo.frees = s.undo.frees[:0]
}

func (s *store) undoActive() bool { return s.undo.active }

// observe captures a node's pre-image on first touch.
func (s *store) observe(n *node) {
	if !s.undo.active {
		return
	}
	if _, ok := s.undo.fresh[n.id]; ok {
		return // allocated this mutation; rollback discards it entirely
	}
	if _, ok := s.undo.prev[n.id]; ok {
		return
	}
	s.undo.prev[n.id] = snapshotNode(n)
	s.undo.prevOrder = append(s.undo.prevOrder, n.id)
}

// rollbackUndo restores the pre-mutation state. The cache is authoritative
// (write-through, never evicting), so restoring cached nodes restores
// logical state exactly; re-encoding restored nodes to disk is best-effort
// repair for a later cache drop and its errors are ignored.
func (s *store) rollbackUndo() {
	for i := len(s.undo.freshOrder) - 1; i >= 0; i-- {
		id := s.undo.freshOrder[i]
		sh := s.shard(id)
		sh.mu.Lock()
		delete(sh.m, id)
		sh.mu.Unlock()
		_ = s.file.Free(id) // best effort: the page is unreachable either way
	}
	for _, id := range s.undo.prevOrder {
		snap := s.undo.prev[id]
		sh := s.shard(id)
		sh.mu.Lock()
		n, ok := sh.m[id]
		if !ok {
			n = &node{id: id}
			sh.m[id] = n
		}
		n.leaf = snap.leaf
		n.pts = snap.pts
		n.rids = snap.rids
		n.kd = snap.kd
		n.kdRoot = snap.kdRoot
		sh.mu.Unlock()
		bufp := s.bufs.Get().(*[]byte)
		if size, err := n.encode(*bufp, s.dim); err == nil {
			_ = s.file.WritePage(id, (*bufp)[:size])
		}
		s.bufs.Put(bufp)
	}
	s.endUndo()
}

// commitUndo performs the frees the mutation deferred and closes the
// scope. It deliberately returns no error: the mutation's logical effect is
// already fully applied, so a failed Free must not be reported as a failed
// mutation — the page merely leaks. The ids of the leaked pages are
// returned so the tree can reclaim them later (Flush retries the frees):
// a failed Free leaves the page allocated in the file, so it can never be
// handed out again by Allocate and a later retry is safe.
func (s *store) commitUndo() []pagefile.PageID {
	var leaked []pagefile.PageID
	for _, id := range s.undo.frees {
		sh := s.shard(id)
		sh.mu.Lock()
		delete(sh.m, id)
		sh.mu.Unlock()
		if err := s.file.Free(id); err != nil {
			leaked = append(leaked, id)
		}
	}
	s.endUndo()
	return leaked
}

func (s *store) endUndo() {
	s.undo.active = false
	s.undo.prev = nil
	s.undo.fresh = nil
	s.undo.prevOrder = s.undo.prevOrder[:0]
	s.undo.freshOrder = s.undo.freshOrder[:0]
	s.undo.frees = s.undo.frees[:0]
}

func newStore(file pagefile.File, dim int) *store {
	s := &store{file: file, dim: dim}
	s.obs.Store(storeObsFor("hybrid"))
	for i := range s.shards {
		s.shards[i].m = make(map[pagefile.PageID]*node)
	}
	pageSize := file.PageSize()
	s.bufs.New = func() any {
		b := make([]byte, pageSize)
		return &b
	}
	return s
}

func (s *store) shard(id pagefile.PageID) *cacheShard {
	return &s.shards[uint(id)%cacheShards]
}

// get returns the decoded node for id, counting one logical random read.
// Safe for concurrent callers.
func (s *store) get(id pagefile.PageID) (*node, error) {
	n, _, err := s.getq(id)
	return n, err
}

// getq is get plus a cache-hit report, for the traced query path.
func (s *store) getq(id pagefile.PageID) (*node, bool, error) {
	sh := s.shard(id)
	sh.mu.RLock()
	n, ok := sh.m[id]
	sh.mu.RUnlock()
	if ok {
		s.file.Stats().AddRandomReads(1)
		if o := s.obs.Load(); o != nil {
			o.reads.Inc()
			o.hits.Inc()
		}
		s.observe(n)
		return n, true, nil
	}
	bufp := s.bufs.Get().(*[]byte)
	if err := s.file.ReadPage(id, *bufp); err != nil {
		s.bufs.Put(bufp)
		return nil, false, err
	}
	n, err := decodeNode(id, *bufp, s.dim)
	s.bufs.Put(bufp)
	if err != nil {
		return nil, false, err
	}
	if o := s.obs.Load(); o != nil {
		o.reads.Inc()
		o.misses.Inc()
	}
	sh.mu.Lock()
	if cached, ok := sh.m[id]; ok {
		// Another goroutine decoded the page first; keep its copy canonical
		// so writers always see the cached instance.
		n = cached
	} else {
		sh.m[id] = n
	}
	sh.mu.Unlock()
	s.observe(n)
	return n, false, nil
}

// alloc creates a fresh node of the requested kind backed by a new page.
// The caller must put it once populated.
func (s *store) alloc(leaf bool) (*node, error) {
	id, err := s.file.Allocate()
	if err != nil {
		return nil, err
	}
	n := &node{id: id, leaf: leaf, kdRoot: kdNone}
	sh := s.shard(id)
	sh.mu.Lock()
	sh.m[id] = n
	sh.mu.Unlock()
	if s.undo.active {
		s.undo.fresh[id] = struct{}{}
		s.undo.freshOrder = append(s.undo.freshOrder, id)
	}
	return n, nil
}

// put writes the node through to its page.
func (s *store) put(n *node) error {
	bufp := s.bufs.Get().(*[]byte)
	size, err := n.encode(*bufp, s.dim)
	if err == nil {
		err = s.file.WritePage(n.id, (*bufp)[:size])
	}
	s.bufs.Put(bufp)
	if err != nil {
		return err
	}
	sh := s.shard(n.id)
	sh.mu.Lock()
	sh.m[n.id] = n
	sh.mu.Unlock()
	return nil
}

// free releases the node's page and drops it from the cache. Inside an
// undo scope the release is deferred to commit: rollback must be able to
// return to the pre-mutation state without resurrecting pages, and a page
// the mutation logically freed is unreachable either way.
func (s *store) free(id pagefile.PageID) error {
	if s.undo.active {
		s.undo.frees = append(s.undo.frees, id)
		return nil
	}
	sh := s.shard(id)
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
	return s.file.Free(id)
}

// flushAll re-encodes every cached node to its page in ascending id order,
// repairing any disk pages that a faulty write left stale or torn. It stops
// at the first error.
func (s *store) flushAll() error {
	var ids []pagefile.PageID
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.m {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		sh := s.shard(id)
		sh.mu.RLock()
		n, ok := sh.m[id]
		sh.mu.RUnlock()
		if !ok {
			continue
		}
		bufp := s.bufs.Get().(*[]byte)
		size, err := n.encode(*bufp, s.dim)
		if err == nil {
			err = s.file.WritePage(id, (*bufp)[:size])
		}
		s.bufs.Put(bufp)
		if err != nil {
			return err
		}
	}
	return nil
}

// dropCache empties the decoded-node cache (used by tests that want to
// force decode paths, and by Close).
func (s *store) dropCache() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m = make(map[pagefile.PageID]*node)
		sh.mu.Unlock()
	}
}
