package core

import (
	"fmt"

	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// TreeStats summarizes the structure of a hybrid tree — the measurable
// counterparts of the Table 1 / Table 2 rows: fanout (independent of
// dimensionality), degree of overlap (low but nonzero), and node
// utilization (guaranteed).
type TreeStats struct {
	Height          int
	DataNodes       int
	IndexNodes      int
	Entries         int
	AvgFanout       float64 // mean children per index node
	MaxFanout       int
	AvgDataFill     float64 // mean data-node fill fraction
	MinDataFill     float64
	OverlapFraction float64 // fraction of kd internal records with lsp > rsp
	OverlapVolume   float64 // total pairwise overlap volume between sibling BRs, normalized by total BR volume
	SplitDimsUsed   int     // distinct dimensions appearing in any kd record
	ELSBytes        int
}

// auditView is one consistent view of the tree for a structural walk: a node
// getter, a live-space lookup and the header fields, either the writer's
// current state (Stats, CheckInvariants) or a pinned MVCC snapshot
// (StatsSnapshot, CheckInvariantsSnapshot).
type auditView struct {
	get      func(id pagefile.PageID) (*node, error)
	elsGet   func(id uint32, outer geom.Rect) (geom.Rect, bool)
	root     pagefile.PageID
	height   int
	size     int
	elsBytes int
}

// writerView is the writer-side view. Callers must hold the writer role (or
// know no writer is active): it reads the unpublished header fields.
func (t *Tree) writerView() auditView {
	return auditView{
		get:      t.store.get,
		elsGet:   t.els.Get,
		root:     t.root,
		height:   t.height,
		size:     t.size,
		elsBytes: t.els.MemoryBytes(),
	}
}

// snapshotView is the view of the pinned version ver: every page resolves
// through the version chains at ver.epoch without touching access counters.
func (t *Tree) snapshotView(ver *treeVersion) auditView {
	return auditView{
		get:      func(id pagefile.PageID) (*node, error) { return t.store.getAudit(id, ver.epoch) },
		elsGet:   ver.els.Get,
		root:     ver.root,
		height:   ver.height,
		size:     ver.size,
		elsBytes: ver.els.MemoryBytes(),
	}
}

// Stats walks the tree and computes structural statistics. It does not
// perturb access counters: callers should snapshot/reset pagefile stats
// around it if they are mid-measurement. Like mutations it belongs to the
// writer role; concurrent readers should use StatsSnapshot.
func (t *Tree) Stats() (TreeStats, error) {
	saved := *t.file.Stats()
	defer func() { *t.file.Stats() = saved }()
	savedObs := t.store.pauseObs()
	defer t.store.resumeObs(savedObs)
	return t.statsOver(t.writerView())
}

// StatsSnapshot computes the same statistics from a pinned MVCC snapshot:
// it never blocks a concurrent writer and never sees a half-applied
// mutation. Physical reads for uncached pages still hit the page file (and
// its counters), so mid-measurement callers should prefer a warm cache.
func (t *Tree) StatsSnapshot() (TreeStats, error) {
	sl, _ := t.store.pin()
	defer t.store.unpin(sl)
	ver := t.current.Load()
	return t.statsOver(t.snapshotView(ver))
}

func (t *Tree) statsOver(v auditView) (TreeStats, error) {
	st := TreeStats{Height: v.height, ELSBytes: v.elsBytes, MinDataFill: 1}
	dimsUsed := make(map[uint16]bool)
	var kdInternal, kdOverlapping int
	var fanoutSum int
	var fillSum float64

	var walk func(id pagefile.PageID, br geom.Rect) error
	walk = func(id pagefile.PageID, br geom.Rect) error {
		n, err := v.get(id)
		if err != nil {
			return err
		}
		if n.leaf {
			st.DataNodes++
			st.Entries += n.count()
			fill := float64(n.count()) / float64(t.cfg.dataCapacity())
			fillSum += fill
			if fill < st.MinDataFill {
				st.MinDataFill = fill
			}
			return nil
		}
		st.IndexNodes++
		n.walkReachable(func(k *kdNode) {
			if k.isLeaf() {
				return
			}
			kdInternal++
			dimsUsed[k.Dim] = true
			if k.Lsp > k.Rsp {
				kdOverlapping++
			}
		})
		entries := n.children(br)
		fanoutSum += len(entries)
		if len(entries) > st.MaxFanout {
			st.MaxFanout = len(entries)
		}
		var totalVol, overlapVol float64
		for i := range entries {
			totalVol += entries[i].br.Area()
			for j := i + 1; j < len(entries); j++ {
				inter := entries[i].br.Intersect(entries[j].br)
				if !inter.IsEmpty() {
					overlapVol += inter.Area()
				}
			}
		}
		if totalVol > 0 {
			st.OverlapVolume += overlapVol / totalVol
		}
		for _, e := range entries {
			if err := walk(e.child, e.br); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(v.root, t.cfg.Space); err != nil {
		return TreeStats{}, err
	}
	if st.IndexNodes > 0 {
		st.AvgFanout = float64(fanoutSum) / float64(st.IndexNodes)
		st.OverlapVolume /= float64(st.IndexNodes)
	}
	if st.DataNodes > 0 {
		st.AvgDataFill = fillSum / float64(st.DataNodes)
	}
	if kdInternal > 0 {
		st.OverlapFraction = float64(kdOverlapping) / float64(kdInternal)
	}
	st.SplitDimsUsed = len(dimsUsed)
	if st.DataNodes == 1 && st.Entries == 0 {
		st.MinDataFill = 0
	}
	return st, nil
}

// CheckInvariants verifies the structural invariants the hybrid tree's
// correctness rests on and returns the first violation found:
//
//  1. every point in a subtree lies inside the subtree's mapped BR;
//  2. mapped BRs lie inside the data space;
//  3. decoded live-space rectangles contain their node's true live
//     rectangle (ELS conservativeness);
//  4. non-root data nodes respect capacity; all data nodes fit their page;
//  5. every level is reachable at a consistent height;
//  6. the entry count equals Size().
//
// Like Stats it reads the writer-side state; concurrent readers should use
// CheckInvariantsSnapshot.
func (t *Tree) CheckInvariants() error {
	saved := *t.file.Stats()
	defer func() { *t.file.Stats() = saved }()
	savedObs := t.store.pauseObs()
	defer t.store.resumeObs(savedObs)
	return t.checkInvariantsOver(t.writerView())
}

// CheckInvariantsSnapshot verifies the same invariants against a pinned MVCC
// snapshot, so an audit can run concurrently with a writer and still see one
// consistent version: a committed tree must satisfy every invariant at every
// published epoch.
func (t *Tree) CheckInvariantsSnapshot() error {
	sl, _ := t.store.pin()
	defer t.store.unpin(sl)
	ver := t.current.Load()
	return t.checkInvariantsOver(t.snapshotView(ver))
}

func (t *Tree) checkInvariantsOver(v auditView) error {
	entries := 0
	var walk func(id pagefile.PageID, br geom.Rect, level int) (geom.Rect, error)
	walk = func(id pagefile.PageID, br geom.Rect, level int) (geom.Rect, error) {
		if !t.cfg.Space.ContainsRect(br) {
			return geom.Rect{}, fmt.Errorf("node %d: mapped BR %v escapes data space", id, br)
		}
		n, err := v.get(id)
		if err != nil {
			return geom.Rect{}, err
		}
		live := geom.EmptyRect(t.cfg.Dim)
		if n.leaf {
			if level != 1 {
				return geom.Rect{}, fmt.Errorf("node %d: data node at level %d", id, level)
			}
			if n.count() > t.cfg.dataCapacity() {
				return geom.Rect{}, fmt.Errorf("node %d: %d entries exceed capacity %d", id, n.count(), t.cfg.dataCapacity())
			}
			entries += n.count()
			for i := 0; i < n.count(); i++ {
				p := n.point(i)
				if !br.Contains(p) {
					return geom.Rect{}, fmt.Errorf("node %d: point %d %v outside mapped BR %v", id, i, p, br)
				}
				live.Enlarge(p)
			}
		} else {
			if level <= 1 {
				return geom.Rect{}, fmt.Errorf("node %d: index node at level %d", id, level)
			}
			kids := n.children(br)
			if len(kids) == 0 {
				return geom.Rect{}, fmt.Errorf("node %d: index node with no children", id)
			}
			seen := make(map[pagefile.PageID]bool)
			for _, e := range kids {
				if seen[e.child] {
					return geom.Rect{}, fmt.Errorf("node %d: child %d referenced twice", id, e.child)
				}
				seen[e.child] = true
				childLive, err := walk(e.child, e.br, level-1)
				if err != nil {
					return geom.Rect{}, err
				}
				live.EnlargeRect(childLive)
			}
		}
		if dec, ok := v.elsGet(uint32(id), t.cfg.Space); ok && !live.IsEmpty() {
			if !dec.ContainsRect(live) {
				return geom.Rect{}, fmt.Errorf("node %d: decoded live rect %v misses true live rect %v", id, dec, live)
			}
		}
		return live, nil
	}
	if _, err := walk(v.root, t.cfg.Space, v.height); err != nil {
		return err
	}
	if entries != v.size {
		return fmt.Errorf("entry count %d != Size() %d", entries, v.size)
	}
	return nil
}

// DropCaches discards decoded-node caches so subsequent operations exercise
// the full page decode path (used by durability tests). Retired versions
// whose epochs have drained are reclaimed first; version chains still
// pinned by in-flight readers survive the drop.
func (t *Tree) DropCaches() {
	t.store.reclaimRetired()
	t.store.dropCache()
}
