// Package srtree implements the SR-tree of Katayama and Satoh (SIGMOD
// 1997), the data-partitioning competitor in the paper's evaluation. Each
// internal entry carries both a bounding sphere (the SS-tree's region,
// compact in volume) and a bounding rectangle (compact in diameter); a
// node's region is their intersection. Entries therefore cost
// Θ(dimensionality) bytes, so the fanout *decreases linearly with
// dimensionality* — the structural weakness (Table 1: low fanout for large
// k, high overlap) the hybrid tree is built to avoid, and the reason the
// SR-tree falls behind past ~10 dimensions in Figure 6.
package srtree

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/index"
	"hybridtree/internal/nodestore"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/pqueue"
)

// Config controls tree geometry.
type Config struct {
	Dim      int
	PageSize int
	// MinFill is the minimum fill fraction enforced by splits; default 0.4
	// (the SS-/SR-tree setting).
	MinFill float64
}

// entry is one internal-node routing entry: a child page with its bounding
// sphere (Centroid, Radius), bounding rectangle, and subtree cardinality
// (the weight for centroid maintenance).
type entry struct {
	child    pagefile.PageID
	centroid geom.Point
	radius   float64
	rect     geom.Rect
	count    int32
}

type node struct {
	id   pagefile.PageID
	leaf bool
	pts  []geom.Point
	rids []uint64
	ents []entry
}

// Tree is an SR-tree over a page file.
type Tree struct {
	cfg    Config
	file   pagefile.File
	store  *nodestore.Store[*node]
	root   pagefile.PageID
	height int
	size   int
	prunes *obs.Counter // index_prunes_total{method="sr"}
}

const headerSize = 6

func (cfg *Config) leafCap() int { return (cfg.PageSize - headerSize) / (8 + 4*cfg.Dim) }

// nodeCap is the internal fanout: each entry stores child id (4), centroid
// (4k), radius (4), rect (8k) and count (4) — 12k+12 bytes, shrinking
// linearly in k.
func (cfg *Config) nodeCap() int { return (cfg.PageSize - headerSize) / (12*cfg.Dim + 12) }

func (cfg *Config) minLeaf() int { return atLeast1(int(cfg.MinFill * float64(cfg.leafCap()))) }
func (cfg *Config) minNode() int { return atLeast1(int(cfg.MinFill * float64(cfg.nodeCap()))) }

func atLeast1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// New creates an empty SR-tree on file.
func New(file pagefile.File, cfg Config) (*Tree, error) {
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("srtree: dim must be >= 1, got %d", cfg.Dim)
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = file.PageSize()
	}
	if cfg.PageSize != file.PageSize() {
		return nil, fmt.Errorf("srtree: page size %d != file page size %d", cfg.PageSize, file.PageSize())
	}
	if cfg.MinFill == 0 {
		cfg.MinFill = 0.4
	}
	if cfg.MinFill < 0 || cfg.MinFill > 0.5 {
		return nil, fmt.Errorf("srtree: MinFill %g outside [0, 0.5]", cfg.MinFill)
	}
	if cfg.leafCap() < 2 || cfg.nodeCap() < 2 {
		return nil, fmt.Errorf("srtree: page size %d too small for %d dimensions", cfg.PageSize, cfg.Dim)
	}
	t := &Tree{cfg: cfg, file: file, prunes: obs.PruneCounter(obs.Default(), "sr")}
	t.store = nodestore.New[*node](file, codec{dim: cfg.Dim})
	t.store.SetObsMethod("sr")
	root, err := t.newNode(true)
	if err != nil {
		return nil, err
	}
	if err := t.store.Put(root.id, root); err != nil {
		return nil, err
	}
	t.root = root.id
	t.height = 1
	return t, nil
}

func (t *Tree) newNode(leaf bool) (*node, error) {
	id, err := t.store.Alloc()
	if err != nil {
		return nil, err
	}
	return &node{id: id, leaf: leaf}, nil
}

// Name implements index.Index.
func (t *Tree) Name() string { return "sr" }

// File implements index.Index.
func (t *Tree) File() pagefile.File { return t.file }

// Size returns the number of stored entries.
func (t *Tree) Size() int { return t.size }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// Insert implements index.Index using the SS-tree descent rule the SR-tree
// adopts: follow the child whose centroid is nearest to the new point.
func (t *Tree) Insert(p geom.Point, rid uint64) error {
	if len(p) != t.cfg.Dim {
		return fmt.Errorf("srtree: vector has dim %d, want %d", len(p), t.cfg.Dim)
	}
	sp, err := t.insertAt(t.root, p.Clone(), rid)
	if err != nil {
		return err
	}
	if sp != nil {
		root, err := t.newNode(false)
		if err != nil {
			return err
		}
		root.ents = []entry{sp.left, sp.right}
		if err := t.store.Put(root.id, root); err != nil {
			return err
		}
		t.root = root.id
		t.height++
	}
	t.size++
	return nil
}

// Delete implements index.Index. The descent follows bounding rectangles,
// which entryFor keeps exact, so every copy of the entry is reachable.
// Emptied nodes are kept in place with empty regions (like the KDB-tree's
// empty regions); their entries stop matching any query and future inserts
// may repopulate them.
func (t *Tree) Delete(p geom.Point, rid uint64) (bool, error) {
	if len(p) != t.cfg.Dim {
		return false, fmt.Errorf("srtree: vector has dim %d, want %d", len(p), t.cfg.Dim)
	}
	found, err := t.deleteAt(t.root, p, rid)
	if err != nil || !found {
		return false, err
	}
	t.size--
	return true, nil
}

func (t *Tree) deleteAt(id pagefile.PageID, p geom.Point, rid uint64) (bool, error) {
	n, err := t.store.Get(id)
	if err != nil {
		return false, err
	}
	if n.leaf {
		for i := range n.pts {
			if n.rids[i] == rid && n.pts[i].Equal(p) {
				last := len(n.pts) - 1
				n.pts[i], n.rids[i] = n.pts[last], n.rids[last]
				n.pts = n.pts[:last]
				n.rids = n.rids[:last]
				return true, t.store.Put(n.id, n)
			}
		}
		return false, nil
	}
	for i := range n.ents {
		if !n.ents[i].rect.Contains(p) {
			continue
		}
		found, err := t.deleteAt(n.ents[i].child, p, rid)
		if err != nil {
			return false, err
		}
		if !found {
			continue
		}
		e, err := t.entryFor(n.ents[i].child)
		if err != nil {
			return false, err
		}
		n.ents[i] = e
		return true, t.store.Put(n.id, n)
	}
	return false, nil
}

type splitPair struct {
	left, right entry
}

func (t *Tree) insertAt(id pagefile.PageID, p geom.Point, rid uint64) (*splitPair, error) {
	n, err := t.store.Get(id)
	if err != nil {
		return nil, err
	}
	if n.leaf {
		n.pts = append(n.pts, p)
		n.rids = append(n.rids, rid)
		if len(n.pts) > t.cfg.leafCap() {
			return t.splitLeaf(n)
		}
		return nil, t.store.Put(n.id, n)
	}

	// Nearest centroid (Euclidean, the tree's native geometry).
	best, bestDist := 0, math.Inf(1)
	for i := range n.ents {
		if d := dist.L2().Distance(n.ents[i].centroid, p); d < bestDist {
			best, bestDist = i, d
		}
	}
	sp, err := t.insertAt(n.ents[best].child, p, rid)
	if err != nil {
		return nil, err
	}
	if sp != nil {
		n.ents[best] = sp.left
		n.ents = append(n.ents, sp.right)
		if len(n.ents) > t.cfg.nodeCap() {
			return t.splitNode(n)
		}
	} else {
		// Refresh the routing entry from the child's new content.
		e, err := t.entryFor(n.ents[best].child)
		if err != nil {
			return nil, err
		}
		n.ents[best] = e
	}
	return nil, t.store.Put(n.id, n)
}

// entryFor recomputes the routing entry describing a child from the child's
// contents: for leaves, exact centroid/radius/rect over the points; for
// internal children, the weighted centroid of its entries with the radius
// bounded by max(centroid distance + child radius).
func (t *Tree) entryFor(id pagefile.PageID) (entry, error) {
	n, err := t.store.Get(id)
	if err != nil {
		return entry{}, err
	}
	if n.leaf {
		if len(n.pts) == 0 {
			// Drained by deletes: an empty region that matches nothing.
			return entry{child: id, centroid: make(geom.Point, t.cfg.Dim),
				rect: geom.EmptyRect(t.cfg.Dim)}, nil
		}
		c := geom.Centroid(n.pts)
		r := 0.0
		for _, p := range n.pts {
			if d := dist.L2().Distance(c, p); d > r {
				r = d
			}
		}
		return entry{child: id, centroid: c, radius: r,
			rect: geom.BoundingRect(n.pts), count: int32(len(n.pts))}, nil
	}
	var total int32
	acc := make([]float64, t.cfg.Dim)
	rect := geom.EmptyRect(t.cfg.Dim)
	for _, e := range n.ents {
		total += e.count
		for d := range acc {
			acc[d] += float64(e.centroid[d]) * float64(e.count)
		}
		rect.EnlargeRect(e.rect)
	}
	if total == 0 {
		// Every child drained by deletes.
		return entry{child: id, centroid: make(geom.Point, t.cfg.Dim),
			rect: geom.EmptyRect(t.cfg.Dim)}, nil
	}
	c := make(geom.Point, t.cfg.Dim)
	for d := range c {
		c[d] = float32(acc[d] / float64(total))
	}
	r := 0.0
	for _, e := range n.ents {
		if e.count == 0 {
			continue // drained child; its placeholder centroid means nothing
		}
		if d := dist.L2().Distance(c, e.centroid) + e.radius; d > r {
			r = d
		}
	}
	return entry{child: id, centroid: c, radius: r, rect: rect, count: total}, nil
}

// splitLeaf splits an overflowing leaf with the SS-tree's variance rule:
// the dimension of maximum coordinate variance, at the position (respecting
// minimum fill) minimizing the summed variance of the two halves.
func (t *Tree) splitLeaf(n *node) (*splitPair, error) {
	dim := maxVarianceDim(n.pts, nil, t.cfg.Dim)
	order := make([]int, len(n.pts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return n.pts[order[a]][dim] < n.pts[order[b]][dim] })
	coords := make([]float64, len(order))
	for i, j := range order {
		coords[i] = float64(n.pts[j][dim])
	}
	cut := bestVarianceCut(coords, t.cfg.minLeaf())

	right, err := t.newNode(true)
	if err != nil {
		return nil, err
	}
	var lp []geom.Point
	var lr []uint64
	for _, j := range order[:cut] {
		lp = append(lp, n.pts[j])
		lr = append(lr, n.rids[j])
	}
	for _, j := range order[cut:] {
		right.pts = append(right.pts, n.pts[j])
		right.rids = append(right.rids, n.rids[j])
	}
	n.pts, n.rids = lp, lr
	return t.finishSplit(n, right)
}

// splitNode splits an overflowing internal node by the variance of its
// entries' centroids.
func (t *Tree) splitNode(n *node) (*splitPair, error) {
	cents := make([]geom.Point, len(n.ents))
	for i := range n.ents {
		cents[i] = n.ents[i].centroid
	}
	dim := maxVarianceDim(cents, nil, t.cfg.Dim)
	order := make([]int, len(n.ents))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return n.ents[order[a]].centroid[dim] < n.ents[order[b]].centroid[dim]
	})
	coords := make([]float64, len(order))
	for i, j := range order {
		coords[i] = float64(n.ents[j].centroid[dim])
	}
	cut := bestVarianceCut(coords, t.cfg.minNode())

	right, err := t.newNode(false)
	if err != nil {
		return nil, err
	}
	var le []entry
	for _, j := range order[:cut] {
		le = append(le, n.ents[j])
	}
	for _, j := range order[cut:] {
		right.ents = append(right.ents, n.ents[j])
	}
	n.ents = le
	return t.finishSplit(n, right)
}

func (t *Tree) finishSplit(left, right *node) (*splitPair, error) {
	if err := t.store.Put(left.id, left); err != nil {
		return nil, err
	}
	if err := t.store.Put(right.id, right); err != nil {
		return nil, err
	}
	el, err := t.entryFor(left.id)
	if err != nil {
		return nil, err
	}
	er, err := t.entryFor(right.id)
	if err != nil {
		return nil, err
	}
	return &splitPair{left: el, right: er}, nil
}

// maxVarianceDim returns the dimension with the largest coordinate variance
// over the given points.
func maxVarianceDim(pts []geom.Point, _ []int, dim int) int {
	best, bestVar := 0, -1.0
	for d := 0; d < dim; d++ {
		var sum, sumSq float64
		for _, p := range pts {
			v := float64(p[d])
			sum += v
			sumSq += v * v
		}
		n := float64(len(pts))
		variance := sumSq/n - (sum/n)*(sum/n)
		if variance > bestVar {
			best, bestVar = d, variance
		}
	}
	return best
}

// bestVarianceCut chooses the split index in [minFill, n-minFill]
// minimizing the summed variance of the two sides of the sorted coordinate
// list, in O(n) via prefix sums.
func bestVarianceCut(sorted []float64, minFill int) int {
	n := len(sorted)
	if 2*minFill > n {
		minFill = n / 2
	}
	prefix := make([]float64, n+1)
	prefixSq := make([]float64, n+1)
	for i, v := range sorted {
		prefix[i+1] = prefix[i] + v
		prefixSq[i+1] = prefixSq[i] + v*v
	}
	varOf := func(lo, hi int) float64 { // [lo,hi)
		c := float64(hi - lo)
		s := prefix[hi] - prefix[lo]
		sq := prefixSq[hi] - prefixSq[lo]
		return sq/c - (s/c)*(s/c)
	}
	bestCut, bestScore := minFill, math.Inf(1)
	for cut := minFill; cut <= n-minFill; cut++ {
		if cut == 0 || cut == n {
			continue
		}
		if score := varOf(0, cut) + varOf(cut, n); score < bestScore {
			bestCut, bestScore = cut, score
		}
	}
	return bestCut
}

// regionMinDist returns a lower bound on m-distance from q to any point of
// the entry's region (rect ∩ sphere). The rectangle bound always applies;
// the Euclidean sphere bound applies when m dominates L2.
func regionMinDist(q geom.Point, e *entry, m dist.Metric, sphereOK bool) float64 {
	lb := m.MinDistRect(q, e.rect)
	if sphereOK {
		if sb := dist.L2().Distance(q, e.centroid) - e.radius; sb > lb {
			lb = sb
		}
	}
	return lb
}

// regionMinDistSq is regionMinDist in the squared domain for metrics on the
// sqrt-free fast path. The rectangle bound is squared natively; the sphere
// bound keeps its one centroid sqrt (the L2 point distance) and squares the
// resulting clearance, which is monotone because both bounds are
// non-negative.
func regionMinDistSq(q geom.Point, e *entry, sqm dist.SquaredMetric, sphereOK bool) float64 {
	lb := sqm.MinDistRectSq(q, e.rect)
	if sphereOK {
		if dc := dist.L2().Distance(q, e.centroid) - e.radius; dc > 0 {
			if sb := dc * dc; sb > lb {
				lb = sb
			}
		}
	}
	return lb
}

// SearchBox implements index.Index: a child is visited when the query box
// intersects both its bounding rectangle and its bounding sphere.
func (t *Tree) SearchBox(q geom.Rect) ([]index.Entry, error) {
	if q.Dim() != t.cfg.Dim {
		return nil, fmt.Errorf("srtree: query has dim %d, want %d", q.Dim(), t.cfg.Dim)
	}
	var out []index.Entry
	pruned := 0
	var walk func(id pagefile.PageID) error
	walk = func(id pagefile.PageID) error {
		n, err := t.store.Get(id)
		if err != nil {
			return err
		}
		if n.leaf {
			for i, p := range n.pts {
				if q.Contains(p) {
					out = append(out, index.Entry{Point: p, RID: n.rids[i]})
				}
			}
			return nil
		}
		for i := range n.ents {
			e := &n.ents[i]
			if !e.rect.Intersects(q) {
				pruned++
				continue
			}
			if dist.L2().MinDistRect(e.centroid, q) > e.radius {
				pruned++ // sphere misses the query box
				continue
			}
			if err := walk(e.child); err != nil {
				return err
			}
		}
		return nil
	}
	err := walk(t.root)
	t.prunes.Add(uint64(pruned))
	return out, err
}

// SearchRange implements index.Index.
func (t *Tree) SearchRange(q geom.Point, radius float64, m dist.Metric) ([]index.Neighbor, error) {
	if len(q) != t.cfg.Dim {
		return nil, fmt.Errorf("srtree: query has dim %d, want %d", len(q), t.cfg.Dim)
	}
	if radius < 0 {
		return nil, fmt.Errorf("srtree: negative radius %g", radius)
	}
	sphereOK := dist.DominatesL2(m)
	sqm, useSq := dist.AsSquared(m)
	bound := radius
	if useSq {
		bound = radius * radius
	}
	var out []index.Neighbor
	pruned := 0
	var walk func(id pagefile.PageID) error
	walk = func(id pagefile.PageID) error {
		n, err := t.store.Get(id)
		if err != nil {
			return err
		}
		if n.leaf {
			for i, p := range n.pts {
				if useSq {
					if d2 := sqm.DistanceSqBounded(q, p, bound); d2 <= bound {
						out = append(out, index.Neighbor{Entry: index.Entry{Point: p, RID: n.rids[i]}, Dist: math.Sqrt(d2)})
					}
				} else if d := m.Distance(q, p); d <= radius {
					out = append(out, index.Neighbor{Entry: index.Entry{Point: p, RID: n.rids[i]}, Dist: d})
				}
			}
			return nil
		}
		for i := range n.ents {
			var lb float64
			if useSq {
				lb = regionMinDistSq(q, &n.ents[i], sqm, sphereOK)
			} else {
				lb = regionMinDist(q, &n.ents[i], m, sphereOK)
			}
			if lb <= bound {
				if err := walk(n.ents[i].child); err != nil {
					return err
				}
			} else {
				pruned++
			}
		}
		return nil
	}
	err := walk(t.root)
	t.prunes.Add(uint64(pruned))
	return out, err
}

// SearchKNN implements index.Index with best-first traversal over the
// rect∩sphere regions.
func (t *Tree) SearchKNN(q geom.Point, k int, m dist.Metric) ([]index.Neighbor, error) {
	if len(q) != t.cfg.Dim {
		return nil, fmt.Errorf("srtree: query has dim %d, want %d", len(q), t.cfg.Dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("srtree: k must be >= 1, got %d", k)
	}
	sphereOK := dist.DominatesL2(m)
	sqm, useSq := dist.AsSquared(m)
	pruned := 0
	var pq pqueue.Min[pagefile.PageID]
	best := pqueue.NewKBest[index.Neighbor](k)
	pq.Push(t.root, 0)
	for pq.Len() > 0 {
		id, mindist := pq.Pop()
		if best.Full() && mindist > best.Bound() {
			break
		}
		n, err := t.store.Get(id)
		if err != nil {
			return nil, err
		}
		if n.leaf {
			bound := math.Inf(1)
			if best.Full() {
				bound = best.Bound()
			}
			for i, p := range n.pts {
				var d float64
				if useSq {
					d = sqm.DistanceSqBounded(q, p, bound)
				} else {
					d = m.Distance(q, p)
				}
				if d > bound {
					continue // abandoned or beaten; Offer would reject it
				}
				best.Offer(index.Neighbor{Entry: index.Entry{Point: p, RID: n.rids[i]}, Dist: d}, d)
				if best.Full() {
					bound = best.Bound()
				}
			}
			continue
		}
		for i := range n.ents {
			var md float64
			if useSq {
				md = regionMinDistSq(q, &n.ents[i], sqm, sphereOK)
			} else {
				md = regionMinDist(q, &n.ents[i], m, sphereOK)
			}
			if !best.Full() || md <= best.Bound() {
				pq.Push(n.ents[i].child, md)
			} else {
				pruned++
			}
		}
	}
	t.prunes.Add(uint64(pruned))
	ns, _ := best.Sorted()
	if useSq {
		for i := range ns {
			ns[i].Dist = math.Sqrt(ns[i].Dist)
		}
	}
	return ns, nil
}

// Stats summarizes the tree structure (fanout and utilization rows of the
// Table 1 comparison).
type Stats struct {
	Height     int
	LeafNodes  int
	IndexNodes int
	Entries    int
	AvgFanout  float64
	LeafCap    int
	NodeCap    int
}

// Stats walks the tree without perturbing access counters.
func (t *Tree) Stats() (Stats, error) {
	saved := *t.file.Stats()
	defer func() { *t.file.Stats() = saved }()
	savedObs := t.store.PauseObs()
	defer t.store.ResumeObs(savedObs)
	st := Stats{Height: t.height, LeafCap: t.cfg.leafCap(), NodeCap: t.cfg.nodeCap()}
	fanout := 0
	var walk func(id pagefile.PageID) error
	walk = func(id pagefile.PageID) error {
		n, err := t.store.Get(id)
		if err != nil {
			return err
		}
		if n.leaf {
			st.LeafNodes++
			st.Entries += len(n.pts)
			return nil
		}
		st.IndexNodes++
		fanout += len(n.ents)
		for i := range n.ents {
			if err := walk(n.ents[i].child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return Stats{}, err
	}
	if st.IndexNodes > 0 {
		st.AvgFanout = float64(fanout) / float64(st.IndexNodes)
	}
	return st, nil
}

// codec serializes SR-tree nodes.
type codec struct{ dim int }

// Encode implements nodestore.Codec. Layout: magic 'S', type byte, dim
// uint16, count uint16, then entries.
func (c codec) Encode(n *node, buf []byte) (int, error) {
	buf[0] = 'S'
	binary.LittleEndian.PutUint16(buf[2:], uint16(c.dim))
	if n.leaf {
		buf[1] = 0
		binary.LittleEndian.PutUint16(buf[4:], uint16(len(n.pts)))
		off := headerSize
		for i, p := range n.pts {
			binary.LittleEndian.PutUint64(buf[off:], n.rids[i])
			off += 8
			for _, v := range p {
				binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
				off += 4
			}
		}
		return off, nil
	}
	buf[1] = 1
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(n.ents)))
	off := headerSize
	for i := range n.ents {
		e := &n.ents[i]
		binary.LittleEndian.PutUint32(buf[off:], uint32(e.child))
		off += 4
		// Round the radius up when float32 narrowing would shrink it: a
		// too-small sphere would prune away true results.
		r32 := float32(e.radius)
		if float64(r32) < e.radius {
			r32 = math.Nextafter32(r32, float32(math.Inf(1)))
		}
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(r32))
		off += 4
		binary.LittleEndian.PutUint32(buf[off:], uint32(e.count))
		off += 4
		for _, v := range e.centroid {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
			off += 4
		}
		for _, v := range e.rect.Lo {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
			off += 4
		}
		for _, v := range e.rect.Hi {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
			off += 4
		}
	}
	return off, nil
}

// Decode implements nodestore.Codec.
func (c codec) Decode(id pagefile.PageID, buf []byte) (*node, error) {
	if len(buf) < headerSize || buf[0] != 'S' {
		return nil, fmt.Errorf("srtree: corrupt page %d", id)
	}
	if got := int(binary.LittleEndian.Uint16(buf[2:])); got != c.dim {
		return nil, fmt.Errorf("srtree: page %d dim %d, want %d", id, got, c.dim)
	}
	count := int(binary.LittleEndian.Uint16(buf[4:]))
	n := &node{id: id}
	off := headerSize
	switch buf[1] {
	case 0:
		if headerSize+count*(8+4*c.dim) > len(buf) {
			return nil, fmt.Errorf("srtree: page %d entry count exceeds page", id)
		}
		n.leaf = true
		for i := 0; i < count; i++ {
			n.rids = append(n.rids, binary.LittleEndian.Uint64(buf[off:]))
			off += 8
			p := make(geom.Point, c.dim)
			for d := range p {
				p[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
				off += 4
			}
			n.pts = append(n.pts, p)
		}
	case 1:
		if headerSize+count*(12*c.dim+12) > len(buf) {
			return nil, fmt.Errorf("srtree: page %d entry count exceeds page", id)
		}
		for i := 0; i < count; i++ {
			var e entry
			e.child = pagefile.PageID(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			e.radius = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off:])))
			off += 4
			e.count = int32(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			e.centroid = make(geom.Point, c.dim)
			for d := range e.centroid {
				e.centroid[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
				off += 4
			}
			e.rect = geom.Rect{Lo: make(geom.Point, c.dim), Hi: make(geom.Point, c.dim)}
			for d := range e.rect.Lo {
				e.rect.Lo[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
				off += 4
			}
			for d := range e.rect.Hi {
				e.rect.Hi[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
				off += 4
			}
			n.ents = append(n.ents, e)
		}
	default:
		return nil, fmt.Errorf("srtree: page %d bad node type", id)
	}
	return n, nil
}
