package dist

import (
	"hybridtree/internal/geom"
)

// SquaredMetric is the sqrt-free fast path for metrics of the form
// Distance = sqrt(S) with S an additive, per-dimension non-negative sum
// (L2 and its weighted variant). Because sqrt is monotone, range and k-NN
// searches can compare squared distances against squared bounds end-to-end
// and take a single square root per *reported* result instead of one per
// candidate. The additivity also enables partial-distance early abandonment:
// DistanceSqBounded stops accumulating as soon as the running sum exceeds
// the caller's pruning bound, the standard kernel trick for high-dimensional
// leaf scans.
//
// Contracts, for instances whose SquaredOK reports true:
//
//   - Distance(a, b) == math.Sqrt(DistanceSq(a, b)), bit-identical: the
//     squared form must accumulate in the same order as Distance.
//   - MinDistRect(q, r) == math.Sqrt(MinDistRectSq(q, r)), likewise.
//   - DistanceSqBounded(a, b, bound) returns DistanceSq(a, b) whenever that
//     value is <= bound; otherwise it may return any value > bound.
//
// Use AsSquared to detect support: a type can implement the methods
// unconditionally (LpMetric does, for all P) while only vouching for them on
// the instances where the algebra holds (P == 2).
type SquaredMetric interface {
	Metric
	// SquaredOK reports whether the squared forms are valid for this
	// instance (e.g. an LpMetric only when P == 2).
	SquaredOK() bool
	// DistanceSq is the squared distance, accumulated exactly as Distance
	// accumulates it.
	DistanceSq(a, b geom.Point) float64
	// DistanceSqBounded is DistanceSq with partial-distance early
	// abandonment: once the running sum strictly exceeds bound the scan
	// stops and the partial sum is returned. The result is exact whenever
	// it is <= bound.
	DistanceSqBounded(a, b geom.Point, bound float64) float64
	// MinDistRectSq is the squared MINDIST lower bound.
	MinDistRectSq(q geom.Point, r geom.Rect) float64
}

// AsSquared reports whether m supports the squared-distance fast path and
// returns its SquaredMetric view when it does.
func AsSquared(m Metric) (SquaredMetric, bool) {
	if s, ok := m.(SquaredMetric); ok && s.SquaredOK() {
		return s, true
	}
	return nil, false
}

// SquaredOK implements SquaredMetric.
func (euclidean) SquaredOK() bool { return true }

// DistanceSq implements SquaredMetric.
func (euclidean) DistanceSq(a, b geom.Point) float64 {
	s := 0.0
	for d := range a {
		dv := float64(a[d]) - float64(b[d])
		s += dv * dv
	}
	return s
}

// DistanceSqBounded implements SquaredMetric.
func (euclidean) DistanceSqBounded(a, b geom.Point, bound float64) float64 {
	s := 0.0
	for d := range a {
		dv := float64(a[d]) - float64(b[d])
		s += dv * dv
		if s > bound {
			return s
		}
	}
	return s
}

// MinDistRectSq implements SquaredMetric.
func (euclidean) MinDistRectSq(q geom.Point, r geom.Rect) float64 {
	s := 0.0
	for d := range q {
		g := axisGap(q[d], r.Lo[d], r.Hi[d])
		s += g * g
	}
	return s
}

// SquaredOK implements SquaredMetric: the squared forms are valid for the
// Euclidean member of the family only.
func (m LpMetric) SquaredOK() bool { return m.P == 2 }

// DistanceSq implements SquaredMetric (valid when P == 2).
func (m LpMetric) DistanceSq(a, b geom.Point) float64 {
	return euclidean{}.DistanceSq(a, b)
}

// DistanceSqBounded implements SquaredMetric (valid when P == 2).
func (m LpMetric) DistanceSqBounded(a, b geom.Point, bound float64) float64 {
	return euclidean{}.DistanceSqBounded(a, b, bound)
}

// MinDistRectSq implements SquaredMetric (valid when P == 2).
func (m LpMetric) MinDistRectSq(q geom.Point, r geom.Rect) float64 {
	return euclidean{}.MinDistRectSq(q, r)
}

// SquaredOK implements SquaredMetric: valid for weighted Euclidean only.
// Weights are non-negative by construction, so the partial sums stay
// monotone and early abandonment remains sound.
func (m WeightedLp) SquaredOK() bool { return m.P == 2 }

// DistanceSq implements SquaredMetric (valid when P == 2).
func (m WeightedLp) DistanceSq(a, b geom.Point) float64 {
	s := 0.0
	for d := range a {
		dv := float64(a[d]) - float64(b[d])
		s += m.Weights[d] * (dv * dv)
	}
	return s
}

// DistanceSqBounded implements SquaredMetric (valid when P == 2).
func (m WeightedLp) DistanceSqBounded(a, b geom.Point, bound float64) float64 {
	s := 0.0
	for d := range a {
		dv := float64(a[d]) - float64(b[d])
		s += m.Weights[d] * (dv * dv)
		if s > bound {
			return s
		}
	}
	return s
}

// MinDistRectSq implements SquaredMetric (valid when P == 2).
func (m WeightedLp) MinDistRectSq(q geom.Point, r geom.Rect) float64 {
	s := 0.0
	for d := range q {
		g := axisGap(q[d], r.Lo[d], r.Hi[d])
		s += m.Weights[d] * (g * g)
	}
	return s
}
