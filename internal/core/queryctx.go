package core

import (
	"context"
	"time"

	"hybridtree/internal/geom"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/pqueue"
)

// QueryContext carries the reusable scratch state of one in-flight search:
// a rectangle arena, the kd-walk frame stack, the pending-visit stack, the
// best-first frontier heap and the k-best collector. A context may be reused
// across any number of queries (of any dimensionality and query type) but
// must never be used by two searches at once; the plain search methods pull
// one from a per-tree sync.Pool, while batch executors hold one per worker
// for the lifetime of the worker's query slice. A warm context makes the
// cached-node query path allocation-free except for the result slice, which
// the *Ctx search variants let the caller recycle too.
type QueryContext struct {
	qc queryCtx
}

// NewQueryContext returns an empty context; it sizes itself lazily on first
// use and is not tied to any particular tree.
func NewQueryContext() *QueryContext { return &QueryContext{} }

// SetQueueWait attributes d of executor queue wait (submission to worker
// dequeue) to the next query run on this context. Batch executors call it
// right before dispatching each operation; the next beginQuery folds it into
// that operation's trace (when tracing is on) and clears it either way.
func (c *QueryContext) SetQueueWait(d time.Duration) { c.qc.queueWait = d }

// getCtx takes a context from the tree's pool (allocating on a cold pool).
func (t *Tree) getCtx() *QueryContext {
	if v := t.qcPool.Get(); v != nil {
		return v.(*QueryContext)
	}
	return NewQueryContext()
}

// putCtx returns a context to the pool for the next query.
func (t *Tree) putCtx(c *QueryContext) { t.qcPool.Put(c) }

// visitRef is one pending subtree visit: a child page plus the arena slot
// holding its mapped bounding region. span is the trace-span index of the
// node that enqueued the visit (-1 at the root, and ignored entirely when
// the query is untraced).
type visitRef struct {
	child pagefile.PageID
	slot  int32
	span  int32
}

// kdFrame is one suspended position of the iterative intra-node kd walk.
// stage 0 = node not yet expanded; 1 = left subtree done (upper boundary
// still narrowed); 2 = right subtree done (lower boundary still narrowed).
// saved holds the boundary coordinate the current stage must restore.
type kdFrame struct {
	idx   int32
	stage uint8
	saved float32
}

// queryCtx is the inner, unexported state of a QueryContext.
type queryCtx struct {
	dim  int
	busy bool // guards against concurrent use of one context

	arena   rectArena
	frames  []kdFrame
	pending []visitRef
	pq      pqueue.Min[visitRef]
	best    *pqueue.KBest[Neighbor]

	// walk is the current node's mutable bounding region (narrowed and
	// restored one boundary at a time during the kd walk); scratch holds
	// walk ∩ live-space intersections. Both view the coords backing array.
	walk    geom.Rect
	scratch geom.Rect
	coords  []float32

	// Leaf-scan scratch for the slab batch kernels: dists receives one
	// squared distance per leaf point, hits the indices a box filter kept.
	// Both grow to the query's high-water leaf size and are then reused.
	dists []float64
	hits  []int32

	// MVCC snapshot state: ver is the pinned tree version this query
	// traverses, pin the reader-pin slot keeping its node versions alive.
	// pinStart/pinObs/pinGauge carry the pin-duration instrumentation when
	// metrics are on. Set by Tree.pinCtx, cleared by release.
	ver      *treeVersion
	pin      *pinSlot
	pinStart time.Time
	pinObs   *obs.Histogram
	pinGauge *obs.Gauge

	// tally accumulates this query's traversal counts as plain ints
	// (flushed to shared atomic counters once per query); tr is the
	// query's trace, nil when tracing is off. queueWait is executor queue
	// time attributed by SetQueueWait before the query starts; beginQuery
	// transfers it into the trace's stage set and clears it. See metrics.go.
	tally     tally
	tr        *obs.Trace
	queueWait time.Duration

	// Request-lifecycle bounds, set by arm and consulted by checkVisit once
	// per node visit; all zero for a plain (Background, unbudgeted) query.
	// See request.go.
	ctx            context.Context
	done           <-chan struct{}
	budgetDeadline time.Time
	maxPages       int
	maxPushes      int
	visited        int
}

// acquire readies the context for one query of the given dimensionality.
// It panics when the context is already driving another search: sharing a
// context between concurrent queries would silently corrupt both.
func (qc *queryCtx) acquire(dim int) {
	if qc.busy {
		panic("core: QueryContext used by two searches at once")
	}
	qc.busy = true
	if qc.dim != dim {
		qc.dim = dim
		qc.coords = make([]float32, 4*dim)
		qc.walk = geom.Rect{Lo: qc.coords[0:dim], Hi: qc.coords[dim : 2*dim]}
		qc.scratch = geom.Rect{Lo: qc.coords[2*dim : 3*dim], Hi: qc.coords[3*dim : 4*dim]}
	}
	qc.arena.reset(dim)
	qc.frames = qc.frames[:0]
	qc.pending = qc.pending[:0]
	qc.pq.Reset()
	qc.disarm()
}

// pinCtx pins the current snapshot into qc: it claims a reader-pin slot
// first and loads the published tree version second — that order, against
// the committing writer's publish-then-scan, is what makes reclamation safe
// (see store.pin). Zero locks, zero allocations.
func (t *Tree) pinCtx(qc *queryCtx) *treeVersion {
	sl, _ := t.store.pin()
	qc.pin = sl
	v := t.current.Load()
	qc.ver = v
	if m := t.metrics; m != nil {
		m.mvccPins.Add(1)
		qc.pinGauge = m.mvccPins
		qc.pinObs = m.mvccPinNs
		qc.pinStart = time.Now()
	}
	return v
}

// release unpins the context's snapshot (letting its epoch drain) and marks
// the context idle again.
func (qc *queryCtx) release() {
	if qc.pin != nil {
		qc.pin.v.Store(0)
		qc.pin = nil
		if qc.pinGauge != nil {
			qc.pinGauge.Add(-1)
			qc.pinGauge = nil
		}
		if qc.pinObs != nil {
			qc.pinObs.Observe(int64(time.Since(qc.pinStart)))
			qc.pinObs = nil
		}
	}
	qc.ver = nil
	qc.busy = false
}

// distSlab returns the context's distance-output buffer with room for n
// leaf entries, growing it only past the previous high-water mark.
func (qc *queryCtx) distSlab(n int) []float64 {
	if cap(qc.dists) < n {
		qc.dists = make([]float64, n)
	}
	return qc.dists[:n]
}

// kbest returns the context's k-best collector, reset for a fresh query;
// the collector is rebuilt only when k changes.
func (qc *queryCtx) kbest(k int) *pqueue.KBest[Neighbor] {
	if qc.best == nil || qc.best.K() != k {
		qc.best = pqueue.NewKBest[Neighbor](k)
	} else {
		qc.best.Reset()
	}
	return qc.best
}

// rectArena stores the bounding regions of pending visits as index-addressed
// slots in one flat backing array: slot s occupies
// buf[2*s*dim : 2*(s+1)*dim], lower corner first. Replacing every per-visit
// geom.Rect clone (two slice allocations) with a copy into a slot is what
// removes the traversal's allocation-per-node behavior; the arena itself
// grows to a query's high-water mark once and is then reused verbatim by
// every later query on the same context.
type rectArena struct {
	dim  int
	buf  []float32
	free []int32
	top  int32
}

// reset prepares the arena for a new query, keeping its backing storage
// when the dimensionality is unchanged.
func (a *rectArena) reset(dim int) {
	if a.dim != dim {
		a.dim = dim
		a.buf = a.buf[:0:0]
	}
	a.top = 0
	a.free = a.free[:0]
}

// put copies r into a free slot and returns the slot index.
func (a *rectArena) put(r geom.Rect) int32 {
	var s int32
	if n := len(a.free); n > 0 {
		s = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		s = a.top
		a.top++
		if need := int(a.top) * 2 * a.dim; need > len(a.buf) {
			a.buf = append(a.buf, make([]float32, need-len(a.buf))...)
		}
	}
	off := int(s) * 2 * a.dim
	copy(a.buf[off:off+a.dim], r.Lo)
	copy(a.buf[off+a.dim:off+2*a.dim], r.Hi)
	return s
}

// copyOut copies slot s into dst, whose corners must already have the
// arena's dimensionality.
func (a *rectArena) copyOut(s int32, dst geom.Rect) {
	off := int(s) * 2 * a.dim
	copy(dst.Lo, a.buf[off:off+a.dim])
	copy(dst.Hi, a.buf[off+a.dim:off+2*a.dim])
}

// release returns slot s to the free list.
func (a *rectArena) release(s int32) { a.free = append(a.free, s) }

// reverseVisits flips a just-appended run of visits so that popping the
// pending stack yields them in kd order — the same depth-first order the
// recursive implementation produced.
func reverseVisits(v []visitRef) {
	for i, j := 0, len(v)-1; i < j; i, j = i+1, j-1 {
		v[i], v[j] = v[j], v[i]
	}
}
