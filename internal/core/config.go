// Package core implements the hybrid tree of Chakrabarti and Mehrotra
// (ICDE 1999): a paginated multidimensional index for high-dimensional
// feature spaces that combines the space-partitioning family's
// dimensionality-independent fanout (single-dimension splits represented by
// an intra-node kd-tree) with the data-partitioning family's guaranteed
// utilization (splits are allowed to overlap instead of cascading).
//
// Each index node stores a kd-tree whose internal nodes carry *two* split
// positions — lsp, the upper boundary of the lower-side partition, and rsp,
// the lower boundary of the higher-side partition — so lsp > rsp encodes
// overlapping subspaces while lsp == rsp encodes a clean split. The mapping
// from this representation to an "array of bounding regions" view (Figure 1
// of the paper) is what lets R-tree-style insertion, deletion and search
// algorithms run unchanged on top of a kd-tree representation.
//
// Node splitting minimizes the increase in the expected number of disk
// accesses (EDA) for a uniformly distributed box query: data nodes split on
// their maximum-extent dimension as near the middle as utilization allows
// (Section 3.2); index nodes pick the dimension minimizing
// (overlap + querySide)/(extent + querySide) after a 1-d bipartition of the
// children's projected segments (Section 3.3). Dead space is pruned with
// the encoded-live-space (ELS) side table (Section 3.4). Distance-based
// range and k-nearest-neighbor queries accept any dist.Metric at query time
// (Section 3.5).
package core

import (
	"fmt"

	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// RecordID identifies the data item a feature vector belongs to. The tree
// stores (vector, RecordID) pairs; what the id denotes (image id, tuple id)
// is the application's business.
type RecordID uint64

// Config controls tree geometry and the split policy's cost model.
type Config struct {
	// Dim is the dimensionality of the feature space. Required.
	Dim int

	// PageSize is the disk page (node) size in bytes. Defaults to
	// pagefile.DefaultPageSize (4096, the paper's setting).
	PageSize int

	// Space is the data space; every inserted vector must lie inside it.
	// Defaults to the unit cube [0,1]^Dim, the normalization the paper's
	// EDA cost model assumes.
	Space geom.Rect

	// MinFillData is the minimum fill fraction of a data node enforced by
	// splits (the paper's utilization constraint). Defaults to 0.4.
	MinFillData float64

	// MinFillIndex is the minimum fraction of an index node's children that
	// each side of a split must receive. Defaults to 1/3.
	MinFillIndex float64

	// ELSBits is the encoded-live-space precision in bits per boundary per
	// dimension; 0 means the default of 8. The paper's sweet spot is 4
	// bits, but its grid is node-relative; ours is defined over the whole
	// data space so that encodings stay valid as the dynamic tree widens
	// split positions, which shifts the equivalent-precision knee to ~8
	// bits (see Figure 5(c) and DESIGN.md). ELSDisabled turns the
	// optimization off entirely.
	ELSBits int

	// ELSDisabled turns off live-space encoding (the "no ELS" series of
	// Figure 5(c)).
	ELSDisabled bool

	// QuerySide is the expected side length r of future box queries, the
	// parameter of the index-node EDA objective (w_d+r)/(s_d+r). Defaults
	// to 0.1.
	QuerySide float64

	// UniformQuerySide, when true, averages the EDA objective over query
	// sides uniformly distributed in (0, QuerySide] instead of using the
	// fixed value — the integral form in Section 3.3.
	UniformQuerySide bool

	// Policy selects the node-splitting strategy. Defaults to EDAPolicy.
	// VAMPolicy reproduces the paper's Figure 5(a,b) baseline.
	Policy SplitPolicy
}

// withDefaults returns cfg with zero fields replaced by defaults, or an
// error when the configuration cannot index anything.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Dim < 1 {
		return cfg, fmt.Errorf("core: Dim must be >= 1, got %d", cfg.Dim)
	}
	if cfg.Dim > 1<<15 {
		return cfg, fmt.Errorf("core: Dim %d exceeds the on-page limit", cfg.Dim)
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = pagefile.DefaultPageSize
	}
	if cfg.PageSize < 64 {
		return cfg, fmt.Errorf("core: PageSize %d too small", cfg.PageSize)
	}
	if cfg.Space.Dim() == 0 {
		cfg.Space = geom.UnitCube(cfg.Dim)
	}
	if cfg.Space.Dim() != cfg.Dim {
		return cfg, fmt.Errorf("core: Space dimensionality %d != Dim %d", cfg.Space.Dim(), cfg.Dim)
	}
	if cfg.MinFillData == 0 {
		cfg.MinFillData = 0.4
	}
	if cfg.MinFillData < 0 || cfg.MinFillData > 0.5 {
		return cfg, fmt.Errorf("core: MinFillData %g outside [0, 0.5]", cfg.MinFillData)
	}
	if cfg.MinFillIndex == 0 {
		cfg.MinFillIndex = 1.0 / 3
	}
	if cfg.MinFillIndex < 0 || cfg.MinFillIndex > 0.5 {
		return cfg, fmt.Errorf("core: MinFillIndex %g outside [0, 0.5]", cfg.MinFillIndex)
	}
	if cfg.ELSBits == 0 {
		cfg.ELSBits = 8
	}
	if cfg.ELSDisabled {
		cfg.ELSBits = 0
	}
	if cfg.ELSBits < 0 || cfg.ELSBits > 16 {
		return cfg, fmt.Errorf("core: ELSBits %d outside [1, 16]", cfg.ELSBits)
	}
	if cfg.QuerySide == 0 {
		cfg.QuerySide = 0.1
	}
	if cfg.QuerySide < 0 {
		return cfg, fmt.Errorf("core: QuerySide %g must be positive", cfg.QuerySide)
	}
	if cfg.Policy == nil {
		cfg.Policy = EDAPolicy{}
	}
	if cfg.dataCapacity() < 2 {
		return cfg, fmt.Errorf("core: page size %d cannot hold two %d-dimensional entries", cfg.PageSize, cfg.Dim)
	}
	if cfg.maxFanout() < 4 {
		return cfg, fmt.Errorf("core: page size %d cannot hold an index node", cfg.PageSize)
	}
	return cfg, nil
}

// dataCapacity returns the number of (vector, RecordID) entries a data page
// holds: fanout of the leaf level.
func (cfg *Config) dataCapacity() int {
	return (cfg.PageSize - nodeHeaderSize) / (8 + 4*cfg.Dim)
}

// maxFanout returns the number of children an index page holds. A kd-tree
// with c leaves has exactly c-1 internal nodes, so the page must fit
// (c-1) internal records and c leaf records — *independent of Dim*, the
// property motivating single-dimension splits (Table 1 of the paper).
func (cfg *Config) maxFanout() int {
	return (cfg.PageSize - nodeHeaderSize + kdInternalSize) / (kdInternalSize + kdLeafSize)
}

// minDataFill returns the minimum entry count of a non-root data node.
func (cfg *Config) minDataFill() int {
	m := int(cfg.MinFillData * float64(cfg.dataCapacity()))
	if m < 1 {
		m = 1
	}
	return m
}
