package perf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseGoBench parses `go test -bench` text output (one or more packages,
// -count repeats welcome) into aggregated Benchmarks. Result lines look
// like:
//
//	pkg: hybridtree/internal/bench
//	BenchmarkMixed90R10W/mvcc-8  	 1  84521633 ns/op  118319 read_qps  0 B/op  0 allocs/op
//
// Names are canonicalized to "<pkg>.<name>" with the module prefix, the
// "Benchmark" prefix and the "-GOMAXPROCS" suffix stripped:
// "internal/bench.Mixed90R10W/mvcc". Repeated lines for the same benchmark
// (from -count=N) fold into one Benchmark with median/p10/p90 per metric.
func ParseGoBench(r io.Reader) ([]Benchmark, error) {
	type samples map[string][]float64 // metric unit -> one value per repeat
	byName := make(map[string]samples)
	var order []string
	pkg := ""

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if v, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = shortPkg(strings.TrimSpace(v))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is: name, iteration count, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // e.g. "BenchmarkFoo---FAIL" status lines
		}
		name := canonicalName(pkg, fields[0])
		ss, ok := byName[name]
		if !ok {
			ss = make(samples)
			byName[name] = ss
			order = append(order, name)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			ss[unit] = append(ss[unit], val)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("perf: no benchmark result lines found")
	}

	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		ss := byName[name]
		b := Benchmark{Name: name, Metrics: make(map[string]Stat, len(ss))}
		for unit, vals := range ss {
			if len(vals) > b.Repeats {
				b.Repeats = len(vals)
			}
			b.Metrics[unit] = summarize(vals)
		}
		out = append(out, b)
	}
	return out, nil
}

// shortPkg strips the module path prefix so names survive a module rename:
// "hybridtree/internal/bench" -> "internal/bench".
func shortPkg(p string) string {
	if i := strings.Index(p, "/internal/"); i >= 0 {
		return p[i+1:]
	}
	if i := strings.Index(p, "/cmd/"); i >= 0 {
		return p[i+1:]
	}
	return p
}

// canonicalName turns a raw result-line name into the snapshot's canonical
// form: Benchmark prefix off, trailing -GOMAXPROCS off, package prepended.
func canonicalName(pkg, raw string) string {
	name := strings.TrimPrefix(raw, "Benchmark")
	// The -N suffix applies to the top-level name segment, not sub-benchmark
	// paths; trimming the final -digits run after the last '/' is safe
	// because Go appends it unconditionally.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if pkg != "" {
		return pkg + "." + name
	}
	return name
}

// summarize reduces one metric's repeats to median/p10/p90.
func summarize(vals []float64) Stat {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	return Stat{Median: percentile(s, 0.5), P10: percentile(s, 0.1), P90: percentile(s, 0.9)}
}

// percentile interpolates the q-quantile of sorted values.
func percentile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(i)
	return sorted[i] + (sorted[i+1]-sorted[i])*frac
}
