package geom_test

import (
	"fmt"

	"hybridtree/internal/geom"
)

func ExampleBipartition() {
	// Four children's subspaces projected onto a split dimension; the
	// bipartition groups them to minimize overlap while giving each side
	// at least two members.
	segs := []geom.Segment{
		{Lo: 0.0, Hi: 0.3, ID: 0},
		{Lo: 0.1, Hi: 0.4, ID: 1},
		{Lo: 0.6, Hi: 0.8, ID: 2},
		{Lo: 0.7, Hi: 1.0, ID: 3},
	}
	left, right, lsp, rsp := geom.Bipartition(segs, 2)
	fmt.Printf("left=%d right=%d lsp=%.1f rsp=%.1f overlap=%v\n",
		len(left), len(right), lsp, rsp, lsp > rsp)
	// Output:
	// left=2 right=2 lsp=0.4 rsp=0.6 overlap=false
}

func ExampleRect_MinkowskiVolume() {
	// The probability that a uniformly placed box query of side 0.1
	// touches this region — the quantity the EDA split model minimizes.
	r := geom.NewRect(geom.Point{0.2, 0.2}, geom.Point{0.4, 0.5})
	fmt.Printf("%.2f\n", r.MinkowskiVolume(0.1))
	// Output:
	// 0.12
}
