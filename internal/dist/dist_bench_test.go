package dist

import (
	"math/rand"
	"testing"

	"hybridtree/internal/geom"
)

func benchVecs(dim int) (geom.Point, geom.Point, geom.Rect) {
	rng := rand.New(rand.NewSource(1))
	a := make(geom.Point, dim)
	q := make(geom.Point, dim)
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for d := 0; d < dim; d++ {
		a[d], q[d] = rng.Float32(), rng.Float32()
		x, y := rng.Float32(), rng.Float32()
		if x > y {
			x, y = y, x
		}
		lo[d], hi[d] = x, y
	}
	return a, q, geom.Rect{Lo: lo, Hi: hi}
}

func BenchmarkL1Distance64d(b *testing.B) {
	a, q, _ := benchVecs(64)
	m := L1()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(a, q)
	}
}

func BenchmarkL2Distance64d(b *testing.B) {
	a, q, _ := benchVecs(64)
	m := L2()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(a, q)
	}
}

func BenchmarkL1MinDistRect64d(b *testing.B) {
	_, q, r := benchVecs(64)
	m := L1()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MinDistRect(q, r)
	}
}

func BenchmarkWeightedLp64d(b *testing.B) {
	a, q, _ := benchVecs(64)
	w := make([]float64, 64)
	for i := range w {
		w[i] = 1 + float64(i%3)
	}
	m, err := NewWeightedLp(2, w)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(a, q)
	}
}

// BenchmarkLp2Distance64d pins the LpMetric{P: 2} fast path: it must track
// BenchmarkL2Distance64d, not the ~40x slower math.Pow general-P loop it
// replaced.
func BenchmarkLp2Distance64d(b *testing.B) {
	a, q, _ := benchVecs(64)
	m := LpMetric{P: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(a, q)
	}
}

func BenchmarkL2DistanceSqBounded64d(b *testing.B) {
	a, q, _ := benchVecs(64)
	sqm, ok := AsSquared(L2())
	if !ok {
		b.Fatal("L2 must be squared-capable")
	}
	bound := sqm.DistanceSq(a, q) / 4 // force mid-vector abandonment
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sqm.DistanceSqBounded(a, q, bound)
	}
}
