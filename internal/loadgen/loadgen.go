// Package loadgen is a seeded open-loop load generator for the htreed
// front door. Open-loop means arrivals are scheduled by a clock, not by
// completions: when the server slows down, requests keep arriving at the
// configured rate and pile up — exactly the regime that exposes whether
// overload sheds or collapses. (A closed-loop client, which waits for each
// response before sending the next, can never drive a server past
// capacity; it measures the server's throughput, not its failure mode.)
//
// Every request's parameters derive deterministically from (Seed, request
// index), so two runs against the same server state issue the same
// queries in the same order regardless of goroutine scheduling. The
// report tallies responses by HTTP status and by the server's
// X-Htree-Outcome header and checks the storm invariants: every response
// carries a mapped status, and the outcome totals are consistent.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Mix weighs the operation types; weights need not sum to 1. Zero-weight
// operations are never issued. The zero Mix defaults to queries only
// (50% k-NN, 25% box, 25% range).
type Mix struct {
	KNN    float64
	Box    float64
	Range  float64
	Insert float64
	Delete float64
}

func (m Mix) withDefaults() Mix {
	if m.KNN+m.Box+m.Range+m.Insert+m.Delete <= 0 {
		return Mix{KNN: 0.5, Box: 0.25, Range: 0.25}
	}
	return m
}

// Config parameterizes one storm.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Seed drives every random choice (per-request, order-independent).
	Seed int64
	// Dim is the index dimensionality (points are uniform in [0,1)^Dim).
	Dim int
	// Requests is the total number to send.
	Requests int
	// Rate is the arrival rate in requests/second (required; the open
	// loop fires on schedule no matter how the server is doing).
	Rate float64
	// Mix weighs operation types.
	Mix Mix
	// K and Radius parameterize k-NN and range queries (defaults 10, 0.1).
	K      int
	Radius float64
	// DeadlineMs and BudgetPages are sent as lifecycle headers when > 0.
	DeadlineMs  int
	BudgetPages int
	// Timeout bounds each request on the client side (default 10s —
	// comfortably above any server-side deadline, so the server, not the
	// client transport, resolves the request whenever possible).
	Timeout time.Duration
	// MaxRIDs bounds the record-id space for inserts/deletes (default
	// 1e6); deletes draw from the same space so some find their target.
	MaxRIDs int
}

func (cfg Config) withDefaults() Config {
	cfg.Mix = cfg.Mix.withDefaults()
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.Radius <= 0 {
		cfg.Radius = 0.1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.MaxRIDs <= 0 {
		cfg.MaxRIDs = 1 << 20
	}
	return cfg
}

// Report tallies one storm.
type Report struct {
	Sent    int
	Elapsed time.Duration
	// Status counts responses by HTTP status code.
	Status map[int]int
	// Outcomes counts responses by X-Htree-Outcome header value.
	Outcomes map[string]int
	// MissingOutcome counts responses without the header (should be 0 for
	// /v1 endpoints).
	MissingOutcome int
	// TransportErrors counts requests that died in the client transport
	// (connection refused/reset, client-side timeout) and so never got an
	// HTTP status. The server may or may not have seen them.
	TransportErrors int
}

// Responses is the number of requests that resolved to an HTTP status.
func (r *Report) Responses() int {
	n := 0
	for _, c := range r.Status {
		n += c
	}
	return n
}

// Shed is the number of 503 responses.
func (r *Report) Shed() int { return r.Status[http.StatusServiceUnavailable] }

// OK is the number of 200 responses.
func (r *Report) OK() int { return r.Status[http.StatusOK] }

// String renders the tallies, statuses and outcomes sorted.
func (r *Report) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "sent=%d responses=%d transport-errors=%d elapsed=%v\n",
		r.Sent, r.Responses(), r.TransportErrors, r.Elapsed.Round(time.Millisecond))
	statuses := make([]int, 0, len(r.Status))
	for s := range r.Status {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	fmt.Fprintf(&b, "status:")
	for _, s := range statuses {
		fmt.Fprintf(&b, " %d=%d", s, r.Status[s])
	}
	fmt.Fprintf(&b, "\noutcomes:")
	outs := make([]string, 0, len(r.Outcomes))
	for o := range r.Outcomes {
		outs = append(outs, o)
	}
	sort.Strings(outs)
	for _, o := range outs {
		fmt.Fprintf(&b, " %s=%d", o, r.Outcomes[o])
	}
	if r.MissingOutcome > 0 {
		fmt.Fprintf(&b, " (missing=%d)", r.MissingOutcome)
	}
	return b.String()
}

// Check asserts the storm invariants on the client side: every response
// resolved to one of the statuses the server's outcome mapper (plus its
// 4xx rejections) can produce, every response carried an outcome header,
// and the outcome tallies sum to the responses received. With expectShed
// it additionally requires that the storm actually drove the server past
// capacity (some 503s) without drowning it (some 200s).
func (r *Report) Check(expectShed bool) error {
	allowed := map[int]bool{200: true, 206: true, 400: true, 404: true,
		413: true, 499: true, 500: true, 503: true, 504: true}
	for s, n := range r.Status {
		if !allowed[s] && n > 0 {
			return fmt.Errorf("unmapped HTTP status %d (%d responses)", s, n)
		}
	}
	if r.MissingOutcome > 0 {
		return fmt.Errorf("%d responses without %s", r.MissingOutcome, "X-Htree-Outcome")
	}
	sum := 0
	for _, n := range r.Outcomes {
		sum += n
	}
	if sum != r.Responses() {
		return fmt.Errorf("outcome tallies sum to %d but %d responses received", sum, r.Responses())
	}
	if r.Sent != r.Responses()+r.TransportErrors {
		return fmt.Errorf("sent %d != responses %d + transport errors %d",
			r.Sent, r.Responses(), r.TransportErrors)
	}
	if expectShed {
		if r.Shed() == 0 {
			return fmt.Errorf("expected overload: no request was shed (status counts %v)", r.Status)
		}
		if r.OK() == 0 {
			return fmt.Errorf("server drowned: no request succeeded (status counts %v)", r.Status)
		}
	}
	return nil
}

// request is one deterministic unit of work.
type request struct {
	path string
	body []byte
}

// genRequest derives request i from the seed alone, so the schedule is
// identical across runs and goroutine interleavings.
func genRequest(cfg Config, i int) request {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*1000003))
	point := func() []float32 {
		p := make([]float32, cfg.Dim)
		for d := range p {
			p[d] = float32(rng.Float64())
		}
		return p
	}
	m := cfg.Mix
	total := m.KNN + m.Box + m.Range + m.Insert + m.Delete
	v := rng.Float64() * total
	enc := func(path string, body map[string]any) request {
		raw, err := json.Marshal(body)
		if err != nil {
			panic(err) // static body shapes; unreachable
		}
		return request{path: path, body: raw}
	}
	switch {
	case v < m.KNN:
		return enc("/v1/knn", map[string]any{"point": point(), "k": cfg.K})
	case v < m.KNN+m.Box:
		lo := point()
		hi := make([]float32, cfg.Dim)
		for d := range hi {
			hi[d] = lo[d] + float32(0.2*rng.Float64())
		}
		return enc("/v1/box", map[string]any{"lo": lo, "hi": hi})
	case v < m.KNN+m.Box+m.Range:
		return enc("/v1/range", map[string]any{"point": point(), "radius": cfg.Radius})
	case v < m.KNN+m.Box+m.Range+m.Insert:
		return enc("/v1/insert", map[string]any{"point": point(), "rid": rng.Intn(cfg.MaxRIDs)})
	default:
		return enc("/v1/delete", map[string]any{"point": point(), "rid": rng.Intn(cfg.MaxRIDs)})
	}
}

// Run fires the storm and tallies the outcome. ctx cancellation stops
// scheduling new arrivals (in-flight requests still resolve); the report
// covers whatever was sent.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" || cfg.Dim <= 0 || cfg.Requests <= 0 || cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: BaseURL, Dim, Requests and Rate are required")
	}
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	}
	rep := &Report{Status: map[int]int{}, Outcomes: map[string]int{}}
	var mu sync.Mutex
	var wg sync.WaitGroup

	interval := time.Duration(float64(time.Second) / cfg.Rate)
	start := time.Now()
	next := start
	sent := 0
	for i := 0; i < cfg.Requests; i++ {
		// Open loop: sleep until this request's scheduled arrival, never
		// until the previous one's completion.
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				i = cfg.Requests // stop scheduling
				continue
			}
		} else if ctx.Err() != nil {
			break
		}
		next = next.Add(interval)
		req := genRequest(cfg, i)
		sent++
		wg.Add(1)
		go func(req request) {
			defer wg.Done()
			status, outcome, err := issue(client, cfg, req)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rep.TransportErrors++
				return
			}
			rep.Status[status]++
			if outcome == "" {
				rep.MissingOutcome++
			} else {
				rep.Outcomes[outcome]++
			}
		}(req)
	}
	wg.Wait()
	rep.Sent = sent
	rep.Elapsed = time.Since(start)
	return rep, nil
}

func issue(client *http.Client, cfg Config, r request) (status int, outcome string, err error) {
	req, err := http.NewRequest(http.MethodPost, cfg.BaseURL+r.path, bytes.NewReader(r.body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if cfg.DeadlineMs > 0 {
		req.Header.Set("X-Deadline-Ms", strconv.Itoa(cfg.DeadlineMs))
	}
	if cfg.BudgetPages > 0 {
		req.Header.Set("X-Budget-Pages", strconv.Itoa(cfg.BudgetPages))
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body) // drain for connection reuse
	return resp.StatusCode, resp.Header.Get("X-Htree-Outcome"), nil
}

// ScrapeServerTally fetches /metrics.json and returns the server's own
// request counter and per-outcome tallies, for the server-side half of the
// storm invariant: sum(outcomes) == requests received, which holds even
// when some client requests died in the transport.
func ScrapeServerTally(baseURL string) (requests uint64, outcomes map[string]uint64, err error) {
	resp, err := http.Get(baseURL + "/metrics.json")
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var payload struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return 0, nil, err
	}
	outcomes = map[string]uint64{}
	for name, v := range payload.Counters {
		if name == "server_requests_total" {
			requests = v
		}
		const prefix = `server_request_outcomes_total{outcome="`
		if len(name) > len(prefix) && name[:len(prefix)] == prefix {
			out := name[len(prefix) : len(name)-len(`"}`)]
			outcomes[out] = v
		}
	}
	return requests, outcomes, nil
}
