package pqueue

import (
	"math/rand"
	"sort"
	"testing"
)

// TestMinReset exercises the pooled-reuse contract: after Reset the queue
// behaves like a fresh one (across several cycles, including reset while
// non-empty) and the retained backing array holds no stale values.
func TestMinReset(t *testing.T) {
	var q Min[*int]
	rng := rand.New(rand.NewSource(1))
	for cycle := 0; cycle < 5; cycle++ {
		n := 20 + cycle*13
		want := make([]float64, n)
		for i := range want {
			v := i
			want[i] = rng.Float64()
			q.Push(&v, want[i])
		}
		sort.Float64s(want)
		// Odd cycles abandon the queue half-drained, like an early-terminated
		// search; even cycles drain fully.
		drain := n
		if cycle%2 == 1 {
			drain = n / 2
		}
		for i := 0; i < drain; i++ {
			v, pri := q.Pop()
			if v == nil {
				t.Fatalf("cycle %d: nil value at pop %d", cycle, i)
			}
			if pri != want[i] {
				t.Fatalf("cycle %d: pop %d priority = %g, want %g", cycle, i, pri, want[i])
			}
		}
		q.Reset()
		if q.Len() != 0 {
			t.Fatalf("cycle %d: Len() = %d after Reset", cycle, q.Len())
		}
		for i, v := range q.vals[:cap(q.vals)] {
			if v != nil {
				t.Fatalf("cycle %d: backing slot %d still holds a value after Reset", cycle, i)
			}
		}
	}
}

// TestKBestReset mirrors TestMinReset for the k-best collector.
func TestKBestReset(t *testing.T) {
	const k = 8
	q := NewKBest[*int](k)
	rng := rand.New(rand.NewSource(2))
	for cycle := 0; cycle < 5; cycle++ {
		n := 30 + cycle*11
		pris := make([]float64, n)
		for i := range pris {
			v := i
			pris[i] = rng.Float64()
			q.Offer(&v, pris[i])
		}
		sort.Float64s(pris)
		if cycle%2 == 0 {
			// Drain and check before resetting.
			vals, got := q.Sorted()
			for i := range got {
				if got[i] != pris[i] {
					t.Fatalf("cycle %d: sorted[%d] = %g, want %g", cycle, i, got[i], pris[i])
				}
				if vals[i] == nil {
					t.Fatalf("cycle %d: nil value at %d", cycle, i)
				}
			}
		}
		q.Reset()
		if q.Len() != 0 || q.K() != k {
			t.Fatalf("cycle %d: Len() = %d, K() = %d after Reset", cycle, q.Len(), q.K())
		}
		if q.Full() {
			t.Fatalf("cycle %d: Full() after Reset", cycle)
		}
		for i, v := range q.vals[:cap(q.vals)] {
			if v != nil {
				t.Fatalf("cycle %d: backing slot %d still holds a value after Reset", cycle, i)
			}
		}
	}
}

// TestKBestAppendSorted pins AppendSorted against Sorted: same order, same
// values, appended after any existing dst prefix, with dst's capacity
// reused when it suffices.
func TestKBestAppendSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(12)
		n := rng.Intn(40)
		a := NewKBest[int](k)
		b := NewKBest[int](k)
		for i := 0; i < n; i++ {
			pri := rng.Float64()
			a.Offer(i, pri)
			b.Offer(i, pri)
		}
		want, _ := a.Sorted()

		dst := make([]int, 0, k+3)
		dst = append(dst, -1) // pre-existing prefix must survive
		got := b.AppendSorted(dst)
		if &got[0] != &dst[0] {
			t.Fatalf("trial %d: AppendSorted reallocated despite sufficient capacity", trial)
		}
		if got[0] != -1 {
			t.Fatalf("trial %d: prefix clobbered: %d", trial, got[0])
		}
		if len(got)-1 != len(want) {
			t.Fatalf("trial %d: appended %d items, want %d", trial, len(got)-1, len(want))
		}
		for i, w := range want {
			if got[i+1] != w {
				t.Fatalf("trial %d: item %d = %d, want %d", trial, i, got[i+1], w)
			}
		}
		if b.Len() != 0 {
			t.Fatalf("trial %d: collector not drained: %d left", trial, b.Len())
		}
	}
}
